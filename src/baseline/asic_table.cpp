#include "baseline/asic_table.h"

namespace defa::baseline {

std::vector<AsicRecord> attention_asic_records() {
  return {
      AsicRecord{"ELSA [11]", "ISCA'21", "Attention", 40, 1.26, 1000.0, "INT9", 969.4,
                 1088.0, 1120.0},
      AsicRecord{"SpAtten [10]", "HPCA'21", "Attention", 40, 1.55, 1000.0, "INT12",
                 294.0, 360.0, 1224.0},
      AsicRecord{"BESAPU [12]", "JSSC'22", "Attention", 28, 6.82, 500.0, "INT12", 272.8,
                 522.0, 1910.0},
  };
}

}  // namespace defa::baseline
