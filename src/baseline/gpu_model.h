#pragma once

/// \file gpu_model.h
/// Analytical GPU execution model for dense MSDeformAttn encoder blocks
/// (the baselines of Fig. 1b and Fig. 9).
///
/// The model is a roofline per phase plus a *gather model* for MSGS:
/// * MM phases run at `mm_efficiency` of peak fp32 FLOPs (skinny encoder
///   GEMMs reach 30-40% on consumer parts), bounded by streaming bandwidth;
/// * softmax / residual / norm phases are bandwidth-bound;
/// * MSGS + aggregation is a scattered gather of 2x2 neighborhoods across
///   multi-scale fmaps.  Its achieved bandwidth (`gather_gbps`) is memory-
///   LATENCY bound: dynamically generated unordered addresses defeat
///   caching and coalescing (Sec. 2.2), so the achieved rate barely
///   improves from 2080Ti to 3090Ti despite the 1.6x peak-bandwidth gap —
///   this is the effect that makes MSGS dominate the layer latency and is
///   the root of DEFA's speedup shape.
/// Both calibration constants per GPU are documented against the paper's
/// measured Fig. 1(b) shares; see EXPERIMENTS.md.

#include <string>
#include <vector>

#include "config/model_config.h"

namespace defa::baseline {

struct GpuSpec {
  std::string name;
  double fp32_tflops = 0.0;
  double dram_gbps = 0.0;
  double tdp_w = 0.0;
  /// Average board power during inference as a fraction of TDP.
  double power_utilization = 0.7;
  /// Achieved fraction of peak FLOPs on the encoder GEMMs.
  double mm_efficiency = 0.35;
  /// Achieved GB/s of the MSGS gather kernel (latency-bound; calibrated).
  double gather_gbps = 0.0;
  /// Per-kernel launch/sync overhead, microseconds.
  double launch_overhead_us = 8.0;

  [[nodiscard]] static GpuSpec rtx2080ti();
  [[nodiscard]] static GpuSpec rtx3090ti();
};

/// Latency breakdown of one dense MSDeformAttn block on a GPU (seconds).
struct GpuLayerTime {
  double mm_s = 0.0;       ///< W_A / W_S / W_V projections (+ output proj)
  double softmax_s = 0.0;
  double msgs_ag_s = 0.0;  ///< grid-sample + aggregation kernel
  double elementwise_s = 0.0;  ///< residual/norm/transpose glue

  [[nodiscard]] double total() const noexcept {
    return mm_s + softmax_s + msgs_ag_s + elementwise_s;
  }
  /// Fig. 1(b): share of MSGS + aggregation in the block latency.
  [[nodiscard]] double msgs_share() const noexcept {
    return total() > 0 ? msgs_ag_s / total() : 0.0;
  }
};

/// Model one dense encoder block in fp32.
[[nodiscard]] GpuLayerTime gpu_layer_time(const ModelConfig& m, const GpuSpec& gpu);

/// Whole encoder (n_layers blocks), seconds.
[[nodiscard]] double gpu_encoder_time_s(const ModelConfig& m, const GpuSpec& gpu);

/// Energy of one encoder pass, joules (average power x time).
[[nodiscard]] double gpu_encoder_energy_j(const ModelConfig& m, const GpuSpec& gpu);

}  // namespace defa::baseline
