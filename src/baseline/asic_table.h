#pragma once

/// \file asic_table.h
/// Literature records for Table 1: the attention accelerators DEFA is
/// compared against.  These rows are constants quoted from the respective
/// papers (via DEFA's Table 1); the DEFA row is computed by our simulator.

#include <string>
#include <vector>

namespace defa::baseline {

struct AsicRecord {
  std::string name;
  std::string venue;
  std::string function;   ///< "Attention" or "DeformAttn"
  int tech_nm = 0;
  double area_mm2 = 0.0;
  double freq_mhz = 0.0;
  std::string precision;
  double power_mw = 0.0;
  double throughput_gops = 0.0;
  double ee_gops_per_w = 0.0;
};

/// ELSA (Ham et al., ISCA'21), SpAtten (Wang et al., HPCA'21),
/// BESAPU (Wang et al., JSSC'22) — in the paper's column order.
[[nodiscard]] std::vector<AsicRecord> attention_asic_records();

}  // namespace defa::baseline
