#include "baseline/gpu_model.h"

#include <algorithm>

#include "common/check.h"

namespace defa::baseline {

GpuSpec GpuSpec::rtx2080ti() {
  GpuSpec g;
  g.name = "RTX 2080Ti";
  g.fp32_tflops = 13.45;
  g.dram_gbps = 616.0;
  g.tdp_w = 250.0;
  g.mm_efficiency = 0.38;  // smaller SM count is easier to fill with skinny GEMMs
  g.gather_gbps = 490.0;   // latency-bound achieved gather rate (calibrated)
  return g;
}

GpuSpec GpuSpec::rtx3090ti() {
  GpuSpec g;
  g.name = "RTX 3090Ti";
  g.fp32_tflops = 40.0;
  g.dram_gbps = 1008.0;
  g.tdp_w = 450.0;
  g.mm_efficiency = 0.25;  // more SMs are harder to fill with skinny GEMMs
  g.gather_gbps = 620.0;   // barely above the 2080Ti: latency, not bandwidth
  return g;
}

GpuLayerTime gpu_layer_time(const ModelConfig& m, const GpuSpec& gpu) {
  DEFA_CHECK(gpu.fp32_tflops > 0 && gpu.dram_gbps > 0 && gpu.gather_gbps > 0,
             "GPU spec incomplete");
  const double n = static_cast<double>(m.n_in());
  const double d = static_cast<double>(m.d_model);
  const double hlp = static_cast<double>(m.n_heads) * m.points_per_head();
  const double fp32 = 4.0;  // bytes per element on the GPU
  const double launch = gpu.launch_overhead_us * 1e-6;

  GpuLayerTime t;

  // Projections W_A (D x HLP), W_S (D x 2HLP), W_V (D x D) and the output
  // projection of the real module: roofline of compute vs streaming.
  const double mm_flops = 2.0 * n * d * (hlp + 2.0 * hlp + d + d);
  const double mm_bytes = fp32 * (4.0 * n * d /*X re-reads*/ + n * (4.0 * hlp + 2.0 * d) +
                                  d * (3.0 * hlp + 2.0 * d) /*weights*/);
  t.mm_s = std::max(mm_flops / (gpu.fp32_tflops * 1e12 * gpu.mm_efficiency),
                    mm_bytes / (gpu.dram_gbps * 1e9)) +
           4.0 * launch;

  // Softmax over L*P per (query, head): bandwidth-bound elementwise pass.
  const double softmax_bytes = fp32 * 2.0 * n * hlp;
  t.softmax_s = softmax_bytes / (gpu.dram_gbps * 1e9) + launch;

  // MSGS + aggregation: every surviving... on the GPU, every point (dense)
  // gathers its 2x2 neighborhood of D_h channels.  Transactions are
  // unordered across the multi-scale fmaps; achieved bandwidth is the
  // calibrated latency-bound gather rate.
  const double points = n * hlp;
  const double gather_bytes = points * 4.0 * m.d_head() * fp32;
  const double out_bytes = fp32 * n * d;
  t.msgs_ag_s = (gather_bytes + out_bytes) / (gpu.gather_gbps * 1e9) + launch;

  // Residual/norm/layout glue: a few streaming passes over X.
  const double elementwise_bytes = fp32 * 5.0 * n * d;
  t.elementwise_s = elementwise_bytes / (gpu.dram_gbps * 1e9) + 2.0 * launch;
  return t;
}

double gpu_encoder_time_s(const ModelConfig& m, const GpuSpec& gpu) {
  return gpu_layer_time(m, gpu).total() * m.n_layers;
}

double gpu_encoder_energy_j(const ModelConfig& m, const GpuSpec& gpu) {
  return gpu_encoder_time_s(m, gpu) * gpu.tdp_w * gpu.power_utilization;
}

}  // namespace defa::baseline
