#pragma once

/// \file run_meta.h
/// Provenance stamp for benchmark artifacts.  Every BENCH_*.json embeds a
/// `meta` object so a result file is self-describing: when it ran, on
/// which host, and (added by each emitter) the kernel backend, dispatch
/// policy and shard count that produced it.  Schema in
/// docs/BENCH_SCHEMA.md.

#include "api/result_io.h"

namespace defa::api {

/// {"timestamp": "<ISO-8601 UTC, e.g. 2026-08-08T14:03:11Z>",
///  "hostname": "<gethostname(), or "unknown" if the call fails>"}.
/// Callers append run-specific keys (backend, policy, shards, ...) before
/// embedding the object under the report's `meta` key.
[[nodiscard]] Json run_metadata();

}  // namespace defa::api
