#include "api/registry.h"

#include <algorithm>
#include <cstring>
#include <iostream>

namespace defa::api {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(Experiment e) {
  DEFA_CHECK(!e.name.empty(), "Registry: experiment name must not be empty");
  DEFA_CHECK(static_cast<bool>(e.run), "Registry: experiment '" + e.name + "' has no runner");
  DEFA_CHECK(find(e.name) == nullptr,
             "Registry: duplicate experiment name '" + e.name + "'");
  experiments_.push_back(std::move(e));
}

const Experiment* Registry::find(const std::string& name) const {
  for (const Experiment& e : experiments_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(experiments_.size());
  for (const Experiment& e : experiments_) out.push_back(e.name);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t Registry::size() const { return experiments_.size(); }

Json run_experiment(Engine& engine, const std::string& name, std::ostream& out) {
  register_builtin_experiments();
  const Experiment* e = Registry::instance().find(name);
  if (e == nullptr) {
    std::string known;
    for (const std::string& n : Registry::instance().names()) {
      known += known.empty() ? n : ", " + n;
    }
    DEFA_CHECK(false, "unknown experiment '" + name + "' (known: " + known + ")");
  }
  Json j = e->run(engine, out);
  DEFA_CHECK(j.is_object(), "experiment '" + name + "' returned non-object JSON");
  j["experiment"] = e->name;
  j["title"] = e->title;
  return j;
}

int experiment_main(const std::string& name, int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--json out.json]\n";
      return 2;
    }
  }
  try {
    Engine engine;
    const Json j = run_experiment(engine, name, std::cout);
    if (!json_path.empty()) {
      write_json_file(json_path, j);
      std::cout << "wrote " << json_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace defa::api
