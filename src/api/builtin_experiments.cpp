// Built-in registered experiments: every paper figure/table reproduction
// and the repo's own ablations, each wrapping the core experiment drivers
// behind the Engine.  The human-readable tables are exactly the ones the
// original bench binaries printed; each experiment additionally returns
// the underlying rows as JSON for the machine-readable trajectory.

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <ostream>

#include "api/registry.h"
#include "api/run_meta.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "core/experiments.h"
#include "core/msgs.h"
#include "kernels/backend.h"
#include "kernels/plan.h"
#include "nn/bilinear.h"
#include "nn/linear.h"
#include "nn/softmax.h"
#include "quant/qmsgs.h"
#include "workload/scene.h"

namespace defa::api {
namespace {

[[gnu::format(printf, 1, 2)]] std::string fmt(const char* f, ...) {
  char buf[2048];
  va_list args;
  va_start(args, f);
  std::vsnprintf(buf, sizeof(buf), f, args);
  va_end(args);
  return buf;
}

// ------------------------------------------------------------------- fig1b

Json run_fig1b_exp(Engine&, std::ostream& os) {
  os << "Figure 1(b) — MSDeformAttn latency breakdown on RTX 3090Ti\n";
  os << "(analytical GPU model; paper shares measured with CUDA profiling)\n\n";

  const double paper_share[] = {0.6328, 0.6036, 0.6331};

  TextTable t({"benchmark", "MM (ms)", "softmax (ms)", "MSGS+AG (ms)", "other (ms)",
               "MSGS+AG share", "paper", "MSGS FLOP share"});
  Json rows = Json::array();
  const auto data = core::run_fig1b();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto& r = data[i];
    t.new_row()
        .add(r.benchmark)
        .add_num(r.layer.mm_s * 1e3, 3)
        .add_num(r.layer.softmax_s * 1e3, 3)
        .add_num(r.layer.msgs_ag_s * 1e3, 3)
        .add_num(r.layer.elementwise_s * 1e3, 3)
        .add(percent(r.msgs_latency_share))
        .add(percent(paper_share[i]))
        .add(percent(r.msgs_flop_share));
    Json j = Json::object();
    j["benchmark"] = r.benchmark;
    j["mm_ms"] = r.layer.mm_s * 1e3;
    j["softmax_ms"] = r.layer.softmax_s * 1e3;
    j["msgs_ag_ms"] = r.layer.msgs_ag_s * 1e3;
    j["elementwise_ms"] = r.layer.elementwise_s * 1e3;
    j["msgs_latency_share"] = r.msgs_latency_share;
    j["paper_msgs_latency_share"] = paper_share[i];
    j["msgs_flop_share"] = r.msgs_flop_share;
    rows.push_back(std::move(j));
  }
  os << t.str() << "\n";
  os << "Note: the paper quotes the MSGS+AG compute share as 3.25%; our FLOP\n"
        "convention (Eq. 1 module without output projection, BI = 4 MACs/ch)\n"
        "yields ~11% — either way, an order of magnitude below its latency\n"
        "share, which is the bottleneck argument being reproduced.\n";

  Json out = Json::object();
  out["rows"] = std::move(rows);
  return out;
}

// ------------------------------------------------------------------- fig6a

Json run_fig6a_exp(Engine& engine, std::ostream& os) {
  os << "Figure 6(a) — Detection AP, baseline vs DEFA (proxy model)\n\n";

  const double paper_defa_ap[] = {45.5, 47.9, 49.4};

  TextTable t({"benchmark", "baseline AP", "DEFA AP", "paper DEFA", "dFWP", "dPAP",
               "dNarrow", "dINT12", "dINT8 (rejected)"});
  Json rows = Json::array();
  const auto data = core::run_fig6a(engine.pool());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto& r = data[i];
    t.new_row()
        .add(r.benchmark)
        .add_num(r.baseline_ap, 1)
        .add_num(r.defa_ap, 1)
        .add_num(paper_defa_ap[i], 1)
        .add_num(r.drop_fwp, 2)
        .add_num(r.drop_pap, 2)
        .add_num(r.drop_narrow, 2)
        .add_num(r.drop_int12, 2)
        .add_num(r.drop_int8, 1);
    Json j = Json::object();
    j["benchmark"] = r.benchmark;
    j["baseline_ap"] = r.baseline_ap;
    j["defa_ap"] = r.defa_ap;
    j["paper_defa_ap"] = paper_defa_ap[i];
    j["drop_fwp"] = r.drop_fwp;
    j["drop_pap"] = r.drop_pap;
    j["drop_narrow"] = r.drop_narrow;
    j["drop_int12"] = r.drop_int12;
    j["drop_int8"] = r.drop_int8;
    j["err_fwp"] = r.err_fwp;
    j["err_pap"] = r.err_pap;
    j["err_narrow"] = r.err_narrow;
    j["err_int12"] = r.err_int12;
    j["err_int8"] = r.err_int8;
    rows.push_back(std::move(j));
  }
  os << t.str() << "\n";

  TextTable e({"benchmark", "err FWP", "err PAP", "err narrow", "err INT12", "err INT8"});
  for (const auto& r : data) {
    e.new_row()
        .add(r.benchmark)
        .add_num(r.err_fwp, 4)
        .add_num(r.err_pap, 4)
        .add_num(r.err_narrow, 4)
        .add_num(r.err_int12, 4)
        .add_num(r.err_int8, 4);
  }
  os << e.str("Measured isolated NRMSE (proxy inputs)") << "\n";
  os << fmt("Faster R-CNN reference: AP %.1f (paper Fig. 6a dashed line)\n",
            accuracy::ApModel::faster_rcnn_ap());

  Json out = Json::object();
  out["rows"] = std::move(rows);
  out["faster_rcnn_ap"] = accuracy::ApModel::faster_rcnn_ap();
  return out;
}

// ------------------------------------------------------------------- fig6b

Json run_fig6b_exp(Engine& engine, std::ostream& os) {
  os << "Figure 6(b) — Reduction from pruning (measured on scene workloads)\n\n";

  struct PaperRow {
    double points, pixels, flops;
  };
  const PaperRow paper[] = {{0.86, 0.42, 0.52}, {0.83, 0.44, 0.53}, {0.82, 0.44, 0.53}};

  TextTable t({"benchmark", "points", "paper", "fmap pixels", "paper", "FLOPs", "paper"});
  Json rows = Json::array();
  const auto data = core::run_fig6b(engine.pool());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto& r = data[i];
    t.new_row()
        .add(r.benchmark)
        .add(percent(r.point_reduction))
        .add(percent(paper[i].points))
        .add(percent(r.pixel_reduction))
        .add(percent(paper[i].pixels))
        .add(percent(r.flop_reduction))
        .add(percent(paper[i].flops));
    Json j = Json::object();
    j["benchmark"] = r.benchmark;
    j["point_reduction"] = r.point_reduction;
    j["pixel_reduction"] = r.pixel_reduction;
    j["flop_reduction"] = r.flop_reduction;
    j["paper_point_reduction"] = paper[i].points;
    j["paper_pixel_reduction"] = paper[i].pixels;
    j["paper_flop_reduction"] = paper[i].flops;
    rows.push_back(std::move(j));
  }
  os << t.str() << "\n";

  Json out = Json::object();
  out["rows"] = std::move(rows);
  return out;
}

// ------------------------------------------------------------------- fig7a

Json run_fig7a_exp(Engine& engine, std::ostream& os) {
  os << "Figure 7(a) — MSGS throughput boost, inter- vs intra-level banks\n";
  os << "(cycle-accurate simulation of the 16-bank fetch pipeline)\n\n";

  const double paper_boost[] = {3.09, 3.02, 3.06};

  TextTable t({"benchmark", "inter (pts/cyc)", "intra (pts/cyc)", "boost", "paper",
               "intra conflict rate", "boost under PAP (extra)"});
  Json rows = Json::array();
  const auto data = core::run_fig7a(engine.pool());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto& r = data[i];
    t.new_row()
        .add(r.benchmark)
        .add_num(r.inter_points_per_cycle, 3)
        .add_num(r.intra_points_per_cycle, 3)
        .add(ratio(r.boost))
        .add(ratio(paper_boost[i]))
        .add(percent(r.intra_conflict_rate))
        .add(ratio(r.boost_pruned));
    Json j = Json::object();
    j["benchmark"] = r.benchmark;
    j["inter_points_per_cycle"] = r.inter_points_per_cycle;
    j["intra_points_per_cycle"] = r.intra_points_per_cycle;
    j["boost"] = r.boost;
    j["paper_boost"] = paper_boost[i];
    j["intra_conflict_rate"] = r.intra_conflict_rate;
    j["boost_pruned"] = r.boost_pruned;
    rows.push_back(std::move(j));
  }
  os << t.str() << "\n";
  os << "Observation (ours): under PAP the gap narrows — partially-filled\n"
        "inter-level groups idle point-units, while intra-level groups pack\n"
        "survivors of one level more densely.\n";

  Json out = Json::object();
  out["rows"] = std::move(rows);
  return out;
}

// ------------------------------------------------------------------- fig7b

Json run_fig7b_exp(Engine& engine, std::ostream& os) {
  os << "Figure 7(b) — Energy savings of operator fusion and fmap reuse\n";
  os << "(share of MSGS memory-access energy of the respective baseline)\n\n";

  TextTable t({"benchmark", "fusion DRAM", "paper", "fusion SRAM", "paper",
               "reuse DRAM", "paper", "reuse SRAM", "paper"});
  Json rows = Json::array();
  const auto data = core::run_fig7b(engine.pool());
  for (const auto& r : data) {
    t.new_row()
        .add(r.benchmark)
        .add(percent(r.fusion_dram_saving))
        .add("73.3%")
        .add(percent(r.fusion_sram_saving))
        .add("15.9%")
        .add(percent(r.reuse_dram_saving))
        .add("88.2%")
        .add(percent(r.reuse_sram_saving))
        .add("22.7%");
    Json j = Json::object();
    j["benchmark"] = r.benchmark;
    j["fusion_dram_saving"] = r.fusion_dram_saving;
    j["fusion_sram_saving"] = r.fusion_sram_saving;
    j["reuse_dram_saving"] = r.reuse_dram_saving;
    j["reuse_sram_saving"] = r.reuse_sram_saving;
    j["fusion_extra_sram_frac"] = r.fusion_extra_sram_frac;
    j["prune_sram_access_frac"] = r.prune_sram_access_frac;
    rows.push_back(std::move(j));
  }
  os << t.str() << "\n";

  TextTable s({"benchmark", "fusion extra SRAM storage", "paper", "prune SRAM access",
               "paper"});
  for (const auto& r : data) {
    s.new_row()
        .add(r.benchmark)
        .add(percent(r.fusion_extra_sram_frac, 2))
        .add("+0.5%")
        .add(percent(r.prune_sram_access_frac, 3))
        .add("<0.1%");
  }
  os << s.str("Sanity rows quoted in the paper's text") << "\n";

  Json out = Json::object();
  out["rows"] = std::move(rows);
  return out;
}

// -------------------------------------------------------------------- fig8

Json energy_breakdown_json(const energy::EnergyBreakdown& e) {
  Json j = Json::object();
  j["dram_pj"] = e.dram_pj;
  j["sram_pj"] = e.sram_pj;
  j["pe_pj"] = e.pe_pj;
  j["softmax_pj"] = e.softmax_pj;
  j["other_logic_pj"] = e.other_logic_pj;
  return j;
}

Json run_fig8_exp(Engine& engine, std::ostream& os) {
  os << "Figure 8 — Area and energy breakdowns (De DETR workload)\n\n";

  const auto f8 = core::run_fig8(engine.pool());

  const double at = f8.area.total();
  TextTable a({"component", "mm^2", "share", "paper"});
  a.new_row().add("SRAM").add_num(f8.area.sram_mm2, 2).add(percent(f8.area.sram_mm2 / at, 0)).add("72%");
  a.new_row()
      .add("PE array + softmax")
      .add_num(f8.area.pe_softmax_mm2, 2)
      .add(percent(f8.area.pe_softmax_mm2 / at, 0))
      .add("23%");
  a.new_row()
      .add("others (masks/ctrl)")
      .add_num(f8.area.others_mm2, 2)
      .add(percent(f8.area.others_mm2 / at, 0))
      .add("5%");
  a.new_row().add("total").add_num(at, 2).add("100%").add("2.63 mm^2");
  os << a.str("(a) Area breakdown") << "\n";

  const auto print_energy = [&os](const char* title, const energy::EnergyBreakdown& e) {
    const double et = e.total_pj();
    TextTable t({"component", "mJ", "share", "paper"});
    t.new_row().add("DRAM").add_num(e.dram_pj * 1e-9, 2).add(percent(e.dram_pj / et, 0)).add("93%");
    t.new_row().add("SRAM").add_num(e.sram_pj * 1e-9, 2).add(percent(e.sram_pj / et, 0)).add("5%");
    t.new_row()
        .add("logic (PE+softmax+ctrl)")
        .add_num(e.logic_pj() * 1e-9, 2)
        .add(percent(e.logic_pj() / et, 0))
        .add("2%");
    os << t.str(title) << "\n";
  };

  print_energy("(b) Energy breakdown — activation restream dataflow (paper-like MM traffic)",
               f8.energy_restream);
  print_energy("(b') Energy breakdown — weights-resident stream-once dataflow (default)",
               f8.energy_default);

  os << "Note: DRAM is the dominant energy consumer in both dataflows, as the\n"
        "paper reports (\"large data transfer in MM\"); its extreme 93% share\n"
        "implies substantially more MM restreaming than the disclosed buffer\n"
        "sizes require on our workload — see EXPERIMENTS.md for the analysis.\n";

  Json out = Json::object();
  Json area = Json::object();
  area["sram_mm2"] = f8.area.sram_mm2;
  area["pe_softmax_mm2"] = f8.area.pe_softmax_mm2;
  area["others_mm2"] = f8.area.others_mm2;
  out["area"] = std::move(area);
  out["energy_restream"] = energy_breakdown_json(f8.energy_restream);
  out["energy_default"] = energy_breakdown_json(f8.energy_default);
  return out;
}

// -------------------------------------------------------------------- fig9

Json run_fig9_exp(Engine& engine, std::ostream& os) {
  os << "Figure 9 — Speedup and energy-efficiency gain over GPUs\n";
  os << "(DEFA tiled to the GPU's peak TOPS with a GPU-class memory system)\n\n";

  const double paper_speedup[] = {11.8, 31.9, 10.1, 29.4, 10.8, 30.2};
  const double paper_ee[] = {23.2, 37.7, 20.3, 35.3, 21.6, 36.3};

  TextTable t({"benchmark", "GPU", "tiles", "GPU (ms)", "DEFA (ms)", "speedup", "paper",
               "speedup (BW-free)", "EE gain", "paper", "EE (BW-free)"});
  Json rows = Json::array();
  const auto data = core::run_fig9(engine.pool());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto& r = data[i];
    t.new_row()
        .add(r.benchmark)
        .add(r.gpu)
        .add_int(r.tiles)
        .add_num(r.gpu_time_ms, 2)
        .add_num(r.defa_time_ms, 3)
        .add(ratio(r.speedup, 1))
        .add(ratio(paper_speedup[i], 1))
        .add(ratio(r.speedup_compute_bound, 1))
        .add(ratio(r.ee_improvement, 1))
        .add(ratio(paper_ee[i], 1))
        .add(ratio(r.ee_compute_bound, 1));
    Json j = Json::object();
    j["benchmark"] = r.benchmark;
    j["gpu"] = r.gpu;
    j["tiles"] = r.tiles;
    j["gpu_time_ms"] = r.gpu_time_ms;
    j["defa_time_ms"] = r.defa_time_ms;
    j["speedup"] = r.speedup;
    j["paper_speedup"] = paper_speedup[i];
    j["speedup_compute_bound"] = r.speedup_compute_bound;
    j["gpu_energy_j"] = r.gpu_energy_j;
    j["defa_energy_j"] = r.defa_energy_j;
    j["ee_improvement"] = r.ee_improvement;
    j["paper_ee_improvement"] = paper_ee[i];
    j["ee_compute_bound"] = r.ee_compute_bound;
    rows.push_back(std::move(j));
  }
  os << t.str() << "\n";
  os << "Reading: the faithful model (sliding-window fmap stream at the GPU's\n"
        "DRAM bandwidth) gives the left columns; the BW-free columns lift the\n"
        "DRAM roofline and bound the paper's reported near-linear scaling from\n"
        "above.  The paper's numbers sit between the two — see EXPERIMENTS.md.\n";

  Json out = Json::object();
  out["rows"] = std::move(rows);
  return out;
}

// ------------------------------------------------------------------ table1

Json run_table1_exp(Engine& engine, std::ostream& os) {
  os << "Table 1 — Comparison with other ASIC platforms\n\n";

  TextTable t({"design", "venue", "function", "tech", "area (mm^2)", "freq (MHz)",
               "precision", "power (mW)", "GOPS", "GOPS/W"});
  Json rows = Json::array();
  for (const auto& r : core::run_table1(engine.pool())) {
    t.new_row()
        .add(r.name)
        .add(r.venue)
        .add(r.function)
        .add(std::to_string(r.tech_nm) + "nm")
        .add_num(r.area_mm2, 2)
        .add_num(r.freq_mhz, 0)
        .add(r.precision)
        .add_num(r.power_mw, 1)
        .add_num(r.throughput_gops, 0)
        .add_num(r.ee_gops_per_w, 0);
    Json j = Json::object();
    j["name"] = r.name;
    j["venue"] = r.venue;
    j["function"] = r.function;
    j["tech_nm"] = r.tech_nm;
    j["area_mm2"] = r.area_mm2;
    j["freq_mhz"] = r.freq_mhz;
    j["precision"] = r.precision;
    j["power_mw"] = r.power_mw;
    j["throughput_gops"] = r.throughput_gops;
    j["ee_gops_per_w"] = r.ee_gops_per_w;
    rows.push_back(std::move(j));
  }
  os << t.str() << "\n";
  os << "Paper DEFA row: 2.63 mm^2 / 99.8 mW / 418 GOPS / 4187 GOPS/W.\n"
        "Throughput follows the effective-ops convention (dense ops / time),\n"
        "so pruning lifts it above the 204.8 GOPS dense peak.\n";

  Json out = Json::object();
  out["rows"] = std::move(rows);
  return out;
}

// --------------------------------------------------- ablation: prune sweep

Json run_ablation_prune_sweep_exp(Engine& engine, std::ostream& os) {
  os << "Ablation — PAP tau / FWP k sweeps (small configuration)\n\n";

  const auto& ap = accuracy::ApModel::paper_calibrated();
  Json out = Json::object();

  // Both sweeps are independent requests — fan them across the pool.
  const std::vector<double> taus = {0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.12};
  const std::vector<double> ks = {0.2, 0.4, 0.55, 0.66, 0.8, 1.0, 1.3};

  std::vector<EvalRequest> requests;
  for (const double tau : taus) {
    EvalRequest req;
    req.preset = "small";
    req.prune = core::PruneConfig::only_pap(tau);
    req.outputs = kFunctional;
    requests.push_back(std::move(req));
  }
  for (const double k : ks) {
    EvalRequest req;
    req.preset = "small";
    req.prune = core::PruneConfig::only_fwp(k);
    req.outputs = kFunctional;
    requests.push_back(std::move(req));
  }
  const std::vector<EvalResult> results = engine.run_batch(requests);

  {
    TextTable t({"tau", "points pruned", "FLOP reduction", "NRMSE", "proxy dAP"});
    Json rows = Json::array();
    for (std::size_t i = 0; i < taus.size(); ++i) {
      const FunctionalStats& f = *results[i].functional;
      const double dap = ap.drop(accuracy::Technique::kPap, f.final_nrmse);
      t.new_row()
          .add_num(taus[i], 3)
          .add(percent(f.point_reduction))
          .add(percent(f.flop_reduction))
          .add_num(f.final_nrmse, 4)
          .add_num(dap, 2);
      Json j = Json::object();
      j["tau"] = taus[i];
      j["point_reduction"] = f.point_reduction;
      j["flop_reduction"] = f.flop_reduction;
      j["final_nrmse"] = f.final_nrmse;
      j["proxy_ap_drop"] = dap;
      rows.push_back(std::move(j));
    }
    os << t.str("PAP threshold sweep (paper default tau = 0.03)") << "\n";
    out["pap_sweep"] = std::move(rows);
  }

  {
    TextTable t({"k", "pixels pruned", "FLOP reduction", "NRMSE", "proxy dAP"});
    Json rows = Json::array();
    for (std::size_t i = 0; i < ks.size(); ++i) {
      const FunctionalStats& f = *results[taus.size() + i].functional;
      const double dap = ap.drop(accuracy::Technique::kFwp, f.final_nrmse);
      t.new_row()
          .add_num(ks[i], 2)
          .add(percent(f.pixel_reduction))
          .add(percent(f.flop_reduction))
          .add_num(f.final_nrmse, 4)
          .add_num(dap, 2);
      Json j = Json::object();
      j["k"] = ks[i];
      j["pixel_reduction"] = f.pixel_reduction;
      j["flop_reduction"] = f.flop_reduction;
      j["final_nrmse"] = f.final_nrmse;
      j["proxy_ap_drop"] = dap;
      rows.push_back(std::move(j));
    }
    os << t.str("FWP multiplier sweep (Eq. 2; default k = 0.66)") << "\n";
    out["fwp_sweep"] = std::move(rows);
  }

  {
    const ModelConfig m = ModelConfig::small();
    std::vector<EvalRequest> combos;
    for (const auto& cfg : {core::PruneConfig::only_pap(), core::PruneConfig::only_fwp(),
                            core::PruneConfig::defa_default(m)}) {
      EvalRequest req;
      req.preset = "small";
      req.prune = cfg;
      req.outputs = kFunctional;
      combos.push_back(std::move(req));
    }
    const std::vector<EvalResult> combo_results = engine.run_batch(combos);

    TextTable t({"config", "points", "pixels", "FLOPs", "NRMSE"});
    Json rows = Json::array();
    for (const EvalResult& r : combo_results) {
      const FunctionalStats& f = *r.functional;
      t.new_row()
          .add(f.config_label)
          .add(percent(f.point_reduction))
          .add(percent(f.pixel_reduction))
          .add(percent(f.flop_reduction))
          .add_num(f.final_nrmse, 4);
      Json j = Json::object();
      j["config"] = f.config_label;
      j["point_reduction"] = f.point_reduction;
      j["pixel_reduction"] = f.pixel_reduction;
      j["flop_reduction"] = f.flop_reduction;
      j["final_nrmse"] = f.final_nrmse;
      rows.push_back(std::move(j));
    }
    os << t.str("Interaction: PAP concentrates sampling, boosting FWP") << "\n";
    out["interaction"] = std::move(rows);
  }
  return out;
}

// ----------------------------------------- ablation: bounded-range policies

Json run_ablation_range_narrowing_exp(Engine& engine, std::ostream& os) {
  os << "Ablation — bounded-range policies (Sec. 4.1)\n\n";

  Json out = Json::object();

  const ModelConfig paper_m = ModelConfig::deformable_detr();
  {
    const RangeSpec level_wise = RangeSpec::level_wise_default(paper_m.n_levels);
    const RangeSpec unified = RangeSpec::unified_from(level_wise);
    HwConfig hw_lw = HwConfig::make_default(paper_m);
    HwConfig hw_un = hw_lw;
    hw_un.ranges = unified;
    const double sram_lw = energy::area_breakdown(paper_m, hw_lw).sram_mm2;
    const double sram_un = energy::area_breakdown(paper_m, hw_un).sram_mm2;

    TextTable t({"policy", "radii (per level)", "window pixels", "SRAM mm^2", "extra"});
    const auto radii = [](const RangeSpec& s) {
      std::string r;
      for (int l = 0; l < s.used_levels; ++l) {
        r += (l > 0 ? "/" : "") + std::to_string(s.radius(l));
      }
      return r;
    };
    t.new_row()
        .add("level-wise (DEFA)")
        .add(radii(level_wise))
        .add_int(level_wise.window_pixels())
        .add_num(sram_lw, 2)
        .add("-");
    t.new_row()
        .add("unified")
        .add(radii(unified))
        .add_int(unified.window_pixels())
        .add_num(sram_un, 2)
        .add(percent(sram_un / sram_lw - 1.0));
    os << t.str("Storage (paper: unified costs ~+25%)") << "\n";

    Json storage = Json::object();
    storage["level_wise_radii"] = radii(level_wise);
    storage["unified_radii"] = radii(unified);
    storage["level_wise_window_pixels"] = static_cast<double>(level_wise.window_pixels());
    storage["unified_window_pixels"] = static_cast<double>(unified.window_pixels());
    storage["level_wise_sram_mm2"] = sram_lw;
    storage["unified_sram_mm2"] = sram_un;
    storage["unified_extra_frac"] = sram_un / sram_lw - 1.0;
    out["storage"] = std::move(storage);
  }

  // Radius sweep: accuracy cost vs on-chip window size (small config).
  const ModelConfig m = ModelConfig::small();
  const std::vector<int> radii = {2, 3, 4, 6, 8, 10};
  std::vector<EvalRequest> requests;
  for (const int r : radii) {
    core::PruneConfig cfg;
    cfg.label = "narrow";
    cfg.narrow = true;
    cfg.ranges = RangeSpec::unified(m.n_levels, r);
    EvalRequest req;
    req.preset = "small";
    req.prune = cfg;
    req.outputs = kFunctional;
    requests.push_back(std::move(req));
  }
  const std::vector<EvalResult> results = engine.run_batch(requests);

  TextTable t({"unified radius", "window pixels", "clamped points", "NRMSE"});
  Json rows = Json::array();
  for (std::size_t i = 0; i < radii.size(); ++i) {
    const FunctionalStats& f = *results[i].functional;
    const auto window = RangeSpec::unified(m.n_levels, radii[i]).window_pixels();
    t.new_row()
        .add_int(radii[i])
        .add_int(window)
        .add(percent(f.layers[0].clamped_frac, 2))
        .add_num(f.final_nrmse, 4);
    Json j = Json::object();
    j["radius"] = radii[i];
    j["window_pixels"] = static_cast<double>(window);
    j["clamped_frac_layer0"] = f.layers[0].clamped_frac;
    j["final_nrmse"] = f.final_nrmse;
    rows.push_back(std::move(j));
  }
  os << t.str("Radius sweep: SRAM vs accuracy trade-off") << "\n";
  out["radius_sweep"] = std::move(rows);
  return out;
}

// ------------------------------------------------- ablation: tile scaling

Json run_ablation_scaling_exp(Engine& engine, std::ostream& os) {
  os << "Ablation — DEFA tile scaling and the DRAM roofline\n\n";

  const ModelConfig m = ModelConfig::deformable_detr();
  const auto ctx = engine.pool().get(m);
  const auto traces = ctx->defa_traces();
  const double dense_ops = ctx->dense_encoder_flops();

  TextTable t({"tiles", "peak TOPS", "BW (GB/s)", "time (ms)", "eff. GOPS",
               "compute-bound time", "bound by"});
  Json rows = Json::array();
  for (const int tiles : {1, 4, 16, 66, 195, 512}) {
    HwConfig hw = HwConfig::make_default(m);
    hw.tiles = tiles;
    hw.dram_gbps = 1008.0;  // 3090Ti-class memory system
    const arch::DefaAccelerator acc(m, hw);
    const auto run = acc.simulate_run(traces);
    const auto sum = energy::summarize(m, hw, run, dense_ops);

    HwConfig free_bw = hw;
    free_bw.dram_gbps = 0.0;
    const arch::DefaAccelerator acc2(m, free_bw);
    const double t_free =
        static_cast<double>(acc2.simulate_run(traces).wall_cycles()) * hw.cycle_ns() * 1e-6;

    const bool dram_bound = sum.time_ms > t_free * 1.2;
    t.new_row()
        .add_int(tiles)
        .add_num(hw.peak_gops() * 1e-3, 1)
        .add_num(hw.dram_gbps, 0)
        .add_num(sum.time_ms, 3)
        .add_num(sum.effective_gops, 0)
        .add_num(t_free, 3)
        .add(dram_bound ? "DRAM" : "compute");
    Json j = Json::object();
    j["tiles"] = tiles;
    j["peak_tops"] = hw.peak_gops() * 1e-3;
    j["dram_gbps"] = hw.dram_gbps;
    j["time_ms"] = sum.time_ms;
    j["effective_gops"] = sum.effective_gops;
    j["compute_bound_time_ms"] = t_free;
    j["bound_by"] = dram_bound ? "DRAM" : "compute";
    rows.push_back(std::move(j));
  }
  os << t.str() << "\n";
  os << "The fmap window stream (each pixel refetched ~window-height times by\n"
        "the 1-D slide reuse of Fig. 4) fixes per-pass DRAM traffic; beyond\n"
        "~100 tiles the stream, not the PE array, sets the pass time.\n";

  Json out = Json::object();
  out["rows"] = std::move(rows);
  return out;
}

// -------------------------------------------------------------- microbench

/// Minimal deterministic-loop timer: runs `f` until ~`budget_s` of wall
/// time is spent, returns nanoseconds per call.  Coarse by design — the
/// microbench documents relative kernel costs, not stable absolutes.
template <typename F>
double time_ns_per_op(F&& f, double budget_s = 0.05) {
  using Clock = std::chrono::steady_clock;
  f();  // warmup
  const auto t0 = Clock::now();
  std::int64_t iters = 0;
  double elapsed_s = 0.0;
  do {
    f();
    ++iters;
    elapsed_s = std::chrono::duration<double>(Clock::now() - t0).count();
  } while (elapsed_s < budget_s);
  return elapsed_s * 1e9 / static_cast<double>(iters);
}

/// Noise-robust timer for the backend matrix: calibrates an iteration
/// count to ~`batch_s` of wall time, then reports the *minimum* ns/call
/// over `reps` batches.  The minimum is the standard robust estimator for
/// ratio comparisons on shared machines — transient load inflates some
/// batches, never deflates one.
template <typename F>
double min_ns_per_op(F&& f, double batch_s = 0.02, int reps = 5) {
  using Clock = std::chrono::steady_clock;
  f();  // warmup
  const auto c0 = Clock::now();
  f();
  const double once_s = std::chrono::duration<double>(Clock::now() - c0).count();
  const auto iters = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(batch_s / std::max(once_s, 1e-9)));
  double best_s = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    for (std::int64_t i = 0; i < iters; ++i) f();
    const double batch = std::chrono::duration<double>(Clock::now() - t0).count();
    best_s = std::min(best_s, batch / static_cast<double>(iters));
  }
  return best_s * 1e9;
}

/// Backend-matrix section of the microbench: the fused MSGS + aggregation
/// kernel of every registered backend, timed per PruneConfig-shaped
/// variant on the tiny preset's default scene workload, with speedups
/// against the `reference` backend.  Plan-consuming backends get the
/// cached per-layer sampling plan, matching how the EncoderPipeline calls
/// them in steady state.
Json run_backend_matrix(std::ostream& os) {
  const ModelConfig m = ModelConfig::tiny();
  workload::SceneParams sp;
  sp.seed = m.seed;
  const workload::SceneWorkload wl(m, sp);
  Rng rng(4);
  const Tensor values = Tensor::randn({m.n_in(), m.d_model}, rng);
  const nn::MsdaFields f = wl.layer_fields(0);
  const Tensor probs = nn::softmax_lastdim(f.logits);
  const kernels::SamplingPlan plan = kernels::SamplingPlan::build(m, f.locs);
  prune::PapStats pap_stats;
  const prune::PointMask pap_mask =
      prune::pap_prune(m, probs, core::PruneConfig::only_pap().pap_tau, &pap_stats);

  struct Variant {
    const char* config;           ///< PruneConfig-style label
    const prune::PointMask* mask;
    bool quantized;
  };
  const Variant variants[] = {
      {"baseline", nullptr, false},
      {"PAP", &pap_mask, false},
      {"INT12", nullptr, true},
      {"PAP+INT12", &pap_mask, true},
  };

  const double n_queries = static_cast<double>(m.n_in());
  TextTable t({"kernel", "config", "backend", "ns/query", "speedup vs reference"});
  Json matrix = Json::array();
  double sink = 0.0;
  // The reference backend is timed first per variant: it defines the
  // denominator every other backend's speedup is reported against.
  std::vector<std::string> ordered{"reference"};
  for (const std::string& name : kernels::backend_names()) {
    if (name != "reference") ordered.push_back(name);
  }
  for (const Variant& variant : variants) {
    double reference_ns = 0.0;
    for (const std::string& name : ordered) {
      const kernels::Backend& backend = kernels::backend(name);
      // A backend the binary contains but this host/config cannot run
      // (e.g. DEFA_SIMD forcing an ISA the CPU lacks) is *skipped with a
      // note*, never an error: the matrix documents what was measured.
      if (const std::string reason = backend.unavailable_reason(); !reason.empty()) {
        t.new_row()
            .add("msgs_aggregate")
            .add(variant.config)
            .add(name)
            .add("skipped")
            .add(reason);
        Json row = Json::object();
        row["kernel"] = "msgs_aggregate";
        row["config"] = variant.config;
        row["backend"] = name;
        row["skipped"] = true;
        row["note"] = reason;
        matrix.push_back(std::move(row));
        continue;
      }
      kernels::MsgsSpec spec;
      spec.point_mask = variant.mask;
      spec.quantized = variant.quantized;
      spec.plan = &plan;
      const double ns = min_ns_per_op([&] {
        sink += backend.run_msgs(m, values, probs, f.locs, spec)(0, 0);
      });
      if (name == "reference") reference_ns = ns;
      const double speedup = reference_ns > 0.0 ? reference_ns / ns : 0.0;
      t.new_row()
          .add("msgs_aggregate")
          .add(variant.config)
          .add(name)
          .add_num(ns / n_queries, 1)
          .add_num(speedup, 2);
      Json row = Json::object();
      row["kernel"] = "msgs_aggregate";
      row["config"] = variant.config;
      row["backend"] = name;
      row["ns_per_op"] = ns;
      row["ns_per_query"] = ns / n_queries;
      row["speedup_vs_reference"] = speedup;
      matrix.push_back(std::move(row));
    }
  }
  os << "Backend matrix (tiny preset, default scene; plan reused as in the\n"
        "EncoderPipeline steady state; 'reference' rows define speedup 1.0)\n\n";
  os << t.str() << "\n";
  os << fmt("(checksum %.3g — ignore; defeats dead-code elimination)\n\n", sink);

  Json out = Json::object();
  Json names = Json::array();
  for (const std::string& name : kernels::backend_names()) names.push_back(name);
  out["backends"] = std::move(names);
  out["workload"] = "tiny/default-scene";
  out["rows"] = std::move(matrix);
  return out;
}

/// Thread-scaling section: one *single* run_msgs call on the tiled
/// backend over a large scene (the `small` preset — 1700 queries, 4
/// levels), timed at executor counts 1..all via the DEFA_TILED_THREADS
/// knob.  This is the case the query-parallel backends cannot speed up —
/// one lone request on an otherwise idle machine — and the reason the
/// tiled backend exists.  On a single-core host the curve is flat by
/// construction; `hardware_executors` records how many executors the
/// measurement actually had.
Json run_tiled_scaling(std::ostream& os) {
  const ModelConfig m = ModelConfig::small();
  workload::SceneParams sp;
  sp.seed = m.seed;
  const workload::SceneWorkload wl(m, sp);
  Rng rng(6);
  const Tensor values = Tensor::randn({m.n_in(), m.d_model}, rng);
  const nn::MsdaFields f = wl.layer_fields(0);
  const Tensor probs = nn::softmax_lastdim(f.logits);
  const kernels::SamplingPlan plan = kernels::SamplingPlan::build(m, f.locs);
  const kernels::Backend& tiled = kernels::backend("tiled");
  kernels::MsgsSpec spec;
  spec.plan = &plan;

  const int executors = ThreadPool::global().size() + 1;
  const char* saved = std::getenv("DEFA_TILED_THREADS");
  const std::string restore = saved != nullptr ? saved : "";

  TextTable t({"threads", "ns/op", "speedup vs 1 thread"});
  Json rows = Json::array();
  double sink = 0.0;
  double one_thread_ns = 0.0;
  for (int threads = 1; threads <= executors; ++threads) {
    setenv("DEFA_TILED_THREADS", std::to_string(threads).c_str(), 1);
    const double ns = min_ns_per_op([&] {
      sink += tiled.run_msgs(m, values, probs, f.locs, spec)(0, 0);
    });
    if (threads == 1) one_thread_ns = ns;
    const double speedup = ns > 0.0 ? one_thread_ns / ns : 0.0;
    t.new_row().add_num(threads, 0).add_num(ns / 1e3, 1).add_num(speedup, 2);
    Json row = Json::object();
    row["threads"] = threads;
    row["ns_per_op"] = ns;
    row["speedup_vs_1thread"] = speedup;
    rows.push_back(std::move(row));
  }
  if (saved != nullptr) {
    setenv("DEFA_TILED_THREADS", restore.c_str(), 1);
  } else {
    unsetenv("DEFA_TILED_THREADS");
  }

  os << "Tiled-backend thread scaling (small preset, ONE run_msgs call —\n"
        "intra-request parallelism; ns/op column is microseconds)\n\n";
  os << t.str() << "\n";
  os << fmt("(checksum %.3g — ignore; defeats dead-code elimination)\n\n", sink);

  Json out = Json::object();
  out["workload"] = "small/default-scene";
  out["hardware_executors"] = executors;
  out["rows"] = std::move(rows);
  return out;
}

/// Locality section: the MSGS kernel of every backend across scene sizes
/// whose value memory ranges from cache-resident to several times L2 —
/// the regime the quill backend exists for.  Per cell: ns/query with the
/// cached plans (steady state), speedup against `fused` (the fastest
/// non-reordering CPU path and the baseline the quill win is judged
/// against).  quill cells additionally report the one-time locality-plan
/// build cost (amortized per query) and the reorder on/off delta via the
/// DEFA_QUILL_REORDER knob — the control isolating the query-reorder win
/// from the level-sequential restructuring.
Json run_locality_matrix(std::ostream& os) {
  // Pyramid scenes: level-0 halved (rounding up) per level, the FPN shape
  // of the real presets.  small == the `small` preset; large == the
  // deformable_detr COCO shape (~18 MB of value memory, >> L2).
  const auto pyramid_model = [](const char* name, int h0, int w0) {
    ModelConfig m;
    m.name = name;
    int h = h0, w = w0;
    for (int l = 0; l < 4; ++l) {
      m.levels.push_back(LevelShape{h, w});
      h = (h + 1) / 2;
      w = (w + 1) / 2;
    }
    m.n_layers = 1;
    m.baseline_ap = 45.0;
    m.seed = 11;
    m.validate();
    return m;
  };
  const ModelConfig scenes[] = {
      pyramid_model("small", 32, 40),     // 1700 queries, ~1.7 MB values
      pyramid_model("medium", 64, 80),    // 6800 queries, ~7.0 MB
      pyramid_model("large", 100, 134),   // 17821 queries, ~18.2 MB
  };

  const std::int64_t tile_elems = kernels::locality_tile_elems();
  std::vector<std::string> ordered{"fused"};
  for (const std::string& name : kernels::backend_names()) {
    if (name != "fused") ordered.push_back(name);
  }

  const char* saved = std::getenv("DEFA_QUILL_REORDER");
  const std::string restore = saved != nullptr ? saved : "";

  TextTable t({"scene", "queries", "value MB", "backend", "ns/query",
               "speedup vs fused"});
  Json scene_rows = Json::array();
  double sink = 0.0;
  for (const ModelConfig& m : scenes) {
    workload::SceneParams sp;
    sp.seed = m.seed;
    const workload::SceneWorkload wl(m, sp);
    Rng rng(8);
    const Tensor values = Tensor::randn({m.n_in(), m.d_model}, rng);
    const nn::MsdaFields f = wl.layer_fields(0);
    const Tensor probs = nn::softmax_lastdim(f.logits);
    const kernels::SamplingPlan plan = kernels::SamplingPlan::build(m, f.locs);
    const kernels::LocalityPlan loc = kernels::LocalityPlan::build(m, plan, tile_elems);
    const double n_queries = static_cast<double>(m.n_in());
    const double value_mb = static_cast<double>(m.n_in()) * m.d_model * 4.0 / 1048576.0;

    Json rows = Json::array();
    double fused_ns = 0.0;
    for (const std::string& name : ordered) {
      const kernels::Backend& backend = kernels::backend(name);
      if (const std::string reason = backend.unavailable_reason(); !reason.empty()) {
        t.new_row().add(m.name).add_num(n_queries, 0).add_num(value_mb, 1)
            .add(name).add("skipped").add(reason);
        Json row = Json::object();
        row["backend"] = name;
        row["skipped"] = true;
        row["note"] = reason;
        rows.push_back(std::move(row));
        continue;
      }
      kernels::MsgsSpec spec;
      spec.plan = &plan;
      if (backend.wants_locality()) spec.locality = &loc;
      const double ns = min_ns_per_op([&] {
        sink += backend.run_msgs(m, values, probs, f.locs, spec)(0, 0);
      });
      if (name == "fused") fused_ns = ns;
      const double speedup = fused_ns > 0.0 ? fused_ns / ns : 0.0;
      t.new_row().add(m.name).add_num(n_queries, 0).add_num(value_mb, 1)
          .add(name).add_num(ns / n_queries, 1).add_num(speedup, 2);
      Json row = Json::object();
      row["backend"] = name;
      row["ns_per_op"] = ns;
      row["ns_per_query"] = ns / n_queries;
      row["speedup_vs_fused"] = speedup;
      if (backend.wants_locality()) {
        // One-time planning cost, and the reorder on/off control.
        const double plan_ns = time_ns_per_op([&] {
          sink += static_cast<double>(
              kernels::LocalityPlan::build(m, plan, tile_elems).order(0)[0]);
        });
        row["plan_build_ns"] = plan_ns;
        row["plan_build_ns_per_query"] = plan_ns / n_queries;
        setenv("DEFA_QUILL_REORDER", "off", 1);
        const double off_ns = min_ns_per_op([&] {
          sink += backend.run_msgs(m, values, probs, f.locs, spec)(0, 0);
        });
        if (saved != nullptr) {
          setenv("DEFA_QUILL_REORDER", restore.c_str(), 1);
        } else {
          unsetenv("DEFA_QUILL_REORDER");
        }
        row["reorder_off_ns_per_query"] = off_ns / n_queries;
        row["reorder_speedup"] = ns > 0.0 ? off_ns / ns : 0.0;
      }
      rows.push_back(std::move(row));
    }
    Json scene = Json::object();
    scene["scene"] = m.name;
    scene["n_queries"] = static_cast<double>(m.n_in());
    scene["value_mb"] = value_mb;
    scene["rows"] = std::move(rows);
    scene_rows.push_back(std::move(scene));
  }

  os << "Locality matrix (one layer, cached plans; value-memory size vs the\n"
        "gather working set — quill reorders queries into cache-sized tiles,\n"
        "DEFA_L2_KB tile size; 'fused' rows define speedup 1.0)\n\n";
  os << t.str() << "\n";
  os << fmt("(checksum %.3g — ignore; defeats dead-code elimination)\n\n", sink);

  Json out = Json::object();
  out["tile_kb"] = static_cast<double>(tile_elems * 4 / 1024);
  out["scenes"] = std::move(scene_rows);
  return out;
}

Json run_microbench_exp(Engine&, std::ostream& os) {
  os << "Kernel microbenchmarks (wall-clock; coarse, relative costs)\n\n";

  // Sink defeating dead-code elimination across iterations.
  double sink = 0.0;

  TextTable t({"kernel", "ns/op"});
  Json rows = Json::array();
  const auto report = [&](const std::string& name, double ns) {
    t.new_row().add(name).add_num(ns, 1);
    Json j = Json::object();
    j["kernel"] = name;
    j["ns_per_op"] = ns;
    rows.push_back(std::move(j));
  };

  {
    SmallRng rng(1);
    const float t0 = static_cast<float>(rng.uniform01());
    const float t1 = static_cast<float>(rng.uniform01());
    report("bi_direct", time_ns_per_op([&] {
      sink += nn::bi_direct(1.0f, 2.0f, 3.0f, 4.0f, t0, t1);
    }));
    report("bi_horner", time_ns_per_op([&] {
      sink += nn::bi_horner(1.0f, 2.0f, 3.0f, 4.0f, t0, t1);
    }));
    report("bi_horner_int12", time_ns_per_op([&] {
      sink += static_cast<double>(quant::bi_horner_int(1000, -500, 250, 125, 2048, 1024, 12));
    }));
  }

  for (const int n : {16, 128}) {
    Rng rng(2);
    const Tensor logits = Tensor::randn({n}, rng);
    std::vector<float> buf(static_cast<std::size_t>(n));
    report(fmt("softmax_%d", n), time_ns_per_op([&] {
      std::copy(logits.data().begin(), logits.data().end(), buf.begin());
      nn::softmax_inplace(buf);
      sink += buf[0];
    }));
  }

  for (const int n : {64, 256}) {
    Rng rng(3);
    const Tensor a = Tensor::randn({n, n}, rng);
    const Tensor b = Tensor::randn({n, n}, rng);
    report(fmt("matmul_%dx%d", n, n), time_ns_per_op([&] {
      sink += nn::matmul(a, b)(0, 0);
    }, 0.2));
  }

  {
    const ModelConfig m = ModelConfig::tiny();
    workload::SceneParams sp;
    sp.seed = m.seed;
    const workload::SceneWorkload wl(m, sp);
    Rng rng(4);
    const Tensor values = Tensor::randn({m.n_in(), m.d_model}, rng);
    const nn::MsdaFields f = wl.layer_fields(0);
    const Tensor probs = nn::softmax_lastdim(f.logits);
    report("msgs_aggregate_tiny", time_ns_per_op([&] {
      sink += core::run_msgs(m, values, probs, f.locs, core::MsgsOptions{})(0, 0);
    }, 0.2));
    core::MsgsOptions opt;
    opt.quantized = true;
    report("msgs_aggregate_tiny_int12", time_ns_per_op([&] {
      sink += core::run_msgs(m, values, probs, f.locs, opt)(0, 0);
    }, 0.2));
    report("scene_generation_tiny", time_ns_per_op([&] {
      const workload::SceneWorkload w(m, sp);
      sink += w.fmap()(0, 0);
    }, 0.2));
  }

  os << t.str() << "\n";
  os << fmt("(checksum %.3g — ignores; defeats dead-code elimination)\n\n", sink);

  Json out = Json::object();
  Json meta = run_metadata();
  meta["backend"] = kernels::default_backend_name();
  out["meta"] = std::move(meta);
  out["rows"] = std::move(rows);
  out["backend_matrix"] = run_backend_matrix(os);
  out["tiled_scaling"] = run_tiled_scaling(os);
  out["locality"] = run_locality_matrix(os);
  return out;
}

}  // namespace

void register_builtin_experiments() {
  static const bool registered = [] {
    Registry& r = Registry::instance();
    r.add({"fig1b", "Fig. 1(b): MSDeformAttn latency breakdown on RTX 3090Ti",
           "Analytical GPU model of the dense block; reproduces the MSGS "
           "latency-vs-FLOP-share bottleneck argument.",
           run_fig1b_exp});
    r.add({"fig6a", "Fig. 6(a): detection AP, baseline vs DEFA (proxy model)",
           "Isolated per-technique NRMSE mapped through the calibrated AP "
           "proxy on all three paper benchmarks.",
           run_fig6a_exp});
    r.add({"fig6b", "Fig. 6(b): reduction of sampling points / pixels / FLOPs",
           "Full-DEFA pruning reductions measured on the scene workloads.",
           run_fig6b_exp});
    r.add({"fig7a", "Fig. 7(a): MSGS throughput, inter- vs intra-level banks",
           "Cycle-accurate 16-bank fetch pipeline at equal parallelism.",
           run_fig7a_exp});
    r.add({"fig7b", "Fig. 7(b): energy savings of operator fusion and fmap reuse",
           "MSGS memory-access energy ablation of the two dataflow tactics.",
           run_fig7b_exp});
    r.add({"fig8", "Fig. 8: area and energy breakdowns",
           "Chip area and per-component energy of one DEFA instance on the "
           "De DETR workload.",
           run_fig8_exp});
    r.add({"fig9", "Fig. 9: speedup and energy efficiency vs GPUs",
           "DEFA tiled to GPU-peak TOPS with a GPU-class memory system, vs "
           "RTX 2080Ti / 3090Ti.",
           run_fig9_exp});
    r.add({"table1", "Table 1: comparison with attention ASICs",
           "Literature rows plus the computed DEFA row from the simulator "
           "and energy model.",
           run_table1_exp});
    r.add({"ablation_prune_sweep", "Ablation: PAP tau / FWP k sweeps",
           "Sparsity/accuracy trade-off behind the paper's operating point "
           "(batched over the Engine).",
           run_ablation_prune_sweep_exp});
    r.add({"ablation_range_narrowing", "Ablation: bounded-range policies",
           "Level-wise vs unified restriction storage cost and the "
           "radius/accuracy trade-off.",
           run_ablation_range_narrowing_exp});
    r.add({"ablation_scaling", "Ablation: DEFA tile scaling and the DRAM roofline",
           "Where the sliding-window DRAM stream starts to bind under "
           "Fig. 9-style tiling.",
           run_ablation_scaling_exp});
    r.add({"microbench", "Kernel microbenchmarks + backend matrix",
           "Wall-clock costs of the hot functional-model kernels (bilinear "
           "forms, INT12 datapath, softmax, matmul) and the per-backend "
           "fused-MSGS matrix with speedups vs the reference backend "
           "(the BENCH_kernels.json artifact).",
           run_microbench_exp});
    return true;
  }();
  (void)registered;
}

}  // namespace defa::api
