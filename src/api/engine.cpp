#include "api/engine.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/thread_pool.h"
#include "kernels/backend.h"
#include "kernels/plan.h"
#include "obs/trace.h"

namespace defa::api {

Engine::Engine(Options options) : options_(options), pool_(options.max_contexts) {
  DEFA_CHECK(options_.backend.empty() ||
                 kernels::find_backend(options_.backend) != nullptr,
             "Engine: unknown backend '" + options_.backend + "'");
}

std::shared_ptr<core::BenchmarkContext> Engine::context(
    const ModelConfig& m, const workload::SceneParams& scene) {
  return pool_.get(m, scene);
}

std::shared_ptr<core::BenchmarkContext> Engine::context(const ModelConfig& m) {
  return pool_.get(m);
}

std::size_t Engine::memoized_results() const {
  const std::lock_guard<std::mutex> lock(memo_mu_);
  return memo_.size();
}

void Engine::evict_memo_locked(std::size_t max_memo) {
  while (max_memo > 0 && memo_.size() > max_memo) {
    auto lru = memo_.begin();
    for (auto it = memo_.begin(); it != memo_.end(); ++it) {
      if (it->second.last_used < lru->second.last_used) lru = it;
    }
    memo_.erase(lru);
    ++memo_evictions_;
  }
}

void Engine::reconfigure(const Reconfig& rc) {
  if (rc.backend.has_value()) {
    DEFA_CHECK(rc.backend->empty() ||
                   kernels::find_backend(*rc.backend) != nullptr,
               "Engine: unknown backend '" + *rc.backend + "'");
  }
  {
    const std::lock_guard<std::mutex> lock(options_mu_);
    if (rc.backend.has_value()) options_.backend = *rc.backend;
    if (rc.max_contexts.has_value()) options_.max_contexts = *rc.max_contexts;
    if (rc.max_memo.has_value()) options_.max_memo = *rc.max_memo;
    if (rc.memoize_results.has_value()) {
      options_.memoize_results = *rc.memoize_results;
    }
  }
  // Enforce shrunken bounds immediately (a tightened cache that only
  // honors its bound on the next miss would overreport residency).
  if (rc.max_contexts.has_value()) pool_.set_max_contexts(*rc.max_contexts);
  if (rc.max_memo.has_value()) {
    const std::lock_guard<std::mutex> lock(memo_mu_);
    evict_memo_locked(*rc.max_memo);
  }
}

void Engine::reset_stats() {
  pool_.reset_stats();
  kernels::PlanCache::reset_global_counters();
  const std::lock_guard<std::mutex> lock(memo_mu_);
  memo_hits_ = 0;
  memo_misses_ = 0;
  memo_evictions_ = 0;
}

void Engine::clear_caches() {
  pool_.clear();
  const std::lock_guard<std::mutex> lock(memo_mu_);
  memo_.clear();
}

Engine::CacheStats Engine::cache_stats() const {
  CacheStats s;
  s.context = pool_.stats();
  const kernels::PlanCache::GlobalStats plans = kernels::PlanCache::global_stats();
  s.plan_hits = plans.hits;
  s.plan_misses = plans.misses;
  s.plan_entries = plans.entries;
  const std::lock_guard<std::mutex> lock(memo_mu_);
  s.memo_hits = memo_hits_;
  s.memo_misses = memo_misses_;
  s.memo_evictions = memo_evictions_;
  return s;
}

EvalResult Engine::run(const EvalRequest& request) {
  request.validate();
  // One coherent view of the tunables for this whole run: a concurrent
  // reconfigure affects the next run, never half of this one.
  bool memoize;
  std::string backend;
  std::size_t max_memo;
  {
    const std::lock_guard<std::mutex> lock(options_mu_);
    memoize = options_.memoize_results;
    backend = options_.backend;
    max_memo = options_.max_memo;
  }
  if (!memoize) return evaluate(request, backend);
  const std::string key = request.request_key(backend);
  {
    DEFA_TRACE_SPAN("memo_lookup", "engine");
    const std::lock_guard<std::mutex> lock(memo_mu_);
    const auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++memo_hits_;
      it->second.last_used = ++memo_tick_;
      return it->second.result;
    }
    ++memo_misses_;
  }
  EvalResult result = evaluate(request, backend);
  {
    const std::lock_guard<std::mutex> lock(memo_mu_);
    if (memo_.find(key) == memo_.end()) {
      // Mirror ContextPool: when an insert would exceed the bound, drop
      // the least-recently-used entry (concurrent evaluations of the same
      // key dedup on the find above).
      if (max_memo > 0 && memo_.size() >= max_memo) {
        evict_memo_locked(max_memo - 1);
      }
      memo_.emplace(key, MemoEntry{result, ++memo_tick_});
    }
  }
  return result;
}

std::vector<EvalResult> Engine::run_batch(const std::vector<EvalRequest>& requests) {
  // Fail fast on malformed requests before any evaluation starts.
  for (const EvalRequest& r : requests) r.validate();

  const auto n = static_cast<std::int64_t>(requests.size());
  std::vector<EvalResult> results(requests.size());
  int max_parallel;
  {
    const std::lock_guard<std::mutex> lock(options_mu_);
    max_parallel = options_.max_parallel_requests;
  }
  const int cap = max_parallel > 0 ? max_parallel : hardware_threads();

  if (cap <= 1 || n <= 1) {
    for (std::int64_t i = 0; i < n; ++i) {
      results[static_cast<std::size_t>(i)] = run(requests[static_cast<std::size_t>(i)]);
    }
    return results;
  }

  // Fan the requests over the shared persistent pool (no per-call thread
  // spawning).  Each result slot is written by exactly one executor, so
  // the output is deterministic regardless of the interleaving; the first
  // exception propagates to the caller after all requests settle.
  ThreadPool::global().run_indexed(n, cap, [&](std::int64_t i) {
    results[static_cast<std::size_t>(i)] = run(requests[static_cast<std::size_t>(i)]);
  });
  return results;
}

// --------------------------------------------------------------- evaluation

namespace {

bool same_ranges(const RangeSpec& a, const RangeSpec& b) {
  if (a.used_levels != b.used_levels) return false;
  for (int l = 0; l < a.used_levels; ++l) {
    if (a.radius(l) != b.radius(l)) return false;
  }
  return true;
}

/// Does `cfg` match the full-DEFA default the context caches?  The label
/// participates: a relabelled-but-equivalent config must take the uncached
/// path so its result carries the caller's label.
bool is_defa_default(const core::PruneConfig& cfg, const ModelConfig& m) {
  const core::PruneConfig d = core::PruneConfig::defa_default(m);
  return cfg.label == d.label && cfg.pap == d.pap && cfg.pap_tau == d.pap_tau &&
         cfg.fwp == d.fwp && cfg.fwp_k == d.fwp_k && cfg.narrow == d.narrow &&
         same_ranges(cfg.ranges, d.ranges) && cfg.quantize == d.quantize &&
         cfg.bits == d.bits;
}

FunctionalStats functional_stats(const core::EncoderResult& enc) {
  FunctionalStats f;
  f.config_label = enc.config_label;
  f.point_reduction = enc.point_reduction();
  f.pixel_reduction = enc.pixel_reduction();
  f.flop_reduction = enc.flop_reduction();
  f.final_nrmse = enc.final_nrmse;
  f.dense_gflops = enc.total_dense.total() * 1e-9;
  f.actual_gflops = enc.total_actual.total() * 1e-9;
  f.layers.reserve(enc.layers.size());
  for (const core::LayerRunStats& l : enc.layers) {
    LayerFunctionalRow row;
    row.layer = l.layer;
    row.pap_pruned_frac = l.pap.fraction_pruned();
    row.fwp_mask_out_frac = l.fwp.fraction_pruned();
    row.pixels_pruned_frac =
        l.total_pixels > 0
            ? 1.0 - static_cast<double>(l.kept_pixels) / static_cast<double>(l.total_pixels)
            : 0.0;
    row.clamped_frac = l.clamp.fraction_clamped();
    row.flops_saved_frac =
        l.flops_dense.total() > 0 ? 1.0 - l.flops_actual.total() / l.flops_dense.total()
                                  : 0.0;
    row.out_nrmse = l.out_nrmse;
    row.total_points = static_cast<double>(l.total_points);
    row.kept_points = static_cast<double>(l.kept_points);
    row.total_pixels = static_cast<double>(l.total_pixels);
    row.kept_pixels = static_cast<double>(l.kept_pixels);
    f.layers.push_back(std::move(row));
  }
  return f;
}

PhaseRow phase_row(const arch::PhaseStats& p) {
  PhaseRow r;
  r.name = p.name;
  r.cycles = static_cast<double>(p.cycles);
  r.stall_cycles = static_cast<double>(p.stall_cycles);
  r.macs = static_cast<double>(p.macs);
  r.sram_read_bytes = static_cast<double>(p.sram_read_bytes);
  r.sram_write_bytes = static_cast<double>(p.sram_write_bytes);
  r.dram_read_bytes = static_cast<double>(p.dram_read_bytes);
  r.dram_write_bytes = static_cast<double>(p.dram_write_bytes);
  return r;
}

LatencyStats latency_stats(const arch::RunPerf& run, const energy::PerfSummary& sum) {
  LatencyStats l;
  l.wall_cycles = static_cast<double>(run.wall_cycles());
  l.time_ms = sum.time_ms;
  l.effective_gops = sum.effective_gops;

  arch::MsgsPerf msgs;
  for (const arch::LayerPerf& layer : run.layers) msgs += layer.msgs;
  l.msgs_groups = static_cast<double>(msgs.groups);
  l.msgs_conflict_groups = static_cast<double>(msgs.conflict_groups);
  l.msgs_points_per_cycle = msgs.points_per_cycle();

  if (!run.layers.empty()) {
    l.steady_state_layer = run.layers.size() > 1 ? 1 : 0;
    const arch::LayerPerf& steady =
        run.layers[static_cast<std::size_t>(l.steady_state_layer)];
    for (const arch::PhaseStats& p : steady.phases) l.steady_phases.push_back(phase_row(p));

    // Per-phase totals across blocks, keyed by phase name in first-seen order.
    std::vector<arch::PhaseStats> totals;
    for (const arch::LayerPerf& layer : run.layers) {
      for (const arch::PhaseStats& p : layer.phases) {
        auto it = std::find_if(totals.begin(), totals.end(),
                               [&](const arch::PhaseStats& t) { return t.name == p.name; });
        if (it == totals.end()) {
          totals.push_back(p);
        } else {
          *it += p;
        }
      }
    }
    for (const arch::PhaseStats& p : totals) l.total_phases.push_back(phase_row(p));
  }
  return l;
}

EnergyStats energy_stats(const ModelConfig& m, const HwConfig& hw,
                         const arch::RunPerf& run, const energy::PerfSummary& sum) {
  const energy::EnergyBreakdown e = energy::energy_breakdown(m, hw, run);
  const energy::AreaBreakdown a = energy::area_breakdown(m, hw);
  EnergyStats s;
  s.pe_pj = e.pe_pj;
  s.softmax_pj = e.softmax_pj;
  s.sram_pj = e.sram_pj;
  s.other_logic_pj = e.other_logic_pj;
  s.dram_pj = e.dram_pj;
  s.area_sram_mm2 = a.sram_mm2;
  s.area_pe_softmax_mm2 = a.pe_softmax_mm2;
  s.area_others_mm2 = a.others_mm2;
  s.chip_power_mw = sum.chip_power_mw;
  s.system_power_mw = sum.system_power_mw;
  s.gops_per_w = sum.gops_per_w;
  for (const auto& macro : energy::build_sram_plan(m, hw).macros) {
    SramMacroRow row;
    row.name = macro.name;
    row.capacity_bytes = static_cast<double>(macro.capacity_bytes);
    row.count = static_cast<double>(macro.count);
    row.word_bytes = static_cast<double>(macro.word_bytes);
    s.sram_macros.push_back(std::move(row));
  }
  return s;
}

AccuracyStats accuracy_stats(const ModelConfig& m, const core::PruneConfig& cfg,
                             const core::EncoderPipeline& pipe,
                             const core::EncoderResult* enc,
                             const kernels::Backend& backend) {
  using accuracy::ApModel;
  using accuracy::Technique;
  const ApModel& ap = ApModel::paper_calibrated();

  AccuracyStats a;
  a.baseline_ap = m.baseline_ap;

  // When exactly one technique is enabled, the request's own pipeline run
  // (if we already have it) IS the isolated measurement — skip the rerun.
  const int enabled_count = static_cast<int>(cfg.fwp) + static_cast<int>(cfg.pap) +
                            static_cast<int>(cfg.narrow) + static_cast<int>(cfg.quantize);
  const bool reuse_enc = enc != nullptr && enabled_count == 1;

  // The paper reports technique costs additively (Fig. 6a), so each
  // enabled technique is measured in isolation at the request's own
  // thresholds and mapped through its calibrated curve.
  const auto add_drop = [&](const std::string& name, Technique t,
                            const core::PruneConfig& isolated) {
    TechniqueDrop d;
    d.technique = name;
    d.measured_error =
        reuse_enc ? enc->final_nrmse : pipe.run(isolated, &backend).final_nrmse;
    d.ap_drop = ap.drop(t, d.measured_error);
    a.drops.push_back(std::move(d));
  };

  if (cfg.fwp) add_drop("fwp", Technique::kFwp, core::PruneConfig::only_fwp(cfg.fwp_k));
  if (cfg.pap) add_drop("pap", Technique::kPap, core::PruneConfig::only_pap(cfg.pap_tau));
  if (cfg.narrow) {
    core::PruneConfig iso;
    iso.label = "range-narrowing";
    iso.narrow = true;
    iso.ranges = cfg.ranges;
    add_drop("narrow", Technique::kNarrow, iso);
  }
  if (cfg.quantize) {
    // The proxy is calibrated at the paper's two datapoints; widths >= 10
    // bits behave like the accepted INT12 curve, narrower ones like the
    // rejected INT8 curve.
    const Technique t = cfg.bits >= 10 ? Technique::kQuant12 : Technique::kQuant8;
    add_drop("quant", t, core::PruneConfig::only_quant(cfg.bits));
  }

  double total_drop = 0.0;
  for (const TechniqueDrop& d : a.drops) total_drop += d.ap_drop;
  a.proxy_ap = a.baseline_ap - total_drop;
  return a;
}

}  // namespace

EvalResult Engine::evaluate(const EvalRequest& request,
                            const std::string& default_backend) {
  DEFA_TRACE_SPAN_ARG("evaluate", "engine", "benchmark", request.preset);
  const ModelConfig m = request.resolve_model();
  const workload::SceneParams scene = request.resolve_scene(m);
  const core::PruneConfig cfg = request.resolve_prune(m);
  const kernels::Backend& backend =
      kernels::backend(request.resolve_backend(default_backend));
  std::shared_ptr<core::BenchmarkContext> ctx;
  {
    DEFA_TRACE_SPAN("context_lookup", "engine");
    ctx = pool_.get(m, scene);
  }

  EvalResult result;
  result.benchmark = m.name;
  result.workload_key = core::ContextPool::key_of(m, scene);
  result.outputs = request.outputs;

  // The functional run feeds the functional section AND the simulator
  // masks, so it is needed for any of functional/latency/energy.
  const bool need_encoder =
      (request.outputs & (kFunctional | kLatency | kEnergy)) != 0;
  const bool default_cfg = is_defa_default(cfg, m);
  const core::EncoderResult* enc = nullptr;
  core::EncoderResult enc_local;
  if (need_encoder) {
    DEFA_TRACE_SPAN_ARG("encoder", "engine", "cached",
                        default_cfg ? "maybe" : "no");
    if (default_cfg) {
      // Shared cache across requests: the first caller's backend performs
      // the one-time build; backends are bit-identical, so reusing the
      // cached result under any requested backend returns the same bytes.
      enc = &ctx->defa_result(&backend);
    } else {
      enc_local = ctx->pipeline().run(cfg, &backend);
      enc = &enc_local;
    }
  }

  if ((request.outputs & kFunctional) != 0) {
    result.functional = functional_stats(*enc);
  }

  if ((request.outputs & (kLatency | kEnergy)) != 0) {
    DEFA_TRACE_SPAN("simulate", "engine");
    const HwConfig hw = request.resolve_hw(m);
    const std::vector<arch::LayerTrace> traces =
        default_cfg ? ctx->defa_traces() : ctx->traces_for(*enc);
    const arch::DefaAccelerator acc(m, hw);
    const arch::RunPerf run = acc.simulate_run(traces);
    const energy::PerfSummary sum =
        energy::summarize(m, hw, run, ctx->dense_encoder_flops());
    if ((request.outputs & kLatency) != 0) result.latency = latency_stats(run, sum);
    if ((request.outputs & kEnergy) != 0) result.energy = energy_stats(m, hw, run, sum);
  }

  if ((request.outputs & kAccuracy) != 0) {
    DEFA_TRACE_SPAN("accuracy", "engine");
    result.accuracy = accuracy_stats(m, cfg, ctx->pipeline(), enc, backend);
  }

  return result;
}

}  // namespace defa::api
