#pragma once

/// \file registry.h
/// String-keyed experiment registry: every paper figure/table (and the
/// repo's own ablations) is a self-describing experiment that runs through
/// a shared `Engine`, prints its human-readable tables to a stream and
/// returns machine-readable JSON.  The 12 bench binaries are thin wrappers
/// over `experiment_main`, and `defa_cli` drives the same registry
/// (`defa_cli list` / `defa_cli run <name> [--json out.json]`).

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/result_io.h"

namespace defa::api {

struct Experiment {
  std::string name;         ///< registry key, e.g. "fig6b"
  std::string title;        ///< one-line human title
  std::string description;  ///< what the experiment reproduces/measures
  /// Runs the experiment: prints tables to the stream, returns the JSON
  /// payload (always an object with at least {"experiment": name}).
  std::function<Json(Engine&, std::ostream&)> run;
};

class Registry {
 public:
  [[nodiscard]] static Registry& instance();

  /// Register an experiment; throws defa::CheckError on a duplicate name.
  void add(Experiment e);

  [[nodiscard]] const Experiment* find(const std::string& name) const;
  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const;

 private:
  Registry() = default;
  std::vector<Experiment> experiments_;
};

/// Register the built-in paper experiments (fig1b..fig9, table1, the three
/// ablations and the kernel microbench).  Idempotent.
void register_builtin_experiments();

/// Look up and run one registered experiment.  Throws defa::CheckError on
/// an unknown name.  Prints the experiment's tables to `out`; returns its
/// JSON (with "experiment"/"title" stamped in).
[[nodiscard]] Json run_experiment(Engine& engine, const std::string& name,
                                  std::ostream& out);

/// Shared main() body of the thin bench wrappers: runs `name` on a fresh
/// Engine, honoring an optional `--json <file>` argument pair.  Returns
/// the process exit code (0 on success).
[[nodiscard]] int experiment_main(const std::string& name, int argc, char** argv);

}  // namespace defa::api
