#include "api/result_io.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>

namespace defa::api {

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  DEFA_CHECK(type_ == Type::kBool, "Json: not a bool");
  return bool_;
}

double Json::as_number() const {
  DEFA_CHECK(type_ == Type::kNumber, "Json: not a number");
  return num_;
}

std::int64_t Json::as_int() const {
  const double v = as_number();
  const auto i = static_cast<std::int64_t>(v);
  DEFA_CHECK(static_cast<double>(i) == v, "Json: number is not an integer");
  return i;
}

const std::string& Json::as_string() const {
  DEFA_CHECK(type_ == Type::kString, "Json: not a string");
  return str_;
}

void Json::push_back(Json v) {
  DEFA_CHECK(type_ == Type::kArray, "Json: push_back on non-array");
  arr_.push_back(std::move(v));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  DEFA_CHECK(false, "Json: size() on scalar");
  return 0;
}

const Json& Json::at(std::size_t i) const {
  DEFA_CHECK(type_ == Type::kArray, "Json: indexed access on non-array");
  DEFA_CHECK(i < arr_.size(), "Json: array index out of range");
  return arr_[i];
}

const std::vector<Json>& Json::items() const {
  DEFA_CHECK(type_ == Type::kArray, "Json: items() on non-array");
  return arr_;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;  // convenience: {}["k"]
  DEFA_CHECK(type_ == Type::kObject, "Json: keyed access on non-object");
  for (auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  obj_.emplace_back(key, Json());
  return obj_.back().second;
}

const Json& Json::at(const std::string& key) const {
  const Json* p = find(key);
  DEFA_CHECK(p != nullptr, "Json: missing key '" + key + "'");
  return *p;
}

const Json* Json::find(const std::string& key) const {
  DEFA_CHECK(type_ == Type::kObject, "Json: keyed access on non-object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Json::contains(const std::string& key) const { return find(key) != nullptr; }

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  DEFA_CHECK(type_ == Type::kObject, "Json: members() on non-object");
  return obj_;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kNumber:
      return a.num_ == b.num_;
    case Json::Type::kString:
      return a.str_ == b.str_;
    case Json::Type::kArray:
      return a.arr_ == b.arr_;
    case Json::Type::kObject:
      return a.obj_ == b.obj_;
  }
  return false;
}

// ------------------------------------------------------------------- writer

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double v, std::string& out) {
  DEFA_CHECK(std::isfinite(v), "Json: cannot serialize a non-finite number");
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    // Integral values print without an exponent or trailing zeros.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  const std::string pad(indent > 0 ? static_cast<std::size_t>(indent) : 0, ' ');

  const auto newline = [&](std::string& o, int depth) {
    if (indent < 0) return;
    o += '\n';
    for (int i = 0; i < depth; ++i) o += pad;
  };

  const std::function<void(const Json&, int)> emit = [&](const Json& v, int depth) {
    switch (v.type_) {
      case Type::kNull: out += "null"; break;
      case Type::kBool: out += v.bool_ ? "true" : "false"; break;
      case Type::kNumber: dump_number(v.num_, out); break;
      case Type::kString: dump_string(v.str_, out); break;
      case Type::kArray: {
        if (v.arr_.empty()) { out += "[]"; break; }
        out += '[';
        for (std::size_t i = 0; i < v.arr_.size(); ++i) {
          if (i > 0) out += ',';
          newline(out, depth + 1);
          emit(v.arr_[i], depth + 1);
        }
        newline(out, depth);
        out += ']';
        break;
      }
      case Type::kObject: {
        if (v.obj_.empty()) { out += "{}"; break; }
        out += '{';
        for (std::size_t i = 0; i < v.obj_.size(); ++i) {
          if (i > 0) out += ",";
          newline(out, depth + 1);
          dump_string(v.obj_[i].first, out);
          out += indent < 0 ? ":" : ": ";
          emit(v.obj_[i].second, depth + 1);
        }
        newline(out, depth);
        out += '}';
        break;
      }
    }
  };
  emit(*this, 0);
  return out;
}

// ------------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    check(pos_ == s_.size(), "trailing characters after JSON value");
    return v;
  }

 private:
  void check(bool cond, const std::string& what) const {
    DEFA_CHECK(cond, "Json parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    check(pos_ < s_.size(), "unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    check(pos_ < s_.size() && s_[pos_] == c,
          std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Json(string());
    if (c == 't') { check(consume_literal("true"), "bad literal"); return Json(true); }
    if (c == 'f') { check(consume_literal("false"), "bad literal"); return Json(false); }
    if (c == 'n') { check(consume_literal("null"), "bad literal"); return Json(); }
    return number();
  }

  Json object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') { ++pos_; return obj; }
    while (true) {
      skip_ws();
      check(peek() == '"', "expected object key");
      std::string key = string();
      skip_ws();
      expect(':');
      check(!obj.contains(key), "duplicate object key '" + key + "'");
      obj[key] = value();
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return obj;
    }
  }

  Json array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') { ++pos_; return arr; }
    while (true) {
      arr.push_back(value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return arr;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      check(pos_ < s_.size(), "unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        check(static_cast<unsigned char>(c) >= 0x20, "unescaped control character");
        out += c;
        continue;
      }
      check(pos_ < s_.size(), "unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          check(pos_ + 4 <= s_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else check(false, "bad \\u escape");
          }
          // Encode as UTF-8 (BMP only; our writer never emits surrogates).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: check(false, "unknown escape"); break;
      }
    }
  }

  Json number() {
    // RFC 8259 grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    const std::size_t start = pos_;
    const auto digit = [&] {
      return pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]));
    };
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    check(digit(), "expected a value");
    if (s_[pos_] == '0') {
      ++pos_;
      check(!digit(), "leading zeros are not allowed");
    } else {
      while (digit()) ++pos_;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      check(digit(), "digit required after decimal point");
      while (digit()) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      check(digit(), "digit required in exponent");
      while (digit()) ++pos_;
    }
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    check(end != nullptr && *end == '\0' && std::isfinite(v),
          "malformed number '" + tok + "'");
    return Json(v);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).run(); }

void write_json_file(const std::string& path, const Json& v) {
  std::ofstream out(path);
  DEFA_CHECK(out.good(), "cannot open '" + path + "' for writing");
  out << v.dump(2) << '\n';
  out.close();
  DEFA_CHECK(out.good(), "failed to write '" + path + "'");
}

Json read_json_file(const std::string& path) {
  std::ifstream in(path);
  DEFA_CHECK(in.good(), "cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return Json::parse(buf.str());
}

}  // namespace defa::api
