#include "api/run_meta.h"

#include <unistd.h>

#include <cstdio>
#include <ctime>

namespace defa::api {

Json run_metadata() {
  Json meta = Json::object();

  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  char stamp[80] = "unknown";
  if (gmtime_r(&now, &utc) != nullptr) {
    std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                  utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                  utc.tm_min, utc.tm_sec);
  }
  meta["timestamp"] = stamp;

  char host[256];
  if (::gethostname(host, sizeof(host)) == 0) {
    host[sizeof(host) - 1] = '\0';
    meta["hostname"] = host;
  } else {
    meta["hostname"] = "unknown";
  }
  return meta;
}

}  // namespace defa::api
