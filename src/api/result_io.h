#pragma once

/// \file result_io.h
/// Machine-readable experiment output: a small ordered JSON value type with
/// a writer and a strict parser.  Every registered experiment and every
/// `Engine` evaluation can be serialized through this module, so the bench
/// trajectory (and CI) consume one format.
///
/// Design notes:
///  * objects preserve insertion order (stable diffs across runs);
///  * numbers are stored as double and printed with up to 17 significant
///    digits, so a dump -> parse round trip reproduces them bit-exactly;
///  * the parser is strict JSON (RFC 8259 subset: no comments, no trailing
///    commas) and throws defa::CheckError on malformed input.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace defa::api {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }

  // ---- scalar accessors (checked) -----------------------------------------
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;  ///< checked narrowing
  [[nodiscard]] const std::string& as_string() const;

  // ---- array access -------------------------------------------------------
  void push_back(Json v);
  [[nodiscard]] std::size_t size() const;  ///< array/object element count
  [[nodiscard]] const Json& at(std::size_t i) const;
  [[nodiscard]] const std::vector<Json>& items() const;

  // ---- object access ------------------------------------------------------
  /// Insert-or-assign on an object (creates the key at the end).
  Json& operator[](const std::string& key);
  /// Checked lookup: throws when the key is absent.
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] const Json* find(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const;

  // ---- serialization ------------------------------------------------------
  /// `indent < 0` prints compact one-line JSON; `indent >= 0` pretty-prints.
  [[nodiscard]] std::string dump(int indent = -1) const;
  /// Strict parse; throws defa::CheckError with position info on error.
  [[nodiscard]] static Json parse(const std::string& text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// Write `v` to `path` (pretty-printed, trailing newline).  Throws
/// defa::CheckError when the file cannot be written.
void write_json_file(const std::string& path, const Json& v);

/// Read and parse a JSON file.  Throws defa::CheckError on I/O or parse
/// failure.
[[nodiscard]] Json read_json_file(const std::string& path);

}  // namespace defa::api
