#pragma once

/// \file engine.h
/// `defa::Engine` — the thread-safe facade every driver (bench binaries,
/// examples, defa_cli, registered experiments) evaluates workloads through.
///
/// The Engine owns a keyed cache of per-(model, scene) benchmark state
/// (scene workload, functional pipeline, dense reference trajectory,
/// simulator traces): repeated requests against the same workload share one
/// context, and `run_batch` fans independent requests across the
/// common/parallel worker pool.  Batched and sequential evaluation produce
/// bit-identical results — every request is deterministic in its own
/// (model, scene, prune, hw) tuple and shares no mutable state beyond the
/// lock-guarded caches.

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/request.h"
#include "core/experiments.h"

namespace defa::api {

class Engine {
 public:
  struct Options {
    /// Upper bound on concurrent requests in run_batch; 0 = one per
    /// hardware thread.
    int max_parallel_requests = 0;
    /// Memoize full EvalResults by request identity (on by default; the
    /// context cache below is independent of this).
    bool memoize_results = true;
    /// Bound on cached (model, scene) contexts; 0 = unbounded.  A positive
    /// bound turns the ContextPool into an LRU cache, which makes request
    /// ordering matter: the serve-layer locality scheduler exists to keep
    /// same-key requests adjacent so they hit this cache.
    std::size_t max_contexts = 0;
    /// Bound on memoized EvalResults (entry count); 0 = unbounded.  A
    /// positive bound turns the result memo into an LRU cache, mirroring
    /// `max_contexts`; evictions are counted in CacheStats.
    std::size_t max_memo = 0;
    /// Compute backend every evaluation runs on, by kernels-registry name
    /// ("reference", "fused", ...).  Empty selects the process default
    /// (the DEFA_BACKEND environment variable, else "reference").  A
    /// request's own `backend` field overrides this per request.  All
    /// registered backends produce bit-identical results, so this is a
    /// pure performance knob.
    std::string backend;
  };

  Engine() : Engine(Options{}) {}
  explicit Engine(Options options);

  /// A live configuration change; unset fields keep their current value.
  /// `serve::Server::reconfigure` (the protocol `reconfigure` method)
  /// applies these between dispatches.
  struct Reconfig {
    std::optional<std::string> backend;       ///< "" = process default
    std::optional<std::size_t> max_contexts;  ///< 0 = unbounded
    std::optional<std::size_t> max_memo;      ///< 0 = unbounded
    std::optional<bool> memoize_results;
  };

  /// Apply a configuration change.  Validates the backend name first
  /// (throws defa::CheckError leaving the Engine untouched), then applies
  /// atomically with respect to concurrent `run` calls: each run observes
  /// one coherent configuration.  Shrinking `max_contexts`/`max_memo`
  /// evicts LRU entries down to the new bound (counted as evictions).
  void reconfigure(const Reconfig& rc);

  /// Zero every cache counter (context hits/misses/evictions, memo
  /// hits/misses/evictions, process-wide plan hits/misses).  Cached
  /// entries are untouched; pair with `clear_caches()` for a cold,
  /// fresh-process-like engine.
  void reset_stats();

  /// Evaluate one request.  Throws defa::CheckError on validation errors.
  [[nodiscard]] EvalResult run(const EvalRequest& request);

  /// Evaluate a batch of requests concurrently; results come back in
  /// request order and are bit-identical to sequential `run` calls.
  /// Validation errors in any request throw before any work starts.
  [[nodiscard]] std::vector<EvalResult> run_batch(
      const std::vector<EvalRequest>& requests);

  /// Shared benchmark context of a (model, scene) pair — the seam the
  /// registered experiments use so figure drivers and Engine requests
  /// reuse one another's state.
  [[nodiscard]] std::shared_ptr<core::BenchmarkContext> context(
      const ModelConfig& m, const workload::SceneParams& scene);
  [[nodiscard]] std::shared_ptr<core::BenchmarkContext> context(const ModelConfig& m);

  /// The underlying pool (for core::run_figXX experiment drivers).
  [[nodiscard]] core::ContextPool& pool() noexcept { return pool_; }

  [[nodiscard]] std::size_t cached_contexts() const { return pool_.size(); }
  [[nodiscard]] std::size_t memoized_results() const;
  void clear_caches();

  /// Monotonic cache-effectiveness counters (serve/metrics exports them).
  /// The plan counters are process-wide PlanCache totals (plan caches live
  /// per-pipeline inside pooled contexts — see kernels::PlanCache); the
  /// entries field is a live gauge of resident sampling/locality plans.
  struct CacheStats {
    core::ContextPool::CacheStats context;  ///< (model, scene) context cache
    std::uint64_t memo_hits = 0;            ///< run() served from the memo
    std::uint64_t memo_misses = 0;          ///< run() had to evaluate
    std::uint64_t memo_evictions = 0;       ///< LRU entries dropped (max_memo)
    std::uint64_t plan_hits = 0;            ///< PlanCache::get*() resident
    std::uint64_t plan_misses = 0;          ///< PlanCache::get*() built fresh
    std::uint64_t plan_entries = 0;         ///< resident plans (gauge)
  };
  [[nodiscard]] CacheStats cache_stats() const;

 private:
  struct MemoEntry {
    EvalResult result;
    std::uint64_t last_used = 0;  ///< tick of the most recent run() touch
  };

  /// `default_backend` is the engine-level backend the caller snapshotted
  /// (a request's own `backend` field still overrides it).
  [[nodiscard]] EvalResult evaluate(const EvalRequest& request,
                                    const std::string& default_backend);
  void evict_memo_locked(std::size_t max_memo);

  mutable std::mutex options_mu_;  ///< guards options_ (reconfigure vs run)
  Options options_;                // guarded by options_mu_
  core::ContextPool pool_;
  mutable std::mutex memo_mu_;
  std::unordered_map<std::string, MemoEntry> memo_;  // guarded by memo_mu_
  std::uint64_t memo_tick_ = 0;       // guarded by memo_mu_
  std::uint64_t memo_hits_ = 0;       // guarded by memo_mu_
  std::uint64_t memo_misses_ = 0;     // guarded by memo_mu_
  std::uint64_t memo_evictions_ = 0;  // guarded by memo_mu_
};

}  // namespace defa::api
