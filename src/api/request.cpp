#include "api/request.h"

#include <cmath>
#include <initializer_list>

#include "core/experiments.h"
#include "kernels/backend.h"

namespace defa::api {

const std::vector<std::pair<std::string, Output>>& output_names() {
  static const std::vector<std::pair<std::string, Output>> kNames = {
      {"functional", kFunctional},
      {"latency", kLatency},
      {"energy", kEnergy},
      {"accuracy", kAccuracy},
  };
  return kNames;
}

const std::vector<std::string>& EvalRequest::presets() {
  static const std::vector<std::string> kPresets = {
      "deformable_detr", "dn_detr", "dino", "small", "tiny",
  };
  return kPresets;
}

namespace {

ModelConfig preset_model(const std::string& name) {
  if (name == "deformable_detr") return ModelConfig::deformable_detr();
  if (name == "dn_detr") return ModelConfig::dn_detr();
  if (name == "dino") return ModelConfig::dino();
  if (name == "small") return ModelConfig::small();
  if (name == "tiny") return ModelConfig::tiny();
  DEFA_CHECK(false, "EvalRequest: unknown model preset '" + name + "'");
  return {};
}

Json model_to_json(const ModelConfig& m) {
  Json j = Json::object();
  j["name"] = m.name;
  j["d_model"] = m.d_model;
  j["n_heads"] = m.n_heads;
  j["n_levels"] = m.n_levels;
  j["n_points"] = m.n_points;
  j["n_layers"] = m.n_layers;
  Json levels = Json::array();
  for (const LevelShape& lv : m.levels) {
    Json shape = Json::array();
    shape.push_back(lv.h);
    shape.push_back(lv.w);
    levels.push_back(std::move(shape));
  }
  j["levels"] = std::move(levels);
  j["baseline_ap"] = m.baseline_ap;
  j["seed"] = static_cast<double>(m.seed);
  return j;
}

Json scene_to_json(const workload::SceneParams& p) {
  Json j = Json::object();
  j["n_objects"] = p.n_objects;
  j["object_sigma_min"] = p.object_sigma_min;
  j["object_sigma_max"] = p.object_sigma_max;
  j["feature_noise"] = p.feature_noise;
  j["background_level"] = p.background_level;
  j["logit_gain"] = p.logit_gain;
  j["logit_noise"] = p.logit_noise;
  j["seek_fraction"] = p.seek_fraction;
  j["seek_strength"] = p.seek_strength;
  j["seek_cap_px"] = p.seek_cap_px;
  j["ring_scale_px"] = p.ring_scale_px;
  Json sigmas = Json::array();
  for (const double s : p.offset_sigma_px) sigmas.push_back(s);
  j["offset_sigma_px"] = std::move(sigmas);
  j["tail_prob"] = p.tail_prob;
  j["tail_scale"] = p.tail_scale;
  j["layer_jitter"] = p.layer_jitter;
  j["seed"] = static_cast<double>(p.seed);
  return j;
}

Json prune_to_json(const core::PruneConfig& c) {
  Json j = Json::object();
  j["label"] = c.label;
  j["pap"] = c.pap;
  j["pap_tau"] = c.pap_tau;
  j["fwp"] = c.fwp;
  j["fwp_k"] = c.fwp_k;
  j["narrow"] = c.narrow;
  Json radii = Json::array();
  for (int l = 0; l < c.ranges.used_levels; ++l) radii.push_back(c.ranges.radius(l));
  j["range_radii"] = std::move(radii);
  j["quantize"] = c.quantize;
  j["bits"] = c.bits;
  return j;
}

Json hw_to_json(const HwConfig& hw) {
  Json j = Json::object();
  j["pe_lanes"] = hw.pe_lanes;
  j["pe_macs_per_lane"] = hw.pe_macs_per_lane;
  j["ba_point_units"] = hw.ba_point_units;
  j["ba_channels_per_cycle"] = hw.ba_channels_per_cycle;
  j["sram_banks"] = hw.sram_banks;
  j["freq_mhz"] = hw.freq_mhz;
  j["act_bits"] = hw.act_bits;
  j["weight_bits"] = hw.weight_bits;
  Json radii = Json::array();
  for (int l = 0; l < hw.ranges.used_levels; ++l) radii.push_back(hw.ranges.radius(l));
  j["range_radii"] = std::move(radii);
  j["parallelism"] =
      hw.parallelism == MsgsParallelism::kInterLevel ? "inter_level" : "intra_level";
  j["act_streaming"] = hw.act_streaming == ActStreaming::kStreamOncePerPhase
                           ? "stream_once"
                           : "restream_per_col_tile";
  j["operator_fusion"] = hw.enable_operator_fusion;
  j["fmap_reuse"] = hw.enable_fmap_reuse;
  j["conflict_penalty_cycles"] = hw.conflict_penalty_cycles;
  j["mode_switch_cycles"] = hw.mode_switch_cycles;
  j["dram_gbps"] = hw.dram_gbps;
  j["dram_pj_per_bit"] = hw.dram_pj_per_bit;
  j["tiles"] = hw.tiles;
  return j;
}

// ---- strict request parsing (the defa_serve wire format) -------------------

void check_known_keys(const Json& j, const char* what,
                      std::initializer_list<const char*> keys) {
  for (const auto& [key, value] : j.members()) {
    bool known = false;
    for (const char* k : keys) known = known || key == k;
    DEFA_CHECK(known, std::string(what) + ": unknown key '" + key + "'");
  }
}

RangeSpec ranges_from_json(const Json& arr, const char* what) {
  DEFA_CHECK(arr.is_array(), std::string(what) + ": range_radii must be an array");
  DEFA_CHECK(arr.size() <= static_cast<std::size_t>(kMaxLevels),
             std::string(what) + ": range_radii has more than kMaxLevels entries");
  RangeSpec rs;
  rs.used_levels = static_cast<int>(arr.size());
  for (std::size_t l = 0; l < arr.size(); ++l) {
    rs.radius_px[l] = static_cast<int>(arr.at(l).as_int());
  }
  return rs;
}

ModelConfig model_from_json(const Json& j) {
  check_known_keys(j, "EvalRequest.model",
                   {"name", "d_model", "n_heads", "n_levels", "n_points", "n_layers",
                    "levels", "baseline_ap", "seed"});
  ModelConfig m;
  m.name = j.at("name").as_string();
  if (const Json* v = j.find("d_model")) m.d_model = static_cast<int>(v->as_int());
  if (const Json* v = j.find("n_heads")) m.n_heads = static_cast<int>(v->as_int());
  if (const Json* v = j.find("n_levels")) m.n_levels = static_cast<int>(v->as_int());
  if (const Json* v = j.find("n_points")) m.n_points = static_cast<int>(v->as_int());
  if (const Json* v = j.find("n_layers")) m.n_layers = static_cast<int>(v->as_int());
  for (const Json& shape : j.at("levels").items()) {
    DEFA_CHECK(shape.is_array() && shape.size() == 2,
               "EvalRequest.model: each level must be an [h, w] pair");
    LevelShape lv;
    lv.h = static_cast<int>(shape.at(std::size_t{0}).as_int());
    lv.w = static_cast<int>(shape.at(std::size_t{1}).as_int());
    m.levels.push_back(lv);
  }
  if (const Json* v = j.find("baseline_ap")) m.baseline_ap = v->as_number();
  if (const Json* v = j.find("seed")) {
    m.seed = static_cast<std::uint64_t>(v->as_int());
  }
  return m;
}

workload::SceneParams scene_from_json(const Json& j) {
  check_known_keys(
      j, "EvalRequest.scene",
      {"n_objects", "object_sigma_min", "object_sigma_max", "feature_noise",
       "background_level", "logit_gain", "logit_noise", "seek_fraction",
       "seek_strength", "seek_cap_px", "ring_scale_px", "offset_sigma_px",
       "tail_prob", "tail_scale", "layer_jitter", "seed"});
  workload::SceneParams p;
  if (const Json* v = j.find("n_objects")) p.n_objects = static_cast<int>(v->as_int());
  if (const Json* v = j.find("object_sigma_min")) p.object_sigma_min = v->as_number();
  if (const Json* v = j.find("object_sigma_max")) p.object_sigma_max = v->as_number();
  if (const Json* v = j.find("feature_noise")) p.feature_noise = v->as_number();
  if (const Json* v = j.find("background_level")) p.background_level = v->as_number();
  if (const Json* v = j.find("logit_gain")) p.logit_gain = v->as_number();
  if (const Json* v = j.find("logit_noise")) p.logit_noise = v->as_number();
  if (const Json* v = j.find("seek_fraction")) p.seek_fraction = v->as_number();
  if (const Json* v = j.find("seek_strength")) p.seek_strength = v->as_number();
  if (const Json* v = j.find("seek_cap_px")) p.seek_cap_px = v->as_number();
  if (const Json* v = j.find("ring_scale_px")) p.ring_scale_px = v->as_number();
  if (const Json* v = j.find("offset_sigma_px")) {
    DEFA_CHECK(v->is_array() &&
                   v->size() <= static_cast<std::size_t>(kMaxLevels),
               "EvalRequest.scene: offset_sigma_px must be an array of <= "
               "kMaxLevels numbers");
    for (std::size_t l = 0; l < v->size(); ++l) {
      p.offset_sigma_px[l] = v->at(l).as_number();
    }
  }
  if (const Json* v = j.find("tail_prob")) p.tail_prob = v->as_number();
  if (const Json* v = j.find("tail_scale")) p.tail_scale = v->as_number();
  if (const Json* v = j.find("layer_jitter")) p.layer_jitter = v->as_number();
  if (const Json* v = j.find("seed")) p.seed = static_cast<std::uint64_t>(v->as_int());
  return p;
}

core::PruneConfig prune_from_json(const Json& j) {
  check_known_keys(j, "EvalRequest.prune",
                   {"label", "pap", "pap_tau", "fwp", "fwp_k", "narrow",
                    "range_radii", "quantize", "bits"});
  core::PruneConfig c;
  if (const Json* v = j.find("label")) c.label = v->as_string();
  if (const Json* v = j.find("pap")) c.pap = v->as_bool();
  if (const Json* v = j.find("pap_tau")) c.pap_tau = v->as_number();
  if (const Json* v = j.find("fwp")) c.fwp = v->as_bool();
  if (const Json* v = j.find("fwp_k")) c.fwp_k = v->as_number();
  if (const Json* v = j.find("narrow")) c.narrow = v->as_bool();
  if (const Json* v = j.find("range_radii")) {
    c.ranges = ranges_from_json(*v, "EvalRequest.prune");
  }
  if (const Json* v = j.find("quantize")) c.quantize = v->as_bool();
  if (const Json* v = j.find("bits")) c.bits = static_cast<int>(v->as_int());
  return c;
}

HwConfig hw_from_json(const Json& j, HwConfig hw) {
  check_known_keys(
      j, "EvalRequest.hw",
      {"pe_lanes", "pe_macs_per_lane", "ba_point_units", "ba_channels_per_cycle",
       "sram_banks", "freq_mhz", "act_bits", "weight_bits", "range_radii",
       "parallelism", "act_streaming", "operator_fusion", "fmap_reuse",
       "conflict_penalty_cycles", "mode_switch_cycles", "dram_gbps",
       "dram_pj_per_bit", "tiles"});
  if (const Json* v = j.find("pe_lanes")) hw.pe_lanes = static_cast<int>(v->as_int());
  if (const Json* v = j.find("pe_macs_per_lane")) {
    hw.pe_macs_per_lane = static_cast<int>(v->as_int());
  }
  if (const Json* v = j.find("ba_point_units")) {
    hw.ba_point_units = static_cast<int>(v->as_int());
  }
  if (const Json* v = j.find("ba_channels_per_cycle")) {
    hw.ba_channels_per_cycle = static_cast<int>(v->as_int());
  }
  if (const Json* v = j.find("sram_banks")) hw.sram_banks = static_cast<int>(v->as_int());
  if (const Json* v = j.find("freq_mhz")) hw.freq_mhz = v->as_number();
  if (const Json* v = j.find("act_bits")) hw.act_bits = static_cast<int>(v->as_int());
  if (const Json* v = j.find("weight_bits")) {
    hw.weight_bits = static_cast<int>(v->as_int());
  }
  if (const Json* v = j.find("range_radii")) {
    hw.ranges = ranges_from_json(*v, "EvalRequest.hw");
  }
  if (const Json* v = j.find("parallelism")) {
    const std::string& s = v->as_string();
    DEFA_CHECK(s == "inter_level" || s == "intra_level",
               "EvalRequest.hw: parallelism must be inter_level | intra_level");
    hw.parallelism =
        s == "inter_level" ? MsgsParallelism::kInterLevel : MsgsParallelism::kIntraLevel;
  }
  if (const Json* v = j.find("act_streaming")) {
    const std::string& s = v->as_string();
    DEFA_CHECK(s == "stream_once" || s == "restream_per_col_tile",
               "EvalRequest.hw: act_streaming must be stream_once | "
               "restream_per_col_tile");
    hw.act_streaming = s == "stream_once" ? ActStreaming::kStreamOncePerPhase
                                          : ActStreaming::kRestreamPerColTile;
  }
  if (const Json* v = j.find("operator_fusion")) hw.enable_operator_fusion = v->as_bool();
  if (const Json* v = j.find("fmap_reuse")) hw.enable_fmap_reuse = v->as_bool();
  if (const Json* v = j.find("conflict_penalty_cycles")) {
    hw.conflict_penalty_cycles = static_cast<int>(v->as_int());
  }
  if (const Json* v = j.find("mode_switch_cycles")) {
    hw.mode_switch_cycles = static_cast<int>(v->as_int());
  }
  if (const Json* v = j.find("dram_gbps")) hw.dram_gbps = v->as_number();
  if (const Json* v = j.find("dram_pj_per_bit")) hw.dram_pj_per_bit = v->as_number();
  if (const Json* v = j.find("tiles")) hw.tiles = static_cast<int>(v->as_int());
  return hw;
}

OutputMask outputs_from_json(const Json& j) {
  if (j.is_array()) {
    OutputMask mask = 0;
    for (const Json& name : j.items()) {
      bool found = false;
      for (const auto& [known, bit] : output_names()) {
        if (name.as_string() == known) {
          mask |= bit;
          found = true;
        }
      }
      DEFA_CHECK(found, "EvalRequest: unknown output section '" + name.as_string() +
                            "' (known: functional, latency, energy, accuracy)");
    }
    return mask;
  }
  return static_cast<OutputMask>(j.as_int());
}

}  // namespace

ModelConfig EvalRequest::resolve_model() const {
  DEFA_CHECK(preset.empty() != !model.has_value(),
             "EvalRequest: set exactly one of {preset, model}");
  ModelConfig m = model.has_value() ? *model : preset_model(preset);
  m.validate();
  return m;
}

workload::SceneParams EvalRequest::resolve_scene(const ModelConfig& m) const {
  if (scene.has_value()) return *scene;
  workload::SceneParams p;
  p.seed = m.seed;
  return p;
}

core::PruneConfig EvalRequest::resolve_prune(const ModelConfig& m) const {
  return prune.has_value() ? *prune : core::PruneConfig::defa_default(m);
}

HwConfig EvalRequest::resolve_hw(const ModelConfig& m) const {
  return hw.has_value() ? *hw : HwConfig::make_default(m);
}

std::string EvalRequest::resolve_backend(const std::string& engine_default) const {
  if (backend.has_value()) return *backend;
  if (!engine_default.empty()) return engine_default;
  return kernels::default_backend_name();
}

void EvalRequest::validate() const {
  const ModelConfig m = resolve_model();  // throws on preset/model problems

  DEFA_CHECK(outputs != 0, "EvalRequest: empty output mask");
  DEFA_CHECK((outputs & ~kAllOutputs) == 0,
             "EvalRequest: unknown bits in output mask");

  if (backend.has_value()) {
    DEFA_CHECK(kernels::find_backend(*backend) != nullptr,
               "EvalRequest: unknown backend '" + *backend +
                   "' (known: " + kernels::known_backends() + ")");
  }

  const workload::SceneParams sp = resolve_scene(m);
  DEFA_CHECK(sp.n_objects > 0, "EvalRequest: scene needs at least one object");
  DEFA_CHECK(sp.object_sigma_min > 0 && sp.object_sigma_max >= sp.object_sigma_min,
             "EvalRequest: malformed scene object extents");

  const core::PruneConfig cfg = resolve_prune(m);
  if (cfg.quantize) {
    DEFA_CHECK(cfg.bits >= 2 && cfg.bits <= 24,
               "EvalRequest: quantization bits out of range [2, 24]");
  }
  if (cfg.pap) {
    DEFA_CHECK(cfg.pap_tau >= 0.0 && cfg.pap_tau < 1.0,
               "EvalRequest: PAP threshold out of range [0, 1)");
  }
  if (cfg.fwp) {
    DEFA_CHECK(cfg.fwp_k > 0.0, "EvalRequest: FWP multiplier must be positive");
  }
  if (cfg.narrow) {
    DEFA_CHECK(cfg.ranges.used_levels >= m.n_levels,
               "EvalRequest: range spec covers fewer levels than the model");
  }

  resolve_hw(m).validate(m);
}

std::string EvalRequest::workload_key() const {
  const ModelConfig m = resolve_model();
  // Single source of truth for workload identity: the Engine's context
  // cache key, so this always matches EvalResult::workload_key.
  return core::ContextPool::key_of(m, resolve_scene(m));
}

std::string EvalRequest::request_key(const std::string& engine_default) const {
  const ModelConfig m = resolve_model();
  Json key = Json::object();
  key["model"] = model_to_json(m);
  key["scene"] = scene_to_json(resolve_scene(m));
  key["prune"] = prune_to_json(resolve_prune(m));
  key["hw"] = hw_to_json(resolve_hw(m));
  key["backend"] = resolve_backend(engine_default);
  key["outputs"] = static_cast<double>(outputs);
  return key.dump();
}

// ----------------------------------------------------------- JSON conversion

namespace {

Json phase_rows_to_json(const std::vector<PhaseRow>& rows) {
  Json arr = Json::array();
  for (const PhaseRow& p : rows) {
    Json j = Json::object();
    j["name"] = p.name;
    j["cycles"] = p.cycles;
    j["stall_cycles"] = p.stall_cycles;
    j["macs"] = p.macs;
    j["sram_read_bytes"] = p.sram_read_bytes;
    j["sram_write_bytes"] = p.sram_write_bytes;
    j["dram_read_bytes"] = p.dram_read_bytes;
    j["dram_write_bytes"] = p.dram_write_bytes;
    arr.push_back(std::move(j));
  }
  return arr;
}

std::vector<PhaseRow> phase_rows_from_json(const Json& arr) {
  std::vector<PhaseRow> rows;
  for (const Json& j : arr.items()) {
    PhaseRow p;
    p.name = j.at("name").as_string();
    p.cycles = j.at("cycles").as_number();
    p.stall_cycles = j.at("stall_cycles").as_number();
    p.macs = j.at("macs").as_number();
    p.sram_read_bytes = j.at("sram_read_bytes").as_number();
    p.sram_write_bytes = j.at("sram_write_bytes").as_number();
    p.dram_read_bytes = j.at("dram_read_bytes").as_number();
    p.dram_write_bytes = j.at("dram_write_bytes").as_number();
    rows.push_back(std::move(p));
  }
  return rows;
}

}  // namespace

Json to_json(const EvalResult& r) {
  Json j = Json::object();
  j["benchmark"] = r.benchmark;
  j["workload_key"] = r.workload_key;
  j["outputs"] = static_cast<double>(r.outputs);

  if (r.functional.has_value()) {
    const FunctionalStats& f = *r.functional;
    Json fj = Json::object();
    fj["config_label"] = f.config_label;
    fj["point_reduction"] = f.point_reduction;
    fj["pixel_reduction"] = f.pixel_reduction;
    fj["flop_reduction"] = f.flop_reduction;
    fj["final_nrmse"] = f.final_nrmse;
    fj["dense_gflops"] = f.dense_gflops;
    fj["actual_gflops"] = f.actual_gflops;
    Json layers = Json::array();
    for (const LayerFunctionalRow& l : f.layers) {
      Json lj = Json::object();
      lj["layer"] = l.layer;
      lj["pap_pruned_frac"] = l.pap_pruned_frac;
      lj["fwp_mask_out_frac"] = l.fwp_mask_out_frac;
      lj["pixels_pruned_frac"] = l.pixels_pruned_frac;
      lj["clamped_frac"] = l.clamped_frac;
      lj["flops_saved_frac"] = l.flops_saved_frac;
      lj["out_nrmse"] = l.out_nrmse;
      lj["total_points"] = l.total_points;
      lj["kept_points"] = l.kept_points;
      lj["total_pixels"] = l.total_pixels;
      lj["kept_pixels"] = l.kept_pixels;
      layers.push_back(std::move(lj));
    }
    fj["layers"] = std::move(layers);
    j["functional"] = std::move(fj);
  }

  if (r.latency.has_value()) {
    const LatencyStats& l = *r.latency;
    Json lj = Json::object();
    lj["wall_cycles"] = l.wall_cycles;
    lj["time_ms"] = l.time_ms;
    lj["effective_gops"] = l.effective_gops;
    lj["msgs_groups"] = l.msgs_groups;
    lj["msgs_conflict_groups"] = l.msgs_conflict_groups;
    lj["msgs_points_per_cycle"] = l.msgs_points_per_cycle;
    lj["steady_state_layer"] = l.steady_state_layer;
    lj["steady_phases"] = phase_rows_to_json(l.steady_phases);
    lj["total_phases"] = phase_rows_to_json(l.total_phases);
    j["latency"] = std::move(lj);
  }

  if (r.energy.has_value()) {
    const EnergyStats& e = *r.energy;
    Json ej = Json::object();
    ej["pe_pj"] = e.pe_pj;
    ej["softmax_pj"] = e.softmax_pj;
    ej["sram_pj"] = e.sram_pj;
    ej["other_logic_pj"] = e.other_logic_pj;
    ej["dram_pj"] = e.dram_pj;
    ej["area_sram_mm2"] = e.area_sram_mm2;
    ej["area_pe_softmax_mm2"] = e.area_pe_softmax_mm2;
    ej["area_others_mm2"] = e.area_others_mm2;
    ej["chip_power_mw"] = e.chip_power_mw;
    ej["system_power_mw"] = e.system_power_mw;
    ej["gops_per_w"] = e.gops_per_w;
    Json macros = Json::array();
    for (const SramMacroRow& m : e.sram_macros) {
      Json mj = Json::object();
      mj["name"] = m.name;
      mj["capacity_bytes"] = m.capacity_bytes;
      mj["count"] = m.count;
      mj["word_bytes"] = m.word_bytes;
      macros.push_back(std::move(mj));
    }
    ej["sram_macros"] = std::move(macros);
    j["energy"] = std::move(ej);
  }

  if (r.accuracy.has_value()) {
    const AccuracyStats& a = *r.accuracy;
    Json aj = Json::object();
    aj["baseline_ap"] = a.baseline_ap;
    aj["proxy_ap"] = a.proxy_ap;
    Json drops = Json::array();
    for (const TechniqueDrop& d : a.drops) {
      Json dj = Json::object();
      dj["technique"] = d.technique;
      dj["measured_error"] = d.measured_error;
      dj["ap_drop"] = d.ap_drop;
      drops.push_back(std::move(dj));
    }
    aj["drops"] = std::move(drops);
    j["accuracy"] = std::move(aj);
  }

  return j;
}

EvalResult eval_result_from_json(const Json& j) {
  EvalResult r;
  r.benchmark = j.at("benchmark").as_string();
  r.workload_key = j.at("workload_key").as_string();
  r.outputs = static_cast<OutputMask>(j.at("outputs").as_int());

  if (const Json* fj = j.find("functional")) {
    FunctionalStats f;
    f.config_label = fj->at("config_label").as_string();
    f.point_reduction = fj->at("point_reduction").as_number();
    f.pixel_reduction = fj->at("pixel_reduction").as_number();
    f.flop_reduction = fj->at("flop_reduction").as_number();
    f.final_nrmse = fj->at("final_nrmse").as_number();
    f.dense_gflops = fj->at("dense_gflops").as_number();
    f.actual_gflops = fj->at("actual_gflops").as_number();
    for (const Json& lj : fj->at("layers").items()) {
      LayerFunctionalRow l;
      l.layer = static_cast<int>(lj.at("layer").as_int());
      l.pap_pruned_frac = lj.at("pap_pruned_frac").as_number();
      l.fwp_mask_out_frac = lj.at("fwp_mask_out_frac").as_number();
      l.pixels_pruned_frac = lj.at("pixels_pruned_frac").as_number();
      l.clamped_frac = lj.at("clamped_frac").as_number();
      l.flops_saved_frac = lj.at("flops_saved_frac").as_number();
      l.out_nrmse = lj.at("out_nrmse").as_number();
      l.total_points = lj.at("total_points").as_number();
      l.kept_points = lj.at("kept_points").as_number();
      l.total_pixels = lj.at("total_pixels").as_number();
      l.kept_pixels = lj.at("kept_pixels").as_number();
      f.layers.push_back(std::move(l));
    }
    r.functional = std::move(f);
  }

  if (const Json* lj = j.find("latency")) {
    LatencyStats l;
    l.wall_cycles = lj->at("wall_cycles").as_number();
    l.time_ms = lj->at("time_ms").as_number();
    l.effective_gops = lj->at("effective_gops").as_number();
    l.msgs_groups = lj->at("msgs_groups").as_number();
    l.msgs_conflict_groups = lj->at("msgs_conflict_groups").as_number();
    l.msgs_points_per_cycle = lj->at("msgs_points_per_cycle").as_number();
    l.steady_state_layer = static_cast<int>(lj->at("steady_state_layer").as_int());
    l.steady_phases = phase_rows_from_json(lj->at("steady_phases"));
    l.total_phases = phase_rows_from_json(lj->at("total_phases"));
    r.latency = std::move(l);
  }

  if (const Json* ej = j.find("energy")) {
    EnergyStats e;
    e.pe_pj = ej->at("pe_pj").as_number();
    e.softmax_pj = ej->at("softmax_pj").as_number();
    e.sram_pj = ej->at("sram_pj").as_number();
    e.other_logic_pj = ej->at("other_logic_pj").as_number();
    e.dram_pj = ej->at("dram_pj").as_number();
    e.area_sram_mm2 = ej->at("area_sram_mm2").as_number();
    e.area_pe_softmax_mm2 = ej->at("area_pe_softmax_mm2").as_number();
    e.area_others_mm2 = ej->at("area_others_mm2").as_number();
    e.chip_power_mw = ej->at("chip_power_mw").as_number();
    e.system_power_mw = ej->at("system_power_mw").as_number();
    e.gops_per_w = ej->at("gops_per_w").as_number();
    for (const Json& mj : ej->at("sram_macros").items()) {
      SramMacroRow m;
      m.name = mj.at("name").as_string();
      m.capacity_bytes = mj.at("capacity_bytes").as_number();
      m.count = mj.at("count").as_number();
      m.word_bytes = mj.at("word_bytes").as_number();
      e.sram_macros.push_back(std::move(m));
    }
    r.energy = std::move(e);
  }

  if (const Json* aj = j.find("accuracy")) {
    AccuracyStats a;
    a.baseline_ap = aj->at("baseline_ap").as_number();
    a.proxy_ap = aj->at("proxy_ap").as_number();
    for (const Json& dj : aj->at("drops").items()) {
      TechniqueDrop d;
      d.technique = dj.at("technique").as_string();
      d.measured_error = dj.at("measured_error").as_number();
      d.ap_drop = dj.at("ap_drop").as_number();
      a.drops.push_back(std::move(d));
    }
    r.accuracy = std::move(a);
  }

  return r;
}

Json to_json(const EvalRequest& r) {
  Json j = Json::object();
  if (!r.preset.empty()) j["preset"] = r.preset;
  if (r.model.has_value()) j["model"] = model_to_json(*r.model);
  if (r.scene.has_value()) j["scene"] = scene_to_json(*r.scene);
  if (r.prune.has_value()) j["prune"] = prune_to_json(*r.prune);
  if (r.hw.has_value()) j["hw"] = hw_to_json(*r.hw);
  if (r.backend.has_value()) j["backend"] = *r.backend;
  Json outs = Json::array();
  for (const auto& [name, bit] : output_names()) {
    if ((r.outputs & bit) != 0) outs.push_back(name);
  }
  j["outputs"] = std::move(outs);
  return j;
}

EvalRequest eval_request_from_json(const Json& j) {
  DEFA_CHECK(j.is_object(), "EvalRequest: JSON root must be an object");
  check_known_keys(j, "EvalRequest",
                   {"preset", "model", "scene", "prune", "hw", "backend", "outputs"});
  EvalRequest r;
  if (const Json* p = j.find("preset")) r.preset = p->as_string();
  if (const Json* m = j.find("model")) r.model = model_from_json(*m);
  DEFA_CHECK(!r.preset.empty() != r.model.has_value(),
             "EvalRequest: set exactly one of {preset, model}");
  if (const Json* s = j.find("scene")) r.scene = scene_from_json(*s);
  if (const Json* p = j.find("prune")) r.prune = prune_from_json(*p);
  if (const Json* h = j.find("hw")) {
    // Partial hw objects overlay the model's default configuration, so a
    // request can flip one toggle without restating the whole machine.
    r.hw = hw_from_json(*h, HwConfig::make_default(r.resolve_model()));
  }
  if (const Json* b = j.find("backend")) r.backend = b->as_string();
  if (const Json* o = j.find("outputs")) r.outputs = outputs_from_json(*o);
  return r;
}

}  // namespace defa::api
