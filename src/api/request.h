#pragma once

/// \file request.h
/// The Engine's request/response contract.
///
/// Callers describe *what* to evaluate (a model preset or a custom
/// ModelConfig, the synthetic scene, the algorithm configuration, optional
/// hardware overrides) and *which* outputs they want via an OutputMask;
/// they get back an `EvalResult` whose sections mirror the mask.  Both
/// sides serialize to JSON (result_io.h), and all value types compare with
/// `==` so batched and sequential evaluations can be checked for
/// bit-identical equality.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/result_io.h"
#include "config/hw_config.h"
#include "config/model_config.h"
#include "core/pipeline.h"
#include "workload/scene.h"

namespace defa::api {

// ---------------------------------------------------------------- OutputMask

/// Bitmask of result sections a request asks for.
enum Output : unsigned {
  kFunctional = 1u << 0,  ///< pipeline run: reductions, NRMSE, per-layer stats
  kLatency = 1u << 1,     ///< cycle-accurate simulation of the accelerator
  kEnergy = 1u << 2,      ///< energy/area breakdown + Table-1-style summary
  kAccuracy = 1u << 3,    ///< calibrated AP proxy for the enabled techniques
};
using OutputMask = unsigned;

inline constexpr OutputMask kAllOutputs = kFunctional | kLatency | kEnergy | kAccuracy;

/// Registry key for every known output bit, in bit order.
[[nodiscard]] const std::vector<std::pair<std::string, Output>>& output_names();

// ---------------------------------------------------------------- EvalRequest

/// One unit of work for the Engine.
struct EvalRequest {
  /// Model preset name ("deformable_detr", "dn_detr", "dino", "small",
  /// "tiny") — or empty when `model` supplies a custom configuration.
  /// Exactly one of {preset, model} must be set.
  std::string preset;
  std::optional<ModelConfig> model;

  /// Scene-generator knobs; default: SceneParams with the model's seed
  /// (the same scene every seed experiment uses).
  std::optional<workload::SceneParams> scene;

  /// Algorithm configuration; default: PruneConfig::defa_default(model).
  std::optional<core::PruneConfig> prune;

  /// Hardware configuration for kLatency/kEnergy; default:
  /// HwConfig::make_default(model).
  std::optional<HwConfig> hw;

  /// Compute-backend overlay: the kernels-registry name ("reference",
  /// "fused", ...) this request evaluates on.  Unset defers to the
  /// Engine's `Options::backend` (and ultimately the process default).
  /// Backends are bit-identical, so this only moves evaluation cost.
  std::optional<std::string> backend;

  OutputMask outputs = kFunctional;

  /// Known preset names, in declaration order.
  [[nodiscard]] static const std::vector<std::string>& presets();

  /// The request's effective model.  Throws defa::CheckError on an unknown
  /// preset or an inconsistent preset/model combination.
  [[nodiscard]] ModelConfig resolve_model() const;
  /// The request's effective scene parameters.
  [[nodiscard]] workload::SceneParams resolve_scene(const ModelConfig& m) const;
  /// The request's effective algorithm configuration.
  [[nodiscard]] core::PruneConfig resolve_prune(const ModelConfig& m) const;
  /// The request's effective hardware configuration.
  [[nodiscard]] HwConfig resolve_hw(const ModelConfig& m) const;
  /// The request's effective backend name: the request overlay when set,
  /// else `engine_default` when non-empty, else the process default
  /// (kernels::default_backend_name()).  Does not check registration —
  /// `validate()` does.
  [[nodiscard]] std::string resolve_backend(const std::string& engine_default = {}) const;

  /// Full validation; throws defa::CheckError with a reason on any
  /// malformed field.  Called by Engine::run before any work starts.
  void validate() const;

  /// Stable identity of the workload this request evaluates (model +
  /// scene), used as the Engine's context-cache key.
  [[nodiscard]] std::string workload_key() const;
  /// Stable identity of the whole request (workload + prune + hw +
  /// backend + outputs), used for result memoization.  `engine_default`
  /// is the Engine's own backend option, so the key names the backend
  /// that actually evaluates (future non-bit-identical backends must not
  /// share memo entries).
  [[nodiscard]] std::string request_key(const std::string& engine_default = {}) const;
};

// ----------------------------------------------------------------- EvalResult

/// Per-block functional statistics (mirrors core::LayerRunStats).
struct LayerFunctionalRow {
  int layer = 0;
  double pap_pruned_frac = 0;
  double fwp_mask_out_frac = 0;
  double pixels_pruned_frac = 0;
  double clamped_frac = 0;
  double flops_saved_frac = 0;
  double out_nrmse = 0;
  double total_points = 0, kept_points = 0;
  double total_pixels = 0, kept_pixels = 0;
  friend bool operator==(const LayerFunctionalRow&, const LayerFunctionalRow&) = default;
};

struct FunctionalStats {
  std::string config_label;
  double point_reduction = 0;
  double pixel_reduction = 0;
  double flop_reduction = 0;
  double final_nrmse = 0;
  double dense_gflops = 0;
  double actual_gflops = 0;
  std::vector<LayerFunctionalRow> layers;
  friend bool operator==(const FunctionalStats&, const FunctionalStats&) = default;
};

/// One dataflow phase's activity (mirrors arch::PhaseStats).
struct PhaseRow {
  std::string name;
  double cycles = 0, stall_cycles = 0, macs = 0;
  double sram_read_bytes = 0, sram_write_bytes = 0;
  double dram_read_bytes = 0, dram_write_bytes = 0;
  friend bool operator==(const PhaseRow&, const PhaseRow&) = default;
};

struct LatencyStats {
  double wall_cycles = 0;
  double time_ms = 0;
  double effective_gops = 0;
  double msgs_groups = 0;
  double msgs_conflict_groups = 0;
  double msgs_points_per_cycle = 0;
  /// Per-phase rows of a representative steady-state block (block 1 when
  /// the encoder has more than one block, else block 0).
  int steady_state_layer = 0;
  std::vector<PhaseRow> steady_phases;
  /// Per-phase totals across all blocks.
  std::vector<PhaseRow> total_phases;
  friend bool operator==(const LatencyStats&, const LatencyStats&) = default;
};

struct SramMacroRow {
  std::string name;
  double capacity_bytes = 0;
  double count = 0;
  double word_bytes = 0;
  friend bool operator==(const SramMacroRow&, const SramMacroRow&) = default;
};

struct EnergyStats {
  double pe_pj = 0, softmax_pj = 0, sram_pj = 0, other_logic_pj = 0, dram_pj = 0;
  double area_sram_mm2 = 0, area_pe_softmax_mm2 = 0, area_others_mm2 = 0;
  double chip_power_mw = 0, system_power_mw = 0, gops_per_w = 0;
  std::vector<SramMacroRow> sram_macros;
  [[nodiscard]] double logic_pj() const noexcept {
    return pe_pj + softmax_pj + other_logic_pj;
  }
  [[nodiscard]] double total_pj() const noexcept {
    return logic_pj() + sram_pj + dram_pj;
  }
  [[nodiscard]] double area_mm2() const noexcept {
    return area_sram_mm2 + area_pe_softmax_mm2 + area_others_mm2;
  }
  friend bool operator==(const EnergyStats&, const EnergyStats&) = default;
};

struct TechniqueDrop {
  std::string technique;     ///< "fwp" | "pap" | "narrow" | "quant"
  double measured_error = 0; ///< isolated end-to-end NRMSE
  double ap_drop = 0;        ///< proxy AP cost
  friend bool operator==(const TechniqueDrop&, const TechniqueDrop&) = default;
};

struct AccuracyStats {
  double baseline_ap = 0;
  double proxy_ap = 0;  ///< baseline minus the summed per-technique drops
  std::vector<TechniqueDrop> drops;
  friend bool operator==(const AccuracyStats&, const AccuracyStats&) = default;
};

/// Structured response of one Engine evaluation.  Sections are present iff
/// the request's OutputMask asked for them.
struct EvalResult {
  std::string benchmark;     ///< model name
  std::string workload_key;  ///< Engine context-cache key that served this
  OutputMask outputs = 0;

  std::optional<FunctionalStats> functional;
  std::optional<LatencyStats> latency;
  std::optional<EnergyStats> energy;
  std::optional<AccuracyStats> accuracy;

  friend bool operator==(const EvalResult&, const EvalResult&) = default;
};

// ----------------------------------------------------------- JSON conversion

[[nodiscard]] Json to_json(const EvalResult& r);
[[nodiscard]] EvalResult eval_result_from_json(const Json& j);

/// Request serialization (the wire format of `defa_serve`).  Writes only
/// the fields the request sets: a "preset" or full "model" object, then
/// optional "scene"/"prune"/"hw" objects and "outputs" as an array of
/// section names.
[[nodiscard]] Json to_json(const EvalRequest& r);

/// Strict parse of the request wire format: unknown keys throw, partial
/// "scene"/"prune" objects overlay their defaults, a partial "hw" object
/// overlays `HwConfig::make_default` for the request's model, and
/// "outputs" accepts either an array of names or an integer mask.  The
/// returned request is NOT yet validated (call `validate()`).
[[nodiscard]] EvalRequest eval_request_from_json(const Json& j);

}  // namespace defa::api
