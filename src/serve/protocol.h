#pragma once

/// \file protocol.h
/// Protocol v1 — the versioned, transport-agnostic wire API of the serve
/// layer (full specification in docs/PROTOCOL.md).
///
/// Framing is one JSON object per LF-terminated line over any
/// `serve::Connection` (stdio, pipes, TCP).  Requests carry an explicit
/// versioned envelope and responses are correlated by `id` in **completion
/// order** — a slow request never blocks the responses behind it:
///
///   -> {"v": 1, "id": "r1", "method": "eval", "params": {...}}
///   <- {"v": 1, "id": "r1", "ok": true, "result": {...}}
///   <- {"v": 1, "id": "r2", "ok": false,
///       "error": {"code": "overload", "message": "..."}}
///
/// Methods: `hello`, `eval`, `eval_batch`, `metrics`, `backends`,
/// `experiments`, `experiment`, `ping`, `reconfigure`, `shard_info`,
/// `trace`, `drain`.  Failures carry typed error codes (`ErrorCode`
/// below) instead of free-form strings.  Request envelopes may carry an
/// optional `trace_id` field correlating client- and server-side trace
/// spans (docs/OBSERVABILITY.md).
///
/// `hello` — sent as the *first* frame of a session — negotiates the wire
/// version: when both sides speak Protocol v2, the ok response is the
/// session's last JSON line and the connection switches to the binary
/// frame format of `serve/wire/` (docs/PROTOCOL.md#protocol-v2).  Old
/// servers answer `unknown_method` and old clients never send hello, so
/// both directions fall back to v1 JSON byte-for-byte.
///
/// The pre-v1 JSON-lines mode (bare EvalRequest / `{"id", "priority",
/// "timeout_ms", "request"}` lines answered in arrival order) is preserved
/// behind auto-detection: the first frame of a session decides — an object
/// with a `"v"` key speaks Protocol v1, anything else gets the legacy loop
/// (`server_loop.h`).  `run_serve_connection` below is that entry point;
/// `defa_serve` uses it for stdio and for every accepted TCP client.

#include <cstddef>
#include <functional>
#include <optional>
#include <string>

#include "serve/scheduler.h"
#include "serve/transport.h"

namespace defa::serve {

/// The wire version this build speaks.
inline constexpr int kProtocolVersion = 1;

// ------------------------------------------------------------------ ErrorCode

/// Typed failure codes of Protocol v1 error responses.
enum class ErrorCode {
  kParse,          ///< frame is not valid JSON
  kValidation,     ///< frame parsed but envelope/params are malformed
  kVersion,        ///< missing `"v"` or `"v"` != kProtocolVersion
  kUnknownMethod,  ///< method name not in the table above
  kOversized,      ///< frame longer than ProtocolOptions::max_frame_bytes
  kOverload,       ///< scheduler admission queue full
  kDeadline,       ///< deadline expired before dispatch
  kShutdown,       ///< server draining; request not admitted
  kInternal,       ///< evaluation threw
  kTransport,      ///< client side only: connection lost mid-call
};

[[nodiscard]] const char* error_code_name(ErrorCode c);
/// nullopt on an unknown name.
[[nodiscard]] std::optional<ErrorCode> error_code_from_name(const std::string& name);

/// The error code a non-ok scheduler response maps to on the wire.
[[nodiscard]] ErrorCode error_code_for(ResponseStatus s);
/// Inverse mapping (client side): the scheduler status an error code
/// round-trips to.  Protocol-level codes (parse/validation/version/...)
/// all map to kBadRequest.
[[nodiscard]] ResponseStatus status_for(ErrorCode c);

// --------------------------------------------------------------------- frames

/// `{"v": 1, "id": id, "method": method, "params": params}` (params
/// omitted when null).  `trace_id` (16 hex digits, see
/// docs/OBSERVABILITY.md) is an optional envelope field propagating the
/// client's trace context — servers that predate it reject the envelope,
/// so clients only attach it for sampled requests; tracing-enabled servers
/// record the request's server-side spans under the same id.
[[nodiscard]] api::Json make_request_frame(const std::string& id,
                                           const std::string& method,
                                           api::Json params,
                                           const std::string& trace_id = "");
/// `{"v": 1, "id": id, "ok": true, "result": result}`.
[[nodiscard]] api::Json make_ok_frame(const std::string& id, api::Json result);
/// `{"v": 1, "id": id, "ok": false, "error": {"code", "message"}}`.
[[nodiscard]] api::Json make_error_frame(const std::string& id, ErrorCode code,
                                         const std::string& message);

/// The `eval` result payload of a completed (kOk) response:
/// `{"queue_ms", "run_ms", "total_ms", "dispatch_index", "result"}`.
[[nodiscard]] api::Json eval_result_payload(const ServeResponse& r);
/// The whole response frame for an eval-path ServeResponse: an ok frame
/// for kOk, else an error frame whose `error` object also carries the
/// timing fields (`queue_ms`, `total_ms`).
[[nodiscard]] api::Json eval_response_frame(const std::string& id,
                                            const ServeResponse& r);
/// Client-side inverse of `eval_response_frame`: rebuild the
/// ServeResponse (status, result, error message, server-side timings)
/// from a v1 response frame.  Throws defa::CheckError on a malformed
/// frame.
[[nodiscard]] ServeResponse serve_response_from_frame(const api::Json& frame);

/// Parse the `eval` params: either a bare EvalRequest object or an
/// envelope `{"request", "priority", "timeout_ms"}` (the frame `id` is
/// authoritative, so an `"id"` key inside params is rejected).  The
/// returned request is validated.  Throws defa::CheckError.
[[nodiscard]] ServeRequest eval_request_from_params(const api::Json& params);

/// Parse the `reconfigure` params (`{"policy", "locality_window",
/// "backend", "max_contexts", "max_memo", "memoize_results",
/// "reset_stats"}`, all optional but at least one required).  Strict:
/// unknown keys, unknown policy/backend names and out-of-range values
/// throw defa::CheckError.  The inverse, `reconfig_params`, builds the
/// params frame a client sends (unset fields omitted).
[[nodiscard]] ServerReconfig reconfig_from_params(const api::Json& params);
[[nodiscard]] api::Json reconfig_params(const ServerReconfig& rc);

// ------------------------------------------------------------------- sessions

struct ProtocolOptions {
  /// Frames longer than this are refused with an `oversized` error
  /// (the line itself is still consumed, so the session keeps going).
  /// Applies to v1 lines and v2 binary payloads alike.
  std::size_t max_frame_bytes = 4u << 20;
  /// The highest wire version `hello` may negotiate (1 pins the session
  /// to JSON framing — `defa_serve --max-wire 1` forces the fallback).
  int max_wire_version = 2;
  /// v2 streaming eval_batch: how many items may be in flight or buffered
  /// ahead of the next in-order chunk flush.  Bounds the per-batch result
  /// memory by the window, not the batch size.
  std::size_t stream_window = 32;
  /// Invoked after a `drain` method completed (server idle, response
  /// written).  `defa_serve --listen` closes its accept loop here so one
  /// client's drain stops the whole process.
  std::function<void()> on_drain;
};

/// Outcome of one served session (either mode).
struct SessionResult {
  int bad_frames = 0;   ///< frames answered with a protocol-level error
  bool drained = false; ///< session ended via the `drain` method
  bool legacy = false;  ///< auto-detection chose the legacy JSON-lines loop
  int wire_version = 1; ///< 2 once a hello handshake upgraded the session
};

/// Serve one Protocol v1 session until EOF or `drain`.  Eval responses
/// are written in completion order from evaluator threads; admin methods
/// answer inline.  Returns after every in-flight response of this session
/// has been written (or dropped on a vanished peer).  `first_frame`, when
/// set, is processed as if it were read from `conn` (the auto-detection
/// peek hands it in).
SessionResult run_protocol_session(Connection& conn, Server& server,
                                   const ProtocolOptions& options,
                                   const std::string* first_frame = nullptr);

/// Dispatch one inline admin method — everything except the async eval
/// paths (`eval`, `eval_batch`), the session-terminating `drain` and the
/// handshake `hello` — and return its ok-result payload.  Sets `known` to
/// false (and returns null) on an unrecognized name.  Shared by the v1
/// session loop and the v2 binary session (`serve/wire/session.h`), so
/// both protocol versions answer admin calls from one implementation.
/// Throws defa::CheckError on malformed params.
[[nodiscard]] api::Json dispatch_admin_method(const std::string& method,
                                              const api::Json& params,
                                              Server& server, bool& known);

/// Serve one connection in whichever mode its first frame selects:
/// Protocol v1 (`"v"` key present) or the legacy arrival-order JSON-lines
/// loop.  Never drains `server` itself (it may be shared across
/// connections) — except through the protocol `drain` method.
SessionResult run_serve_connection(Connection& conn, Server& server,
                                   const ProtocolOptions& options = {});

}  // namespace defa::serve
