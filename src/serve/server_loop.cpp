#include "serve/server_loop.h"

#include <deque>
#include <istream>
#include <ostream>
#include <string>
#include <utility>

#include "api/request.h"
#include "common/check.h"

namespace defa::serve {

ServeRequest serve_request_from_json(const api::Json& j) {
  DEFA_CHECK(j.is_object(), "serve: request line must be a JSON object");
  ServeRequest r;
  if (!j.contains("request")) {
    r.request = api::eval_request_from_json(j);  // bare EvalRequest line
    return r;
  }
  for (const auto& [key, value] : j.members()) {
    DEFA_CHECK(key == "id" || key == "priority" || key == "timeout_ms" ||
                   key == "request",
               "serve: unknown envelope key '" + key + "'");
  }
  if (const api::Json* id = j.find("id")) r.id = id->as_string();
  if (const api::Json* p = j.find("priority")) {
    const std::optional<Priority> pri = priority_from_name(p->as_string());
    DEFA_CHECK(pri.has_value(),
               "serve: unknown priority '" + p->as_string() + "' (high|normal|low)");
    r.priority = *pri;
  }
  if (const api::Json* t = j.find("timeout_ms")) r.timeout_ms = t->as_number();
  r.request = api::eval_request_from_json(j.at("request"));
  return r;
}

api::Json to_json(const ServeResponse& r) {
  api::Json j = api::Json::object();
  j["id"] = r.id;
  j["status"] = status_name(r.status);
  j["queue_ms"] = r.queue_ms;
  j["run_ms"] = r.run_ms;
  j["total_ms"] = r.total_ms;
  j["dispatch_index"] = static_cast<double>(r.dispatch_index);
  if (r.status == ResponseStatus::kOk) {
    j["result"] = api::to_json(*r.result);
  } else {
    j["error"] = r.error;
  }
  return j;
}

int run_serve_loop(std::istream& in, std::ostream& out,
                   const ServeLoopOptions& options) {
  Server server(options.server);
  int bad_lines = 0;
  std::deque<std::future<ServeResponse>> inflight;  // arrival order

  const auto flush_ready = [&](bool block) {
    while (!inflight.empty()) {
      if (!block && inflight.front().wait_for(std::chrono::seconds(0)) !=
                        std::future_status::ready) {
        return;
      }
      // Flush per line: a lock-step client on a pipe waits for each
      // response before sending the next request.
      out << to_json(inflight.front().get()).dump() << '\n' << std::flush;
      inflight.pop_front();
    }
  };

  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string parsed_id;  // echo the envelope id even when validation fails
    try {
      ServeRequest req = serve_request_from_json(api::Json::parse(line));
      parsed_id = req.id;
      // Validate up front so a malformed request is a transport-level
      // bad_request, not an engine error charged to the metrics.
      req.request.validate();
      inflight.push_back(server.submit(std::move(req)));
    } catch (const std::exception& e) {
      ++bad_lines;
      ServeResponse bad;
      bad.id = parsed_id;
      bad.status = ResponseStatus::kBadRequest;
      bad.error = e.what();
      std::promise<ServeResponse> done;  // a pre-resolved slot keeps ordering
      done.set_value(std::move(bad));
      inflight.push_back(done.get_future());
    }
    flush_ready(/*block=*/false);  // stream responses while reading ahead
  }
  flush_ready(/*block=*/true);
  server.drain();  // settle gauges before the final metrics line

  if (options.emit_metrics) {
    api::Json m = api::Json::object();
    m["metrics"] = server.metrics().to_json();
    out << m.dump() << '\n';
  }
  out.flush();
  return bad_lines;
}

}  // namespace defa::serve
