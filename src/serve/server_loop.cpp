#include "serve/server_loop.h"

#include <condition_variable>
#include <deque>
#include <iostream>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>

#include "api/request.h"
#include "common/check.h"
#include "serve/protocol.h"

namespace defa::serve {

MetricsEmitter::MetricsEmitter(Server& server, std::ostream& out,
                               double interval_sec)
    : server_(server), out_(out), started_(std::chrono::steady_clock::now()) {
  DEFA_CHECK(interval_sec > 0, "metrics emitter interval must be > 0");
  const auto interval = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::duration<double>(interval_sec));
  ticker_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopping_) {
      if (cv_.wait_for(lock, interval, [this] { return stopping_; })) return;
      lock.unlock();
      emit_line();
      lock.lock();
    }
  });
}

MetricsEmitter::~MetricsEmitter() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    cv_.notify_all();
  }
  ticker_.join();
  emit_line();  // final flush: the drained end-state always lands
}

void MetricsEmitter::emit_line() {
  api::Json line = api::Json::object();
  line["seq"] = static_cast<double>(seq_++);
  line["uptime_ms"] =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - started_)
          .count();
  line["metrics"] = server_.metrics().to_json();
  out_ << line.dump() << "\n" << std::flush;
}

ServeRequest serve_request_from_json(const api::Json& j) {
  DEFA_CHECK(j.is_object(), "serve: request line must be a JSON object");
  ServeRequest r;
  if (!j.contains("request")) {
    r.request = api::eval_request_from_json(j);  // bare EvalRequest line
    return r;
  }
  for (const auto& [key, value] : j.members()) {
    DEFA_CHECK(key == "id" || key == "priority" || key == "timeout_ms" ||
                   key == "request",
               "serve: unknown envelope key '" + key + "'");
  }
  if (const api::Json* id = j.find("id")) r.id = id->as_string();
  if (const api::Json* p = j.find("priority")) {
    const std::optional<Priority> pri = priority_from_name(p->as_string());
    DEFA_CHECK(pri.has_value(),
               "serve: unknown priority '" + p->as_string() + "' (high|normal|low)");
    r.priority = *pri;
  }
  if (const api::Json* t = j.find("timeout_ms")) r.timeout_ms = t->as_number();
  r.request = api::eval_request_from_json(j.at("request"));
  return r;
}

api::Json to_json(const ServeResponse& r) {
  api::Json j = api::Json::object();
  j["id"] = r.id;
  j["status"] = status_name(r.status);
  j["queue_ms"] = r.queue_ms;
  j["run_ms"] = r.run_ms;
  j["total_ms"] = r.total_ms;
  j["dispatch_index"] = static_cast<double>(r.dispatch_index);
  if (r.status == ResponseStatus::kOk) {
    j["result"] = api::to_json(*r.result);
  } else {
    j["error"] = r.error;
  }
  return j;
}

int run_legacy_session(Connection& conn, Server& server,
                       const std::string* first_frame) {
  int bad_lines = 0;

  // Responses go out in arrival order from a dedicated writer that blocks
  // on the oldest future — never from the read loop, which may itself be
  // blocked on an idle peer.  A lock-step client (send one line, wait for
  // its response, send the next) therefore always gets its response even
  // though the reader is parked in read_frame.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::future<ServeResponse>> inflight;  // guarded by mu
  bool input_done = false;                          // guarded by mu
  std::thread writer([&] {
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
      cv.wait(lock, [&] { return !inflight.empty() || input_done; });
      if (inflight.empty()) return;  // input_done and fully flushed
      std::future<ServeResponse> next = std::move(inflight.front());
      inflight.pop_front();
      lock.unlock();
      // One frame per response, flushed by the connection.
      conn.write_frame(to_json(next.get()).dump());
      lock.lock();
    }
  });

  const auto enqueue = [&](std::future<ServeResponse> f) {
    const std::lock_guard<std::mutex> lock(mu);
    inflight.push_back(std::move(f));
    cv.notify_one();
  };

  const auto handle_line = [&](const std::string& line) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) return;
    std::string parsed_id;  // echo the envelope id even when validation fails
    try {
      ServeRequest req = serve_request_from_json(api::Json::parse(line));
      parsed_id = req.id;
      // Validate up front so a malformed request is a transport-level
      // bad_request, not an engine error charged to the metrics.
      req.request.validate();
      enqueue(server.submit(std::move(req)));
    } catch (const std::exception& e) {
      ++bad_lines;
      ServeResponse bad;
      bad.id = parsed_id;
      bad.status = ResponseStatus::kBadRequest;
      bad.error = e.what();
      std::promise<ServeResponse> done;  // a pre-resolved slot keeps ordering
      done.set_value(std::move(bad));
      enqueue(done.get_future());
    }
  };

  if (first_frame != nullptr) handle_line(*first_frame);
  std::string line;
  while (conn.read_frame(line)) handle_line(line);
  {
    const std::lock_guard<std::mutex> lock(mu);
    input_done = true;
    cv.notify_one();
  }
  writer.join();  // drain the response queue before returning
  return bad_lines;
}

int run_serve_loop(std::istream& in, std::ostream& out,
                   const ServeLoopOptions& options) {
  Server server(options.server);
  std::unique_ptr<MetricsEmitter> emitter;
  if (options.metrics_interval_sec > 0) {
    emitter = std::make_unique<MetricsEmitter>(
        server, options.metrics_stream != nullptr ? *options.metrics_stream
                                                  : std::cerr,
        options.metrics_interval_sec);
  }
  StreamConnection conn(in, out);
  ProtocolOptions protocol;
  protocol.max_wire_version = options.max_wire_version;
  const SessionResult session = run_serve_connection(conn, server, protocol);
  server.drain();  // settle gauges before the final metrics line
  emitter.reset();  // final metrics line reflects the drained server

  if (options.emit_metrics) {
    api::Json m = api::Json::object();
    m["metrics"] = server.metrics().to_json();
    conn.write_frame(m.dump());
  }
  out.flush();
  return session.bad_frames;
}

}  // namespace defa::serve
