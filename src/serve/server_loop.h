#pragma once

/// \file server_loop.h
/// JSON-lines transport for `serve::Server`: one request per input line,
/// one response per output line, emitted in arrival order (evaluation
/// itself is concurrent and out-of-order underneath).  `defa_serve` is a
/// thin main() over `run_serve_loop`; tests drive it with stringstreams.
///
/// Request line — either a bare `EvalRequest` object (api/request.h wire
/// format) or an envelope:
///   {"id": "r1", "priority": "high", "timeout_ms": 50, "request": {...}}
/// Response line:
///   {"id": "r1", "status": "ok", "queue_ms": .., "run_ms": ..,
///    "total_ms": .., "result": {...}}
/// with "error" instead of "result" on any non-ok status.  A line that
/// fails to parse produces a "bad_request" response in its slot; the loop
/// keeps serving.

#include <iosfwd>

#include "serve/scheduler.h"

namespace defa::serve {

/// Parse one request line (bare EvalRequest or envelope).  Throws
/// defa::CheckError on malformed input.
[[nodiscard]] ServeRequest serve_request_from_json(const api::Json& j);

[[nodiscard]] api::Json to_json(const ServeResponse& r);

struct ServeLoopOptions {
  ServerOptions server;
  /// Append a final `{"metrics": ...}` line after EOF.
  bool emit_metrics = false;
};

/// Serve `in` until EOF; returns the number of malformed request lines
/// (0 when every line parsed).
int run_serve_loop(std::istream& in, std::ostream& out, const ServeLoopOptions& options);

}  // namespace defa::serve
