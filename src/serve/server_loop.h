#pragma once

/// \file server_loop.h
/// The **legacy** (pre-Protocol v1) JSON-lines mode: one request per input
/// line, one response per output line, emitted in arrival order
/// (evaluation itself is concurrent and out-of-order underneath).  New
/// clients should speak Protocol v1 (`protocol.h`, docs/PROTOCOL.md);
/// this mode is kept for pipes, one-shot shell use and old tooling, and
/// is selected automatically when a session's first frame has no `"v"`
/// key.
///
/// Request line — either a bare `EvalRequest` object (api/request.h wire
/// format) or an envelope:
///   {"id": "r1", "priority": "high", "timeout_ms": 50, "request": {...}}
/// Response line:
///   {"id": "r1", "status": "ok", "queue_ms": .., "run_ms": ..,
///    "total_ms": .., "result": {...}}
/// with "error" instead of "result" on any non-ok status.  A line that
/// fails to parse produces a "bad_request" response in its slot; the loop
/// keeps serving.

#include <chrono>
#include <condition_variable>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>

#include "serve/scheduler.h"
#include "serve/transport.h"

namespace defa::serve {

/// Periodic metrics reporter for a live server: one
/// `{"seq", "uptime_ms", "metrics": <MetricsSnapshot>}` JSON line every
/// `interval_sec`, plus a final line on destruction — so a drain always
/// flushes the end-state counters even when it lands mid-interval.
/// `defa_serve --metrics-interval` points `out` at stderr or at
/// `--metrics-out FILE`.  The server must outlive the emitter.
class MetricsEmitter {
 public:
  MetricsEmitter(Server& server, std::ostream& out, double interval_sec);
  ~MetricsEmitter();
  MetricsEmitter(const MetricsEmitter&) = delete;
  MetricsEmitter& operator=(const MetricsEmitter&) = delete;

 private:
  void emit_line();

  Server& server_;
  std::ostream& out_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::uint64_t seq_ = 0;
  std::chrono::steady_clock::time_point started_;
  std::thread ticker_;
};

/// Parse one request line (bare EvalRequest or envelope).  Throws
/// defa::CheckError on malformed input.
[[nodiscard]] ServeRequest serve_request_from_json(const api::Json& j);

[[nodiscard]] api::Json to_json(const ServeResponse& r);

/// Serve one legacy session on `conn` until EOF: arrival-order responses
/// over a caller-owned (possibly shared) Server.  Does NOT drain the
/// server.  `first_frame`, when set, is processed as if it were read from
/// `conn` first (the protocol auto-detection peek hands it in).  Returns
/// the number of malformed request lines.
int run_legacy_session(Connection& conn, Server& server,
                       const std::string* first_frame = nullptr);

struct ServeLoopOptions {
  ServerOptions server;
  /// Append a final `{"metrics": ...}` line after EOF.
  bool emit_metrics = false;
  /// > 0 enables a MetricsEmitter for the loop's lifetime, writing to
  /// `*metrics_stream` (nullptr = stderr).
  double metrics_interval_sec = 0;
  std::ostream* metrics_stream = nullptr;
  /// Highest wire version the server offers in the `hello` handshake
  /// (`defa_serve --max-wire`); 1 pins every session to v1 JSON.
  int max_wire_version = 2;
};

/// Serve `in` until EOF on a fresh Server, auto-detecting the mode from
/// the first line (legacy JSON-lines or Protocol v1 — see protocol.h),
/// then drain.  Returns the number of malformed request lines (0 when
/// every line parsed).
int run_serve_loop(std::istream& in, std::ostream& out, const ServeLoopOptions& options);

}  // namespace defa::serve
