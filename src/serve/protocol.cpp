#include "serve/protocol.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>
#include <vector>

#include <unistd.h>

#include "api/registry.h"
#include "api/request.h"
#include "common/check.h"
#include "fleet/hash_ring.h"
#include "kernels/backend.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "serve/server_loop.h"
#include "serve/wire/format.h"
#include "serve/wire/session.h"
#include "serve/wire/stats.h"

namespace defa::serve {

// ------------------------------------------------------------------ ErrorCode

const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kValidation: return "validation";
    case ErrorCode::kVersion: return "version";
    case ErrorCode::kUnknownMethod: return "unknown_method";
    case ErrorCode::kOversized: return "oversized";
    case ErrorCode::kOverload: return "overload";
    case ErrorCode::kDeadline: return "deadline";
    case ErrorCode::kShutdown: return "shutdown";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kTransport: return "transport";
  }
  return "internal";
}

std::optional<ErrorCode> error_code_from_name(const std::string& name) {
  for (const ErrorCode c :
       {ErrorCode::kParse, ErrorCode::kValidation, ErrorCode::kVersion,
        ErrorCode::kUnknownMethod, ErrorCode::kOversized, ErrorCode::kOverload,
        ErrorCode::kDeadline, ErrorCode::kShutdown, ErrorCode::kInternal,
        ErrorCode::kTransport}) {
    if (name == error_code_name(c)) return c;
  }
  return std::nullopt;
}

ErrorCode error_code_for(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::kOk: return ErrorCode::kInternal;  // not an error
    case ResponseStatus::kRejectedOverload: return ErrorCode::kOverload;
    case ResponseStatus::kRejectedDeadline: return ErrorCode::kDeadline;
    case ResponseStatus::kRejectedShutdown: return ErrorCode::kShutdown;
    case ResponseStatus::kError: return ErrorCode::kInternal;
    case ResponseStatus::kBadRequest: return ErrorCode::kValidation;
  }
  return ErrorCode::kInternal;
}

ResponseStatus status_for(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOverload: return ResponseStatus::kRejectedOverload;
    case ErrorCode::kDeadline: return ResponseStatus::kRejectedDeadline;
    case ErrorCode::kShutdown: return ResponseStatus::kRejectedShutdown;
    case ErrorCode::kInternal: return ResponseStatus::kError;
    case ErrorCode::kTransport: return ResponseStatus::kError;
    case ErrorCode::kParse:
    case ErrorCode::kValidation:
    case ErrorCode::kVersion:
    case ErrorCode::kUnknownMethod:
    case ErrorCode::kOversized: return ResponseStatus::kBadRequest;
  }
  return ResponseStatus::kError;
}

// --------------------------------------------------------------------- frames

api::Json make_request_frame(const std::string& id, const std::string& method,
                             api::Json params, const std::string& trace_id) {
  api::Json j = api::Json::object();
  j["v"] = kProtocolVersion;
  j["id"] = id;
  j["method"] = method;
  if (!trace_id.empty()) j["trace_id"] = trace_id;
  if (!params.is_null()) j["params"] = std::move(params);
  return j;
}

api::Json make_ok_frame(const std::string& id, api::Json result) {
  api::Json j = api::Json::object();
  j["v"] = kProtocolVersion;
  j["id"] = id;
  j["ok"] = true;
  j["result"] = std::move(result);
  return j;
}

api::Json make_error_frame(const std::string& id, ErrorCode code,
                           const std::string& message) {
  api::Json j = api::Json::object();
  j["v"] = kProtocolVersion;
  j["id"] = id;
  j["ok"] = false;
  api::Json err = api::Json::object();
  err["code"] = error_code_name(code);
  err["message"] = message;
  j["error"] = std::move(err);
  return j;
}

api::Json eval_result_payload(const ServeResponse& r) {
  DEFA_CHECK(r.status == ResponseStatus::kOk && r.result.has_value(),
             "protocol: eval_result_payload needs a completed response");
  api::Json j = api::Json::object();
  j["queue_ms"] = r.queue_ms;
  j["run_ms"] = r.run_ms;
  j["total_ms"] = r.total_ms;
  j["dispatch_index"] = static_cast<double>(r.dispatch_index);
  j["result"] = api::to_json(*r.result);
  return j;
}

api::Json eval_response_frame(const std::string& id, const ServeResponse& r) {
  if (r.status == ResponseStatus::kOk) {
    return make_ok_frame(id, eval_result_payload(r));
  }
  api::Json frame = make_error_frame(id, error_code_for(r.status), r.error);
  // Scheduler-side rejections still took measurable queue time; surface it
  // so a remote client sees the same latency breakdown an in-process
  // caller would.
  api::Json& err = frame["error"];
  err["queue_ms"] = r.queue_ms;
  err["total_ms"] = r.total_ms;
  return frame;
}

ServeResponse serve_response_from_frame(const api::Json& frame) {
  DEFA_CHECK(frame.is_object(), "protocol: response frame must be an object");
  ServeResponse r;
  if (const api::Json* id = frame.find("id")) r.id = id->as_string();
  if (frame.at("ok").as_bool()) {
    const api::Json& payload = frame.at("result");
    r.status = ResponseStatus::kOk;
    r.queue_ms = payload.at("queue_ms").as_number();
    r.run_ms = payload.at("run_ms").as_number();
    r.total_ms = payload.at("total_ms").as_number();
    r.dispatch_index = payload.at("dispatch_index").as_int();
    r.result = api::eval_result_from_json(payload.at("result"));
    return r;
  }
  const api::Json& err = frame.at("error");
  const std::optional<ErrorCode> code = error_code_from_name(err.at("code").as_string());
  r.status = status_for(code.value_or(ErrorCode::kInternal));
  // Preserve the wire code verbatim: several codes collapse to the same
  // status (kInternal and kTransport both map to kError), and failover
  // logic needs the distinction the status alone loses.
  r.error_code = err.at("code").as_string();
  r.error = err.at("message").as_string();
  if (const api::Json* q = err.find("queue_ms")) r.queue_ms = q->as_number();
  if (const api::Json* t = err.find("total_ms")) r.total_ms = t->as_number();
  return r;
}

ServeRequest eval_request_from_params(const api::Json& params) {
  DEFA_CHECK(params.is_object(), "protocol: eval params must be an object");
  ServeRequest r;
  if (!params.contains("request")) {
    r.request = api::eval_request_from_json(params);  // bare EvalRequest
  } else {
    for (const auto& [key, value] : params.members()) {
      // No "id" inside params: the frame id is the correlation identity.
      DEFA_CHECK(key == "request" || key == "priority" || key == "timeout_ms",
                 "protocol: unknown eval params key '" + key + "'");
    }
    if (const api::Json* p = params.find("priority")) {
      const std::optional<Priority> pri = priority_from_name(p->as_string());
      DEFA_CHECK(pri.has_value(), "protocol: unknown priority '" + p->as_string() +
                                      "' (high|normal|low)");
      r.priority = *pri;
    }
    if (const api::Json* t = params.find("timeout_ms")) r.timeout_ms = t->as_number();
    r.request = api::eval_request_from_json(params.at("request"));
  }
  r.request.validate();
  return r;
}

ServerReconfig reconfig_from_params(const api::Json& params) {
  DEFA_CHECK(params.is_object() && params.size() > 0,
             "protocol: reconfigure params must be a non-empty object");
  ServerReconfig rc;
  for (const auto& [key, value] : params.members()) {
    if (key == "policy") {
      const std::optional<SchedulePolicy> p = policy_from_name(value.as_string());
      DEFA_CHECK(p.has_value(), "protocol: unknown policy '" + value.as_string() +
                                    "' (fifo|locality)");
      rc.policy = *p;
    } else if (key == "locality_window") {
      const std::int64_t w = value.as_int();
      DEFA_CHECK(w >= 1, "protocol: 'locality_window' must be >= 1");
      rc.locality_window = static_cast<int>(w);
    } else if (key == "backend") {
      const std::string b = value.as_string();
      DEFA_CHECK(b.empty() || kernels::find_backend(b) != nullptr,
                 "protocol: unknown backend '" + b +
                     "' (known: " + kernels::known_backends() + ")");
      rc.backend = b;
    } else if (key == "max_contexts") {
      const std::int64_t n = value.as_int();
      DEFA_CHECK(n >= 0, "protocol: 'max_contexts' must be >= 0");
      rc.max_contexts = static_cast<std::size_t>(n);
    } else if (key == "max_memo") {
      const std::int64_t n = value.as_int();
      DEFA_CHECK(n >= 0, "protocol: 'max_memo' must be >= 0");
      rc.max_memo = static_cast<std::size_t>(n);
    } else if (key == "memoize_results") {
      rc.memoize_results = value.as_bool();
    } else if (key == "reset_stats") {
      rc.reset_stats = value.as_bool();
    } else {
      DEFA_CHECK(false, "protocol: unknown reconfigure params key '" + key + "'");
    }
  }
  return rc;
}

api::Json reconfig_params(const ServerReconfig& rc) {
  api::Json j = api::Json::object();
  if (rc.policy.has_value()) j["policy"] = policy_name(*rc.policy);
  if (rc.locality_window.has_value()) j["locality_window"] = *rc.locality_window;
  if (rc.backend.has_value()) j["backend"] = *rc.backend;
  if (rc.max_contexts.has_value()) {
    j["max_contexts"] = static_cast<double>(*rc.max_contexts);
  }
  if (rc.max_memo.has_value()) j["max_memo"] = static_cast<double>(*rc.max_memo);
  if (rc.memoize_results.has_value()) j["memoize_results"] = *rc.memoize_results;
  if (rc.reset_stats) j["reset_stats"] = true;
  return j;
}

// ------------------------------------------------------------------- sessions

namespace {

/// Milliseconds elapsed since `t0` (serialization accounting).
double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Shared state of one protocol session.  Completion callbacks fire on
/// evaluator threads, so writes are serialized under `write_mu` and the
/// session loop waits for `pending == 0` before returning — the state
/// must outlive every callback, hence the shared_ptr ownership.
struct SessionState {
  explicit SessionState(Connection& c) : conn(&c) {}

  void write(const api::Json& frame) {
    // Serialize outside the write lock; the dump is the v1 encode cost the
    // serialization share in BENCH_serve.json compares against v2.
    const auto t0 = std::chrono::steady_clock::now();
    const std::string text = frame.dump();
    wire::SerStats::instance().add_encode(1, ms_since(t0), text.size() + 1);
    const std::lock_guard<std::mutex> lock(write_mu);
    // A vanished peer (disconnect mid-batch) makes write_frame return
    // false; evaluation still completes and the response is dropped —
    // that is the peer's choice, not an error.
    conn->write_frame(text);
  }

  void add_pending() {
    const std::lock_guard<std::mutex> lock(pending_mu);
    ++pending;
  }
  void done_pending() {
    const std::lock_guard<std::mutex> lock(pending_mu);
    if (--pending == 0) pending_cv.notify_all();
  }
  void wait_idle() {
    std::unique_lock<std::mutex> lock(pending_mu);
    pending_cv.wait(lock, [this] { return pending == 0; });
  }

  Connection* conn;
  std::mutex write_mu;
  std::mutex pending_mu;
  std::condition_variable pending_cv;
  int pending = 0;
};

/// In-flight bookkeeping of one eval_batch frame: per-item payload slots
/// filled from completion callbacks, the frame written when the last
/// outstanding item lands.
struct BatchState {
  std::string id;
  std::shared_ptr<SessionState> session;
  std::vector<api::Json> items;
  std::atomic<int> remaining{0};

  void finish() {
    api::Json results = api::Json::array();
    for (api::Json& item : items) results.push_back(std::move(item));
    api::Json payload = api::Json::object();
    payload["results"] = std::move(results);
    session->write(make_ok_frame(id, std::move(payload)));
    session->done_pending();
  }
};

/// One batch item as `{"ok", "result" | "error"}` mirroring single-eval
/// payloads (items have no ids; order answers position).
api::Json batch_item_payload(const ServeResponse& r) {
  api::Json item = api::Json::object();
  if (r.status == ResponseStatus::kOk) {
    item["ok"] = true;
    item["result"] = eval_result_payload(r);
  } else {
    item["ok"] = false;
    api::Json err = api::Json::object();
    err["code"] = error_code_name(error_code_for(r.status));
    err["message"] = r.error;
    err["queue_ms"] = r.queue_ms;
    err["total_ms"] = r.total_ms;
    item["error"] = std::move(err);
  }
  return item;
}

api::Json batch_item_error(ErrorCode code, const std::string& message) {
  api::Json item = api::Json::object();
  item["ok"] = false;
  api::Json err = api::Json::object();
  err["code"] = error_code_name(code);
  err["message"] = message;
  item["error"] = std::move(err);
  return item;
}

const char* const kKnownMethods =
    "hello, eval, eval_batch, metrics, backends, experiments, experiment, "
    "ping, reconfigure, shard_info, trace, drain";

/// The `hello` handshake result: the negotiated wire version for this
/// session.  `upgrade` is set when the session should switch to the
/// binary v2 framing after the ok response goes out.
api::Json handle_hello(const api::Json& params, const ProtocolOptions& options,
                       bool& upgrade) {
  int client_max = 1;
  if (!params.is_null()) {
    DEFA_CHECK(params.is_object(), "protocol: hello params must be an object");
    for (const auto& [key, value] : params.members()) {
      DEFA_CHECK(key == "max_version",
                 "protocol: unknown hello params key '" + key + "'");
    }
    if (const api::Json* v = params.find("max_version")) {
      const std::int64_t m = v->as_int();
      DEFA_CHECK(m >= 1, "protocol: 'max_version' must be >= 1");
      client_max = static_cast<int>(std::min<std::int64_t>(m, wire::kWireVersion));
    }
  }
  const int negotiated =
      std::max(1, std::min(client_max, options.max_wire_version));
  upgrade = negotiated >= 2;
  api::Json j = api::Json::object();
  j["version"] = negotiated;
  j["max_frame_bytes"] = static_cast<double>(options.max_frame_bytes);
  return j;
}

void handle_eval(const std::string& id, const api::Json& params, Server& server,
                 const std::shared_ptr<SessionState>& state,
                 std::uint64_t trace_id) {
  ServeRequest req = eval_request_from_params(params);
  req.trace_id = trace_id;
  state->add_pending();
  server.submit_async(std::move(req), [id, state](const ServeResponse& resp) {
    state->write(eval_response_frame(id, resp));
    state->done_pending();
  });
}

void handle_eval_batch(const std::string& id, const api::Json& params,
                       Server& server, const std::shared_ptr<SessionState>& state,
                       std::uint64_t trace_id) {
  DEFA_CHECK(params.is_object(), "protocol: eval_batch params must be an object");
  for (const auto& [key, value] : params.members()) {
    DEFA_CHECK(key == "requests" || key == "priority" || key == "timeout_ms",
               "protocol: unknown eval_batch params key '" + key + "'");
  }
  Priority batch_priority = Priority::kNormal;
  double batch_timeout = 0;
  if (const api::Json* p = params.find("priority")) {
    const std::optional<Priority> pri = priority_from_name(p->as_string());
    DEFA_CHECK(pri.has_value(), "protocol: unknown priority '" + p->as_string() + "'");
    batch_priority = *pri;
  }
  if (const api::Json* t = params.find("timeout_ms")) batch_timeout = t->as_number();
  const api::Json& reqs = params.at("requests");
  DEFA_CHECK(reqs.is_array() && reqs.size() > 0,
             "protocol: 'requests' must be a non-empty array");

  auto batch = std::make_shared<BatchState>();
  batch->id = id;
  batch->session = state;
  batch->items.resize(reqs.size());

  // Two passes: parse everything first so `remaining` is final before any
  // completion callback can observe it (a fast engine could otherwise
  // finish item 0 and see remaining == 1 mid-construction).
  std::vector<std::optional<ServeRequest>> parsed(reqs.size());
  int submitted = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const api::Json& item = reqs.at(i);
    try {
      ServeRequest r = eval_request_from_params(item);
      // The envelope's trace context covers the whole batch: every item's
      // spans record under the same id.
      r.trace_id = trace_id;
      // Batch-level priority/timeout are defaults for items that did not
      // set their own — presence decides, so an explicit "normal" (or an
      // explicit timeout_ms of 0) is honored, not overridden.
      if (!(item.is_object() && item.contains("priority"))) {
        r.priority = batch_priority;
      }
      if (!(item.is_object() && item.contains("timeout_ms"))) {
        r.timeout_ms = batch_timeout;
      }
      parsed[i] = std::move(r);
      ++submitted;
    } catch (const std::exception& e) {
      batch->items[i] = batch_item_error(ErrorCode::kValidation, e.what());
    }
  }
  state->add_pending();
  if (submitted == 0) {
    batch->finish();
    return;
  }
  batch->remaining.store(submitted, std::memory_order_relaxed);
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    if (!parsed[i].has_value()) continue;
    server.submit_async(std::move(*parsed[i]),
                        [batch, i](const ServeResponse& resp) {
                          batch->items[i] = batch_item_payload(resp);
                          if (batch->remaining.fetch_sub(
                                  1, std::memory_order_acq_rel) == 1) {
                            batch->finish();
                          }
                        });
  }
}

/// The `ping`/`reconfigure` server info block.  Taken from a coherent
/// options snapshot (reconfigure can run concurrently); the keys from
/// before the reconfigure method are frozen, additions are append-only
/// (docs/PROTOCOL.md compat rules).
api::Json server_info(Server& server) {
  const ServerOptions opts = server.options_snapshot();
  api::Json info = api::Json::object();
  info["policy"] = policy_name(opts.policy);
  info["workers"] = opts.max_concurrency;
  info["queue_capacity"] = static_cast<double>(opts.queue_capacity);
  info["backend"] = opts.engine.backend.empty() ? kernels::default_backend_name()
                                                : opts.engine.backend;
  info["draining"] = server.draining();
  info["locality_window"] = opts.locality_window;
  info["max_contexts"] = static_cast<double>(opts.engine.max_contexts);
  info["max_memo"] = static_cast<double>(opts.engine.max_memo);
  info["memoize_results"] = opts.engine.memoize_results;
  return info;
}

api::Json handle_ping(Server& server) {
  api::Json j = api::Json::object();
  j["protocol"] = kProtocolVersion;
  j["pong"] = true;
  j["server"] = server_info(server);
  return j;
}

api::Json handle_reconfigure(const api::Json& params, Server& server) {
  server.reconfigure(reconfig_from_params(params));
  api::Json j = api::Json::object();
  j["reconfigured"] = true;
  j["server"] = server_info(server);
  return j;
}

api::Json handle_shard_info(Server& server) {
  const ServerOptions opts = server.options_snapshot();
  api::Json j = api::Json::object();
  api::Json shard = api::Json::object();
  shard["id"] = opts.shard_id;
  shard["count"] = opts.shard_count;
  shard["name"] = opts.shard_name;
  j["shard"] = std::move(shard);
  // The key range this shard owns, as its consistent-hash ring points —
  // derived from the shard name exactly as client::Pool derives them, so
  // a client can verify it routes where the server believes it serves.
  api::Json ring = api::Json::object();
  ring["virtual_nodes"] = opts.ring_virtual_nodes;
  api::Json points = api::Json::array();
  if (!opts.shard_name.empty()) {
    for (const std::uint64_t h :
         fleet::ring_points(opts.shard_name, opts.ring_virtual_nodes)) {
      char buf[19];
      std::snprintf(buf, sizeof(buf), "0x%016llx",
                    static_cast<unsigned long long>(h));
      points.push_back(std::string(buf));
    }
  }
  ring["points"] = std::move(points);
  j["ring"] = std::move(ring);
  j["metrics"] = server.metrics().to_json();
  return j;
}

/// The `trace` method: drain the server's span buffer as Chrome
/// trace-event JSON (docs/OBSERVABILITY.md).  Params: optional
/// `{"clear": bool}` (default true — each call hands out every span once,
/// so a client polling after a load run gets exactly that run's spans).
api::Json handle_trace(const api::Json& params, Server& server) {
  bool clear = true;
  if (!params.is_null()) {
    DEFA_CHECK(params.is_object(), "protocol: trace params must be an object");
    for (const auto& [key, value] : params.members()) {
      DEFA_CHECK(key == "clear", "protocol: unknown trace params key '" + key + "'");
    }
    if (const api::Json* c = params.find("clear")) clear = c->as_bool();
  }
  const ServerOptions opts = server.options_snapshot();
  std::string process = "defa_serve";
  if (!opts.shard_name.empty()) process += " " + opts.shard_name;
  obs::Tracer& tracer = obs::Tracer::instance();
  const std::uint64_t dropped = tracer.dropped();  // before collect() resets
  const std::vector<obs::Span> spans = tracer.collect(clear);
  const int pid = static_cast<int>(::getpid());
  api::Json j = api::Json::object();
  j["pid"] = pid;
  j["process"] = process;
  j["enabled"] = tracer.enabled();
  j["dropped"] = static_cast<double>(dropped);
  j["traceEvents"] = obs::trace_events_json(spans, pid, process);
  return j;
}

api::Json handle_backends(Server& server) {
  api::Json j = api::Json::object();
  const ServerOptions opts = server.options_snapshot();
  j["default"] = opts.engine.backend.empty() ? kernels::default_backend_name()
                                             : opts.engine.backend;
  api::Json names = api::Json::array();
  for (const std::string& name : kernels::backend_names()) names.push_back(name);
  j["backends"] = std::move(names);
  return j;
}

api::Json handle_experiments() {
  api::register_builtin_experiments();
  api::Json j = api::Json::object();
  api::Json list = api::Json::array();
  for (const std::string& name : api::Registry::instance().names()) {
    const api::Experiment* e = api::Registry::instance().find(name);
    api::Json entry = api::Json::object();
    entry["name"] = e->name;
    entry["title"] = e->title;
    entry["description"] = e->description;
    list.push_back(std::move(entry));
  }
  j["experiments"] = std::move(list);
  return j;
}

api::Json handle_experiment(const api::Json& params, Server& server) {
  DEFA_CHECK(params.is_object() && params.contains("name"),
             "protocol: experiment params must be {\"name\": ...}");
  for (const auto& [key, value] : params.members()) {
    DEFA_CHECK(key == "name", "protocol: unknown experiment params key '" + key + "'");
  }
  api::register_builtin_experiments();
  const std::string name = params.at("name").as_string();
  std::ostringstream tables;
  // Runs inline on the session thread: experiments are driver-grade admin
  // calls, not latency-sensitive serving traffic, and the shared Engine
  // keeps them cache-coherent with concurrent evals.
  api::Json result = api::run_experiment(server.engine(), name, tables);
  api::Json j = api::Json::object();
  j["name"] = name;
  j["tables"] = tables.str();
  j["json"] = std::move(result);
  return j;
}

}  // namespace

api::Json dispatch_admin_method(const std::string& method,
                                const api::Json& params, Server& server,
                                bool& known) {
  known = true;
  if (method == "metrics") return server.metrics().to_json();
  if (method == "trace") return handle_trace(params, server);
  if (method == "backends") return handle_backends(server);
  if (method == "experiments") return handle_experiments();
  if (method == "experiment") return handle_experiment(params, server);
  if (method == "ping") return handle_ping(server);
  // Inline on the session thread: Server::reconfigure takes the scheduling
  // lock, so the change lands between dispatches and the response is
  // written only once it is fully applied.
  if (method == "reconfigure") return handle_reconfigure(params, server);
  if (method == "shard_info") return handle_shard_info(server);
  known = false;
  return {};
}

SessionResult run_protocol_session(Connection& conn, Server& server,
                                   const ProtocolOptions& options,
                                   const std::string* first_frame) {
  SessionResult out;
  auto state = std::make_shared<SessionState>(conn);

  // What one frame decided about the rest of the session.
  enum class FrameOutcome { kContinue, kStop, kUpgrade };
  // Frames that reached method dispatch — `hello` is only legal as the
  // session's first one, so a frame count of 1 at dispatch time is the
  // handshake window.
  int dispatched = 0;

  const auto handle_frame = [&](const std::string& text) -> FrameOutcome {
    if (text.find_first_not_of(" \t\r") == std::string::npos) {
      return FrameOutcome::kContinue;
    }
    if (text.size() > options.max_frame_bytes) {
      ++out.bad_frames;
      state->write(make_error_frame(
          "", ErrorCode::kOversized,
          "frame of " + std::to_string(text.size()) + " bytes exceeds the " +
              std::to_string(options.max_frame_bytes) + "-byte limit"));
      return FrameOutcome::kContinue;
    }
    api::Json frame;
    [[maybe_unused]] const std::int64_t parse_ts_us = obs::now_us();
    const auto parse_t0 = std::chrono::steady_clock::now();
    try {
      frame = api::Json::parse(text);
    } catch (const std::exception& e) {
      ++out.bad_frames;
      state->write(make_error_frame("", ErrorCode::kParse, e.what()));
      return FrameOutcome::kContinue;
    }
    const double parse_ms = ms_since(parse_t0);
    wire::SerStats::instance().add_decode(1, parse_ms, text.size() + 1);

    std::string id;
    try {
      DEFA_CHECK(frame.is_object(), "frame must be a JSON object");
      if (const api::Json* i = frame.find("id")) id = i->as_string();
      for (const auto& [key, value] : frame.members()) {
        DEFA_CHECK(key == "v" || key == "id" || key == "method" ||
                       key == "params" || key == "trace_id",
                   "unknown envelope key '" + key + "'");
      }
      // Optional trace context: honored only while this server's tracer
      // is enabled (tracing is opt-in per process, not client-forced).
      std::uint64_t trace_id = 0;
      if (const api::Json* t = frame.find("trace_id")) {
        trace_id = obs::trace_id_from_hex(t->as_string());
        if (!obs::Tracer::instance().enabled()) trace_id = 0;
      }
#if DEFA_TRACE
      if (trace_id != 0) {
        obs::record_span("wire_decode", "wire", parse_ts_us,
                         static_cast<std::int64_t>(parse_ms * 1000.0), trace_id,
                         {{"version", "1"},
                          {"bytes", std::to_string(text.size() + 1)}});
      }
#endif
      const api::Json* v = frame.find("v");
      if (v == nullptr || v->as_int() != kProtocolVersion) {
        ++out.bad_frames;
        state->write(make_error_frame(
            id, ErrorCode::kVersion,
            v == nullptr ? "missing 'v' (this server speaks Protocol v" +
                               std::to_string(kProtocolVersion) + ")"
                         : "unsupported protocol version " +
                               std::to_string(v->as_int()) + " (this server speaks v" +
                               std::to_string(kProtocolVersion) + ")"));
        return FrameOutcome::kContinue;
      }
      const std::string method = frame.at("method").as_string();
      const api::Json* params = frame.find("params");
      static const api::Json kNull;
      ++dispatched;

      if (method == "hello") {
        // Only legal as the very first frame: the answer is the session's
        // last v1 line when an upgrade is negotiated, and mid-session
        // re-negotiation would tear frame boundaries out from under
        // responses already in flight.
        if (dispatched != 1) {
          ++out.bad_frames;
          state->write(make_error_frame(
              id, ErrorCode::kValidation,
              "hello must be the first frame of a session"));
          return FrameOutcome::kContinue;
        }
        bool upgrade = false;
        const api::Json result =
            handle_hello(params == nullptr ? kNull : *params, options, upgrade);
        state->write(make_ok_frame(id, result));
        return upgrade ? FrameOutcome::kUpgrade : FrameOutcome::kContinue;
      }
      if (method == "eval") {
        handle_eval(id, params == nullptr ? kNull : *params, server, state,
                    trace_id);
      } else if (method == "eval_batch") {
        handle_eval_batch(id, params == nullptr ? kNull : *params, server,
                          state, trace_id);
      } else if (method == "drain") {
        server.drain();  // stop admitting, finish in-flight
        api::Json payload = api::Json::object();
        payload["drained"] = true;
        payload["metrics"] = server.metrics().to_json();
        state->write(make_ok_frame(id, std::move(payload)));
        out.drained = true;
        if (options.on_drain) options.on_drain();
        return FrameOutcome::kStop;
      } else {
        bool known = true;
        api::Json result = dispatch_admin_method(
            method, params == nullptr ? kNull : *params, server, known);
        if (known) {
          state->write(make_ok_frame(id, std::move(result)));
        } else {
          ++out.bad_frames;
          state->write(make_error_frame(
              id, ErrorCode::kUnknownMethod,
              "unknown method '" + method + "' (known: " +
                  std::string(kKnownMethods) + ")"));
        }
      }
    } catch (const std::exception& e) {
      ++out.bad_frames;
      state->write(make_error_frame(id, ErrorCode::kValidation, e.what()));
    }
    return FrameOutcome::kContinue;
  };

  FrameOutcome oc = first_frame == nullptr ? FrameOutcome::kContinue
                                           : handle_frame(*first_frame);
  std::string text;
  while (oc == FrameOutcome::kContinue && conn.read_frame(text)) {
    oc = handle_frame(text);
  }
  // EOF or drain with evals still in flight (including a peer that
  // disconnected mid-batch): wait for their callbacks so `state`'s writes
  // are done before the caller tears the connection down.
  state->wait_idle();
  if (oc == FrameOutcome::kUpgrade) {
    // The hello ok above was the session's last JSON line; everything the
    // peer sends from here on is binary v2 frames.
    wire::run_wire_session(conn, server, options, out);
    return out;
  }
  // A drained session is over: shut the connection so the peer sees EOF
  // instead of waiting on a socket nobody reads anymore.
  if (out.drained) conn.shutdown();
  return out;
}

SessionResult run_serve_connection(Connection& conn, Server& server,
                                   const ProtocolOptions& options) {
  // Auto-detection: the first non-blank frame decides the session mode.
  // An object with a "v" key speaks Protocol v1; anything else (bare
  // EvalRequest lines, legacy envelopes, even unparseable garbage, which
  // the legacy loop answers with bad_request) gets the legacy loop.
  std::string first;
  while (true) {
    if (!conn.read_frame(first)) return {};
    if (first.find_first_not_of(" \t\r") != std::string::npos) break;
  }
  bool v1 = false;
  try {
    const api::Json j = api::Json::parse(first);
    v1 = j.is_object() && j.contains("v");
  } catch (const std::exception&) {
    v1 = false;
  }
  if (v1) return run_protocol_session(conn, server, options, &first);
  SessionResult out;
  out.legacy = true;
  out.bad_frames = run_legacy_session(conn, server, &first);
  return out;
}

}  // namespace defa::serve
