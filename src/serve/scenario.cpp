#include "serve/scenario.h"

#include <cmath>
#include <set>
#include <sstream>
#include <utility>

#include "api/request.h"
#include "api/run_meta.h"
#include "common/check.h"
#include "kernels/backend.h"

namespace defa::serve {

namespace {

void check_keys(const api::Json& j, const std::set<std::string>& allowed,
                const std::string& where) {
  for (const auto& [key, value] : j.members()) {
    DEFA_CHECK(allowed.count(key) > 0,
               "scenario: unknown key '" + key + "' in " + where);
  }
}

void parse_arrival(const api::Json& j, LoadGenOptions& out) {
  DEFA_CHECK(j.is_object(), "scenario: 'arrival' must be an object");
  check_keys(j, {"process", "rate_qps", "concurrency"}, "'arrival'");
  const std::string process = j.at("process").as_string();
  if (process == "closed") {
    out.mode = LoadGenOptions::Mode::kClosed;
    DEFA_CHECK(!j.contains("rate_qps"),
               "scenario: 'rate_qps' is an open-loop setting (process is 'closed')");
    if (const api::Json* c = j.find("concurrency")) {
      out.concurrency = static_cast<int>(c->as_int());
      DEFA_CHECK(out.concurrency > 0, "scenario: 'concurrency' must be positive");
    }
    return;
  }
  DEFA_CHECK(process == "fixed" || process == "poisson",
             "scenario: unknown arrival process '" + process +
                 "' (closed|fixed|poisson)");
  out.mode = LoadGenOptions::Mode::kOpen;
  out.poisson = process == "poisson";
  DEFA_CHECK(!j.contains("concurrency"),
             "scenario: 'concurrency' is a closed-loop setting (process is '" +
                 process + "')");
  if (const api::Json* r = j.find("rate_qps")) {
    out.rate_qps = r->as_number();
    DEFA_CHECK(std::isfinite(out.rate_qps) && out.rate_qps > 0,
               "scenario: 'rate_qps' must be positive and finite");
  }
}

void parse_server(const api::Json& j, ServerOptions& out) {
  DEFA_CHECK(j.is_object(), "scenario: 'server' must be an object");
  check_keys(j,
             {"workers", "queue_capacity", "policy", "locality_window",
              "max_contexts", "max_memo", "memoize_results",
              "max_parallel_requests", "backend"},
             "'server'");
  if (const api::Json* v = j.find("workers")) {
    out.max_concurrency = static_cast<int>(v->as_int());
  }
  if (const api::Json* v = j.find("queue_capacity")) {
    const std::int64_t cap = v->as_int();
    DEFA_CHECK(cap > 0, "scenario: 'queue_capacity' must be positive");
    out.queue_capacity = static_cast<std::size_t>(cap);
  }
  if (const api::Json* v = j.find("policy")) {
    const std::optional<SchedulePolicy> p = policy_from_name(v->as_string());
    DEFA_CHECK(p.has_value(), "scenario: unknown policy '" + v->as_string() +
                                  "' (fifo|locality)");
    out.policy = *p;
  }
  if (const api::Json* v = j.find("locality_window")) {
    out.locality_window = static_cast<int>(v->as_int());
    DEFA_CHECK(out.locality_window >= 1,
               "scenario: 'locality_window' must be >= 1");
  }
  if (const api::Json* v = j.find("max_contexts")) {
    const std::int64_t n = v->as_int();
    DEFA_CHECK(n >= 0, "scenario: 'max_contexts' must be >= 0");
    out.engine.max_contexts = static_cast<std::size_t>(n);
  }
  if (const api::Json* v = j.find("max_memo")) {
    const std::int64_t n = v->as_int();
    DEFA_CHECK(n >= 0, "scenario: 'max_memo' must be >= 0");
    out.engine.max_memo = static_cast<std::size_t>(n);
  }
  if (const api::Json* v = j.find("memoize_results")) {
    out.engine.memoize_results = v->as_bool();
  }
  if (const api::Json* v = j.find("backend")) {
    out.engine.backend = v->as_string();
    DEFA_CHECK(kernels::find_backend(out.engine.backend) != nullptr,
               "scenario: unknown backend '" + out.engine.backend + "'");
  }
  if (const api::Json* v = j.find("max_parallel_requests")) {
    out.engine.max_parallel_requests = static_cast<int>(v->as_int());
  }
}

std::vector<Scenario> parse_mix(const api::Json& j) {
  DEFA_CHECK(j.is_array(), "scenario: 'scenarios' must be an array");
  DEFA_CHECK(j.size() > 0, "scenario: 'scenarios' must not be empty");
  std::vector<Scenario> mix;
  std::set<std::string> names;
  mix.reserve(j.size());
  for (const api::Json& sj : j.items()) {
    DEFA_CHECK(sj.is_object(), "scenario: each mix entry must be an object");
    check_keys(sj, {"name", "weight", "priority", "request"}, "a mix entry");
    Scenario s;
    s.name = sj.at("name").as_string();
    DEFA_CHECK(!s.name.empty(), "scenario: mix entry 'name' must not be empty");
    DEFA_CHECK(names.insert(s.name).second,
               "scenario: duplicate mix entry name '" + s.name + "'");
    if (const api::Json* w = sj.find("weight")) {
      s.weight = w->as_number();
      DEFA_CHECK(std::isfinite(s.weight) && s.weight > 0,
                 "scenario: '" + s.name + "' weight must be positive and finite");
    }
    if (const api::Json* p = sj.find("priority")) {
      const std::optional<Priority> pri = priority_from_name(p->as_string());
      DEFA_CHECK(pri.has_value(), "scenario: '" + s.name + "' has unknown priority '" +
                                      p->as_string() + "' (high|normal|low)");
      s.priority = *pri;
    }
    s.request = api::eval_request_from_json(sj.at("request"));
    s.request.validate();  // fail at parse time, not mid-benchmark
    mix.push_back(std::move(s));
  }
  return mix;
}

SweepSpec parse_sweep(const api::Json& j) {
  DEFA_CHECK(j.is_object(), "scenario: 'sweep' must be an object");
  check_keys(j, {"rates_qps", "concurrency", "policies"}, "'sweep'");
  SweepSpec sweep;
  if (const api::Json* rates = j.find("rates_qps")) {
    DEFA_CHECK(rates->is_array() && rates->size() > 0,
               "scenario: 'sweep.rates_qps' must be a non-empty array");
    for (const api::Json& r : rates->items()) {
      const double qps = r.as_number();
      DEFA_CHECK(std::isfinite(qps) && qps > 0,
                 "scenario: sweep rates must be positive and finite");
      sweep.rates_qps.push_back(qps);
    }
  }
  if (const api::Json* concs = j.find("concurrency")) {
    DEFA_CHECK(concs->is_array() && concs->size() > 0,
               "scenario: 'sweep.concurrency' must be a non-empty array");
    for (const api::Json& c : concs->items()) {
      const std::int64_t n = c.as_int();
      DEFA_CHECK(n > 0, "scenario: sweep concurrencies must be positive");
      sweep.concurrencies.push_back(static_cast<int>(n));
    }
  }
  DEFA_CHECK(!sweep.rates_qps.empty() || !sweep.concurrencies.empty(),
             "scenario: 'sweep' needs 'rates_qps' (open loop) and/or "
             "'concurrency' (closed loop)");
  if (const api::Json* pols = j.find("policies")) {
    DEFA_CHECK(pols->is_array() && pols->size() > 0,
               "scenario: 'sweep.policies' must be a non-empty array");
    for (const api::Json& p : pols->items()) {
      const std::optional<SchedulePolicy> pol = policy_from_name(p.as_string());
      DEFA_CHECK(pol.has_value(), "scenario: unknown sweep policy '" +
                                      p.as_string() + "' (fifo|locality)");
      sweep.policies.push_back(*pol);
    }
  } else {
    sweep.policies = {SchedulePolicy::kFifo, SchedulePolicy::kLocality};
  }
  return sweep;
}

}  // namespace

ScenarioFile scenario_file_from_json(const api::Json& j) {
  DEFA_CHECK(j.is_object(), "scenario: file root must be a JSON object");
  check_keys(j,
             {"name", "requests", "seed", "timeout_ms", "arrival", "server",
              "sweep", "scenarios"},
             "the scenario file");
  ScenarioFile file;
  if (const api::Json* n = j.find("name")) file.name = n->as_string();
  if (const api::Json* r = j.find("requests")) {
    file.base.requests = static_cast<int>(r->as_int());
    DEFA_CHECK(file.base.requests > 0, "scenario: 'requests' must be positive");
  }
  if (const api::Json* s = j.find("seed")) {
    file.base.seed = static_cast<std::uint64_t>(s->as_int());
  }
  if (const api::Json* t = j.find("timeout_ms")) {
    file.base.timeout_ms = t->as_number();
    DEFA_CHECK(std::isfinite(file.base.timeout_ms),
               "scenario: 'timeout_ms' must be finite");
  }
  const api::Json* arrival = j.find("arrival");
  if (arrival != nullptr) parse_arrival(*arrival, file.base);
  if (const api::Json* s = j.find("server")) parse_server(*s, file.base.server);
  file.base.scenarios = parse_mix(j.at("scenarios"));
  if (const api::Json* s = j.find("sweep")) {
    file.has_sweep = true;
    file.sweep = parse_sweep(*s);
    // Rate points drive rates_qps open-loop, so an explicitly closed-loop
    // arrival spec would be silently discarded — reject it instead.  A
    // concurrency-only sweep is closed-loop by nature and accepts either.
    DEFA_CHECK(file.sweep.rates_qps.empty() || arrival == nullptr ||
                   file.base.mode == LoadGenOptions::Mode::kOpen,
               "scenario: a 'sweep.rates_qps' axis requires an open-loop "
               "'arrival' (process 'fixed' or 'poisson', not 'closed')");
  }
  return file;
}

ScenarioFile load_scenario_file(const std::string& path) {
  return scenario_file_from_json(api::read_json_file(path));
}

api::Json SweepReport::to_json() const {
  api::Json j = api::Json::object();
  j["bench"] = "serve_sweep";
  api::Json meta = api::run_metadata();
  meta["backend"] = points.empty() ? std::string() : points.front().report.backend;
  j["meta"] = std::move(meta);
  j["name"] = name;
  j["requests"] = requests;
  // Compact curve rows first: one per (rate, policy), everything a plot
  // needs without digging through the full reports.
  api::Json curve = api::Json::array();
  for (const SweepPoint& pt : points) {
    const MetricsSnapshot& m = pt.report.server_metrics;
    api::Json row = api::Json::object();
    row["rate_qps"] = pt.rate_qps;
    row["policy"] = policy_name(pt.policy);
    row["mode"] = pt.mode;
    row["concurrency"] = pt.concurrency;
    row["achieved_qps"] = pt.report.achieved_qps;
    row["completed_ok"] = static_cast<double>(pt.report.completed_ok);
    row["rejected_overload"] = static_cast<double>(pt.report.rejected_overload);
    row["rejected_deadline"] = static_cast<double>(pt.report.rejected_deadline);
    row["errors"] = static_cast<double>(pt.report.errors);
    row["p50_ms"] = pt.report.latency_ms.percentile(50);
    row["p95_ms"] = pt.report.latency_ms.percentile(95);
    row["p99_ms"] = pt.report.latency_ms.percentile(99);
    row["p999_ms"] = pt.report.latency_ms.percentile(99.9);
    row["queue_p50_ms"] = pt.report.queue_ms.percentile(50);
    row["context_hit_rate"] = m.context_hit_rate();
    row["context_hits"] = static_cast<double>(m.context_hits);
    row["context_misses"] = static_cast<double>(m.context_misses);
    row["context_evictions"] = static_cast<double>(m.context_evictions);
    curve.push_back(std::move(row));
  }
  j["curve"] = std::move(curve);
  api::Json full = api::Json::array();
  for (const SweepPoint& pt : points) full.push_back(pt.report.to_json());
  j["points"] = std::move(full);
  return j;
}

std::string SweepReport::to_csv() const {
  std::ostringstream csv;
  csv << "rate_qps,policy,mode,concurrency,achieved_qps,completed_ok,"
         "rejected_overload,rejected_deadline,errors,p50_ms,p95_ms,p99_ms,"
         "p999_ms,queue_p50_ms,context_hit_rate,context_hits,context_misses,"
         "context_evictions\n";
  for (const SweepPoint& pt : points) {
    const MetricsSnapshot& m = pt.report.server_metrics;
    csv << pt.rate_qps << ',' << policy_name(pt.policy) << ',' << pt.mode << ','
        << pt.concurrency << ','
        << pt.report.achieved_qps << ',' << pt.report.completed_ok << ','
        << pt.report.rejected_overload << ',' << pt.report.rejected_deadline << ','
        << pt.report.errors << ',' << pt.report.latency_ms.percentile(50) << ','
        << pt.report.latency_ms.percentile(95) << ','
        << pt.report.latency_ms.percentile(99) << ','
        << pt.report.latency_ms.percentile(99.9) << ','
        << pt.report.queue_ms.percentile(50) << ',' << m.context_hit_rate() << ','
        << m.context_hits << ',' << m.context_misses << ','
        << m.context_evictions << '\n';
  }
  return csv.str();
}

SweepReport run_sweep(const ScenarioFile& file) {
  DEFA_CHECK(file.has_sweep, "scenario: file has no 'sweep' block");
  SweepReport report;
  report.name = file.name;
  report.requests = file.base.requests;
  for (const double rate : file.sweep.rates_qps) {
    for (const SchedulePolicy policy : file.sweep.policies) {
      LoadGenOptions options = file.base;  // same mix, schedule and seed
      // Open loop per rate point (a closed-loop arrival spec was rejected
      // at parse time); the file's fixed/poisson choice is preserved.
      options.mode = LoadGenOptions::Mode::kOpen;
      options.rate_qps = rate;
      options.server.policy = policy;
      SweepPoint pt;
      pt.mode = "open";
      pt.rate_qps = rate;
      pt.policy = policy;
      pt.report = run_loadgen(options);
      report.points.push_back(std::move(pt));
    }
  }
  for (const int concurrency : file.sweep.concurrencies) {
    for (const SchedulePolicy policy : file.sweep.policies) {
      LoadGenOptions options = file.base;
      options.mode = LoadGenOptions::Mode::kClosed;
      options.concurrency = concurrency;
      options.server.policy = policy;
      SweepPoint pt;
      pt.mode = "closed";
      pt.concurrency = concurrency;
      pt.policy = policy;
      pt.report = run_loadgen(options);
      report.points.push_back(std::move(pt));
    }
  }
  return report;
}

}  // namespace defa::serve
