#pragma once

/// \file metrics.h
/// Online serving metrics: log-scale latency histograms with percentile
/// readout, throughput/QPS, an in-flight gauge and per-benchmark request
/// counters.  `serve::Server` feeds one `ServerMetrics` instance as it
/// admits, rejects and completes requests; `snapshot()` freezes a
/// consistent view that serializes to JSON for `defa_serve --metrics` and
/// the `defa_loadgen` report.

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "api/result_io.h"
#include "serve/wire/stats.h"

namespace defa::serve {

/// Fixed-memory log-scale histogram of latencies in milliseconds.
/// Buckets grow geometrically from `kLowestMs` by `kGrowth` per bucket, so
/// the same 96 counters resolve microseconds and minutes with bounded
/// (~10%) relative quantization error on the percentile readout.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 96;
  static constexpr double kLowestMs = 1e-3;
  static constexpr double kGrowth = 1.22;

  void record(double ms);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

  /// Latency (ms) at percentile `p` in [0, 100]; 0 when empty.  Reads the
  /// geometric midpoint of the bucket holding the rank, clamped to the
  /// exact observed [min, max].
  [[nodiscard]] double percentile(double p) const;

  /// Raw count of bucket `b` (for cross-run merging and re-bucketing).
  [[nodiscard]] std::uint64_t bucket_count(int b) const;
  /// Lower/upper latency bound (ms) covered by bucket `b`.  Bucket 0 is
  /// [0, kLowestMs); bucket b >= 1 is [kLowestMs * kGrowth^(b-1),
  /// kLowestMs * kGrowth^b); the last bucket is open-ended above.
  [[nodiscard]] static double bucket_lower_ms(int b);
  [[nodiscard]] static double bucket_upper_ms(int b);

  /// {count, mean_ms, sum_ms, min_ms, max_ms, p50_ms, p95_ms, p99_ms, p999_ms,
  ///  bucket_lowest_ms, bucket_growth, buckets: [[index, count], ...]}.
  /// `buckets` is sparse (zero buckets omitted) — the raw export makes
  /// histograms mergeable across runs (docs/BENCH_SCHEMA.md).
  [[nodiscard]] api::Json to_json() const;

  /// Strict inverse of to_json() (percentile keys are ignored; the raw
  /// buckets are authoritative).  Throws defa::CheckError on a histogram
  /// whose bucket counts don't sum to `count` or whose scale parameters
  /// don't match this build's kLowestMs/kGrowth.
  [[nodiscard]] static LatencyHistogram from_json(const api::Json& j);

  void merge(const LatencyHistogram& other);

 private:
  [[nodiscard]] static int bucket_of(double ms);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Frozen, consistent view of a ServerMetrics instance.
struct MetricsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_shutdown = 0;  ///< submitted during/after drain
  std::uint64_t errors = 0;
  std::int64_t in_flight = 0;     ///< admitted, response not yet delivered
  std::size_t queue_depth = 0;    ///< waiting for dispatch at snapshot time
  double uptime_ms = 0;
  double qps = 0;                 ///< completed_ok / uptime
  LatencyHistogram queue_ms;      ///< admission -> dispatch
  LatencyHistogram run_ms;        ///< evaluation only
  LatencyHistogram total_ms;      ///< admission -> response
  /// (benchmark name, completed-ok count) in first-seen order.
  std::vector<std::pair<std::string, std::uint64_t>> per_benchmark;

  /// Engine cache effectiveness at snapshot time (filled by
  /// Server::metrics(), zero for a bare ServerMetrics::snapshot()).  The
  /// locality scheduler is judged on context_hit_rate under a bounded
  /// context pool — see docs/BENCH_SCHEMA.md.
  std::uint64_t context_hits = 0;
  std::uint64_t context_misses = 0;
  std::uint64_t context_evictions = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t memo_evictions = 0;  ///< result-memo LRU drops (max_memo)
  std::uint64_t plan_hits = 0;       ///< kernel PlanCache lookups, resident
  std::uint64_t plan_misses = 0;     ///< kernel PlanCache lookups, built
  std::uint64_t plan_entries = 0;    ///< resident sampling/locality plans (gauge)

  /// Process-wide serialization accounting per wire version (filled from
  /// `wire::SerStats` by Server::metrics(), zero for a bare
  /// ServerMetrics::snapshot()) — the server side of the
  /// serialization-share comparison in docs/BENCH_SCHEMA.md.
  wire::SerSnapshot wire_v1;
  wire::SerSnapshot wire_v2;
  [[nodiscard]] double context_hit_rate() const noexcept {
    const std::uint64_t total = context_hits + context_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(context_hits) / static_cast<double>(total);
  }

  [[nodiscard]] api::Json to_json() const;

  /// Inverse of to_json(): rebuilds a snapshot from the exported form
  /// (histograms through `LatencyHistogram::from_json`).  The remote
  /// `defa_loadgen --connect` path uses this to embed the *server*
  /// process's metrics in its report.  Throws defa::CheckError on missing
  /// keys or inconsistent histograms.
  [[nodiscard]] static MetricsSnapshot from_json(const api::Json& j);
};

/// Fleet-level aggregation (docs/FLEET.md): sum the counters, merge the
/// raw histogram buckets, merge per-benchmark counts, and recompute the
/// derived fields — uptime is the max across shards (they run in
/// parallel) and qps is completed_ok over that shared wall clock.  The
/// merged percentiles are exact up to the shared bucket quantization,
/// because every shard exports the same raw log-scale buckets.
[[nodiscard]] MetricsSnapshot merge_snapshots(
    const std::vector<MetricsSnapshot>& parts);

/// Thread-safe metrics sink.  All mutators are O(1) under one mutex; the
/// Server calls them outside its own scheduling lock.
class ServerMetrics {
 public:
  ServerMetrics();

  void on_submitted();
  void on_rejected_overload();
  void on_rejected_shutdown();
  void on_rejected_deadline(double queue_ms);
  void on_completed(const std::string& benchmark, double queue_ms, double run_ms,
                    double total_ms);
  void on_error(double queue_ms, double run_ms, double total_ms);

  [[nodiscard]] MetricsSnapshot snapshot(std::size_t queue_depth,
                                         std::int64_t in_flight) const;

  /// Zero every counter and histogram and restart the uptime clock, as if
  /// freshly constructed (`Server::reconfigure` with reset_stats).
  void reset();

 private:
  mutable std::mutex mu_;
  MetricsSnapshot data_;  // queue_depth/in_flight/uptime/qps filled at snapshot
  std::chrono::steady_clock::time_point start_;
};

}  // namespace defa::serve
