#include "serve/transport.h"

#include <istream>
#include <ostream>
#include <utility>

#include "common/check.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

namespace defa::serve {

namespace {

void strip_eol(std::string& frame) {
  if (!frame.empty() && frame.back() == '\r') frame.pop_back();
}

}  // namespace

// ----------------------------------------------------------- StreamConnection

StreamConnection::StreamConnection(std::istream& in, std::ostream& out)
    : in_(in), out_(out) {}

bool StreamConnection::read_frame(std::string& frame) {
  if (shutdown_) return false;
  if (!std::getline(in_, frame)) return false;
  strip_eol(frame);
  return true;
}

bool StreamConnection::write_frame(const std::string& frame) {
  // Flush per frame: a lock-step client on a pipe waits for each response
  // before sending the next request.
  out_ << frame << '\n' << std::flush;
  return out_.good();
}

bool StreamConnection::read_exact(void* buf, std::size_t n) {
  if (shutdown_) return false;
  in_.read(static_cast<char*>(buf), static_cast<std::streamsize>(n));
  return static_cast<std::size_t>(in_.gcount()) == n;
}

bool StreamConnection::write_bytes(const void* data, std::size_t n) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  out_.flush();
  return out_.good();
}

void StreamConnection::shutdown() { shutdown_ = true; }

// --------------------------------------------------------------- FdConnection

FdConnection::FdConnection(int read_fd, int write_fd, bool is_socket)
    : read_fd_(read_fd), write_fd_(write_fd), is_socket_(is_socket) {
  DEFA_CHECK(read_fd >= 0 && write_fd >= 0, "FdConnection: invalid descriptor");
}

FdConnection::~FdConnection() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
  read_fd_ = write_fd_ = -1;
}

bool FdConnection::read_frame(std::string& frame) {
  while (true) {
    const std::size_t nl = buffer_.find('\n', pos_);
    if (nl != std::string::npos) {
      frame.assign(buffer_, pos_, nl - pos_);
      pos_ = nl + 1;
      if (pos_ == buffer_.size()) {  // fully consumed: rewind, keep capacity
        buffer_.clear();
        pos_ = 0;
      }
      strip_eol(frame);
      return true;
    }
    // Refill.  The consumed prefix is erased in place first (capacity is
    // kept), so the buffer never grows beyond the largest frame plus one
    // read chunk and steady-state reads do not allocate.
    if (pos_ > 0) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
    char chunk[4096];
    const ssize_t r = is_socket_ ? ::recv(read_fd_, chunk, sizeof(chunk), 0)
                                 : ::read(read_fd_, chunk, sizeof(chunk));
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) {  // orderly EOF: deliver a final unterminated frame if any
      if (buffer_.empty()) return false;
      frame = std::move(buffer_);
      buffer_.clear();
      pos_ = 0;
      strip_eol(frame);
      return true;
    }
    buffer_.append(chunk, static_cast<std::size_t>(r));
  }
}

bool FdConnection::read_exact(void* buf, std::size_t n) {
  char* dst = static_cast<char*>(buf);
  // Serve from bytes a previous read_frame buffered past its newline (the
  // v1 -> v2 handshake switch can leave the first binary frame there).
  const std::size_t buffered = buffer_.size() - pos_;
  if (buffered > 0) {
    const std::size_t take = buffered < n ? buffered : n;
    std::memcpy(dst, buffer_.data() + pos_, take);
    pos_ += take;
    if (pos_ == buffer_.size()) {
      buffer_.clear();
      pos_ = 0;
    }
    dst += take;
    n -= take;
  }
  // Remaining bytes read straight into the caller's buffer — no
  // intermediate copy for large binary payloads.
  while (n > 0) {
    const ssize_t r = is_socket_ ? ::recv(read_fd_, dst, n, 0)
                                 : ::read(read_fd_, dst, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF mid-frame
    dst += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool FdConnection::write_all(const void* data, std::size_t n) {
  if (write_fd_ < 0) return false;
  const char* p = static_cast<const char*>(data);
  // Write-all with EINTR retry.  A vanished peer surfaces as EPIPE
  // (MSG_NOSIGNAL on sockets; the tools ignore SIGPIPE for pipes) and is
  // reported as false, never as a signal or an exception.
  while (n > 0) {
    const ssize_t w = is_socket_ ? ::send(write_fd_, p, n, MSG_NOSIGNAL)
                                 : ::write(write_fd_, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool FdConnection::write_frame(const std::string& frame) {
  // One reused buffer so frame + terminator leave in a single transport
  // write (one TCP segment for small frames) without a per-frame
  // allocation after warm-up.
  write_buf_.assign(frame);
  write_buf_.push_back('\n');
  return write_all(write_buf_.data(), write_buf_.size());
}

bool FdConnection::write_bytes(const void* data, std::size_t n) {
  return write_all(data, n);
}

void FdConnection::shutdown() {
  if (is_socket_) {
    if (read_fd_ >= 0) ::shutdown(read_fd_, SHUT_RDWR);
    return;
  }
  // Pipe pair: closing the write end is the stdio transport's EOF.
  if (write_fd_ >= 0 && write_fd_ != read_fd_) {
    ::close(write_fd_);
    write_fd_ = -1;
  }
}

// -------------------------------------------------------------- TcpConnection

TcpConnection::TcpConnection(int fd) : FdConnection(fd, fd, /*is_socket=*/true) {
  const int one = 1;  // request/response frames are latency-sensitive
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// ---------------------------------------------------------------- tcp_connect

std::unique_ptr<Connection> tcp_connect(const std::string& host, int port) {
  DEFA_CHECK(port > 0 && port < 65536,
             "tcp_connect: port must be in [1, 65535], got " + std::to_string(port));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string ip = host.empty() || host == "localhost" ? "127.0.0.1" : host;
  DEFA_CHECK(::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) == 1,
             "tcp_connect: cannot parse IPv4 address '" + ip + "'");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  DEFA_CHECK(fd >= 0, "tcp_connect: socket() failed: " +
                          std::string(std::strerror(errno)));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    DEFA_CHECK(false, "tcp_connect: cannot connect to " + ip + ":" +
                          std::to_string(port) + ": " + err);
  }
  return std::make_unique<TcpConnection>(fd);
}

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  const std::size_t colon = spec.rfind(':');
  std::string port_str;
  if (colon == std::string::npos) {
    port_str = spec;  // bare "7411"
  } else {
    ep.host = spec.substr(0, colon);
    port_str = spec.substr(colon + 1);
  }
  if (ep.host.empty()) ep.host = "127.0.0.1";
  try {
    std::size_t used = 0;
    ep.port = std::stoi(port_str, &used);
    DEFA_CHECK(used == port_str.size(), "trailing characters");
  } catch (const std::exception&) {
    DEFA_CHECK(false, "endpoint '" + spec + "' is not HOST:PORT");
  }
  DEFA_CHECK(ep.port > 0 && ep.port < 65536,
             "endpoint '" + spec + "' has an out-of-range port");
  return ep;
}

// ----------------------------------------------------------------- TcpListener

TcpListener::TcpListener(int port) {
  DEFA_CHECK(port >= 0 && port < 65536,
             "TcpListener: port must be in [0, 65535], got " + std::to_string(port));
  DEFA_CHECK(::pipe(wake_pipe_) == 0, "TcpListener: pipe() failed: " +
                                          std::string(std::strerror(errno)));
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  DEFA_CHECK(listen_fd_ >= 0, "TcpListener: socket() failed: " +
                                  std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  DEFA_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
             "TcpListener: cannot bind 127.0.0.1:" + std::to_string(port) + ": " +
                 std::string(std::strerror(errno)));
  DEFA_CHECK(::listen(listen_fd_, 64) == 0,
             "TcpListener: listen() failed: " + std::string(std::strerror(errno)));
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  DEFA_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
             "TcpListener: getsockname() failed");
  port_ = static_cast<int>(ntohs(bound.sin_port));
}

TcpListener::~TcpListener() {
  close();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

std::unique_ptr<Connection> TcpListener::accept() {
  while (true) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return nullptr;
    }
    if ((fds[1].revents & POLLIN) != 0) return nullptr;  // close() requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return nullptr;
    }
    return std::make_unique<TcpConnection>(fd);
  }
}

void TcpListener::close() noexcept {
  // One byte on the self-pipe wakes the poll(); write() is on the
  // async-signal-safe list, so SIGTERM handlers may call this.
  if (wake_pipe_[1] >= 0) {
    const char b = 1;
    [[maybe_unused]] const ssize_t w = ::write(wake_pipe_[1], &b, 1);
  }
}

}  // namespace defa::serve
