#pragma once

/// \file scheduler.h
/// `serve::Server` — the async request scheduler on top of `api::Engine`.
///
/// `submit()` admits an `EvalRequest` into a bounded priority queue and
/// returns a `std::future<ServeResponse>` immediately; evaluation happens
/// on the shared `ThreadPool`, capped at `max_concurrency` simultaneous
/// requests.  Scheduling properties:
///
///  * **Backpressure** — when `queue_capacity` requests are already
///    waiting, new submits complete instantly with `kRejectedOverload`
///    instead of growing the queue without bound.
///  * **Deadlines** — a request whose deadline passed before dispatch
///    completes with `kRejectedDeadline`; expired work is never run and
///    never silently dropped (the future always resolves).
///  * **Priority without starvation** — three classes (high/normal/low)
///    are dispatched by a fixed weighted round-robin pattern
///    (`dispatch_slot`), so under a sustained flood of high-priority
///    traffic a low-priority request still reaches the engine within
///    `kDispatchPatternLen` dispatches.
///  * **Cache locality (optional)** — under `SchedulePolicy::kLocality`
///    the scheduler keeps draining requests that share the Engine workload
///    key of the most recent dispatch (QUILL-style affinity batching), so
///    same-workload requests hit the Engine's ContextPool warm.  A
///    fairness budget (`locality_window`) bounds each key's run: after
///    `locality_window` consecutive same-key dispatches the oldest
///    *different*-key request is dispatched, so no key is starved.
///    Affinity reorders only *within* the priority class the weighted
///    pattern selected — priorities and deadlines behave exactly as under
///    kFifo.
///  * **Determinism** — evaluation goes through `Engine::run`, so results
///    are bit-identical to sequential runs regardless of concurrency,
///    dispatch order or scheduling policy.

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <future>
#include <optional>
#include <string>

#include "api/engine.h"
#include "serve/metrics.h"
#include "common/thread_pool.h"

namespace defa::serve {

enum class Priority { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr int kPriorityClasses = 3;

[[nodiscard]] const char* priority_name(Priority p);
/// nullopt on an unknown name ("high" | "normal" | "low").
[[nodiscard]] std::optional<Priority> priority_from_name(const std::string& name);

/// Dispatch-order policy within a priority class.
enum class SchedulePolicy {
  kFifo,      ///< oldest-first within the class the weighted pattern picked
  kLocality,  ///< same-workload-key affinity batching with a fairness budget
};

[[nodiscard]] const char* policy_name(SchedulePolicy p);
/// nullopt on an unknown name ("fifo" | "locality").
[[nodiscard]] std::optional<SchedulePolicy> policy_from_name(const std::string& name);

enum class ResponseStatus {
  kOk,
  kRejectedOverload,  ///< bounded queue full at submit time
  kRejectedDeadline,  ///< deadline passed before dispatch (work not run)
  kRejectedShutdown,  ///< submitted during/after drain (work not run)
  kError,             ///< evaluation threw; message in `error`
  kBadRequest,        ///< transport-level parse failure (server_loop only)
};

[[nodiscard]] const char* status_name(ResponseStatus s);

/// One unit of serving work: an Engine request plus scheduling envelope.
struct ServeRequest {
  std::string id;  ///< echoed back; opaque to the scheduler
  api::EvalRequest request;
  Priority priority = Priority::kNormal;
  /// Relative deadline in ms from submission; <= 0 means none.
  double timeout_ms = 0;
  /// Absolute deadline; takes precedence over `timeout_ms` when set.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Observability (docs/OBSERVABILITY.md): non-zero marks this request
  /// sampled for tracing — every span recorded while it is processed
  /// carries this id, so client- and server-side spans correlate.  Set by
  /// the client (propagated through the protocol envelope) or stamped at
  /// admission by the server's own sampler (`trace_sample_every`).
  std::uint64_t trace_id = 0;
};

struct ServeResponse {
  std::string id;
  ResponseStatus status = ResponseStatus::kOk;
  std::string error;                      ///< set when status != kOk
  /// Protocol v1 error-code name ("overload", "transport", ...) when the
  /// response crossed the wire or failed in the client transport; empty
  /// for in-process responses (status alone is authoritative there).
  /// Carried as the wire name — not serve::ErrorCode — so scheduler.h
  /// stays independent of protocol.h.  `client::Pool` keys failover on
  /// "transport".
  std::string error_code;
  std::optional<api::EvalResult> result;  ///< set when status == kOk
  double queue_ms = 0;  ///< admission -> dispatch (or rejection)
  double run_ms = 0;    ///< evaluation only
  double total_ms = 0;  ///< admission -> response
  /// 0-based order in which the scheduler popped this request from the
  /// queue; -1 when it was never dispatched (rejected at submit time).
  std::int64_t dispatch_index = -1;
};

struct ServerOptions {
  /// Max requests evaluating at once; 0 = global pool size.
  int max_concurrency = 0;
  /// Bounded admission queue; submits beyond it are rejected.
  std::size_t queue_capacity = 1024;
  SchedulePolicy policy = SchedulePolicy::kFifo;
  /// kLocality fairness budget: max consecutive same-key dispatches before
  /// the scheduler must serve the oldest different-key request (>= 1).
  int locality_window = 8;
  /// When true the Server admits but does not dispatch until `resume()` —
  /// lets callers stage a whole queue so dispatch order is deterministic
  /// (batch prefill, scheduling tests).
  bool start_paused = false;
  api::Engine::Options engine;
  /// Fleet identity (docs/FLEET.md): set by `defa_serve --shard-id` when
  /// the process serves as one shard of a consistent-hash fleet, exported
  /// by the protocol `shard_info` method.  Purely informational — the
  /// scheduler itself is shard-agnostic; routing lives in `client::Pool`.
  int shard_id = -1;    ///< -1 = not part of a fleet
  int shard_count = 0;  ///< fleet size this shard was launched into
  std::string shard_name;
  int ring_virtual_nodes = 64;  ///< must match the routing clients' rings
  /// Server-side trace sampling: when the tracer is enabled and N > 0,
  /// every Nth admitted request that did not arrive with a client
  /// trace_id is stamped with a fresh one (`defa_serve --trace-sample`).
  /// 0 = only client-traced requests record spans.
  int trace_sample_every = 0;
};

/// A live configuration change, applied atomically between dispatches by
/// `Server::reconfigure` (the protocol `reconfigure` method).  Unset
/// fields keep their current value.
struct ServerReconfig {
  std::optional<SchedulePolicy> policy;
  std::optional<int> locality_window;
  std::optional<std::string> backend;       ///< "" = process default
  std::optional<std::size_t> max_contexts;  ///< 0 = unbounded
  std::optional<std::size_t> max_memo;      ///< 0 = unbounded
  std::optional<bool> memoize_results;
  /// Also clear the Engine caches and zero metrics/cache counters, so the
  /// server measures like a fresh process (remote sweeps reconfigure with
  /// this set to keep points comparable to in-process `run_sweep`).
  bool reset_stats = false;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  /// Drains: blocks until every admitted request has resolved its future.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admit one request.  Never blocks; the returned future always
  /// resolves, with a rejection status when the request is not run.
  [[nodiscard]] std::future<ServeResponse> submit(ServeRequest req);

  /// Response sink for `submit_async`.  Invoked exactly once per request,
  /// on whichever thread resolves it (an evaluator thread for dispatched
  /// work, the submitting thread for admission-time rejections), after
  /// the response is final.  Completion-order transports (Protocol v1)
  /// hang their frame writes off this instead of blocking a thread per
  /// future.  Exceptions thrown by the callback are swallowed.
  using ResponseCallback = std::function<void(const ServeResponse&)>;

  /// Admit one request and deliver its response through `done` instead of
  /// a future.  Same admission/rejection semantics as `submit`.
  void submit_async(ServeRequest req, ResponseCallback done);

  /// Start dispatching (no-op unless constructed with `start_paused`).
  void resume();

  /// Graceful shutdown: stop admitting (subsequent submits complete
  /// immediately with `kRejectedShutdown`), finish every in-flight and
  /// queued request, and return once the server is idle so callers can
  /// flush metrics.  On a paused server this resumes dispatch first
  /// (drain would never finish otherwise).  Idempotent.
  void drain();

  /// True once `drain()` has been called: the server no longer admits.
  [[nodiscard]] bool draining() const;

  /// Apply a live configuration change.  Validates everything (throws
  /// defa::CheckError, leaving the server untouched) before mutating, then
  /// applies under the scheduling lock: requests dispatched before the
  /// call ran under the old configuration, requests dispatched after run
  /// under the new one, and no dispatch observes a half-applied mix.  The
  /// locality affinity window restarts (the old key's budget is
  /// meaningless under a new policy/window).
  void reconfigure(const ServerReconfig& rc);

  [[nodiscard]] MetricsSnapshot metrics() const;
  [[nodiscard]] api::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] std::size_t queued() const;
  /// Effective configuration (max_concurrency resolved to the pool size).
  /// Prefer `options_snapshot()` anywhere `reconfigure` may run
  /// concurrently — this reference reads unguarded fields.
  [[nodiscard]] const ServerOptions& options() const noexcept { return options_; }
  /// Coherent copy of the live configuration (taken under the scheduling
  /// lock; safe against concurrent `reconfigure`).
  [[nodiscard]] ServerOptions options_snapshot() const;

  /// Which priority class dispatch slot `slot` prefers (falls back to the
  /// highest non-empty class when that one is empty).  The pattern is
  /// H H N H H N L, so every class owns >= 1 of every 7 slots.
  [[nodiscard]] static Priority dispatch_slot(std::uint64_t slot);
  static constexpr int kDispatchPatternLen = 7;

 private:
  struct Entry {
    ServeRequest req;
    std::string key;  ///< Engine workload key (locality affinity identity)
    std::promise<ServeResponse> promise;
    ResponseCallback callback;  ///< optional completion sink (submit_async)
    std::chrono::steady_clock::time_point admitted;
    std::int64_t dispatch_index = -1;  ///< set by pop_best_locked
  };

  [[nodiscard]] std::future<ServeResponse> submit_impl(ServeRequest req,
                                                       ResponseCallback done);
  void drain_loop();
  [[nodiscard]] bool pop_best_locked(Entry& out);
  void process(Entry entry);
  void finish_one();
  /// Resolve `promise`/`callback` with `resp` (callback first, exceptions
  /// swallowed; the promise always resolves).
  static void deliver(std::promise<ServeResponse>& promise,
                      const ResponseCallback& callback, ServeResponse resp);

  ServerOptions options_;
  api::Engine engine_;
  ServerMetrics metrics_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::array<std::deque<Entry>, kPriorityClasses> queues_;  // guarded by mu_
  std::size_t queued_total_ = 0;                            // guarded by mu_
  std::int64_t outstanding_ = 0;  ///< admitted, future not yet set
  int active_loops_ = 0;          ///< drain loops running on the pool
  bool paused_ = false;           ///< admits but does not dispatch
  bool draining_ = false;         ///< drain() called; no further admission
  std::uint64_t dispatch_seq_ = 0;
  std::int64_t popped_seq_ = 0;   ///< dispatch_index source
  // kLocality state: the workload key of the active affinity window and
  // how many consecutive dispatches it has received.
  std::string affinity_key_;      // guarded by mu_
  int affinity_run_ = 0;          // guarded by mu_
  std::atomic<std::uint64_t> trace_seq_{0};  ///< trace_sample_every counter
};

}  // namespace defa::serve
