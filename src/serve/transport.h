#pragma once

/// \file transport.h
/// Byte transports for the serving protocol: a `Connection` is a
/// bidirectional stream of LF-terminated frames (the unit both the legacy
/// JSON-lines mode and Protocol v1 exchange — docs/PROTOCOL.md#framing).
/// Two implementations ship:
///
///  * `StreamConnection` — wraps an existing istream/ostream pair.  Used
///    for stdio serving (`defa_serve` without `--listen`), spawned-process
///    pipes, and in-memory tests over stringstreams.
///  * `TcpConnection` / `TcpListener` — POSIX TCP sockets.  The listener
///    accepts any number of clients (`defa_serve --listen PORT`); `close()`
///    is async-signal-safe via a self-pipe, so a SIGTERM handler can wake a
///    blocked `accept()` for graceful shutdown.
///
/// Connections are *not* thread-safe per method: callers serialize reads
/// on one thread and guard writes with their own mutex (the protocol
/// session does exactly that, since completion-order responses are written
/// from evaluator threads).

#include <memory>
#include <string>

#include <iosfwd>

namespace defa::serve {

/// One framed, bidirectional peer connection.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Blocking read of the next LF-terminated frame (the terminator is
  /// stripped; a trailing CR is stripped too).  Returns false on EOF or a
  /// transport error; a non-empty final frame without a terminator is
  /// still delivered.
  [[nodiscard]] virtual bool read_frame(std::string& frame) = 0;

  /// Write one frame (an LF terminator is appended) and flush.  Returns
  /// false when the peer is gone (broken pipe); implementations must not
  /// raise signals or throw for that case — a vanished client is an
  /// ordinary end-of-session, not an error.
  virtual bool write_frame(const std::string& frame) = 0;

  /// Blocking read of exactly `n` raw bytes into `buf` (Protocol v2
  /// binary framing — docs/PROTOCOL.md#protocol-v2).  Bytes already
  /// buffered by a previous `read_frame` are consumed first, so a session
  /// can switch from line framing to binary mid-stream (the `hello`
  /// handshake does exactly that).  Returns false on EOF or a transport
  /// error before `n` bytes arrived.
  [[nodiscard]] virtual bool read_exact(void* buf, std::size_t n) = 0;

  /// Write exactly `n` raw bytes (no terminator) and flush.  Same
  /// broken-pipe contract as `write_frame`.
  virtual bool write_bytes(const void* data, std::size_t n) = 0;

  /// Interrupt a blocked `read_frame` from another thread; subsequent
  /// reads return false.  Used for server-initiated shutdown.
  virtual void shutdown() = 0;

  /// Transport label stamped into load reports ("stdio" | "tcp").
  [[nodiscard]] virtual const char* transport_name() const noexcept = 0;

  /// The underlying read descriptor for socket-option introspection
  /// (tests assert TCP_NODELAY on both ends); -1 when not fd-backed.
  [[nodiscard]] virtual int native_handle() const noexcept { return -1; }
};

/// `Connection` over caller-owned streams (stdio, pipes, stringstreams).
class StreamConnection : public Connection {
 public:
  StreamConnection(std::istream& in, std::ostream& out);
  [[nodiscard]] bool read_frame(std::string& frame) override;
  bool write_frame(const std::string& frame) override;
  [[nodiscard]] bool read_exact(void* buf, std::size_t n) override;
  bool write_bytes(const void* data, std::size_t n) override;
  void shutdown() override;
  [[nodiscard]] const char* transport_name() const noexcept override {
    return "stdio";
  }

 private:
  std::istream& in_;
  std::ostream& out_;
  bool shutdown_ = false;
};

/// `Connection` over raw file descriptors — the shared framing (buffered
/// reads, EINTR retry, EOF with a final unterminated frame, CR strip,
/// write-all) for sockets and pipes alike.  `is_socket` selects
/// recv/send (+MSG_NOSIGNAL, so a vanished peer is EPIPE not a signal)
/// over read/write.  Takes ownership of both fds (closed once when they
/// are the same descriptor).
class FdConnection : public Connection {
 public:
  FdConnection(int read_fd, int write_fd, bool is_socket);
  ~FdConnection() override;
  FdConnection(const FdConnection&) = delete;
  FdConnection& operator=(const FdConnection&) = delete;

  [[nodiscard]] bool read_frame(std::string& frame) override;
  bool write_frame(const std::string& frame) override;
  [[nodiscard]] bool read_exact(void* buf, std::size_t n) override;
  bool write_bytes(const void* data, std::size_t n) override;
  /// Socket: ::shutdown both directions (wakes a blocked reader).
  /// Pipe pair: close the write end — the peer's read side sees EOF.
  void shutdown() override;
  [[nodiscard]] const char* transport_name() const noexcept override {
    return is_socket_ ? "tcp" : "stdio";
  }
  [[nodiscard]] int native_handle() const noexcept override { return read_fd_; }

 protected:
  /// Write-all with EINTR retry; false on a vanished peer.
  bool write_all(const void* data, std::size_t n);

  int read_fd_ = -1;
  int write_fd_ = -1;
  bool is_socket_ = false;
  /// Receive buffer, reused across frames: `pos_` marks the consumed
  /// prefix and the prefix is erased in place before refilling, so a
  /// steady-state `read_frame`/`read_exact` loop performs no per-frame
  /// allocation (asserted by a micro-test in tests/test_protocol.cpp).
  std::string buffer_;
  std::size_t pos_ = 0;
  /// Reused outgoing line buffer of `write_frame` (frame + '\n' in one
  /// transport write, so small responses stay one TCP segment).
  std::string write_buf_;
};

/// `Connection` over a connected TCP socket (takes ownership of `fd`).
class TcpConnection : public FdConnection {
 public:
  explicit TcpConnection(int fd);
};

/// Connect to `host:port`; throws defa::CheckError on resolution or
/// connection failure.
[[nodiscard]] std::unique_ptr<Connection> tcp_connect(const std::string& host,
                                                      int port);

/// Split an `HOST:PORT` endpoint ("127.0.0.1:7411", ":7411" and bare
/// "7411" default the host to 127.0.0.1).  Throws defa::CheckError on a
/// malformed port.
struct Endpoint {
  std::string host;
  int port = 0;
};
[[nodiscard]] Endpoint parse_endpoint(const std::string& spec);

/// Accepting TCP socket bound to 127.0.0.1 (port 0 = ephemeral; read the
/// chosen port back with `port()`).
class TcpListener {
 public:
  explicit TcpListener(int port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The locally bound port.
  [[nodiscard]] int port() const noexcept { return port_; }

  /// Block until a client connects; nullptr once `close()` was requested.
  [[nodiscard]] std::unique_ptr<Connection> accept();

  /// Wake a blocked `accept()` and make future accepts return nullptr.
  /// Async-signal-safe (one write to a self-pipe), so it may be called
  /// from a SIGTERM handler.
  void close() noexcept;

 private:
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< [read, write]; write end wakes accept
  int port_ = 0;
};

}  // namespace defa::serve
