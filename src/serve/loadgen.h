#pragma once

/// \file loadgen.h
/// Traffic generator for `serve::Server`: weighted scenario mixes (model
/// presets x scenes x prune configs), closed-loop (fixed concurrency) or
/// open-loop (fixed arrival rate, fixed or Poisson interarrivals) driving,
/// and a latency/throughput report (`BENCH_serve.json`).  `defa_loadgen`
/// is a thin main() over `run_loadgen`; the scenario schedule is drawn
/// from an explicit seed so a given (options, machine) pair replays the
/// same request sequence.

#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "serve/scheduler.h"

namespace defa::serve {

/// One weighted entry of the traffic mix.
struct Scenario {
  std::string name;
  api::EvalRequest request;
  Priority priority = Priority::kNormal;
  double weight = 1.0;
};

struct LoadGenOptions {
  enum class Mode { kClosed, kOpen };
  Mode mode = Mode::kClosed;

  int requests = 64;
  /// Closed loop: in-flight request count (each completion submits next).
  int concurrency = 4;
  /// Open loop: offered arrival rate (requests/s)...
  double rate_qps = 200.0;
  /// ... with exponential (Poisson) interarrivals, else fixed spacing.
  bool poisson = true;

  /// Per-request deadline forwarded to the scheduler; <= 0 = none.
  double timeout_ms = 0;
  std::uint64_t seed = 1;

  /// > 0 stamps every Nth generated request with a fresh trace id
  /// (docs/OBSERVABILITY.md): in-process targets record server-side spans
  /// under it, `--connect` targets additionally propagate it over the
  /// wire and record the client rpc span, so the two sides correlate.
  /// Requires the process tracer to be enabled to have any effect.
  int trace_sample_every = 0;

  ServerOptions server;
  /// Traffic mix; empty selects `smoke_mix()`.
  std::vector<Scenario> scenarios;
};

/// Cheap mixed-key mix on the "tiny" preset: cache-hot default config,
/// pruning/quantization variants, a second scene and a latency-simulating
/// entry, across all three priority classes.
[[nodiscard]] std::vector<Scenario> smoke_mix();

/// Heavier mix that also exercises the "small" preset and hardware sims.
[[nodiscard]] std::vector<Scenario> default_mix();

struct LoadReport {
  std::string mode;    ///< "closed" | "open"
  std::string policy;  ///< "fifo" | "locality" (the server's dispatch policy)
  /// How requests reached the scheduler: "inproc" (same-process Server),
  /// or the client transport ("tcp" | "stdio") for `--connect` runs.
  std::string transport = "inproc";
  std::string backend;  ///< the server's resolved kernel backend name
  int requests = 0;
  int concurrency = 0;
  double offered_qps = 0;  ///< open loop only (0 for closed)
  std::uint64_t completed_ok = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t errors = 0;
  double elapsed_ms = 0;
  double achieved_qps = 0;  ///< ok completions / elapsed
  LatencyHistogram latency_ms;  ///< client-observed total latency (ok only)
  LatencyHistogram queue_ms;
  LatencyHistogram run_ms;
  /// (scenario name, ok-count, per-scenario latency) in mix order.
  struct PerScenario {
    std::string name;
    std::uint64_t completed_ok = 0;
    LatencyHistogram latency_ms;
  };
  std::vector<PerScenario> per_scenario;
  MetricsSnapshot server_metrics;

  /// Negotiated wire version of the client connection for `--connect`
  /// runs; 0 for in-process targets (no wire, serialization stays zero).
  int wire_version = 0;
  /// Serialization time/bytes spent on this run's traffic, client side
  /// (this process) and server side (from the server's metrics export),
  /// diffed around the run by `run_remote_loadgen`.  The report derives
  /// ms-per-request and the share of p50 latency from these —
  /// docs/BENCH_SCHEMA.md#serialization.
  wire::SerSnapshot ser_client;
  wire::SerSnapshot ser_server;

  [[nodiscard]] api::Json to_json() const;
};

/// Drive a fresh Server with the configured traffic and collect the
/// report.  Blocks until every request resolved.
[[nodiscard]] LoadReport run_loadgen(const LoadGenOptions& options);

/// Where the generated traffic goes.  `run_loadgen` wraps an in-process
/// Server in one of these; `defa::client::run_remote_loadgen` wraps a
/// `client::Client`, so one driver measures both sides of the
/// in-process-vs-cross-process comparison with identical schedules.
struct LoadTarget {
  /// Submit one request; the future must always resolve.
  std::function<std::future<ServeResponse>(ServeRequest)> submit;
  /// Final server metrics for the report, sampled after every request
  /// resolved (the in-process wrapper drains first).
  std::function<MetricsSnapshot()> metrics;
  std::string transport = "inproc";  ///< stamped into LoadReport::transport
  std::string policy;                ///< the *server's* dispatch policy name
  std::string backend;  ///< resolved kernel backend name, for the report meta
};

/// Drive an arbitrary target with the configured traffic.  Ignores
/// `options.server` (the target owns its server configuration).
[[nodiscard]] LoadReport run_loadgen_against(const LoadGenOptions& options,
                                             const LoadTarget& target);

}  // namespace defa::serve
