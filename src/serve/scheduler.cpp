#include "serve/scheduler.h"

#include <utility>

#include "common/check.h"
#include "obs/trace.h"

namespace defa::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(b - a)
      .count();
}

#if DEFA_TRACE
std::int64_t us_of(Clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             tp.time_since_epoch())
      .count();
}
#endif

}  // namespace

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kLow: return "low";
  }
  return "normal";
}

std::optional<Priority> priority_from_name(const std::string& name) {
  if (name == "high") return Priority::kHigh;
  if (name == "normal") return Priority::kNormal;
  if (name == "low") return Priority::kLow;
  return std::nullopt;
}

const char* policy_name(SchedulePolicy p) {
  switch (p) {
    case SchedulePolicy::kFifo: return "fifo";
    case SchedulePolicy::kLocality: return "locality";
  }
  return "fifo";
}

std::optional<SchedulePolicy> policy_from_name(const std::string& name) {
  if (name == "fifo") return SchedulePolicy::kFifo;
  if (name == "locality") return SchedulePolicy::kLocality;
  return std::nullopt;
}

const char* status_name(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kRejectedOverload: return "rejected_overload";
    case ResponseStatus::kRejectedDeadline: return "rejected_deadline";
    case ResponseStatus::kRejectedShutdown: return "rejected_shutdown";
    case ResponseStatus::kError: return "error";
    case ResponseStatus::kBadRequest: return "bad_request";
  }
  return "error";
}

Priority Server::dispatch_slot(std::uint64_t slot) {
  static constexpr std::array<Priority, kDispatchPatternLen> kPattern = {
      Priority::kHigh, Priority::kHigh, Priority::kNormal, Priority::kHigh,
      Priority::kHigh, Priority::kNormal, Priority::kLow,
  };
  return kPattern[static_cast<std::size_t>(slot % kDispatchPatternLen)];
}

Server::Server(ServerOptions options)
    : options_(options), engine_(options.engine), paused_(options.start_paused) {
  DEFA_CHECK(options_.queue_capacity > 0, "Server: queue_capacity must be positive");
  DEFA_CHECK(options_.locality_window >= 1, "Server: locality_window must be >= 1");
  if (options_.max_concurrency <= 0) {
    options_.max_concurrency = ThreadPool::global().size();
  }
}

Server::~Server() { drain(); }

std::future<ServeResponse> Server::submit(ServeRequest req) {
  return submit_impl(std::move(req), nullptr);
}

void Server::submit_async(ServeRequest req, ResponseCallback done) {
  DEFA_CHECK(done != nullptr, "Server::submit_async: callback must be set");
  (void)submit_impl(std::move(req), std::move(done));
}

void Server::deliver(std::promise<ServeResponse>& promise,
                     const ResponseCallback& callback, ServeResponse resp) {
  if (callback) {
    try {
      callback(resp);
    } catch (...) {
      // A throwing sink must not take the scheduler down; the promise
      // below still resolves, so nothing is lost silently.
    }
  }
  promise.set_value(std::move(resp));
}

std::future<ServeResponse> Server::submit_impl(ServeRequest req,
                                               ResponseCallback done) {
  const Clock::time_point now = Clock::now();
  if (!req.deadline.has_value() && req.timeout_ms > 0) {
    req.deadline = now + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(req.timeout_ms));
  }
  metrics_.on_submitted();
#if DEFA_TRACE
  // Server-side sampling: stamp every Nth untraced admission with a fresh
  // trace id (client-provided ids always win, so cross-process sampling
  // decisions stay with the client).
  if (req.trace_id == 0 && options_.trace_sample_every > 0 &&
      obs::Tracer::instance().enabled()) {
    const std::uint64_t n = trace_seq_.fetch_add(1, std::memory_order_relaxed);
    if (n % static_cast<std::uint64_t>(options_.trace_sample_every) == 0) {
      req.trace_id = obs::new_trace_id();
    }
  }
#endif

  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();

  ServeResponse rejection;
  rejection.id = req.id;
  if (req.deadline.has_value() && *req.deadline <= now) {
    rejection.status = ResponseStatus::kRejectedDeadline;
    rejection.error = "deadline expired before admission";
    metrics_.on_rejected_deadline(0.0);
    deliver(promise, done, std::move(rejection));
    return future;
  }

  // The affinity identity is the Engine's context-cache key.  Only the
  // locality policy reads it, so FIFO admission skips the resolve cost.
  // A request malformed enough that its key cannot be resolved still gets
  // queued (the error surfaces from Engine::run with a proper response);
  // it just joins the empty-key affinity class.  The policy is snapshotted
  // under mu_ (reconfigure can flip it concurrently); a request admitted
  // across the flip at worst carries a stale key and joins the empty-key
  // affinity class — never a wrong result, dispatch stays correct.
  SchedulePolicy policy;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    policy = options_.policy;
  }
  std::string key;
  if (policy == SchedulePolicy::kLocality) {
    try {
      key = req.request.workload_key();
    } catch (const std::exception&) {
      key.clear();
    }
  }

  bool spawn = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      rejection.status = ResponseStatus::kRejectedShutdown;
      rejection.error = "server is draining (no longer admitting)";
    } else if (queued_total_ >= options_.queue_capacity) {
      rejection.status = ResponseStatus::kRejectedOverload;
      rejection.error = "admission queue full (" +
                        std::to_string(options_.queue_capacity) + " waiting)";
    } else {
      auto& q = queues_[static_cast<std::size_t>(req.priority)];
      q.push_back(Entry{std::move(req), std::move(key), std::move(promise),
                        std::move(done), now, -1});
      ++queued_total_;
      ++outstanding_;
      if (!paused_ && active_loops_ < options_.max_concurrency) {
        ++active_loops_;
        spawn = true;
      }
    }
  }
  // Rejections are delivered outside mu_: the callback may call back into
  // the Server (metrics(), queued()) without deadlocking.
  if (rejection.status == ResponseStatus::kRejectedShutdown) {
    metrics_.on_rejected_shutdown();
    deliver(promise, done, std::move(rejection));
    return future;
  }
  if (rejection.status == ResponseStatus::kRejectedOverload) {
    metrics_.on_rejected_overload();
    deliver(promise, done, std::move(rejection));
    return future;
  }
  if (spawn) ThreadPool::global().submit([this] { drain_loop(); });
  return future;
}

void Server::resume() {
  int spawn = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!paused_) return;
    paused_ = false;
    const auto want = static_cast<std::int64_t>(queued_total_);
    while (active_loops_ < options_.max_concurrency && active_loops_ < want) {
      ++active_loops_;
      ++spawn;
    }
  }
  for (int i = 0; i < spawn; ++i) ThreadPool::global().submit([this] { drain_loop(); });
}

bool Server::pop_best_locked(Entry& out) {
  if (queued_total_ == 0) return false;
  const Priority preferred = dispatch_slot(dispatch_seq_++);
  // The preferred class first, then the remaining classes best-first.
  std::array<std::size_t, kPriorityClasses> order{};
  std::size_t k = 0;
  order[k++] = static_cast<std::size_t>(preferred);
  for (std::size_t p = 0; p < kPriorityClasses; ++p) {
    if (p != static_cast<std::size_t>(preferred)) order[k++] = p;
  }
  for (const std::size_t p : order) {
    std::deque<Entry>& q = queues_[p];
    if (q.empty()) continue;

    // kFifo: oldest request in the selected class.  kLocality: keep the
    // active workload key's window going while its fairness budget lasts;
    // once the budget is spent, the oldest *different*-key request runs
    // (so a same-key flood cannot starve minority keys).  Affinity only
    // reorders within the class the priority pattern already selected.
    std::size_t pick = 0;
    if (options_.policy == SchedulePolicy::kLocality) {
      if (affinity_run_ < options_.locality_window) {
        for (std::size_t i = 0; i < q.size(); ++i) {
          if (q[i].key == affinity_key_) {
            pick = i;
            break;
          }
        }
        // No queued request shares the active key: fall through to the
        // oldest entry, which opens a fresh affinity window.
      } else {
        for (std::size_t i = 0; i < q.size(); ++i) {
          if (q[i].key != affinity_key_) {
            pick = i;
            break;
          }
        }
        // Only the active key is queued: its window simply continues.
      }
    }

    out = std::move(q[static_cast<std::size_t>(pick)]);
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(pick));
    --queued_total_;
    out.dispatch_index = popped_seq_++;
    if (out.key == affinity_key_) {
      ++affinity_run_;
    } else {
      affinity_key_ = out.key;
      affinity_run_ = 1;
    }
    return true;
  }
  return false;
}

void Server::drain_loop() {
  while (true) {
    Entry entry;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!pop_best_locked(entry)) {
        --active_loops_;
        // Notify while still holding mu_: once drain()'s predicate can
        // become true the Server may be destroyed, so `this` must not be
        // touched after the lock is released.
        if (active_loops_ == 0 && outstanding_ == 0) idle_cv_.notify_all();
        return;
      }
    }
    process(std::move(entry));
  }
}

void Server::process(Entry entry) {
  const Clock::time_point dispatched = Clock::now();
#if DEFA_TRACE
  // Opens the thread-local trace context: every DEFA_TRACE_SPAN below
  // this frame (engine lookup, kernel phases...) records with this id.
  const obs::TraceScope trace_scope(entry.req.trace_id);
  // Emitted once the outcome is known: the request's server-side root
  // span plus the cross-thread queue-wait span (admission -> dispatch).
  const auto trace_lifecycle = [&](const ServeResponse& r) {
    if (!obs::trace_active()) return;
    obs::record_span("queue", "serve", us_of(entry.admitted),
                     static_cast<std::int64_t>(r.queue_ms * 1000.0),
                     entry.req.trace_id);
    obs::record_span("request", "serve", us_of(entry.admitted),
                     static_cast<std::int64_t>(r.total_ms * 1000.0),
                     entry.req.trace_id,
                     {{"id", entry.req.id},
                      {"priority", priority_name(entry.req.priority)},
                      {"status", status_name(r.status)}});
  };
#endif
  ServeResponse resp;
  resp.id = entry.req.id;
  resp.dispatch_index = entry.dispatch_index;
  resp.queue_ms = ms_between(entry.admitted, dispatched);

  if (entry.req.deadline.has_value() && *entry.req.deadline <= dispatched) {
    resp.status = ResponseStatus::kRejectedDeadline;
    resp.error = "deadline expired after " + std::to_string(resp.queue_ms) +
                 " ms in queue";
    resp.total_ms = resp.queue_ms;
    metrics_.on_rejected_deadline(resp.queue_ms);
#if DEFA_TRACE
    trace_lifecycle(resp);
#endif
    deliver(entry.promise, entry.callback, std::move(resp));
    finish_one();
    return;
  }

  try {
    api::EvalResult result;
    {
      DEFA_TRACE_SPAN("run", "serve");
      result = engine_.run(entry.req.request);
    }
    const Clock::time_point done = Clock::now();
    resp.run_ms = ms_between(dispatched, done);
    resp.total_ms = ms_between(entry.admitted, done);
    metrics_.on_completed(result.benchmark, resp.queue_ms, resp.run_ms, resp.total_ms);
    resp.result = std::move(result);
  } catch (const std::exception& e) {
    const Clock::time_point done = Clock::now();
    resp.status = ResponseStatus::kError;
    resp.error = e.what();
    resp.run_ms = ms_between(dispatched, done);
    resp.total_ms = ms_between(entry.admitted, done);
    metrics_.on_error(resp.queue_ms, resp.run_ms, resp.total_ms);
  }
#if DEFA_TRACE
  trace_lifecycle(resp);
#endif
  deliver(entry.promise, entry.callback, std::move(resp));
  finish_one();
}

void Server::finish_one() {
  // Notify under mu_ — see drain_loop for the lifetime reasoning.
  const std::lock_guard<std::mutex> lock(mu_);
  --outstanding_;
  if (outstanding_ == 0 && active_loops_ == 0) idle_cv_.notify_all();
}

void Server::drain() {
  {
    // Stop admitting before waiting: submits racing with drain either made
    // it into the queue (and are finished below) or complete with
    // kRejectedShutdown — nothing is silently dropped either way.
    const std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  resume();  // a paused server would otherwise never become idle
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return outstanding_ == 0 && active_loops_ == 0; });
}

bool Server::draining() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void Server::reconfigure(const ServerReconfig& rc) {
  // Validate before mutating anything, so a bad reconfigure leaves the
  // server exactly as it was.
  if (rc.locality_window.has_value()) {
    DEFA_CHECK(*rc.locality_window >= 1,
               "Server::reconfigure: locality_window must be >= 1");
  }
  // The Engine validates the backend name and applies its own fields under
  // its locks (evicting caches down to new bounds as needed).
  api::Engine::Reconfig er;
  er.backend = rc.backend;
  er.max_contexts = rc.max_contexts;
  er.max_memo = rc.max_memo;
  er.memoize_results = rc.memoize_results;
  engine_.reconfigure(er);
  {
    // Scheduler fields flip under mu_: every pop_best_locked sees either
    // the old configuration or the new one, never a mix.
    const std::lock_guard<std::mutex> lock(mu_);
    if (rc.policy.has_value()) options_.policy = *rc.policy;
    if (rc.locality_window.has_value()) options_.locality_window = *rc.locality_window;
    // Mirror the engine fields so options()/ping stay truthful.
    if (rc.backend.has_value()) options_.engine.backend = *rc.backend;
    if (rc.max_contexts.has_value()) options_.engine.max_contexts = *rc.max_contexts;
    if (rc.max_memo.has_value()) options_.engine.max_memo = *rc.max_memo;
    if (rc.memoize_results.has_value()) {
      options_.engine.memoize_results = *rc.memoize_results;
    }
    affinity_key_.clear();
    affinity_run_ = 0;
  }
  if (rc.reset_stats) {
    engine_.clear_caches();
    engine_.reset_stats();
    metrics_.reset();
    wire::SerStats::instance().reset();
  }
}

ServerOptions Server::options_snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

MetricsSnapshot Server::metrics() const {
  std::size_t depth;
  std::int64_t in_flight;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    depth = queued_total_;
    in_flight = outstanding_;
  }
  MetricsSnapshot snap = metrics_.snapshot(depth, in_flight);
  const api::Engine::CacheStats cache = engine_.cache_stats();
  snap.context_hits = cache.context.hits;
  snap.context_misses = cache.context.misses;
  snap.context_evictions = cache.context.evictions;
  snap.memo_hits = cache.memo_hits;
  snap.memo_misses = cache.memo_misses;
  snap.memo_evictions = cache.memo_evictions;
  snap.plan_hits = cache.plan_hits;
  snap.plan_misses = cache.plan_misses;
  snap.plan_entries = cache.plan_entries;
  snap.wire_v1 = wire::SerStats::instance().snapshot(1);
  snap.wire_v2 = wire::SerStats::instance().snapshot(2);
  return snap;
}

std::size_t Server::queued() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queued_total_;
}

}  // namespace defa::serve
