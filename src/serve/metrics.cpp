#include "serve/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace defa::serve {

// ---------------------------------------------------------- LatencyHistogram

int LatencyHistogram::bucket_of(double ms) {
  if (!(ms > kLowestMs)) return 0;
  const int b = static_cast<int>(std::log(ms / kLowestMs) / std::log(kGrowth)) + 1;
  return std::min(b, kBuckets - 1);
}

void LatencyHistogram::record(double ms) {
  DEFA_CHECK(std::isfinite(ms) && ms >= 0, "LatencyHistogram: bad latency value");
  ++buckets_[static_cast<std::size_t>(bucket_of(ms))];
  if (count_ == 0) {
    min_ = max_ = ms;
  } else {
    min_ = std::min(min_, ms);
    max_ = std::max(max_, ms);
  }
  ++count_;
  sum_ += ms;
}

double LatencyHistogram::percentile(double p) const {
  DEFA_CHECK(p >= 0 && p <= 100, "LatencyHistogram: percentile out of [0, 100]");
  if (count_ == 0) return 0.0;
  // Nearest-rank on the cumulative bucket counts.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (seen >= target) {
      // Geometric midpoint of the bucket's bounds, clamped to observations.
      const double lo = b == 0 ? kLowestMs : kLowestMs * std::pow(kGrowth, b - 1);
      const double mid = b == 0 ? kLowestMs / 2 : lo * std::sqrt(kGrowth);
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

std::uint64_t LatencyHistogram::bucket_count(int b) const {
  DEFA_CHECK(b >= 0 && b < kBuckets, "LatencyHistogram: bucket index out of range");
  return buckets_[static_cast<std::size_t>(b)];
}

double LatencyHistogram::bucket_lower_ms(int b) {
  DEFA_CHECK(b >= 0 && b < kBuckets, "LatencyHistogram: bucket index out of range");
  return b == 0 ? 0.0 : kLowestMs * std::pow(kGrowth, b - 1);
}

double LatencyHistogram::bucket_upper_ms(int b) {
  DEFA_CHECK(b >= 0 && b < kBuckets, "LatencyHistogram: bucket index out of range");
  return kLowestMs * std::pow(kGrowth, b);
}

api::Json LatencyHistogram::to_json() const {
  api::Json j = api::Json::object();
  j["count"] = static_cast<double>(count_);
  j["mean_ms"] = mean();
  j["sum_ms"] = sum_;
  j["min_ms"] = min();
  j["max_ms"] = max();
  j["p50_ms"] = percentile(50);
  j["p95_ms"] = percentile(95);
  j["p99_ms"] = percentile(99);
  j["p999_ms"] = percentile(99.9);
  // Raw sparse buckets: [index, count] pairs in index order, zero buckets
  // omitted.  Percentiles of a merged run are recomputed from these.
  j["bucket_lowest_ms"] = kLowestMs;
  j["bucket_growth"] = kGrowth;
  api::Json buckets = api::Json::array();
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[static_cast<std::size_t>(b)] == 0) continue;
    api::Json pair = api::Json::array();
    pair.push_back(b);
    pair.push_back(static_cast<double>(buckets_[static_cast<std::size_t>(b)]));
    buckets.push_back(std::move(pair));
  }
  j["buckets"] = std::move(buckets);
  return j;
}

LatencyHistogram LatencyHistogram::from_json(const api::Json& j) {
  DEFA_CHECK(j.is_object(), "LatencyHistogram: expected a JSON object");
  DEFA_CHECK(j.at("bucket_lowest_ms").as_number() == kLowestMs &&
                 j.at("bucket_growth").as_number() == kGrowth,
             "LatencyHistogram: bucket scale parameters do not match this build");
  LatencyHistogram h;
  std::uint64_t bucket_total = 0;
  for (const api::Json& pair : j.at("buckets").items()) {
    DEFA_CHECK(pair.is_array() && pair.size() == 2,
               "LatencyHistogram: each bucket must be an [index, count] pair");
    const std::int64_t b = pair.at(std::size_t{0}).as_int();
    const std::int64_t n = pair.at(std::size_t{1}).as_int();
    DEFA_CHECK(b >= 0 && b < kBuckets, "LatencyHistogram: bucket index out of range");
    DEFA_CHECK(n > 0, "LatencyHistogram: bucket count must be positive");
    h.buckets_[static_cast<std::size_t>(b)] += static_cast<std::uint64_t>(n);
    bucket_total += static_cast<std::uint64_t>(n);
  }
  h.count_ = static_cast<std::uint64_t>(j.at("count").as_int());
  DEFA_CHECK(bucket_total == h.count_,
             "LatencyHistogram: bucket counts do not sum to 'count'");
  h.sum_ = j.at("sum_ms").as_number();
  h.min_ = j.at("min_ms").as_number();
  h.max_ = j.at("max_ms").as_number();
  DEFA_CHECK(h.count_ == 0 || (h.min_ >= 0 && h.min_ <= h.max_),
             "LatencyHistogram: inconsistent min/max");
  return h;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[static_cast<std::size_t>(b)] += other.buckets_[static_cast<std::size_t>(b)];
  }
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

// ----------------------------------------------------------- MetricsSnapshot

api::Json MetricsSnapshot::to_json() const {
  api::Json j = api::Json::object();
  j["submitted"] = static_cast<double>(submitted);
  j["completed_ok"] = static_cast<double>(completed_ok);
  j["rejected_overload"] = static_cast<double>(rejected_overload);
  j["rejected_deadline"] = static_cast<double>(rejected_deadline);
  j["rejected_shutdown"] = static_cast<double>(rejected_shutdown);
  j["errors"] = static_cast<double>(errors);
  j["in_flight"] = static_cast<double>(in_flight);
  j["queue_depth"] = static_cast<double>(queue_depth);
  j["uptime_ms"] = uptime_ms;
  j["qps"] = qps;
  j["queue_ms"] = queue_ms.to_json();
  j["run_ms"] = run_ms.to_json();
  j["total_ms"] = total_ms.to_json();
  api::Json per = api::Json::object();
  for (const auto& [name, n] : per_benchmark) per[name] = static_cast<double>(n);
  j["per_benchmark"] = std::move(per);
  api::Json cache = api::Json::object();
  cache["context_hits"] = static_cast<double>(context_hits);
  cache["context_misses"] = static_cast<double>(context_misses);
  cache["context_evictions"] = static_cast<double>(context_evictions);
  cache["context_hit_rate"] = context_hit_rate();
  cache["memo_hits"] = static_cast<double>(memo_hits);
  cache["memo_misses"] = static_cast<double>(memo_misses);
  cache["memo_evictions"] = static_cast<double>(memo_evictions);
  cache["plan_hits"] = static_cast<double>(plan_hits);
  cache["plan_misses"] = static_cast<double>(plan_misses);
  cache["plan_entries"] = static_cast<double>(plan_entries);
  j["cache"] = std::move(cache);
  const auto ser = [](const wire::SerSnapshot& s) {
    api::Json b = api::Json::object();
    b["encode_ms"] = s.encode_ms;
    b["decode_ms"] = s.decode_ms;
    b["encode_frames"] = static_cast<double>(s.encode_frames);
    b["decode_frames"] = static_cast<double>(s.decode_frames);
    b["encode_bytes"] = static_cast<double>(s.encode_bytes);
    b["decode_bytes"] = static_cast<double>(s.decode_bytes);
    return b;
  };
  api::Json wire_block = api::Json::object();
  wire_block["v1"] = ser(wire_v1);
  wire_block["v2"] = ser(wire_v2);
  j["wire"] = std::move(wire_block);
  return j;
}

MetricsSnapshot MetricsSnapshot::from_json(const api::Json& j) {
  DEFA_CHECK(j.is_object(), "MetricsSnapshot: expected a JSON object");
  MetricsSnapshot s;
  const auto u64 = [&](const char* key) {
    return static_cast<std::uint64_t>(j.at(key).as_int());
  };
  s.submitted = u64("submitted");
  s.completed_ok = u64("completed_ok");
  s.rejected_overload = u64("rejected_overload");
  s.rejected_deadline = u64("rejected_deadline");
  // Absent in exports from builds before the drain protocol; default 0.
  if (j.contains("rejected_shutdown")) s.rejected_shutdown = u64("rejected_shutdown");
  s.errors = u64("errors");
  s.in_flight = j.at("in_flight").as_int();
  s.queue_depth = static_cast<std::size_t>(j.at("queue_depth").as_int());
  s.uptime_ms = j.at("uptime_ms").as_number();
  s.qps = j.at("qps").as_number();
  s.queue_ms = LatencyHistogram::from_json(j.at("queue_ms"));
  s.run_ms = LatencyHistogram::from_json(j.at("run_ms"));
  s.total_ms = LatencyHistogram::from_json(j.at("total_ms"));
  for (const auto& [name, n] : j.at("per_benchmark").members()) {
    s.per_benchmark.emplace_back(name, static_cast<std::uint64_t>(n.as_int()));
  }
  const api::Json& cache = j.at("cache");
  s.context_hits = static_cast<std::uint64_t>(cache.at("context_hits").as_int());
  s.context_misses = static_cast<std::uint64_t>(cache.at("context_misses").as_int());
  s.context_evictions =
      static_cast<std::uint64_t>(cache.at("context_evictions").as_int());
  s.memo_hits = static_cast<std::uint64_t>(cache.at("memo_hits").as_int());
  s.memo_misses = static_cast<std::uint64_t>(cache.at("memo_misses").as_int());
  s.memo_evictions = static_cast<std::uint64_t>(cache.at("memo_evictions").as_int());
  // Absent in exports from builds before the kernel plan cache was
  // surfaced; default 0.
  if (cache.contains("plan_hits")) {
    s.plan_hits = static_cast<std::uint64_t>(cache.at("plan_hits").as_int());
    s.plan_misses = static_cast<std::uint64_t>(cache.at("plan_misses").as_int());
    s.plan_entries = static_cast<std::uint64_t>(cache.at("plan_entries").as_int());
  }
  // Absent in exports from builds before the v2 wire subsystem; default 0.
  if (j.contains("wire")) {
    const auto ser = [](const api::Json& b) {
      wire::SerSnapshot w;
      w.encode_ms = b.at("encode_ms").as_number();
      w.decode_ms = b.at("decode_ms").as_number();
      w.encode_frames = static_cast<std::uint64_t>(b.at("encode_frames").as_int());
      w.decode_frames = static_cast<std::uint64_t>(b.at("decode_frames").as_int());
      w.encode_bytes = static_cast<std::uint64_t>(b.at("encode_bytes").as_int());
      w.decode_bytes = static_cast<std::uint64_t>(b.at("decode_bytes").as_int());
      return w;
    };
    s.wire_v1 = ser(j.at("wire").at("v1"));
    s.wire_v2 = ser(j.at("wire").at("v2"));
  }
  return s;
}

MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts) {
  MetricsSnapshot merged;
  for (const MetricsSnapshot& p : parts) {
    merged.submitted += p.submitted;
    merged.completed_ok += p.completed_ok;
    merged.rejected_overload += p.rejected_overload;
    merged.rejected_deadline += p.rejected_deadline;
    merged.rejected_shutdown += p.rejected_shutdown;
    merged.errors += p.errors;
    merged.in_flight += p.in_flight;
    merged.queue_depth += p.queue_depth;
    merged.uptime_ms = std::max(merged.uptime_ms, p.uptime_ms);
    merged.queue_ms.merge(p.queue_ms);
    merged.run_ms.merge(p.run_ms);
    merged.total_ms.merge(p.total_ms);
    for (const auto& [name, n] : p.per_benchmark) {
      bool found = false;
      for (auto& [mname, mn] : merged.per_benchmark) {
        if (mname == name) {
          mn += n;
          found = true;
          break;
        }
      }
      if (!found) merged.per_benchmark.emplace_back(name, n);
    }
    merged.context_hits += p.context_hits;
    merged.context_misses += p.context_misses;
    merged.context_evictions += p.context_evictions;
    merged.memo_hits += p.memo_hits;
    merged.memo_misses += p.memo_misses;
    merged.memo_evictions += p.memo_evictions;
    merged.plan_hits += p.plan_hits;
    merged.plan_misses += p.plan_misses;
    merged.plan_entries += p.plan_entries;
    const auto add = [](wire::SerSnapshot& a, const wire::SerSnapshot& b) {
      a.encode_ms += b.encode_ms;
      a.decode_ms += b.decode_ms;
      a.encode_frames += b.encode_frames;
      a.decode_frames += b.decode_frames;
      a.encode_bytes += b.encode_bytes;
      a.decode_bytes += b.decode_bytes;
    };
    add(merged.wire_v1, p.wire_v1);
    add(merged.wire_v2, p.wire_v2);
  }
  merged.qps = merged.uptime_ms > 0 ? static_cast<double>(merged.completed_ok) /
                                          (merged.uptime_ms / 1e3)
                                    : 0.0;
  return merged;
}

// ------------------------------------------------------------- ServerMetrics

ServerMetrics::ServerMetrics() : start_(std::chrono::steady_clock::now()) {}

void ServerMetrics::on_submitted() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++data_.submitted;
}

void ServerMetrics::on_rejected_overload() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++data_.rejected_overload;
}

void ServerMetrics::on_rejected_shutdown() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++data_.rejected_shutdown;
}

void ServerMetrics::on_rejected_deadline(double queue_ms) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++data_.rejected_deadline;
  data_.queue_ms.record(queue_ms);
}

void ServerMetrics::on_completed(const std::string& benchmark, double queue_ms,
                                 double run_ms, double total_ms) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++data_.completed_ok;
  data_.queue_ms.record(queue_ms);
  data_.run_ms.record(run_ms);
  data_.total_ms.record(total_ms);
  for (auto& [name, n] : data_.per_benchmark) {
    if (name == benchmark) {
      ++n;
      return;
    }
  }
  data_.per_benchmark.emplace_back(benchmark, 1);
}

void ServerMetrics::on_error(double queue_ms, double run_ms, double total_ms) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++data_.errors;
  data_.queue_ms.record(queue_ms);
  data_.run_ms.record(run_ms);
  data_.total_ms.record(total_ms);
}

void ServerMetrics::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  data_ = MetricsSnapshot{};
  start_ = std::chrono::steady_clock::now();
}

MetricsSnapshot ServerMetrics::snapshot(std::size_t queue_depth,
                                        std::int64_t in_flight) const {
  MetricsSnapshot snap;
  std::chrono::steady_clock::time_point start;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    snap = data_;
    start = start_;  // reset() can move the epoch concurrently
  }
  snap.queue_depth = queue_depth;
  snap.in_flight = in_flight;
  const auto elapsed = std::chrono::steady_clock::now() - start;
  snap.uptime_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(elapsed)
          .count();
  snap.qps = snap.uptime_ms > 0
                 ? static_cast<double>(snap.completed_ok) / (snap.uptime_ms / 1e3)
                 : 0.0;
  return snap;
}

}  // namespace defa::serve
