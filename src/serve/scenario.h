#pragma once

/// \file scenario.h
/// Scenario files: a JSON description of a whole load-generation
/// experiment — the weighted traffic mix, the arrival process, the server
/// configuration, and an optional arrival-rate sweep — so a benchmark run
/// is a checked-in artifact instead of a pile of command-line flags.
/// `defa_loadgen --scenario FILE` consumes this format (worked example in
/// docs/SERVING.md; the emitted sweep report is documented in
/// docs/BENCH_SCHEMA.md).
///
/// File shape (strict: unknown keys throw):
///   {
///     "name": "mixed_key",               // optional experiment label
///     "requests": 128,                   // total requests per run
///     "seed": 1,                         // schedule + arrival jitter seed
///     "timeout_ms": 0,                   // per-request deadline, 0 = none
///     "arrival": {                       // closed or open loop
///       "process": "poisson",            // "closed" | "fixed" | "poisson"
///       "rate_qps": 400,                 //   open loop only
///       "concurrency": 4                 //   closed loop only
///     },
///     "server": {                        // all optional
///       "workers": 0, "queue_capacity": 1024,
///       "policy": "locality", "locality_window": 8,
///       "max_contexts": 2, "max_memo": 64, "memoize_results": false,
///       "backend": "fused"               // kernels-registry name
///     },
///     "sweep": {                         // optional: --sweep runs these
///       "rates_qps": [100, 200, 400],    //   open-loop points
///       "concurrency": [1, 4, 16],       //   closed-loop points
///       "policies": ["fifo", "locality"] // default: both
///     },                                 // >= 1 of rates_qps/concurrency
///     "scenarios": [                     // >= 1 weighted mix entries
///       {"name": "tiny_defa", "weight": 4, "priority": "normal",
///        "request": {"preset": "tiny", "outputs": ["functional"]}}
///     ]
///   }

#include <string>
#include <vector>

#include "serve/loadgen.h"

namespace defa::serve {

/// Load-sweep description.  Every configured open-loop rate and every
/// configured closed-loop concurrency is driven once per policy,
/// producing one latency-vs-load curve per policy over identical request
/// schedules.  At least one of the two axes must be non-empty.
struct SweepSpec {
  std::vector<double> rates_qps;   ///< open-loop points
  std::vector<int> concurrencies;  ///< closed-loop points ("concurrency" key)
  std::vector<SchedulePolicy> policies;  ///< default {kFifo, kLocality}
};

/// A parsed scenario file: the base LoadGenOptions (single-run settings)
/// plus the optional sweep block.
struct ScenarioFile {
  std::string name;
  LoadGenOptions base;
  bool has_sweep = false;
  SweepSpec sweep;
};

/// Strict parse of the scenario-file format above.  Throws
/// defa::CheckError on unknown keys, an empty mix, non-positive or
/// non-finite weights, duplicate scenario names, unknown
/// priority/policy/process names, or malformed embedded requests.
[[nodiscard]] ScenarioFile scenario_file_from_json(const api::Json& j);

/// Read + parse a scenario file from disk.
[[nodiscard]] ScenarioFile load_scenario_file(const std::string& path);

/// One sweep measurement: `run_loadgen` at an open-loop (rate, policy)
/// or closed-loop (concurrency, policy) point.
struct SweepPoint {
  std::string mode = "open";  ///< "open" | "closed"
  double rate_qps = 0;        ///< open points; 0 for closed points
  int concurrency = 0;        ///< closed points; 0 for open points
  SchedulePolicy policy = SchedulePolicy::kFifo;
  LoadReport report;
};

/// A full latency-vs-load sweep (the BENCH_serve_sweep.json artifact).
struct SweepReport {
  std::string name;
  int requests = 0;
  /// Open-loop rate points first (rate-major, policy-minor), then
  /// closed-loop concurrency points (concurrency-major, policy-minor).
  std::vector<SweepPoint> points;

  /// {"bench": "serve_sweep", "curve": [per-point summary rows with
  ///  p50/p95/p99, achieved qps and context-cache hit rate], "points":
  ///  [full LoadReport objects]} — see docs/BENCH_SCHEMA.md.
  [[nodiscard]] api::Json to_json() const;

  /// The curve as CSV (header + one row per rate x policy point, same
  /// columns as the JSON "curve" rows) — the plot-ready sidecar
  /// `defa_loadgen --sweep --out` writes next to the JSON report.
  [[nodiscard]] std::string to_csv() const;
};

/// Run the sweep: every configured arrival rate under every configured
/// policy, identical request schedule per (rate, policy) pair so the
/// policies are directly comparable.  Requires `file.has_sweep`.
[[nodiscard]] SweepReport run_sweep(const ScenarioFile& file);

}  // namespace defa::serve
