#include "serve/wire/session.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "obs/trace.h"
#include "serve/wire/codec.h"

namespace defa::serve::wire {

namespace {

/// Shared state of one v2 session: binary writes serialized under one
/// mutex, plus the pending-response counter the session loop waits on
/// before returning (identical contract to the v1 SessionState).
struct WireState {
  explicit WireState(Connection& c) : conn(&c) {}

  void write(const std::string& bytes) {
    const std::lock_guard<std::mutex> lock(write_mu);
    // A vanished peer makes write_bytes return false; the response is
    // dropped — the peer's choice, not an error (same as v1).
    conn->write_bytes(bytes.data(), bytes.size());
  }

  void add_pending() {
    const std::lock_guard<std::mutex> lock(pending_mu);
    ++pending;
  }
  void done_pending() {
    const std::lock_guard<std::mutex> lock(pending_mu);
    if (--pending == 0) pending_cv.notify_all();
  }
  void wait_idle() {
    std::unique_lock<std::mutex> lock(pending_mu);
    pending_cv.wait(lock, [this] { return pending == 0; });
  }

  Connection* conn;
  std::mutex write_mu;
  std::mutex pending_mu;
  std::condition_variable pending_cv;
  int pending = 0;
};

void handle_eval(const DecodedRequest& req, const api::Json& params,
                 Server& server, const std::shared_ptr<WireState>& state) {
  ServeRequest sr = eval_request_from_params(params);
  sr.trace_id = req.trace_id;
  state->add_pending();
  const std::string id = req.id;
  const std::uint64_t trace_id = req.trace_id;
  server.submit_async(std::move(sr),
                      [id, trace_id, state](const ServeResponse& resp) {
                        state->write(encode_eval_response(id, resp, trace_id));
                        state->done_pending();
                      });
}

// ----------------------------------------------------- streaming eval_batch

/// One streamed eval_batch in flight.  Invariants (under `mu`):
///   * `slots[i]` holds item i's response between completion and flush;
///     at most `window` slots are ever occupied.
///   * items are submitted in order; `next_submit` never runs more than
///     `window` items ahead of `next_flush`, so when the first chunk is
///     flushed at most window + 1 items have been admitted — a large
///     batch's first response leaves while the tail has not even been
///     submitted.
///   * exactly one thread drives flushing/submission at a time
///     (`driving`); chunk frames therefore leave in strict index order.
struct StreamBatch {
  std::string id;
  std::uint64_t trace_id = 0;
  std::shared_ptr<WireState> session;
  Server* server = nullptr;
  std::size_t window = 1;

  std::vector<std::optional<ServeRequest>> requests;  // consumed on submit
  std::vector<std::optional<ServeResponse>> slots;
  std::size_t next_flush = 0;
  std::size_t next_submit = 0;
  std::mutex mu;
  bool driving = false;
};

void pump(const std::shared_ptr<StreamBatch>& b);

void store_result(const std::shared_ptr<StreamBatch>& b, std::size_t i,
                  ServeResponse resp) {
  {
    const std::lock_guard<std::mutex> lock(b->mu);
    b->slots[i] = std::move(resp);
  }
  pump(b);
}

/// Drain loop: flush every ready in-order chunk, then top the submission
/// window back up; repeat until neither makes progress.  Writes and
/// submit_async happen outside `mu` — a fast engine (or a scheduler
/// rejection) can invoke the completion callback inline on this very
/// thread, which would self-deadlock under the lock.  The `driving` flag
/// makes such re-entrant calls store-and-return, and clearing it under
/// the same lock hold that found no work closes the lost-wakeup window.
void pump(const std::shared_ptr<StreamBatch>& b) {
  const std::size_t total = b->slots.size();
  std::unique_lock<std::mutex> lock(b->mu);
  if (b->driving) return;
  b->driving = true;
  while (true) {
    std::vector<std::pair<std::size_t, ServeResponse>> flush;
    while (b->next_flush < total && b->slots[b->next_flush].has_value()) {
      flush.emplace_back(b->next_flush, std::move(*b->slots[b->next_flush]));
      b->slots[b->next_flush].reset();
      ++b->next_flush;
    }
    std::vector<std::size_t> submit;
    while (b->next_submit < total &&
           b->next_submit < b->next_flush + b->window) {
      const std::size_t i = b->next_submit++;
      // Items that failed validation were answered at parse time (their
      // slot is already filled) and are never submitted.
      if (b->requests[i].has_value()) submit.push_back(i);
    }
    const bool done = b->next_flush == total;
    if (flush.empty() && submit.empty() && !done) {
      b->driving = false;
      return;
    }
    lock.unlock();
    for (auto& [index, resp] : flush) {
      b->session->write(encode_batch_chunk(
          b->id, static_cast<std::uint32_t>(index), resp, b->trace_id));
    }
    if (done) {
      b->session->write(
          encode_batch_end(b->id, static_cast<std::uint32_t>(total)));
      b->session->done_pending();
      return;
    }
    for (const std::size_t i : submit) {
      ServeRequest req = std::move(*b->requests[i]);
      b->requests[i].reset();
      b->server->submit_async(std::move(req), [b, i](const ServeResponse& resp) {
        store_result(b, i, resp);
      });
    }
    lock.lock();
  }
}

void handle_eval_batch(const DecodedRequest& req, const api::Json& params,
                       Server& server, const ProtocolOptions& options,
                       const std::shared_ptr<WireState>& state) {
  DEFA_CHECK(params.is_object(), "protocol: eval_batch params must be an object");
  for (const auto& [key, value] : params.members()) {
    DEFA_CHECK(key == "requests" || key == "priority" || key == "timeout_ms",
               "protocol: unknown eval_batch params key '" + key + "'");
  }
  Priority batch_priority = Priority::kNormal;
  double batch_timeout = 0;
  if (const api::Json* p = params.find("priority")) {
    const std::optional<Priority> pri = priority_from_name(p->as_string());
    DEFA_CHECK(pri.has_value(), "protocol: unknown priority '" + p->as_string() + "'");
    batch_priority = *pri;
  }
  if (const api::Json* t = params.find("timeout_ms")) batch_timeout = t->as_number();
  const api::Json& reqs = params.at("requests");
  DEFA_CHECK(reqs.is_array() && reqs.size() > 0,
             "protocol: 'requests' must be a non-empty array");

  auto batch = std::make_shared<StreamBatch>();
  batch->id = req.id;
  batch->trace_id = req.trace_id;
  batch->session = state;
  batch->server = &server;
  batch->window = options.stream_window < 1 ? 1 : options.stream_window;
  batch->requests.resize(reqs.size());
  batch->slots.resize(reqs.size());

  // Parse every item up front (items are small control JSON).  Invalid
  // items become ready error slots — they flush through the same in-order
  // stream, so item k's chunk is the k-th on the wire either way.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const api::Json& item = reqs.at(i);
    try {
      ServeRequest r = eval_request_from_params(item);
      r.trace_id = req.trace_id;
      if (!(item.is_object() && item.contains("priority"))) {
        r.priority = batch_priority;
      }
      if (!(item.is_object() && item.contains("timeout_ms"))) {
        r.timeout_ms = batch_timeout;
      }
      batch->requests[i] = std::move(r);
    } catch (const std::exception& e) {
      ServeResponse bad;
      bad.status = ResponseStatus::kBadRequest;
      bad.error_code = error_code_name(ErrorCode::kValidation);
      bad.error = e.what();
      batch->slots[i] = std::move(bad);
      batch->requests[i].reset();
    }
  }
  state->add_pending();
  pump(batch);
}

}  // namespace

void run_wire_session(Connection& conn, Server& server,
                      const ProtocolOptions& options, SessionResult& out) {
  out.wire_version = kWireVersion;
  auto state = std::make_shared<WireState>(conn);

  std::string payload;
  char header_buf[kHeaderBytes];
  bool keep_going = true;
   while (keep_going && conn.read_exact(header_buf, kHeaderBytes)) {    FrameHeader header;
    try {
      header = decode_header(header_buf, kHeaderBytes);
    } catch (const DecodeError& e) {
      // Bad magic or unknown type: the byte stream is desynced and frame
      // boundaries are lost — answer once, then close the session.
      ++out.bad_frames;
      state->write(encode_error("", ErrorCode::kParse, e.what()));
      break;
    }
    if (header.payload_len > options.max_frame_bytes) {      // Length-prefixed framing keeps the stream in sync: skip exactly the
      // declared payload and answer with the same typed `oversized` error
      // v1 gives, leaving the session alive.
      ++out.bad_frames;
      std::size_t to_skip = header.payload_len;
      char sink[4096];
      bool ok = true;
      while (ok && to_skip > 0) {
        const std::size_t n = to_skip < sizeof(sink) ? to_skip : sizeof(sink);
        ok = conn.read_exact(sink, n);
        to_skip -= n;
      }
      if (!ok) break;
      state->write(encode_error(
          "", ErrorCode::kOversized,
          "frame of " + std::to_string(header.payload_len) +
              " bytes exceeds the " + std::to_string(options.max_frame_bytes) +
              "-byte limit"));
      continue;
    }
    payload.resize(header.payload_len);
    if (header.payload_len > 0 &&
        !conn.read_exact(payload.data(), header.payload_len)) {
      break;  // EOF mid-frame
    }

    DecodedRequest req;
    try {
      req = decode_request(header, payload.data(), payload.size());
    } catch (const DecodeError& e) {
      // Framing is intact (the length prefix was honored), so the session
      // survives a malformed payload — but without a decoded id the error
      // is unattributable, mirroring v1's oversized/parse answers.
      ++out.bad_frames;
      const ErrorCode code = e.kind() == DecodeError::Kind::kBadValue
                                 ? ErrorCode::kValidation
                                 : ErrorCode::kParse;
      state->write(encode_error("", code, e.what()));
      continue;
    }
    if (req.trace_id != 0 && !obs::Tracer::instance().enabled()) {
      req.trace_id = 0;  // tracing is opt-in per process, not client-forced
    }

    try {
      api::Json params;
      if (!req.params_text.empty()) params = api::Json::parse(req.params_text);

      if (req.method == "eval") {
        handle_eval(req, params, server, state);
      } else if (req.method == "eval_batch") {
        handle_eval_batch(req, params, server, options, state);
      } else if (req.method == "hello") {
        ++out.bad_frames;
        state->write(encode_error(req.id, ErrorCode::kValidation,
                                  "hello: session already negotiated"));
      } else if (req.method == "drain") {
        server.drain();  // stop admitting, finish in-flight
        api::Json result = api::Json::object();
        result["drained"] = true;
        result["metrics"] = server.metrics().to_json();
        state->write(encode_admin_ok(req.id, result));
        out.drained = true;
        if (options.on_drain) options.on_drain();
        keep_going = false;
      } else {
        bool known = true;
        const api::Json result =
            dispatch_admin_method(req.method, params, server, known);
        if (known) {
          state->write(encode_admin_ok(req.id, result));
        } else {
          ++out.bad_frames;
          state->write(encode_error(
              req.id, ErrorCode::kUnknownMethod,
              "unknown method '" + req.method + "'"));
        }
      }
    } catch (const std::exception& e) {
      ++out.bad_frames;
      state->write(encode_error(req.id, ErrorCode::kValidation, e.what()));
    }
  }
  // EOF or drain with evals still in flight: wait for their callbacks so
  // `state`'s writes are done before the caller tears the connection down.
  state->wait_idle();
  if (out.drained) conn.shutdown();
}

}  // namespace defa::serve::wire
