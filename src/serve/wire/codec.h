#pragma once

/// \file wire/codec.h
/// Protocol v2 frame codecs: the struct <-> bytes layer over
/// `wire::format.h`.  Result payloads (`api::EvalResult` and its nested
/// stats rows) are encoded as little-endian POD — strings as u32 length +
/// bytes, doubles as raw IEEE bit patterns — so a result round-trips
/// bit-exactly with no intermediate JSON text.  Small control payloads
/// (request params, admin results) ride as UTF-8 JSON sections: they are
/// a few hundred bytes of configuration, and reusing the strict v1
/// parsers keeps one validation surface for both protocol versions.
///
/// Every encode_*/decode_* call times itself into `wire::SerStats`
/// (version 2 bucket) and, when the payload carries a trace id and the
/// process tracer is enabled, records a `wire_encode`/`wire_decode` span
/// (docs/OBSERVABILITY.md) — the instrumentation BENCH_serve.json's
/// serialization-share block is built from.

#include <cstdint>
#include <optional>
#include <string>

#include "serve/protocol.h"
#include "serve/wire/format.h"

namespace defa::serve::wire {

// -------------------------------------------------------- error code numbers

/// Stable u16 wire numbering of the protocol error codes (kError
/// sections).  Append-only: renumbering would break cross-version peers.
[[nodiscard]] std::uint16_t error_code_to_wire(ErrorCode c) noexcept;
/// nullopt on an unknown number (a newer peer's code).
[[nodiscard]] std::optional<ErrorCode> error_code_from_wire(std::uint16_t v) noexcept;

// ------------------------------------------------------- EvalResult sections

/// Append the binary EvalResult layout to `w` (inside an open section).
void encode_eval_result(Writer& w, const api::EvalResult& r);
/// Bounds-checked inverse; throws DecodeError.
[[nodiscard]] api::EvalResult decode_eval_result(Reader& r);

// ------------------------------------------------------------ request frames

struct DecodedRequest {
  std::string id;
  std::string method;
  /// UTF-8 JSON params text; empty = no params section.
  std::string params_text;
  std::uint64_t trace_id = 0;
};

/// One client -> server call frame.  `params_text` empty omits the
/// section.  Returns the complete frame (header + payload).
[[nodiscard]] std::string encode_request(const std::string& id,
                                         const std::string& method,
                                         const std::string& params_text,
                                         std::uint64_t trace_id = 0);

/// Server-side inverse; throws DecodeError on anything malformed.
[[nodiscard]] DecodedRequest decode_request(const FrameHeader& h,
                                            const char* payload, std::size_t len);

// ----------------------------------------------------------- response frames

/// One decoded server -> client frame of any response type.
struct DecodedResponse {
  FrameType type = FrameType::kResponse;
  std::string id;
  bool ok = false;
  /// Admin result JSON text (ok responses carrying a kJson section).
  std::string json_text;
  /// Eval-path payload: set for ok responses carrying kEvalResult and for
  /// every error (status/error_code/error/queue_ms/total_ms filled).
  bool has_eval = false;
  ServeResponse eval;
  std::uint32_t item_index = 0;   ///< kBatchChunk: which request this answers
  std::uint32_t batch_total = 0;  ///< kBatchEnd: total item count
};

/// Eval response: ok -> kTiming + binary kEvalResult; else a kError
/// section carrying the mapped code, message and queue/total timings.
[[nodiscard]] std::string encode_eval_response(const std::string& id,
                                               const ServeResponse& r,
                                               std::uint64_t trace_id = 0);
/// Admin ok response: the result dumped as one kJson section.
[[nodiscard]] std::string encode_admin_ok(const std::string& id,
                                          const api::Json& result);
/// Protocol-level error response (parse/validation/oversized/...).
[[nodiscard]] std::string encode_error(const std::string& id, ErrorCode code,
                                       const std::string& message,
                                       double queue_ms = 0, double total_ms = 0);
/// One streamed eval_batch item (strictly increasing `index` on the wire).
[[nodiscard]] std::string encode_batch_chunk(const std::string& id,
                                             std::uint32_t index,
                                             const ServeResponse& r,
                                             std::uint64_t trace_id = 0);
/// Terminates a streamed eval_batch response.
[[nodiscard]] std::string encode_batch_end(const std::string& id,
                                           std::uint32_t total);

/// Client-side inverse of all of the above; throws DecodeError.
[[nodiscard]] DecodedResponse decode_response(const FrameHeader& h,
                                              const char* payload, std::size_t len,
                                              std::uint64_t trace_id = 0);

}  // namespace defa::serve::wire
