#include "serve/wire/codec.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "obs/trace.h"
#include "serve/wire/stats.h"

namespace defa::serve::wire {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             Clock::now() - t0)
      .count();
}

/// Caps on decoded element counts: well below any real payload, far below
/// anything that could make an adversarial frame allocate out of bounds
/// (each element also consumes payload bytes, so Reader's bounds checks
/// are the hard stop — this just fails fast with a clearer error).
constexpr std::uint32_t kMaxRows = 1u << 20;

void check_rows(std::uint32_t n, const char* what) {
  if (n > kMaxRows) {
    throw DecodeError(DecodeError::Kind::kLimit,
                      std::string("wire: implausible ") + what + " count " +
                          std::to_string(n));
  }
}

void record_wire_span(const char* name, std::uint64_t trace_id, double ms,
                      std::size_t bytes) {
#if DEFA_TRACE
  if (trace_id != 0 && obs::Tracer::instance().enabled()) {
    const std::int64_t dur_us = static_cast<std::int64_t>(ms * 1e3);
    obs::record_span(name, "wire", obs::now_us() - dur_us, dur_us, trace_id,
                     {{"bytes", std::to_string(bytes)}, {"wire", "v2"}});
  }
#else
  (void)name;
  (void)trace_id;
  (void)ms;
  (void)bytes;
#endif
}

// ---------------------------------------------------------- EvalResult layout

void encode_functional(Writer& w, const api::FunctionalStats& f) {
  w.str(f.config_label);
  w.f64(f.point_reduction);
  w.f64(f.pixel_reduction);
  w.f64(f.flop_reduction);
  w.f64(f.final_nrmse);
  w.f64(f.dense_gflops);
  w.f64(f.actual_gflops);
  w.u32(static_cast<std::uint32_t>(f.layers.size()));
  for (const api::LayerFunctionalRow& row : f.layers) {
    w.i32(row.layer);
    w.f64(row.pap_pruned_frac);
    w.f64(row.fwp_mask_out_frac);
    w.f64(row.pixels_pruned_frac);
    w.f64(row.clamped_frac);
    w.f64(row.flops_saved_frac);
    w.f64(row.out_nrmse);
    w.f64(row.total_points);
    w.f64(row.kept_points);
    w.f64(row.total_pixels);
    w.f64(row.kept_pixels);
  }
}

api::FunctionalStats decode_functional(Reader& r) {
  api::FunctionalStats f;
  f.config_label = r.str();
  f.point_reduction = r.f64();
  f.pixel_reduction = r.f64();
  f.flop_reduction = r.f64();
  f.final_nrmse = r.f64();
  f.dense_gflops = r.f64();
  f.actual_gflops = r.f64();
  const std::uint32_t n = r.u32();
  check_rows(n, "functional layer");
  f.layers.resize(n);
  for (api::LayerFunctionalRow& row : f.layers) {
    row.layer = r.i32();
    row.pap_pruned_frac = r.f64();
    row.fwp_mask_out_frac = r.f64();
    row.pixels_pruned_frac = r.f64();
    row.clamped_frac = r.f64();
    row.flops_saved_frac = r.f64();
    row.out_nrmse = r.f64();
    row.total_points = r.f64();
    row.kept_points = r.f64();
    row.total_pixels = r.f64();
    row.kept_pixels = r.f64();
  }
  return f;
}

void encode_phases(Writer& w, const std::vector<api::PhaseRow>& phases) {
  w.u32(static_cast<std::uint32_t>(phases.size()));
  for (const api::PhaseRow& p : phases) {
    w.str(p.name);
    w.f64(p.cycles);
    w.f64(p.stall_cycles);
    w.f64(p.macs);
    w.f64(p.sram_read_bytes);
    w.f64(p.sram_write_bytes);
    w.f64(p.dram_read_bytes);
    w.f64(p.dram_write_bytes);
  }
}

std::vector<api::PhaseRow> decode_phases(Reader& r) {
  const std::uint32_t n = r.u32();
  check_rows(n, "phase row");
  std::vector<api::PhaseRow> phases(n);
  for (api::PhaseRow& p : phases) {
    p.name = r.str();
    p.cycles = r.f64();
    p.stall_cycles = r.f64();
    p.macs = r.f64();
    p.sram_read_bytes = r.f64();
    p.sram_write_bytes = r.f64();
    p.dram_read_bytes = r.f64();
    p.dram_write_bytes = r.f64();
  }
  return phases;
}

void encode_latency(Writer& w, const api::LatencyStats& l) {
  w.f64(l.wall_cycles);
  w.f64(l.time_ms);
  w.f64(l.effective_gops);
  w.f64(l.msgs_groups);
  w.f64(l.msgs_conflict_groups);
  w.f64(l.msgs_points_per_cycle);
  w.i32(l.steady_state_layer);
  encode_phases(w, l.steady_phases);
  encode_phases(w, l.total_phases);
}

api::LatencyStats decode_latency(Reader& r) {
  api::LatencyStats l;
  l.wall_cycles = r.f64();
  l.time_ms = r.f64();
  l.effective_gops = r.f64();
  l.msgs_groups = r.f64();
  l.msgs_conflict_groups = r.f64();
  l.msgs_points_per_cycle = r.f64();
  l.steady_state_layer = r.i32();
  l.steady_phases = decode_phases(r);
  l.total_phases = decode_phases(r);
  return l;
}

void encode_energy(Writer& w, const api::EnergyStats& e) {
  w.f64(e.pe_pj);
  w.f64(e.softmax_pj);
  w.f64(e.sram_pj);
  w.f64(e.other_logic_pj);
  w.f64(e.dram_pj);
  w.f64(e.area_sram_mm2);
  w.f64(e.area_pe_softmax_mm2);
  w.f64(e.area_others_mm2);
  w.f64(e.chip_power_mw);
  w.f64(e.system_power_mw);
  w.f64(e.gops_per_w);
  w.u32(static_cast<std::uint32_t>(e.sram_macros.size()));
  for (const api::SramMacroRow& m : e.sram_macros) {
    w.str(m.name);
    w.f64(m.capacity_bytes);
    w.f64(m.count);
    w.f64(m.word_bytes);
  }
}

api::EnergyStats decode_energy(Reader& r) {
  api::EnergyStats e;
  e.pe_pj = r.f64();
  e.softmax_pj = r.f64();
  e.sram_pj = r.f64();
  e.other_logic_pj = r.f64();
  e.dram_pj = r.f64();
  e.area_sram_mm2 = r.f64();
  e.area_pe_softmax_mm2 = r.f64();
  e.area_others_mm2 = r.f64();
  e.chip_power_mw = r.f64();
  e.system_power_mw = r.f64();
  e.gops_per_w = r.f64();
  const std::uint32_t n = r.u32();
  check_rows(n, "sram macro");
  e.sram_macros.resize(n);
  for (api::SramMacroRow& m : e.sram_macros) {
    m.name = r.str();
    m.capacity_bytes = r.f64();
    m.count = r.f64();
    m.word_bytes = r.f64();
  }
  return e;
}

void encode_accuracy(Writer& w, const api::AccuracyStats& a) {
  w.f64(a.baseline_ap);
  w.f64(a.proxy_ap);
  w.u32(static_cast<std::uint32_t>(a.drops.size()));
  for (const api::TechniqueDrop& d : a.drops) {
    w.str(d.technique);
    w.f64(d.measured_error);
    w.f64(d.ap_drop);
  }
}

api::AccuracyStats decode_accuracy(Reader& r) {
  api::AccuracyStats a;
  a.baseline_ap = r.f64();
  a.proxy_ap = r.f64();
  const std::uint32_t n = r.u32();
  check_rows(n, "technique drop");
  a.drops.resize(n);
  for (api::TechniqueDrop& d : a.drops) {
    d.technique = r.str();
    d.measured_error = r.f64();
    d.ap_drop = r.f64();
  }
  return a;
}

// ----------------------------------------------------------- shared sections

void write_timing(Writer& w, const ServeResponse& r) {
  w.begin_section(SectionType::kTiming);
  w.f64(r.queue_ms);
  w.f64(r.run_ms);
  w.f64(r.total_ms);
  w.i64(r.dispatch_index);
  w.end_section();
}

void read_timing(Reader& body, ServeResponse& r) {
  r.queue_ms = body.f64();
  r.run_ms = body.f64();
  r.total_ms = body.f64();
  r.dispatch_index = body.i64();
}

void write_error_section(Writer& w, ErrorCode code, const std::string& message,
                         double queue_ms, double total_ms) {
  w.begin_section(SectionType::kError);
  w.u16(error_code_to_wire(code));
  w.u16(0);
  w.f64(queue_ms);
  w.f64(total_ms);
  w.str(message);
  w.end_section();
}

void read_error_section(Reader& body, ServeResponse& r) {
  const std::uint16_t raw = body.u16();
  (void)body.u16();
  r.queue_ms = body.f64();
  r.total_ms = body.f64();
  const std::string message = body.str();
  const std::optional<ErrorCode> code = error_code_from_wire(raw);
  // An unknown number (a newer peer) degrades to internal, mirroring the
  // v1 JSON decoder's treatment of unknown code names.
  r.status = status_for(code.value_or(ErrorCode::kInternal));
  r.error_code = error_code_name(code.value_or(ErrorCode::kInternal));
  r.error = message;
}

/// Eval-path payload sections shared by kResponse and kBatchChunk frames.
void write_eval_sections(Writer& w, const ServeResponse& r) {
  if (r.status == ResponseStatus::kOk) {
    DEFA_CHECK(r.result.has_value(), "wire: ok response without a result");
    write_timing(w, r);
    w.begin_section(SectionType::kEvalResult);
    encode_eval_result(w, *r.result);
    w.end_section();
  } else {
    write_error_section(w, error_code_for(r.status), r.error, r.queue_ms,
                        r.total_ms);
  }
}

}  // namespace

// -------------------------------------------------------- error code numbers

std::uint16_t error_code_to_wire(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::kParse: return 1;
    case ErrorCode::kValidation: return 2;
    case ErrorCode::kVersion: return 3;
    case ErrorCode::kUnknownMethod: return 4;
    case ErrorCode::kOversized: return 5;
    case ErrorCode::kOverload: return 6;
    case ErrorCode::kDeadline: return 7;
    case ErrorCode::kShutdown: return 8;
    case ErrorCode::kInternal: return 9;
    case ErrorCode::kTransport: return 10;
  }
  return 9;
}

std::optional<ErrorCode> error_code_from_wire(std::uint16_t v) noexcept {
  switch (v) {
    case 1: return ErrorCode::kParse;
    case 2: return ErrorCode::kValidation;
    case 3: return ErrorCode::kVersion;
    case 4: return ErrorCode::kUnknownMethod;
    case 5: return ErrorCode::kOversized;
    case 6: return ErrorCode::kOverload;
    case 7: return ErrorCode::kDeadline;
    case 8: return ErrorCode::kShutdown;
    case 9: return ErrorCode::kInternal;
    case 10: return ErrorCode::kTransport;
    default: return std::nullopt;
  }
}

// ------------------------------------------------------- EvalResult sections

void encode_eval_result(Writer& w, const api::EvalResult& r) {
  w.str(r.benchmark);
  w.str(r.workload_key);
  w.u32(r.outputs);
  w.u8(r.functional.has_value() ? 1 : 0);
  if (r.functional) encode_functional(w, *r.functional);
  w.u8(r.latency.has_value() ? 1 : 0);
  if (r.latency) encode_latency(w, *r.latency);
  w.u8(r.energy.has_value() ? 1 : 0);
  if (r.energy) encode_energy(w, *r.energy);
  w.u8(r.accuracy.has_value() ? 1 : 0);
  if (r.accuracy) encode_accuracy(w, *r.accuracy);
}

api::EvalResult decode_eval_result(Reader& r) {
  api::EvalResult out;
  out.benchmark = r.str();
  out.workload_key = r.str();
  out.outputs = r.u32();
  const auto presence = [&r](const char* what) {
    const std::uint8_t p = r.u8();
    if (p > 1) {
      throw DecodeError(DecodeError::Kind::kBadValue,
                        std::string("wire: bad ") + what + " presence byte");
    }
    return p == 1;
  };
  if (presence("functional")) out.functional = decode_functional(r);
  if (presence("latency")) out.latency = decode_latency(r);
  if (presence("energy")) out.energy = decode_energy(r);
  if (presence("accuracy")) out.accuracy = decode_accuracy(r);
  return out;
}

// ------------------------------------------------------------ request frames

std::string encode_request(const std::string& id, const std::string& method,
                           const std::string& params_text,
                           std::uint64_t trace_id) {
  const Clock::time_point t0 = Clock::now();
  Writer w;
  w.begin_frame(FrameType::kRequest);
  w.section(SectionType::kId, id);
  w.section(SectionType::kMethod, method);
  if (!params_text.empty()) w.section(SectionType::kJson, params_text);
  if (trace_id != 0) {
    w.begin_section(SectionType::kTraceId);
    w.u64(trace_id);
    w.end_section();
  }
  w.end_frame();
  std::string bytes = w.take();
  const double ms = ms_since(t0);
  SerStats::instance().add_encode(kWireVersion, ms, bytes.size());
  record_wire_span("wire_encode", trace_id, ms, bytes.size());
  return bytes;
}

DecodedRequest decode_request(const FrameHeader& h, const char* payload,
                              std::size_t len) {
  const Clock::time_point t0 = Clock::now();
  if (h.type != FrameType::kRequest) {
    throw DecodeError(DecodeError::Kind::kCorrupt,
                      "wire: expected a request frame");
  }
  DecodedRequest out;
  bool has_method = false;
  Reader r(payload, len);
  while (!r.done()) {
    Reader::Section s = r.section();
    switch (s.type) {
      case SectionType::kId:
        out.id = s.body.rest();
        break;
      case SectionType::kMethod:
        out.method = s.body.rest();
        has_method = true;
        break;
      case SectionType::kJson:
        out.params_text = s.body.rest();
        break;
      case SectionType::kTraceId:
        out.trace_id = s.body.u64();
        break;
      default:
        // Unknown sections are skipped (append-only forward compat).
        break;
    }
  }
  if (!has_method) {
    throw DecodeError(DecodeError::Kind::kBadValue,
                      "wire: request frame without a method section");
  }
  const double ms = ms_since(t0);
  SerStats::instance().add_decode(kWireVersion, ms, kHeaderBytes + len);
  record_wire_span("wire_decode", out.trace_id, ms, kHeaderBytes + len);
  return out;
}

// ----------------------------------------------------------- response frames

std::string encode_eval_response(const std::string& id, const ServeResponse& r,
                                 std::uint64_t trace_id) {
  const Clock::time_point t0 = Clock::now();
  Writer w;
  w.begin_frame(FrameType::kResponse,
                r.status == ResponseStatus::kOk ? kFlagOk : 0);
  w.section(SectionType::kId, id);
  write_eval_sections(w, r);
  w.end_frame();
  std::string bytes = w.take();
  const double ms = ms_since(t0);
  SerStats::instance().add_encode(kWireVersion, ms, bytes.size());
  record_wire_span("wire_encode", trace_id, ms, bytes.size());
  return bytes;
}

std::string encode_admin_ok(const std::string& id, const api::Json& result) {
  const Clock::time_point t0 = Clock::now();
  Writer w;
  w.begin_frame(FrameType::kResponse, kFlagOk);
  w.section(SectionType::kId, id);
  w.section(SectionType::kJson, result.dump());
  w.end_frame();
  std::string bytes = w.take();
  SerStats::instance().add_encode(kWireVersion, ms_since(t0), bytes.size());
  return bytes;
}

std::string encode_error(const std::string& id, ErrorCode code,
                         const std::string& message, double queue_ms,
                         double total_ms) {
  const Clock::time_point t0 = Clock::now();
  Writer w;
  w.begin_frame(FrameType::kResponse, 0);
  w.section(SectionType::kId, id);
  write_error_section(w, code, message, queue_ms, total_ms);
  w.end_frame();
  std::string bytes = w.take();
  SerStats::instance().add_encode(kWireVersion, ms_since(t0), bytes.size());
  return bytes;
}

std::string encode_batch_chunk(const std::string& id, std::uint32_t index,
                               const ServeResponse& r, std::uint64_t trace_id) {
  const Clock::time_point t0 = Clock::now();
  Writer w;
  w.begin_frame(FrameType::kBatchChunk,
                r.status == ResponseStatus::kOk ? kFlagOk : 0);
  w.section(SectionType::kId, id);
  w.begin_section(SectionType::kBatchItem);
  w.u32(index);
  w.u8(r.status == ResponseStatus::kOk ? 1 : 0);
  w.end_section();
  write_eval_sections(w, r);
  w.end_frame();
  std::string bytes = w.take();
  const double ms = ms_since(t0);
  SerStats::instance().add_encode(kWireVersion, ms, bytes.size());
  record_wire_span("wire_encode", trace_id, ms, bytes.size());
  return bytes;
}

std::string encode_batch_end(const std::string& id, std::uint32_t total) {
  const Clock::time_point t0 = Clock::now();
  Writer w;
  w.begin_frame(FrameType::kBatchEnd, kFlagOk);
  w.section(SectionType::kId, id);
  w.begin_section(SectionType::kBatchMeta);
  w.u32(total);
  w.end_section();
  w.end_frame();
  std::string bytes = w.take();
  SerStats::instance().add_encode(kWireVersion, ms_since(t0), bytes.size());
  return bytes;
}

DecodedResponse decode_response(const FrameHeader& h, const char* payload,
                                std::size_t len, std::uint64_t trace_id) {
  const Clock::time_point t0 = Clock::now();
  if (h.type == FrameType::kRequest) {
    throw DecodeError(DecodeError::Kind::kCorrupt,
                      "wire: got a request frame where a response was expected");
  }
  DecodedResponse out;
  out.type = h.type;
  out.ok = (h.flags & kFlagOk) != 0;
  bool saw_result = false;
  Reader r(payload, len);
  while (!r.done()) {
    Reader::Section s = r.section();
    switch (s.type) {
      case SectionType::kId:
        out.id = s.body.rest();
        break;
      case SectionType::kJson:
        out.json_text = s.body.rest();
        break;
      case SectionType::kTiming:
        read_timing(s.body, out.eval);
        out.has_eval = true;
        break;
      case SectionType::kEvalResult:
        out.eval.result = decode_eval_result(s.body);
        out.eval.status = ResponseStatus::kOk;
        out.has_eval = true;
        saw_result = true;
        break;
      case SectionType::kError:
        read_error_section(s.body, out.eval);
        out.has_eval = true;
        break;
      case SectionType::kBatchItem:
        out.item_index = s.body.u32();
        (void)s.body.u8();  // ok flag; authoritative state is the sections
        break;
      case SectionType::kBatchMeta:
        out.batch_total = s.body.u32();
        break;
      default:
        break;  // append-only forward compat
    }
  }
  if (out.ok && out.type != FrameType::kBatchEnd && !saw_result &&
      out.json_text.empty()) {
    throw DecodeError(DecodeError::Kind::kBadValue,
                      "wire: ok response without a result or json section");
  }
  if (!out.ok && out.type != FrameType::kBatchEnd && !out.has_eval) {
    throw DecodeError(DecodeError::Kind::kBadValue,
                      "wire: error response without an error section");
  }
  const double ms = ms_since(t0);
  SerStats::instance().add_decode(kWireVersion, ms, kHeaderBytes + len);
  record_wire_span("wire_decode", trace_id, ms, kHeaderBytes + len);
  return out;
}

}  // namespace defa::serve::wire
