#pragma once

/// \file wire/stats.h
/// Process-global serialization accounting: every wire encode/decode —
/// the v1 JSON paths (Json::dump / Json::parse + struct conversion) and
/// the v2 binary codec alike — adds its duration and byte count to a
/// per-version bucket here.  `Server::metrics()` exports the buckets in
/// its snapshot and `run_remote_loadgen` diffs client- and server-side
/// snapshots around a run, which is how BENCH_serve.json reports the
/// serialization share of end-to-end latency for v1 vs v2
/// (docs/BENCH_SCHEMA.md#serialization).
///
/// Counters are relaxed atomics: the hot path is two fetch_adds per
/// frame, and snapshots only need per-counter (not cross-counter)
/// consistency.

#include <atomic>
#include <cstdint>

namespace defa::serve::wire {

/// Frozen per-version serialization counters (one direction pair).
struct SerSnapshot {
  double encode_ms = 0;
  double decode_ms = 0;
  std::uint64_t encode_frames = 0;
  std::uint64_t decode_frames = 0;
  std::uint64_t encode_bytes = 0;
  std::uint64_t decode_bytes = 0;

  /// Element-wise a - b (for before/after deltas around a load run).
  [[nodiscard]] SerSnapshot minus(const SerSnapshot& other) const;
  /// Total serialization time, both directions.
  [[nodiscard]] double total_ms() const noexcept { return encode_ms + decode_ms; }
};

/// One process-wide instance; buckets indexed by wire version (1 or 2).
class SerStats {
 public:
  static SerStats& instance();

  void add_encode(int version, double ms, std::size_t bytes) noexcept;
  void add_decode(int version, double ms, std::size_t bytes) noexcept;

  [[nodiscard]] SerSnapshot snapshot(int version) const noexcept;

  /// Zero every bucket (Server reconfigure with reset_stats).
  void reset() noexcept;

 private:
  struct Bucket {
    std::atomic<std::uint64_t> encode_ns{0};
    std::atomic<std::uint64_t> decode_ns{0};
    std::atomic<std::uint64_t> encode_frames{0};
    std::atomic<std::uint64_t> decode_frames{0};
    std::atomic<std::uint64_t> encode_bytes{0};
    std::atomic<std::uint64_t> decode_bytes{0};
  };
  [[nodiscard]] const Bucket* bucket(int version) const noexcept {
    return version == 1 ? &v1_ : version == 2 ? &v2_ : nullptr;
  }
  [[nodiscard]] Bucket* bucket(int version) noexcept {
    return version == 1 ? &v1_ : version == 2 ? &v2_ : nullptr;
  }

  Bucket v1_;
  Bucket v2_;
};

}  // namespace defa::serve::wire
