#pragma once

/// \file wire/session.h
/// Server side of a negotiated Protocol v2 session: after
/// `run_protocol_session` answers a `hello` that settles on wire
/// version 2, it hands the connection here and the rest of the session is
/// binary frames (wire/format.h).  Semantics mirror v1 — completion-order
/// eval responses from evaluator threads, inline admin methods, typed
/// errors, the same oversized-frame limit — with one addition: eval_batch
/// responses *stream*.  Items are submitted through a bounded in-flight
/// window and each result is flushed as its own kBatchChunk frame in
/// strict item-index order as soon as it (and everything before it)
/// completes, so the client sees the first result while later items are
/// still running and the server never buffers more than
/// `ProtocolOptions::stream_window` results per batch.

#include "serve/protocol.h"

namespace defa::serve::wire {

/// Serve binary frames on `conn` until EOF or `drain`.  `out` is the
/// session result the v1 loop started filling (bad_frames accumulates
/// across the handshake); `wire_version` is set to 2.  Returns after
/// every in-flight response has been written or dropped.
void run_wire_session(Connection& conn, Server& server,
                      const ProtocolOptions& options, SessionResult& out);

}  // namespace defa::serve::wire
