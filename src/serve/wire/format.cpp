#include "serve/wire/format.h"

#include <bit>
#include <cstring>
#include <limits>

#include "common/check.h"

namespace defa::serve::wire {

namespace {

void put_u16(std::string& buf, std::uint16_t v) {
  const char b[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  buf.append(b, 2);
}

void put_u32(std::string& buf, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf.append(b, 4);
}

void put_u64(std::string& buf, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf.append(b, 8);
}

void patch_u32(std::string& buf, std::size_t at, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf[at + static_cast<std::size_t>(i)] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

// --------------------------------------------------------------------- Writer

void Writer::begin_frame(FrameType type, std::uint8_t flags) {
  DEFA_CHECK(!in_frame_, "wire: begin_frame inside an open frame");
  in_frame_ = true;
  frame_start_ = buf_.size();
  put_u32(buf_, kMagic);
  buf_.push_back(static_cast<char>(type));
  buf_.push_back(static_cast<char>(flags));
  put_u16(buf_, 0);  // reserved
  put_u32(buf_, 0);  // payload_len, patched by end_frame
}

void Writer::end_frame() {
  DEFA_CHECK(in_frame_ && !in_section_, "wire: end_frame without an open frame");
  in_frame_ = false;
  const std::size_t payload = buf_.size() - frame_start_ - kHeaderBytes;
  DEFA_CHECK(payload <= std::numeric_limits<std::uint32_t>::max(),
             "wire: frame payload exceeds u32");
  patch_u32(buf_, frame_start_ + 8, static_cast<std::uint32_t>(payload));
}

void Writer::section(SectionType type, const void* data, std::size_t len) {
  DEFA_CHECK(len <= std::numeric_limits<std::uint32_t>::max(),
             "wire: section exceeds u32");
  put_u16(buf_, static_cast<std::uint16_t>(type));
  put_u16(buf_, 0);
  put_u32(buf_, static_cast<std::uint32_t>(len));
  buf_.append(static_cast<const char*>(data), len);
}

void Writer::begin_section(SectionType type) {
  DEFA_CHECK(!in_section_, "wire: begin_section inside an open section");
  in_section_ = true;
  put_u16(buf_, static_cast<std::uint16_t>(type));
  put_u16(buf_, 0);
  section_start_ = buf_.size();
  put_u32(buf_, 0);  // length, patched by end_section
}

void Writer::end_section() {
  DEFA_CHECK(in_section_, "wire: end_section without an open section");
  in_section_ = false;
  const std::size_t len = buf_.size() - section_start_ - 4;
  DEFA_CHECK(len <= std::numeric_limits<std::uint32_t>::max(),
             "wire: section exceeds u32");
  patch_u32(buf_, section_start_, static_cast<std::uint32_t>(len));
}

void Writer::u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
void Writer::u16(std::uint16_t v) { put_u16(buf_, v); }
void Writer::u32(std::uint32_t v) { put_u32(buf_, v); }
void Writer::u64(std::uint64_t v) { put_u64(buf_, v); }

void Writer::f64(double v) { put_u64(buf_, std::bit_cast<std::uint64_t>(v)); }

void Writer::str(const std::string& s) {
  DEFA_CHECK(s.size() <= std::numeric_limits<std::uint32_t>::max(),
             "wire: string exceeds u32");
  put_u32(buf_, static_cast<std::uint32_t>(s.size()));
  buf_.append(s);
}

// --------------------------------------------------------------------- Reader

const char* Reader::need(std::size_t n) {
  if (size_ - pos_ < n) {
    throw DecodeError(DecodeError::Kind::kTruncated,
                      "wire: truncated payload (need " + std::to_string(n) +
                          " bytes, have " + std::to_string(size_ - pos_) + ")");
  }
  const char* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::uint8_t Reader::u8() {
  return static_cast<std::uint8_t>(*need(1));
}

std::uint16_t Reader::u16() {
  const char* p = need(2);
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(p[0]) |
      (static_cast<std::uint16_t>(static_cast<unsigned char>(p[1])) << 8));
}

std::uint32_t Reader::u32() {
  const char* p = need(4);
  return get_u32(p);
}

std::uint64_t Reader::u64() {
  const char* p = need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint32_t len = u32();
  // Length validated against the remaining bytes before allocating: a
  // corrupt 4 GB length must fail with kTruncated, not reserve 4 GB.
  const char* p = need(len);
  return std::string(p, len);
}

std::string Reader::rest() {
  const std::size_t n = size_ - pos_;
  const char* p = need(n);
  return std::string(p, n);
}

Reader::Section Reader::section() {
  const std::uint16_t type = u16();
  (void)u16();  // reserved
  const std::uint32_t len = u32();
  const char* p = need(len);
  return Section{static_cast<SectionType>(type), Reader(p, len)};
}

// --------------------------------------------------------------------- header

FrameHeader decode_header(const char* data, std::size_t size) {
  if (size < kHeaderBytes) {
    throw DecodeError(DecodeError::Kind::kTruncated, "wire: truncated frame header");
  }
  if (get_u32(data) != kMagic) {
    throw DecodeError(DecodeError::Kind::kCorrupt,
                      "wire: bad frame magic (stream desynced)");
  }
  FrameHeader h;
  const auto type = static_cast<std::uint8_t>(data[4]);
  if (type < static_cast<std::uint8_t>(FrameType::kRequest) ||
      type > static_cast<std::uint8_t>(FrameType::kBatchEnd)) {
    throw DecodeError(DecodeError::Kind::kCorrupt,
                      "wire: unknown frame type " + std::to_string(type));
  }
  h.type = static_cast<FrameType>(type);
  h.flags = static_cast<std::uint8_t>(data[5]);
  h.payload_len = get_u32(data + 8);
  return h;
}

void encode_header(std::string& out, const FrameHeader& h) {
  put_u32(out, kMagic);
  out.push_back(static_cast<char>(h.type));
  out.push_back(static_cast<char>(h.flags));
  put_u16(out, 0);
  put_u32(out, h.payload_len);
}

}  // namespace defa::serve::wire
