#include "serve/wire/stats.h"

namespace defa::serve::wire {

SerSnapshot SerSnapshot::minus(const SerSnapshot& other) const {
  SerSnapshot d;
  d.encode_ms = encode_ms - other.encode_ms;
  d.decode_ms = decode_ms - other.decode_ms;
  d.encode_frames = encode_frames - other.encode_frames;
  d.decode_frames = decode_frames - other.decode_frames;
  d.encode_bytes = encode_bytes - other.encode_bytes;
  d.decode_bytes = decode_bytes - other.decode_bytes;
  return d;
}

SerStats& SerStats::instance() {
  static SerStats stats;
  return stats;
}

void SerStats::add_encode(int version, double ms, std::size_t bytes) noexcept {
  Bucket* b = bucket(version);
  if (b == nullptr) return;
  b->encode_ns.fetch_add(static_cast<std::uint64_t>(ms * 1e6), std::memory_order_relaxed);
  b->encode_frames.fetch_add(1, std::memory_order_relaxed);
  b->encode_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void SerStats::add_decode(int version, double ms, std::size_t bytes) noexcept {
  Bucket* b = bucket(version);
  if (b == nullptr) return;
  b->decode_ns.fetch_add(static_cast<std::uint64_t>(ms * 1e6), std::memory_order_relaxed);
  b->decode_frames.fetch_add(1, std::memory_order_relaxed);
  b->decode_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

SerSnapshot SerStats::snapshot(int version) const noexcept {
  SerSnapshot s;
  const Bucket* b = bucket(version);
  if (b == nullptr) return s;
  s.encode_ms = static_cast<double>(b->encode_ns.load(std::memory_order_relaxed)) / 1e6;
  s.decode_ms = static_cast<double>(b->decode_ns.load(std::memory_order_relaxed)) / 1e6;
  s.encode_frames = b->encode_frames.load(std::memory_order_relaxed);
  s.decode_frames = b->decode_frames.load(std::memory_order_relaxed);
  s.encode_bytes = b->encode_bytes.load(std::memory_order_relaxed);
  s.decode_bytes = b->decode_bytes.load(std::memory_order_relaxed);
  return s;
}

void SerStats::reset() noexcept {
  for (Bucket* b : {&v1_, &v2_}) {
    b->encode_ns.store(0, std::memory_order_relaxed);
    b->decode_ns.store(0, std::memory_order_relaxed);
    b->encode_frames.store(0, std::memory_order_relaxed);
    b->decode_frames.store(0, std::memory_order_relaxed);
    b->encode_bytes.store(0, std::memory_order_relaxed);
    b->decode_bytes.store(0, std::memory_order_relaxed);
  }
}

}  // namespace defa::serve::wire
