#pragma once

/// \file wire/format.h
/// Protocol v2 binary frame format (docs/PROTOCOL.md#protocol-v2): the
/// byte-level layer under the negotiated binary wire.  A frame is a fixed
/// 12-byte header followed by `payload_len` bytes of typed sections:
///
///   header:   "DFW2" magic | type u8 | flags u8 | reserved u16 | len u32
///   section:  type u16 | reserved u16 | len u32 | len bytes
///
/// All integers are little-endian; doubles are 8-byte IEEE-754 bit
/// patterns (also little-endian), so a value round-trips bit-exactly
/// without ever being printed as text.  `Writer` appends sections to a
/// reusable byte buffer; `Reader` is a bounds-checked cursor whose every
/// read either succeeds or throws a typed `DecodeError` — a malformed or
/// adversarial frame can never read out of bounds or crash the session.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace defa::serve::wire {

/// The binary protocol version the v2 subsystem speaks (the `hello`
/// handshake negotiates min(client, server) and falls back to 1 = JSON).
inline constexpr int kWireVersion = 2;

/// Frame header magic: the bytes "DFW2" read as a little-endian u32.
inline constexpr std::uint32_t kMagic = 0x32574644u;
inline constexpr std::size_t kHeaderBytes = 12;

enum class FrameType : std::uint8_t {
  kRequest = 1,     ///< client -> server call
  kResponse = 2,    ///< one response frame (eval, admin, or error)
  kBatchChunk = 3,  ///< one streamed eval_batch item (strictly index order)
  kBatchEnd = 4,    ///< terminates a streamed eval_batch response
};

/// Frame flag bits.
inline constexpr std::uint8_t kFlagOk = 0x01;  ///< response carries a result

enum class SectionType : std::uint16_t {
  kId = 1,          ///< correlation id, UTF-8 bytes
  kMethod = 2,      ///< method name, UTF-8 bytes
  kJson = 3,        ///< UTF-8 JSON text (request params / admin results)
  kTraceId = 4,     ///< u64 trace context (docs/OBSERVABILITY.md)
  kEvalResult = 5,  ///< binary api::EvalResult (wire/codec.h layout)
  kError = 6,       ///< u16 code, f64 queue_ms, f64 total_ms, message bytes
  kTiming = 7,      ///< f64 queue_ms, run_ms, total_ms, i64 dispatch_index
  kBatchItem = 8,   ///< u32 item index, u8 ok
  kBatchMeta = 9,   ///< u32 total item count (kBatchEnd frames)
};

struct FrameHeader {
  FrameType type = FrameType::kRequest;
  std::uint8_t flags = 0;
  std::uint32_t payload_len = 0;
};

// ---------------------------------------------------------------- DecodeError

/// Typed decode failure.  `kind` maps onto the protocol error codes: a
/// kTruncated/kCorrupt frame is answered with `parse`, kLimit with
/// `oversized`, kBadValue with `validation` (wire/session.cpp).
class DecodeError : public std::runtime_error {
 public:
  enum class Kind {
    kTruncated,  ///< a read ran past the end of the payload
    kCorrupt,    ///< bad magic / unknown type / malformed structure
    kLimit,      ///< a declared length exceeds the frame or a sanity cap
    kBadValue,   ///< structurally valid but semantically out of range
  };

  DecodeError(Kind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}
  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

// --------------------------------------------------------------------- Writer

/// Appends little-endian primitives and sections to a caller-visible byte
/// buffer.  `begin_frame`/`end_frame` bracket one frame: the header's
/// payload length is back-patched on end_frame, so sections are written
/// straight through with no intermediate buffer.
class Writer {
 public:
  void clear() { buf_.clear(); }
  [[nodiscard]] const std::string& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

  void begin_frame(FrameType type, std::uint8_t flags = 0);
  /// Back-patches the payload length; throws defa::CheckError if the
  /// payload outgrew u32 (no real frame does).
  void end_frame();

  /// One whole section: header + `len` bytes.
  void section(SectionType type, const void* data, std::size_t len);
  void section(SectionType type, const std::string& data) {
    section(type, data.data(), data.size());
  }

  /// Open a section whose body is streamed via the u8/u32/f64/str calls
  /// below; the section length is back-patched on `end_section`.
  void begin_section(SectionType type);
  void end_section();

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  /// u32 byte length + bytes.
  void str(const std::string& s);

 private:
  std::string buf_;
  std::size_t frame_start_ = 0;    ///< offset of the current frame header
  std::size_t section_start_ = 0;  ///< offset of the open section header
  bool in_frame_ = false;
  bool in_section_ = false;
};

// --------------------------------------------------------------------- Reader

/// Bounds-checked cursor over one frame payload (or one section body).
/// Every accessor throws DecodeError{kTruncated} instead of reading past
/// `size`; declared lengths are validated against the remaining bytes
/// before any allocation, so an adversarial length can not trigger a
/// huge reserve.
class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == size_; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  /// u32 byte length + bytes; the length is checked against remaining().
  std::string str();
  /// Every byte from the cursor to the end (section bodies whose whole
  /// content is one string, e.g. kId/kMethod/kJson).
  std::string rest();

  /// Read the next section header; the returned Reader covers exactly the
  /// section body and the cursor advances past it.  (Defined out-of-line:
  /// it holds a Reader by value, so it needs the complete type.)
  struct Section;
  Section section();

 private:
  const char* need(std::size_t n);

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

struct Reader::Section {
  SectionType type;
  Reader body;
};

/// Parse and validate a 12-byte frame header.  Throws
/// DecodeError{kCorrupt} on bad magic or an unknown frame type — magic
/// failure means the byte stream is desynced and the session must close.
[[nodiscard]] FrameHeader decode_header(const char* data, std::size_t size);

/// Append a 12-byte header to `out` (used by tests building raw frames;
/// Writer::begin_frame is the production path).
void encode_header(std::string& out, const FrameHeader& h);

}  // namespace defa::serve::wire
