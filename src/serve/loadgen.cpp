#include "serve/loadgen.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <utility>

#include "api/run_meta.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "kernels/backend.h"
#include "obs/trace.h"

namespace defa::serve {

namespace {

using Clock = std::chrono::steady_clock;

Scenario make_scenario(std::string name, std::string preset, Priority pri,
                       double weight, api::OutputMask outputs) {
  Scenario s;
  s.name = std::move(name);
  s.request.preset = std::move(preset);
  s.request.outputs = outputs;
  s.priority = pri;
  s.weight = weight;
  return s;
}

/// Deterministic scenario schedule: weighted draws from `seed`.
std::vector<std::size_t> make_schedule(const std::vector<Scenario>& mix, int requests,
                                       std::uint64_t seed) {
  double total = 0;
  for (const Scenario& s : mix) {
    DEFA_CHECK(s.weight > 0, "loadgen: scenario '" + s.name + "' needs weight > 0");
    total += s.weight;
  }
  Rng rng(seed);
  std::vector<std::size_t> schedule;
  schedule.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    double draw = rng.uniform(0.0, total);
    std::size_t pick = mix.size() - 1;
    for (std::size_t s = 0; s < mix.size(); ++s) {
      draw -= mix[s].weight;
      if (draw < 0) {
        pick = s;
        break;
      }
    }
    schedule.push_back(pick);
  }
  return schedule;
}

}  // namespace

std::vector<Scenario> smoke_mix() {
  std::vector<Scenario> mix;
  // Cache-hot default config: repeated hits on one context + memo entry.
  mix.push_back(make_scenario("tiny_defa", "tiny", Priority::kNormal, 4.0,
                              api::kFunctional));
  // Distinct prune configs -> distinct memo keys on the same context.
  {
    Scenario s = make_scenario("tiny_pap_sweep", "tiny", Priority::kNormal, 2.0,
                               api::kFunctional);
    core::PruneConfig cfg;
    cfg.label = "pap-only";
    cfg.pap = true;
    cfg.pap_tau = 0.05;
    s.request.prune = cfg;
    mix.push_back(std::move(s));
  }
  {
    Scenario s =
        make_scenario("tiny_quant8", "tiny", Priority::kLow, 1.0, api::kFunctional);
    s.request.prune = core::PruneConfig::only_quant(8);
    mix.push_back(std::move(s));
  }
  // A second scene: a distinct (model, scene) context under the same model.
  {
    Scenario s = make_scenario("tiny_scene2", "tiny", Priority::kNormal, 2.0,
                               api::kFunctional);
    workload::SceneParams scene;
    scene.seed = 20077;
    s.request.scene = scene;
    mix.push_back(std::move(s));
  }
  // The accelerator simulator path, high priority.
  mix.push_back(make_scenario("tiny_latency", "tiny", Priority::kHigh, 2.0,
                              api::kFunctional | api::kLatency));
  return mix;
}

std::vector<Scenario> default_mix() {
  std::vector<Scenario> mix = smoke_mix();
  mix.push_back(make_scenario("small_defa", "small", Priority::kNormal, 1.0,
                              api::kFunctional));
  mix.push_back(make_scenario("small_full", "small", Priority::kLow, 0.5,
                              api::kFunctional | api::kLatency | api::kEnergy));
  return mix;
}

api::Json LoadReport::to_json() const {
  api::Json j = api::Json::object();
  j["bench"] = "serve";
  api::Json meta = api::run_metadata();
  meta["backend"] = backend;
  meta["policy"] = policy;
  meta["transport"] = transport;
  j["meta"] = std::move(meta);
  j["mode"] = mode;
  j["policy"] = policy;
  j["transport"] = transport;
  j["requests"] = requests;
  j["concurrency"] = concurrency;
  j["offered_qps"] = offered_qps;
  j["completed_ok"] = static_cast<double>(completed_ok);
  j["rejected_overload"] = static_cast<double>(rejected_overload);
  j["rejected_deadline"] = static_cast<double>(rejected_deadline);
  j["rejected_shutdown"] = static_cast<double>(rejected_shutdown);
  j["errors"] = static_cast<double>(errors);
  j["elapsed_ms"] = elapsed_ms;
  j["achieved_qps"] = achieved_qps;
  j["latency_ms"] = latency_ms.to_json();
  j["queue_ms"] = queue_ms.to_json();
  j["run_ms"] = run_ms.to_json();
  api::Json per = api::Json::object();
  for (const PerScenario& s : per_scenario) {
    api::Json sj = api::Json::object();
    sj["completed_ok"] = static_cast<double>(s.completed_ok);
    sj["latency_ms"] = s.latency_ms.to_json();
    per[s.name] = std::move(sj);
  }
  j["per_scenario"] = std::move(per);
  j["server_metrics"] = server_metrics.to_json();
  const auto ser_block = [](const wire::SerSnapshot& s) {
    api::Json b = api::Json::object();
    b["encode_ms"] = s.encode_ms;
    b["decode_ms"] = s.decode_ms;
    b["encode_frames"] = static_cast<double>(s.encode_frames);
    b["decode_frames"] = static_cast<double>(s.decode_frames);
    b["encode_bytes"] = static_cast<double>(s.encode_bytes);
    b["decode_bytes"] = static_cast<double>(s.decode_bytes);
    return b;
  };
  api::Json ser = api::Json::object();
  ser["wire_version"] = wire_version;
  ser["client"] = ser_block(ser_client);
  ser["server"] = ser_block(ser_server);
  const double total = ser_client.total_ms() + ser_server.total_ms();
  const double per_request =
      completed_ok > 0 ? total / static_cast<double>(completed_ok) : 0.0;
  ser["total_ms"] = total;
  ser["ms_per_request"] = per_request;
  // The share of the end-to-end p50 a request spends in serialization —
  // the headline number the v1 vs v2 comparison is judged on.
  const double p50 = latency_ms.percentile(50);
  ser["share_of_p50"] = p50 > 0 ? per_request / p50 : 0.0;
  j["serialization"] = std::move(ser);
  return j;
}

LoadReport run_loadgen(const LoadGenOptions& options) {
  // One scope owns the Server: the target wrapper drains it before the
  // final metrics sample, exactly as the pre-LoadTarget code did.
  Server server(options.server);
  LoadTarget target;
  target.submit = [&server](ServeRequest req) { return server.submit(std::move(req)); };
  target.metrics = [&server] {
    server.drain();  // settle the in-flight gauge before reading it
    return server.metrics();
  };
  target.transport = "inproc";
  target.policy = policy_name(options.server.policy);
  target.backend = options.server.engine.backend.empty()
                       ? kernels::default_backend_name()
                       : options.server.engine.backend;
  return run_loadgen_against(options, target);
}

LoadReport run_loadgen_against(const LoadGenOptions& options,
                               const LoadTarget& target) {
  DEFA_CHECK(options.requests > 0, "loadgen: requests must be positive");
  DEFA_CHECK(target.submit != nullptr && target.metrics != nullptr,
             "loadgen: target needs submit and metrics functions");
  const std::vector<Scenario> mix =
      options.scenarios.empty() ? smoke_mix() : options.scenarios;
  const std::vector<std::size_t> schedule =
      make_schedule(mix, options.requests, options.seed);

  LoadReport report;
  report.mode = options.mode == LoadGenOptions::Mode::kClosed ? "closed" : "open";
  report.policy = target.policy;
  report.transport = target.transport;
  report.backend = target.backend;
  report.requests = options.requests;
  report.concurrency =
      options.mode == LoadGenOptions::Mode::kClosed ? options.concurrency : 0;
  report.offered_qps =
      options.mode == LoadGenOptions::Mode::kOpen ? options.rate_qps : 0.0;
  report.per_scenario.reserve(mix.size());
  for (const Scenario& s : mix) {
    LoadReport::PerScenario per;
    per.name = s.name;
    report.per_scenario.push_back(std::move(per));
  }

  const auto make_request = [&](int k) {
    const Scenario& s = mix[schedule[static_cast<std::size_t>(k)]];
    ServeRequest req;
    req.id = s.name + "#" + std::to_string(k);
    req.request = s.request;
    req.priority = s.priority;
    req.timeout_ms = options.timeout_ms;
#if DEFA_TRACE
    if (options.trace_sample_every > 0 &&
        k % options.trace_sample_every == 0) {
      req.trace_id = obs::new_trace_id();
    }
#endif
    return req;
  };

  std::mutex report_mu;
  const auto record = [&](int k, const ServeResponse& resp) {
    const std::lock_guard<std::mutex> lock(report_mu);
    switch (resp.status) {
      case ResponseStatus::kOk: {
        ++report.completed_ok;
        report.latency_ms.record(resp.total_ms);
        report.queue_ms.record(resp.queue_ms);
        report.run_ms.record(resp.run_ms);
        LoadReport::PerScenario& per =
            report.per_scenario[schedule[static_cast<std::size_t>(k)]];
        ++per.completed_ok;
        per.latency_ms.record(resp.total_ms);
        break;
      }
      case ResponseStatus::kRejectedOverload: ++report.rejected_overload; break;
      case ResponseStatus::kRejectedDeadline: ++report.rejected_deadline; break;
      case ResponseStatus::kRejectedShutdown: ++report.rejected_shutdown; break;
      case ResponseStatus::kError:
      case ResponseStatus::kBadRequest: ++report.errors; break;
    }
  };

  const Clock::time_point start = Clock::now();

  if (options.mode == LoadGenOptions::Mode::kClosed) {
    DEFA_CHECK(options.concurrency > 0, "loadgen: concurrency must be positive");
    // `concurrency` client threads, each a classic closed loop: submit,
    // wait for the response, submit the next scheduled request.
    std::atomic<int> next{0};
    std::vector<std::thread> clients;
    const int n_clients = std::min(options.concurrency, options.requests);
    clients.reserve(static_cast<std::size_t>(n_clients));
    for (int c = 0; c < n_clients; ++c) {
      clients.emplace_back([&] {
        while (true) {
          const int k = next.fetch_add(1);
          if (k >= options.requests) return;
          record(k, target.submit(make_request(k)).get());
        }
      });
    }
    for (std::thread& t : clients) t.join();
  } else {
    // Open loop: submit on the arrival schedule regardless of completions,
    // then harvest every future.
    DEFA_CHECK(options.rate_qps > 0, "loadgen: rate_qps must be positive");
    Rng rng(options.seed + 0x9e3779b9ULL);
    std::vector<std::future<ServeResponse>> futures;
    futures.reserve(static_cast<std::size_t>(options.requests));
    double next_arrival_ms = 0;
    const double mean_gap_ms = 1e3 / options.rate_qps;
    for (int k = 0; k < options.requests; ++k) {
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(next_arrival_ms)));
      futures.push_back(target.submit(make_request(k)));
      const double gap =
          options.poisson ? -mean_gap_ms * std::log(1.0 - rng.uniform()) : mean_gap_ms;
      next_arrival_ms += gap;
    }
    for (int k = 0; k < options.requests; ++k) record(k, futures[static_cast<std::size_t>(k)].get());
  }

  report.elapsed_ms = std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
                          Clock::now() - start)
                          .count();
  report.achieved_qps = report.elapsed_ms > 0
                            ? static_cast<double>(report.completed_ok) /
                                  (report.elapsed_ms / 1e3)
                            : 0.0;
  report.server_metrics = target.metrics();
  return report;
}

}  // namespace defa::serve
