#include "workload/scene.h"

#include <cmath>
#include <numbers>

#include "common/parallel.h"

namespace defa::workload {

namespace {

/// Gaussian salience contribution of one object at normalized distance² d2.
inline float blob_response(const ObjectBlob& b, float d2) noexcept {
  return b.weight * std::exp(-d2 / (2.0f * b.sigma * b.sigma));
}

inline float dist2(float ax, float ay, float bx, float by) noexcept {
  const float dx = ax - bx;
  const float dy = ay - by;
  return dx * dx + dy * dy;
}

}  // namespace

SceneWorkload::SceneWorkload(ModelConfig model, SceneParams params)
    : model_(std::move(model)), params_(params) {
  model_.validate();
  DEFA_CHECK(params_.n_objects >= 1, "scene needs at least one object");
  DEFA_CHECK(params_.seek_fraction >= 0.0 && params_.seek_fraction <= 1.0,
             "seek_fraction in [0,1]");

  Rng rng(params_.seed);

  // --- objects -------------------------------------------------------------
  objects_.reserve(static_cast<std::size_t>(params_.n_objects));
  for (int k = 0; k < params_.n_objects; ++k) {
    ObjectBlob b;
    b.cx = static_cast<float>(rng.uniform(0.08, 0.92));
    b.cy = static_cast<float>(rng.uniform(0.08, 0.92));
    b.sigma = static_cast<float>(rng.uniform(params_.object_sigma_min, params_.object_sigma_max));
    b.weight = static_cast<float>(rng.uniform(0.5, 1.5));
    objects_.push_back(b);
    peak_saliency_ = std::max(peak_saliency_, b.weight);
  }

  ref_ = nn::reference_points(model_);

  // --- feature maps ---------------------------------------------------------
  // Token feature = sum_k a_k(token) * f_k + background + noise, where f_k is
  // the object's random signature direction.  Coarser levels see the same
  // scene (a backbone pyramid is spatially aligned).
  const std::int64_t d = model_.d_model;
  Rng feat_rng = rng.split();
  std::vector<Tensor> signatures;
  signatures.reserve(objects_.size());
  for (std::size_t k = 0; k < objects_.size(); ++k) {
    signatures.push_back(Tensor::randn({d}, feat_rng, 0.0f, 1.0f));
  }
  const Tensor background = Tensor::randn({d}, feat_rng, 0.0f, 1.0f);

  fmap_ = Tensor({model_.n_in(), d});
  const std::uint64_t noise_seed = mix_seed(params_.seed, 0xFEA7u);
  parallel_for(0, model_.n_in(), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t q = begin; q < end; ++q) {
      SmallRng noise(mix_seed(noise_seed, static_cast<std::uint64_t>(q)));
      const float xn = ref_(q, 0);
      const float yn = ref_(q, 1);
      std::span<float> row = fmap_.row(q);
      for (std::size_t k = 0; k < objects_.size(); ++k) {
        const float a = blob_response(objects_[k], dist2(xn, yn, objects_[k].cx, objects_[k].cy));
        if (a < 1e-4f) continue;
        std::span<const float> sig = signatures[k].data();
        for (std::int64_t c = 0; c < d; ++c) row[static_cast<std::size_t>(c)] += a * sig[static_cast<std::size_t>(c)];
      }
      std::span<const float> bg = background.data();
      const float bg_w = static_cast<float>(params_.background_level);
      const float noise_w = static_cast<float>(params_.feature_noise);
      for (std::int64_t c = 0; c < d; ++c) {
        row[static_cast<std::size_t>(c)] +=
            bg_w * bg[static_cast<std::size_t>(c)] +
            noise_w * static_cast<float>(noise.normal());
      }
    }
  });
}

float SceneWorkload::saliency(float xn, float yn) const noexcept {
  float s = 0.0f;
  for (const ObjectBlob& b : objects_) {
    s += blob_response(b, dist2(xn, yn, b.cx, b.cy));
  }
  return s / peak_saliency_;
}

nn::MsdaFields SceneWorkload::layer_fields(int layer) const {
  DEFA_CHECK(layer >= 0 && layer < model_.n_layers, "layer out of range");
  const std::int64_t n = model_.n_in();
  const int nh = model_.n_heads;
  const int nl = model_.n_levels;
  const int np = model_.n_points;

  nn::MsdaFields f;
  f.logits = Tensor({n, nh, static_cast<std::int64_t>(nl) * np});
  f.locs = Tensor({n, nh, nl, np, 2});

  // Layer-stable ring pattern with a small per-layer rotation: trained
  // models keep similar sampling structure across encoder blocks, which is
  // exactly what FWP's inter-layer mask transfer exploits.
  SmallRng layer_rng(mix_seed(params_.seed, 0x11AA, static_cast<std::uint64_t>(layer)));
  const double layer_rot = layer_rng.normal(0.0, params_.layer_jitter * 0.3);
  const double layer_logit_bias = layer_rng.normal(0.0, 0.1);

  const std::uint64_t point_seed = mix_seed(params_.seed, 0x5EED, static_cast<std::uint64_t>(layer));

  parallel_for(0, n, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t q = begin; q < end; ++q) {
      SmallRng qrng(mix_seed(point_seed, static_cast<std::uint64_t>(q)));
      const float rx = ref_(q, 0);
      const float ry = ref_(q, 1);

      // Per-(query,head): pick the attended object with probability
      // proportional to its proximity-weighted salience.
      for (int h = 0; h < nh; ++h) {
        // Score objects; sample one (softly) per head.
        float total = 0.0f;
        std::array<float, 64> score{};
        const std::size_t n_obj = objects_.size();
        for (std::size_t k = 0; k < n_obj && k < score.size(); ++k) {
          const ObjectBlob& b = objects_[k];
          const float reach = b.sigma + 0.10f;
          const float s =
              b.weight * std::exp(-dist2(rx, ry, b.cx, b.cy) / (2.0f * reach * reach));
          score[k] = s;
          total += s;
        }
        std::size_t chosen = 0;
        if (total > 1e-6f) {
          float pick = static_cast<float>(qrng.uniform01()) * total;
          for (std::size_t k = 0; k < n_obj && k < score.size(); ++k) {
            pick -= score[k];
            if (pick <= 0.0f) {
              chosen = k;
              break;
            }
          }
        } else {
          chosen = qrng.below(n_obj);
        }
        const ObjectBlob& target = objects_[chosen];

        for (int l = 0; l < nl; ++l) {
          const LevelShape& lv = model_.levels[static_cast<std::size_t>(l)];
          const float cx = rx * static_cast<float>(lv.w) - 0.5f;
          const float cy = ry * static_cast<float>(lv.h) - 0.5f;
          const double sigma = params_.offset_sigma_px[static_cast<std::size_t>(l)];
          for (int p = 0; p < np; ++p) {
            // (1) stable ring component (initialization-like structure)
            const double angle = 2.0 * std::numbers::pi *
                                     (h + static_cast<double>(p) / np) / nh +
                                 layer_rot;
            const double ring_r = params_.ring_scale_px * (p + 1) / np;
            double ox = ring_r * std::cos(angle);
            double oy = ring_r * std::sin(angle);
            // (2) object-seeking component (content-dependent structure),
            // soft-capped: trained offsets stay within a bounded
            // receptive field, which is what makes range narrowing cheap.
            if (qrng.bernoulli(params_.seek_fraction)) {
              // Cap scales with the level's grid so the displacement is
              // consistent in normalized coordinates across the pyramid.
              const double cap = params_.seek_cap_px * lv.w /
                                 model_.levels.front().w;
              const double sx_px = params_.seek_strength * (target.cx - rx) * lv.w;
              const double sy_px = params_.seek_strength * (target.cy - ry) * lv.h;
              ox += cap * std::tanh(sx_px / cap);
              oy += cap * std::tanh(sy_px / cap);
            }
            // (3) jitter, with a rare long-range tail
            double s = sigma;
            if (qrng.bernoulli(params_.tail_prob)) s *= params_.tail_scale;
            ox += qrng.normal(0.0, s);
            oy += qrng.normal(0.0, s);

            const float px = cx + static_cast<float>(ox);
            const float py = cy + static_cast<float>(oy);
            f.locs(q, h, l, p, 0) = px;
            f.locs(q, h, l, p, 1) = py;

            // Logit: salience at the sampled location drives attention.
            const float sx = (px + 0.5f) / static_cast<float>(lv.w);
            const float sy = (py + 0.5f) / static_cast<float>(lv.h);
            const float sal = saliency(sx, sy);
            f.logits(q, h, static_cast<std::int64_t>(l) * np + p) =
                static_cast<float>(params_.logit_gain * sal +
                                   params_.logit_noise * qrng.normal() + layer_logit_bias);
          }
        }
      }
    }
  });
  return f;
}

}  // namespace defa::workload
