#pragma once

/// \file scene.h
/// Scene-driven synthetic workload generator.
///
/// Substitution for trained Deformable-DETR-family weights + COCO images
/// (DESIGN.md §4, substitution #1).  The paper's pruning results rest on
/// statistical properties of *trained* models:
///   (a) softmax attention probabilities are heavily skewed — the paper
///       reports >80% of them are near zero (basis of PAP);
///   (b) sampling locations concentrate on salient image regions, so
///       per-pixel sampled frequency is strongly non-uniform (basis of FWP);
///   (c) offsets have bounded, level-dependent pixel magnitudes (basis of
///       level-wise range narrowing).
/// Random weights produce none of these, so the generator synthesizes a
/// scene of Gaussian "objects" and derives feature maps, sampling offsets
/// (object-seeking + per-head ring patterns + jitter) and attention logits
/// (saliency-correlated) with calibratable knobs.  Shapes and layouts are
/// exactly those of Eq. 1, so every downstream consumer (functional
/// pipeline, pruning, cycle-accurate simulator) exercises the real
/// dataflow.

#include <array>
#include <vector>

#include "config/hw_config.h"
#include "config/model_config.h"
#include "nn/msdeform.h"
#include "tensor/tensor.h"

namespace defa::workload {

/// Generator knobs.  Defaults are calibrated (see bench/ablation_workload)
/// so the default pipeline lands in the paper's reported pruning bands.
struct SceneParams {
  int n_objects = 14;
  double object_sigma_min = 0.02;   ///< normalized object extent, min
  double object_sigma_max = 0.07;   ///< normalized object extent, max
  double feature_noise = 0.25;      ///< i.i.d. feature noise stddev
  double background_level = 0.15;   ///< low-rank background feature weight

  // --- attention-probability skew (PAP behaviour) -------------------------
  double logit_gain = 16.0;    ///< saliency -> logit amplification
  double logit_noise = 3.8;  ///< per-point logit noise stddev

  // --- sampling locality (FWP behaviour) ----------------------------------
  double seek_fraction = 0.7;   ///< fraction of points that are object-seeking
  double seek_strength = 0.55;  ///< how far a seeking point moves toward the object
  double seek_cap_px = 5.0;     ///< soft cap (tanh) on the seek displacement;
                                ///< trained offsets concentrate within a
                                ///< bounded receptive field
  double ring_scale_px = 2.5;   ///< ring-pattern base radius in pixels

  // --- offset magnitude distribution (range-narrowing behaviour) ----------
  std::array<double, kMaxLevels> offset_sigma_px{2.6, 2.4, 1.9, 1.6, 1.6, 1.6, 1.6, 1.6};
  double tail_prob = 0.03;   ///< probability of a rare long-range offset
  double tail_scale = 3.0;   ///< long-range offsets scale sigma by this

  // --- cross-layer pattern stability (FWP inter-layer validity) -----------
  double layer_jitter = 0.35;

  std::uint64_t seed = 1;
};

/// One salient blob in the synthetic scene.
struct ObjectBlob {
  float cx = 0.0f;      ///< center x, normalized [0,1]
  float cy = 0.0f;      ///< center y, normalized [0,1]
  float sigma = 0.05f;  ///< extent, normalized
  float weight = 1.0f;  ///< salience weight
};

/// Deterministic synthetic workload for one benchmark model.
///
/// Construction builds the scene and the level-0..L-1 feature maps; per
/// encoder-layer sampling fields are generated on demand (they are large).
class SceneWorkload {
 public:
  SceneWorkload(ModelConfig model, SceneParams params);

  [[nodiscard]] const ModelConfig& model() const noexcept { return model_; }
  [[nodiscard]] const SceneParams& params() const noexcept { return params_; }

  /// Input tokens X (N_in x D): object feature mixtures + noise.
  [[nodiscard]] const Tensor& fmap() const noexcept { return fmap_; }

  /// Normalized reference points of all encoder queries (N x 2).
  [[nodiscard]] const Tensor& ref_norm() const noexcept { return ref_; }

  [[nodiscard]] const std::vector<ObjectBlob>& objects() const noexcept { return objects_; }

  /// Scene salience at a normalized location (sum of object Gaussians,
  /// normalized so the strongest single object peaks near 1).
  [[nodiscard]] float saliency(float xn, float yn) const noexcept;

  /// Sampling fields (logits + locations) of encoder block `layer`.
  /// Deterministic in (seed, layer); patterns are correlated across layers
  /// (same scene, same head ring structure) with `layer_jitter` variation.
  [[nodiscard]] nn::MsdaFields layer_fields(int layer) const;

 private:
  ModelConfig model_;
  SceneParams params_;
  std::vector<ObjectBlob> objects_;
  Tensor fmap_;
  Tensor ref_;
  float peak_saliency_ = 1.0f;
};

}  // namespace defa::workload
