#pragma once

/// \file masks.h
/// Bit masks produced by the DEFA pruning algorithms (Sec. 3, Fig. 2):
/// the point mask (PAP) marks sampling points whose attention probability
/// survived thresholding; the fmap mask (FWP) marks feature-map pixels whose
/// sampled frequency survived thresholding.  Both are consumed by the
/// functional pipeline (skip computation) and by the cycle-accurate model
/// (skip memory access / PE work).

#include <cstdint>
#include <vector>

#include "config/model_config.h"

namespace defa::prune {

/// Per-(query, head, level, point) keep/prune mask.
class PointMask {
 public:
  /// All-keep mask for the given model.
  explicit PointMask(const ModelConfig& m);

  [[nodiscard]] bool keep(std::int64_t q, int h, int l, int p) const noexcept {
    return bits_[index(q, h, l, p)] != 0;
  }
  void set_keep(std::int64_t q, int h, int l, int p, bool keep) noexcept {
    bits_[index(q, h, l, p)] = keep ? 1 : 0;
  }

  /// Number of surviving points for one (query, head, level).
  [[nodiscard]] int kept_in_level(std::int64_t q, int h, int l) const noexcept;

  [[nodiscard]] std::int64_t total() const noexcept {
    return static_cast<std::int64_t>(bits_.size());
  }
  [[nodiscard]] std::int64_t kept_count() const noexcept;
  [[nodiscard]] double fraction_pruned() const noexcept {
    return total() == 0 ? 0.0
                        : 1.0 - static_cast<double>(kept_count()) /
                                    static_cast<double>(total());
  }

 private:
  [[nodiscard]] std::size_t index(std::int64_t q, int h, int l, int p) const noexcept {
    return static_cast<std::size_t>(((q * nh_ + h) * nl_ + l) * np_ + p);
  }
  int nh_, nl_, np_;
  std::vector<std::uint8_t> bits_;
};

/// Per-feature-map-pixel keep/prune mask over the flattened token axis.
class FmapMask {
 public:
  /// All-keep mask for the given model.
  explicit FmapMask(const ModelConfig& m);

  [[nodiscard]] bool keep(std::int64_t token) const noexcept {
    return bits_[static_cast<std::size_t>(token)] != 0;
  }
  void set_keep(std::int64_t token, bool keep) noexcept {
    bits_[static_cast<std::size_t>(token)] = keep ? 1 : 0;
  }

  [[nodiscard]] std::int64_t total() const noexcept {
    return static_cast<std::int64_t>(bits_.size());
  }
  [[nodiscard]] std::int64_t kept_count() const noexcept;
  [[nodiscard]] double fraction_pruned() const noexcept {
    return total() == 0 ? 0.0
                        : 1.0 - static_cast<double>(kept_count()) /
                                    static_cast<double>(total());
  }
  /// Kept pixels restricted to one pyramid level.
  [[nodiscard]] std::int64_t kept_in_level(const ModelConfig& m, int l) const;

 private:
  std::vector<std::uint8_t> bits_;
};

}  // namespace defa::prune
