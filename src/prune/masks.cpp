#include "prune/masks.h"

#include <numeric>

namespace defa::prune {

PointMask::PointMask(const ModelConfig& m)
    : nh_(m.n_heads), nl_(m.n_levels), np_(m.n_points) {
  bits_.assign(static_cast<std::size_t>(m.n_in()) * nh_ * nl_ * np_, 1);
}

int PointMask::kept_in_level(std::int64_t q, int h, int l) const noexcept {
  int kept = 0;
  for (int p = 0; p < np_; ++p) kept += bits_[index(q, h, l, p)];
  return kept;
}

std::int64_t PointMask::kept_count() const noexcept {
  return std::accumulate(bits_.begin(), bits_.end(), std::int64_t{0});
}

FmapMask::FmapMask(const ModelConfig& m) {
  bits_.assign(static_cast<std::size_t>(m.n_in()), 1);
}

std::int64_t FmapMask::kept_count() const noexcept {
  return std::accumulate(bits_.begin(), bits_.end(), std::int64_t{0});
}

std::int64_t FmapMask::kept_in_level(const ModelConfig& m, int l) const {
  const std::int64_t begin = m.level_offset(l);
  const std::int64_t end = begin + m.levels[static_cast<std::size_t>(l)].numel();
  std::int64_t kept = 0;
  for (std::int64_t t = begin; t < end; ++t) kept += bits_[static_cast<std::size_t>(t)];
  return kept;
}

}  // namespace defa::prune
