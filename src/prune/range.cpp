#include "prune/range.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"

namespace defa::prune {

ClampStats clamp_to_range(const ModelConfig& m, const Tensor& ref_norm,
                          const RangeSpec& ranges, Tensor& locs) {
  DEFA_CHECK(ranges.used_levels == m.n_levels, "range spec mismatch");
  DEFA_CHECK(locs.rank() == 5 && locs.dim(0) == m.n_in(), "locs shape");

  const std::int64_t n = m.n_in();
  ClampStats stats;
  stats.total_points = n * m.n_heads * m.n_levels * m.n_points;
  stats.level_fraction.assign(static_cast<std::size_t>(m.n_levels), 0.0);

  std::vector<std::int64_t> level_clamped(static_cast<std::size_t>(m.n_levels), 0);
  std::int64_t clamped = 0;
  double max_excess = 0.0;

  for (std::int64_t q = 0; q < n; ++q) {
    const float rx = ref_norm(q, 0);
    const float ry = ref_norm(q, 1);
    for (int h = 0; h < m.n_heads; ++h) {
      for (int l = 0; l < m.n_levels; ++l) {
        const LevelShape& lv = m.levels[static_cast<std::size_t>(l)];
        const float cx = rx * static_cast<float>(lv.w) - 0.5f;
        const float cy = ry * static_cast<float>(lv.h) - 0.5f;
        const float r = static_cast<float>(ranges.radius(l));
        for (int p = 0; p < m.n_points; ++p) {
          float& x = locs(q, h, l, p, 0);
          float& y = locs(q, h, l, p, 1);
          const float nx = std::clamp(x, cx - r, cx + r);
          const float ny = std::clamp(y, cy - r, cy + r);
          const double excess =
              std::max(std::abs(static_cast<double>(x - nx)), std::abs(static_cast<double>(y - ny)));
          if (excess > 0.0) {
            ++clamped;
            ++level_clamped[static_cast<std::size_t>(l)];
            max_excess = std::max(max_excess, excess);
            x = nx;
            y = ny;
          }
        }
      }
    }
  }

  stats.clamped_points = clamped;
  stats.max_excess_px = max_excess;
  const double per_level_total =
      static_cast<double>(n) * m.n_heads * m.n_points;
  for (int l = 0; l < m.n_levels; ++l) {
    stats.level_fraction[static_cast<std::size_t>(l)] =
        per_level_total > 0
            ? static_cast<double>(level_clamped[static_cast<std::size_t>(l)]) / per_level_total
            : 0.0;
  }
  return stats;
}

std::int64_t range_window_bytes(const ModelConfig& m, const RangeSpec& ranges,
                                int act_bits) {
  const std::int64_t pixel_bits = static_cast<std::int64_t>(m.d_model) * act_bits;
  return ranges.window_pixels() * ((pixel_bits + 7) / 8);
}

}  // namespace defa::prune
