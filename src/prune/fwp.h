#pragma once

/// \file fwp.h
/// Frequency-Weighted Fmap Pruning (Sec. 3.1).
///
/// During MSGS of block l, the bilinear-interpolation neighbor pixels of
/// every surviving sampling point are counted into a per-pixel sampled
/// frequency.  Pixels whose frequency falls below the per-level threshold
///     T_FWP = k * mean(F)                                   (Eq. 2)
/// are pruned; the resulting fmap mask eliminates their value projection
/// and memory access in block l+1.

#include <cstdint>
#include <vector>

#include "config/model_config.h"
#include "nn/bilinear.h"
#include "prune/masks.h"
#include "tensor/tensor.h"

namespace defa::prune {

/// Per-pixel sampled-frequency counter over the flattened token axis.
class FreqCounter {
 public:
  explicit FreqCounter(const ModelConfig& m)
      : counts_(static_cast<std::size_t>(m.n_in()), 0) {}

  void add(std::int64_t token) noexcept {
    DEFA_DCHECK(token >= 0 && token < static_cast<std::int64_t>(counts_.size()),
                "token out of range");
    ++counts_[static_cast<std::size_t>(token)];
  }

  /// Merge another counter (for sharded parallel counting).
  void merge(const FreqCounter& other);

  [[nodiscard]] std::uint32_t count(std::int64_t token) const noexcept {
    return counts_[static_cast<std::size_t>(token)];
  }
  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(counts_.size());
  }
  /// Mean sampled frequency of pixels in level `l`.
  [[nodiscard]] double level_mean(const ModelConfig& m, int l) const;

 private:
  std::vector<std::uint32_t> counts_;
};

/// Count the BI neighbor accesses of every surviving sampling point.
/// `locs` is the (N, H, L, P, 2) sampling-location tensor (already
/// range-narrowed if narrowing is enabled); points pruned in `pmask` are
/// skipped — the hardware's fmap-mask generator sits behind the point mask.
[[nodiscard]] FreqCounter count_sampled_frequency(const ModelConfig& m, const Tensor& locs,
                                                  const PointMask& pmask);

struct FwpStats {
  std::int64_t total_pixels = 0;
  std::int64_t pruned_pixels = 0;
  /// Per-level thresholds T_FWP actually applied.
  std::vector<double> level_threshold;

  [[nodiscard]] double fraction_pruned() const noexcept {
    return total_pixels == 0
               ? 0.0
               : static_cast<double>(pruned_pixels) / static_cast<double>(total_pixels);
  }
};

/// Apply Eq. 2 per level: prune pixels with frequency strictly below
/// k * mean(level frequency).  Returns the fmap mask for the *next* block.
[[nodiscard]] FmapMask fwp_prune(const ModelConfig& m, const FreqCounter& freq, double k,
                                 FwpStats* stats = nullptr);

}  // namespace defa::prune
