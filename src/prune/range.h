#pragma once

/// \file range.h
/// Level-wise range narrowing (Sec. 4.1, Fig. 4).
///
/// Sampling locations are clamped to a bounded box of per-level radius R_l
/// around the query's reference point.  The bound limits the on-chip
/// feature-map working set to a sliding window of (2R+2)^2 pixels per level;
/// narrowing coarse levels saves ~25% SRAM versus a unified radius.

#include "config/hw_config.h"
#include "config/model_config.h"
#include "tensor/tensor.h"

namespace defa::prune {

struct ClampStats {
  std::int64_t total_points = 0;
  std::int64_t clamped_points = 0;  ///< points moved by clamping
  double max_excess_px = 0.0;       ///< largest clamp distance observed
  /// Per-level clamped-point fractions.
  std::vector<double> level_fraction;

  [[nodiscard]] double fraction_clamped() const noexcept {
    return total_points == 0
               ? 0.0
               : static_cast<double>(clamped_points) / static_cast<double>(total_points);
  }
};

/// Clamp every sampling location in `locs` (N, H, L, P, 2) to the bounded
/// range of its level, centered on the query's reference point.  Modifies
/// `locs` in place and reports how many points were affected.
ClampStats clamp_to_range(const ModelConfig& m, const Tensor& ref_norm,
                          const RangeSpec& ranges, Tensor& locs);

/// On-chip storage (bytes) needed to buffer the bounded-range windows of all
/// levels at full hidden dimension, as sized by the architecture.
[[nodiscard]] std::int64_t range_window_bytes(const ModelConfig& m, const RangeSpec& ranges,
                                              int act_bits);

}  // namespace defa::prune
