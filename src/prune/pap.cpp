#include "prune/pap.h"

namespace defa::prune {

PointMask pap_prune(const ModelConfig& m, const Tensor& probs, double tau,
                    PapStats* stats) {
  DEFA_CHECK(tau >= 0.0 && tau < 1.0, "PAP threshold must be in [0,1)");
  DEFA_CHECK(probs.rank() == 3 && probs.dim(0) == m.n_in() &&
                 probs.dim(1) == m.n_heads && probs.dim(2) == m.points_per_head(),
             "probs must be (N, H, L*P)");

  PointMask mask(m);
  std::int64_t pruned = 0;
  double dropped_mass = 0.0;
  const std::int64_t n = m.n_in();
  for (std::int64_t q = 0; q < n; ++q) {
    for (int h = 0; h < m.n_heads; ++h) {
      for (int l = 0; l < m.n_levels; ++l) {
        for (int p = 0; p < m.n_points; ++p) {
          const float prob = probs(q, h, static_cast<std::int64_t>(l) * m.n_points + p);
          if (prob < static_cast<float>(tau)) {
            mask.set_keep(q, h, l, p, false);
            ++pruned;
            dropped_mass += prob;
          }
        }
      }
    }
  }
  if (stats != nullptr) {
    stats->total_points = mask.total();
    stats->pruned_points = pruned;
    const double qh = static_cast<double>(n) * m.n_heads;
    stats->mean_dropped_mass = qh > 0 ? dropped_mass / qh : 0.0;
  }
  return mask;
}

}  // namespace defa::prune
