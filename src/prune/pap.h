#pragma once

/// \file pap.h
/// Probability-Aware Point Pruning (Sec. 3.2).
///
/// After softmax, attention probabilities of one (query, head) sum to 1 and
/// their differences are exponentially amplified; the paper observes that
/// over 80% of them are near zero in Deformable DETR.  PAP thresholds the
/// normalized probabilities and records survivors in a point mask; the
/// masked points skip offset generation, bilinear interpolation and
/// aggregation in the current block.

#include "config/model_config.h"
#include "prune/masks.h"
#include "tensor/tensor.h"

namespace defa::prune {

struct PapStats {
  std::int64_t total_points = 0;
  std::int64_t pruned_points = 0;
  /// Attention-probability mass removed by pruning, averaged per (q, h).
  double mean_dropped_mass = 0.0;

  [[nodiscard]] double fraction_pruned() const noexcept {
    return total_points == 0
               ? 0.0
               : static_cast<double>(pruned_points) / static_cast<double>(total_points);
  }
};

/// Threshold the (N, H, L*P) probability tensor at `tau`; probabilities
/// strictly below `tau` are pruned.  Returns the surviving-point mask.
[[nodiscard]] PointMask pap_prune(const ModelConfig& m, const Tensor& probs, double tau,
                                  PapStats* stats = nullptr);

}  // namespace defa::prune
