#include "prune/fwp.h"

namespace defa::prune {

void FreqCounter::merge(const FreqCounter& other) {
  DEFA_CHECK(counts_.size() == other.counts_.size(), "counter size mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

double FreqCounter::level_mean(const ModelConfig& m, int l) const {
  const std::int64_t begin = m.level_offset(l);
  const std::int64_t count = m.levels[static_cast<std::size_t>(l)].numel();
  std::int64_t sum = 0;
  for (std::int64_t t = begin; t < begin + count; ++t) {
    sum += counts_[static_cast<std::size_t>(t)];
  }
  return count > 0 ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
}

FreqCounter count_sampled_frequency(const ModelConfig& m, const Tensor& locs,
                                    const PointMask& pmask) {
  DEFA_CHECK(locs.rank() == 5 && locs.dim(0) == m.n_in(), "locs shape");
  FreqCounter freq(m);
  const std::int64_t n = m.n_in();
  for (std::int64_t q = 0; q < n; ++q) {
    for (int h = 0; h < m.n_heads; ++h) {
      for (int l = 0; l < m.n_levels; ++l) {
        for (int p = 0; p < m.n_points; ++p) {
          if (!pmask.keep(q, h, l, p)) continue;
          const nn::BiPoint bp = nn::bi_locate(locs(q, h, l, p, 0), locs(q, h, l, p, 1));
          nn::for_each_neighbor(m, l, bp,
                                [&](int /*which*/, std::int64_t token) { freq.add(token); });
        }
      }
    }
  }
  return freq;
}

FmapMask fwp_prune(const ModelConfig& m, const FreqCounter& freq, double k,
                   FwpStats* stats) {
  DEFA_CHECK(k >= 0.0, "FWP multiplier k must be non-negative");
  DEFA_CHECK(freq.size() == m.n_in(), "frequency counter size mismatch");

  FmapMask mask(m);
  std::int64_t pruned = 0;
  std::vector<double> thresholds;
  thresholds.reserve(static_cast<std::size_t>(m.n_levels));

  for (int l = 0; l < m.n_levels; ++l) {
    const double threshold = k * freq.level_mean(m, l);  // Eq. 2
    thresholds.push_back(threshold);
    const std::int64_t begin = m.level_offset(l);
    const std::int64_t count = m.levels[static_cast<std::size_t>(l)].numel();
    for (std::int64_t t = begin; t < begin + count; ++t) {
      if (static_cast<double>(freq.count(t)) < threshold) {
        mask.set_keep(t, false);
        ++pruned;
      }
    }
  }
  if (stats != nullptr) {
    stats->total_pixels = m.n_in();
    stats->pruned_pixels = pruned;
    stats->level_threshold = std::move(thresholds);
  }
  return mask;
}

}  // namespace defa::prune
