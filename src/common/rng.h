#pragma once

/// \file rng.h
/// Deterministic random number generation for workload synthesis.
///
/// All stochastic components of the reproduction (scene generation, weight
/// init, jitter) draw from an explicitly-seeded `defa::Rng` so that every
/// figure/table is bit-reproducible run to run.

#include <cstdint>
#include <random>

namespace defa {

/// Thin wrapper over std::mt19937_64 with convenience distributions.
/// Copyable; copies continue the sequence independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Normal with the given mean / standard deviation.
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  [[nodiscard]] std::int64_t randint(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw with probability `p` of true.
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derive an independent child generator (stable split for sub-components).
  [[nodiscard]] Rng split() { return Rng(engine_()); }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Tiny counter-seeded generator (SplitMix64) for per-item deterministic
/// randomness inside parallel loops: seeding is O(1), so each (layer, query)
/// pair can own an independent stream regardless of thread scheduling.
class SmallRng {
 public:
  explicit SmallRng(std::uint64_t seed) : state_(seed) {}

  /// Next 64 raw bits (SplitMix64 step).
  [[nodiscard]] std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Standard normal via Box-Muller (spare value cached).
  [[nodiscard]] double normal() noexcept;

  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Uniform integer in [0, n).
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept { return next() % n; }

 private:
  std::uint64_t state_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// Mix several identifiers into one SmallRng seed (order-sensitive).
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b = 0,
                                     std::uint64_t c = 0, std::uint64_t d = 0) noexcept;

}  // namespace defa
