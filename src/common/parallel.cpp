#include "common/parallel.h"

#include <algorithm>
#include <thread>

#include "common/check.h"
#include "common/thread_pool.h"

namespace defa {

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 32u));
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t, std::int64_t)>& chunk_fn,
                  std::int64_t min_parallel) {
  DEFA_CHECK(begin <= end, "parallel_for: inverted range");
  const std::int64_t n = end - begin;
  if (n == 0) return;
  ThreadPool& pool = ThreadPool::global();
  const int concurrency = pool.size() + 1;  // workers + the calling thread
  if (n < min_parallel || concurrency <= 1) {
    chunk_fn(begin, end);
    return;
  }
  // A few chunks per executor: dynamic grabbing load-balances uneven work,
  // and chunk boundaries depend only on (n, concurrency) so any
  // index-disjoint writes land identically regardless of scheduling.
  const std::int64_t max_chunks = static_cast<std::int64_t>(concurrency) * 4;
  const std::int64_t chunk = (n + max_chunks - 1) / max_chunks;
  const std::int64_t n_chunks = (n + chunk - 1) / chunk;
  pool.run_indexed(n_chunks, concurrency, [&](std::int64_t c) {
    const std::int64_t lo = begin + c * chunk;
    chunk_fn(lo, std::min(lo + chunk, end));
  });
}

}  // namespace defa
