#include "common/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/check.h"

namespace defa {

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 32u));
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t, std::int64_t)>& chunk_fn,
                  std::int64_t min_parallel) {
  DEFA_CHECK(begin <= end, "parallel_for: inverted range");
  const std::int64_t n = end - begin;
  if (n == 0) return;
  const int threads = hardware_threads();
  if (n < min_parallel || threads == 1) {
    chunk_fn(begin, end);
    return;
  }
  const std::int64_t chunk = (n + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (std::int64_t lo = begin; lo < end; lo += chunk) {
    const std::int64_t hi = std::min(lo + chunk, end);
    workers.emplace_back([&chunk_fn, lo, hi] { chunk_fn(lo, hi); });
  }
  for (auto& w : workers) w.join();
}

}  // namespace defa
