#include "common/stats.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace defa {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
}

double rmse(std::span<const float> a, std::span<const float> b) {
  DEFA_CHECK(a.size() == b.size(), "rmse: size mismatch");
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

double nrmse(std::span<const float> reference, std::span<const float> test) {
  DEFA_CHECK(reference.size() == test.size(), "nrmse: size mismatch");
  if (reference.empty()) return 0.0;
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double d = static_cast<double>(reference[i]) - static_cast<double>(test[i]);
    err += d * d;
    ref += static_cast<double>(reference[i]) * static_cast<double>(reference[i]);
  }
  if (ref == 0.0) return err == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return std::sqrt(err / ref);
}

double max_abs_diff(std::span<const float> a, std::span<const float> b) {
  DEFA_CHECK(a.size() == b.size(), "max_abs_diff: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return m;
}

}  // namespace defa
