#pragma once

/// \file simd.h
/// Runtime SIMD-ISA detection and dispatch policy — the portable shim the
/// `simd` kernels backend (src/kernels/simd_backend.cpp) stands on.
///
/// The repo ships three instruction-set tiers for the vectorized kernels:
/// AVX2 (x86-64), NEON (aarch64) and a portable scalar fallback.  Which
/// tier *runs* is a pure runtime decision made here, in three layers:
///
///  1. **CPU capability** — `cpu_supports(isa)` queries the hardware
///     (CPUID on x86, architecture baseline on ARM).  Detection is about
///     the machine the binary landed on, never the machine it was built on,
///     so one binary runs correctly across a heterogeneous fleet.
///  2. **Compiled availability** — whether a tier's kernels were compiled
///     into the binary at all is a per-translation-unit property of the
///     kernels layer (the `DEFA_KERNELS_SIMD` CMake knob); the shim only
///     expresses the *request* and the hardware truth.
///  3. **Operator override** — the `DEFA_SIMD` environment variable pins a
///     tier for A/B measurement and differential testing: `auto` (default)
///     picks the best runnable tier, `scalar` forces the portable fallback,
///     `avx2`/`neon` *require* that tier — making the backend report itself
///     unavailable (rather than silently degrade) when the host or build
///     cannot honor the request.
///
/// Everything here is cheap, allocation-free after first use, and safe to
/// call per kernel invocation.

#include <string>

namespace defa::simd {

/// SIMD instruction-set tiers, weakest first.  The ordering is meaningful:
/// `best_cpu_isa()` returns the highest-valued tier the CPU supports.
enum class Isa {
  kScalar = 0,  ///< portable fallback, available everywhere
  kNeon = 1,    ///< 128-bit ARM Advanced SIMD
  kAvx2 = 2,    ///< 256-bit x86 AVX2
};

/// Lower-case display/parse name of a tier ("scalar", "neon", "avx2").
[[nodiscard]] const char* isa_name(Isa isa) noexcept;

/// Does the *hardware this process runs on* support the tier?  kScalar is
/// always true; kAvx2 uses CPUID via __builtin_cpu_supports on x86 and is
/// false elsewhere; kNeon is true on aarch64 (Advanced SIMD is baseline).
[[nodiscard]] bool cpu_supports(Isa isa) noexcept;

/// Highest tier `cpu_supports` reports true for.
[[nodiscard]] Isa best_cpu_isa() noexcept;

/// Parsed DEFA_SIMD override.
struct IsaRequest {
  bool forced = false;  ///< a specific tier (or scalar) was requested
  Isa isa = Isa::kScalar;
  bool valid = true;    ///< false: unrecognized DEFA_SIMD value
  std::string raw;      ///< the raw environment string (for error messages)
};

/// Read DEFA_SIMD from the environment (re-read every call, like
/// DEFA_BACKEND, so tests can flip it).  Unset/empty/"auto" => not forced.
[[nodiscard]] IsaRequest requested_isa();

}  // namespace defa::simd
