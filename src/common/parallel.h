#pragma once

/// \file parallel.h
/// Minimal fork-join parallel loop used to speed up the functional model
/// (matmuls, grid-sampling sweeps).  Determinism: callers must write to
/// disjoint output ranges; all reductions are merged in index order.

#include <cstdint>
#include <functional>

namespace defa {

/// Number of worker threads used by parallel_for (>= 1, capped).
[[nodiscard]] int hardware_threads();

/// Invoke `chunk_fn(begin, end)` over a partition of [begin, end) across
/// worker threads.  Runs inline when the range is below `min_parallel`.
/// `chunk_fn` must be thread-safe for disjoint sub-ranges.
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t, std::int64_t)>& chunk_fn,
                  std::int64_t min_parallel = 4096);

}  // namespace defa
