#include "common/simd.h"

#include <cstdlib>

namespace defa::simd {

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kNeon: return "neon";
    case Isa::kAvx2: return "avx2";
    case Isa::kScalar: break;
  }
  return "scalar";
}

bool cpu_supports(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Isa::kNeon:
      // Advanced SIMD is architecturally mandatory on AArch64; on 32-bit
      // ARM trust the compile-time baseline (no portable runtime probe).
#if defined(__aarch64__) || defined(__ARM_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Isa best_cpu_isa() noexcept {
  if (cpu_supports(Isa::kAvx2)) return Isa::kAvx2;
  if (cpu_supports(Isa::kNeon)) return Isa::kNeon;
  return Isa::kScalar;
}

IsaRequest requested_isa() {
  IsaRequest req;
  const char* env = std::getenv("DEFA_SIMD");
  if (env == nullptr || *env == '\0') return req;
  req.raw = env;
  if (req.raw == "auto") return req;
  req.forced = true;
  if (req.raw == "scalar") {
    req.isa = Isa::kScalar;
  } else if (req.raw == "neon") {
    req.isa = Isa::kNeon;
  } else if (req.raw == "avx2") {
    req.isa = Isa::kAvx2;
  } else {
    req.valid = false;
  }
  return req;
}

}  // namespace defa::simd
