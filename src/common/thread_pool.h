#pragma once

/// \file thread_pool.h
/// Persistent work-stealing thread pool shared by every concurrent code
/// path in the repo: `defa::parallel_for`, `Engine::run_batch` and the
/// `serve::Server` request scheduler all execute on one fixed set of worker
/// threads instead of spawning threads per call, so nested parallelism
/// (a served request whose pipeline run calls parallel_for) cannot
/// oversubscribe the machine.
///
/// The pool lives in common/ (not serve/) so the dependency arrows point
/// one way: common/parallel and api/engine use it without depending on the
/// serving layer, and serve/ stays an optional consumer on top.
///
/// Topology: one bounded deque per worker.  A worker pops its own deque
/// LIFO (cache locality for nested fan-out) and steals FIFO from the other
/// workers when its deque runs dry; external submissions are distributed
/// round-robin.  Blocking joins never depend on a free worker — see
/// `run_indexed`, whose caller always drains remaining indices itself —
/// so the pool is deadlock-free under arbitrary nesting.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace defa {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// `threads == 0` sizes the pool at hardware_threads() - 1 workers, so a
  /// caller participating in `run_indexed` brings concurrency to exactly
  /// the hardware thread count.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool.  Constructed on first use, lives for the
  /// program; all library-internal parallelism routes through it.
  [[nodiscard]] static ThreadPool& global();

  [[nodiscard]] int size() const noexcept { return static_cast<int>(threads_.size()); }

  /// True when the calling thread is one of *any* ThreadPool's workers.
  [[nodiscard]] static bool on_worker_thread() noexcept;

  /// Enqueue a fire-and-forget task.  Never blocks; tasks submitted from a
  /// worker go to that worker's own deque (LIFO) for locality.
  void submit(Task task);

  /// Run `fn(i)` for every i in [0, n) with at most `max_concurrency`
  /// simultaneous executors (the calling thread included; <= 0 means
  /// pool-size + 1).  Blocks until all n indices finished.  The caller
  /// always executes indices itself, so completion never depends on free
  /// workers — safe to call from inside a pool task (nested fan-out).
  /// The first exception thrown by `fn` is rethrown here after all
  /// indices completed; remaining indices still run.
  void run_indexed(std::int64_t n, int max_concurrency,
                   const std::function<void(std::int64_t)>& fn);

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> q;
  };

  void worker_main(std::size_t id);
  [[nodiscard]] bool try_pop(std::size_t id, Task& out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> next_queue_{0};  ///< round-robin submit cursor
  std::atomic<std::int64_t> pending_{0};      ///< queued, not yet popped
  std::atomic<bool> stop_{false};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
};

}  // namespace defa
