#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace defa {

double SmallRng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  // Box-Muller; u clamped away from 0 so log() stays finite.
  double u = uniform01();
  if (u < 1e-300) u = 1e-300;
  const double v = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * std::numbers::pi * v;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                       std::uint64_t d) noexcept {
  SmallRng mixer(a);
  std::uint64_t s = mixer.next() ^ (b * 0x9e3779b97f4a7c15ULL);
  SmallRng mixer2(s);
  s = mixer2.next() ^ (c * 0xbf58476d1ce4e5b9ULL);
  SmallRng mixer3(s);
  return mixer3.next() ^ (d * 0x94d049bb133111ebULL);
}

}  // namespace defa
