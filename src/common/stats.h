#pragma once

/// \file stats.h
/// Small online/offline summary statistics used throughout the models
/// (sampled-frequency distributions, error metrics, utilization averages).

#include <cmath>
#include <cstdint>
#include <span>

namespace defa {

/// Streaming accumulator for mean / variance / min / max (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::int64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Root-mean-square error between two equally-sized spans.
[[nodiscard]] double rmse(std::span<const float> a, std::span<const float> b);

/// RMSE normalized by the RMS magnitude of the reference `a`
/// (dimensionless; 0 = identical).  Returns 0 when both are all-zero.
[[nodiscard]] double nrmse(std::span<const float> reference, std::span<const float> test);

/// Maximum absolute elementwise difference.
[[nodiscard]] double max_abs_diff(std::span<const float> a, std::span<const float> b);

}  // namespace defa
