#pragma once

/// \file check.h
/// Precondition / invariant checking used across the DEFA libraries.
///
/// Following the C++ Core Guidelines (I.6 / E.12-ish pragmatics) we express
/// preconditions as always-on checks that throw `defa::CheckError`.  Model
/// code is simulation-oriented: a violated precondition means the experiment
/// is meaningless, so failing loudly beats undefined behaviour.  Hot inner
/// loops use `DEFA_DCHECK`, compiled out in NDEBUG builds.

#include <stdexcept>
#include <string>

namespace defa {

/// Error thrown when a DEFA_CHECK fails.  Derives from std::logic_error:
/// a failed check is a programming/configuration error, not an I/O fault.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void check_failed(const char* condition, const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace defa

/// Always-on checked precondition.  `msg` may use string concatenation /
/// std::to_string; it is only evaluated on failure.
#define DEFA_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      ::defa::detail::check_failed(#cond, __FILE__, __LINE__, (msg));      \
    }                                                                      \
  } while (false)

/// Debug-only check for hot loops (bounds checks in tensor indexing etc.).
#ifdef NDEBUG
#define DEFA_DCHECK(cond, msg) ((void)0)
#else
#define DEFA_DCHECK(cond, msg) DEFA_CHECK(cond, msg)
#endif
