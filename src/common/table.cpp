#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace defa {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  DEFA_CHECK(!header_.empty(), "table needs at least one column");
}

TextTable& TextTable::new_row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add(std::string cell) {
  DEFA_CHECK(!rows_.empty(), "call new_row() before add()");
  DEFA_CHECK(rows_.back().size() < header_.size(), "row has more cells than header");
  rows_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::add_num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return add(os.str());
}

TextTable& TextTable::add_int(long long value) { return add(std::to_string(value)); }

std::string TextTable::str(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  if (!title.empty()) os << title << "\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << "| " << std::setw(static_cast<int>(width[c])) << cell << " ";
    }
    os << "|\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

std::string ratio(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value << "x";
  return os.str();
}

}  // namespace defa
