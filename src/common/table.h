#pragma once

/// \file table.h
/// Plain-text table formatting used by the benchmark harnesses to print the
/// rows/series of each paper figure and table.

#include <string>
#include <vector>

namespace defa {

/// Column-aligned text table.  Cells are strings; numeric helpers format
/// with a fixed precision.  Rendering right-aligns numeric-looking cells.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Begin a new row.  Cells are appended with `add`/`add_num`.
  TextTable& new_row();
  TextTable& add(std::string cell);
  TextTable& add_num(double value, int precision = 2);
  /// Convenience: add a count without decimals.
  TextTable& add_int(long long value);

  /// Render with a title line, header separator and aligned columns.
  [[nodiscard]] std::string str(const std::string& title = "") const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helper: "12.3%" style percentage from a [0,1] fraction.
[[nodiscard]] std::string percent(double fraction, int precision = 1);

/// Format helper: "3.06x" style ratio.
[[nodiscard]] std::string ratio(double value, int precision = 2);

}  // namespace defa
