#include "common/check.h"

#include <sstream>

namespace defa::detail {

void check_failed(const char* condition, const char* file, int line,
                  const std::string& message) {
  std::ostringstream os;
  os << "DEFA_CHECK failed: (" << condition << ") at " << file << ":" << line;
  if (!message.empty()) os << " — " << message;
  throw CheckError(os.str());
}

}  // namespace defa::detail
