#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"

namespace defa {

namespace {
/// Index of the calling thread inside its owning pool, or -1 off-pool.
thread_local int tl_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = std::max(1, hardware_threads() - 1);
  queues_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) queues_.push_back(std::make_unique<WorkerQueue>());
  threads_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_main(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  {
    // Pair the store with the sleep predicate so no worker naps through it.
    const std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::on_worker_thread() noexcept { return tl_worker_index >= 0; }

void ThreadPool::submit(Task task) {
  DEFA_CHECK(!stop_.load(), "ThreadPool: submit after shutdown");
  const std::size_t n = queues_.size();
  std::size_t target;
  bool lifo = false;
  if (tl_worker_index >= 0 && static_cast<std::size_t>(tl_worker_index) < n &&
      queues_[static_cast<std::size_t>(tl_worker_index)] != nullptr) {
    target = static_cast<std::size_t>(tl_worker_index);
    lifo = true;  // nested fan-out stays hot on the submitting worker
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) % n;
  }
  {
    const std::lock_guard<std::mutex> lock(queues_[target]->mu);
    if (lifo) {
      queues_[target]->q.push_front(std::move(task));
    } else {
      queues_[target]->q.push_back(std::move(task));
    }
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    // Pair the pending_ update with the sleep predicate (same as the
    // destructor's stop_ store): a worker that just saw pending_ == 0 is
    // guaranteed to be blocked in wait() before this notify fires, so the
    // wakeup cannot be lost.
    const std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t id, Task& out) {
  // Own deque first (front: LIFO for the owner) ...
  {
    WorkerQueue& own = *queues_[id];
    const std::lock_guard<std::mutex> lock(own.mu);
    if (!own.q.empty()) {
      out = std::move(own.q.front());
      own.q.pop_front();
      return true;
    }
  }
  // ... then steal from the other workers' tails (FIFO: oldest work).
  const std::size_t n = queues_.size();
  for (std::size_t k = 1; k < n; ++k) {
    WorkerQueue& victim = *queues_[(id + k) % n];
    const std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.q.empty()) {
      out = std::move(victim.q.back());
      victim.q.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_main(std::size_t id) {
  tl_worker_index = static_cast<int>(id);
  Task task;
  while (true) {
    if (try_pop(id, task)) {
      pending_.fetch_sub(1, std::memory_order_acquire);
      task();
      task = nullptr;  // release captured state before sleeping
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleep_cv_.wait(lock, [this] {
      return stop_.load() || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load() && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

void ThreadPool::run_indexed(std::int64_t n, int max_concurrency,
                             const std::function<void(std::int64_t)>& fn) {
  DEFA_CHECK(n >= 0, "ThreadPool::run_indexed: negative count");
  if (n == 0) return;

  // Shared between the caller and helper tasks; helpers hold it by
  // shared_ptr, so a helper that starts after the loop already finished
  // (and the caller returned) still touches valid memory and exits.
  struct Shared {
    std::atomic<std::int64_t> next{0};
    std::int64_t total = 0;
    std::function<void(std::int64_t)> fn;
    std::mutex mu;
    std::condition_variable cv;
    std::int64_t done = 0;               // guarded by mu
    std::exception_ptr error;            // guarded by mu; first one wins
  };
  auto s = std::make_shared<Shared>();
  s->total = n;
  s->fn = fn;

  const auto drain = [](const std::shared_ptr<Shared>& sh) {
    while (true) {
      const std::int64_t i = sh->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= sh->total) return;
      std::exception_ptr err;
      try {
        sh->fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      const std::lock_guard<std::mutex> lock(sh->mu);
      if (err && !sh->error) sh->error = err;
      if (++sh->done == sh->total) sh->cv.notify_all();
    }
  };

  const int pool_cap = max_concurrency <= 0 ? size() + 1 : max_concurrency;
  const auto helpers = static_cast<int>(std::min<std::int64_t>(
      n - 1, std::min<std::int64_t>(pool_cap - 1, size())));
  for (int i = 0; i < helpers; ++i) submit([s, drain] { drain(s); });

  drain(s);  // caller participates: completion never waits on a free worker

  std::unique_lock<std::mutex> lock(s->mu);
  s->cv.wait(lock, [&] { return s->done == s->total; });
  if (s->error) std::rethrow_exception(s->error);
}

}  // namespace defa
