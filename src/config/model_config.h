#pragma once

/// \file model_config.h
/// Benchmark model configurations for the MSDeformAttn encoder layers
/// evaluated in the DEFA paper (Deformable DETR, DN-DETR, DINO on COCO).
///
/// All three detectors share the standard MSDeformAttn encoder hyper-
/// parameters (d_model=256, 8 heads, 4 levels, 4 points, 6 encoder layers);
/// they differ in input resolution (and therefore token count) and in the
/// paper-reported baseline AP used by the accuracy proxy.

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace defa {

/// One pyramid level of the flattened multi-scale feature map.
struct LevelShape {
  int h = 0;
  int w = 0;
  [[nodiscard]] std::int64_t numel() const noexcept {
    return static_cast<std::int64_t>(h) * w;
  }
};

/// Static description of one benchmark's MSDeformAttn encoder.
struct ModelConfig {
  std::string name;
  int d_model = 256;   ///< hidden dimension D_in
  int n_heads = 8;     ///< attention heads N_h
  int n_levels = 4;    ///< feature pyramid levels N_l
  int n_points = 4;    ///< sampling points per level N_p
  int n_layers = 6;    ///< encoder MSDeformAttn blocks
  std::vector<LevelShape> levels;  ///< per-level fmap shapes, fine -> coarse

  /// COCO AP of the unmodified fp32 model, as reported in the paper's
  /// Fig. 6(a); consumed by the accuracy proxy (src/accuracy).
  double baseline_ap = 0.0;

  /// Workload seed so each benchmark sees a distinct synthetic scene.
  std::uint64_t seed = 0;

  // ---- Derived quantities -------------------------------------------------

  [[nodiscard]] int d_head() const noexcept { return d_model / n_heads; }
  /// Sampling points per query per head (N_l * N_p).
  [[nodiscard]] int points_per_head() const noexcept { return n_levels * n_points; }
  /// Total flattened token count N_in = sum_l H_l * W_l.
  [[nodiscard]] std::int64_t n_in() const;
  /// Start offset of level `l` within the flattened token axis.
  [[nodiscard]] std::int64_t level_offset(int l) const;
  /// Flattened token index of pixel (y, x) in level `l`.
  [[nodiscard]] std::int64_t flat_index(int l, int y, int x) const;
  /// Level that contains flattened token index `idx`, and its (y, x).
  struct PixelCoord {
    int level = 0;
    int y = 0;
    int x = 0;
  };
  [[nodiscard]] PixelCoord pixel_of(std::int64_t idx) const;

  /// Validate internal consistency (shapes positive, divisibility).
  void validate() const;

  // ---- Benchmark presets --------------------------------------------------

  /// Deformable DETR encoder (ICLR'21), COCO val shapes, baseline AP 46.9.
  [[nodiscard]] static ModelConfig deformable_detr();
  /// DN-DETR encoder (CVPR'22), baseline AP 49.4.
  [[nodiscard]] static ModelConfig dn_detr();
  /// DINO encoder (ICLR'23), baseline AP 50.8.
  [[nodiscard]] static ModelConfig dino();
  /// All three paper benchmarks in paper order.
  [[nodiscard]] static std::vector<ModelConfig> paper_benchmarks();

  /// Tiny configuration for unit tests (runs in microseconds).
  [[nodiscard]] static ModelConfig tiny();
  /// Reduced-resolution configuration for fast integration tests.
  [[nodiscard]] static ModelConfig small();
};

}  // namespace defa
