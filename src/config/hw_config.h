#pragma once

/// \file hw_config.h
/// DEFA microarchitecture configuration: the reconfigurable PE array,
/// banked SRAM, external memory system, bounded sampling ranges and the
/// feature toggles used by the paper's ablations (Figs. 7a/7b).

#include <array>
#include <cstdint>
#include <string>

#include "config/model_config.h"

namespace defa {

inline constexpr int kMaxLevels = 8;

/// How sampling offsets are bounded around the reference point (Sec. 4.1,
/// Fig. 4).  Radii are expressed in pixels of each level's own grid.
struct RangeSpec {
  std::array<int, kMaxLevels> radius_px{};  ///< per-level clamp radius
  int used_levels = 0;

  [[nodiscard]] int radius(int level) const {
    DEFA_CHECK(level >= 0 && level < used_levels, "range level out of bounds");
    return radius_px[static_cast<std::size_t>(level)];
  }

  /// Side length of the SRAM window required for a radius-R bounded range:
  /// fractional sampling at +/-R needs the two pixels straddling each edge.
  [[nodiscard]] static int window_side(int radius_px) { return 2 * radius_px + 2; }

  /// Total bounded-range pixels buffered on chip across levels.
  [[nodiscard]] std::int64_t window_pixels() const;

  /// DEFA's level-wise narrowed ranges (coarser levels need smaller pixel
  /// radii; tuned so the unified alternative costs ~25% extra storage,
  /// matching Sec. 4.1).
  [[nodiscard]] static RangeSpec level_wise_default(int n_levels);
  /// The unified restriction: every level uses the worst-case radius.
  [[nodiscard]] static RangeSpec unified(int n_levels, int radius);
  /// Unified spec derived from a level-wise one (max radius everywhere).
  [[nodiscard]] static RangeSpec unified_from(const RangeSpec& level_wise);
};

/// Which MSGS parallelization the simulator models (Sec. 4.2, Fig. 5).
enum class MsgsParallelism {
  kInterLevel,  ///< 4 concurrent points, one per level; conflict-free banks
  kIntraLevel,  ///< 4 concurrent points of one level; bank conflicts possible
};

/// How activations move between DRAM and the MM datapath.
enum class ActStreaming {
  kStreamOncePerPhase,   ///< weights resident in SRAM, X/Q streamed once
  kRestreamPerColTile,   ///< X/Q re-streamed for every 16-column output tile
};

/// Full hardware parameter set for one DEFA instance.
struct HwConfig {
  // Reconfigurable PE array (MM mode: 16-elem vector x 16x16 tile).
  int pe_lanes = 16;          ///< lanes == output columns per MM step
  int pe_macs_per_lane = 16;  ///< contraction width per cycle
  /// BA mode: the array re-forms into point-units that each finish
  /// `ba_channels_per_cycle` channels of Horner BI + aggregation per cycle.
  int ba_point_units = 4;
  int ba_channels_per_cycle = 16;

  int sram_banks = 16;
  double freq_mhz = 400.0;

  int act_bits = 12;
  int weight_bits = 12;
  int accum_bits = 32;

  RangeSpec ranges;  ///< bounded sampling ranges (defaults set by make_default)

  MsgsParallelism parallelism = MsgsParallelism::kInterLevel;
  ActStreaming act_streaming = ActStreaming::kStreamOncePerPhase;
  bool enable_operator_fusion = true;  ///< fused MSGS+aggregation (Sec. 4.3)
  bool enable_fmap_reuse = true;       ///< sliding-window DRAM reuse (Fig. 4)

  /// Pipeline-restart cycles paid whenever an MSGS group hits >=1 bank
  /// conflict (conflict detection + stall, Sec. 5.3.1).
  int conflict_penalty_cycles = 4;
  /// PE-array reconfiguration cost between MM and BA phases.
  int mode_switch_cycles = 16;

  // External memory system: "a moderate 256GB/s HBM2 ... 1.2 pJ/b" (Sec 5.1.2).
  // A value of 0 means bandwidth-unconstrained (latency model ignores the
  // DRAM roofline; energy still charges every byte) — used to bound the
  // paper's scaling claim from above, see EXPERIMENTS.md Fig. 9.
  double dram_gbps = 256.0;
  double dram_pj_per_bit = 1.2;

  /// Query-parallel tiling used only for the GPU-scale comparison (Fig. 9):
  /// `tiles` identical DEFA tiles share the memory system.
  int tiles = 1;

  // ---- Derived ------------------------------------------------------------

  [[nodiscard]] int total_macs() const noexcept { return pe_lanes * pe_macs_per_lane; }
  /// Dense peak throughput in GOPS (1 MAC = 2 ops).
  [[nodiscard]] double peak_gops() const noexcept {
    return 2.0 * total_macs() * freq_mhz * 1e-3 * tiles;
  }
  [[nodiscard]] double cycle_ns() const noexcept { return 1e3 / freq_mhz; }
  /// Bytes of one SRAM fmap word: a pixel's per-head channel slice.
  [[nodiscard]] int sram_word_bytes(const ModelConfig& m) const noexcept {
    return (m.d_head() * act_bits + 7) / 8;
  }
  [[nodiscard]] double bytes_per_act() const noexcept { return act_bits / 8.0; }

  void validate(const ModelConfig& m) const;

  /// Default DEFA configuration for a model (sets ranges for its levels).
  [[nodiscard]] static HwConfig make_default(const ModelConfig& m);
};

}  // namespace defa
