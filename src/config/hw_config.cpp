#include "config/hw_config.h"

#include <algorithm>

namespace defa {

std::int64_t RangeSpec::window_pixels() const {
  std::int64_t total = 0;
  for (int l = 0; l < used_levels; ++l) {
    const std::int64_t side = window_side(radius(l));
    total += side * side;
  }
  return total;
}

RangeSpec RangeSpec::level_wise_default(int n_levels) {
  DEFA_CHECK(n_levels >= 1 && n_levels <= kMaxLevels, "bad level count");
  RangeSpec spec;
  spec.used_levels = n_levels;
  // Fine levels keep the full radius; coarse levels narrow.  With 4 levels
  // {8,8,6,6} the unified alternative {8,8,8,8} costs +24.6% storage,
  // reproducing the ~25% figure in Sec. 4.1.
  constexpr std::array<int, 4> kDefault{8, 8, 6, 6};
  for (int l = 0; l < n_levels; ++l) {
    spec.radius_px[static_cast<std::size_t>(l)] =
        l < 4 ? kDefault[static_cast<std::size_t>(l)] : kDefault.back();
  }
  return spec;
}

RangeSpec RangeSpec::unified(int n_levels, int radius) {
  DEFA_CHECK(n_levels >= 1 && n_levels <= kMaxLevels, "bad level count");
  DEFA_CHECK(radius >= 1, "radius must be positive");
  RangeSpec spec;
  spec.used_levels = n_levels;
  spec.radius_px.fill(radius);
  return spec;
}

RangeSpec RangeSpec::unified_from(const RangeSpec& level_wise) {
  int max_r = 1;
  for (int l = 0; l < level_wise.used_levels; ++l) {
    max_r = std::max(max_r, level_wise.radius(l));
  }
  return unified(level_wise.used_levels, max_r);
}

void HwConfig::validate(const ModelConfig& m) const {
  DEFA_CHECK(pe_lanes > 0 && pe_macs_per_lane > 0, "PE array must be non-empty");
  DEFA_CHECK(sram_banks >= 4 * m.n_levels || parallelism == MsgsParallelism::kIntraLevel,
             "inter-level parallelism needs 4 banks per level");
  DEFA_CHECK(ba_point_units > 0 && ba_channels_per_cycle > 0, "BA mode shape");
  DEFA_CHECK(act_bits > 0 && act_bits <= 16 && weight_bits > 0 && weight_bits <= 16,
             "precision must fit int16 containers");
  DEFA_CHECK(ranges.used_levels == m.n_levels, "range spec level count mismatch");
  DEFA_CHECK(freq_mhz > 0 && dram_gbps >= 0 && dram_pj_per_bit >= 0, "memory system");
  DEFA_CHECK(tiles >= 1, "tiles must be >= 1");
  DEFA_CHECK(conflict_penalty_cycles >= 0 && mode_switch_cycles >= 0, "penalties");
  DEFA_CHECK(m.n_points % ba_point_units == 0 || m.n_points <= ba_point_units,
             "BA grouping assumes n_points groups map to point units");
}

HwConfig HwConfig::make_default(const ModelConfig& m) {
  HwConfig hw;
  hw.ranges = RangeSpec::level_wise_default(m.n_levels);
  hw.validate(m);
  return hw;
}

}  // namespace defa
