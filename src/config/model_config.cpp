#include "config/model_config.h"

namespace defa {

std::int64_t ModelConfig::n_in() const {
  std::int64_t n = 0;
  for (const auto& lv : levels) n += lv.numel();
  return n;
}

std::int64_t ModelConfig::level_offset(int l) const {
  DEFA_CHECK(l >= 0 && l < static_cast<int>(levels.size()), "level out of range");
  std::int64_t off = 0;
  for (int i = 0; i < l; ++i) off += levels[static_cast<std::size_t>(i)].numel();
  return off;
}

std::int64_t ModelConfig::flat_index(int l, int y, int x) const {
  const auto& lv = levels[static_cast<std::size_t>(l)];
  DEFA_DCHECK(y >= 0 && y < lv.h && x >= 0 && x < lv.w, "pixel out of range");
  return level_offset(l) + static_cast<std::int64_t>(y) * lv.w + x;
}

ModelConfig::PixelCoord ModelConfig::pixel_of(std::int64_t idx) const {
  DEFA_CHECK(idx >= 0 && idx < n_in(), "token index out of range");
  for (int l = 0; l < static_cast<int>(levels.size()); ++l) {
    const auto& lv = levels[static_cast<std::size_t>(l)];
    if (idx < lv.numel()) {
      return PixelCoord{l, static_cast<int>(idx / lv.w), static_cast<int>(idx % lv.w)};
    }
    idx -= lv.numel();
  }
  DEFA_CHECK(false, "unreachable");
  return {};
}

void ModelConfig::validate() const {
  DEFA_CHECK(d_model > 0 && n_heads > 0 && n_levels > 0 && n_points > 0 && n_layers > 0,
             "all model dimensions must be positive");
  DEFA_CHECK(d_model % n_heads == 0, "d_model must divide evenly into heads");
  DEFA_CHECK(static_cast<int>(levels.size()) == n_levels,
             "levels vector must have n_levels entries");
  for (const auto& lv : levels) {
    DEFA_CHECK(lv.h > 0 && lv.w > 0, "level shape must be positive");
  }
  // Fine-to-coarse ordering is assumed by the range-narrowing logic.
  for (std::size_t l = 1; l < levels.size(); ++l) {
    DEFA_CHECK(levels[l].numel() <= levels[l - 1].numel(),
               "levels must be ordered fine to coarse");
  }
}

namespace {

/// Build a 4-level pyramid from the stride-8 (level-0) grid, halving
/// (rounding up) per level — the shape a ResNet+FPN backbone produces for
/// MSDeformAttn (strides 8/16/32/64).
std::vector<LevelShape> pyramid4(int h0, int w0) {
  std::vector<LevelShape> lv;
  int h = h0, w = w0;
  for (int l = 0; l < 4; ++l) {
    lv.push_back(LevelShape{h, w});
    h = (h + 1) / 2;
    w = (w + 1) / 2;
  }
  return lv;
}

}  // namespace

ModelConfig ModelConfig::deformable_detr() {
  ModelConfig m;
  m.name = "De DETR";
  m.levels = pyramid4(100, 134);  // 800x1066 input, stride 8
  m.baseline_ap = 46.9;
  m.seed = 2024'0001;
  m.validate();
  return m;
}

ModelConfig ModelConfig::dn_detr() {
  ModelConfig m;
  m.name = "DN-DETR";
  m.levels = pyramid4(96, 128);  // 768x1024 input, stride 8
  m.baseline_ap = 49.4;
  m.seed = 2024'0002;
  m.validate();
  return m;
}

ModelConfig ModelConfig::dino() {
  ModelConfig m;
  m.name = "DINO";
  m.levels = pyramid4(104, 140);  // 832x1120 input, stride 8
  m.baseline_ap = 50.8;
  m.seed = 2024'0003;
  m.validate();
  return m;
}

std::vector<ModelConfig> ModelConfig::paper_benchmarks() {
  return {deformable_detr(), dn_detr(), dino()};
}

ModelConfig ModelConfig::tiny() {
  ModelConfig m;
  m.name = "tiny";
  m.d_model = 16;
  m.n_heads = 2;
  m.n_levels = 2;
  m.n_points = 2;
  m.n_layers = 2;
  m.levels = {LevelShape{8, 10}, LevelShape{4, 5}};
  m.baseline_ap = 40.0;
  m.seed = 7;
  m.validate();
  return m;
}

ModelConfig ModelConfig::small() {
  ModelConfig m;
  m.name = "small";
  m.levels = pyramid4(32, 40);
  m.n_layers = 3;
  m.baseline_ap = 45.0;
  m.seed = 11;
  m.validate();
  return m;
}

}  // namespace defa
