#pragma once

/// \file phase_stats.h
/// Per-phase activity counters produced by the cycle-accurate model.
/// Cycles determine latency; the activity counts (MACs, SRAM/DRAM bytes)
/// are consumed by the energy model (src/energy) — the simulator itself is
/// energy-agnostic.

#include <cstdint>
#include <string>
#include <vector>

namespace defa::arch {

/// Activity of one dataflow phase of one MSDeformAttn block.
struct PhaseStats {
  std::string name;
  std::uint64_t cycles = 0;        ///< datapath cycles (excl. DRAM stall)
  std::uint64_t stall_cycles = 0;  ///< extra cycles lost to bank conflicts
  std::uint64_t macs = 0;
  std::uint64_t sram_read_bytes = 0;
  std::uint64_t sram_write_bytes = 0;
  std::uint64_t dram_read_bytes = 0;
  std::uint64_t dram_write_bytes = 0;

  PhaseStats& operator+=(const PhaseStats& o) noexcept;
  [[nodiscard]] std::uint64_t dram_bytes() const noexcept {
    return dram_read_bytes + dram_write_bytes;
  }
};

/// MSGS-specific counters (Fig. 7a instrumentation).
struct MsgsPerf {
  std::uint64_t groups = 0;           ///< 4-point parallel groups issued
  std::uint64_t conflict_groups = 0;  ///< groups that hit >=1 bank conflict
  std::uint64_t fetch_cycles = 0;
  std::uint64_t compute_cycles = 0;
  std::uint64_t total_cycles = 0;  ///< pipelined max(fetch, compute) stream
  std::uint64_t points = 0;        ///< sampling points processed
  std::uint64_t sram_word_reads = 0;

  [[nodiscard]] double points_per_cycle() const noexcept {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(points) / static_cast<double>(total_cycles);
  }

  MsgsPerf& operator+=(const MsgsPerf& o) noexcept;
};

/// One block's simulation result.
struct LayerPerf {
  std::vector<PhaseStats> phases;
  MsgsPerf msgs;

  [[nodiscard]] PhaseStats total() const;
  /// Wall-clock cycles including the per-phase DRAM roofline.  Filled by
  /// the accelerator (depends on tiling and bandwidth).
  std::uint64_t wall_cycles = 0;
};

/// Whole-encoder simulation result.
struct RunPerf {
  std::vector<LayerPerf> layers;

  [[nodiscard]] PhaseStats total() const;
  [[nodiscard]] std::uint64_t wall_cycles() const;
};

}  // namespace defa::arch
