#pragma once

/// \file accelerator.h
/// Top-level DEFA accelerator model (Fig. 3).
///
/// One MSDeformAttn block executes as four phases on the reconfigurable PE
/// array (Sec. 4.1):
///   1. attn-proj  : A = Q W_A        (MM mode) + softmax + PAP mask gen
///   2. offset-proj: dP = Q W_S       (MM mode, PAP-masked output columns)
///   3. value-proj : V = X W_V        (MM mode, FWP-masked input rows)
///   4. msgs+ag    : fused grid-sampling + aggregation (BA mode), with the
///                   sliding-window streamer feeding the 16 fmap banks and
///                   the fmap-mask generator counting sampled frequency.
///
/// MM-mode cycle model: a 16-element activation chunk meets a 16x16 weight
/// tile per cycle (output stationary), so Y = A(N x K) W(K x M) costs
/// N * ceil(K/16) * ceil(M/16) cycles; masked rows/columns are gathered by
/// the compression unit and skip whole rows/tiles.  The BA-mode/MSGS cycle
/// model is simulated per group by MsgsEngine.
///
/// Per-phase wall-clock applies the DRAM roofline:
///   wall = max(compute_cycles / tiles, dram_bytes / dram_bytes_per_cycle)
/// (`tiles` > 1 only in the GPU-scale study, Fig. 9).

#include <span>

#include "arch/msgs_engine.h"
#include "arch/phase_stats.h"
#include "arch/window.h"
#include "config/hw_config.h"
#include "config/model_config.h"
#include "prune/masks.h"
#include "tensor/tensor.h"

namespace defa::arch {

/// Inputs the simulator needs for one block (produced by the functional
/// pipeline so both see identical masks and sampling geometry).
struct LayerTrace {
  const Tensor* locs = nullptr;              ///< (N,H,L,P,2), range-narrowed
  const prune::PointMask* pmask = nullptr;   ///< PAP survivors
  const prune::FmapMask* fmask = nullptr;    ///< FWP mask applied at this block
  const Tensor* ref_norm = nullptr;          ///< (N,2) reference points
};

class DefaAccelerator {
 public:
  DefaAccelerator(const ModelConfig& m, const HwConfig& hw);

  /// Simulate one MSDeformAttn block.
  [[nodiscard]] LayerPerf simulate_layer(const LayerTrace& trace) const;

  /// Simulate a sequence of blocks (one encoder pass).
  [[nodiscard]] RunPerf simulate_run(std::span<const LayerTrace> traces) const;

  [[nodiscard]] const HwConfig& hw() const noexcept { return hw_; }
  [[nodiscard]] const ModelConfig& model() const noexcept { return m_; }

  /// DRAM bytes transferable per datapath cycle.
  [[nodiscard]] double dram_bytes_per_cycle() const noexcept {
    return hw_.dram_gbps * 1e9 / (hw_.freq_mhz * 1e6);
  }

 private:
  [[nodiscard]] PhaseStats phase_attn_proj(const LayerTrace& trace) const;
  [[nodiscard]] PhaseStats phase_softmax(const LayerTrace& trace) const;
  [[nodiscard]] PhaseStats phase_offset_proj(const LayerTrace& trace) const;
  [[nodiscard]] PhaseStats phase_value_proj(const LayerTrace& trace) const;
  [[nodiscard]] PhaseStats phase_msgs(const LayerTrace& trace, MsgsPerf* msgs_out) const;

  [[nodiscard]] std::uint64_t wall_of(const PhaseStats& p) const noexcept;

  ModelConfig m_;
  HwConfig hw_;
  MsgsEngine msgs_engine_;
  WindowStreamer window_;
};

}  // namespace defa::arch
