#include "arch/phase_stats.h"

namespace defa::arch {

PhaseStats& PhaseStats::operator+=(const PhaseStats& o) noexcept {
  cycles += o.cycles;
  stall_cycles += o.stall_cycles;
  macs += o.macs;
  sram_read_bytes += o.sram_read_bytes;
  sram_write_bytes += o.sram_write_bytes;
  dram_read_bytes += o.dram_read_bytes;
  dram_write_bytes += o.dram_write_bytes;
  return *this;
}

MsgsPerf& MsgsPerf::operator+=(const MsgsPerf& o) noexcept {
  groups += o.groups;
  conflict_groups += o.conflict_groups;
  fetch_cycles += o.fetch_cycles;
  compute_cycles += o.compute_cycles;
  total_cycles += o.total_cycles;
  points += o.points;
  sram_word_reads += o.sram_word_reads;
  return *this;
}

PhaseStats LayerPerf::total() const {
  PhaseStats t;
  t.name = "layer-total";
  for (const auto& p : phases) t += p;
  return t;
}

PhaseStats RunPerf::total() const {
  PhaseStats t;
  t.name = "run-total";
  for (const auto& l : layers) t += l.total();
  return t;
}

std::uint64_t RunPerf::wall_cycles() const {
  std::uint64_t c = 0;
  for (const auto& l : layers) c += l.wall_cycles;
  return c;
}

}  // namespace defa::arch
