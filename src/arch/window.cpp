#include "arch/window.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace defa::arch {

namespace {

/// Inclusive-rectangle kept-pixel counting over one level's mask grid.
class KeptPrefix {
 public:
  KeptPrefix(const ModelConfig& m, const prune::FmapMask& fmask, int level)
      : h_(m.levels[static_cast<std::size_t>(level)].h),
        w_(m.levels[static_cast<std::size_t>(level)].w),
        sum_(static_cast<std::size_t>((h_ + 1) * (w_ + 1)), 0) {
    const std::int64_t base = m.level_offset(level);
    for (int y = 0; y < h_; ++y) {
      for (int x = 0; x < w_; ++x) {
        const int kept = fmask.keep(base + static_cast<std::int64_t>(y) * w_ + x) ? 1 : 0;
        at(y + 1, x + 1) = at(y, x + 1) + at(y + 1, x) - at(y, x) + kept;
      }
    }
  }

  /// Kept pixels in [y0, y1] x [x0, x1], clipped to the grid.
  [[nodiscard]] std::int64_t count(int y0, int x0, int y1, int x1) const noexcept {
    y0 = std::max(y0, 0);
    x0 = std::max(x0, 0);
    y1 = std::min(y1, h_ - 1);
    x1 = std::min(x1, w_ - 1);
    if (y0 > y1 || x0 > x1) return 0;
    return at(y1 + 1, x1 + 1) - at(y0, x1 + 1) - at(y1 + 1, x0) + at(y0, x0);
  }

 private:
  [[nodiscard]] std::int64_t& at(int y, int x) noexcept {
    return sum_[static_cast<std::size_t>(y) * (w_ + 1) + x];
  }
  [[nodiscard]] std::int64_t at(int y, int x) const noexcept {
    return sum_[static_cast<std::size_t>(y) * (w_ + 1) + x];
  }
  int h_, w_;
  std::vector<std::int64_t> sum_;
};

struct Rect {
  int y0 = 0, x0 = 0, y1 = -1, x1 = -1;  // inclusive; empty when y1 < y0
  [[nodiscard]] bool operator==(const Rect&) const = default;
  [[nodiscard]] bool empty() const noexcept { return y1 < y0 || x1 < x0; }
};

[[nodiscard]] Rect intersect(const Rect& a, const Rect& b) noexcept {
  return Rect{std::max(a.y0, b.y0), std::max(a.x0, b.x0), std::min(a.y1, b.y1),
              std::min(a.x1, b.x1)};
}

}  // namespace

WindowStreamer::WindowStreamer(const ModelConfig& m, const HwConfig& hw)
    : m_(m), hw_(hw) {
  hw.validate(m);
}

WindowTraffic WindowStreamer::run(const Tensor& ref_norm, const prune::FmapMask& fmask,
                                  bool reuse) const {
  DEFA_CHECK(ref_norm.rank() == 2 && ref_norm.dim(0) == m_.n_in(), "ref shape");
  const std::int64_t pixel_bytes =
      (static_cast<std::int64_t>(m_.d_model) * hw_.act_bits + 7) / 8;

  std::vector<KeptPrefix> prefix;
  prefix.reserve(static_cast<std::size_t>(m_.n_levels));
  for (int l = 0; l < m_.n_levels; ++l) prefix.emplace_back(m_, fmask, l);

  std::vector<Rect> prev(static_cast<std::size_t>(m_.n_levels));
  WindowTraffic t;

  for (std::int64_t q = 0; q < m_.n_in(); ++q) {
    const float rx = ref_norm(q, 0);
    const float ry = ref_norm(q, 1);
    for (int l = 0; l < m_.n_levels; ++l) {
      const LevelShape& lv = m_.levels[static_cast<std::size_t>(l)];
      const int r = hw_.ranges.radius(l);
      const int cx = static_cast<int>(std::floor(rx * static_cast<float>(lv.w) - 0.5f));
      const int cy = static_cast<int>(std::floor(ry * static_cast<float>(lv.h) - 0.5f));
      // Window covers the neighbors of any point within +/-r of the center.
      const Rect cur{cy - r, cx - r, cy + r + 1, cx + r + 1};
      Rect& last = prev[static_cast<std::size_t>(l)];
      if (cur == last) continue;

      std::int64_t fetched = 0;
      if (reuse && !last.empty()) {
        const Rect overlap = intersect(cur, last);
        fetched = prefix[static_cast<std::size_t>(l)].count(cur.y0, cur.x0, cur.y1, cur.x1) -
                  (overlap.empty()
                       ? 0
                       : prefix[static_cast<std::size_t>(l)].count(overlap.y0, overlap.x0,
                                                                   overlap.y1, overlap.x1));
      } else {
        fetched = prefix[static_cast<std::size_t>(l)].count(cur.y0, cur.x0, cur.y1, cur.x1);
      }
      last = cur;
      t.pixels_fetched += static_cast<std::uint64_t>(fetched);
      t.dram_read_bytes += static_cast<std::uint64_t>(fetched * pixel_bytes);
      t.sram_write_bytes += static_cast<std::uint64_t>(fetched * pixel_bytes);
    }
  }
  return t;
}

}  // namespace defa::arch
