#pragma once

/// \file window.h
/// Sliding bounded-range window streamer (Fig. 4 right).
///
/// During MSGS each query samples inside a bounded range centered on its
/// reference point, one window per pyramid level.  As the reference point
/// rasters across the grid, the window slides; with *fmap reuse* enabled
/// only newly-exposed pixels are fetched from DRAM (and written to the
/// bank SRAM); without it the full window is refetched whenever it moves.
/// FWP-pruned pixels are never fetched (their memory access is eliminated,
/// Sec. 3.1) — counted exactly via per-level prefix sums over the mask.

#include <cstdint>

#include "config/hw_config.h"
#include "config/model_config.h"
#include "prune/masks.h"
#include "tensor/tensor.h"

namespace defa::arch {

struct WindowTraffic {
  std::uint64_t dram_read_bytes = 0;   ///< fmap pixels fetched from DRAM
  std::uint64_t sram_write_bytes = 0;  ///< fetched pixels written to banks
  std::uint64_t pixels_fetched = 0;
};

/// Simulates the per-level window streams over the encoder query sequence.
class WindowStreamer {
 public:
  WindowStreamer(const ModelConfig& m, const HwConfig& hw);

  /// `ref_norm` is the (N, 2) normalized reference-point tensor; `fmask`
  /// the fmap mask applied at this block (all-keep when FWP is off).
  [[nodiscard]] WindowTraffic run(const Tensor& ref_norm, const prune::FmapMask& fmask,
                                  bool reuse) const;

 private:
  ModelConfig m_;  ///< by value; see MsgsEngine note
  HwConfig hw_;
};

}  // namespace defa::arch
