#pragma once

/// \file msgs_engine.h
/// Cycle-accurate model of the fused MSGS + aggregation phase (BA mode).
///
/// The engine walks every (query, head) pair, forms parallel groups of up
/// to 4 surviving sampling points and simulates, group by group, the
/// two-stage pipeline:
///   fetch  — 16 pixel words from 16 SRAM banks; conflict-free in one
///            cycle under inter-level mapping, serialized (plus a
///            pipeline-restart penalty) under intra-level mapping;
///   compute — 4 point-units finish ba_channels_per_cycle channels of
///            Horner BI + aggregation per cycle (ceil(D_h/16) = 2 cycles
///            for the paper's configuration).
/// Steady state costs max(fetch, compute) per group (double-buffered
/// operand registers); the fill/drain of the two-stage pipeline is charged
/// once per layer.
///
/// Grouping policy:
/// * inter-level — group g takes the g-th surviving point of each level;
///   group count per (q,h) = max_l survivors(l).  Partial groups idle some
///   point-units (modeled: they still cost a slot).
/// * intra-level — per level, survivors are chunked into groups of <= 4.

#include "arch/bankmap.h"
#include "arch/phase_stats.h"
#include "config/hw_config.h"
#include "config/model_config.h"
#include "prune/masks.h"
#include "tensor/tensor.h"

namespace defa::arch {

class MsgsEngine {
 public:
  MsgsEngine(const ModelConfig& m, const HwConfig& hw);

  /// Simulate the MSGS stream for the given (possibly pruned) sampling
  /// locations.  `locs` is (N, H, L, P, 2) in per-level pixel coordinates
  /// (already range-narrowed); `pmask` marks PAP survivors.
  [[nodiscard]] MsgsPerf run(const Tensor& locs, const prune::PointMask& pmask) const;

 private:
  // Stored by value: engines are frequently constructed from temporaries
  // (config structs are small), and a dangling reference here would be a
  // silent correctness bug.
  ModelConfig m_;
  HwConfig hw_;
  int compute_cycles_per_group_;
};

}  // namespace defa::arch
