#include "arch/msgs_engine.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/parallel.h"

namespace defa::arch {

MsgsEngine::MsgsEngine(const ModelConfig& m, const HwConfig& hw) : m_(m), hw_(hw) {
  hw.validate(m);
  compute_cycles_per_group_ =
      (m.d_head() + hw.ba_channels_per_cycle - 1) / hw.ba_channels_per_cycle;
}

MsgsPerf MsgsEngine::run(const Tensor& locs, const prune::PointMask& pmask) const {
  DEFA_CHECK(locs.rank() == 5 && locs.dim(0) == m_.n_in(), "locs shape");
  const bool inter = hw_.parallelism == MsgsParallelism::kInterLevel;
  const std::int64_t n = m_.n_in();
  const int nl = m_.n_levels;
  const int np = m_.n_points;

  // Sharded simulation: queries are independent streams; shard results are
  // merged in index order (deterministic).
  const int shards = hardware_threads();
  std::vector<MsgsPerf> partial(static_cast<std::size_t>(shards));
  const std::int64_t chunk = (n + shards - 1) / shards;

  parallel_for(0, shards, [&](std::int64_t s_begin, std::int64_t s_end) {
    for (std::int64_t s = s_begin; s < s_end; ++s) {
      MsgsPerf perf;
      const std::int64_t q_begin = s * chunk;
      const std::int64_t q_end = std::min(n, q_begin + chunk);
      // Surviving point indices per level of the current (q, h).
      std::array<std::array<int, 16>, kMaxLevels> surv{};
      std::array<int, kMaxLevels> n_surv{};
      std::array<BankAccess, 16> accesses{};

      for (std::int64_t q = q_begin; q < q_end; ++q) {
        for (int h = 0; h < m_.n_heads; ++h) {
          int max_surv = 0;
          n_surv.fill(0);
          for (int l = 0; l < nl; ++l) {
            for (int p = 0; p < np; ++p) {
              if (!pmask.keep(q, h, l, p)) continue;
              surv[static_cast<std::size_t>(l)]
                  [static_cast<std::size_t>(n_surv[static_cast<std::size_t>(l)]++)] = p;
            }
            max_surv = std::max(max_surv, n_surv[static_cast<std::size_t>(l)]);
          }
          if (max_surv == 0) continue;

          auto issue_group = [&](int n_acc, int points_in_group) {
            const ConflictReport rep =
                analyze_group(std::span<const BankAccess>(accesses.data(),
                                                          static_cast<std::size_t>(n_acc)),
                              hw_.sram_banks);
            std::uint64_t fetch = static_cast<std::uint64_t>(rep.serialization_cycles);
            if (rep.conflict) {
              // Conflict detection stops the pipeline and the colliding
              // requests replay sequentially (Sec. 5.3.1).
              fetch += static_cast<std::uint64_t>(hw_.conflict_penalty_cycles);
              ++perf.conflict_groups;
            }
            ++perf.groups;
            perf.points += static_cast<std::uint64_t>(points_in_group);
            perf.sram_word_reads += static_cast<std::uint64_t>(n_acc);
            perf.fetch_cycles += fetch;
            perf.compute_cycles += static_cast<std::uint64_t>(compute_cycles_per_group_);
            perf.total_cycles +=
                std::max(fetch, static_cast<std::uint64_t>(compute_cycles_per_group_));
          };

          if (inter) {
            // Group g: the g-th survivor of every level that still has one.
            for (int g = 0; g < max_surv; ++g) {
              int n_acc = 0;
              int pts = 0;
              for (int l = 0; l < nl; ++l) {
                if (g >= n_surv[static_cast<std::size_t>(l)]) continue;
                const int p = surv[static_cast<std::size_t>(l)][static_cast<std::size_t>(g)];
                const nn::BiPoint bp =
                    nn::bi_locate(locs(q, h, l, p, 0), locs(q, h, l, p, 1));
                n_acc += collect_point_accesses(m_, l, bp, /*inter_level=*/true,
                                                accesses, n_acc);
                ++pts;
              }
              if (pts > 0) issue_group(n_acc, pts);
            }
          } else {
            // Intra-level: per level, chunks of up to 4 survivors.
            for (int l = 0; l < nl; ++l) {
              const int count = n_surv[static_cast<std::size_t>(l)];
              for (int base = 0; base < count; base += 4) {
                int n_acc = 0;
                int pts = 0;
                const int end = std::min(base + 4, count);
                for (int i = base; i < end; ++i) {
                  const int p =
                      surv[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
                  const nn::BiPoint bp =
                      nn::bi_locate(locs(q, h, l, p, 0), locs(q, h, l, p, 1));
                  n_acc += collect_point_accesses(m_, l, bp, /*inter_level=*/false,
                                                  accesses, n_acc);
                  ++pts;
                }
                if (pts > 0) issue_group(n_acc, pts);
              }
            }
          }
        }
      }
      partial[static_cast<std::size_t>(s)] = perf;
    }
  }, /*min_parallel=*/1);

  MsgsPerf total;
  for (const MsgsPerf& p : partial) total += p;
  // Two-stage pipeline fill/drain, charged once per stream.
  total.total_cycles += static_cast<std::uint64_t>(compute_cycles_per_group_);
  return total;
}

}  // namespace defa::arch
