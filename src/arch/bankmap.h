#pragma once

/// \file bankmap.h
/// SRAM bank mapping for multi-scale parallel MSGS (Sec. 4.2, Fig. 5).
///
/// The PE array processes 4 sampling points per cycle; each needs its 2x2
/// bilinear neighborhood, i.e. 16 pixel words per cycle from 16 banks.
///
/// * Inter-level mapping (DEFA): each pyramid level owns 4 of the 16 banks;
///   within a level, the 2x2 "neighbor window" at (y, x) maps to bank
///   4*level + 2*(y&1) + (x&1).  A bilinear neighborhood always spans
///   banks {0,1,2,3} of its level's quadruple, and concurrent points come
///   from different levels, so the mapping is conflict-free by construction.
/// * Intra-level mapping (baseline for Fig. 7a): all 16 banks hold one
///   level; pixel (y, x) maps to bank 4*(y&3) + (x&3).  Four concurrent
///   points of the same level can collide (same bank, different address).
///
/// Addresses returned here are word addresses inside a bank; two accesses
/// conflict iff same bank AND different address (same-address reads are a
/// broadcast, served in one cycle).

#include <array>
#include <cstdint>
#include <span>

#include "config/model_config.h"
#include "nn/bilinear.h"

namespace defa::arch {

/// One pixel-word request against the banked fmap SRAM.
struct BankAccess {
  int bank = 0;
  std::int64_t addr = 0;
};

/// Inter-level mapping of pixel (y, x) of `level` (Fig. 5b).
[[nodiscard]] inline BankAccess map_inter_level(const ModelConfig& m, int level, int y,
                                                int x) noexcept {
  const int w = m.levels[static_cast<std::size_t>(level)].w;
  const int bank = 4 * level + 2 * (y & 1) + (x & 1);
  // Word address: position of the 2x2 neighbor window in the level grid.
  const std::int64_t addr =
      static_cast<std::int64_t>(y >> 1) * ((w + 1) / 2) + (x >> 1);
  return BankAccess{bank, addr};
}

/// Intra-level mapping of pixel (y, x) (Fig. 5a); level data fills all banks.
[[nodiscard]] inline BankAccess map_intra_level(const ModelConfig& m, int level, int y,
                                                int x) noexcept {
  const int w = m.levels[static_cast<std::size_t>(level)].w;
  const int bank = 4 * (y & 3) + (x & 3);
  const std::int64_t addr =
      static_cast<std::int64_t>(y >> 2) * ((w + 3) / 4) + (x >> 2);
  return BankAccess{bank, addr};
}

/// Conflict analysis of one parallel access group.
struct ConflictReport {
  int serialization_cycles = 1;  ///< max distinct addresses on one bank
  bool conflict = false;         ///< any bank with >1 distinct address
};

/// Analyze up to 16 concurrent accesses: per bank, distinct addresses must
/// be served serially; identical addresses broadcast.
[[nodiscard]] ConflictReport analyze_group(std::span<const BankAccess> accesses,
                                           int n_banks);

/// Collect the in-bounds neighbor accesses of a sampling point under the
/// given mapping.  Returns the number of accesses appended (0..4).
int collect_point_accesses(const ModelConfig& m, int level, const nn::BiPoint& p,
                           bool inter_level, std::array<BankAccess, 16>& out,
                           int out_pos);

}  // namespace defa::arch
