#include "arch/bankmap.h"

#include <algorithm>

#include "common/check.h"

namespace defa::arch {

ConflictReport analyze_group(std::span<const BankAccess> accesses, int n_banks) {
  DEFA_CHECK(n_banks > 0 && n_banks <= 64, "bank count");
  DEFA_CHECK(accesses.size() <= 16, "a group issues at most 16 accesses");

  // Tiny fixed-size bookkeeping: per bank, the distinct addresses seen.
  std::array<std::array<std::int64_t, 16>, 64> seen{};
  std::array<int, 64> n_seen{};
  n_seen.fill(0);

  ConflictReport report;
  for (const BankAccess& a : accesses) {
    DEFA_DCHECK(a.bank >= 0 && a.bank < n_banks, "bank out of range");
    auto& bank_seen = seen[static_cast<std::size_t>(a.bank)];
    int& n = n_seen[static_cast<std::size_t>(a.bank)];
    bool duplicate = false;
    for (int i = 0; i < n; ++i) {
      if (bank_seen[static_cast<std::size_t>(i)] == a.addr) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      bank_seen[static_cast<std::size_t>(n)] = a.addr;
      ++n;
    }
  }
  int worst = 1;
  for (int b = 0; b < n_banks; ++b) {
    worst = std::max(worst, n_seen[static_cast<std::size_t>(b)]);
  }
  report.serialization_cycles = worst;
  report.conflict = worst > 1;
  return report;
}

int collect_point_accesses(const ModelConfig& m, int level, const nn::BiPoint& p,
                           bool inter_level, std::array<BankAccess, 16>& out,
                           int out_pos) {
  const LevelShape& lv = m.levels[static_cast<std::size_t>(level)];
  int added = 0;
  for (const auto& d : nn::kBiNeighborOffsets) {
    const int x = p.x0 + d[0];
    const int y = p.y0 + d[1];
    if (x < 0 || x >= lv.w || y < 0 || y >= lv.h) continue;  // zero padding
    out[static_cast<std::size_t>(out_pos + added)] =
        inter_level ? map_inter_level(m, level, y, x) : map_intra_level(m, level, y, x);
    ++added;
  }
  return added;
}

}  // namespace defa::arch
