#include "arch/accelerator.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace defa::arch {

namespace {

[[nodiscard]] std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace

DefaAccelerator::DefaAccelerator(const ModelConfig& m, const HwConfig& hw)
    : m_(m), hw_(hw), msgs_engine_(m_, hw_), window_(m_, hw_) {
  hw_.validate(m_);
}

std::uint64_t DefaAccelerator::wall_of(const PhaseStats& p) const noexcept {
  const std::uint64_t compute =
      ceil_div(p.cycles, static_cast<std::uint64_t>(hw_.tiles));
  if (hw_.dram_gbps <= 0.0) return compute;  // bandwidth-unconstrained bound
  const std::uint64_t dram = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(p.dram_bytes()) / dram_bytes_per_cycle()));
  return std::max(compute, dram);
}

PhaseStats DefaAccelerator::phase_attn_proj(const LayerTrace&) const {
  const double bpa = hw_.bytes_per_act();
  const std::uint64_t n = static_cast<std::uint64_t>(m_.n_in());
  const std::uint64_t d = static_cast<std::uint64_t>(m_.d_model);
  const std::uint64_t cols =
      static_cast<std::uint64_t>(m_.n_heads) * m_.points_per_head();
  const std::uint64_t k_chunks = ceil_div(d, static_cast<std::uint64_t>(hw_.pe_macs_per_lane));
  const std::uint64_t col_tiles = ceil_div(cols, static_cast<std::uint64_t>(hw_.pe_lanes));

  PhaseStats p;
  p.name = "attn-proj";
  p.cycles = n * k_chunks * col_tiles;
  p.macs = n * d * cols;
  const std::uint64_t act_stream = static_cast<std::uint64_t>(n * d * bpa);
  p.dram_read_bytes =
      (hw_.act_streaming == ActStreaming::kRestreamPerColTile ? act_stream * col_tiles
                                                              : act_stream) +
      static_cast<std::uint64_t>(d * cols * bpa);  // weights
  // Per MM cycle: one 16-act chunk (broadcast) + one 16x16 weight tile.
  const std::uint64_t act_word = static_cast<std::uint64_t>(hw_.pe_macs_per_lane * bpa);
  const std::uint64_t w_tile =
      static_cast<std::uint64_t>(hw_.pe_lanes * hw_.pe_macs_per_lane * bpa);
  p.sram_read_bytes = p.cycles * (act_word + w_tile);
  p.sram_write_bytes = static_cast<std::uint64_t>(n * cols * bpa);  // logits buffer
  return p;
}

PhaseStats DefaAccelerator::phase_softmax(const LayerTrace& trace) const {
  const double bpa = hw_.bytes_per_act();
  const std::uint64_t n = static_cast<std::uint64_t>(m_.n_in());
  const std::uint64_t heads = static_cast<std::uint64_t>(m_.n_heads);
  const std::uint64_t lp = static_cast<std::uint64_t>(m_.points_per_head());
  const std::uint64_t kept = static_cast<std::uint64_t>(trace.pmask->kept_count());

  PhaseStats p;
  p.name = "softmax+pap";
  p.cycles = n * heads * ceil_div(lp, 16);
  p.sram_read_bytes = static_cast<std::uint64_t>(n * heads * lp * bpa);
  p.sram_write_bytes = static_cast<std::uint64_t>(kept * bpa);
  // Surviving probabilities and the point bitmask round-trip through DRAM
  // (they are consumed again by the BA phase after two full MM phases).
  p.dram_write_bytes =
      static_cast<std::uint64_t>(kept * bpa) + n * heads * lp / 8;
  return p;
}

PhaseStats DefaAccelerator::phase_offset_proj(const LayerTrace& trace) const {
  const double bpa = hw_.bytes_per_act();
  const std::uint64_t n = static_cast<std::uint64_t>(m_.n_in());
  const std::uint64_t d = static_cast<std::uint64_t>(m_.d_model);
  const std::uint64_t k_chunks = ceil_div(d, static_cast<std::uint64_t>(hw_.pe_macs_per_lane));

  // Column tiles per query depend on its surviving point count (the
  // compression unit packs the 2*kept offset columns).
  std::uint64_t cycles = 0;
  std::uint64_t kept_total = 0;
  std::uint64_t col_tiles_total = 0;
  for (std::int64_t q = 0; q < m_.n_in(); ++q) {
    std::uint64_t kept_q = 0;
    for (int h = 0; h < m_.n_heads; ++h) {
      for (int l = 0; l < m_.n_levels; ++l) {
        kept_q += static_cast<std::uint64_t>(trace.pmask->kept_in_level(q, h, l));
      }
    }
    const std::uint64_t tiles =
        ceil_div(2 * kept_q, static_cast<std::uint64_t>(hw_.pe_lanes));
    cycles += tiles * k_chunks;
    col_tiles_total += tiles;
    kept_total += kept_q;
  }

  PhaseStats p;
  p.name = "offset-proj";
  p.cycles = cycles;
  p.macs = kept_total * 2 * d;
  const std::uint64_t act_stream = static_cast<std::uint64_t>(n * d * bpa);
  p.dram_read_bytes =
      (hw_.act_streaming == ActStreaming::kRestreamPerColTile
           ? static_cast<std::uint64_t>(col_tiles_total * d * bpa)
           : act_stream) +
      static_cast<std::uint64_t>(d * 2 * m_.n_heads * m_.points_per_head() * bpa);
  p.dram_write_bytes = static_cast<std::uint64_t>(kept_total * 2 * bpa);
  const std::uint64_t act_word = static_cast<std::uint64_t>(hw_.pe_macs_per_lane * bpa);
  const std::uint64_t w_tile =
      static_cast<std::uint64_t>(hw_.pe_lanes * hw_.pe_macs_per_lane * bpa);
  p.sram_read_bytes = p.cycles * (act_word + w_tile);
  p.sram_write_bytes = static_cast<std::uint64_t>(kept_total * 2 * bpa);
  return p;
}

PhaseStats DefaAccelerator::phase_value_proj(const LayerTrace& trace) const {
  const double bpa = hw_.bytes_per_act();
  const std::uint64_t d = static_cast<std::uint64_t>(m_.d_model);
  const std::uint64_t kept = static_cast<std::uint64_t>(trace.fmask->kept_count());
  const std::uint64_t k_chunks = ceil_div(d, static_cast<std::uint64_t>(hw_.pe_macs_per_lane));
  const std::uint64_t col_tiles = ceil_div(d, static_cast<std::uint64_t>(hw_.pe_lanes));

  PhaseStats p;
  p.name = "value-proj";
  p.cycles = kept * k_chunks * col_tiles;
  p.macs = kept * d * d;
  const std::uint64_t x_stream = static_cast<std::uint64_t>(kept * d * bpa);
  p.dram_read_bytes =
      (hw_.act_streaming == ActStreaming::kRestreamPerColTile ? x_stream * col_tiles
                                                              : x_stream) +
      static_cast<std::uint64_t>(d * d * bpa);
  p.dram_write_bytes = static_cast<std::uint64_t>(kept * d * bpa);  // V to DRAM
  const std::uint64_t act_word = static_cast<std::uint64_t>(hw_.pe_macs_per_lane * bpa);
  const std::uint64_t w_tile =
      static_cast<std::uint64_t>(hw_.pe_lanes * hw_.pe_macs_per_lane * bpa);
  p.sram_read_bytes = p.cycles * (act_word + w_tile);
  p.sram_write_bytes = static_cast<std::uint64_t>(kept * d * bpa);
  return p;
}

PhaseStats DefaAccelerator::phase_msgs(const LayerTrace& trace, MsgsPerf* msgs_out) const {
  const double bpa = hw_.bytes_per_act();
  const std::uint64_t n = static_cast<std::uint64_t>(m_.n_in());
  const std::uint64_t d = static_cast<std::uint64_t>(m_.d_model);
  const std::uint64_t dh = static_cast<std::uint64_t>(m_.d_head());
  const int word_bytes = hw_.sram_word_bytes(m_);

  const MsgsPerf msgs = msgs_engine_.run(*trace.locs, *trace.pmask);
  if (msgs_out != nullptr) *msgs_out = msgs;
  const WindowTraffic wt =
      window_.run(*trace.ref_norm, *trace.fmask, hw_.enable_fmap_reuse);
  const std::uint64_t kept = static_cast<std::uint64_t>(trace.pmask->kept_count());

  PhaseStats p;
  p.name = "msgs+ag";
  p.cycles = msgs.total_cycles;
  const std::uint64_t ideal =
      msgs.groups * ceil_div(dh, static_cast<std::uint64_t>(hw_.ba_channels_per_cycle));
  p.stall_cycles = msgs.total_cycles > ideal ? msgs.total_cycles - ideal : 0;
  // Horner BI (3 multiplies) + aggregation multiply, per channel per point.
  p.macs = msgs.points * dh * 4;

  // SRAM: 16-bank fmap fetches, probability/offset operand reads, output
  // accumulation writes, and the sampled-frequency counters of FWP.
  p.sram_read_bytes = msgs.sram_word_reads * static_cast<std::uint64_t>(word_bytes) +
                      static_cast<std::uint64_t>(kept * 3 * bpa);
  p.sram_write_bytes = wt.sram_write_bytes + static_cast<std::uint64_t>(n * d * bpa);
  // FWP frequency counters: 4 read-modify-write per surviving point (2B).
  p.sram_read_bytes += kept * 4 * 2;
  p.sram_write_bytes += kept * 4 * 2 + n / 8;

  // DRAM: window streams in, surviving probs/offsets back in, output out.
  p.dram_read_bytes = wt.dram_read_bytes + static_cast<std::uint64_t>(kept * 3 * bpa);
  p.dram_write_bytes = static_cast<std::uint64_t>(n * d * bpa);

  if (!hw_.enable_operator_fusion) {
    // Without fusion the sampling values leave the chip after BI and are
    // read back for a separate aggregation pass (Sec. 5.3.2).
    const std::uint64_t value_bytes = static_cast<std::uint64_t>(kept * dh * bpa);
    p.dram_write_bytes += value_bytes;
    p.dram_read_bytes += value_bytes +
                         static_cast<std::uint64_t>(kept * bpa);  // probs again
    p.sram_write_bytes += 2 * value_bytes;  // staging out + staging in
    p.sram_read_bytes += 2 * value_bytes;
    // Separate aggregation pass on the PE array (1 MAC/channel/point).
    p.cycles += ceil_div(kept * dh, static_cast<std::uint64_t>(hw_.total_macs()));
  }
  return p;
}

LayerPerf DefaAccelerator::simulate_layer(const LayerTrace& trace) const {
  DEFA_CHECK(trace.locs != nullptr && trace.pmask != nullptr && trace.fmask != nullptr &&
                 trace.ref_norm != nullptr,
             "incomplete layer trace");
  LayerPerf perf;
  perf.phases.push_back(phase_attn_proj(trace));
  perf.phases.push_back(phase_softmax(trace));
  perf.phases.push_back(phase_offset_proj(trace));
  perf.phases.push_back(phase_value_proj(trace));
  perf.phases.push_back(phase_msgs(trace, &perf.msgs));

  std::uint64_t wall = 0;
  for (const PhaseStats& p : perf.phases) wall += wall_of(p);
  // Two reconfigurations per block: MM -> BA and back.
  wall += 2 * static_cast<std::uint64_t>(hw_.mode_switch_cycles);
  perf.wall_cycles = wall;
  return perf;
}

RunPerf DefaAccelerator::simulate_run(std::span<const LayerTrace> traces) const {
  RunPerf run;
  run.layers.reserve(traces.size());
  for (const LayerTrace& t : traces) run.layers.push_back(simulate_layer(t));
  return run;
}

}  // namespace defa::arch
