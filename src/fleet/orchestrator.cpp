#include "fleet/orchestrator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include <sys/wait.h>
#include <fcntl.h>
#include <unistd.h>

#include "api/engine.h"
#include "api/run_meta.h"
#include "client/pool.h"
#include "common/check.h"
#include "fleet/hash_ring.h"
#include "kernels/backend.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "serve/scenario.h"

namespace defa::fleet {

namespace {

void check_keys(const api::Json& j, const std::set<std::string>& allowed,
                const std::string& where) {
  for (const auto& [key, value] : j.members()) {
    DEFA_CHECK(allowed.count(key) > 0,
               "fleet config: unknown key '" + key + "' in " + where);
  }
}

ChaosSpec parse_chaos(const api::Json& j) {
  DEFA_CHECK(j.is_object(), "fleet config: 'chaos' must be an object");
  check_keys(j, {"mode", "shard", "after_fraction"}, "'chaos'");
  ChaosSpec chaos;
  chaos.enabled = true;
  if (const api::Json* v = j.find("mode")) {
    chaos.mode = v->as_string();
    DEFA_CHECK(chaos.mode == "kill" || chaos.mode == "drain",
               "fleet config: chaos mode '" + chaos.mode + "' (kill|drain)");
  }
  if (const api::Json* v = j.find("shard")) {
    chaos.shard = static_cast<int>(v->as_int());
    DEFA_CHECK(chaos.shard >= -1, "fleet config: chaos 'shard' must be >= -1");
  }
  if (const api::Json* v = j.find("after_fraction")) {
    chaos.after_fraction = v->as_number();
    DEFA_CHECK(chaos.after_fraction > 0 && chaos.after_fraction < 1,
               "fleet config: chaos 'after_fraction' must be in (0, 1)");
  }
  return chaos;
}

// ------------------------------------------------------------ shard processes

struct ShardProc {
  int id = 0;
  pid_t pid = -1;
  int port = 0;
  std::string name;
  std::string endpoint;
  std::string port_file;
  std::string trace_file;  ///< set (and passed as --trace-out) when tracing
};

/// argv for one shard: every server option crosses as a defa_serve flag so
/// a fleet shard is exactly a hand-started server (debuggable in
/// isolation).
std::vector<std::string> shard_argv(const std::string& serve_bin,
                                    const FleetConfig& config, int shard_id,
                                    int shard_count,
                                    const std::string& port_file,
                                    const std::string& trace_file) {
  const serve::ServerOptions& so = config.load.server;
  std::vector<std::string> argv = {
      serve_bin,
      "--listen", "0",
      "--port-file", port_file,
      "--shard-id", std::to_string(shard_id),
      "--shard-count", std::to_string(shard_count),
      "--shard-name", "shard" + std::to_string(shard_id),
      "--virtual-nodes", std::to_string(config.virtual_nodes),
      "--queue-capacity", std::to_string(so.queue_capacity),
      "--policy", serve::policy_name(so.policy),
      "--locality-window", std::to_string(so.locality_window),
      "--max-contexts", std::to_string(so.engine.max_contexts),
      "--max-memo", std::to_string(so.engine.max_memo),
  };
  if (so.max_concurrency > 0) {
    argv.emplace_back("--workers");
    argv.emplace_back(std::to_string(so.max_concurrency));
  }
  if (!so.engine.backend.empty()) {
    argv.emplace_back("--backend");
    argv.emplace_back(so.engine.backend);
  }
  if (!so.engine.memoize_results) argv.emplace_back("--no-memo");
  if (!trace_file.empty()) {
    argv.emplace_back("--trace-out");  // implies --trace on the shard
    argv.emplace_back(trace_file);
  }
  return argv;
}

pid_t spawn_process(const std::vector<std::string>& argv, bool quiet) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  DEFA_CHECK(pid >= 0, "fleet: fork() failed");
  if (pid == 0) {
    if (quiet) {
      const int null_fd = ::open("/dev/null", O_WRONLY);
      if (null_fd >= 0) {
        ::dup2(null_fd, STDERR_FILENO);
        ::close(null_fd);
      }
    }
    ::execv(cargv[0], cargv.data());
    std::perror("defa_fleet: execv");
    ::_exit(127);
  }
  return pid;
}

/// Poll `port_file` until the shard has written its ephemeral port.
/// Detects a shard that died before binding (waitpid WNOHANG), so a bad
/// flag fails the run in milliseconds instead of eating the full timeout.
int await_port(ShardProc& shard, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream pf(shard.port_file);
    int port = 0;
    if (pf.good() && (pf >> port) && port > 0) return port;
    int status = 0;
    if (::waitpid(shard.pid, &status, WNOHANG) == shard.pid) {
      shard.pid = -1;  // already reaped
      DEFA_CHECK(false, "fleet: shard " + std::to_string(shard.id) +
                            " exited before binding its port");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  DEFA_CHECK(false, "fleet: shard " + std::to_string(shard.id) +
                        " did not write its port within " +
                        std::to_string(timeout_ms) + " ms");
  return 0;  // unreachable
}

void kill_and_reap(std::vector<ShardProc>& shards) {
  for (ShardProc& s : shards) {
    if (s.pid > 0) ::kill(s.pid, SIGKILL);
  }
  for (ShardProc& s : shards) {
    if (s.pid > 0) {
      ::waitpid(s.pid, nullptr, 0);
      s.pid = -1;
    }
  }
}

/// Wait for voluntary exits after a drain; SIGKILL whatever remains.
void reap_gracefully(std::vector<ShardProc>& shards, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  bool all_done = false;
  while (!all_done && std::chrono::steady_clock::now() < deadline) {
    all_done = true;
    for (ShardProc& s : shards) {
      if (s.pid <= 0) continue;
      if (::waitpid(s.pid, nullptr, WNOHANG) == s.pid) {
        s.pid = -1;
      } else {
        all_done = false;
      }
    }
    if (!all_done) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  kill_and_reap(shards);
}

void cleanup_dir(const std::vector<ShardProc>& shards, const std::string& dir) {
  for (const ShardProc& s : shards) {
    std::remove(s.port_file.c_str());
    if (!s.trace_file.empty()) std::remove(s.trace_file.c_str());
  }
  ::rmdir(dir.c_str());
}

/// Merge the shards' trace dumps (written at their exit) with this
/// process's own client-side spans into one timeline: shard lanes get
/// shard-qualified pids, the orchestrator lane is pid 0.
void merge_fleet_trace(const std::vector<ShardProc>& shards,
                       const std::string& trace_out, bool quiet) {
  std::vector<obs::TraceProcess> lanes;
  obs::TraceProcess own;
  own.pid = 0;
  own.name = "defa_fleet client";
  own.events =
      obs::trace_events_json(obs::Tracer::instance().collect(), 0, own.name);
  lanes.push_back(std::move(own));
  for (const ShardProc& s : shards) {
    try {
      obs::TraceProcess lane;
      lane.pid = s.id + 1;
      lane.name = "defa_serve " + s.name;
      lane.events = api::read_json_file(s.trace_file);
      lanes.push_back(std::move(lane));
    } catch (const std::exception&) {
      // A chaos-killed shard never wrote its dump; its lane is absent.
      if (!quiet) {
        std::cerr << "defa_fleet: no trace dump from " << s.name
                  << " (killed?)\n";
      }
    }
  }
  obs::write_trace_file(trace_out, obs::merge_trace_processes(lanes));
  if (!quiet) {
    std::cerr << "defa_fleet: wrote merged trace (" << lanes.size()
              << " process lane(s)) to " << trace_out << "\n";
  }
}

// ------------------------------------------------------------------- one run

FleetRunReport run_one(const FleetConfig& config, int shard_count,
                       bool chaos_enabled, bool verify_enabled,
                       const OrchestratorOptions& options,
                       const std::string& trace_out) {
  DEFA_CHECK(shard_count >= 1, "fleet: shard count must be >= 1");
  const int total_requests = config.load.requests;
  ChaosSpec chaos = config.chaos;
  chaos.enabled = chaos.enabled && chaos_enabled;
  if (chaos.enabled) {
    DEFA_CHECK(shard_count >= 2, "fleet: chaos needs at least 2 shards");
    DEFA_CHECK(chaos.shard < shard_count,
               "fleet: chaos shard " + std::to_string(chaos.shard) +
                   " out of range for " + std::to_string(shard_count) +
                   " shards");
  }

  // --- spawn ---------------------------------------------------------------
  char dir_template[] = "/tmp/defa_fleetXXXXXX";
  DEFA_CHECK(::mkdtemp(dir_template) != nullptr, "fleet: mkdtemp failed");
  const std::string dir = dir_template;

  std::vector<ShardProc> shards(static_cast<std::size_t>(shard_count));
  try {
    for (int i = 0; i < shard_count; ++i) {
      ShardProc& s = shards[static_cast<std::size_t>(i)];
      s.id = i;
      s.name = "shard" + std::to_string(i);
      s.port_file = dir + "/port" + std::to_string(i);
      if (!trace_out.empty()) {
        s.trace_file = dir + "/trace" + std::to_string(i) + ".json";
      }
      s.pid = spawn_process(shard_argv(options.serve_bin, config, i,
                                       shard_count, s.port_file, s.trace_file),
                            options.quiet);
    }
    for (ShardProc& s : shards) {
      s.port = await_port(s, options.spawn_timeout_ms);
      s.endpoint = "127.0.0.1:" + std::to_string(s.port);
    }
  } catch (...) {
    kill_and_reap(shards);
    cleanup_dir(shards, dir);
    throw;
  }

  FleetRunReport run;
  run.shard_count = shard_count;
  try {
    // --- connect + health check -------------------------------------------
    std::vector<std::string> endpoints;
    endpoints.reserve(shards.size());
    for (const ShardProc& s : shards) endpoints.push_back(s.endpoint);
    client::PoolOptions pool_options;
    pool_options.virtual_nodes = config.virtual_nodes;
    pool_options.client = options.client;
    client::Pool pool(endpoints, pool_options);
    DEFA_CHECK(pool.wait_connected(options.spawn_timeout_ms),
               "fleet: not every shard became reachable");
    for (const ShardProc& s : shards) {
      const api::Json info =
          pool.call_shard(static_cast<std::size_t>(s.id), "shard_info");
      DEFA_CHECK(info.at("shard").at("id").as_int() == s.id,
                 "fleet: shard " + std::to_string(s.id) +
                     " reports the wrong identity");
    }
    if (!options.quiet) {
      std::cerr << "defa_fleet: " << shard_count << " shard(s) up\n";
    }

    // --- drive load through the pool --------------------------------------
    const std::uint64_t trigger_at =
        chaos.enabled
            ? std::max<std::uint64_t>(
                  1, static_cast<std::uint64_t>(chaos.after_fraction *
                                                total_requests))
            : 0;
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> responses{0};
    std::atomic<std::uint64_t> transport_errors{0};
    std::atomic<std::uint64_t> shutdown_rejects{0};
    std::atomic<bool> chaos_fired{false};
    std::thread chaos_thread;
    std::optional<serve::MetricsSnapshot> drained_metrics;
    // A configured shard id is taken as-is; -1 ("auto") resolves at trigger
    // time to the shard that has routed the most traffic so far — killing
    // an idle shard would prove nothing about failover.
    std::atomic<int> chaos_victim{chaos.shard};

    serve::LoadTarget target;
    target.transport = "fleet";
    target.policy = serve::policy_name(config.load.server.policy);
    target.backend = config.load.server.engine.backend.empty()
                         ? kernels::default_backend_name()
                         : config.load.server.engine.backend;
    target.submit = [&](serve::ServeRequest req) {
      const std::uint64_t n = submitted.fetch_add(1) + 1;
      if (chaos.enabled && n == trigger_at && !chaos_fired.exchange(true)) {
        chaos_thread = std::thread([&] {
          int v = chaos_victim.load();
          if (v < 0) {
            const std::vector<client::PoolShardStats> s = pool.stats();
            std::uint64_t best = 0;
            v = 0;
            for (std::size_t i = 0; i < s.size(); ++i) {
              if (s[i].routed > best) {
                best = s[i].routed;
                v = static_cast<int>(i);
              }
            }
            chaos_victim.store(v);
          }
          const ShardProc& victim = shards[static_cast<std::size_t>(v)];
          if (chaos.mode == "kill") {
            ::kill(victim.pid, SIGKILL);
          } else {
            try {
              client::Client c = client::Client::connect(victim.endpoint);
              const api::Json r = c.drain();
              drained_metrics =
                  serve::MetricsSnapshot::from_json(r.at("metrics"));
            } catch (const std::exception&) {
              // The drain response can be lost to the closing socket; the
              // shard still drains and the run still proves failover.
            }
          }
        });
      }
      auto promise = std::make_shared<std::promise<serve::ServeResponse>>();
      std::future<serve::ServeResponse> future = promise->get_future();
      pool.submit_async(std::move(req),
                        [&, promise](const serve::ServeResponse& resp) {
                          responses.fetch_add(1);
                          if (resp.error_code == "transport") {
                            transport_errors.fetch_add(1);
                          }
                          if (resp.status ==
                              serve::ResponseStatus::kRejectedShutdown) {
                            shutdown_rejects.fetch_add(1);
                          }
                          promise->set_value(resp);
                        });
      return future;
    };
    // Called once, after every submitted future resolved — safe to join the
    // chaos thread and take the final per-shard snapshots here.
    std::vector<std::optional<serve::MetricsSnapshot>> shard_metrics;
    target.metrics = [&]() {
      if (chaos_thread.joinable()) chaos_thread.join();
      shard_metrics = pool.metrics_all();
      const int drained_shard = chaos_victim.load();
      if (chaos.enabled && drained_shard >= 0 && drained_metrics.has_value()) {
        shard_metrics[static_cast<std::size_t>(drained_shard)] = drained_metrics;
      }
      std::vector<serve::MetricsSnapshot> parts;
      for (const auto& m : shard_metrics) {
        if (m.has_value()) parts.push_back(*m);
      }
      return serve::merge_snapshots(parts);
    };

    run.load = serve::run_loadgen_against(config.load, target);
    if (chaos_thread.joinable()) chaos_thread.join();
    run.failovers = pool.failovers();

    run.chaos.enabled = chaos.enabled;
    run.chaos.triggered = chaos_fired.load();
    run.chaos.mode = chaos.enabled ? chaos.mode : "";
    run.chaos.shard = chaos.enabled ? chaos_victim.load() : -1;
    run.chaos.at_request = static_cast<int>(trigger_at);
    run.chaos.submitted = submitted.load();
    run.chaos.responses = responses.load();
    run.chaos.lost = static_cast<std::int64_t>(submitted.load()) -
                     static_cast<std::int64_t>(responses.load());
    run.chaos.transport_errors = transport_errors.load();
    run.chaos.shutdown_rejects = shutdown_rejects.load();

    // --- bit-identity spot check vs an in-process Engine -------------------
    run.verify.enabled = verify_enabled;
    if (verify_enabled) {
      api::Engine engine(config.load.server.engine);
      const std::vector<serve::Scenario> mix = config.load.scenarios.empty()
                                                   ? serve::smoke_mix()
                                                   : config.load.scenarios;
      for (const serve::Scenario& s : mix) {
        const api::EvalResult local = engine.run(s.request);
        try {
          const api::EvalResult remote = pool.eval(s.request);
          ++run.verify.checked;
          if (!(remote == local)) ++run.verify.mismatches;
        } catch (const std::exception& e) {
          ++run.verify.checked;
          ++run.verify.mismatches;
          if (!options.quiet) {
            std::cerr << "defa_fleet: verify '" << s.name
                      << "' failed: " << e.what() << "\n";
          }
        }
      }
    }

    // --- per-shard breakdowns ----------------------------------------------
    const std::vector<client::PoolShardStats> stats = pool.stats();
    const int chaos_shard = chaos_victim.load();
    for (const ShardProc& s : shards) {
      ShardReport sr;
      sr.id = s.id;
      sr.name = s.name;
      sr.endpoint = s.endpoint;
      sr.killed = chaos.enabled && chaos.mode == "kill" &&
                  s.id == chaos_shard && run.chaos.triggered;
      sr.drained = chaos.enabled && chaos.mode == "drain" &&
                   s.id == chaos_shard && run.chaos.triggered;
      sr.routed = stats[static_cast<std::size_t>(s.id)].routed;
      sr.reconnects = stats[static_cast<std::size_t>(s.id)].reconnects;
      if (static_cast<std::size_t>(s.id) < shard_metrics.size()) {
        sr.metrics = shard_metrics[static_cast<std::size_t>(s.id)];
      }
      run.shards.push_back(std::move(sr));
    }

    // --- graceful teardown -------------------------------------------------
    pool.drain_all();
  } catch (...) {
    kill_and_reap(shards);
    cleanup_dir(shards, dir);
    throw;
  }
  // Pool destroyed; shards saw their drain (or died under chaos) — give
  // them a moment to exit on their own before forcing it.  A shard's
  // trace dump is written as it exits, so the merge must come after.
  reap_gracefully(shards, 5000);
  if (!trace_out.empty()) {
    try {
      merge_fleet_trace(shards, trace_out, options.quiet);
    } catch (const std::exception& e) {
      std::cerr << "defa_fleet: trace merge failed: " << e.what() << "\n";
    }
  }
  cleanup_dir(shards, dir);
  return run;
}

}  // namespace

// ------------------------------------------------------------------- parsing

FleetConfig fleet_config_from_json(const api::Json& j) {
  DEFA_CHECK(j.is_object(), "fleet config: root must be an object");
  check_keys(j,
             {"name", "shards", "virtual_nodes", "server", "load",
              "shard_sweep", "chaos", "verify"},
             "the fleet config");
  FleetConfig config;
  if (const api::Json* v = j.find("name")) config.name = v->as_string();
  if (const api::Json* v = j.find("shards")) {
    config.shards = static_cast<int>(v->as_int());
    DEFA_CHECK(config.shards >= 1, "fleet config: 'shards' must be >= 1");
  }
  if (const api::Json* v = j.find("virtual_nodes")) {
    config.virtual_nodes = static_cast<int>(v->as_int());
    DEFA_CHECK(config.virtual_nodes >= 1,
               "fleet config: 'virtual_nodes' must be >= 1");
  }

  // The load + server blocks reuse the scenario-file parser: reassemble a
  // scenario file from the fleet keys so validation (and any future keys)
  // stays in one place.
  const api::Json* load = j.find("load");
  DEFA_CHECK(load != nullptr && load->is_object(),
             "fleet config: 'load' object is required");
  check_keys(*load, {"requests", "seed", "timeout_ms", "arrival", "scenarios"},
             "'load'");
  api::Json scenario_json = *load;
  if (const api::Json* server = j.find("server")) {
    scenario_json["server"] = *server;
  }
  config.load = serve::scenario_file_from_json(scenario_json).base;

  if (const api::Json* v = j.find("shard_sweep")) {
    DEFA_CHECK(v->is_array(), "fleet config: 'shard_sweep' must be an array");
    for (const api::Json& n : v->items()) {
      const int count = static_cast<int>(n.as_int());
      DEFA_CHECK(count >= 1, "fleet config: shard_sweep entries must be >= 1");
      config.shard_sweep.push_back(count);
    }
  }
  if (const api::Json* v = j.find("chaos")) config.chaos = parse_chaos(*v);
  if (const api::Json* v = j.find("verify")) config.verify = v->as_bool();
  return config;
}

FleetConfig load_fleet_config(const std::string& path) {
  return fleet_config_from_json(api::read_json_file(path));
}

// ------------------------------------------------------------------- reports

api::Json FleetReport::to_json() const {
  api::Json j = api::Json::object();
  j["bench"] = "fleet";
  api::Json meta = api::run_metadata();
  meta["backend"] = runs.empty() ? std::string() : runs.front().load.backend;
  meta["policy"] = runs.empty() ? std::string() : runs.front().load.policy;
  meta["shards"] = runs.empty() ? 0 : runs.front().shard_count;
  j["meta"] = std::move(meta);
  j["name"] = name;
  j["requests"] = requests;
  api::Json run_array = api::Json::array();
  for (const FleetRunReport& run : runs) {
    api::Json rj = api::Json::object();
    rj["shard_count"] = run.shard_count;
    rj["failovers"] = run.failovers;
    rj["load"] = run.load.to_json();
    api::Json shard_array = api::Json::array();
    for (const ShardReport& s : run.shards) {
      api::Json sj = api::Json::object();
      sj["id"] = s.id;
      sj["name"] = s.name;
      sj["endpoint"] = s.endpoint;
      sj["killed"] = s.killed;
      sj["drained"] = s.drained;
      sj["routed"] = s.routed;
      sj["reconnects"] = s.reconnects;
      if (s.metrics.has_value()) sj["metrics"] = s.metrics->to_json();
      shard_array.push_back(std::move(sj));
    }
    rj["shards"] = std::move(shard_array);
    api::Json cj = api::Json::object();
    cj["enabled"] = run.chaos.enabled;
    if (run.chaos.enabled) {
      cj["triggered"] = run.chaos.triggered;
      cj["mode"] = run.chaos.mode;
      cj["shard"] = run.chaos.shard;
      cj["at_request"] = run.chaos.at_request;
      cj["submitted"] = run.chaos.submitted;
      cj["responses"] = run.chaos.responses;
      cj["lost"] = run.chaos.lost;
      cj["transport_errors"] = run.chaos.transport_errors;
      cj["shutdown_rejects"] = run.chaos.shutdown_rejects;
    }
    rj["chaos"] = std::move(cj);
    api::Json vj = api::Json::object();
    vj["enabled"] = run.verify.enabled;
    if (run.verify.enabled) {
      vj["checked"] = run.verify.checked;
      vj["mismatches"] = run.verify.mismatches;
    }
    rj["verify"] = std::move(vj);
    run_array.push_back(std::move(rj));
  }
  j["runs"] = std::move(run_array);
  return j;
}

std::string FleetReport::to_csv() const {
  std::ostringstream csv;
  csv << "shard_count,policy,requests,completed_ok,errors,failovers,"
         "achieved_qps,p50_ms,p95_ms,p99_ms,p999_ms,context_hit_rate,"
         "memo_hit_rate,chaos_mode,chaos_lost\n";
  for (const FleetRunReport& run : runs) {
    const serve::MetricsSnapshot& m = run.load.server_metrics;
    const std::uint64_t memo_total = m.memo_hits + m.memo_misses;
    const double memo_hit_rate =
        memo_total == 0
            ? 0.0
            : static_cast<double>(m.memo_hits) / static_cast<double>(memo_total);
    csv << run.shard_count << ',' << run.load.policy << ','
        << run.load.requests << ',' << run.load.completed_ok << ','
        << run.load.errors << ',' << run.failovers << ','
        << run.load.achieved_qps << ',' << run.load.latency_ms.percentile(50)
        << ',' << run.load.latency_ms.percentile(95) << ','
        << run.load.latency_ms.percentile(99) << ','
        << run.load.latency_ms.percentile(99.9) << ',' << m.context_hit_rate()
        << ',' << memo_hit_rate << ','
        << (run.chaos.enabled ? run.chaos.mode : std::string("none")) << ','
        << run.chaos.lost << '\n';
  }
  return csv.str();
}

// ------------------------------------------------------------------ top level

FleetReport run_fleet(const FleetConfig& config,
                      const OrchestratorOptions& options) {
  FleetReport report;
  report.name = config.name.empty() ? "fleet" : config.name;
  report.requests = config.load.requests;
  if (!options.quiet) {
    std::cerr << "defa_fleet: main run with " << config.shards << " shard(s)\n";
  }
  report.runs.push_back(run_one(config, config.shards,
                                options.chaos && config.chaos.enabled,
                                options.verify && config.verify, options,
                                options.trace_out));
  for (const int count : config.shard_sweep) {
    if (!options.quiet) {
      std::cerr << "defa_fleet: sweep run with " << count << " shard(s)\n";
    }
    report.runs.push_back(
        run_one(config, count, /*chaos_enabled=*/false,
                /*verify_enabled=*/false, options, /*trace_out=*/""));
  }
  return report;
}

}  // namespace defa::fleet
