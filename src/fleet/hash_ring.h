#pragma once

/// \file hash_ring.h
/// Consistent-hash ring for sharded serving (docs/FLEET.md).
///
/// Each node (shard) owns `virtual_nodes` points on a 64-bit hash ring;
/// a workload key routes to the node owning the first ring point at or
/// after the key's hash (wrapping).  Virtual nodes smooth the key
/// distribution, and — the property the fleet layer is built on — adding
/// or removing one node remaps only ~1/N of the key space, so a shard
/// death or scale-out invalidates one shard's worth of warm caches, not
/// everyone's.
///
/// Hashing is FNV-1a 64 rather than std::hash: the ring must be
/// deterministic across processes and builds, because the client-side
/// router and the server-side `shard_info` method both derive the same
/// points from the same shard names.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace defa::fleet {

/// FNV-1a 64-bit.  Stable across platforms/builds by construction.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s) noexcept;

/// Finalizing avalanche mix (the splitmix64 finalizer).  FNV-1a diffuses
/// poorly on short strings that share a prefix and differ in trailing
/// digits — exactly the shape of vnode labels ("shard0#12") and workload
/// keys — and the raw hashes cluster badly enough to skew ring ownership
/// far from 1/N.  The mix restores uniformity and is just as
/// deterministic across processes and builds.
[[nodiscard]] std::uint64_t mix64(std::uint64_t h) noexcept;

/// The ring points node `node` owns at `virtual_nodes` replicas: the
/// mixed hashes of "name#0" .. "name#V-1".  Shared by `HashRing` and the
/// server-side `shard_info` method so both ends of the wire agree on
/// ownership without exchanging the ring itself.
[[nodiscard]] std::vector<std::uint64_t> ring_points(std::string_view node,
                                                     int virtual_nodes);

class HashRing {
 public:
  static constexpr int kDefaultVirtualNodes = 64;

  /// Node names must be unique and non-empty; `virtual_nodes >= 1`.
  explicit HashRing(std::vector<std::string> nodes,
                    int virtual_nodes = kDefaultVirtualNodes);

  void add_node(const std::string& name);
  void remove_node(const std::string& name);

  [[nodiscard]] const std::vector<std::string>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] int virtual_nodes() const noexcept { return virtual_nodes_; }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }

  /// Index (into `nodes()`) of the node owning `key`.  Ring must be
  /// non-empty.
  [[nodiscard]] std::size_t node_index_for(std::string_view key) const;
  [[nodiscard]] const std::string& node_for(std::string_view key) const;

  /// Every node exactly once, in failover order for `key`: the owner
  /// first, then each distinct successor walking the ring.  Deterministic,
  /// so independent clients fail the same key over to the same shard.
  [[nodiscard]] std::vector<std::size_t> preference_order(
      std::string_view key) const;

 private:
  void rebuild();
  [[nodiscard]] std::size_t ring_pos_for(std::string_view key) const;

  std::vector<std::string> nodes_;
  int virtual_nodes_;
  /// (point hash, node index), sorted by hash.  Ties broken by node index
  /// so the ring is a deterministic function of the node set.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
};

}  // namespace defa::fleet
