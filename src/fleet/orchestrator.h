#pragma once

/// \file orchestrator.h
/// The fleet orchestrator behind `defa_fleet` (docs/FLEET.md): spawn N
/// `defa_serve` shard processes, route load through a `client::Pool`, and
/// merge the per-shard results into one fleet benchmark report
/// (`BENCH_fleet.json`).
///
/// A fleet run is declarative — one JSON config names the shard count,
/// per-shard server options, the load mix (scenario-file format), an
/// optional shard-count sweep, and an optional chaos injection (kill or
/// drain one shard mid-load, asserting that every request still gets
/// exactly one response via `client::Pool` failover).  The orchestrator
/// owns process lifecycle end to end: ephemeral ports via `--port-file`
/// handshakes, health checks over `shard_info`, graceful `drain` teardown,
/// SIGKILL as a last resort.
///
/// Config shape (strict: unknown keys throw):
///   {
///     "name": "fleet_smoke",            // optional label
///     "shards": 3,                      // main-run fleet size (>= 1)
///     "virtual_nodes": 64,              // consistent-hash ring resolution
///     "server": { ... },                // scenario-file server block,
///                                       //   applied to every shard
///     "load": {                         // scenario-file without server/sweep
///       "requests": 96, "seed": 1, "timeout_ms": 0,
///       "arrival": {...}, "scenarios": [...]
///     },
///     "shard_sweep": [1],               // optional extra fleet sizes, run
///                                       //   without chaos/verify (locality
///                                       //   comparison points)
///     "chaos": {                        // optional fault injection
///       "mode": "kill",                 // "kill" | "drain"
///       "shard": -1,                    // -1 = busiest shard at trigger
///       "after_fraction": 0.4           // trigger point, in (0, 1)
///     },
///     "verify": true                    // bit-identity spot check vs a
///                                       //   local in-process Engine
///   }

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "client/client.h"
#include "serve/loadgen.h"
#include "serve/metrics.h"

namespace defa::fleet {

/// Fault injection: take one shard away mid-load and let the pool prove
/// the fleet's availability story.
struct ChaosSpec {
  bool enabled = false;
  std::string mode = "kill";  ///< "kill" (SIGKILL) | "drain" (graceful)
  int shard = -1;             ///< victim index; -1 = busiest at trigger time
  /// Trigger once this fraction of the run's requests has been submitted.
  double after_fraction = 0.5;
};

struct FleetConfig {
  std::string name;
  int shards = 3;
  int virtual_nodes = 64;
  /// Load options for every run; `load.server` is the per-shard server
  /// configuration (every shard gets the same one).
  serve::LoadGenOptions load;
  /// Extra fleet sizes driven with the same load (no chaos, no verify) —
  /// e.g. [1] produces the single-shard baseline the locality win is
  /// measured against.
  std::vector<int> shard_sweep;
  ChaosSpec chaos;
  bool verify = true;
};

/// Strict parse of the config shape above; throws defa::CheckError.
[[nodiscard]] FleetConfig fleet_config_from_json(const api::Json& j);
[[nodiscard]] FleetConfig load_fleet_config(const std::string& path);

/// Per-shard outcome of one fleet run.
struct ShardReport {
  int id = 0;
  std::string name;
  std::string endpoint;
  bool killed = false;   ///< chaos SIGKILL victim
  bool drained = false;  ///< chaos drain victim
  std::uint64_t routed = 0;      ///< requests the pool dispatched to it
  std::uint64_t reconnects = 0;  ///< pool re-connections to it
  /// Final metrics; absent for a shard that was unreachable at collection
  /// time (a killed shard reports nothing; a drained one reports the
  /// snapshot its drain response carried).
  std::optional<serve::MetricsSnapshot> metrics;
};

struct ChaosReport {
  bool enabled = false;
  bool triggered = false;
  std::string mode;
  int shard = -1;
  int at_request = 0;  ///< submitted-count at which the fault fired
  std::uint64_t submitted = 0;
  std::uint64_t responses = 0;
  /// submitted - responses after the run settled; the exactly-one-response
  /// invariant means this must be 0.
  std::int64_t lost = 0;
  std::uint64_t transport_errors = 0;  ///< responses that died on the wire
  std::uint64_t shutdown_rejects = 0;  ///< drain-mode rejections re-routed
};

struct VerifyReport {
  bool enabled = false;
  int checked = 0;     ///< mix entries spot-checked
  int mismatches = 0;  ///< fleet result != in-process Engine result
};

/// One fleet size driven once.
struct FleetRunReport {
  int shard_count = 0;
  serve::LoadReport load;  ///< merged view (transport "fleet")
  std::uint64_t failovers = 0;  ///< pool re-routes (skips + in-flight)
  std::vector<ShardReport> shards;
  ChaosReport chaos;
  VerifyReport verify;
};

/// The BENCH_fleet.json artifact: the main run plus shard-sweep runs.
struct FleetReport {
  std::string name;
  int requests = 0;
  std::vector<FleetRunReport> runs;  ///< main run first, then shard_sweep

  /// {"bench": "fleet", "name", "requests", "runs": [...]} — each run
  /// carries the merged LoadReport, per-shard breakdowns, chaos and verify
  /// blocks (docs/FLEET.md).
  [[nodiscard]] api::Json to_json() const;
  /// One summary row per run (the plot-ready sidecar).
  [[nodiscard]] std::string to_csv() const;
};

struct OrchestratorOptions {
  /// Path to the defa_serve binary the shards exec.
  std::string serve_bin = "./defa_serve";
  /// Budget for spawn + port handshake + pool connect + health check.
  int spawn_timeout_ms = 15000;
  bool quiet = false;   ///< silence shard stderr and progress notes
  bool chaos = true;    ///< false overrides config.chaos.enabled
  bool verify = true;   ///< false overrides config.verify
  /// Non-empty: run the main-run shards with --trace/--trace-out, then
  /// merge their span dumps with this process's client-side lane into one
  /// Chrome trace-event file at this path — every process on a
  /// shard-qualified pid lane of a single timeline (docs/OBSERVABILITY.md).
  /// Needs `config.load.trace_sample_every > 0` (the pool's client-side
  /// sampling stamps the trace ids) and the process tracer enabled;
  /// `defa_fleet --trace-out` sets all three.  Sweep runs are not traced.
  /// A chaos-killed shard writes no dump and is simply absent.
  std::string trace_out;
  /// Per-shard connection options forwarded to the routing Pool: wire
  /// version policy and pipelining depth (`defa_fleet --wire/--pipeline`).
  client::ClientOptions client;
};

/// Run the whole fleet benchmark: the main `config.shards`-sized run (with
/// chaos/verify when configured), then one run per `shard_sweep` entry.
/// Throws on spawn/handshake failure; load-level failures are reported,
/// not thrown.
[[nodiscard]] FleetReport run_fleet(const FleetConfig& config,
                                    const OrchestratorOptions& options = {});

}  // namespace defa::fleet
