#include "fleet/hash_ring.h"

#include <algorithm>

#include "common/check.h"

namespace defa::fleet {

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::uint64_t mix64(std::uint64_t h) noexcept {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

std::vector<std::uint64_t> ring_points(std::string_view node, int virtual_nodes) {
  DEFA_CHECK(virtual_nodes >= 1, "hash_ring: virtual_nodes must be >= 1");
  std::vector<std::uint64_t> points;
  points.reserve(static_cast<std::size_t>(virtual_nodes));
  for (int v = 0; v < virtual_nodes; ++v) {
    std::string vnode(node);
    vnode += '#';
    vnode += std::to_string(v);
    points.push_back(mix64(fnv1a64(vnode)));
  }
  return points;
}

HashRing::HashRing(std::vector<std::string> nodes, int virtual_nodes)
    : nodes_(std::move(nodes)), virtual_nodes_(virtual_nodes) {
  DEFA_CHECK(virtual_nodes_ >= 1, "hash_ring: virtual_nodes must be >= 1");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    DEFA_CHECK(!nodes_[i].empty(), "hash_ring: node names must not be empty");
    for (std::size_t j = i + 1; j < nodes_.size(); ++j) {
      DEFA_CHECK(nodes_[i] != nodes_[j],
                 "hash_ring: duplicate node name '" + nodes_[i] + "'");
    }
  }
  rebuild();
}

void HashRing::add_node(const std::string& name) {
  DEFA_CHECK(!name.empty(), "hash_ring: node names must not be empty");
  for (const std::string& n : nodes_) {
    DEFA_CHECK(n != name, "hash_ring: duplicate node name '" + name + "'");
  }
  nodes_.push_back(name);
  rebuild();
}

void HashRing::remove_node(const std::string& name) {
  const auto it = std::find(nodes_.begin(), nodes_.end(), name);
  DEFA_CHECK(it != nodes_.end(), "hash_ring: unknown node '" + name + "'");
  nodes_.erase(it);
  rebuild();
}

void HashRing::rebuild() {
  ring_.clear();
  ring_.reserve(nodes_.size() * static_cast<std::size_t>(virtual_nodes_));
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const std::uint64_t h : ring_points(nodes_[i], virtual_nodes_)) {
      ring_.emplace_back(h, i);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t HashRing::ring_pos_for(std::string_view key) const {
  DEFA_CHECK(!ring_.empty(), "hash_ring: lookup on an empty ring");
  const std::uint64_t h = mix64(fnv1a64(key));
  // First point at or after the key's hash, wrapping past the top back to
  // the ring's first point.
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const auto& point, std::uint64_t value) { return point.first < value; });
  return it == ring_.end() ? 0 : static_cast<std::size_t>(it - ring_.begin());
}

std::size_t HashRing::node_index_for(std::string_view key) const {
  return ring_[ring_pos_for(key)].second;
}

const std::string& HashRing::node_for(std::string_view key) const {
  return nodes_[node_index_for(key)];
}

std::vector<std::size_t> HashRing::preference_order(std::string_view key) const {
  std::vector<std::size_t> order;
  order.reserve(nodes_.size());
  std::vector<bool> seen(nodes_.size(), false);
  const std::size_t start = ring_pos_for(key);
  for (std::size_t step = 0; step < ring_.size() && order.size() < nodes_.size();
       ++step) {
    const std::size_t node = ring_[(start + step) % ring_.size()].second;
    if (!seen[node]) {
      seen[node] = true;
      order.push_back(node);
    }
  }
  return order;
}

}  // namespace defa::fleet
