#pragma once

/// \file tensor.h
/// Minimal dense row-major float tensor.
///
/// The reproduction only needs a small, predictable container: contiguous
/// float storage, up to 5 dimensions, checked accessors in debug builds and
/// unchecked `operator()` in hot loops.  No broadcasting, no views — code
/// that needs a row takes a `std::span`.

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace defa {

/// Dense row-major float tensor with value semantics.
///
/// Invariant: `data_.size() == product(shape_)`; shape entries are >= 0.
class Tensor {
 public:
  /// Empty 0-d tensor (numel() == 0 is represented as shape {0}).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::int64_t> shape);
  Tensor(std::initializer_list<std::int64_t> shape)
      : Tensor(std::vector<std::int64_t>(shape)) {}

  [[nodiscard]] static Tensor zeros(std::vector<std::int64_t> shape);
  [[nodiscard]] static Tensor full(std::vector<std::int64_t> shape, float value);
  /// I.i.d. normal entries (used for weight initialization).
  [[nodiscard]] static Tensor randn(std::vector<std::int64_t> shape, Rng& rng,
                                    float mean = 0.0f, float stddev = 1.0f);
  /// I.i.d. uniform entries in [lo, hi).
  [[nodiscard]] static Tensor uniform(std::vector<std::int64_t> shape, Rng& rng,
                                      float lo = 0.0f, float hi = 1.0f);

  [[nodiscard]] const std::vector<std::int64_t>& shape() const noexcept { return shape_; }
  [[nodiscard]] int rank() const noexcept { return static_cast<int>(shape_.size()); }
  [[nodiscard]] std::int64_t dim(int i) const;
  [[nodiscard]] std::int64_t numel() const noexcept {
    return static_cast<std::int64_t>(data_.size());
  }

  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

  /// Unchecked (DCHECK-only) multi-index accessors for hot loops.
  [[nodiscard]] float& operator()(std::int64_t i) noexcept {
    DEFA_DCHECK(rank() == 1 && i >= 0 && i < shape_[0], "1d index");
    return data_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] float operator()(std::int64_t i) const noexcept {
    return const_cast<Tensor&>(*this)(i);
  }
  [[nodiscard]] float& operator()(std::int64_t i, std::int64_t j) noexcept {
    DEFA_DCHECK(rank() == 2, "2d accessor on non-2d tensor");
    DEFA_DCHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1], "2d index");
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
  }
  [[nodiscard]] float operator()(std::int64_t i, std::int64_t j) const noexcept {
    return const_cast<Tensor&>(*this)(i, j);
  }
  [[nodiscard]] float& operator()(std::int64_t i, std::int64_t j, std::int64_t k) noexcept {
    DEFA_DCHECK(rank() == 3, "3d accessor on non-3d tensor");
    DEFA_DCHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 && k < shape_[2],
                "3d index");
    return data_[static_cast<std::size_t>((i * shape_[1] + j) * shape_[2] + k)];
  }
  [[nodiscard]] float operator()(std::int64_t i, std::int64_t j, std::int64_t k) const noexcept {
    return const_cast<Tensor&>(*this)(i, j, k);
  }
  [[nodiscard]] float& operator()(std::int64_t i, std::int64_t j, std::int64_t k,
                                  std::int64_t l) noexcept {
    DEFA_DCHECK(rank() == 4, "4d accessor on non-4d tensor");
    DEFA_DCHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
                    k < shape_[2] && l >= 0 && l < shape_[3],
                "4d index");
    return data_[static_cast<std::size_t>(((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l)];
  }
  [[nodiscard]] float operator()(std::int64_t i, std::int64_t j, std::int64_t k,
                                 std::int64_t l) const noexcept {
    return const_cast<Tensor&>(*this)(i, j, k, l);
  }
  [[nodiscard]] float& operator()(std::int64_t i, std::int64_t j, std::int64_t k,
                                  std::int64_t l, std::int64_t m) noexcept {
    DEFA_DCHECK(rank() == 5, "5d accessor on non-5d tensor");
    DEFA_DCHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
                    k < shape_[2] && l >= 0 && l < shape_[3] && m >= 0 && m < shape_[4],
                "5d index");
    return data_[static_cast<std::size_t>(
        (((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l) * shape_[4] + m)];
  }
  [[nodiscard]] float operator()(std::int64_t i, std::int64_t j, std::int64_t k,
                                 std::int64_t l, std::int64_t m) const noexcept {
    return const_cast<Tensor&>(*this)(i, j, k, l, m);
  }

  /// Always-checked element access by flat index.
  [[nodiscard]] float& at_flat(std::int64_t idx);
  [[nodiscard]] float at_flat(std::int64_t idx) const;

  /// Row `i` of a rank-2 tensor as a span of length dim(1).
  [[nodiscard]] std::span<float> row(std::int64_t i);
  [[nodiscard]] std::span<const float> row(std::int64_t i) const;

  /// In-place reshape; total element count must be preserved.
  void reshape(std::vector<std::int64_t> new_shape);

  void fill(float value) noexcept;

  /// Elementwise in-place addition; shapes must match exactly.
  void add_(const Tensor& other);
  /// Elementwise in-place scaling.
  void scale_(float factor) noexcept;

  [[nodiscard]] bool same_shape(const Tensor& other) const noexcept {
    return shape_ == other.shape_;
  }

 private:
  std::vector<std::int64_t> shape_;
  std::vector<float> data_;
};

/// Product of shape dims (0 for empty shape entries, 1 for rank-0).
[[nodiscard]] std::int64_t shape_numel(const std::vector<std::int64_t>& shape);

}  // namespace defa
