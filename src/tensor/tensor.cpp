#include "tensor/tensor.h"

#include <algorithm>

namespace defa {

std::int64_t shape_numel(const std::vector<std::int64_t>& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    DEFA_CHECK(d >= 0, "negative dimension " + std::to_string(d));
    n *= d;
  }
  return n;
}

Tensor::Tensor(std::vector<std::int64_t> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(shape_numel(shape_)), 0.0f);
}

Tensor Tensor::zeros(std::vector<std::int64_t> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(std::vector<std::int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<std::int64_t> shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (float& x : t.data_) x = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::uniform(std::vector<std::int64_t> shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& x : t.data_) x = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

std::int64_t Tensor::dim(int i) const {
  DEFA_CHECK(i >= 0 && i < rank(), "dim index " + std::to_string(i) + " out of range");
  return shape_[static_cast<std::size_t>(i)];
}

float& Tensor::at_flat(std::int64_t idx) {
  DEFA_CHECK(idx >= 0 && idx < numel(), "flat index out of range");
  return data_[static_cast<std::size_t>(idx)];
}

float Tensor::at_flat(std::int64_t idx) const {
  DEFA_CHECK(idx >= 0 && idx < numel(), "flat index out of range");
  return data_[static_cast<std::size_t>(idx)];
}

std::span<float> Tensor::row(std::int64_t i) {
  DEFA_CHECK(rank() == 2, "row() requires a rank-2 tensor");
  DEFA_CHECK(i >= 0 && i < shape_[0], "row index out of range");
  return std::span<float>(data_).subspan(static_cast<std::size_t>(i * shape_[1]),
                                         static_cast<std::size_t>(shape_[1]));
}

std::span<const float> Tensor::row(std::int64_t i) const {
  return const_cast<Tensor*>(this)->row(i);
}

void Tensor::reshape(std::vector<std::int64_t> new_shape) {
  DEFA_CHECK(shape_numel(new_shape) == numel(), "reshape must preserve numel");
  shape_ = std::move(new_shape);
}

void Tensor::fill(float value) noexcept { std::fill(data_.begin(), data_.end(), value); }

void Tensor::add_(const Tensor& other) {
  DEFA_CHECK(same_shape(other), "add_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::scale_(float factor) noexcept {
  for (float& x : data_) x *= factor;
}

}  // namespace defa
