#include "accuracy/ap_model.h"

#include <cmath>

#include "common/check.h"

namespace defa::accuracy {

namespace {
constexpr int index_of(Technique t) noexcept { return static_cast<int>(t); }
}  // namespace

const ApModel& ApModel::paper_calibrated() {
  static const ApModel model = [] {
    ApModel m;
    // ref_error: final-trajectory NRMSE of the isolated technique on the
    // Deformable DETR workload at default thresholds (bench/fig06a prints
    // the live values; drift there means re-anchoring is due).
    // ref_drop_ap: Sec. 5.2 of the paper (average over the benchmarks).
    m.anchors_[index_of(Technique::kFwp)] = Anchor{0.17875, 0.80, 1.3};
    m.anchors_[index_of(Technique::kPap)] = Anchor{0.04166, 0.30, 1.3};
    m.anchors_[index_of(Technique::kNarrow)] = Anchor{0.14653, 0.26, 1.3};
    m.anchors_[index_of(Technique::kQuant12)] = Anchor{0.00634, 0.07, 1.3};
    m.anchors_[index_of(Technique::kQuant8)] = Anchor{0.09552, 9.70, 1.3};
    return m;
  }();
  return model;
}

const Anchor& ApModel::anchor(Technique t) const {
  const int i = index_of(t);
  DEFA_CHECK(i >= 0 && i < 5, "unknown technique");
  return anchors_[i];
}

double ApModel::drop(Technique t, double measured_error) const {
  DEFA_CHECK(measured_error >= 0.0, "error must be non-negative");
  const Anchor& a = anchor(t);
  if (measured_error == 0.0) return 0.0;
  return a.ref_drop_ap * std::pow(measured_error / a.ref_error, a.exponent);
}

double ApModel::defa_ap(
    double baseline_ap,
    std::span<const std::pair<Technique, double>> measured_errors) const {
  double ap = baseline_ap;
  for (const auto& [t, e] : measured_errors) ap -= drop(t, e);
  return ap;
}

}  // namespace defa::accuracy
