#pragma once

/// \file ap_model.h
/// Calibrated error -> COCO-AP-drop proxy (Fig. 6a substitution; see
/// DESIGN.md §4 #2).
///
/// Without trained weights there is no real detection AP, so each
/// technique's end-to-end output perturbation (NRMSE vs the dense fp32
/// encoder, measured by the functional pipeline) is mapped to an AP drop
/// through a per-technique power law
///     dAP(e) = dAP_ref * (e / e_ref)^gamma
/// anchored at the paper's reported operating point (dAP_ref from the
/// paper, e_ref measured once on the Deformable-DETR workload at the
/// default thresholds).  Per-technique curves are required because a
/// scalar NRMSE cannot rank qualitatively different perturbations (e.g.
/// dropped low-probability content vs shifted sampling positions) on one
/// scale.  The model reproduces Fig. 6(a) at the defaults by construction;
/// its value is monotone, plausible extrapolation for the threshold sweeps
/// in the ablation benches.

#include <span>
#include <utility>

namespace defa::accuracy {

enum class Technique { kFwp, kPap, kNarrow, kQuant12, kQuant8 };

struct Anchor {
  double ref_error = 0.0;    ///< NRMSE measured at the default operating point
  double ref_drop_ap = 0.0;  ///< AP drop the paper reports for this technique
  double exponent = 1.3;     ///< mild superlinearity of AP damage vs error
};

class ApModel {
 public:
  /// Model calibrated against the paper (FWP 0.8, PAP 0.3, narrowing 0.26,
  /// INT12 0.07, INT8 9.7 average AP drops) and our measured reference
  /// errors; see anchors in ap_model.cpp.
  [[nodiscard]] static const ApModel& paper_calibrated();

  /// AP drop predicted for one technique at the measured error.
  [[nodiscard]] double drop(Technique t, double measured_error) const;

  /// DEFA AP: baseline minus the summed per-technique drops (the paper
  /// reports the techniques' costs additively).
  [[nodiscard]] double defa_ap(
      double baseline_ap,
      std::span<const std::pair<Technique, double>> measured_errors) const;

  [[nodiscard]] const Anchor& anchor(Technique t) const;

  /// Faster R-CNN reference line of Fig. 6(a).
  [[nodiscard]] static double faster_rcnn_ap() { return 42.0; }

 private:
  ApModel() = default;
  Anchor anchors_[5];
};

}  // namespace defa::accuracy
