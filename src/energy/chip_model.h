#pragma once

/// \file chip_model.h
/// DEFA chip model: the on-chip memory plan, the area breakdown (Fig. 8a)
/// and the energy breakdown / performance report (Fig. 8b, Table 1).

#include <string>

#include "arch/phase_stats.h"
#include "config/hw_config.h"
#include "config/model_config.h"
#include "energy/cacti_lite.h"

namespace defa::energy {

/// Build DEFA's on-chip memory inventory for a model/hardware pair:
/// 16 banked bounded-range fmap buffers, resident weight buffer, streaming
/// activation/logit/offset/output buffers, FWP frequency counters and the
/// small BI->AG fusion staging (the paper's "+0.5% SRAM").
[[nodiscard]] SramPlan build_sram_plan(const ModelConfig& m, const HwConfig& hw);

/// Area breakdown of one DEFA instance (Fig. 8a categories).
struct AreaBreakdown {
  double sram_mm2 = 0.0;
  double pe_softmax_mm2 = 0.0;
  double others_mm2 = 0.0;

  [[nodiscard]] double total() const noexcept {
    return sram_mm2 + pe_softmax_mm2 + others_mm2;
  }
};

[[nodiscard]] AreaBreakdown area_breakdown(const ModelConfig& m, const HwConfig& hw,
                                           const Tech40& tech = Tech40::instance());

/// Energy breakdown of one simulated run (Fig. 8b categories + detail).
struct EnergyBreakdown {
  double pe_pj = 0.0;       ///< MM + BI/AG datapath
  double softmax_pj = 0.0;
  double sram_pj = 0.0;
  double other_logic_pj = 0.0;  ///< mask generators, compression, control
  double dram_pj = 0.0;

  [[nodiscard]] double logic_pj() const noexcept {
    return pe_pj + softmax_pj + other_logic_pj;
  }
  [[nodiscard]] double chip_pj() const noexcept { return logic_pj() + sram_pj; }
  [[nodiscard]] double total_pj() const noexcept { return chip_pj() + dram_pj; }
};

[[nodiscard]] EnergyBreakdown energy_breakdown(const ModelConfig& m, const HwConfig& hw,
                                               const arch::RunPerf& run,
                                               const Tech40& tech = Tech40::instance());

/// Table-1-style summary of one simulated run.
struct PerfSummary {
  double time_ms = 0.0;
  double chip_power_mw = 0.0;    ///< logic + SRAM (Table 1 convention)
  double system_power_mw = 0.0;  ///< chip + DRAM interface
  double area_mm2 = 0.0;
  /// Effective throughput: dense (unpruned) operations per second — the
  /// usual sparse-accelerator convention, can exceed the dense peak.
  double effective_gops = 0.0;
  double gops_per_w = 0.0;  ///< effective GOPS / chip power
};

/// `dense_flops` is the dense operation count of the simulated workload
/// (from core::dense_flops; passed in to keep this module decoupled).
[[nodiscard]] PerfSummary summarize(const ModelConfig& m, const HwConfig& hw,
                                    const arch::RunPerf& run, double dense_flops,
                                    const Tech40& tech = Tech40::instance());

}  // namespace defa::energy
