#pragma once

/// \file tech40.h
/// 40 nm technology constants for the energy/area models.
///
/// Values are Horowitz-style estimates (ISSCC'14 "Computing's energy
/// problem" numbers at 45 nm, scaled ~0.9x to 40 nm) for the INT12
/// datapath the paper synthesizes; they are deliberately simple, documented
/// calibration constants — see DESIGN.md §4 substitution #3.

namespace defa::energy {

struct Tech40 {
  // --- datapath -------------------------------------------------------------
  /// One INT12 multiply-accumulate (12x12 multiply ~0.45 pJ + 32b
  /// accumulate ~0.1 pJ), including local operand registers.
  double mac_pj = 0.50;
  /// Pipeline registers, clock tree and control overhead applied to all
  /// datapath energy.
  double datapath_overhead = 1.25;
  /// One softmax element (LUT exponent + normalize share).
  double softmax_elem_pj = 1.5;
  /// Mask generation / compression-unit work per byte moved.
  double mask_pj_per_byte = 0.05;

  // --- SRAM (CACTI-lite; see cacti_lite.h) ----------------------------------
  /// 6T high-density cell area at 40 nm, um^2 per bit.
  double sram_cell_um2_per_bit = 0.299;
  /// Periphery (decoders, sense amps, mux) multiplier on cell area.
  double sram_periphery_factor = 1.30;
  /// Fixed per-macro area overhead, mm^2.
  double sram_macro_fixed_mm2 = 0.003;
  /// Access energy model: pJ/byte = base + slope * sqrt(capacity_bits).
  double sram_pj_per_byte_base = 0.13;
  double sram_pj_per_byte_slope = 0.00030;
  /// Write premium over read.
  double sram_write_factor = 1.1;

  // --- logic area ------------------------------------------------------------
  /// One INT12 MAC PE, um^2 (multiplier + accumulator + pipeline regs).
  double mac_area_um2 = 2000.0;
  /// Interconnect/control multiplier on the PE array.
  double pe_array_overhead = 1.15;
  /// Softmax unit + BI fraction preparation, mm^2.
  double softmax_area_mm2 = 0.08;
  /// Mask generators + compression/decompression + top controller, mm^2.
  double control_area_mm2 = 0.13;

  [[nodiscard]] static const Tech40& instance() {
    static const Tech40 t{};
    return t;
  }
};

}  // namespace defa::energy
