#pragma once

/// \file cacti_lite.h
/// Analytical SRAM macro model in the spirit of CACTI [16]: area from cell
/// + periphery, access energy growing with the square root of capacity
/// (word/bit-line length).  The paper used CACTI 6.0 for its SRAM numbers;
/// this is the closest self-contained stand-in (constants in tech40.h).

#include <cstdint>
#include <string>
#include <vector>

#include "energy/tech40.h"

namespace defa::energy {

/// One physical SRAM macro.
struct SramMacro {
  std::string name;
  std::int64_t capacity_bytes = 0;
  int word_bytes = 0;
  int count = 1;  ///< identical instances (e.g. 16 fmap banks)

  [[nodiscard]] std::int64_t total_bytes() const noexcept {
    return capacity_bytes * count;
  }
};

/// Derived physical characteristics of a macro.
struct SramMacroModel {
  double area_mm2 = 0.0;       ///< all instances
  double read_pj_per_byte = 0.0;
  double write_pj_per_byte = 0.0;
};

/// Evaluate one macro under the technology model.
[[nodiscard]] SramMacroModel evaluate_macro(const SramMacro& macro,
                                            const Tech40& tech = Tech40::instance());

/// A full on-chip memory plan.
struct SramPlan {
  std::vector<SramMacro> macros;

  [[nodiscard]] std::int64_t total_bytes() const;
  [[nodiscard]] double total_area_mm2(const Tech40& tech = Tech40::instance()) const;
  /// Capacity-weighted average access energies (used to price aggregate
  /// SRAM traffic from the simulator).
  [[nodiscard]] double avg_read_pj_per_byte(const Tech40& tech = Tech40::instance()) const;
  [[nodiscard]] double avg_write_pj_per_byte(const Tech40& tech = Tech40::instance()) const;
};

}  // namespace defa::energy
