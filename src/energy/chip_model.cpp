#include "energy/chip_model.h"

#include <algorithm>

#include "prune/range.h"

namespace defa::energy {

SramPlan build_sram_plan(const ModelConfig& m, const HwConfig& hw) {
  hw.validate(m);
  SramPlan plan;

  // Bounded-range fmap windows, interleaved over the banks (Sec. 4.2).
  const std::int64_t fmap_bytes = prune::range_window_bytes(m, hw.ranges, hw.act_bits);
  SramMacro bank;
  bank.name = "fmap-bank";
  bank.capacity_bytes = (fmap_bytes + hw.sram_banks - 1) / hw.sram_banks;
  bank.word_bytes = hw.sram_word_bytes(m);
  bank.count = hw.sram_banks;
  plan.macros.push_back(bank);

  // Resident weight buffer: the largest projection matrix (W_S).
  const std::int64_t w_cols =
      std::max<std::int64_t>(2LL * m.n_heads * m.points_per_head(), m.d_model);
  plan.macros.push_back(SramMacro{
      "weight-buffer",
      static_cast<std::int64_t>(m.d_model) * w_cols * hw.weight_bits / 8, 48, 1});

  // Streaming buffers (double-buffered activation/logit/offset/output).
  plan.macros.push_back(SramMacro{"act-buffer", 8 * 1024, 24, 2});
  plan.macros.push_back(SramMacro{"logit-buffer", 16 * 1024, 24, 1});
  plan.macros.push_back(SramMacro{"offset-prob-buffer", 16 * 1024, 24, 1});
  plan.macros.push_back(SramMacro{"output-buffer", 8 * 1024, 48, 2});

  // FWP sampled-frequency counters (one 16-bit counter per token).
  plan.macros.push_back(SramMacro{"freq-counter", m.n_in() * 2, 8, 1});

  // Fine-grained fusion staging between the BI and AG operators — the
  // paper's "only 0.5% extra SRAM" (Sec. 5.3.2).
  if (hw.enable_operator_fusion) {
    plan.macros.push_back(SramMacro{"fusion-staging", 2 * 1024, 48, 1});
  }
  return plan;
}

AreaBreakdown area_breakdown(const ModelConfig& m, const HwConfig& hw,
                             const Tech40& tech) {
  AreaBreakdown a;
  a.sram_mm2 = build_sram_plan(m, hw).total_area_mm2(tech);
  a.pe_softmax_mm2 =
      hw.total_macs() * tech.mac_area_um2 * 1e-6 * tech.pe_array_overhead +
      tech.softmax_area_mm2;
  a.others_mm2 = tech.control_area_mm2;
  return a;
}

EnergyBreakdown energy_breakdown(const ModelConfig& m, const HwConfig& hw,
                                 const arch::RunPerf& run, const Tech40& tech) {
  const SramPlan plan = build_sram_plan(m, hw);
  const double read_pj = plan.avg_read_pj_per_byte(tech);
  const double write_pj = plan.avg_write_pj_per_byte(tech);
  const arch::PhaseStats total = run.total();

  EnergyBreakdown e;
  e.pe_pj = static_cast<double>(total.macs) * tech.mac_pj * tech.datapath_overhead;
  e.sram_pj = static_cast<double>(total.sram_read_bytes) * read_pj +
              static_cast<double>(total.sram_write_bytes) * write_pj;
  e.dram_pj = static_cast<double>(total.dram_bytes()) * hw.dram_pj_per_bit * 8.0;

  // Softmax: every (query, head) normalizes L*P logits, once per block.
  const double softmax_elems = static_cast<double>(m.n_in()) * m.n_heads *
                               m.points_per_head() *
                               static_cast<double>(run.layers.size());
  e.softmax_pj = softmax_elems * tech.softmax_elem_pj;

  // Mask generators + compression units: proportional to the bytes they
  // filter/pack (the SRAM side of pruning is <0.1% of SRAM traffic, which
  // bench/fig07b verifies).
  e.other_logic_pj = static_cast<double>(total.sram_read_bytes + total.sram_write_bytes) *
                     tech.mask_pj_per_byte * 0.1;
  return e;
}

PerfSummary summarize(const ModelConfig& m, const HwConfig& hw,
                      const arch::RunPerf& run, double dense_flops, const Tech40& tech) {
  const EnergyBreakdown e = energy_breakdown(m, hw, run, tech);
  PerfSummary s;
  s.time_ms = static_cast<double>(run.wall_cycles()) * hw.cycle_ns() * 1e-6;
  const double time_s = s.time_ms * 1e-3;
  if (time_s > 0) {
    s.chip_power_mw = e.chip_pj() * 1e-12 / time_s * 1e3;
    s.system_power_mw = e.total_pj() * 1e-12 / time_s * 1e3;
    s.effective_gops = dense_flops / time_s * 1e-9;
  }
  s.area_mm2 = area_breakdown(m, hw, tech).total();
  if (s.chip_power_mw > 0) {
    s.gops_per_w = s.effective_gops / (s.chip_power_mw * 1e-3);
  }
  return s;
}

}  // namespace defa::energy
