#include "energy/cacti_lite.h"

#include <cmath>

#include "common/check.h"

namespace defa::energy {

SramMacroModel evaluate_macro(const SramMacro& macro, const Tech40& tech) {
  DEFA_CHECK(macro.capacity_bytes > 0 && macro.word_bytes > 0 && macro.count > 0,
             "macro must have positive capacity/word/count");
  SramMacroModel model;
  const double bits = static_cast<double>(macro.capacity_bytes) * 8.0;
  const double cell_mm2 = bits * tech.sram_cell_um2_per_bit * 1e-6;
  model.area_mm2 =
      (cell_mm2 * tech.sram_periphery_factor + tech.sram_macro_fixed_mm2) * macro.count;
  model.read_pj_per_byte =
      tech.sram_pj_per_byte_base + tech.sram_pj_per_byte_slope * std::sqrt(bits);
  model.write_pj_per_byte = model.read_pj_per_byte * tech.sram_write_factor;
  return model;
}

std::int64_t SramPlan::total_bytes() const {
  std::int64_t total = 0;
  for (const SramMacro& m : macros) total += m.total_bytes();
  return total;
}

double SramPlan::total_area_mm2(const Tech40& tech) const {
  double area = 0.0;
  for (const SramMacro& m : macros) area += evaluate_macro(m, tech).area_mm2;
  return area;
}

double SramPlan::avg_read_pj_per_byte(const Tech40& tech) const {
  double weighted = 0.0;
  double bytes = 0.0;
  for (const SramMacro& m : macros) {
    const double b = static_cast<double>(m.total_bytes());
    weighted += evaluate_macro(m, tech).read_pj_per_byte * b;
    bytes += b;
  }
  return bytes > 0 ? weighted / bytes : 0.0;
}

double SramPlan::avg_write_pj_per_byte(const Tech40& tech) const {
  double weighted = 0.0;
  double bytes = 0.0;
  for (const SramMacro& m : macros) {
    const double b = static_cast<double>(m.total_bytes());
    weighted += evaluate_macro(m, tech).write_pj_per_byte * b;
    bytes += b;
  }
  return bytes > 0 ? weighted / bytes : 0.0;
}

}  // namespace defa::energy
