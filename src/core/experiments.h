#pragma once

/// \file experiments.h
/// One entry point per paper table/figure (DESIGN.md §3).  Each function
/// returns plain structs; the registered experiments (src/api/registry.h)
/// format them as the rows/series the paper reports.  All experiments are
/// deterministic.
///
/// Heavyweight per-benchmark state (workload, functional pipeline, DEFA
/// result, simulator traces) lives in `BenchmarkContext` objects owned by a
/// shared `ContextPool`, so experiments that touch the same benchmark reuse
/// one context instead of rebuilding it.  The public `defa::Engine` facade
/// (src/api/engine.h) wraps a ContextPool; nothing outside src/ should
/// construct a BenchmarkContext directly.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "accuracy/ap_model.h"
#include "arch/accelerator.h"
#include "baseline/asic_table.h"
#include "baseline/gpu_model.h"
#include "core/pipeline.h"
#include "energy/chip_model.h"

namespace defa::core {

/// Everything the per-figure experiments need for one benchmark: the
/// workload, the functional pipeline, the full-DEFA result and the
/// per-layer traces for the cycle-accurate simulator.  Construction is
/// cheap; heavyweight state is built lazily and cached.
///
/// Thread-safety: all lazy construction is serialized on an internal
/// mutex, so one context may be shared across threads (the Engine's batch
/// path relies on this).  Returned references stay valid and immutable for
/// the context's lifetime.
class BenchmarkContext {
 public:
  /// Context on the model's default scene (SceneParams seeded with the
  /// model seed — the scene every seed experiment uses).
  explicit BenchmarkContext(ModelConfig model);
  /// Context on a custom scene.
  BenchmarkContext(ModelConfig model, const workload::SceneParams& scene);

  [[nodiscard]] const ModelConfig& model() const noexcept { return model_; }
  [[nodiscard]] const workload::SceneParams& scene() const noexcept { return scene_; }
  [[nodiscard]] const workload::SceneWorkload& workload_ref();
  [[nodiscard]] const EncoderPipeline& pipeline();
  /// Full-DEFA pipeline result (all four techniques at default thresholds).
  /// `backend` selects the compute backend of the one-time build (nullptr
  /// = process default); once built the cached result is shared — safe
  /// because every registered backend is bit-identical.
  [[nodiscard]] const EncoderResult& defa_result(
      const kernels::Backend* backend = nullptr);

  /// Per-layer traces (range-narrowed locations + DEFA masks) for the
  /// simulator.  Valid as long as this context lives.
  [[nodiscard]] std::vector<arch::LayerTrace> defa_traces();
  /// Traces with *dense* masks (no pruning), e.g. for the Fig. 7(a)
  /// hardware-only comparison.
  [[nodiscard]] std::vector<arch::LayerTrace> dense_traces();
  /// Traces whose masks come from an arbitrary pipeline result `r` (the
  /// Engine path for non-default PruneConfigs).  `r` must outlive any use
  /// of the returned traces; locations are the context's range-narrowed
  /// cache, as in defa_traces().
  [[nodiscard]] std::vector<arch::LayerTrace> traces_for(const EncoderResult& r);

  /// Dense FLOPs of the whole encoder (for effective-throughput figures).
  [[nodiscard]] double dense_encoder_flops() const;

 private:
  void ensure_workload_locked();
  void ensure_defa_locked(const kernels::Backend* backend = nullptr);
  void ensure_narrowed_locs_locked();
  void ensure_dense_masks_locked();

  ModelConfig model_;
  workload::SceneParams scene_;
  std::mutex mu_;  ///< guards all lazy construction below
  std::unique_ptr<workload::SceneWorkload> wl_;
  std::unique_ptr<EncoderPipeline> pipe_;
  std::unique_ptr<EncoderResult> defa_;
  std::vector<Tensor> narrowed_locs_;           // per layer
  std::unique_ptr<prune::PointMask> all_keep_points_;
  std::unique_ptr<prune::FmapMask> all_keep_pixels_;
};

/// Thread-safe keyed cache of shared BenchmarkContexts.  Two requests for
/// the same (model, scene) pair observe the same context object, so the
/// expensive dense reference trajectory is built once per workload no
/// matter how many experiments or Engine requests touch it.
///
/// The pool is unbounded by default (every workload stays resident).  A
/// positive `max_contexts` turns it into an LRU cache: when a miss would
/// exceed the bound, the least-recently-used entry is dropped from the pool
/// (in-flight users keep their shared_ptr alive; the context is simply
/// rebuilt on the next request for its key).  Hit/miss/eviction counters
/// make cache locality observable — the serve-layer locality scheduler is
/// benchmarked on exactly these numbers.
class ContextPool {
 public:
  ContextPool() = default;
  /// `max_contexts == 0` means unbounded.
  explicit ContextPool(std::size_t max_contexts) : max_contexts_(max_contexts) {}

  /// Monotonic cache-effectiveness counters (never reset by eviction).
  /// The serve layer derives hit rates from these when it exports them
  /// (serve::MetricsSnapshot::context_hit_rate).
  struct CacheStats {
    std::uint64_t hits = 0;       ///< get() found the key resident
    std::uint64_t misses = 0;     ///< get() built a fresh context
    std::uint64_t evictions = 0;  ///< LRU entries dropped to honor the bound
  };

  /// Context on the model's default scene.
  [[nodiscard]] std::shared_ptr<BenchmarkContext> get(const ModelConfig& m);
  [[nodiscard]] std::shared_ptr<BenchmarkContext> get(
      const ModelConfig& m, const workload::SceneParams& scene);

  /// Stable cache key of a (model, scene) pair.
  [[nodiscard]] static std::string key_of(const ModelConfig& m,
                                          const workload::SceneParams& scene);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t max_contexts() const;
  [[nodiscard]] CacheStats stats() const;
  /// Drops every entry; counters are preserved.
  void clear();
  /// Change the bound (0 = unbounded).  Shrinking below the current
  /// residency evicts LRU entries immediately (counted as evictions).
  void set_max_contexts(std::size_t max_contexts);
  /// Zero the hit/miss/eviction counters; entries are untouched.
  void reset_stats();

 private:
  struct Entry {
    std::shared_ptr<BenchmarkContext> ctx;
    std::uint64_t last_used = 0;  ///< tick of the most recent get()
  };

  mutable std::mutex mu_;
  std::size_t max_contexts_ = 0;  // guarded by mu_ (set_max_contexts)
  std::map<std::string, Entry> entries_;  // guarded by mu_, as is everything below
  CacheStats stats_;
  std::uint64_t tick_ = 0;
};

// ---------------------------------------------------------------------------
// Fig. 1(b): MSDeformAttn latency breakdown on the GPU.
struct Fig1bRow {
  std::string benchmark;
  baseline::GpuLayerTime layer;   ///< per-phase seconds on the 3090Ti
  double msgs_latency_share = 0;  ///< paper: 60.4 - 63.3%
  double msgs_flop_share = 0;     ///< paper quotes ~3.25%; we report ours
};
[[nodiscard]] std::vector<Fig1bRow> run_fig1b();

// ---------------------------------------------------------------------------
// Fig. 6(a): detection AP, baseline vs DEFA (accuracy proxy).
struct Fig6aRow {
  std::string benchmark;
  double baseline_ap = 0;
  double defa_ap = 0;
  /// Per-technique (isolated) proxy drops, paper order FWP/PAP/narrow/INT12.
  double drop_fwp = 0, drop_pap = 0, drop_narrow = 0, drop_int12 = 0;
  /// The rejected INT8 ablation.
  double drop_int8 = 0;
  /// Raw isolated NRMSEs backing the drops.
  double err_fwp = 0, err_pap = 0, err_narrow = 0, err_int12 = 0, err_int8 = 0;
};
[[nodiscard]] std::vector<Fig6aRow> run_fig6a(ContextPool& pool);

// ---------------------------------------------------------------------------
// Fig. 6(b): reduction of sampling points / fmap pixels / FLOPs.
struct Fig6bRow {
  std::string benchmark;
  double point_reduction = 0;
  double pixel_reduction = 0;
  double flop_reduction = 0;
};
[[nodiscard]] std::vector<Fig6bRow> run_fig6b(ContextPool& pool);

// ---------------------------------------------------------------------------
// Fig. 7(a): MSGS throughput, inter-level vs intra-level parallelism.
struct Fig7aRow {
  std::string benchmark;
  double inter_points_per_cycle = 0;
  double intra_points_per_cycle = 0;
  double boost = 0;                ///< paper: 3.02 - 3.09x
  double intra_conflict_rate = 0;  ///< conflicted groups / groups
  double boost_pruned = 0;         ///< same comparison under PAP (extra)
};
[[nodiscard]] std::vector<Fig7aRow> run_fig7a(ContextPool& pool);

// ---------------------------------------------------------------------------
// Fig. 7(b): energy savings of operator fusion and fmap reuse, as a
// fraction of the MSGS memory-access energy of the respective baseline.
struct Fig7bRow {
  std::string benchmark;
  double fusion_dram_saving = 0;  ///< paper: 73.3%
  double fusion_sram_saving = 0;  ///< paper: 15.9%
  double reuse_dram_saving = 0;   ///< paper: 88.2%
  double reuse_sram_saving = 0;   ///< paper: 22.7%
  double fusion_extra_sram_frac = 0;  ///< paper: +0.5% storage
  double prune_sram_access_frac = 0;  ///< paper: <0.1% of SRAM access
};
[[nodiscard]] std::vector<Fig7bRow> run_fig7b(ContextPool& pool);

// ---------------------------------------------------------------------------
// Fig. 8: area and energy breakdowns.
struct Fig8Result {
  energy::AreaBreakdown area;
  energy::EnergyBreakdown energy_default;    ///< stream-once MM dataflow
  energy::EnergyBreakdown energy_restream;   ///< per-col-tile restreaming
};
[[nodiscard]] Fig8Result run_fig8(ContextPool& pool);

// ---------------------------------------------------------------------------
// Fig. 9: speedup and energy-efficiency gain over the GPUs, with DEFA
// scaled to the GPU's peak TOPS (and memory bandwidth; see EXPERIMENTS.md).
struct Fig9Row {
  std::string benchmark;
  std::string gpu;
  double gpu_time_ms = 0;
  double defa_time_ms = 0;
  double speedup = 0;         ///< paper: 10.1-11.8x (2080Ti), 29.4-31.9x (3090Ti)
  double gpu_energy_j = 0;
  double defa_energy_j = 0;   ///< incl. deployment overhead (alpha W/TOPS)
  double ee_improvement = 0;  ///< paper: 20.3-23.2x, 35.3-37.7x
  int tiles = 0;
  /// Upper bound with the DRAM roofline lifted (the window stream makes
  /// the faithfully-scaled design memory-bound; the paper's reported
  /// scaling sits between these two columns — see EXPERIMENTS.md).
  double speedup_compute_bound = 0;
  double ee_compute_bound = 0;
};
[[nodiscard]] std::vector<Fig9Row> run_fig9(ContextPool& pool);

// ---------------------------------------------------------------------------
// Table 1: ASIC comparison (literature rows + the computed DEFA row).
[[nodiscard]] std::vector<baseline::AsicRecord> run_table1(ContextPool& pool);

}  // namespace defa::core
