#pragma once

/// \file flops.h
/// Operation accounting for one MSDeformAttn block (module boundary of
/// Eq. 1: W_A/W_S/W_V projections, softmax, MSGS bilinear interpolation and
/// aggregation — no output projection, matching the paper's Fig. 6(b)).
///
/// Conventions: 1 MAC = 2 FLOPs; bilinear interpolation costs 4 MACs per
/// channel (direct form), aggregation 1 MAC per channel, softmax 5 FLOPs
/// per element.  The same convention is applied to dense and pruned counts
/// so reduction ratios are convention-independent.

#include <cstdint>

#include "config/model_config.h"

namespace defa::core {

struct FlopCount {
  double attn_proj = 0.0;    ///< Q * W_A
  double offset_proj = 0.0;  ///< Q * W_S (per surviving point)
  double value_proj = 0.0;   ///< X * W_V (per surviving pixel)
  double softmax = 0.0;
  double msgs_bi = 0.0;      ///< bilinear interpolation
  double aggregation = 0.0;  ///< probability-weighted summation

  [[nodiscard]] double total() const noexcept {
    return attn_proj + offset_proj + value_proj + softmax + msgs_bi + aggregation;
  }
  [[nodiscard]] double msgs_total() const noexcept { return msgs_bi + aggregation; }

  FlopCount& operator+=(const FlopCount& o) noexcept;
};

/// Dense (unpruned) FLOPs of one block.
[[nodiscard]] FlopCount dense_flops(const ModelConfig& m);

/// FLOPs of one block after pruning: `kept_points` sampling points survive
/// PAP (of N*H*L*P) and `kept_pixels` fmap pixels survive FWP (of N_in).
[[nodiscard]] FlopCount pruned_flops(const ModelConfig& m, std::int64_t kept_points,
                                     std::int64_t kept_pixels);

}  // namespace defa::core
