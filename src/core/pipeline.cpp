#include "core/pipeline.h"
#include <cmath>


#include "common/stats.h"
#include "core/msgs.h"
#include "nn/norm.h"
#include "obs/trace.h"
#include "quant/fixed_point.h"

namespace defa::core {

PruneConfig PruneConfig::baseline() {
  PruneConfig c;
  c.label = "baseline";
  return c;
}

PruneConfig PruneConfig::defa_default(const ModelConfig& m) {
  PruneConfig c;
  c.label = "DEFA";
  c.pap = true;
  c.fwp = true;
  c.narrow = true;
  c.ranges = RangeSpec::level_wise_default(m.n_levels);
  c.quantize = true;
  c.bits = 12;
  return c;
}

PruneConfig PruneConfig::only_fwp(double k) {
  PruneConfig c;
  c.label = "FWP";
  c.fwp = true;
  c.fwp_k = k;
  return c;
}

PruneConfig PruneConfig::only_pap(double tau) {
  PruneConfig c;
  c.label = "PAP";
  c.pap = true;
  c.pap_tau = tau;
  return c;
}

PruneConfig PruneConfig::only_narrow(const ModelConfig& m) {
  PruneConfig c;
  c.label = "range-narrowing";
  c.narrow = true;
  c.ranges = RangeSpec::level_wise_default(m.n_levels);
  return c;
}

PruneConfig PruneConfig::only_quant(int bits) {
  PruneConfig c;
  c.label = "INT" + std::to_string(bits);
  c.quantize = true;
  c.bits = bits;
  return c;
}

double EncoderResult::point_reduction() const noexcept {
  std::int64_t total = 0, kept = 0;
  for (const auto& l : layers) {
    total += l.total_points;
    kept += l.kept_points;
  }
  return total > 0 ? 1.0 - static_cast<double>(kept) / static_cast<double>(total) : 0.0;
}

double EncoderResult::pixel_reduction() const noexcept {
  std::int64_t total = 0, kept = 0;
  for (const auto& l : layers) {
    if (l.layer == 0) continue;  // no incoming mask at the first block
    total += l.total_pixels;
    kept += l.kept_pixels;
  }
  return total > 0 ? 1.0 - static_cast<double>(kept) / static_cast<double>(total) : 0.0;
}

EncoderPipeline::EncoderPipeline(const workload::SceneWorkload& workload)
    : wl_(workload) {}

namespace {

/// Per-layer value-projection weights, deterministic in (model seed, layer).
Tensor layer_value_weights(const ModelConfig& m, int layer) {
  Rng rng(mix_seed(m.seed, 0xBEEF, static_cast<std::uint64_t>(layer)));
  const float std = 1.0f / std::sqrt(static_cast<float>(m.d_model));
  return Tensor::randn({m.d_model, m.d_model}, rng, 0.0f, std);
}

/// Zero the value rows of FWP-pruned pixels (their projection is skipped
/// by the hardware; downstream BI then reads zeros for those pixels).
void zero_pruned_rows(const ModelConfig& m, const prune::FmapMask& mask, Tensor& v) {
  for (std::int64_t t = 0; t < m.n_in(); ++t) {
    if (mask.keep(t)) continue;
    for (float& x : v.row(t)) x = 0.0f;
  }
}

/// Quantize the sampling offsets (deltaP = loc - reference center) with one
/// per-tensor spec, as the INTn MM datapath that generates them would.
/// Coarse widths (INT8) visibly shift sampling positions — the dominant
/// cause of the paper's 9.7-AP INT8 collapse.
void quantize_offsets(const ModelConfig& m, const Tensor& ref_norm, int bits,
                      Tensor& locs) {
  const std::int64_t n = m.n_in();
  Tensor offsets = locs;  // same layout; convert to offsets in place
  for (std::int64_t q = 0; q < n; ++q) {
    const float rx = ref_norm(q, 0);
    const float ry = ref_norm(q, 1);
    for (int h = 0; h < m.n_heads; ++h) {
      for (int l = 0; l < m.n_levels; ++l) {
        const LevelShape& lv = m.levels[static_cast<std::size_t>(l)];
        const float cx = rx * static_cast<float>(lv.w) - 0.5f;
        const float cy = ry * static_cast<float>(lv.h) - 0.5f;
        for (int p = 0; p < m.n_points; ++p) {
          offsets(q, h, l, p, 0) -= cx;
          offsets(q, h, l, p, 1) -= cy;
        }
      }
    }
  }
  const quant::QuantSpec spec = quant::QuantSpec::fit(offsets.data(), bits);
  for (std::int64_t q = 0; q < n; ++q) {
    const float rx = ref_norm(q, 0);
    const float ry = ref_norm(q, 1);
    for (int h = 0; h < m.n_heads; ++h) {
      for (int l = 0; l < m.n_levels; ++l) {
        const LevelShape& lv = m.levels[static_cast<std::size_t>(l)];
        const float cx = rx * static_cast<float>(lv.w) - 0.5f;
        const float cy = ry * static_cast<float>(lv.h) - 0.5f;
        for (int p = 0; p < m.n_points; ++p) {
          const float ox = quant::dequantize_value(
              quant::quantize_value(offsets(q, h, l, p, 0), spec), spec);
          const float oy = quant::dequantize_value(
              quant::quantize_value(offsets(q, h, l, p, 1), spec), spec);
          locs(q, h, l, p, 0) = cx + ox;
          locs(q, h, l, p, 1) = cy + oy;
        }
      }
    }
  }
}

}  // namespace

void EncoderPipeline::ensure_reference(const kernels::Backend* backend) const {
  std::call_once(ref_once_, [this, backend] { build_reference(backend); });
}

namespace {

/// Plan-cache key of one layer's dense geometry.
std::string layer_plan_key(int layer) { return "layer" + std::to_string(layer); }

/// Key of the locality schedule derived from that geometry.  tile_elems is
/// part of the key: the DEFA_L2_KB knob can change between calls.
std::string layer_locality_key(int layer, std::int64_t tile_elems) {
  return layer_plan_key(layer) + "#loc" + std::to_string(tile_elems);
}

}  // namespace

void EncoderPipeline::build_reference(const kernels::Backend* backend_opt) const {
  DEFA_TRACE_SPAN("reference_build", "kernel");
  const ModelConfig& m = wl_.model();
  const kernels::Backend& backend = kernels::backend_or_default(backend_opt);
  Tensor x_ref = wl_.fmap();
  ref_.reserve(static_cast<std::size_t>(m.n_layers));
  for (int layer = 0; layer < m.n_layers; ++layer) {
    LayerRef lr;
    lr.fields = wl_.layer_fields(layer);
    lr.probs = backend.softmax_lastdim(lr.fields.logits);
    const Tensor v_ref = backend.matmul(x_ref, layer_value_weights(m, layer));
    std::shared_ptr<const kernels::SamplingPlan> plan;
    std::shared_ptr<const kernels::LocalityPlan> locality;
    if (backend.wants_plan()) {
      plan = plan_cache_.get(layer_plan_key(layer), m, lr.fields.locs);
      if (backend.wants_locality()) {
        const std::int64_t tile_elems = kernels::locality_tile_elems();
        locality = plan_cache_.get_locality(layer_locality_key(layer, tile_elems), m,
                                            *plan, tile_elems);
      }
    }
    MsgsOptions opt;
    opt.backend = &backend;
    opt.plan = plan.get();
    opt.locality = locality.get();
    lr.out_ref = run_msgs(m, v_ref, lr.probs, lr.fields.locs, opt);
    x_ref.add_(lr.out_ref);
    nn::rms_norm_rows(x_ref);
    ref_.push_back(std::move(lr));
  }
  x_ref_final_ = std::move(x_ref);
}

const nn::MsdaFields& EncoderPipeline::layer_fields(int layer) const {
  ensure_reference();
  DEFA_CHECK(layer >= 0 && layer < static_cast<int>(ref_.size()), "layer out of range");
  return ref_[static_cast<std::size_t>(layer)].fields;
}

const Tensor& EncoderPipeline::layer_probs(int layer) const {
  ensure_reference();
  DEFA_CHECK(layer >= 0 && layer < static_cast<int>(ref_.size()), "layer out of range");
  return ref_[static_cast<std::size_t>(layer)].probs;
}


EncoderResult EncoderPipeline::run(const PruneConfig& cfg,
                                   const kernels::Backend* backend_opt) const {
  ensure_reference(backend_opt);
  const kernels::Backend& backend = kernels::backend_or_default(backend_opt);
  const ModelConfig& m = wl_.model();
  EncoderResult result;
  result.config_label = cfg.label;

  // Baseline short-circuit: with no technique enabled the pruned run is the
  // dense reference by construction.
  if (!cfg.any_enabled()) {
    for (int layer = 0; layer < m.n_layers; ++layer) {
      LayerRunStats ls;
      ls.layer = layer;
      ls.total_points = m.n_in() * m.n_heads * m.n_levels * m.n_points;
      ls.kept_points = ls.total_points;
      ls.total_pixels = m.n_in();
      ls.kept_pixels = ls.total_pixels;
      ls.flops_dense = dense_flops(m);
      ls.flops_actual = ls.flops_dense;
      result.total_dense += ls.flops_dense;
      result.total_actual += ls.flops_actual;
      result.point_masks.emplace_back(m);
      result.fmap_masks.emplace_back(m);
      result.layers.push_back(std::move(ls));
    }
    return result;
  }

  // The pruned trajectory diverges from the cached dense reference through
  // the enabled techniques; both share X0 and all scene-driven fields.
  Tensor x = wl_.fmap();

  prune::FmapMask fmask(m);  // all-keep for the first block

  for (int layer = 0; layer < m.n_layers; ++layer) {
    const LayerRef& lref = ref_[static_cast<std::size_t>(layer)];
    const nn::MsdaFields& fields = lref.fields;
    const Tensor& probs = lref.probs;
    const Tensor& out_ref = lref.out_ref;
    const Tensor w_value = layer_value_weights(m, layer);

    // ---------------- DEFA block -------------------------------
    LayerRunStats ls;
    ls.layer = layer;
    ls.total_points = m.n_in() * m.n_heads * m.n_levels * m.n_points;
    ls.total_pixels = m.n_in();

    // (1) INTn generation of logits and offsets (the MM-mode datapath),
    // then range narrowing of the resulting sampling locations.
    Tensor locs = fields.locs;
    Tensor probs_hw = probs;
    if (cfg.quantize || cfg.narrow) {
      DEFA_TRACE_SPAN_ARG("quantize_narrow", "kernel", "layer", layer);
      if (cfg.quantize) {
        quantize_offsets(m, wl_.ref_norm(), cfg.bits, locs);
        probs_hw = backend.softmax_lastdim(quant::fake_quantize(fields.logits, cfg.bits));
      }
      if (cfg.narrow) {
        ls.clamp = prune::clamp_to_range(m, wl_.ref_norm(), cfg.ranges, locs);
      }
    }
    // Quantization and range narrowing move the sampling locations; only
    // the unmoved dense geometry can reuse the cached per-layer plan, and
    // only plan-consuming backends need one at all.
    const bool dense_geometry = !cfg.quantize && !cfg.narrow;
    std::shared_ptr<const kernels::SamplingPlan> plan;
    std::shared_ptr<const kernels::LocalityPlan> locality;
    if (dense_geometry && backend.wants_plan()) {
      DEFA_TRACE_SPAN_ARG("plan_build", "kernel", "layer", layer);
      plan = plan_cache_.get(layer_plan_key(layer), m, locs);
      if (backend.wants_locality()) {
        const std::int64_t tile_elems = kernels::locality_tile_elems();
        locality = plan_cache_.get_locality(layer_locality_key(layer, tile_elems), m,
                                            *plan, tile_elems);
      }
    }

    // (2) PAP point mask from the (hardware) softmax probabilities
    prune::PointMask pmask(m);
    if (cfg.pap) {
      DEFA_TRACE_SPAN_ARG("pap_prune", "kernel", "layer", layer);
      pmask = prune::pap_prune(m, probs_hw, cfg.pap_tau, &ls.pap);
    }
    ls.kept_points = pmask.kept_count();

    // (3) FWP-masked value projection (mask from the previous block)
    ls.kept_pixels = fmask.kept_count();
    Tensor v;
    {
      DEFA_TRACE_SPAN_ARG("value_projection", "kernel", "layer", layer);
      if (cfg.quantize) {
        const Tensor xq = quant::fake_quantize(x, cfg.bits);
        const Tensor wq = quant::fake_quantize(w_value, cfg.bits);
        v = backend.matmul(xq, wq);
        v = quant::fake_quantize(v, cfg.bits);
      } else {
        v = backend.matmul(x, w_value);
      }
      if (cfg.fwp) zero_pruned_rows(m, fmask, v);
    }

    // (4) fused MSGS + aggregation (INTn datapath when quantizing)
    Tensor out;
    {
      DEFA_TRACE_SPAN_ARG("gather_aggregate", "kernel", "layer", layer);
      MsgsOptions opt;
      opt.point_mask = &pmask;
      opt.quantized = cfg.quantize;
      opt.act_bits = cfg.bits;
      opt.frac_bits = cfg.bits;
      opt.backend = &backend;
      opt.plan = plan.get();
      opt.locality = locality.get();
      out = run_msgs(m, v, probs_hw, locs, opt);
    }

    // (5) frequency counting -> fmap mask for the next block
    prune::FmapMask next_fmask(m);
    if (cfg.fwp) {
      DEFA_TRACE_SPAN_ARG("fwp_prune", "kernel", "layer", layer);
      const prune::FreqCounter freq = prune::count_sampled_frequency(m, locs, pmask);
      next_fmask = prune::fwp_prune(m, freq, cfg.fwp_k, &ls.fwp);
    }

    // ---------------- bookkeeping ------------------------------
    ls.flops_dense = dense_flops(m);
    ls.flops_actual = pruned_flops(m, ls.kept_points, ls.kept_pixels);
    ls.out_nrmse = nrmse(out_ref.data(), out.data());
    result.total_dense += ls.flops_dense;
    result.total_actual += ls.flops_actual;

    result.point_masks.push_back(std::move(pmask));
    result.fmap_masks.push_back(std::move(fmask));
    fmask = std::move(next_fmask);
    result.layers.push_back(std::move(ls));

    // ---------------- residual + norm, advance the pruned trajectory
    x.add_(out);
    nn::rms_norm_rows(x);
  }

  result.final_nrmse = nrmse(x_ref_final_.data(), x.data());
  return result;
}

}  // namespace defa::core
