#pragma once

/// \file msgs.h
/// Production MSGS + aggregation entry point of the functional model: one
/// code path that supports point masks (PAP), pruned value rows (FWP pixels
/// are zeroed before projection) and the INTn hardware datapath (Horner BI
/// on integer codes, Sec. 4.3).
///
/// The numeric work itself lives in a pluggable `kernels::Backend`
/// (src/kernels/backend.h): `run_msgs` validates shapes and dispatches to
/// the backend named in the options (default: the process default —
/// `DEFA_BACKEND` or "reference").  The unmasked fp32 configuration
/// reproduces nn::msgs_aggregate_ref bit-for-bit in fp32 on every backend
/// (covered by tests/test_kernels.cpp).

#include "config/model_config.h"
#include "kernels/backend.h"
#include "prune/masks.h"
#include "tensor/tensor.h"

namespace defa::core {

struct MsgsOptions {
  /// Points pruned by PAP are skipped entirely (no BI, no aggregation).
  const prune::PointMask* point_mask = nullptr;
  /// Run the integer datapath: values/probs/fractions quantized to the
  /// given widths, BI in Horner form on codes, aggregation in fixed point.
  bool quantized = false;
  int act_bits = 12;   ///< value-code width
  int frac_bits = 12;  ///< t0/t1 and probability fraction width
  /// Compute backend; nullptr selects kernels::default_backend().
  const kernels::Backend* backend = nullptr;
  /// Optional cached sampling plan for `locs` (see kernels/plan.h); used
  /// by plan-consuming backends, ignored by the reference backend.
  const kernels::SamplingPlan* plan = nullptr;
  /// Optional cached gather-locality schedule derived from `plan`; used by
  /// reordering backends (quill), ignored by everything else.
  const kernels::LocalityPlan* locality = nullptr;
};

/// Grid-sample `values` (N_in x D) at `locs` (N, H, L, P, 2) and aggregate
/// with `probs` (N, H, L*P).  Returns the (N, D) head-concatenated output.
[[nodiscard]] Tensor run_msgs(const ModelConfig& m, const Tensor& values,
                              const Tensor& probs, const Tensor& locs,
                              const MsgsOptions& options);

}  // namespace defa::core
