#pragma once

/// \file msgs.h
/// Production MSGS + aggregation engine of the functional model: one code
/// path that supports point masks (PAP), pruned value rows (FWP pixels are
/// zeroed before projection) and the INTn hardware datapath (Horner BI on
/// integer codes, Sec. 4.3).  The unmasked fp32 configuration reproduces
/// nn::msgs_aggregate_ref bit-for-bit in fp32 (covered by tests).

#include "config/model_config.h"
#include "prune/masks.h"
#include "tensor/tensor.h"

namespace defa::core {

struct MsgsOptions {
  /// Points pruned by PAP are skipped entirely (no BI, no aggregation).
  const prune::PointMask* point_mask = nullptr;
  /// Run the integer datapath: values/probs/fractions quantized to the
  /// given widths, BI in Horner form on codes, aggregation in fixed point.
  bool quantized = false;
  int act_bits = 12;   ///< value-code width
  int frac_bits = 12;  ///< t0/t1 and probability fraction width
};

/// Grid-sample `values` (N_in x D) at `locs` (N, H, L, P, 2) and aggregate
/// with `probs` (N, H, L*P).  Returns the (N, D) head-concatenated output.
[[nodiscard]] Tensor run_msgs(const ModelConfig& m, const Tensor& values,
                              const Tensor& probs, const Tensor& locs,
                              const MsgsOptions& options);

}  // namespace defa::core
