#include "core/msgs.h"

namespace defa::core {

Tensor run_msgs(const ModelConfig& m, const Tensor& values, const Tensor& probs,
                const Tensor& locs, const MsgsOptions& options) {
  DEFA_CHECK(values.rank() == 2 && values.dim(0) == m.n_in() && values.dim(1) == m.d_model,
             "values must be (N_in, D)");
  DEFA_CHECK(probs.rank() == 3 && probs.dim(0) == m.n_in(), "probs must be (N, H, L*P)");
  DEFA_CHECK(locs.rank() == 5 && locs.dim(0) == m.n_in(), "locs must be (N, H, L, P, 2)");

  const kernels::Backend& backend = kernels::backend_or_default(options.backend);
  kernels::MsgsSpec spec;
  spec.point_mask = options.point_mask;
  spec.quantized = options.quantized;
  spec.act_bits = options.act_bits;
  spec.frac_bits = options.frac_bits;
  spec.plan = options.plan;
  spec.locality = options.locality;
  return backend.run_msgs(m, values, probs, locs, spec);
}

}  // namespace defa::core
