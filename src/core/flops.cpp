#include "core/flops.h"

namespace defa::core {

FlopCount& FlopCount::operator+=(const FlopCount& o) noexcept {
  attn_proj += o.attn_proj;
  offset_proj += o.offset_proj;
  value_proj += o.value_proj;
  softmax += o.softmax;
  msgs_bi += o.msgs_bi;
  aggregation += o.aggregation;
  return *this;
}

FlopCount pruned_flops(const ModelConfig& m, std::int64_t kept_points,
                       std::int64_t kept_pixels) {
  const double n = static_cast<double>(m.n_in());
  const double d = static_cast<double>(m.d_model);
  const double dh = static_cast<double>(m.d_head());
  const double hlp = static_cast<double>(m.n_heads) * m.points_per_head();
  const double pts = static_cast<double>(kept_points);
  const double pix = static_cast<double>(kept_pixels);

  FlopCount f;
  // Attention logits are always computed densely: PAP needs the full
  // softmax output before it can prune anything.
  f.attn_proj = 2.0 * n * d * hlp;
  // Each surviving point needs its (x, y) offset pair: 2 columns of W_S.
  f.offset_proj = 2.0 * pts * d * 2.0;
  // Each surviving pixel is projected through the D x D value matrix.
  f.value_proj = 2.0 * pix * d * d;
  f.softmax = 5.0 * n * hlp;
  // Direct-form BI: 4 MACs per channel per surviving point.
  f.msgs_bi = 2.0 * pts * dh * 4.0;
  // Aggregation: 1 MAC per channel per surviving point.
  f.aggregation = 2.0 * pts * dh;
  return f;
}

FlopCount dense_flops(const ModelConfig& m) {
  const std::int64_t all_points =
      m.n_in() * m.n_heads * m.n_levels * m.n_points;
  return pruned_flops(m, all_points, m.n_in());
}

}  // namespace defa::core
