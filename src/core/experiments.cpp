#include "core/experiments.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace defa::core {

namespace {

/// Deployment power overhead of the scaled DEFA instances used in Fig. 9
/// (HBM PHY + controller, host interface, regulators), W per peak TOPS.
/// Single documented calibration scalar for the EE magnitude; all relative
/// behaviour (benchmark/GPU ordering) is model-driven.  See EXPERIMENTS.md.
constexpr double kSystemOverheadWPerTops = 10.0;

workload::SceneParams default_scene(const ModelConfig& m) {
  workload::SceneParams params;
  params.seed = m.seed;
  return params;
}

}  // namespace

BenchmarkContext::BenchmarkContext(ModelConfig model)
    : BenchmarkContext(std::move(model), workload::SceneParams{}) {
  scene_ = default_scene(model_);
}

BenchmarkContext::BenchmarkContext(ModelConfig model,
                                   const workload::SceneParams& scene)
    : model_(std::move(model)), scene_(scene) {
  model_.validate();
}

void BenchmarkContext::ensure_workload_locked() {
  if (wl_ != nullptr) return;
  wl_ = std::make_unique<workload::SceneWorkload>(model_, scene_);
  pipe_ = std::make_unique<EncoderPipeline>(*wl_);
}

const workload::SceneWorkload& BenchmarkContext::workload_ref() {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_workload_locked();
  return *wl_;
}

const EncoderPipeline& BenchmarkContext::pipeline() {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_workload_locked();
  return *pipe_;
}

void BenchmarkContext::ensure_defa_locked(const kernels::Backend* backend) {
  ensure_workload_locked();
  if (defa_ == nullptr) {
    defa_ = std::make_unique<EncoderResult>(
        pipe_->run(PruneConfig::defa_default(model_), backend));
  }
}

const EncoderResult& BenchmarkContext::defa_result(const kernels::Backend* backend) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_defa_locked(backend);
  return *defa_;
}

void BenchmarkContext::ensure_narrowed_locs_locked() {
  ensure_workload_locked();
  if (!narrowed_locs_.empty()) return;
  const RangeSpec ranges = RangeSpec::level_wise_default(model_.n_levels);
  narrowed_locs_.reserve(static_cast<std::size_t>(model_.n_layers));
  for (int l = 0; l < model_.n_layers; ++l) {
    Tensor locs = pipe_->layer_fields(l).locs;
    (void)prune::clamp_to_range(model_, wl_->ref_norm(), ranges, locs);
    narrowed_locs_.push_back(std::move(locs));
  }
}

void BenchmarkContext::ensure_dense_masks_locked() {
  if (all_keep_points_ == nullptr) {
    all_keep_points_ = std::make_unique<prune::PointMask>(model_);
    all_keep_pixels_ = std::make_unique<prune::FmapMask>(model_);
  }
}

std::vector<arch::LayerTrace> BenchmarkContext::defa_traces() {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_defa_locked();
  ensure_narrowed_locs_locked();
  std::vector<arch::LayerTrace> traces;
  for (int l = 0; l < model_.n_layers; ++l) {
    arch::LayerTrace t;
    t.locs = &narrowed_locs_[static_cast<std::size_t>(l)];
    t.pmask = &defa_->point_masks[static_cast<std::size_t>(l)];
    t.fmask = &defa_->fmap_masks[static_cast<std::size_t>(l)];
    t.ref_norm = &wl_->ref_norm();
    traces.push_back(t);
  }
  return traces;
}

std::vector<arch::LayerTrace> BenchmarkContext::dense_traces() {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_workload_locked();
  ensure_narrowed_locs_locked();
  ensure_dense_masks_locked();
  std::vector<arch::LayerTrace> traces;
  for (int l = 0; l < model_.n_layers; ++l) {
    arch::LayerTrace t;
    t.locs = &narrowed_locs_[static_cast<std::size_t>(l)];
    t.pmask = all_keep_points_.get();
    t.fmask = all_keep_pixels_.get();
    t.ref_norm = &wl_->ref_norm();
    traces.push_back(t);
  }
  return traces;
}

std::vector<arch::LayerTrace> BenchmarkContext::traces_for(const EncoderResult& r) {
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_workload_locked();
  ensure_narrowed_locs_locked();
  DEFA_CHECK(static_cast<int>(r.point_masks.size()) == model_.n_layers &&
                 static_cast<int>(r.fmap_masks.size()) == model_.n_layers,
             "traces_for: result does not match this context's model");
  std::vector<arch::LayerTrace> traces;
  for (int l = 0; l < model_.n_layers; ++l) {
    arch::LayerTrace t;
    t.locs = &narrowed_locs_[static_cast<std::size_t>(l)];
    t.pmask = &r.point_masks[static_cast<std::size_t>(l)];
    t.fmask = &r.fmap_masks[static_cast<std::size_t>(l)];
    t.ref_norm = &wl_->ref_norm();
    traces.push_back(t);
  }
  return traces;
}

double BenchmarkContext::dense_encoder_flops() const {
  return dense_flops(model_).total() * model_.n_layers;
}

// ------------------------------------------------------------------ ContextPool

std::shared_ptr<BenchmarkContext> ContextPool::get(const ModelConfig& m) {
  return get(m, default_scene(m));
}

std::shared_ptr<BenchmarkContext> ContextPool::get(
    const ModelConfig& m, const workload::SceneParams& scene) {
  const std::string key = key_of(m, scene);
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    if (max_contexts_ > 0 && entries_.size() >= max_contexts_) {
      // Evict the least-recently-used entry.  In-flight holders keep their
      // shared_ptr; the pool just forgets the key.
      auto victim = entries_.begin();
      for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
        if (cand->second.last_used < victim->second.last_used) victim = cand;
      }
      entries_.erase(victim);
      ++stats_.evictions;
    }
    it = entries_.emplace(key, Entry{std::make_shared<BenchmarkContext>(m, scene), 0})
             .first;
  } else {
    ++stats_.hits;
  }
  it->second.last_used = ++tick_;
  return it->second.ctx;
}

std::string ContextPool::key_of(const ModelConfig& m,
                                const workload::SceneParams& scene) {
  std::ostringstream key;
  key.precision(17);
  key << m.name << '|' << m.d_model << '|' << m.n_heads << '|' << m.n_levels << '|'
      << m.n_points << '|' << m.n_layers << '|';
  for (const LevelShape& lv : m.levels) key << lv.h << 'x' << lv.w << ',';
  key << '|' << m.baseline_ap << '|' << m.seed << '|';
  key << scene.n_objects << '|' << scene.object_sigma_min << '|'
      << scene.object_sigma_max << '|' << scene.feature_noise << '|'
      << scene.background_level << '|' << scene.logit_gain << '|'
      << scene.logit_noise << '|' << scene.seek_fraction << '|'
      << scene.seek_strength << '|' << scene.seek_cap_px << '|'
      << scene.ring_scale_px << '|';
  for (const double s : scene.offset_sigma_px) key << s << ',';
  key << '|' << scene.tail_prob << '|' << scene.tail_scale << '|'
      << scene.layer_jitter << '|' << scene.seed;
  return key.str();
}

std::size_t ContextPool::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t ContextPool::max_contexts() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return max_contexts_;
}

void ContextPool::set_max_contexts(std::size_t max_contexts) {
  const std::lock_guard<std::mutex> lock(mu_);
  max_contexts_ = max_contexts;
  while (max_contexts_ > 0 && entries_.size() > max_contexts_) {
    auto victim = entries_.begin();
    for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
      if (cand->second.last_used < victim->second.last_used) victim = cand;
    }
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

void ContextPool::reset_stats() {
  const std::lock_guard<std::mutex> lock(mu_);
  stats_ = CacheStats{};
}

ContextPool::CacheStats ContextPool::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ContextPool::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

// ---------------------------------------------------------------------------

std::vector<Fig1bRow> run_fig1b() {
  std::vector<Fig1bRow> rows;
  const baseline::GpuSpec gpu = baseline::GpuSpec::rtx3090ti();
  for (const ModelConfig& m : ModelConfig::paper_benchmarks()) {
    Fig1bRow row;
    row.benchmark = m.name;
    row.layer = baseline::gpu_layer_time(m, gpu);
    row.msgs_latency_share = row.layer.msgs_share();
    const FlopCount f = dense_flops(m);
    row.msgs_flop_share = f.msgs_total() / f.total();
    rows.push_back(row);
  }
  return rows;
}

std::vector<Fig6aRow> run_fig6a(ContextPool& pool) {
  using accuracy::ApModel;
  using accuracy::Technique;
  const ApModel& ap = ApModel::paper_calibrated();

  std::vector<Fig6aRow> rows;
  for (const ModelConfig& m : ModelConfig::paper_benchmarks()) {
    const auto ctx = pool.get(m);
    const EncoderPipeline& pipe = ctx->pipeline();

    Fig6aRow row;
    row.benchmark = m.name;
    row.baseline_ap = m.baseline_ap;
    row.err_fwp = pipe.run(PruneConfig::only_fwp()).final_nrmse;
    row.err_pap = pipe.run(PruneConfig::only_pap()).final_nrmse;
    row.err_narrow = pipe.run(PruneConfig::only_narrow(m)).final_nrmse;
    row.err_int12 = pipe.run(PruneConfig::only_quant(12)).final_nrmse;
    row.err_int8 = pipe.run(PruneConfig::only_quant(8)).final_nrmse;

    row.drop_fwp = ap.drop(Technique::kFwp, row.err_fwp);
    row.drop_pap = ap.drop(Technique::kPap, row.err_pap);
    row.drop_narrow = ap.drop(Technique::kNarrow, row.err_narrow);
    row.drop_int12 = ap.drop(Technique::kQuant12, row.err_int12);
    row.drop_int8 = ap.drop(Technique::kQuant8, row.err_int8);

    row.defa_ap = row.baseline_ap -
                  (row.drop_fwp + row.drop_pap + row.drop_narrow + row.drop_int12);
    rows.push_back(row);
  }
  return rows;
}

std::vector<Fig6bRow> run_fig6b(ContextPool& pool) {
  std::vector<Fig6bRow> rows;
  for (const ModelConfig& m : ModelConfig::paper_benchmarks()) {
    const auto ctx = pool.get(m);
    const EncoderResult& r = ctx->defa_result();
    rows.push_back(Fig6bRow{m.name, r.point_reduction(), r.pixel_reduction(),
                            r.flop_reduction()});
  }
  return rows;
}

std::vector<Fig7aRow> run_fig7a(ContextPool& pool) {
  std::vector<Fig7aRow> rows;
  for (const ModelConfig& m : ModelConfig::paper_benchmarks()) {
    const auto ctx = pool.get(m);

    HwConfig inter = HwConfig::make_default(m);
    HwConfig intra = inter;
    intra.parallelism = MsgsParallelism::kIntraLevel;
    const arch::MsgsEngine inter_engine(m, inter);
    const arch::MsgsEngine intra_engine(m, intra);

    // Hardware-only comparison at the same degree of parallelism: dense
    // sampling (no PAP), all blocks.
    arch::MsgsPerf inter_perf, intra_perf, inter_pruned, intra_pruned;
    const auto dense = ctx->dense_traces();
    const auto pruned = ctx->defa_traces();
    for (int l = 0; l < m.n_layers; ++l) {
      inter_perf += inter_engine.run(*dense[static_cast<std::size_t>(l)].locs,
                                     *dense[static_cast<std::size_t>(l)].pmask);
      intra_perf += intra_engine.run(*dense[static_cast<std::size_t>(l)].locs,
                                     *dense[static_cast<std::size_t>(l)].pmask);
      inter_pruned += inter_engine.run(*pruned[static_cast<std::size_t>(l)].locs,
                                       *pruned[static_cast<std::size_t>(l)].pmask);
      intra_pruned += intra_engine.run(*pruned[static_cast<std::size_t>(l)].locs,
                                       *pruned[static_cast<std::size_t>(l)].pmask);
    }

    Fig7aRow row;
    row.benchmark = m.name;
    row.inter_points_per_cycle = inter_perf.points_per_cycle();
    row.intra_points_per_cycle = intra_perf.points_per_cycle();
    row.boost = row.inter_points_per_cycle / row.intra_points_per_cycle;
    row.intra_conflict_rate = intra_perf.groups > 0
                                  ? static_cast<double>(intra_perf.conflict_groups) /
                                        static_cast<double>(intra_perf.groups)
                                  : 0.0;
    row.boost_pruned =
        inter_pruned.points_per_cycle() / intra_pruned.points_per_cycle();
    rows.push_back(row);
  }
  return rows;
}

namespace {

/// DRAM/SRAM energy of the MSGS phase only (Fig. 7b accounting).
struct MsgsMemEnergy {
  double dram_pj = 0;
  double sram_pj = 0;
  [[nodiscard]] double total() const noexcept { return dram_pj + sram_pj; }
};

MsgsMemEnergy msgs_memory_energy(const ModelConfig& m, const HwConfig& hw,
                                 const arch::RunPerf& run) {
  const energy::SramPlan plan = energy::build_sram_plan(m, hw);
  const double read_pj = plan.avg_read_pj_per_byte();
  const double write_pj = plan.avg_write_pj_per_byte();
  MsgsMemEnergy e;
  for (const arch::LayerPerf& layer : run.layers) {
    for (const arch::PhaseStats& p : layer.phases) {
      if (p.name != "msgs+ag") continue;
      e.dram_pj += static_cast<double>(p.dram_bytes()) * hw.dram_pj_per_bit * 8.0;
      e.sram_pj += static_cast<double>(p.sram_read_bytes) * read_pj +
                   static_cast<double>(p.sram_write_bytes) * write_pj;
    }
  }
  return e;
}

}  // namespace

std::vector<Fig7bRow> run_fig7b(ContextPool& pool) {
  std::vector<Fig7bRow> rows;
  for (const ModelConfig& m : ModelConfig::paper_benchmarks()) {
    const auto ctx = pool.get(m);
    // Hardware-tactic isolation (like Fig. 7a): dense sampling, so the
    // fusion ablation moves the full sampling-value tensor.  The paper's
    // 73.3% + 88.2% pair is only mutually consistent under this reading
    // (see EXPERIMENTS.md).
    const auto traces = ctx->dense_traces();

    auto simulate = [&](bool fusion, bool reuse) {
      HwConfig hw = HwConfig::make_default(m);
      hw.enable_operator_fusion = fusion;
      hw.enable_fmap_reuse = reuse;
      const arch::DefaAccelerator acc(m, hw);
      return msgs_memory_energy(m, hw, acc.simulate_run(traces));
    };

    const MsgsMemEnergy full = simulate(true, true);
    const MsgsMemEnergy no_fusion = simulate(false, true);
    const MsgsMemEnergy no_reuse = simulate(true, false);

    Fig7bRow row;
    row.benchmark = m.name;
    row.fusion_dram_saving = (no_fusion.dram_pj - full.dram_pj) / no_fusion.total();
    row.fusion_sram_saving = (no_fusion.sram_pj - full.sram_pj) / no_fusion.total();
    row.reuse_dram_saving = (no_reuse.dram_pj - full.dram_pj) / no_reuse.total();
    row.reuse_sram_saving = (no_reuse.sram_pj - full.sram_pj) / no_reuse.total();

    // Sanity rows quoted in the paper's text.
    HwConfig hw = HwConfig::make_default(m);
    const energy::SramPlan with_fusion = energy::build_sram_plan(m, hw);
    HwConfig hw_nf = hw;
    hw_nf.enable_operator_fusion = false;
    const energy::SramPlan without_fusion = energy::build_sram_plan(m, hw_nf);
    row.fusion_extra_sram_frac =
        static_cast<double>(with_fusion.total_bytes() - without_fusion.total_bytes()) /
        static_cast<double>(without_fusion.total_bytes());

    const arch::DefaAccelerator acc(m, hw);
    const arch::RunPerf run = acc.simulate_run(traces);
    const arch::PhaseStats total = run.total();
    // Pruning bookkeeping SRAM traffic: frequency counters + masks.
    double prune_bytes = 0;
    for (int l = 0; l < m.n_layers; ++l) {
      const auto kept = static_cast<double>(
          ctx->defa_result().point_masks[static_cast<std::size_t>(l)].kept_count());
      prune_bytes += kept * 4 * 2 * 2 + static_cast<double>(m.n_in()) / 8.0;
    }
    row.prune_sram_access_frac =
        prune_bytes /
        static_cast<double>(total.sram_read_bytes + total.sram_write_bytes);
    rows.push_back(row);
  }
  return rows;
}

Fig8Result run_fig8(ContextPool& pool) {
  const ModelConfig m = ModelConfig::deformable_detr();
  const auto ctx = pool.get(m);
  const auto traces = ctx->defa_traces();

  Fig8Result result;
  HwConfig hw = HwConfig::make_default(m);
  result.area = energy::area_breakdown(m, hw);
  {
    const arch::DefaAccelerator acc(m, hw);
    result.energy_default = energy::energy_breakdown(m, hw, acc.simulate_run(traces));
  }
  {
    HwConfig hw_restream = hw;
    hw_restream.act_streaming = ActStreaming::kRestreamPerColTile;
    const arch::DefaAccelerator acc(m, hw_restream);
    result.energy_restream =
        energy::energy_breakdown(m, hw_restream, acc.simulate_run(traces));
  }
  return result;
}

std::vector<Fig9Row> run_fig9(ContextPool& pool) {
  std::vector<Fig9Row> rows;
  const std::vector<baseline::GpuSpec> gpus = {baseline::GpuSpec::rtx2080ti(),
                                               baseline::GpuSpec::rtx3090ti()};
  for (const ModelConfig& m : ModelConfig::paper_benchmarks()) {
    const auto ctx = pool.get(m);
    const auto traces = ctx->defa_traces();
    const double dense_ops = ctx->dense_encoder_flops();

    for (const baseline::GpuSpec& gpu : gpus) {
      HwConfig hw = HwConfig::make_default(m);
      // Iso-peak-throughput scaling (Sec. 5.4): tile the design up to the
      // GPU's peak TOPS and provision a GPU-class memory system.
      hw.tiles = std::max(
          1, static_cast<int>(std::lround(gpu.fp32_tflops * 1e3 / hw.peak_gops())));
      hw.dram_gbps = gpu.dram_gbps;
      const arch::DefaAccelerator acc(m, hw);
      const arch::RunPerf run = acc.simulate_run(traces);
      const energy::PerfSummary sum = energy::summarize(m, hw, run, dense_ops);

      Fig9Row row;
      row.benchmark = m.name;
      row.gpu = gpu.name;
      row.tiles = hw.tiles;
      row.gpu_time_ms = baseline::gpu_encoder_time_s(m, gpu) * 1e3;
      row.defa_time_ms = sum.time_ms;
      row.speedup = row.gpu_time_ms / row.defa_time_ms;
      row.gpu_energy_j = baseline::gpu_encoder_energy_j(m, gpu);
      const double overhead_w =
          kSystemOverheadWPerTops * hw.peak_gops() * 1e-3;  // W
      const double defa_device_j =
          energy::energy_breakdown(m, hw, run).total_pj() * 1e-12;
      row.defa_energy_j = defa_device_j + overhead_w * sum.time_ms * 1e-3;
      row.ee_improvement = row.gpu_energy_j / row.defa_energy_j;

      // Bandwidth-unconstrained upper bound (same energy per byte, no
      // DRAM latency roofline).
      HwConfig hw_nolimit = hw;
      hw_nolimit.dram_gbps = 0.0;
      const arch::DefaAccelerator acc_nolimit(m, hw_nolimit);
      const arch::RunPerf run_nolimit = acc_nolimit.simulate_run(traces);
      const double t_nolimit_ms =
          static_cast<double>(run_nolimit.wall_cycles()) * hw.cycle_ns() * 1e-6;
      row.speedup_compute_bound = row.gpu_time_ms / t_nolimit_ms;
      row.ee_compute_bound =
          row.gpu_energy_j / (defa_device_j + overhead_w * t_nolimit_ms * 1e-3);
      rows.push_back(row);
    }
  }
  return rows;
}

std::vector<baseline::AsicRecord> run_table1(ContextPool& pool) {
  std::vector<baseline::AsicRecord> records = baseline::attention_asic_records();

  const ModelConfig m = ModelConfig::deformable_detr();
  const auto ctx = pool.get(m);
  const HwConfig hw = HwConfig::make_default(m);
  const arch::DefaAccelerator acc(m, hw);
  const arch::RunPerf run = acc.simulate_run(ctx->defa_traces());
  const energy::PerfSummary sum =
      energy::summarize(m, hw, run, ctx->dense_encoder_flops());

  baseline::AsicRecord defa;
  defa.name = "DEFA (ours)";
  defa.venue = "DAC'24";
  defa.function = "DeformAttn";
  defa.tech_nm = 40;
  defa.area_mm2 = sum.area_mm2;
  defa.freq_mhz = hw.freq_mhz;
  defa.precision = "INT12";
  defa.power_mw = sum.chip_power_mw;
  defa.throughput_gops = sum.effective_gops;
  defa.ee_gops_per_w = sum.gops_per_w;
  records.push_back(defa);
  return records;
}

}  // namespace defa::core
