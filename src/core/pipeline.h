#pragma once

/// \file pipeline.h
/// The DEFA functional encoder pipeline: N MSDeformAttn blocks with the
/// paper's four algorithm-level techniques applied in hardware order
/// (Sec. 4.1) —
///   softmax -> PAP point mask -> (masked) offset generation ->
///   FWP-masked value projection -> range-narrowed, fused MSGS+aggregation
///   (optionally on the INTn datapath) -> frequency counting -> fmap mask
///   for the next block.
///
/// A dense fp32 reference trajectory runs alongside the pruned trajectory;
/// the divergence between the two feeds the accuracy proxy (Fig. 6a), the
/// masks feed the cycle-accurate simulator, and the kept/total counts feed
/// the reduction figures (Fig. 6b).

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "config/hw_config.h"
#include "core/flops.h"
#include "kernels/backend.h"
#include "kernels/plan.h"
#include "prune/fwp.h"
#include "prune/masks.h"
#include "prune/pap.h"
#include "prune/range.h"
#include "workload/scene.h"

namespace defa::core {

/// Algorithm-level configuration of one pipeline run.
struct PruneConfig {
  std::string label = "baseline";

  bool pap = false;
  double pap_tau = 0.03;  ///< probabilities below tau are pruned

  bool fwp = false;
  double fwp_k = 0.66;  ///< Eq. 2 multiplier

  bool narrow = false;
  RangeSpec ranges{};  ///< used when narrow == true

  bool quantize = false;
  int bits = 12;

  /// Dense fp32 run (no technique enabled).
  [[nodiscard]] static PruneConfig baseline();
  /// Full DEFA configuration (all four techniques, INT12).
  [[nodiscard]] static PruneConfig defa_default(const ModelConfig& m);
  /// Single-technique configurations for the Fig. 6(a) breakdown.
  [[nodiscard]] static PruneConfig only_fwp(double k = 0.66);
  [[nodiscard]] static PruneConfig only_pap(double tau = 0.03);
  [[nodiscard]] static PruneConfig only_narrow(const ModelConfig& m);
  [[nodiscard]] static PruneConfig only_quant(int bits);

  [[nodiscard]] bool any_enabled() const noexcept {
    return pap || fwp || narrow || quantize;
  }
};

/// Per-block measurements of one pipeline run.
struct LayerRunStats {
  int layer = 0;
  prune::PapStats pap;
  prune::FwpStats fwp;      ///< mask generated *by* this layer (for the next)
  prune::ClampStats clamp;

  std::int64_t total_points = 0;
  std::int64_t kept_points = 0;
  std::int64_t total_pixels = 0;
  std::int64_t kept_pixels = 0;  ///< pixels available to this layer's V-projection

  FlopCount flops_dense;
  FlopCount flops_actual;

  /// Output divergence vs the dense fp32 reference trajectory.
  double out_nrmse = 0.0;
};

/// Everything a pipeline run produces.
struct EncoderResult {
  std::string config_label;
  std::vector<LayerRunStats> layers;
  /// PAP masks per layer (consumed by the cycle-accurate simulator).
  std::vector<prune::PointMask> point_masks;
  /// FWP mask *applied* at each layer (all-keep at layer 0).
  std::vector<prune::FmapMask> fmap_masks;

  FlopCount total_dense;
  FlopCount total_actual;
  /// NRMSE of the final token matrix vs the dense trajectory.
  double final_nrmse = 0.0;

  /// Fraction of sampling points pruned, across all layers.
  [[nodiscard]] double point_reduction() const noexcept;
  /// Fraction of fmap pixels pruned, across layers where a mask applies
  /// (layer 1 onward — layer 0 has no incoming mask, matching the paper).
  [[nodiscard]] double pixel_reduction() const noexcept;
  [[nodiscard]] double flop_reduction() const noexcept {
    return total_dense.total() > 0 ? 1.0 - total_actual.total() / total_dense.total() : 0.0;
  }
};

/// Runs the multi-block encoder on one synthetic workload.
///
/// The dense fp32 reference trajectory (sampling fields, probabilities and
/// block outputs) depends only on the workload, so it is computed once and
/// cached; successive `run` calls with different configurations reuse it.
///
/// Thread-safety: the lazily-built reference cache is guarded by a
/// std::once_flag, and `run` only reads it, so one pipeline may be shared
/// across threads (the Engine relies on this to batch requests).  The
/// caller must keep the workload alive and unmodified for the pipeline's
/// lifetime.
class EncoderPipeline {
 public:
  explicit EncoderPipeline(const workload::SceneWorkload& workload);

  /// Run all blocks under `cfg`.  Deterministic in (workload seed, cfg).
  /// The numeric hot path runs on `backend` (nullptr selects
  /// kernels::default_backend()); every registered backend is bit-identical
  /// in fp32 and on the INTn datapath, so the backend is a pure performance
  /// knob — results do not depend on it.
  [[nodiscard]] EncoderResult run(const PruneConfig& cfg,
                                  const kernels::Backend* backend = nullptr) const;

  [[nodiscard]] const ModelConfig& model() const noexcept { return wl_.model(); }

  /// Cached dense sampling fields of one block (shared with the
  /// cycle-accurate simulator so both see identical sampling geometry).
  [[nodiscard]] const nn::MsdaFields& layer_fields(int layer) const;
  /// Cached dense softmax probabilities of one block.
  [[nodiscard]] const Tensor& layer_probs(int layer) const;
  /// Hit/miss counters of the per-layer plan cache (plan-reuse tests).
  [[nodiscard]] kernels::PlanCache::Stats plan_cache_stats() const {
    return plan_cache_.stats();
  }

 private:
  struct LayerRef {
    nn::MsdaFields fields;  ///< scene-driven logits + (unclamped) locations
    Tensor probs;           ///< dense softmax probabilities
    Tensor out_ref;         ///< dense fp32 block output
  };
  /// Thread-safe: builds the reference exactly once (std::call_once).
  /// The first caller's backend performs the build (nullptr = process
  /// default) — safe to share because backends are bit-identical.
  void ensure_reference(const kernels::Backend* backend = nullptr) const;
  void build_reference(const kernels::Backend* backend) const;

  const workload::SceneWorkload& wl_;
  mutable std::once_flag ref_once_;
  mutable std::vector<LayerRef> ref_;
  mutable Tensor x_ref_final_;
  /// One SamplingPlan per layer, keyed "layer<idx>", for the dense cached
  /// geometry; thread-safe (kernels::PlanCache has its own lock).
  mutable kernels::PlanCache plan_cache_;
};

}  // namespace defa::core
