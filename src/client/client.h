#pragma once

/// \file client.h
/// `defa::client::Client` — the Protocol v1 client library
/// (docs/PROTOCOL.md).  Connects to a `defa_serve` process over TCP
/// (`--listen`) or over the stdio of a child process it spawns itself,
/// and exposes the wire methods as typed calls:
///
///   client::Client c = client::Client::connect("127.0.0.1:7411");
///   api::EvalRequest req;
///   req.preset = "tiny";
///   api::EvalResult result = c.eval(req);          // sync, throws RpcError
///
///   std::future<serve::ServeResponse> f = c.submit(r2);  // pipelined
///
/// Requests are **pipelined**: `submit()` writes the frame and returns a
/// future immediately, any number may be in flight, and a background
/// reader correlates completion-order responses back by frame id — so one
/// client connection saturates a multi-worker server.  All methods are
/// thread-safe (writes are serialized; the reader owns the socket's read
/// side).
///
/// Scheduler rejections (overload/deadline/shutdown) come back as
/// statuses in the returned `ServeResponse`, mirroring the in-process
/// `serve::Server::submit` contract; the convenience `eval()` wrapper
/// turns any non-ok outcome into a typed `RpcError` instead.

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "api/request.h"
#include "serve/protocol.h"

namespace defa::client {

/// Typed RPC failure: the protocol error code plus the server's message
/// (`code() == serve::ErrorCode::kTransport` when the connection died).
class RpcError : public std::runtime_error {
 public:
  RpcError(serve::ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  [[nodiscard]] serve::ErrorCode code() const noexcept { return code_; }

 private:
  serve::ErrorCode code_;
};

/// Per-connection client behavior: which wire to speak and how deep to
/// pipeline.
struct ClientOptions {
  enum class Wire {
    kAuto,  ///< send `hello`; fall back to v1 when the server declines
    kV1,    ///< never send `hello` (byte-for-byte the pre-v2 client)
    kV2,    ///< require the binary wire; construction throws RpcError
            ///< (kVersion) when the server cannot negotiate it
  };
  Wire wire = Wire::kAuto;
  /// Pipelining depth: at most this many request frames on the wire at
  /// once — further submits queue client-side (pre-encoded) and flush as
  /// responses complete.  0 = unlimited (the pre-v2 behavior).
  int max_inflight = 0;
};

class Client {
 public:
  /// Adopt an established connection (tests hand in loopback sockets).
  /// Negotiation (per `options.wire`) runs synchronously here, before the
  /// reader thread starts.
  explicit Client(std::unique_ptr<serve::Connection> conn,
                  const ClientOptions& options = {});
  ~Client();  ///< fails pending calls, joins the reader, closes
  Client(Client&&) noexcept;
  Client& operator=(Client&&) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Response sink for `submit_async`; invoked exactly once, on the reader
  /// thread for wire responses or the submitting thread for local
  /// failures.
  using ResponseCallback = std::function<void(const serve::ServeResponse&)>;

  /// TCP-connect to "HOST:PORT" (":PORT"/"PORT" default to loopback).
  [[nodiscard]] static Client connect(const std::string& endpoint,
                                      const ClientOptions& options = {});
  [[nodiscard]] static Client connect_tcp(const std::string& host, int port,
                                          const ClientOptions& options = {});
  /// Spawn `argv` (e.g. {"./build/defa_serve"}) as a child process and
  /// speak the negotiated protocol over its stdin/stdout.  The child is
  /// terminated (stdin closed, then waited) when the Client is destroyed.
  [[nodiscard]] static Client spawn(const std::vector<std::string>& argv,
                                    const ClientOptions& options = {});

  // ---- pipelined eval ----------------------------------------------------
  /// Send one eval frame; the future resolves when its response arrives
  /// (any number may be in flight).  `req.id` is echoed back in the
  /// response; correlation uses internal wire ids, so duplicate ids are
  /// fine.  `total_ms` in the response is the client-observed round trip
  /// (queue_ms/run_ms/dispatch_index stay server-reported).  Transport
  /// loss — the peer closing with the call in flight included — resolves
  /// the future promptly with status kError and `error_code`
  /// "transport"; the future never hangs and submit never throws for it.
  [[nodiscard]] std::future<serve::ServeResponse> submit(serve::ServeRequest req);

  /// Callback flavor of `submit` (same semantics); `client::Pool` hangs
  /// its failover logic off this instead of blocking a thread per future.
  void submit_async(serve::ServeRequest req, ResponseCallback done);

  /// Sync eval; returns the full response envelope.
  [[nodiscard]] serve::ServeResponse eval_response(
      const api::EvalRequest& req, serve::Priority priority = serve::Priority::kNormal,
      double timeout_ms = 0);

  /// Sync eval; returns the result or throws RpcError on any non-ok
  /// outcome (including scheduler rejections).
  [[nodiscard]] api::EvalResult eval(const api::EvalRequest& req);

  /// One `eval_batch` frame: all requests evaluated server-side, one
  /// response per request in request order.  Throws RpcError when the
  /// batch itself fails (transport, malformed params); per-item failures
  /// come back as statuses.
  [[nodiscard]] std::vector<serve::ServeResponse> eval_batch(
      const std::vector<api::EvalRequest>& requests,
      serve::Priority priority = serve::Priority::kNormal, double timeout_ms = 0);

  /// Per-item sink for `eval_batch_stream`; invoked on the reader thread
  /// in strict index order (0, 1, 2, ...).
  using BatchItemCallback =
      std::function<void(std::size_t index, const serve::ServeResponse&)>;

  /// Streaming flavor of `eval_batch`: on the v2 wire each item's
  /// response is a separate chunk frame, so `on_item` fires as items
  /// complete server-side — the first result arrives while the tail of a
  /// large batch is still running, and neither side buffers the whole
  /// batch.  On a v1 session the server answers in one frame, so the
  /// callbacks all fire when it lands (same order, no early delivery).
  /// Returns the full in-order response vector either way.
  [[nodiscard]] std::vector<serve::ServeResponse> eval_batch_stream(
      const std::vector<api::EvalRequest>& requests, BatchItemCallback on_item,
      serve::Priority priority = serve::Priority::kNormal, double timeout_ms = 0);

  // ---- admin methods -----------------------------------------------------
  /// Generic sync RPC: returns the `result` payload or throws RpcError.
  api::Json call(const std::string& method, api::Json params = {});

  /// Round trip returning the server's info block (policy, workers,
  /// queue_capacity, backend, draining).
  api::Json ping();
  /// The server's live metrics, parsed back into a snapshot.
  [[nodiscard]] serve::MetricsSnapshot metrics();
  /// Registered backend names on the server.
  [[nodiscard]] std::vector<std::string> backends();
  /// The server's experiment registry ({"experiments": [...]}).
  api::Json experiments();
  /// Run one registered experiment server-side; returns {"name",
  /// "tables", "json"} (defa_cli run --connect prints "tables" verbatim).
  api::Json run_experiment(const std::string& name);
  /// Apply a live configuration change on the server (between dispatches;
  /// see `serve::ServerReconfig`).  Returns {"reconfigured": true,
  /// "server": <info block>}; throws RpcError on validation failure.
  api::Json reconfigure(const serve::ServerReconfig& rc);
  /// The server's fleet identity: {"shard": {id, count, name}, "ring":
  /// {virtual_nodes, points}, "metrics": ...}.
  api::Json shard_info();
  /// Drain the server's recorded trace spans: {"pid", "process",
  /// "enabled", "dropped", "traceEvents"} in Chrome trace-event form
  /// (docs/OBSERVABILITY.md).  `clear=false` leaves the spans buffered.
  api::Json trace(bool clear = true);
  /// Graceful server shutdown: stop admitting, finish in-flight, return
  /// final metrics ({"drained": true, "metrics": ...}).
  api::Json drain();

  /// "tcp" | "stdio" — stamped into remote load reports.
  [[nodiscard]] const char* transport_name() const noexcept;

  /// The negotiated wire version of this connection: 2 after a successful
  /// hello upgrade, else 1.  Stamped into remote load reports.
  [[nodiscard]] int wire_version() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace defa::client
