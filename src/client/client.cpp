#include "client/client.h"

#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include <sys/wait.h>
#include <unistd.h>

#include "common/check.h"
#include "obs/trace.h"
#include "serve/server_loop.h"
#include "serve/wire/codec.h"
#include "serve/wire/format.h"
#include "serve/wire/stats.h"

namespace defa::client {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(b - a)
      .count();
}

/// The spawned child's pipes, framed by the shared `serve::FdConnection`
/// (shutdown() closes the child's stdin — the stdio transport's EOF; the
/// server loop drains and exits, which in turn EOFs our read side).
/// Also reaps the child on destruction.
class SpawnedProcessConnection : public serve::FdConnection {
 public:
  SpawnedProcessConnection(int read_fd, int write_fd, pid_t child)
      : serve::FdConnection(read_fd, write_fd, /*is_socket=*/false),
        child_(child) {}

  ~SpawnedProcessConnection() override {
    shutdown();
    if (child_ > 0) {
      int status = 0;
      ::waitpid(child_, &status, 0);
    }
  }

 private:
  pid_t child_ = -1;
};

void ignore_sigpipe_once() {
  // A peer that vanishes mid-write must surface as EPIPE, not kill the
  // process.  Sockets use MSG_NOSIGNAL; pipes need the handler change.
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

}  // namespace

// ----------------------------------------------------------------------- Impl

struct Client::Impl {
  /// Resolves one pending call.  `frame == nullptr` means the call failed
  /// locally (`code` says how: transport loss, oversized frame).
  using FrameHandler = std::function<void(
      const api::Json* frame, serve::ErrorCode code, const std::string& error)>;
  /// v2 flavor: fires once per response frame — which for a streamed
  /// eval_batch means once per chunk plus once for the end frame.
  using WireHandler =
      std::function<void(const serve::wire::DecodedResponse* resp,
                         serve::ErrorCode code, const std::string& error)>;

  Impl(std::unique_ptr<serve::Connection> c, const ClientOptions& opts)
      : conn(std::move(c)), options(opts) {
    DEFA_CHECK(conn != nullptr, "client: null connection");
    if (options.wire != ClientOptions::Wire::kV1) negotiate();
    reader = std::thread([this] {
      if (wire_version == 2) {
        read_loop_v2();
      } else {
        read_loop();
      }
    });
  }

  ~Impl() {
    conn->shutdown();
    if (reader.joinable()) reader.join();
  }

  /// Synchronous `hello` handshake, run before the reader thread exists —
  /// the answer is the next frame on an otherwise-idle connection.  kAuto
  /// treats any refusal (unknown_method from an old server, a v1-capped
  /// negotiation, a malformed answer) as "speak v1"; kV2 turns refusal
  /// into RpcError so a caller demanding the binary wire finds out now.
  void negotiate() {
    const bool required = options.wire == ClientOptions::Wire::kV2;
    api::Json params = api::Json::object();
    params["max_version"] = serve::wire::kWireVersion;
    const std::string text =
        serve::make_request_frame("hello", "hello", std::move(params)).dump();
    if (!conn->write_frame(text)) {
      if (required) {
        throw RpcError(serve::ErrorCode::kTransport,
                       "connection closed during the hello handshake");
      }
      return;  // the reader's first read_frame will fail pending calls
    }
    std::string line;
    while (conn->read_frame(line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      bool upgraded = false;
      try {
        const api::Json frame = api::Json::parse(line);
        const api::Json* id = frame.find("id");
        if (id == nullptr || id->as_string() != "hello") continue;  // stray
        if (frame.at("ok").as_bool()) {
          const api::Json& result = frame.at("result");
          if (const api::Json* m = result.find("max_frame_bytes")) {
            max_frame_bytes = static_cast<std::size_t>(m->as_number());
          }
          upgraded = result.at("version").as_int() >= 2;
        }
      } catch (const std::exception&) {
        upgraded = false;  // malformed answer counts as a refusal
      }
      if (upgraded) {
        wire_version = 2;
      } else if (required) {
        throw RpcError(serve::ErrorCode::kVersion,
                       "server did not negotiate wire v2");
      }
      return;
    }
    if (required) {
      throw RpcError(serve::ErrorCode::kTransport,
                     "connection closed during the hello handshake");
    }
  }

  void read_loop() {
    std::string text;
    while (conn->read_frame(text)) {
      if (text.find_first_not_of(" \t\r") == std::string::npos) continue;
      api::Json frame;
      std::string id;
      try {
        const Clock::time_point t0 = Clock::now();
        frame = api::Json::parse(text);
        serve::wire::SerStats::instance().add_decode(
            1, ms_between(t0, Clock::now()), text.size() + 1);
        if (const api::Json* i = frame.find("id")) id = i->as_string();
      } catch (const std::exception&) {
        continue;  // not ours to crash on; the unparseable frame is dropped
      }
      // An error frame the server could not attribute (id "" — it refused
      // to parse our frame at all, e.g. oversized) cannot be correlated
      // to one call.  The stream is desynced: fail every pending call
      // with the server's reason instead of leaving one hanging forever.
      if (id.empty() && frame.contains("ok") && !frame.at("ok").as_bool()) {
        std::string reason = "server answered an unattributable error";
        try {
          reason += ": " + frame.at("error").at("message").as_string();
        } catch (const std::exception&) {
        }
        fail_all(serve::ErrorCode::kTransport, reason);
        continue;
      }
      FrameHandler handler;
      {
        const std::lock_guard<std::mutex> lock(mu);
        const auto it = pending.find(id);
        if (it == pending.end()) continue;  // unknown id (e.g. metrics line)
        handler = std::move(it->second);
        pending.erase(it);
      }
      handler(&frame, serve::ErrorCode::kInternal, "");
      release_slot();
    }
    // EOF / error: fail everything still outstanding, and every call that
    // arrives after.
    fail_all(serve::ErrorCode::kTransport,
             "connection closed with the call in flight");
  }

  /// v2 counterpart of read_loop: length-prefixed binary frames.  A
  /// malformed-but-framed payload is dropped (v1 parity: the unparseable
  /// frame is not ours to crash on); a broken header means the byte stream
  /// is desynced and the connection is done.
  void read_loop_v2() {
    namespace wire = serve::wire;
    std::string payload;
    char header_buf[wire::kHeaderBytes];
    while (conn->read_exact(header_buf, wire::kHeaderBytes)) {
      wire::FrameHeader header;
      try {
        header = wire::decode_header(header_buf, wire::kHeaderBytes);
      } catch (const std::exception&) {
        break;  // bad magic: frame boundaries are lost
      }
      if (header.payload_len > max_frame_bytes) break;  // server never does
      payload.resize(header.payload_len);
      if (header.payload_len > 0 &&
          !conn->read_exact(payload.data(), header.payload_len)) {
        break;  // EOF mid-frame
      }
      wire::DecodedResponse resp;
      try {
        resp = wire::decode_response(header, payload.data(), payload.size());
      } catch (const std::exception&) {
        continue;
      }
      if (resp.id.empty()) {
        // Unattributable server error (it could not decode our frame):
        // the stream is past saving for correlation — fail everything.
        if (!resp.ok && resp.has_eval) {
          fail_all(serve::ErrorCode::kTransport,
                   "server answered an unattributable error: " + resp.eval.error);
        }
        continue;
      }
      // Batch chunks resolve the same pending call repeatedly; only the
      // final frame (batch end, or any plain response) retires it.
      const bool last = resp.type != wire::FrameType::kBatchChunk;
      WireHandler handler;
      {
        const std::lock_guard<std::mutex> lock(mu);
        const auto it = pending_wire.find(resp.id);
        if (it == pending_wire.end()) continue;
        if (last) {
          handler = std::move(it->second);
          pending_wire.erase(it);
        } else {
          handler = it->second;
        }
      }
      handler(&resp, serve::ErrorCode::kInternal, "");
      if (last) release_slot();
    }
    fail_all(serve::ErrorCode::kTransport,
             "connection closed with the call in flight");
  }

  /// Fail every pending call and refuse new ones.
  void fail_all(serve::ErrorCode code, const std::string& reason) {
    std::unordered_map<std::string, FrameHandler> orphaned;
    std::unordered_map<std::string, WireHandler> orphaned_wire;
    {
      const std::lock_guard<std::mutex> lock(mu);
      dead = true;
      orphaned.swap(pending);
      orphaned_wire.swap(pending_wire);
      // Deferred frames' handlers are registered in the pending maps, so
      // the sweeps above already fail them; the bytes just get dropped.
      deferred.clear();
      on_wire_count = 0;
    }
    for (auto& [id, handler] : orphaned) handler(nullptr, code, reason);
    for (auto& [id, handler] : orphaned_wire) handler(nullptr, code, reason);
  }

  /// Fail one registered call after its write hit a broken pipe (unless
  /// the reader resolved or swept it first).
  void orphan_fail(const std::string& id) {
    FrameHandler h1;
    WireHandler h2;
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (const auto it = pending.find(id); it != pending.end()) {
        h1 = std::move(it->second);
        pending.erase(it);
      } else if (const auto it2 = pending_wire.find(id);
                 it2 != pending_wire.end()) {
        h2 = std::move(it2->second);
        pending_wire.erase(it2);
      }
    }
    if (h1) h1(nullptr, serve::ErrorCode::kTransport, "connection is closed");
    if (h2) h2(nullptr, serve::ErrorCode::kTransport, "connection is closed");
  }

  /// One frame onto the transport (never under `mu`: a full-duplex stall
  /// with both sides' buffers full must not wedge response delivery).
  bool write_wire(const std::string& bytes) {
    const std::lock_guard<std::mutex> wlock(write_mu);
    return wire_version == 2 ? conn->write_bytes(bytes.data(), bytes.size())
                             : conn->write_frame(bytes);
  }

  /// Send one pre-encoded, already-registered frame, honoring the
  /// pipelining depth: at the cap it queues (FIFO) and flushes from
  /// release_slot() as responses retire earlier calls.
  void dispatch_frame(const std::string& id, std::string bytes) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (options.max_inflight > 0 &&
          (on_wire_count >= options.max_inflight || !deferred.empty())) {
        deferred.push_back({id, std::move(bytes)});
        return;
      }
      ++on_wire_count;
    }
    if (!write_wire(bytes)) orphan_fail(id);
  }

  /// A call retired (response landed or write failed): free its wire slot
  /// and flush deferred frames up to the cap.
  void release_slot() {
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (on_wire_count > 0) --on_wire_count;
    }
    while (true) {
      DeferredFrame next;
      {
        const std::lock_guard<std::mutex> lock(mu);
        if (dead || deferred.empty() ||
            (options.max_inflight > 0 &&
             on_wire_count >= options.max_inflight)) {
          return;
        }
        next = std::move(deferred.front());
        deferred.pop_front();
        ++on_wire_count;
      }
      if (write_wire(next.bytes)) continue;  // loop: cap may still have room
      // Broken pipe: fail this call, release its slot, try the next — the
      // reader's fail_all sweeps whatever is left shortly anyway.
      orphan_fail(next.id);
      const std::lock_guard<std::mutex> lock(mu);
      if (on_wire_count > 0) --on_wire_count;
    }
  }

  /// Register `handler` under a fresh wire id and send the frame.  The
  /// handler fires exactly once, possibly before this returns.
  void send_call(const std::string& method, api::Json params, FrameHandler handler,
                 const std::string& trace_hex = "") {
    std::string id;
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (!dead) id = "c" + std::to_string(next_id++);
    }
    if (id.empty()) {
      handler(nullptr, serve::ErrorCode::kTransport, "connection is closed");
      return;
    }
    const Clock::time_point t0 = Clock::now();
    std::string text =
        serve::make_request_frame(id, method, std::move(params), trace_hex).dump();
    serve::wire::SerStats::instance().add_encode(1, ms_between(t0, Clock::now()),
                                                 text.size() + 1);
    // Refuse frames the server would refuse: it answers oversized frames
    // with an unattributable (id-less) error, which would otherwise
    // poison every pending call on this connection.
    if (text.size() > max_frame_bytes) {
      handler(nullptr, serve::ErrorCode::kOversized,
              "request frame of " + std::to_string(text.size()) +
                  " bytes exceeds the protocol frame limit");
      return;
    }
    bool registered = false;
    {
      // Register before writing (the response can race the write), and
      // re-check `dead`: fail_all may have swept `pending` since the id
      // was allocated, and an entry added after the sweep would leak.
      const std::lock_guard<std::mutex> lock(mu);
      if (!dead) {
        pending.emplace(id, std::move(handler));
        registered = true;
      }
    }
    if (!registered) {
      handler(nullptr, serve::ErrorCode::kTransport, "connection is closed");
      return;
    }
    dispatch_frame(id, std::move(text));
  }

  /// v2 flavor of send_call: binary request frame, decoded responses.
  /// For streamed batches `handler` fires per chunk and once for the end
  /// frame; plain calls resolve it exactly once.
  void send_wire_call(const std::string& method, const api::Json& params,
                      WireHandler handler, std::uint64_t trace_id = 0) {
    std::string id;
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (!dead) id = "c" + std::to_string(next_id++);
    }
    if (id.empty()) {
      handler(nullptr, serve::ErrorCode::kTransport, "connection is closed");
      return;
    }
    const std::string params_text = params.is_null() ? std::string() : params.dump();
    std::string bytes = serve::wire::encode_request(id, method, params_text, trace_id);
    if (bytes.size() - serve::wire::kHeaderBytes > max_frame_bytes) {
      handler(nullptr, serve::ErrorCode::kOversized,
              "request frame of " + std::to_string(bytes.size()) +
                  " bytes exceeds the protocol frame limit");
      return;
    }
    bool registered = false;
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (!dead) {
        pending_wire.emplace(id, std::move(handler));
        registered = true;
      }
    }
    if (!registered) {
      handler(nullptr, serve::ErrorCode::kTransport, "connection is closed");
      return;
    }
    dispatch_frame(id, std::move(bytes));
  }

  /// Sync call returning the whole response frame; throws RpcError on
  /// transport loss.  On a v2 session the decoded binary response is
  /// rebuilt into the v1 frame shape, so every caller sees one format.
  api::Json call_frame(const std::string& method, api::Json params) {
    auto prom = std::make_shared<std::promise<api::Json>>();
    std::future<api::Json> fut = prom->get_future();
    if (wire_version == 2) {
      send_wire_call(
          method, params,
          [prom](const serve::wire::DecodedResponse* resp, serve::ErrorCode code,
                 const std::string& error) {
            if (resp == nullptr) {
              prom->set_exception(std::make_exception_ptr(RpcError(code, error)));
              return;
            }
            try {
              api::Json frame = api::Json::object();
              frame["id"] = resp->id;
              frame["ok"] = resp->ok;
              if (resp->ok) {
                frame["result"] = resp->json_text.empty()
                                      ? api::Json()
                                      : api::Json::parse(resp->json_text);
              } else {
                api::Json err = api::Json::object();
                err["code"] = resp->eval.error_code;
                err["message"] = resp->eval.error;
                err["queue_ms"] = resp->eval.queue_ms;
                err["total_ms"] = resp->eval.total_ms;
                frame["error"] = std::move(err);
              }
              prom->set_value(std::move(frame));
            } catch (...) {
              prom->set_exception(std::current_exception());
            }
          });
      return fut.get();
    }
    send_call(method, std::move(params),
              [prom](const api::Json* frame, serve::ErrorCode code,
                     const std::string& error) {
                if (frame == nullptr) {
                  prom->set_exception(
                      std::make_exception_ptr(RpcError(code, error)));
                } else {
                  prom->set_value(*frame);
                }
              });
    return fut.get();
  }

  struct DeferredFrame {
    std::string id;
    std::string bytes;
  };

  std::unique_ptr<serve::Connection> conn;
  ClientOptions options;
  int wire_version = 1;
  std::size_t max_frame_bytes = serve::ProtocolOptions{}.max_frame_bytes;
  std::thread reader;
  std::mutex mu;        ///< guards pending maps/deferred/dead/next_id
  std::mutex write_mu;  ///< serializes transport writes (nested inside mu)
  std::unordered_map<std::string, FrameHandler> pending;
  std::unordered_map<std::string, WireHandler> pending_wire;
  std::deque<DeferredFrame> deferred;  ///< pre-encoded, waiting for a slot
  int on_wire_count = 0;
  std::uint64_t next_id = 1;
  bool dead = false;
};

// --------------------------------------------------------------------- Client

Client::Client(std::unique_ptr<serve::Connection> conn,
               const ClientOptions& options)
    : impl_(std::make_unique<Impl>(std::move(conn), options)) {}
Client::~Client() = default;
Client::Client(Client&&) noexcept = default;
Client& Client::operator=(Client&&) noexcept = default;

Client Client::connect(const std::string& endpoint, const ClientOptions& options) {
  const serve::Endpoint ep = serve::parse_endpoint(endpoint);
  return connect_tcp(ep.host, ep.port, options);
}

Client Client::connect_tcp(const std::string& host, int port,
                           const ClientOptions& options) {
  ignore_sigpipe_once();
  return Client(serve::tcp_connect(host, port), options);
}

Client Client::spawn(const std::vector<std::string>& argv,
                     const ClientOptions& options) {
  DEFA_CHECK(!argv.empty(), "client: spawn needs a command line");
  ignore_sigpipe_once();
  int to_child[2];   // parent writes -> child stdin
  int from_child[2]; // child stdout -> parent reads
  DEFA_CHECK(::pipe(to_child) == 0 && ::pipe(from_child) == 0,
             "client: pipe() failed: " + std::string(std::strerror(errno)));
  const pid_t pid = ::fork();
  DEFA_CHECK(pid >= 0, "client: fork() failed: " + std::string(std::strerror(errno)));
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& a : argv) args.push_back(const_cast<char*>(a.c_str()));
    args.push_back(nullptr);
    ::execvp(args[0], args.data());
    // exec failed: exit hard, the parent sees EOF on its read pipe.
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  return Client(std::make_unique<SpawnedProcessConnection>(from_child[0], to_child[1],
                                                           pid),
                options);
}

void Client::submit_async(serve::ServeRequest req, ResponseCallback done) {
  DEFA_CHECK(done != nullptr, "client: submit_async callback must be set");
  api::Json params = api::Json::object();
  params["request"] = api::to_json(req.request);
  if (req.priority != serve::Priority::kNormal) {
    params["priority"] = serve::priority_name(req.priority);
  }
  if (req.timeout_ms > 0) params["timeout_ms"] = req.timeout_ms;

  // Sampled requests carry their trace id on the wire (envelope
  // `trace_id`); the matching client-side span is recorded when the
  // response lands, so the rpc span brackets the whole round trip.
  std::string trace_hex;
  if (req.trace_id != 0) trace_hex = obs::trace_id_to_hex(req.trace_id);

  const std::string user_id = req.id;
  const std::uint64_t trace_id = req.trace_id;
  const Clock::time_point sent = Clock::now();
  // Shared completion tail of both wire versions: stamp the caller's id,
  // overwrite total_ms with the client-observed round trip (the latency a
  // remote caller actually experiences; server-side queue/run stay as
  // reported), record the rpc span, deliver.
  const auto finish = [done = std::move(done), user_id, trace_id,
                       sent](serve::ServeResponse resp, bool from_wire) {
    if (from_wire) resp.total_ms = ms_between(sent, Clock::now());
    resp.id = user_id;
#if DEFA_TRACE
    if (trace_id != 0) {
      const std::int64_t sent_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              sent.time_since_epoch())
              .count();
      obs::record_span("rpc", "client", sent_us, obs::now_us() - sent_us,
                       trace_id,
                       {{"id", user_id},
                        {"status", serve::status_name(resp.status)}});
    }
#endif
    done(resp);
  };

  if (impl_->wire_version == 2) {
    impl_->send_wire_call(
        "eval", params,
        [finish](const serve::wire::DecodedResponse* resp, serve::ErrorCode code,
                 const std::string& error) {
          serve::ServeResponse r;
          if (resp == nullptr) {
            r.status = serve::status_for(code);
            r.error_code = serve::error_code_name(code);
            r.error = error;
            finish(std::move(r), /*from_wire=*/false);
            return;
          }
          if (resp->has_eval) {
            r = resp->eval;
          } else {
            r.status = serve::ResponseStatus::kError;
            r.error_code = serve::error_code_name(serve::ErrorCode::kInternal);
            r.error = "malformed response frame: no eval payload";
          }
          finish(std::move(r), /*from_wire=*/true);
        },
        trace_id);
    return;
  }
  impl_->send_call(
      "eval", std::move(params),
      [finish](const api::Json* frame, serve::ErrorCode code,
               const std::string& error) {
        serve::ServeResponse resp;
        if (frame == nullptr) {
          // Local/transport failure: the status collapses several codes
          // (kTransport -> kError), so carry the typed code alongside —
          // failover logic distinguishes a dead shard ("transport") from a
          // request the server actually rejected.
          resp.status = serve::status_for(code);
          resp.error_code = serve::error_code_name(code);
          resp.error = error;
          finish(std::move(resp), /*from_wire=*/false);
          return;
        }
        try {
          resp = serve::serve_response_from_frame(*frame);
        } catch (const std::exception& e) {
          resp.status = serve::ResponseStatus::kError;
          resp.error_code = serve::error_code_name(serve::ErrorCode::kInternal);
          resp.error = std::string("malformed response frame: ") + e.what();
        }
        finish(std::move(resp), /*from_wire=*/true);
      },
      trace_hex);
}

std::future<serve::ServeResponse> Client::submit(serve::ServeRequest req) {
  auto prom = std::make_shared<std::promise<serve::ServeResponse>>();
  std::future<serve::ServeResponse> fut = prom->get_future();
  submit_async(std::move(req), [prom](const serve::ServeResponse& resp) {
    prom->set_value(resp);
  });
  return fut;
}

serve::ServeResponse Client::eval_response(const api::EvalRequest& req,
                                           serve::Priority priority,
                                           double timeout_ms) {
  serve::ServeRequest sr;
  sr.request = req;
  sr.priority = priority;
  sr.timeout_ms = timeout_ms;
  return submit(std::move(sr)).get();
}

api::EvalResult Client::eval(const api::EvalRequest& req) {
  serve::ServeResponse resp = eval_response(req);
  if (resp.status != serve::ResponseStatus::kOk) {
    // Prefer the carried wire code: mapping the status back would turn a
    // typed transport failure into kInternal.
    const std::optional<serve::ErrorCode> code =
        serve::error_code_from_name(resp.error_code);
    throw RpcError(code.value_or(serve::error_code_for(resp.status)), resp.error);
  }
  return std::move(*resp.result);
}

namespace {

api::Json batch_params(const std::vector<api::EvalRequest>& requests,
                       serve::Priority priority, double timeout_ms) {
  api::Json params = api::Json::object();
  api::Json arr = api::Json::array();
  for (const api::EvalRequest& r : requests) {
    api::Json item = api::Json::object();
    item["request"] = api::to_json(r);
    arr.push_back(std::move(item));
  }
  params["requests"] = std::move(arr);
  if (priority != serve::Priority::kNormal) {
    params["priority"] = serve::priority_name(priority);
  }
  if (timeout_ms > 0) params["timeout_ms"] = timeout_ms;
  return params;
}

}  // namespace

std::vector<serve::ServeResponse> Client::eval_batch(
    const std::vector<api::EvalRequest>& requests, serve::Priority priority,
    double timeout_ms) {
  return eval_batch_stream(requests, nullptr, priority, timeout_ms);
}

std::vector<serve::ServeResponse> Client::eval_batch_stream(
    const std::vector<api::EvalRequest>& requests, BatchItemCallback on_item,
    serve::Priority priority, double timeout_ms) {
  DEFA_CHECK(!requests.empty(), "client: eval_batch needs at least one request");
  const std::size_t n = requests.size();

  if (impl_->wire_version == 2) {
    // Streamed: each chunk resolves one slot as it arrives (strict index
    // order on the wire); the end frame releases the waiter.
    struct BatchWait {
      std::vector<serve::ServeResponse> out;
      std::promise<void> done;
    };
    auto wait = std::make_shared<BatchWait>();
    wait->out.resize(n);
    std::future<void> fut = wait->done.get_future();
    impl_->send_wire_call(
        "eval_batch", batch_params(requests, priority, timeout_ms),
        [wait, on_item, n](const serve::wire::DecodedResponse* resp,
                           serve::ErrorCode code, const std::string& error) {
          try {
            if (resp == nullptr) throw RpcError(code, error);
            if (resp->type == serve::wire::FrameType::kBatchChunk) {
              DEFA_CHECK(resp->item_index < n,
                         "client: batch chunk index " +
                             std::to_string(resp->item_index) +
                             " out of range for " + std::to_string(n) + " items");
              wait->out[resp->item_index] = resp->eval;
              if (on_item) on_item(resp->item_index, wait->out[resp->item_index]);
              return;
            }
            if (resp->type == serve::wire::FrameType::kBatchEnd) {
              DEFA_CHECK(resp->batch_total == n,
                         "client: eval_batch answered " +
                             std::to_string(resp->batch_total) + " results for " +
                             std::to_string(n) + " requests");
              try {
                wait->done.set_value();
              } catch (const std::future_error&) {
              }  // already failed on an earlier chunk
              return;
            }
            // A plain response frame: the batch as a whole failed
            // (validation of the envelope, oversized, ...).
            const std::optional<serve::ErrorCode> c =
                serve::error_code_from_name(resp->eval.error_code);
            throw RpcError(c.value_or(serve::ErrorCode::kInternal),
                           resp->eval.error);
          } catch (...) {
            try {
              wait->done.set_exception(std::current_exception());
            } catch (const std::future_error&) {
            }  // keep the first failure
          }
        });
    fut.get();
    return std::move(wait->out);
  }

  const api::Json result =
      call("eval_batch", batch_params(requests, priority, timeout_ms));
  const api::Json& items = result.at("results");
  DEFA_CHECK(items.is_array() && items.size() == requests.size(),
             "client: eval_batch answered " + std::to_string(items.size()) +
                 " results for " + std::to_string(requests.size()) + " requests");
  std::vector<serve::ServeResponse> out;
  out.reserve(items.size());
  for (const api::Json& item : items.items()) {
    // Items mirror response frames minus the id; reuse the frame decoder.
    api::Json frame = api::Json::object();
    frame["ok"] = item.at("ok").as_bool();
    if (const api::Json* r = item.find("result")) frame["result"] = *r;
    if (const api::Json* e = item.find("error")) frame["error"] = *e;
    out.push_back(serve::serve_response_from_frame(frame));
  }
  // The v1 wire answers in one frame; the callbacks still see the same
  // in-order sequence, just all at once.
  if (on_item != nullptr) {
    for (std::size_t i = 0; i < out.size(); ++i) on_item(i, out[i]);
  }
  return out;
}

api::Json Client::call(const std::string& method, api::Json params) {
  const api::Json frame = impl_->call_frame(method, std::move(params));
  if (frame.at("ok").as_bool()) return frame.at("result");
  const api::Json& err = frame.at("error");
  const std::optional<serve::ErrorCode> code =
      serve::error_code_from_name(err.at("code").as_string());
  throw RpcError(code.value_or(serve::ErrorCode::kInternal),
                 err.at("message").as_string());
}

api::Json Client::ping() { return call("ping"); }

serve::MetricsSnapshot Client::metrics() {
  return serve::MetricsSnapshot::from_json(call("metrics"));
}

std::vector<std::string> Client::backends() {
  const api::Json result = call("backends");
  std::vector<std::string> names;
  for (const api::Json& n : result.at("backends").items()) {
    names.push_back(n.as_string());
  }
  return names;
}

api::Json Client::experiments() { return call("experiments"); }

api::Json Client::run_experiment(const std::string& name) {
  api::Json params = api::Json::object();
  params["name"] = name;
  return call("experiment", std::move(params));
}

api::Json Client::reconfigure(const serve::ServerReconfig& rc) {
  return call("reconfigure", serve::reconfig_params(rc));
}

api::Json Client::shard_info() { return call("shard_info"); }

api::Json Client::trace(bool clear) {
  api::Json params;  // omitted from the frame when left null
  if (!clear) {
    params = api::Json::object();
    params["clear"] = false;
  }
  return call("trace", std::move(params));
}

api::Json Client::drain() { return call("drain"); }

const char* Client::transport_name() const noexcept {
  return impl_->conn->transport_name();
}

int Client::wire_version() const noexcept { return impl_->wire_version; }

}  // namespace defa::client
