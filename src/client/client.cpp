#include "client/client.h"

#include <chrono>
#include <csignal>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include <sys/wait.h>
#include <unistd.h>

#include "common/check.h"
#include "obs/trace.h"
#include "serve/server_loop.h"

namespace defa::client {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(b - a)
      .count();
}

/// The spawned child's pipes, framed by the shared `serve::FdConnection`
/// (shutdown() closes the child's stdin — the stdio transport's EOF; the
/// server loop drains and exits, which in turn EOFs our read side).
/// Also reaps the child on destruction.
class SpawnedProcessConnection : public serve::FdConnection {
 public:
  SpawnedProcessConnection(int read_fd, int write_fd, pid_t child)
      : serve::FdConnection(read_fd, write_fd, /*is_socket=*/false),
        child_(child) {}

  ~SpawnedProcessConnection() override {
    shutdown();
    if (child_ > 0) {
      int status = 0;
      ::waitpid(child_, &status, 0);
    }
  }

 private:
  pid_t child_ = -1;
};

void ignore_sigpipe_once() {
  // A peer that vanishes mid-write must surface as EPIPE, not kill the
  // process.  Sockets use MSG_NOSIGNAL; pipes need the handler change.
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

}  // namespace

// ----------------------------------------------------------------------- Impl

struct Client::Impl {
  /// Resolves one pending call.  `frame == nullptr` means the call failed
  /// locally (`code` says how: transport loss, oversized frame).
  using FrameHandler = std::function<void(
      const api::Json* frame, serve::ErrorCode code, const std::string& error)>;

  explicit Impl(std::unique_ptr<serve::Connection> c) : conn(std::move(c)) {
    DEFA_CHECK(conn != nullptr, "client: null connection");
    reader = std::thread([this] { read_loop(); });
  }

  ~Impl() {
    conn->shutdown();
    if (reader.joinable()) reader.join();
  }

  void read_loop() {
    std::string text;
    while (conn->read_frame(text)) {
      if (text.find_first_not_of(" \t\r") == std::string::npos) continue;
      api::Json frame;
      std::string id;
      try {
        frame = api::Json::parse(text);
        if (const api::Json* i = frame.find("id")) id = i->as_string();
      } catch (const std::exception&) {
        continue;  // not ours to crash on; the unparseable frame is dropped
      }
      // An error frame the server could not attribute (id "" — it refused
      // to parse our frame at all, e.g. oversized) cannot be correlated
      // to one call.  The stream is desynced: fail every pending call
      // with the server's reason instead of leaving one hanging forever.
      if (id.empty() && frame.contains("ok") && !frame.at("ok").as_bool()) {
        std::string reason = "server answered an unattributable error";
        try {
          reason += ": " + frame.at("error").at("message").as_string();
        } catch (const std::exception&) {
        }
        fail_all(serve::ErrorCode::kTransport, reason);
        continue;
      }
      FrameHandler handler;
      {
        const std::lock_guard<std::mutex> lock(mu);
        const auto it = pending.find(id);
        if (it == pending.end()) continue;  // unknown id (e.g. metrics line)
        handler = std::move(it->second);
        pending.erase(it);
      }
      handler(&frame, serve::ErrorCode::kInternal, "");
    }
    // EOF / error: fail everything still outstanding, and every call that
    // arrives after.
    fail_all(serve::ErrorCode::kTransport,
             "connection closed with the call in flight");
  }

  /// Fail every pending call and refuse new ones.
  void fail_all(serve::ErrorCode code, const std::string& reason) {
    std::unordered_map<std::string, FrameHandler> orphaned;
    {
      const std::lock_guard<std::mutex> lock(mu);
      dead = true;
      orphaned.swap(pending);
    }
    for (auto& [id, handler] : orphaned) handler(nullptr, code, reason);
  }

  /// Register `handler` under a fresh wire id and send the frame.  The
  /// handler fires exactly once, possibly before this returns.  `mu` is
  /// never held across the (potentially blocking) socket write — the
  /// reader needs it to dispatch responses, and a full-duplex stall with
  /// both sides' buffers full must not wedge response delivery.
  void send_call(const std::string& method, api::Json params, FrameHandler handler,
                 const std::string& trace_hex = "") {
    std::string id;
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (!dead) id = "c" + std::to_string(next_id++);
    }
    if (id.empty()) {
      handler(nullptr, serve::ErrorCode::kTransport, "connection is closed");
      return;
    }
    const std::string text =
        serve::make_request_frame(id, method, std::move(params), trace_hex).dump();
    // Refuse frames the server would refuse: it answers oversized frames
    // with an unattributable (id-less) error, which would otherwise
    // poison every pending call on this connection.
    if (text.size() > serve::ProtocolOptions{}.max_frame_bytes) {
      handler(nullptr, serve::ErrorCode::kOversized,
              "request frame of " + std::to_string(text.size()) +
                  " bytes exceeds the protocol frame limit");
      return;
    }
    bool registered = false;
    {
      // Register before writing (the response can race the write), and
      // re-check `dead`: fail_all may have swept `pending` since the id
      // was allocated, and an entry added after the sweep would leak.
      const std::lock_guard<std::mutex> lock(mu);
      if (!dead) {
        pending.emplace(id, std::move(handler));
        registered = true;
      }
    }
    if (!registered) {
      handler(nullptr, serve::ErrorCode::kTransport, "connection is closed");
      return;
    }
    bool wrote;
    {
      const std::lock_guard<std::mutex> wlock(write_mu);
      wrote = conn->write_frame(text);
    }
    if (!wrote) {
      // Broken pipe: take the handler back and fail it (unless the
      // reader got the response or failed it first).
      FrameHandler orphan;
      {
        const std::lock_guard<std::mutex> lock(mu);
        const auto it = pending.find(id);
        if (it == pending.end()) return;
        orphan = std::move(it->second);
        pending.erase(it);
      }
      orphan(nullptr, serve::ErrorCode::kTransport, "connection is closed");
    }
  }

  /// Sync call returning the whole response frame; throws RpcError on
  /// transport loss.
  api::Json call_frame(const std::string& method, api::Json params) {
    auto prom = std::make_shared<std::promise<api::Json>>();
    std::future<api::Json> fut = prom->get_future();
    send_call(method, std::move(params),
              [prom](const api::Json* frame, serve::ErrorCode code,
                     const std::string& error) {
                if (frame == nullptr) {
                  prom->set_exception(
                      std::make_exception_ptr(RpcError(code, error)));
                } else {
                  prom->set_value(*frame);
                }
              });
    return fut.get();
  }

  std::unique_ptr<serve::Connection> conn;
  std::thread reader;
  std::mutex mu;        ///< guards pending/dead/next_id
  std::mutex write_mu;  ///< serializes write_frame (nested inside mu)
  std::unordered_map<std::string, FrameHandler> pending;
  std::uint64_t next_id = 1;
  bool dead = false;
};

// --------------------------------------------------------------------- Client

Client::Client(std::unique_ptr<serve::Connection> conn)
    : impl_(std::make_unique<Impl>(std::move(conn))) {}
Client::~Client() = default;
Client::Client(Client&&) noexcept = default;
Client& Client::operator=(Client&&) noexcept = default;

Client Client::connect(const std::string& endpoint) {
  const serve::Endpoint ep = serve::parse_endpoint(endpoint);
  return connect_tcp(ep.host, ep.port);
}

Client Client::connect_tcp(const std::string& host, int port) {
  ignore_sigpipe_once();
  return Client(serve::tcp_connect(host, port));
}

Client Client::spawn(const std::vector<std::string>& argv) {
  DEFA_CHECK(!argv.empty(), "client: spawn needs a command line");
  ignore_sigpipe_once();
  int to_child[2];   // parent writes -> child stdin
  int from_child[2]; // child stdout -> parent reads
  DEFA_CHECK(::pipe(to_child) == 0 && ::pipe(from_child) == 0,
             "client: pipe() failed: " + std::string(std::strerror(errno)));
  const pid_t pid = ::fork();
  DEFA_CHECK(pid >= 0, "client: fork() failed: " + std::string(std::strerror(errno)));
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& a : argv) args.push_back(const_cast<char*>(a.c_str()));
    args.push_back(nullptr);
    ::execvp(args[0], args.data());
    // exec failed: exit hard, the parent sees EOF on its read pipe.
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  return Client(std::make_unique<SpawnedProcessConnection>(from_child[0], to_child[1],
                                                           pid));
}

void Client::submit_async(serve::ServeRequest req, ResponseCallback done) {
  DEFA_CHECK(done != nullptr, "client: submit_async callback must be set");
  api::Json params = api::Json::object();
  params["request"] = api::to_json(req.request);
  if (req.priority != serve::Priority::kNormal) {
    params["priority"] = serve::priority_name(req.priority);
  }
  if (req.timeout_ms > 0) params["timeout_ms"] = req.timeout_ms;

  // Sampled requests carry their trace id on the wire (envelope
  // `trace_id`); the matching client-side span is recorded when the
  // response lands, so the rpc span brackets the whole round trip.
  std::string trace_hex;
  if (req.trace_id != 0) trace_hex = obs::trace_id_to_hex(req.trace_id);

  const std::string user_id = req.id;
  const std::uint64_t trace_id = req.trace_id;
  const Clock::time_point sent = Clock::now();
  impl_->send_call(
      "eval", std::move(params),
      [done = std::move(done), user_id, trace_id, sent](const api::Json* frame,
                                                        serve::ErrorCode code,
                                                        const std::string& error) {
        serve::ServeResponse resp;
        if (frame == nullptr) {
          // Local/transport failure: the status collapses several codes
          // (kTransport -> kError), so carry the typed code alongside —
          // failover logic distinguishes a dead shard ("transport") from a
          // request the server actually rejected.
          resp.status = serve::status_for(code);
          resp.error_code = serve::error_code_name(code);
          resp.error = error;
        } else {
          try {
            resp = serve::serve_response_from_frame(*frame);
          } catch (const std::exception& e) {
            resp.status = serve::ResponseStatus::kError;
            resp.error_code = serve::error_code_name(serve::ErrorCode::kInternal);
            resp.error = std::string("malformed response frame: ") + e.what();
          }
          // The client-observed round trip is the latency a remote caller
          // actually experiences; server-side queue/run stay as reported.
          resp.total_ms = ms_between(sent, Clock::now());
        }
        resp.id = user_id;
#if DEFA_TRACE
        if (trace_id != 0) {
          const std::int64_t sent_us =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  sent.time_since_epoch())
                  .count();
          obs::record_span("rpc", "client", sent_us, obs::now_us() - sent_us,
                           trace_id,
                           {{"id", user_id},
                            {"status", serve::status_name(resp.status)}});
        }
#endif
        done(resp);
      },
      trace_hex);
}

std::future<serve::ServeResponse> Client::submit(serve::ServeRequest req) {
  auto prom = std::make_shared<std::promise<serve::ServeResponse>>();
  std::future<serve::ServeResponse> fut = prom->get_future();
  submit_async(std::move(req), [prom](const serve::ServeResponse& resp) {
    prom->set_value(resp);
  });
  return fut;
}

serve::ServeResponse Client::eval_response(const api::EvalRequest& req,
                                           serve::Priority priority,
                                           double timeout_ms) {
  serve::ServeRequest sr;
  sr.request = req;
  sr.priority = priority;
  sr.timeout_ms = timeout_ms;
  return submit(std::move(sr)).get();
}

api::EvalResult Client::eval(const api::EvalRequest& req) {
  serve::ServeResponse resp = eval_response(req);
  if (resp.status != serve::ResponseStatus::kOk) {
    // Prefer the carried wire code: mapping the status back would turn a
    // typed transport failure into kInternal.
    const std::optional<serve::ErrorCode> code =
        serve::error_code_from_name(resp.error_code);
    throw RpcError(code.value_or(serve::error_code_for(resp.status)), resp.error);
  }
  return std::move(*resp.result);
}

std::vector<serve::ServeResponse> Client::eval_batch(
    const std::vector<api::EvalRequest>& requests, serve::Priority priority,
    double timeout_ms) {
  DEFA_CHECK(!requests.empty(), "client: eval_batch needs at least one request");
  api::Json params = api::Json::object();
  api::Json arr = api::Json::array();
  for (const api::EvalRequest& r : requests) {
    api::Json item = api::Json::object();
    item["request"] = api::to_json(r);
    arr.push_back(std::move(item));
  }
  params["requests"] = std::move(arr);
  if (priority != serve::Priority::kNormal) {
    params["priority"] = serve::priority_name(priority);
  }
  if (timeout_ms > 0) params["timeout_ms"] = timeout_ms;

  const api::Json result = call("eval_batch", std::move(params));
  const api::Json& items = result.at("results");
  DEFA_CHECK(items.is_array() && items.size() == requests.size(),
             "client: eval_batch answered " + std::to_string(items.size()) +
                 " results for " + std::to_string(requests.size()) + " requests");
  std::vector<serve::ServeResponse> out;
  out.reserve(items.size());
  for (const api::Json& item : items.items()) {
    // Items mirror response frames minus the id; reuse the frame decoder.
    api::Json frame = api::Json::object();
    frame["ok"] = item.at("ok").as_bool();
    if (const api::Json* r = item.find("result")) frame["result"] = *r;
    if (const api::Json* e = item.find("error")) frame["error"] = *e;
    out.push_back(serve::serve_response_from_frame(frame));
  }
  return out;
}

api::Json Client::call(const std::string& method, api::Json params) {
  const api::Json frame = impl_->call_frame(method, std::move(params));
  if (frame.at("ok").as_bool()) return frame.at("result");
  const api::Json& err = frame.at("error");
  const std::optional<serve::ErrorCode> code =
      serve::error_code_from_name(err.at("code").as_string());
  throw RpcError(code.value_or(serve::ErrorCode::kInternal),
                 err.at("message").as_string());
}

api::Json Client::ping() { return call("ping"); }

serve::MetricsSnapshot Client::metrics() {
  return serve::MetricsSnapshot::from_json(call("metrics"));
}

std::vector<std::string> Client::backends() {
  const api::Json result = call("backends");
  std::vector<std::string> names;
  for (const api::Json& n : result.at("backends").items()) {
    names.push_back(n.as_string());
  }
  return names;
}

api::Json Client::experiments() { return call("experiments"); }

api::Json Client::run_experiment(const std::string& name) {
  api::Json params = api::Json::object();
  params["name"] = name;
  return call("experiment", std::move(params));
}

api::Json Client::reconfigure(const serve::ServerReconfig& rc) {
  return call("reconfigure", serve::reconfig_params(rc));
}

api::Json Client::shard_info() { return call("shard_info"); }

api::Json Client::trace(bool clear) {
  api::Json params;  // omitted from the frame when left null
  if (!clear) {
    params = api::Json::object();
    params["clear"] = false;
  }
  return call("trace", std::move(params));
}

api::Json Client::drain() { return call("drain"); }

const char* Client::transport_name() const noexcept {
  return impl_->conn->transport_name();
}

}  // namespace defa::client
