#include "client/remote_loadgen.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/check.h"
#include "serve/wire/stats.h"

namespace defa::client {

serve::LoadReport run_remote_loadgen(const serve::LoadGenOptions& options,
                                     Client& client) {
  serve::LoadTarget target;
  target.submit = [&client](serve::ServeRequest req) {
    return client.submit(std::move(req));
  };
  target.metrics = [&client] {
    // The in-process wrapper drains before sampling so the in-flight
    // gauge is settled.  Remotely, the last response frame can arrive a
    // beat before the server's own bookkeeping decrements the gauge —
    // poll it quiet (bounded) instead of snapshotting a transient.
    serve::MetricsSnapshot m = client.metrics();
    for (int i = 0; i < 50 && (m.in_flight > 0 || m.queue_depth > 0); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      m = client.metrics();
    }
    return m;
  };
  target.transport = client.transport_name();
  // The dispatch policy and resolved backend live in the server process;
  // ask it.
  const api::Json info = client.ping();
  target.policy = info.at("server").at("policy").as_string();
  target.backend = info.at("server").at("backend").as_string();
  // Serialization accounting (docs/BENCH_SCHEMA.md#serialization): diff
  // the client-side SerStats and the server's exported wire counters
  // around the run, so the report attributes only this run's traffic.
  // Both are process-wide, so concurrent clients would cross-pollute —
  // the loadgen is the only traffic source in the benchmark flow.
  const int wire_version = client.wire_version();
  const serve::wire::SerSnapshot client_before =
      serve::wire::SerStats::instance().snapshot(wire_version);
  const serve::MetricsSnapshot server_before = client.metrics();
  serve::LoadReport report = serve::run_loadgen_against(options, target);
  report.wire_version = wire_version;
  report.ser_client =
      serve::wire::SerStats::instance().snapshot(wire_version).minus(client_before);
  const serve::wire::SerSnapshot& server_after =
      wire_version >= 2 ? report.server_metrics.wire_v2
                        : report.server_metrics.wire_v1;
  report.ser_server = server_after.minus(
      wire_version >= 2 ? server_before.wire_v2 : server_before.wire_v1);
  return report;
}

serve::SweepReport run_remote_sweep(const serve::ScenarioFile& file,
                                    Client& client) {
  DEFA_CHECK(file.has_sweep, "scenario: file has no 'sweep' block");
  // One reconfigure per point: the point's policy plus the reconfigurable
  // subset of the file's server block (locality window, cache bounds,
  // memoization, backend), then reset stats + caches — which is what the
  // in-process sweep gets from constructing a fresh Server per point.
  // Workers and queue capacity are process-construction settings and stay
  // whatever the remote server was launched with.
  const auto apply_point = [&](serve::SchedulePolicy policy) {
    serve::ServerReconfig rc;
    rc.policy = policy;
    rc.locality_window = file.base.server.locality_window;
    rc.backend = file.base.server.engine.backend;
    rc.max_contexts = file.base.server.engine.max_contexts;
    rc.max_memo = file.base.server.engine.max_memo;
    rc.memoize_results = file.base.server.engine.memoize_results;
    rc.reset_stats = true;
    (void)client.reconfigure(rc);
  };
  serve::SweepReport report;
  report.name = file.name;
  report.requests = file.base.requests;
  for (const double rate : file.sweep.rates_qps) {
    for (const serve::SchedulePolicy policy : file.sweep.policies) {
      serve::LoadGenOptions options = file.base;
      options.mode = serve::LoadGenOptions::Mode::kOpen;
      options.rate_qps = rate;
      apply_point(policy);
      serve::SweepPoint pt;
      pt.mode = "open";
      pt.rate_qps = rate;
      pt.policy = policy;
      pt.report = run_remote_loadgen(options, client);
      report.points.push_back(std::move(pt));
    }
  }
  for (const int concurrency : file.sweep.concurrencies) {
    for (const serve::SchedulePolicy policy : file.sweep.policies) {
      serve::LoadGenOptions options = file.base;
      options.mode = serve::LoadGenOptions::Mode::kClosed;
      options.concurrency = concurrency;
      apply_point(policy);
      serve::SweepPoint pt;
      pt.mode = "closed";
      pt.concurrency = concurrency;
      pt.policy = policy;
      pt.report = run_remote_loadgen(options, client);
      report.points.push_back(std::move(pt));
    }
  }
  return report;
}

}  // namespace defa::client
