#include "client/remote_loadgen.h"

#include <chrono>
#include <thread>
#include <utility>

namespace defa::client {

serve::LoadReport run_remote_loadgen(const serve::LoadGenOptions& options,
                                     Client& client) {
  serve::LoadTarget target;
  target.submit = [&client](serve::ServeRequest req) {
    return client.submit(std::move(req));
  };
  target.metrics = [&client] {
    // The in-process wrapper drains before sampling so the in-flight
    // gauge is settled.  Remotely, the last response frame can arrive a
    // beat before the server's own bookkeeping decrements the gauge —
    // poll it quiet (bounded) instead of snapshotting a transient.
    serve::MetricsSnapshot m = client.metrics();
    for (int i = 0; i < 50 && (m.in_flight > 0 || m.queue_depth > 0); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      m = client.metrics();
    }
    return m;
  };
  target.transport = client.transport_name();
  // The dispatch policy lives in the server process; ask it.
  target.policy = client.ping().at("server").at("policy").as_string();
  return serve::run_loadgen_against(options, target);
}

}  // namespace defa::client
