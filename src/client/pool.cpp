#include "client/pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "common/check.h"
#include "obs/trace.h"
#include "serve/protocol.h"

namespace defa::client {

namespace {

serve::ServeResponse transport_response(const std::string& id,
                                        const std::string& message) {
  serve::ServeResponse r;
  r.id = id;
  r.status = serve::ResponseStatus::kError;
  r.error = message;
  r.error_code = serve::error_code_name(serve::ErrorCode::kTransport);
  return r;
}

}  // namespace

struct Pool::Impl : std::enable_shared_from_this<Pool::Impl> {
  struct Shard {
    std::string name;
    std::string endpoint;
    /// Live connection; null while down.  Bumping `generation` on every
    /// transition makes `mark_down` idempotent: a late failure callback
    /// from a previous connection cannot tear down its successor.
    std::shared_ptr<Client> client;
    std::uint64_t generation = 0;
    std::uint64_t routed = 0;
    std::uint64_t reconnects = 0;
    bool ever_connected = false;
  };

  /// One routed request: the key's full ring preference order plus how far
  /// down it failover has walked.
  struct Call {
    serve::ServeRequest req;
    std::vector<std::size_t> order;
    std::size_t attempt = 0;
    Client::ResponseCallback done;
  };

  PoolOptions options;
  fleet::HashRing ring;
  mutable std::mutex mu;
  std::condition_variable cv;
  std::vector<Shard> shards;          // guarded by mu (endpoints/name const)
  bool stopping = false;              // guarded by mu
  std::atomic<std::uint64_t> failovers{0};
  /// Dead Clients parked here instead of being destroyed inline: a failure
  /// callback runs on the dying Client's own reader thread, and destroying
  /// it there would self-join.  Reconnector threads (and the destructor)
  /// reap the graveyard from safe stacks.
  std::vector<std::shared_ptr<Client>> graveyard;  // guarded by mu
  std::vector<std::thread> reconnectors;

  Impl(std::vector<std::string> endpoints, PoolOptions opts)
      : options(std::move(opts)),
        ring([&] {
          if (options.shard_names.empty()) {
            options.shard_names.reserve(endpoints.size());
            for (std::size_t i = 0; i < endpoints.size(); ++i) {
              options.shard_names.push_back("shard" + std::to_string(i));
            }
          }
          DEFA_CHECK(options.shard_names.size() == endpoints.size(),
                     "client::Pool: shard_names size (" +
                         std::to_string(options.shard_names.size()) +
                         ") != endpoints size (" +
                         std::to_string(endpoints.size()) + ")");
          return fleet::HashRing(options.shard_names, options.virtual_nodes);
        }()) {
    shards.resize(endpoints.size());
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      shards[i].name = options.shard_names[i];
      shards[i].endpoint = std::move(endpoints[i]);
    }
  }

  void start() {
    reconnectors.reserve(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) {
      reconnectors.emplace_back([self = shared_from_this(), i] {
        self->reconnect_loop(i);
      });
    }
  }

  void stop() {
    std::vector<std::shared_ptr<Client>> doomed;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (stopping) return;
      stopping = true;
      cv.notify_all();
    }
    for (auto& t : reconnectors) t.join();
    {
      std::lock_guard<std::mutex> lock(mu);
      doomed = std::move(graveyard);
      graveyard.clear();
      for (auto& s : shards) {
        if (s.client) doomed.push_back(std::move(s.client));
        ++s.generation;
      }
    }
    // Destroyed outside mu: each ~Client fails its in-flight calls, whose
    // failover callbacks re-enter the pool, see `stopping`, and deliver a
    // transport error instead of re-dispatching.
    doomed.clear();
  }

  void reconnect_loop(std::size_t i) {
    int backoff_ms = options.backoff_initial_ms;
    std::unique_lock<std::mutex> lock(mu);
    while (!stopping) {
      if (shards[i].client) {
        backoff_ms = options.backoff_initial_ms;
        cv.wait(lock, [&] { return stopping || !shards[i].client; });
        continue;
      }
      if (!options.reconnect && shards[i].ever_connected) return;
      // Reap any connections parked by mark_down — this thread's stack is
      // never inside a Client callback, so joining their readers is safe.
      std::vector<std::shared_ptr<Client>> reaped = std::move(graveyard);
      graveyard.clear();
      lock.unlock();
      reaped.clear();
      std::shared_ptr<Client> fresh;
      try {
        fresh = std::make_shared<Client>(
            Client::connect(shards[i].endpoint, options.client));
      } catch (const std::exception&) {
        fresh = nullptr;
      }
      lock.lock();
      if (stopping) {
        if (fresh) graveyard.push_back(std::move(fresh));
        return;
      }
      if (fresh) {
        if (shards[i].ever_connected) {
          ++shards[i].reconnects;
          DEFA_TRACE_INSTANT("pool_reconnect", "pool",
                             {{"shard", shards[i].name}});
        }
        shards[i].ever_connected = true;
        shards[i].client = std::move(fresh);
        ++shards[i].generation;
        cv.notify_all();
      } else {
        cv.wait_for(lock, std::chrono::milliseconds(backoff_ms),
                    [&] { return stopping || static_cast<bool>(shards[i].client); });
        backoff_ms = std::min(backoff_ms * 2, options.backoff_max_ms);
      }
    }
  }

  /// Retire shard i's connection iff it is still the one the caller used
  /// (generation match).  The Client lands in the graveyard; the
  /// reconnector wakes to reap it and dial a replacement.
  void mark_down(std::size_t i, std::uint64_t generation) {
    std::lock_guard<std::mutex> lock(mu);
    if (shards[i].generation != generation || !shards[i].client) return;
    graveyard.push_back(std::move(shards[i].client));
    shards[i].client = nullptr;
    ++shards[i].generation;
    DEFA_TRACE_INSTANT("pool_mark_down", "pool", {{"shard", shards[i].name}});
    cv.notify_all();
  }

  /// Dispatch `call` to the first up shard at or after call->attempt in its
  /// preference order.  Skipped-down shards and retries both count as
  /// failovers.  Exactly one terminal path: the shard's response callback
  /// (possibly after re-dispatch) or the all-down synthetic error.
  static void dispatch(const std::shared_ptr<Impl>& impl,
                       const std::shared_ptr<Call>& call) {
    std::shared_ptr<Client> client;
    std::size_t shard_idx = 0;
    std::uint64_t generation = 0;
    {
      std::lock_guard<std::mutex> lock(impl->mu);
      if (!impl->stopping) {
        while (call->attempt < call->order.size()) {
          std::size_t idx = call->order[call->attempt];
          if (impl->shards[idx].client) {
            client = impl->shards[idx].client;
            shard_idx = idx;
            generation = impl->shards[idx].generation;
            ++impl->shards[idx].routed;
            if (call->attempt > 0) {
              impl->failovers.fetch_add(1);
              DEFA_TRACE_INSTANT("pool_failover", "pool",
                                 {{"to_shard", impl->shards[idx].name},
                                  {"attempt", std::to_string(call->attempt)}});
            }
            ++call->attempt;
            break;
          }
          ++call->attempt;
        }
      }
    }
    if (!client) {
      call->done(transport_response(call->req.id, "no shard reachable"));
      return;
    }
    serve::ServeRequest req = call->req;  // keep the original for retries
    client->submit_async(
        std::move(req),
        [impl, call, shard_idx, generation](const serve::ServeResponse& resp) {
          const bool transport =
              resp.error_code ==
              serve::error_code_name(serve::ErrorCode::kTransport);
          // A draining shard rejects with kShutdown but its siblings still
          // serve — re-route those too.  Other rejections (overload,
          // deadline) are real backpressure/deadline answers; retrying
          // elsewhere would double-count work the caller must see.
          const bool failover_worthy =
              transport ||
              resp.status == serve::ResponseStatus::kRejectedShutdown;
          // Mark the shard down on every transport failure — even when
          // this was the last preference (no retry): the reconnector only
          // wakes on mark_down, and a single-shard pool would otherwise
          // keep dispatching into the same dead connection forever.
          if (transport) impl->mark_down(shard_idx, generation);
          if (failover_worthy && call->attempt < call->order.size()) {
            bool retry = false;
            {
              std::lock_guard<std::mutex> lock(impl->mu);
              retry = !impl->stopping;
            }
            if (retry) {
              dispatch(impl, call);
              return;
            }
          }
          call->done(resp);
        });
  }
};

Pool::Pool(std::vector<std::string> endpoints, PoolOptions options) {
  DEFA_CHECK(!endpoints.empty(), "client::Pool: at least one endpoint required");
  impl_ = std::make_shared<Impl>(std::move(endpoints), std::move(options));
  impl_->start();
}

Pool::~Pool() {
  if (impl_) impl_->stop();
}

bool Pool::wait_connected(int timeout_ms) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  return impl_->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    for (const auto& s : impl_->shards) {
      if (!s.client) return false;
    }
    return true;
  });
}

void Pool::submit_async(serve::ServeRequest req, Client::ResponseCallback done) {
  auto call = std::make_shared<Impl::Call>();
  call->order = impl_->ring.preference_order(req.request.workload_key());
  call->req = std::move(req);
  call->done = std::move(done);
  Impl::dispatch(impl_, call);
}

std::future<serve::ServeResponse> Pool::submit(serve::ServeRequest req) {
  auto promise = std::make_shared<std::promise<serve::ServeResponse>>();
  std::future<serve::ServeResponse> future = promise->get_future();
  submit_async(std::move(req), [promise](const serve::ServeResponse& resp) {
    promise->set_value(resp);
  });
  return future;
}

api::EvalResult Pool::eval(const api::EvalRequest& req) {
  serve::ServeRequest sr;
  sr.request = req;
  serve::ServeResponse resp = submit(std::move(sr)).get();
  if (resp.status != serve::ResponseStatus::kOk) {
    const serve::ErrorCode code =
        serve::error_code_from_name(resp.error_code)
            .value_or(serve::error_code_for(resp.status));
    throw RpcError(code, resp.error.empty() ? serve::status_name(resp.status)
                                            : resp.error);
  }
  DEFA_CHECK(resp.result.has_value(), "ok response without result");
  return *resp.result;
}

std::size_t Pool::shard_for(const std::string& workload_key) const {
  return impl_->ring.node_index_for(workload_key);
}

std::size_t Pool::shard_count() const { return impl_->shards.size(); }

const fleet::HashRing& Pool::ring() const { return impl_->ring; }

api::Json Pool::call_shard(std::size_t shard, const std::string& method,
                           api::Json params) {
  DEFA_CHECK(shard < impl_->shards.size(),
             "call_shard: shard " + std::to_string(shard) + " out of range");
  std::shared_ptr<Client> client;
  std::uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    client = impl_->shards[shard].client;
    generation = impl_->shards[shard].generation;
  }
  if (!client) {
    throw RpcError(serve::ErrorCode::kTransport,
                   "shard " + impl_->shards[shard].name + " is down");
  }
  try {
    return client->call(method, std::move(params));
  } catch (const RpcError& e) {
    if (e.code() == serve::ErrorCode::kTransport) {
      impl_->mark_down(shard, generation);
    }
    throw;
  }
}

std::vector<std::optional<serve::MetricsSnapshot>> Pool::metrics_all() {
  std::vector<std::optional<serve::MetricsSnapshot>> out(impl_->shards.size());
  for (std::size_t i = 0; i < impl_->shards.size(); ++i) {
    try {
      out[i] = serve::MetricsSnapshot::from_json(call_shard(i, "metrics"));
    } catch (const std::exception&) {
      out[i] = std::nullopt;
    }
  }
  return out;
}

int Pool::drain_all() {
  int drained = 0;
  for (std::size_t i = 0; i < impl_->shards.size(); ++i) {
    try {
      (void)call_shard(i, "drain");
      ++drained;
    } catch (const std::exception&) {
    }
  }
  return drained;
}

std::vector<PoolShardStats> Pool::stats() const {
  std::vector<PoolShardStats> out;
  std::lock_guard<std::mutex> lock(impl_->mu);
  out.reserve(impl_->shards.size());
  for (const auto& s : impl_->shards) {
    PoolShardStats st;
    st.name = s.name;
    st.endpoint = s.endpoint;
    st.connected = static_cast<bool>(s.client);
    st.routed = s.routed;
    st.reconnects = s.reconnects;
    out.push_back(std::move(st));
  }
  return out;
}

std::uint64_t Pool::failovers() const { return impl_->failovers.load(); }

}  // namespace defa::client
