#pragma once

/// \file remote_loadgen.h
/// Drive a *separate* `defa_serve` process with the serve-layer load
/// generator: the same schedules, mixes and report schema as in-process
/// `serve::run_loadgen`, but every request travels the wire through a
/// `client::Client` — `defa_loadgen --connect HOST:PORT` uses this, so
/// BENCH_serve.json gains an apples-to-apples in-process vs cross-process
/// comparison (the report's `transport` field tells them apart).

#include "client/client.h"
#include "serve/loadgen.h"
#include "serve/scenario.h"

namespace defa::client {

/// Run the configured traffic against `client`'s server.  Ignores
/// `options.server` (the remote process owns its configuration; the
/// report's `policy` and `server_metrics` are fetched over the wire via
/// `ping`/`metrics`).  Latencies are client-observed round trips.
[[nodiscard]] serve::LoadReport run_remote_loadgen(
    const serve::LoadGenOptions& options, Client& client);

/// Remote flavor of `serve::run_sweep` (`defa_loadgen --connect --sweep`):
/// the same rate x policy / concurrency x policy grid and report schema,
/// but each point is applied to the *remote* server via the protocol
/// `reconfigure` method (policy switch + `reset_stats`, which clears the
/// engine caches and metrics) instead of constructing a fresh in-process
/// Server — so the per-point cold-cache semantics match.  Requires
/// `file.has_sweep`; throws RpcError when the server refuses a point's
/// configuration.
[[nodiscard]] serve::SweepReport run_remote_sweep(const serve::ScenarioFile& file,
                                                  Client& client);

}  // namespace defa::client
