#pragma once

/// \file remote_loadgen.h
/// Drive a *separate* `defa_serve` process with the serve-layer load
/// generator: the same schedules, mixes and report schema as in-process
/// `serve::run_loadgen`, but every request travels the wire through a
/// `client::Client` — `defa_loadgen --connect HOST:PORT` uses this, so
/// BENCH_serve.json gains an apples-to-apples in-process vs cross-process
/// comparison (the report's `transport` field tells them apart).

#include "client/client.h"
#include "serve/loadgen.h"

namespace defa::client {

/// Run the configured traffic against `client`'s server.  Ignores
/// `options.server` (the remote process owns its configuration; the
/// report's `policy` and `server_metrics` are fetched over the wire via
/// `ping`/`metrics`).  Latencies are client-observed round trips.
[[nodiscard]] serve::LoadReport run_remote_loadgen(
    const serve::LoadGenOptions& options, Client& client);

}  // namespace defa::client
