#pragma once

/// \file pool.h
/// `defa::client::Pool` — consistent-hash routing over a fleet of
/// `defa_serve` shards (docs/FLEET.md).
///
/// Each request routes to the shard owning its Engine workload key on a
/// shared `fleet::HashRing` (virtual nodes, so shard membership changes
/// remap only ~1/N of keys), over a pipelined `client::Client` connection
/// per shard.  Same-key requests always land on the same shard, so each
/// shard's context cache stays warm on its slice of the key space — the
/// sharding analogue of the in-process locality scheduler.
///
/// Failure handling:
///  * a shard connection that dies is reconnected in the background with
///    exponential backoff (`PoolOptions::backoff_*`);
///  * a request in flight on a dying shard fails over to the next shard
///    in the key's deterministic ring preference order — every request
///    gets exactly one response, a typed "transport" error only when no
///    shard is reachable at all;
///  * results are bit-identical to a single in-process `Engine::run`
///    regardless of which shard answers (every shard computes the same
///    deterministic function).
///
/// `submit`/`submit_async`/`eval` mirror the `client::Client` contracts.

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "client/client.h"
#include "fleet/hash_ring.h"
#include "serve/metrics.h"

namespace defa::client {

struct PoolOptions {
  /// Ring identities of the shards, aligned with the endpoints vector.
  /// Empty = "shard0".."shardN-1" (what `defa_fleet` launches).  Names —
  /// not endpoints — anchor the ring, so a shard restarted on a new port
  /// keeps its key range.
  std::vector<std::string> shard_names;
  int virtual_nodes = fleet::HashRing::kDefaultVirtualNodes;
  /// Reconnect backoff: initial delay, doubled per failed attempt up to
  /// the cap; reset on success.
  int backoff_initial_ms = 25;
  int backoff_max_ms = 1000;
  /// When false a shard that dies stays down (tests pin failover paths
  /// without racing the reconnector).
  bool reconnect = true;
  /// Per-shard connection options: wire-version policy (auto / forced v1
  /// / required v2) and pipelining depth, applied to every connect and
  /// reconnect uniformly so the fleet speaks one protocol flavor.
  ClientOptions client;
};

/// Per-shard routing/health counters (`Pool::stats`).
struct PoolShardStats {
  std::string name;
  std::string endpoint;
  bool connected = false;
  std::uint64_t routed = 0;      ///< requests dispatched to this shard
  std::uint64_t reconnects = 0;  ///< successful re-connections after a loss
};

class Pool {
 public:
  /// Starts one background reconnector per shard; connections are
  /// established asynchronously (`wait_connected` to block for them).
  explicit Pool(std::vector<std::string> endpoints, PoolOptions options = {});
  ~Pool();  ///< fails nothing silently: in-flight requests resolve first
  Pool(Pool&&) noexcept = default;
  Pool& operator=(Pool&&) noexcept = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Block until every shard is connected; false on timeout.
  [[nodiscard]] bool wait_connected(int timeout_ms);

  /// Route one request by its workload key; the callback fires exactly
  /// once, after failover if needed.
  void submit_async(serve::ServeRequest req, Client::ResponseCallback done);
  [[nodiscard]] std::future<serve::ServeResponse> submit(serve::ServeRequest req);
  /// Sync eval; throws a typed RpcError on any non-ok outcome.
  [[nodiscard]] api::EvalResult eval(const api::EvalRequest& req);

  /// Primary shard index for a workload key (ring lookup; no I/O).
  [[nodiscard]] std::size_t shard_for(const std::string& workload_key) const;
  [[nodiscard]] std::size_t shard_count() const;
  [[nodiscard]] const fleet::HashRing& ring() const;

  /// Sync admin RPC against one specific shard.  Throws RpcError —
  /// kTransport when the shard is down (and marks it down on a transport
  /// failure mid-call).
  api::Json call_shard(std::size_t shard, const std::string& method,
                       api::Json params = {});
  /// Metrics of every shard; nullopt for unreachable shards.
  [[nodiscard]] std::vector<std::optional<serve::MetricsSnapshot>> metrics_all();
  /// Drain every reachable shard (graceful fleet shutdown); unreachable
  /// shards are skipped.  Returns the number of shards drained.
  int drain_all();

  [[nodiscard]] std::vector<PoolShardStats> stats() const;
  /// Requests re-routed away from their preferred shard (down-shard skips
  /// and in-flight failovers).
  [[nodiscard]] std::uint64_t failovers() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace defa::client
