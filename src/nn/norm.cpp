#include "nn/norm.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"

namespace defa::nn {

void rms_norm_rows(Tensor& x, float eps) {
  DEFA_CHECK(x.rank() == 2, "rms_norm_rows expects rank-2");
  const std::int64_t n = x.dim(0), d = x.dim(1);
  DEFA_CHECK(d > 0, "empty rows");
  parallel_for(0, n, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      std::span<float> row = x.row(i);
      double ss = 0.0;
      for (float v : row) ss += static_cast<double>(v) * v;
      const float inv =
          1.0f / (std::sqrt(static_cast<float>(ss / static_cast<double>(d))) + eps);
      for (float& v : row) v *= inv;
    }
  });
}

}  // namespace defa::nn
