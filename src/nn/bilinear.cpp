#include "nn/bilinear.h"

namespace defa::nn {

void bi_sample_accumulate(const ModelConfig& m, const Tensor& values, int l, float x,
                          float y, int col0, int c, float weight, std::span<float> out) {
  DEFA_DCHECK(values.rank() == 2 && values.dim(0) == m.n_in(), "values must be N_in x D");
  DEFA_DCHECK(col0 >= 0 && col0 + c <= values.dim(1), "channel slice out of range");
  DEFA_DCHECK(static_cast<std::int64_t>(out.size()) >= c, "output span too small");

  const BiPoint p = bi_locate(x, y);
  const std::int64_t d = values.dim(1);
  std::span<const float> data = values.data();

  // Gather the four neighbor channel-slices (nullptr => zero padding).
  std::array<const float*, 4> nb{nullptr, nullptr, nullptr, nullptr};
  for_each_neighbor(m, l, p, [&](int which, std::int64_t token) {
    nb[static_cast<std::size_t>(which)] =
        &data[static_cast<std::size_t>(token * d + col0)];
  });

  for (int ch = 0; ch < c; ++ch) {
    const float n0 = nb[0] != nullptr ? nb[0][ch] : 0.0f;
    const float n1 = nb[1] != nullptr ? nb[1][ch] : 0.0f;
    const float n2 = nb[2] != nullptr ? nb[2][ch] : 0.0f;
    const float n3 = nb[3] != nullptr ? nb[3][ch] : 0.0f;
    out[static_cast<std::size_t>(ch)] += weight * bi_horner(n0, n1, n2, n3, p.t0, p.t1);
  }
}

}  // namespace defa::nn
