#include "nn/linear.h"

#include "common/check.h"
#include "common/parallel.h"

namespace defa::nn {

Tensor matmul(const Tensor& a, const Tensor& b) {
  DEFA_CHECK(a.rank() == 2 && b.rank() == 2, "matmul expects rank-2 tensors");
  DEFA_CHECK(a.dim(1) == b.dim(0), "matmul inner dimension mismatch");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});

  std::span<const float> pa = a.data();
  std::span<const float> pb = b.data();
  std::span<float> pc = c.data();

  parallel_for(0, m, [&](std::int64_t row_begin, std::int64_t row_end) {
    for (std::int64_t i = row_begin; i < row_end; ++i) {
      float* crow = &pc[static_cast<std::size_t>(i * n)];
      const float* arow = &pa[static_cast<std::size_t>(i * k)];
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;  // pruned rows/columns short-circuit
        const float* brow = &pb[static_cast<std::size_t>(kk * n)];
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }, /*min_parallel=*/8);
  return c;
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor* bias) {
  Tensor y = matmul(x, w);
  if (bias != nullptr) {
    DEFA_CHECK(bias->rank() == 1 && bias->dim(0) == y.dim(1), "bias shape mismatch");
    const std::int64_t m = y.dim(0), n = y.dim(1);
    std::span<float> py = y.data();
    std::span<const float> pbias = bias->data();
    for (std::int64_t i = 0; i < m; ++i) {
      float* row = &py[static_cast<std::size_t>(i * n)];
      for (std::int64_t j = 0; j < n; ++j) row[j] += pbias[static_cast<std::size_t>(j)];
    }
  }
  return y;
}

}  // namespace defa::nn
