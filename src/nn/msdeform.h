#pragma once

/// \file msdeform.h
/// Reference fp32 Multi-Scale Deformable Attention (Eq. 1 of the paper).
///
/// The encoder variant is modeled: every multi-scale token is a query, its
/// reference point is its own (normalized) pixel center, and each
/// (query, head) samples N_l x N_p points across all pyramid levels.
///
/// Two entry paths exist:
///  * `fields_from_weights` — textbook path: logits = Q W_A, offsets = Q W_S
///    (used by unit tests and the quickstart example);
///  * externally-supplied fields (the scene-driven workload generator) — the
///    path the experiments use, see DESIGN.md §4 substitution #1.
/// Both converge on `msgs_aggregate_ref`, the dense fp32 golden aggregate.

#include "config/model_config.h"
#include "kernels/backend.h"
#include "tensor/tensor.h"

namespace defa::nn {

/// Learnable parameters of one MSDeformAttn block (Eq. 1).
struct MsdaWeights {
  Tensor w_attn;   ///< (D, H*L*P)  attention logits projection W_A
  Tensor b_attn;   ///< (H*L*P)
  Tensor w_samp;   ///< (D, H*L*P*2) sampling offset projection W_S
  Tensor b_samp;   ///< (H*L*P*2)
  Tensor w_value;  ///< (D, D)      value projection W_V
  Tensor b_value;  ///< (D)

  /// Random initialization with Deformable-DETR-style ring bias on the
  /// offset projection (points start on a ring around the reference).
  [[nodiscard]] static MsdaWeights random(const ModelConfig& m, Rng& rng);
};

/// Intermediate fields consumed by grid-sampling + aggregation.
struct MsdaFields {
  Tensor logits;  ///< (N, H, L*P) pre-softmax attention logits
  Tensor locs;    ///< (N, H, L, P, 2) sampling locations, (x, y) in pixels
                  ///< of each point's own target level
};

/// Normalized reference points of the encoder queries: token q at level l,
/// pixel (y,x) has ref ((x+0.5)/W_l, (y+0.5)/H_l).  Shape (N, 2), (x, y).
[[nodiscard]] Tensor reference_points(const ModelConfig& m);

/// Convert normalized reference + per-level pixel offsets into absolute
/// per-level pixel sampling locations:
///   loc = ref_norm * (W_l, H_l) - 0.5 + offset_px.
[[nodiscard]] Tensor locs_from_offsets(const ModelConfig& m, const Tensor& ref_norm,
                                       const Tensor& offsets_px);

/// Textbook field computation from weights: logits = X W_A + b, offsets =
/// X W_S + b (offsets interpreted as pixels of each target level).
[[nodiscard]] MsdaFields fields_from_weights(const ModelConfig& m, const Tensor& x,
                                             const Tensor& ref_norm,
                                             const MsdaWeights& weights);

/// Dense fp32 MSGS + aggregation (golden reference, no pruning):
///   out(q, h*Dh + c) = sum_{l,p} prob(q,h,lp) * BI(values, loc(q,h,l,p))_c
[[nodiscard]] Tensor msgs_aggregate_ref(const ModelConfig& m, const Tensor& values,
                                        const Tensor& probs, const Tensor& locs);

/// Full Eq. 1 forward (softmax + value projection + MSGS + concat) from
/// weights.  Returns the (N, D) attention output.  The linear/softmax/MSGS
/// work runs on `backend` (nullptr selects kernels::default_backend());
/// every registered backend produces bit-identical fp32 results.
[[nodiscard]] Tensor msdeform_forward_ref(const ModelConfig& m, const Tensor& x,
                                          const Tensor& ref_norm,
                                          const MsdaWeights& weights,
                                          const kernels::Backend* backend = nullptr);

}  // namespace defa::nn
