#pragma once

/// \file bilinear.h
/// Bilinear interpolation (BI) geometry and kernels — the single source of
/// truth for sampling-point -> neighbor-pixel mapping, shared by the
/// functional model, the quantized datapath, the FWP frequency counter and
/// the cycle-accurate MSGS engine.
///
/// Conventions follow the paper's Sec. 4.3: a fractional sampling point S at
/// (x, y) has integer neighbors N0 (x0,y0) top-left, N1 (x1,y0) top-right,
/// N2 (x0,y1) bottom-left, N3 (x1,y1) bottom-right with x1 = x0+1,
/// y1 = y0+1, and fractions t0 = y - y0, t1 = x - x0.

#include <array>
#include <cmath>
#include <span>

#include "config/model_config.h"
#include "tensor/tensor.h"

namespace defa::nn {

/// Integer anchor and fractional position of a sampling point.
struct BiPoint {
  int x0 = 0;
  int y0 = 0;
  float t0 = 0.0f;  ///< vertical fraction  (y - y0)
  float t1 = 0.0f;  ///< horizontal fraction (x - x0)
};

/// Locate the 2x2 neighborhood of a fractional point.
[[nodiscard]] inline BiPoint bi_locate(float x, float y) noexcept {
  const float fx = std::floor(x);
  const float fy = std::floor(y);
  return BiPoint{static_cast<int>(fx), static_cast<int>(fy), y - fy, x - fx};
}

/// Direct-form BI, Eq. (3): four products of edge distances.
[[nodiscard]] inline float bi_direct(float n0, float n1, float n2, float n3, float t0,
                                     float t1) noexcept {
  return n0 * (1.0f - t1) * (1.0f - t0) + n1 * t1 * (1.0f - t0) +
         n2 * (1.0f - t1) * t0 + n3 * t1 * t0;
}

/// Horner-form BI, Eq. (4): 3 multiplies / 7 adds — the form the BI operator
/// in the reconfigurable PE array implements.
[[nodiscard]] inline float bi_horner(float n0, float n1, float n2, float n3, float t0,
                                     float t1) noexcept {
  return n0 + (n2 - n0) * t0 + ((n1 - n0) + (n3 - n2 - n1 + n0) * t0) * t1;
}

/// The four neighbor offsets of a BiPoint in (dx, dy) order N0..N3.
inline constexpr std::array<std::array<int, 2>, 4> kBiNeighborOffsets{
    {{0, 0}, {1, 0}, {0, 1}, {1, 1}}};

/// Visit the in-bounds neighbors of point `p` in level `l`; `fn` receives
/// (neighbor index 0..3, flattened token index).  Out-of-bounds neighbors
/// (zero-padding region) are skipped.
template <typename Fn>
void for_each_neighbor(const ModelConfig& m, int l, const BiPoint& p, Fn&& fn) {
  const LevelShape& lv = m.levels[static_cast<std::size_t>(l)];
  const std::int64_t base = m.level_offset(l);
  for (int nb = 0; nb < 4; ++nb) {
    const int x = p.x0 + kBiNeighborOffsets[static_cast<std::size_t>(nb)][0];
    const int y = p.y0 + kBiNeighborOffsets[static_cast<std::size_t>(nb)][1];
    if (x < 0 || x >= lv.w || y < 0 || y >= lv.h) continue;
    fn(nb, base + static_cast<std::int64_t>(y) * lv.w + x);
  }
}

/// Sample `c` channels starting at column `col0` of the value matrix
/// `values` (N_in x D) at fractional location (x, y) of level `l`,
/// accumulating `weight * sample` into `out`.  Out-of-bounds neighbors
/// contribute zero (zero padding).  Uses the Horner form.
void bi_sample_accumulate(const ModelConfig& m, const Tensor& values, int l, float x,
                          float y, int col0, int c, float weight, std::span<float> out);

}  // namespace defa::nn
