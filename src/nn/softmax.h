#pragma once

/// \file softmax.h
/// Numerically-stable softmax.  In MSDeformAttn the softmax normalizes the
/// N_l*N_p attention logits of each (query, head) pair (Eq. 1).

#include <span>

#include "tensor/tensor.h"

namespace defa::nn {

/// In-place stable softmax over a contiguous span.
void softmax_inplace(std::span<float> v);

/// Softmax over the last dimension of any rank>=1 tensor.
[[nodiscard]] Tensor softmax_lastdim(const Tensor& t);

}  // namespace defa::nn
