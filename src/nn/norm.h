#pragma once

/// \file norm.h
/// Per-token RMS normalization.  The encoder pipeline applies it after each
/// residual (X <- rmsnorm(X + attn(X))) to keep token magnitudes stable
/// across blocks — the role LayerNorm plays in the real detectors (the
/// affine parameters are irrelevant to pruning/quantization behaviour, so a
/// parameter-free RMS norm is used; see DESIGN.md §5).

#include "tensor/tensor.h"

namespace defa::nn {

/// Normalize every row of a rank-2 tensor to unit RMS (with epsilon guard).
void rms_norm_rows(Tensor& x, float eps = 1e-6f);

}  // namespace defa::nn
