#include "nn/softmax.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"

namespace defa::nn {

void softmax_inplace(std::span<float> v) {
  if (v.empty()) return;
  const float mx = *std::max_element(v.begin(), v.end());
  double sum = 0.0;
  for (float& x : v) {
    x = std::exp(x - mx);
    sum += x;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (float& x : v) x *= inv;
}

Tensor softmax_lastdim(const Tensor& t) {
  DEFA_CHECK(t.rank() >= 1, "softmax needs rank >= 1");
  Tensor out = t;
  const std::int64_t cols = t.dim(t.rank() - 1);
  DEFA_CHECK(cols > 0, "softmax over empty dimension");
  const std::int64_t rows = t.numel() / cols;
  std::span<float> data = out.data();
  parallel_for(0, rows, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t r = begin; r < end; ++r) {
      softmax_inplace(data.subspan(static_cast<std::size_t>(r * cols),
                                   static_cast<std::size_t>(cols)));
    }
  });
  return out;
}

}  // namespace defa::nn
