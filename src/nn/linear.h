#pragma once

/// \file linear.h
/// Dense linear algebra for the functional MSDeformAttn model.

#include "tensor/tensor.h"

namespace defa::nn {

/// C = A (MxK) * B (KxN).  Parallelized over rows of A; deterministic.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// Y = X * W (+ bias broadcast over rows).  W is (K x N); bias is (N).
[[nodiscard]] Tensor linear(const Tensor& x, const Tensor& w, const Tensor* bias = nullptr);

}  // namespace defa::nn
