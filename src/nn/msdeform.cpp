#include "nn/msdeform.h"

#include <cmath>
#include <numbers>

#include "common/parallel.h"
#include "nn/bilinear.h"
#include "nn/linear.h"
#include "nn/softmax.h"

namespace defa::nn {

MsdaWeights MsdaWeights::random(const ModelConfig& m, Rng& rng) {
  const std::int64_t d = m.d_model;
  const std::int64_t hlp = static_cast<std::int64_t>(m.n_heads) * m.points_per_head();
  MsdaWeights w;
  const float init_std = 1.0f / std::sqrt(static_cast<float>(d));
  w.w_attn = Tensor::randn({d, hlp}, rng, 0.0f, init_std);
  w.b_attn = Tensor::zeros({hlp});
  // Offsets: near-zero projection plus a ring-pattern bias, mirroring the
  // Deformable DETR initialization (point p of head h starts at angle
  // 2*pi*(h + p/P)/H with radius p+1).
  w.w_samp = Tensor::randn({d, hlp * 2}, rng, 0.0f, 0.05f * init_std);
  w.b_samp = Tensor::zeros({hlp * 2});
  for (int h = 0; h < m.n_heads; ++h) {
    for (int l = 0; l < m.n_levels; ++l) {
      for (int p = 0; p < m.n_points; ++p) {
        const double angle =
            2.0 * std::numbers::pi *
            (h + static_cast<double>(p) / m.n_points) / m.n_heads;
        const std::int64_t idx =
            ((static_cast<std::int64_t>(h) * m.n_levels + l) * m.n_points + p) * 2;
        w.b_samp.at_flat(idx) = static_cast<float>((p + 1) * std::cos(angle));
        w.b_samp.at_flat(idx + 1) = static_cast<float>((p + 1) * std::sin(angle));
      }
    }
  }
  w.w_value = Tensor::randn({d, d}, rng, 0.0f, init_std);
  w.b_value = Tensor::zeros({d});
  return w;
}

Tensor reference_points(const ModelConfig& m) {
  Tensor ref({m.n_in(), 2});
  std::int64_t q = 0;
  for (int l = 0; l < m.n_levels; ++l) {
    const LevelShape& lv = m.levels[static_cast<std::size_t>(l)];
    for (int y = 0; y < lv.h; ++y) {
      for (int x = 0; x < lv.w; ++x, ++q) {
        ref(q, 0) = (static_cast<float>(x) + 0.5f) / static_cast<float>(lv.w);
        ref(q, 1) = (static_cast<float>(y) + 0.5f) / static_cast<float>(lv.h);
      }
    }
  }
  return ref;
}

Tensor locs_from_offsets(const ModelConfig& m, const Tensor& ref_norm,
                         const Tensor& offsets_px) {
  const std::int64_t n = m.n_in();
  DEFA_CHECK(ref_norm.rank() == 2 && ref_norm.dim(0) == n, "ref shape");
  DEFA_CHECK(offsets_px.rank() == 5 && offsets_px.dim(0) == n &&
                 offsets_px.dim(1) == m.n_heads && offsets_px.dim(2) == m.n_levels &&
                 offsets_px.dim(3) == m.n_points && offsets_px.dim(4) == 2,
             "offsets shape must be (N,H,L,P,2)");
  Tensor locs = offsets_px;
  parallel_for(0, n, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t q = begin; q < end; ++q) {
      const float rx = ref_norm(q, 0);
      const float ry = ref_norm(q, 1);
      // The per-level center is head-invariant, so compute it once per
      // (query, level) instead of once per (query, head, level).
      for (int l = 0; l < m.n_levels; ++l) {
        const LevelShape& lv = m.levels[static_cast<std::size_t>(l)];
        const float cx = rx * static_cast<float>(lv.w) - 0.5f;
        const float cy = ry * static_cast<float>(lv.h) - 0.5f;
        for (int h = 0; h < m.n_heads; ++h) {
          for (int p = 0; p < m.n_points; ++p) {
            locs(q, h, l, p, 0) += cx;
            locs(q, h, l, p, 1) += cy;
          }
        }
      }
    }
  });
  return locs;
}

MsdaFields fields_from_weights(const ModelConfig& m, const Tensor& x,
                               const Tensor& ref_norm, const MsdaWeights& weights) {
  const std::int64_t n = m.n_in();
  DEFA_CHECK(x.rank() == 2 && x.dim(0) == n && x.dim(1) == m.d_model, "x shape");

  MsdaFields f;
  f.logits = linear(x, weights.w_attn, &weights.b_attn);
  f.logits.reshape({n, m.n_heads, m.points_per_head()});

  Tensor offsets = linear(x, weights.w_samp, &weights.b_samp);
  offsets.reshape({n, m.n_heads, m.n_levels, m.n_points, 2});
  f.locs = locs_from_offsets(m, ref_norm, offsets);
  return f;
}

Tensor msgs_aggregate_ref(const ModelConfig& m, const Tensor& values,
                          const Tensor& probs, const Tensor& locs) {
  const std::int64_t n = m.n_in();
  const int dh = m.d_head();
  DEFA_CHECK(values.rank() == 2 && values.dim(0) == n && values.dim(1) == m.d_model,
             "values shape");
  DEFA_CHECK(probs.rank() == 3 && probs.dim(0) == n && probs.dim(1) == m.n_heads &&
                 probs.dim(2) == m.points_per_head(),
             "probs shape");
  DEFA_CHECK(locs.rank() == 5 && locs.dim(0) == n, "locs shape");

  Tensor out({n, m.d_model});
  parallel_for(0, n, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t q = begin; q < end; ++q) {
      std::span<float> orow = out.row(q);
      for (int h = 0; h < m.n_heads; ++h) {
        std::span<float> head_out = orow.subspan(static_cast<std::size_t>(h * dh),
                                                 static_cast<std::size_t>(dh));
        for (int l = 0; l < m.n_levels; ++l) {
          for (int p = 0; p < m.n_points; ++p) {
            const float weight = probs(q, h, l * m.n_points + p);
            if (weight == 0.0f) continue;
            bi_sample_accumulate(m, values, l, locs(q, h, l, p, 0), locs(q, h, l, p, 1),
                                 h * dh, dh, weight, head_out);
          }
        }
      }
    }
  });
  return out;
}

Tensor msdeform_forward_ref(const ModelConfig& m, const Tensor& x,
                            const Tensor& ref_norm, const MsdaWeights& weights,
                            const kernels::Backend* backend) {
  const kernels::Backend& b = kernels::backend_or_default(backend);
  const MsdaFields f = fields_from_weights(m, x, ref_norm, weights);
  const Tensor probs = b.softmax_lastdim(f.logits);
  const Tensor values = b.linear(x, weights.w_value, &weights.b_value);
  return b.run_msgs(m, values, probs, f.locs, kernels::MsgsSpec{});
}

}  // namespace defa::nn
