#pragma once

/// \file trace.h
/// Low-overhead end-to-end tracing (docs/OBSERVABILITY.md).
///
/// A process-global `obs::Tracer` collects timed spans into lock-light
/// per-thread bounded ring buffers (one uncontended mutex per thread,
/// taken only for the few ns of a ring write; the central registry lock
/// is touched once per thread lifetime and on collection).  Timestamps
/// come from `steady_clock` (CLOCK_MONOTONIC), which on Linux is shared
/// machine-wide — so spans recorded by different processes on one host
/// line up on a single timeline when merged (fleet trace export).
///
/// Request-scoped spans are gated by a thread-local *trace context*: a
/// request that was sampled for tracing opens a `TraceScope` carrying its
/// `trace_id`, and every `DEFA_TRACE_SPAN` underneath it (engine lookup,
/// kernel phases, ...) records with that id attached.  When no context is
/// open — tracing disabled, or the request not sampled — a span site is
/// one thread-local load and a branch.  Event-style records (`instant`)
/// gate on the global enable only, so pool reconnect/failover events are
/// captured even outside any request.
///
/// Compile-time removal: building with `-DDEFA_TRACE=0` (CMake option
/// `DEFA_TRACE=OFF`) turns the `DEFA_TRACE_*` macros into empty
/// statements — argument expressions are not evaluated — while the
/// `Tracer` API itself stays available (tools and tests still link; they
/// just collect nothing from macro sites).  Tracing is OFF by default at
/// runtime either way; `defa_serve --trace` / `defa_loadgen --trace-out`
/// opt in.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#ifndef DEFA_TRACE
#define DEFA_TRACE 1
#endif

namespace defa::obs {

/// Microseconds on the machine-wide monotonic clock (comparable across
/// processes on one host).
[[nodiscard]] inline std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One recorded event.  `dur_us < 0` marks an instant event (a point in
/// time, e.g. a pool failover) rather than a duration span.
struct Span {
  std::string name;
  std::string cat;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::uint64_t trace_id = 0;  ///< 0 = not tied to a traced request
  std::uint32_t tid = 0;       ///< small per-process thread ordinal
  std::vector<std::pair<std::string, std::string>> args;

  [[nodiscard]] bool is_instant() const { return dur_us < 0; }
};

/// Process-global span collector.  All methods are thread-safe.
class Tracer {
 public:
  static Tracer& instance();

  /// Master runtime switch (default off).  Disabling does not clear
  /// already-recorded spans.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Per-thread ring capacity in spans.  Applies to threads that record
  /// their first span *after* the call (existing rings keep their size).
  void set_ring_capacity(std::size_t spans);
  [[nodiscard]] std::size_t ring_capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  /// Append to the calling thread's ring (oldest span overwritten — and
  /// counted dropped — once the ring is full).  `span.tid` is stamped by
  /// the tracer.
  void record(Span span);

  /// Merged snapshot of every thread's ring, sorted by `ts_us` (spans of
  /// exited threads included).  `clear` empties the rings and resets the
  /// drop counters.
  [[nodiscard]] std::vector<Span> collect(bool clear = true);

  /// Total spans overwritten before collection, across all threads.
  [[nodiscard]] std::uint64_t dropped() const;

  void clear();

 private:
  struct ThreadLog;
  Tracer() = default;
  ThreadLog& log_for_this_thread();

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> capacity_{16384};
  mutable std::mutex registry_mu_;
  // shared_ptr keeps a finished thread's spans alive until collection.
  std::vector<std::shared_ptr<ThreadLog>> logs_;
  std::uint32_t next_tid_ = 1;
};

/// Fresh, well-mixed 64-bit trace id (never 0).
[[nodiscard]] std::uint64_t new_trace_id();

/// Wire form: 16 lowercase hex digits.
[[nodiscard]] std::string trace_id_to_hex(std::uint64_t id);
/// Strict inverse; throws defa::CheckError on malformed input.
[[nodiscard]] std::uint64_t trace_id_from_hex(const std::string& hex);

/// Trace id of the request the calling thread is currently processing
/// (0 when none — i.e. tracing off or the request not sampled).
[[nodiscard]] std::uint64_t current_trace_id();

/// True when spans recorded on this thread would actually be kept.
[[nodiscard]] inline bool trace_active() { return current_trace_id() != 0; }

/// Opens a request trace context on the calling thread for its lifetime
/// (restores the previous context on destruction, so contexts nest).  A
/// no-op when the tracer is disabled or `trace_id` is 0.
class TraceScope {
 public:
  explicit TraceScope(std::uint64_t trace_id);
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope();

 private:
  std::uint64_t saved_ = 0;
  bool set_ = false;
};

/// RAII duration span: starts at construction, records at destruction.
/// Inactive (zero-cost beyond one TLS load) outside a trace context.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat);
  // The arg value is only materialized when the span is active, so a span
  // site on a hot path costs no allocation while tracing is off.
  ScopedSpan(const char* name, const char* cat, const char* arg_key,
             const char* arg_value);
  ScopedSpan(const char* name, const char* cat, const char* arg_key,
             const std::string& arg_value);
  ScopedSpan(const char* name, const char* cat, const char* arg_key,
             int arg_value);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  [[nodiscard]] bool active() const { return active_; }
  /// Attach an argument (ignored when inactive).
  void arg(const char* key, std::string value);

 private:
  bool active_ = false;
  Span span_;
};

/// Record a span with explicit timestamps (for durations measured across
/// threads, e.g. queue wait: admitted on the submitter, dispatched on a
/// worker).  Kept only when `trace_id != 0` and the tracer is enabled.
void record_span(const char* name, const char* cat, std::int64_t ts_us,
                 std::int64_t dur_us, std::uint64_t trace_id,
                 std::vector<std::pair<std::string, std::string>> args = {});

/// Record a point event (pool reconnect, failover, chaos...).  Gated on
/// the global enable only — no request context required.
void record_instant(const char* name, const char* cat,
                    std::vector<std::pair<std::string, std::string>> args = {},
                    std::uint64_t trace_id = 0);

}  // namespace defa::obs

#if DEFA_TRACE
#define DEFA_OBS_CONCAT_(a, b) a##b
#define DEFA_OBS_CONCAT(a, b) DEFA_OBS_CONCAT_(a, b)
/// Duration span covering the rest of the enclosing scope.
#define DEFA_TRACE_SPAN(name, cat) \
  ::defa::obs::ScopedSpan DEFA_OBS_CONCAT(defa_trace_span_, __LINE__)(name, cat)
/// Same, with one string argument attached.
#define DEFA_TRACE_SPAN_ARG(name, cat, key, value)                          \
  ::defa::obs::ScopedSpan DEFA_OBS_CONCAT(defa_trace_span_, __LINE__)(name, \
                                                                      cat,  \
                                                                      key, value)
/// Point event (no request context needed).
#define DEFA_TRACE_INSTANT(name, cat, ...) \
  ::defa::obs::record_instant(name, cat, ##__VA_ARGS__)
#else
#define DEFA_TRACE_SPAN(name, cat) \
  do {                             \
  } while (0)
#define DEFA_TRACE_SPAN_ARG(name, cat, key, value) \
  do {                                             \
  } while (0)
#define DEFA_TRACE_INSTANT(name, cat, ...) \
  do {                                     \
  } while (0)
#endif
