#pragma once

/// \file export.h
/// Chrome trace-event / Perfetto export for `obs::Tracer` spans, plus the
/// multi-process merge used by `defa_loadgen --connect --trace-out` and
/// `defa_fleet --trace-out` (docs/OBSERVABILITY.md).
///
/// The emitted document is the Trace Event Format JSON object form:
///
///   {"displayTimeUnit": "ms",
///    "traceEvents": [
///      {"name":"process_name","ph":"M","pid":P,"tid":0,
///       "args":{"name":"defa_serve shard0"}},
///      {"name":"run","cat":"serve","ph":"X","ts":123,"dur":456,
///       "pid":P,"tid":T,"args":{"trace_id":"00f3..."}},
///      {"name":"failover","cat":"pool","ph":"i","s":"t", ...}, ...]}
///
/// `ts`/`dur` are microseconds on the machine-wide monotonic clock, so
/// events exported by different processes on one host share a timeline.
/// Duration spans are complete events (ph "X"); instants are ph "i".
/// `args.trace_id` (16 hex digits) joins client- and server-side spans of
/// the same request; events without a request context omit it.

#include <string>
#include <vector>

#include "api/result_io.h"
#include "obs/trace.h"

namespace defa::obs {

/// Spans -> `traceEvents` array (metadata naming event first).  `pid` is
/// the Chrome-trace process id lane — the real pid for single-process
/// dumps, a shard-qualified ordinal for fleet merges.
[[nodiscard]] api::Json trace_events_json(const std::vector<Span>& spans,
                                          int pid,
                                          const std::string& process_name);

/// One process lane of a merged trace.
struct TraceProcess {
  int pid = 0;
  std::string name;
  /// Either a `traceEvents` array or a full document containing one; the
  /// events' `pid` fields are rewritten to `pid` on merge.
  api::Json events;
};

/// Merge per-process event lists into one loadable document.
[[nodiscard]] api::Json merge_trace_processes(
    const std::vector<TraceProcess>& processes);

/// Wrap a single `traceEvents` array into the document form.
[[nodiscard]] api::Json trace_document(api::Json trace_events);

/// Pretty-print `doc` to `path` (throws defa::CheckError on I/O failure).
void write_trace_file(const std::string& path, const api::Json& doc);

}  // namespace defa::obs
