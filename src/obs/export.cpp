#include "obs/export.h"

#include "common/check.h"

namespace defa::obs {

namespace {

api::Json process_name_event(int pid, const std::string& name) {
  api::Json meta = api::Json::object();
  meta["name"] = "process_name";
  meta["ph"] = "M";
  meta["pid"] = pid;
  meta["tid"] = 0;
  api::Json args = api::Json::object();
  args["name"] = name;
  meta["args"] = std::move(args);
  return meta;
}

}  // namespace

api::Json trace_events_json(const std::vector<Span>& spans, int pid,
                            const std::string& process_name) {
  api::Json events = api::Json::array();
  events.push_back(process_name_event(pid, process_name));
  for (const Span& span : spans) {
    api::Json e = api::Json::object();
    e["name"] = span.name;
    e["cat"] = span.cat;
    if (span.is_instant()) {
      e["ph"] = "i";
      e["s"] = "t";  // thread-scoped instant
    } else {
      e["ph"] = "X";
      e["dur"] = static_cast<double>(span.dur_us);
    }
    e["ts"] = static_cast<double>(span.ts_us);
    e["pid"] = pid;
    e["tid"] = static_cast<double>(span.tid);
    api::Json args = api::Json::object();
    if (span.trace_id != 0) args["trace_id"] = trace_id_to_hex(span.trace_id);
    for (const auto& [key, value] : span.args) args[key] = value;
    e["args"] = std::move(args);
    events.push_back(std::move(e));
  }
  return events;
}

api::Json merge_trace_processes(const std::vector<TraceProcess>& processes) {
  api::Json merged = api::Json::array();
  for (const TraceProcess& process : processes) {
    const api::Json* events = &process.events;
    if (events->is_object()) events = &events->at("traceEvents");
    DEFA_CHECK(events->is_array(), "trace merge input for '" + process.name +
                                       "' is not a traceEvents array");
    bool named = false;
    for (const api::Json& e : events->items()) {
      api::Json copy = e;
      copy["pid"] = process.pid;  // shard-qualified lane
      if (e.contains("ph") && e.at("ph").as_string() == "M" &&
          e.at("name").as_string() == "process_name") {
        if (named) continue;  // one naming event per lane
        named = true;
        copy = process_name_event(process.pid, process.name);
      }
      merged.push_back(std::move(copy));
    }
    if (!named) {
      merged.push_back(process_name_event(process.pid, process.name));
    }
  }
  return trace_document(std::move(merged));
}

api::Json trace_document(api::Json trace_events) {
  DEFA_CHECK(trace_events.is_array(), "traceEvents must be an array");
  api::Json doc = api::Json::object();
  doc["displayTimeUnit"] = "ms";
  doc["traceEvents"] = std::move(trace_events);
  return doc;
}

void write_trace_file(const std::string& path, const api::Json& doc) {
  api::write_json_file(path, doc);
}

}  // namespace defa::obs
