#include "obs/trace.h"

#include <algorithm>
#include <random>

#include "common/check.h"

namespace defa::obs {

namespace {

/// Thread-local request context (see TraceScope).
thread_local std::uint64_t t_trace_id = 0;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

struct Tracer::ThreadLog {
  std::mutex mu;
  std::vector<Span> ring;     // capacity slots, written modulo
  std::uint64_t head = 0;     // monotonic write counter
  std::size_t capacity = 0;
  std::uint32_t tid = 0;
};

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_ring_capacity(std::size_t spans) {
  DEFA_CHECK(spans > 0, "trace ring capacity must be > 0");
  capacity_.store(spans, std::memory_order_relaxed);
}

Tracer::ThreadLog& Tracer::log_for_this_thread() {
  // One registry hit per thread lifetime; afterwards the shared_ptr in
  // TLS is the fast path.  The registry keeps a second reference so the
  // spans of an exited thread survive until collect().
  thread_local std::shared_ptr<ThreadLog> log = [this] {
    auto fresh = std::make_shared<ThreadLog>();
    fresh->capacity = capacity_.load(std::memory_order_relaxed);
    fresh->ring.reserve(std::min<std::size_t>(fresh->capacity, 256));
    const std::lock_guard<std::mutex> lock(registry_mu_);
    fresh->tid = next_tid_++;
    logs_.push_back(fresh);
    return fresh;
  }();
  return *log;
}

void Tracer::record(Span span) {
  ThreadLog& log = log_for_this_thread();
  const std::lock_guard<std::mutex> lock(log.mu);
  span.tid = log.tid;
  const std::size_t slot = static_cast<std::size_t>(log.head % log.capacity);
  if (log.ring.size() < log.capacity) {
    log.ring.push_back(std::move(span));
  } else {
    log.ring[slot] = std::move(span);  // overwrites the oldest span
  }
  ++log.head;
}

std::vector<Span> Tracer::collect(bool clear) {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    const std::lock_guard<std::mutex> lock(registry_mu_);
    logs = logs_;
  }
  std::vector<Span> out;
  for (const std::shared_ptr<ThreadLog>& log : logs) {
    const std::lock_guard<std::mutex> lock(log->mu);
    // Oldest-first: when the ring has wrapped, the span at head%capacity
    // is the oldest surviving one.
    const std::size_t n = log->ring.size();
    const std::size_t start =
        n < log->capacity ? 0 : static_cast<std::size_t>(log->head % log->capacity);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(log->ring[(start + i) % n]);
    }
    if (clear) {
      log->ring.clear();
      log->head = 0;
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.ts_us < b.ts_us;
  });
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    const std::lock_guard<std::mutex> lock(registry_mu_);
    logs = logs_;
  }
  std::uint64_t total = 0;
  for (const std::shared_ptr<ThreadLog>& log : logs) {
    const std::lock_guard<std::mutex> lock(log->mu);
    if (log->head > log->ring.size()) total += log->head - log->ring.size();
  }
  return total;
}

void Tracer::clear() { (void)collect(/*clear=*/true); }

std::uint64_t new_trace_id() {
  // Counter mixed with per-process entropy: ids are unique within a
  // process and collide across processes with ~2^-64 probability.
  static const std::uint64_t seed = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }();
  static std::atomic<std::uint64_t> counter{1};
  std::uint64_t id = 0;
  while (id == 0) {
    id = splitmix64(seed ^ counter.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

std::string trace_id_to_hex(std::uint64_t id) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[id & 0xf];
    id >>= 4;
  }
  return out;
}

std::uint64_t trace_id_from_hex(const std::string& hex) {
  DEFA_CHECK(hex.size() == 16,
             "trace_id must be 16 hex digits, got '" + hex + "'");
  std::uint64_t id = 0;
  for (const char c : hex) {
    int digit = -1;
    if (c >= '0' && c <= '9') digit = c - '0';
    if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    DEFA_CHECK(digit >= 0, "trace_id must be lowercase hex, got '" + hex + "'");
    id = (id << 4) | static_cast<std::uint64_t>(digit);
  }
  return id;
}

std::uint64_t current_trace_id() { return t_trace_id; }

TraceScope::TraceScope(std::uint64_t trace_id) {
  if (trace_id == 0 || !Tracer::instance().enabled()) return;
  saved_ = t_trace_id;
  t_trace_id = trace_id;
  set_ = true;
}

TraceScope::~TraceScope() {
  if (set_) t_trace_id = saved_;
}

ScopedSpan::ScopedSpan(const char* name, const char* cat) {
  if (t_trace_id == 0) return;
  active_ = true;
  span_.name = name;
  span_.cat = cat;
  span_.trace_id = t_trace_id;
  span_.ts_us = now_us();
}

ScopedSpan::ScopedSpan(const char* name, const char* cat, const char* arg_key,
                       const char* arg_value)
    : ScopedSpan(name, cat) {
  if (active_) span_.args.emplace_back(arg_key, arg_value);
}

ScopedSpan::ScopedSpan(const char* name, const char* cat, const char* arg_key,
                       const std::string& arg_value)
    : ScopedSpan(name, cat) {
  if (active_) span_.args.emplace_back(arg_key, arg_value);
}

ScopedSpan::ScopedSpan(const char* name, const char* cat, const char* arg_key,
                       int arg_value)
    : ScopedSpan(name, cat) {
  if (active_) span_.args.emplace_back(arg_key, std::to_string(arg_value));
}

void ScopedSpan::arg(const char* key, std::string value) {
  if (active_) span_.args.emplace_back(key, std::move(value));
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  span_.dur_us = now_us() - span_.ts_us;
  Tracer::instance().record(std::move(span_));
}

void record_span(const char* name, const char* cat, std::int64_t ts_us,
                 std::int64_t dur_us, std::uint64_t trace_id,
                 std::vector<std::pair<std::string, std::string>> args) {
  if (trace_id == 0 || !Tracer::instance().enabled()) return;
  Span span;
  span.name = name;
  span.cat = cat;
  span.ts_us = ts_us;
  span.dur_us = dur_us < 0 ? 0 : dur_us;
  span.trace_id = trace_id;
  span.args = std::move(args);
  Tracer::instance().record(std::move(span));
}

void record_instant(const char* name, const char* cat,
                    std::vector<std::pair<std::string, std::string>> args,
                    std::uint64_t trace_id) {
  if (!Tracer::instance().enabled()) return;
  Span span;
  span.name = name;
  span.cat = cat;
  span.ts_us = now_us();
  span.dur_us = -1;
  span.trace_id = trace_id != 0 ? trace_id : t_trace_id;
  span.args = std::move(args);
  Tracer::instance().record(std::move(span));
}

}  // namespace defa::obs
