#pragma once

/// \file simd_kernels.h
/// Internal interface between the `simd` backend and its per-ISA kernel
/// translation units.  Not part of the public kernels API.
///
/// Each ISA tier implements the same two entry points — the fp32 and the
/// INTn fused MSGS + aggregation loops over a `SamplingPlan` — against the
/// flat argument views below.  The AVX2 tier lives in its own TU
/// (simd_avx2.cpp) so it can be compiled with `-mavx2` without raising the
/// ISA floor of the rest of the binary; whether that TU contains real
/// kernels or stubs is reported by `*_compiled()` and decided by the
/// `DEFA_KERNELS_SIMD` CMake knob.  The scalar tier (simd_backend.cpp) is
/// the always-available portable fallback and the semantic model the
/// vector tiers must match bit-for-bit.
///
/// Bit-exactness rule for implementers: every lane must execute exactly
/// the scalar operation chain — `nn::bi_horner` for fp32,
/// `quant::bi_horner_int` / `quant::ag_weight_int` for INTn — on the same
/// operands in the same order.  Elementwise vector mul/add are IEEE-754
/// identical to their scalar forms, so vectorizing across *channels* is
/// safe; reassociating across *points* is not.

#include <cstdint>
#include <string>

#include "common/simd.h"
#include "config/model_config.h"
#include "prune/masks.h"

namespace defa::kernels {

class SamplingPlan;

namespace simd_detail {

/// Flat argument view of one fp32 fused MSGS + aggregation call.
struct Fp32Args {
  const ModelConfig* m = nullptr;
  const float* values = nullptr;        ///< (N_in x D) row-major
  const float* probs = nullptr;         ///< (N, H, L*P) row-major
  const SamplingPlan* plan = nullptr;   ///< matches `m`, built from the locs
  const prune::PointMask* mask = nullptr;  ///< nullable
  float* out = nullptr;                 ///< (N, D), zero-initialized
};

/// Flat argument view of one INTn fused MSGS + aggregation call.  The
/// caller quantizes values once (QTensor) and passes the code buffer.
struct QuantArgs {
  const ModelConfig* m = nullptr;
  const std::int16_t* codes = nullptr;  ///< INTn value codes, (N_in x D)
  const float* probs = nullptr;
  const SamplingPlan* plan = nullptr;
  const prune::PointMask* mask = nullptr;
  float* out = nullptr;
  float out_scale = 1.0f;               ///< value-code scale for the output
  int frac_bits = 12;                   ///< t0/t1 and probability width
};

// ---- scalar tier (simd_backend.cpp; always compiled) ----------------------
void run_fp32_scalar(const Fp32Args& a);
void run_quant_scalar(const QuantArgs& a);

// ---- AVX2 tier (simd_avx2.cpp; real iff avx2_compiled()) ------------------
[[nodiscard]] bool avx2_compiled() noexcept;
void run_fp32_avx2(const Fp32Args& a);
void run_quant_avx2(const QuantArgs& a);

// ---- NEON tier (simd_neon.cpp; real iff neon_compiled()) ------------------
[[nodiscard]] bool neon_compiled() noexcept;
void run_fp32_neon(const Fp32Args& a);
void run_quant_neon(const QuantArgs& a);

// ---- level-scoped entry points (the `quill` backend's inner loops) --------
//
// One call processes every query's points of a *single* level, visiting
// queries in the order of the `order` permutation (n_in entries).  The
// fp32 form resumes each (query, head) accumulator chain by loading the
// current partial from the output row and storing it back after the
// level's points — fp32 load/store round-trips bits, so running levels
// 0..L-1 sequentially reproduces the one-pass chain exactly.  The INTn
// form accumulates into a caller-owned (N_in x D) int32 scratch `acc`
// (int32 partials do NOT round-trip through float); the caller converts
// once, in fixed query order, after the last level.  Within one level the
// permutation touches disjoint queries, so parallelizing over `order`
// positions is race-free.

void run_fp32_level_scalar(const Fp32Args& a, int level, const std::int32_t* order);
void run_quant_level_scalar(const QuantArgs& a, int level, const std::int32_t* order,
                            std::int32_t* acc);
void run_fp32_level_avx2(const Fp32Args& a, int level, const std::int32_t* order);
void run_quant_level_avx2(const QuantArgs& a, int level, const std::int32_t* order,
                          std::int32_t* acc);
void run_fp32_level_neon(const Fp32Args& a, int level, const std::int32_t* order);
void run_quant_level_neon(const QuantArgs& a, int level, const std::int32_t* order,
                          std::int32_t* acc);

/// Outcome of the three-layer tier dispatch (DEFA_SIMD request x build x
/// CPU) shared by the `simd` and `quill` backends.
struct TierResolution {
  simd::Isa isa = simd::Isa::kScalar;
  std::string reason;  ///< nonempty => the vector backends are unavailable
};

[[nodiscard]] TierResolution resolve_tier();

/// Largest `act_bits + frac_bits` for which the vectorized INTn path's
/// int32 intermediates provably cannot overflow (|bi| <= 9*2^(act_bits-1),
/// times a Q0.frac probability plus the rounding half must stay under
/// 2^31).  Wider configurations fall back to the scalar tier, which does
/// its fraction multiplies in int64 like the reference backend.
inline constexpr int kMaxVectorQuantBits = 28;

}  // namespace simd_detail
}  // namespace defa::kernels
