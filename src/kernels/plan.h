#pragma once

/// \file plan.h
/// Sampling plans: the precomputed, layout-optimized form of one layer's
/// grid-sampling geometry.
///
/// The MSGS hot loop spends most of its non-arithmetic time rediscovering
/// the same facts per sampling point: flooring the fractional location,
/// deriving the 2x2 neighborhood, bounds-checking all four neighbors
/// against the level shape and flattening them to value-row indices.  None
/// of that depends on the values, the probabilities, or the PruneConfig —
/// only on (model, locations).  A `SamplingPlan` does this work once,
/// storing the result in level-major structure-of-arrays form so the fused
/// backend's aggregation loop is a branchless gather.  The dense per-layer
/// geometry is shared by every PruneConfig that does not move the sampling
/// locations (PAP/FWP-only runs, the dense reference trajectory), so
/// `EncoderPipeline` keeps one plan per layer in a `PlanCache` and reuses
/// it across runs — the same reuse pattern the dense reference trajectory
/// already follows.

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "config/model_config.h"
#include "tensor/tensor.h"

namespace defa::kernels {

/// Precomputed bilinear sampling geometry of one (model, locations) pair.
///
/// Storage is level-major SoA: all points that sample level 0 come first,
/// then level 1, and so on — the multi-scale-parallel layout of the paper,
/// which keeps each level's gathers inside one contiguous token range.
/// Slot `s` of point (l, q, h, p) holds:
///  * `offsets()[4*s + k]` — the fully resolved element offset of bilinear
///    neighbor k (N0..N3 of nn::BiPoint) into the flat (N_in x D) value
///    buffer, i.e. `token * d_model + head * d_head` — the aggregation
///    loop adds it to the value base pointer and reads `d_head`
///    contiguous channels; `kOutOfBounds` marks a neighbor in the
///    zero-padding region outside the level;
///  * `t0()[s]` / `t1()[s]` — the vertical/horizontal fractions, exactly
///    the floats `nn::bi_locate` produces (bit-identical downstream math).
class SamplingPlan {
 public:
  /// Offset marking an out-of-bounds (zero padded) neighbor.
  static constexpr std::int32_t kOutOfBounds = -1;

  /// Build the plan for `locs` (N, H, L, P, 2).  Deterministic; parallel
  /// over queries.
  [[nodiscard]] static SamplingPlan build(const ModelConfig& m, const Tensor& locs);

  /// Level-major slot of point (l, q, h, p).
  [[nodiscard]] std::int64_t slot(int l, std::int64_t q, int h, int p) const noexcept {
    return ((static_cast<std::int64_t>(l) * n_in_ + q) * n_heads_ + h) * n_points_ + p;
  }
  [[nodiscard]] std::int64_t n_slots() const noexcept {
    return static_cast<std::int64_t>(t0_.size());
  }

  [[nodiscard]] const std::vector<std::int32_t>& offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] const std::vector<float>& t0() const noexcept { return t0_; }
  [[nodiscard]] const std::vector<float>& t1() const noexcept { return t1_; }

  /// Does this plan describe the given model's geometry shape?  (Cheap
  /// consistency check; plans are matched to locations by construction.)
  [[nodiscard]] bool matches(const ModelConfig& m) const noexcept {
    return n_in_ == m.n_in() && n_heads_ == m.n_heads && n_levels_ == m.n_levels &&
           n_points_ == m.n_points && d_model_ == m.d_model;
  }

 private:
  std::int64_t n_in_ = 0;
  int n_heads_ = 0, n_levels_ = 0, n_points_ = 0, d_model_ = 0;
  std::vector<std::int32_t> offsets_;  ///< 4 per slot, kOutOfBounds for padding
  std::vector<float> t0_, t1_;
};

/// Per-level query-visit schedule derived from a `SamplingPlan`: the
/// gather-locality reorder of the `quill` backend (QUILL, PAPERS.md).
///
/// Within one level every query's sampling footprint lands in a small
/// neighborhood of value memory (the resolved offsets of its 2x2
/// neighborhoods).  Bucketing queries by the value-memory *tile* that
/// footprint first touches — tile key = first in-bounds resolved offset,
/// in slot-scan order, divided by `tile_elems` — and visiting queries
/// tile-by-tile turns the level's random-access miss storm into a sweep
/// whose working set fits in cache.  The permutation changes only the
/// order *queries* are visited; each query's own accumulation chain
/// (levels ascending, points ascending) is untouched, so results stay
/// bit-identical to `reference`.
class LocalityPlan {
 public:
  /// Tile key of a query whose footprint is entirely out of bounds (all
  /// four neighbors of every point zero-padded).  Sorts after every real
  /// tile so such queries are visited last.
  static constexpr std::int32_t kNoTile = std::numeric_limits<std::int32_t>::max();

  /// One contiguous run of same-tile queries in `order(l)`.
  struct TileRange {
    std::int32_t key = 0;     ///< value-memory tile index, or kNoTile
    std::int64_t begin = 0;   ///< position range [begin, end) into order(l)
    std::int64_t end = 0;
  };

  /// Derive the schedule from a built sampling plan.  `tile_elems` is the
  /// tile size in float elements (see locality_tile_elems()); callers may
  /// pass any positive value — 1 and huge values are the degenerate
  /// one-query-per-tile / everything-one-tile schedules the determinism
  /// tests exercise.  Deterministic: the per-level permutation is the
  /// stable sort of query ids by (tile key, query id).
  [[nodiscard]] static LocalityPlan build(const ModelConfig& m, const SamplingPlan& plan,
                                          std::int64_t tile_elems);

  /// Level `l`'s query-visit permutation, n_in() entries.
  [[nodiscard]] const std::int32_t* order(int l) const noexcept {
    return order_.data() + static_cast<std::size_t>(l) * static_cast<std::size_t>(n_in_);
  }
  /// Level `l`'s tile runs, ascending by key (kNoTile last).
  [[nodiscard]] const std::vector<TileRange>& tiles(int l) const noexcept {
    return tiles_[static_cast<std::size_t>(l)];
  }

  [[nodiscard]] std::int64_t n_in() const noexcept { return n_in_; }
  [[nodiscard]] int n_levels() const noexcept { return n_levels_; }
  [[nodiscard]] std::int64_t tile_elems() const noexcept { return tile_elems_; }

  [[nodiscard]] bool matches(const ModelConfig& m) const noexcept {
    return n_in_ == m.n_in() && n_levels_ == m.n_levels;
  }

 private:
  std::int64_t n_in_ = 0;
  int n_levels_ = 0;
  std::int64_t tile_elems_ = 0;
  std::vector<std::int32_t> order_;        ///< n_levels x n_in, level-major
  std::vector<std::vector<TileRange>> tiles_;
};

/// Value-memory tile size in float elements for locality planning, from
/// the `DEFA_L2_KB` environment knob (default 256 KB — a conservative
/// per-core L2 slice).  Re-read per call, like DEFA_BACKEND, so tests and
/// benchmarks can sweep tile sizes without rebuilding process state.
[[nodiscard]] std::int64_t locality_tile_elems();

/// Thread-safe keyed cache of shared SamplingPlans and LocalityPlans with
/// hit/miss counters, mirroring core::ContextPool's role one level down:
/// one plan per (workload, layer), built once, reused by every PruneConfig
/// whose locations are the dense cached geometry.
class PlanCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;    ///< get()/get_locality() found the key resident
    std::uint64_t misses = 0;  ///< get()/get_locality() built a fresh plan
  };

  /// Process-wide totals across every PlanCache instance (plan caches live
  /// per-pipeline inside pooled contexts, so instance counters alone can't
  /// feed the engine's monotonic metrics).  `entries` is a live gauge of
  /// resident plans; hits/misses are monotonic counters.
  struct GlobalStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t entries = 0;
  };

  PlanCache() = default;
  ~PlanCache();
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Return the plan cached under `key`, building it from (m, locs) on
  /// first use.  Construction runs under the cache lock (plans are built
  /// once per layer; contention is not a concern).
  [[nodiscard]] std::shared_ptr<const SamplingPlan> get(const std::string& key,
                                                        const ModelConfig& m,
                                                        const Tensor& locs);

  /// Return the locality plan cached under `key`, deriving it from the
  /// sampling plan on first use.  Callers must bake `tile_elems` into the
  /// key — the knob can change between calls.
  [[nodiscard]] std::shared_ptr<const LocalityPlan> get_locality(
      const std::string& key, const ModelConfig& m, const SamplingPlan& plan,
      std::int64_t tile_elems);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] Stats stats() const;
  void clear();

  [[nodiscard]] static GlobalStats global_stats() noexcept;
  /// Reset the process-wide hit/miss counters (the `entries` gauge tracks
  /// live plans and is not reset).  Engine::reset_stats() calls this.
  static void reset_global_counters() noexcept;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const SamplingPlan>> plans_;
  std::map<std::string, std::shared_ptr<const LocalityPlan>> locality_;
  Stats stats_;
};

}  // namespace defa::kernels
