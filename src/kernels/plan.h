#pragma once

/// \file plan.h
/// Sampling plans: the precomputed, layout-optimized form of one layer's
/// grid-sampling geometry.
///
/// The MSGS hot loop spends most of its non-arithmetic time rediscovering
/// the same facts per sampling point: flooring the fractional location,
/// deriving the 2x2 neighborhood, bounds-checking all four neighbors
/// against the level shape and flattening them to value-row indices.  None
/// of that depends on the values, the probabilities, or the PruneConfig —
/// only on (model, locations).  A `SamplingPlan` does this work once,
/// storing the result in level-major structure-of-arrays form so the fused
/// backend's aggregation loop is a branchless gather.  The dense per-layer
/// geometry is shared by every PruneConfig that does not move the sampling
/// locations (PAP/FWP-only runs, the dense reference trajectory), so
/// `EncoderPipeline` keeps one plan per layer in a `PlanCache` and reuses
/// it across runs — the same reuse pattern the dense reference trajectory
/// already follows.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "config/model_config.h"
#include "tensor/tensor.h"

namespace defa::kernels {

/// Precomputed bilinear sampling geometry of one (model, locations) pair.
///
/// Storage is level-major SoA: all points that sample level 0 come first,
/// then level 1, and so on — the multi-scale-parallel layout of the paper,
/// which keeps each level's gathers inside one contiguous token range.
/// Slot `s` of point (l, q, h, p) holds:
///  * `offsets()[4*s + k]` — the fully resolved element offset of bilinear
///    neighbor k (N0..N3 of nn::BiPoint) into the flat (N_in x D) value
///    buffer, i.e. `token * d_model + head * d_head` — the aggregation
///    loop adds it to the value base pointer and reads `d_head`
///    contiguous channels; `kOutOfBounds` marks a neighbor in the
///    zero-padding region outside the level;
///  * `t0()[s]` / `t1()[s]` — the vertical/horizontal fractions, exactly
///    the floats `nn::bi_locate` produces (bit-identical downstream math).
class SamplingPlan {
 public:
  /// Offset marking an out-of-bounds (zero padded) neighbor.
  static constexpr std::int32_t kOutOfBounds = -1;

  /// Build the plan for `locs` (N, H, L, P, 2).  Deterministic; parallel
  /// over queries.
  [[nodiscard]] static SamplingPlan build(const ModelConfig& m, const Tensor& locs);

  /// Level-major slot of point (l, q, h, p).
  [[nodiscard]] std::int64_t slot(int l, std::int64_t q, int h, int p) const noexcept {
    return ((static_cast<std::int64_t>(l) * n_in_ + q) * n_heads_ + h) * n_points_ + p;
  }
  [[nodiscard]] std::int64_t n_slots() const noexcept {
    return static_cast<std::int64_t>(t0_.size());
  }

  [[nodiscard]] const std::vector<std::int32_t>& offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] const std::vector<float>& t0() const noexcept { return t0_; }
  [[nodiscard]] const std::vector<float>& t1() const noexcept { return t1_; }

  /// Does this plan describe the given model's geometry shape?  (Cheap
  /// consistency check; plans are matched to locations by construction.)
  [[nodiscard]] bool matches(const ModelConfig& m) const noexcept {
    return n_in_ == m.n_in() && n_heads_ == m.n_heads && n_levels_ == m.n_levels &&
           n_points_ == m.n_points && d_model_ == m.d_model;
  }

 private:
  std::int64_t n_in_ = 0;
  int n_heads_ = 0, n_levels_ = 0, n_points_ = 0, d_model_ = 0;
  std::vector<std::int32_t> offsets_;  ///< 4 per slot, kOutOfBounds for padding
  std::vector<float> t0_, t1_;
};

/// Thread-safe keyed cache of shared SamplingPlans with hit/miss counters,
/// mirroring core::ContextPool's role one level down: one plan per
/// (workload, layer), built once, reused by every PruneConfig whose
/// locations are the dense cached geometry.
class PlanCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;    ///< get() found the key resident
    std::uint64_t misses = 0;  ///< get() built a fresh plan
  };

  /// Return the plan cached under `key`, building it from (m, locs) on
  /// first use.  Construction runs under the cache lock (plans are built
  /// once per layer; contention is not a concern).
  [[nodiscard]] std::shared_ptr<const SamplingPlan> get(const std::string& key,
                                                        const ModelConfig& m,
                                                        const Tensor& locs);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const SamplingPlan>> plans_;
  Stats stats_;
};

}  // namespace defa::kernels
