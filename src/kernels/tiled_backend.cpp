// The `tiled` backend: intra-request parallelism for the fused MSGS +
// aggregation kernel.
//
// `fused` and `simd` parallelize across *queries*, which works until one
// large request arrives alone — parallel_for's min_parallel threshold and
// batch-level concurrency leave the machine idle.  This backend splits a
// single run_msgs call into (level x query-tile) work items executed on
// the shared defa::ThreadPool, the multi-scale-parallel decomposition of
// the paper: each item gathers from exactly one level's contiguous token
// range, so items have disjoint working sets and level-local cache
// behavior.
//
// Determinism is the hard part: fp32 addition is not associative, so
// "whichever thread finishes first accumulates" would make output bits a
// function of scheduling.  The fix is a two-phase scheme with a fixed
// reduction order:
//  * Phase A (parallel): item (l, tile) computes the per-point terms
//    w * bi_horner(...) — the exact operand chain of the reference
//    backend — into its own scratch slots.  No item writes another's.
//  * Reduce (parallel across tiles, sequential within a query): the item
//    that *last* finishes a tile (per-tile atomic countdown over levels)
//    sums that tile's terms in the reference's (l, p) order and writes the
//    output rows.  PAP-masked points are skipped in the sum exactly like
//    the reference `continue` — never added as 0.0f, which would turn a
//    -0.0f accumulator into +0.0f and break bit-identity.
// The reduction order is a pure function of the inputs, so the output is
// bit-identical to `reference` for every thread count and every
// scheduling interleave (tests/test_backend_differential.cpp proves this
// at threads=1 vs N and under a concurrently loaded pool).  The INTn path
// is int32-associative, so phase A stores per-level partial sums instead
// of per-point terms (P times less scratch) and the reduce just adds
// them.
//
// Scratch is bounded by processing queries in super-blocks: a few tiles
// per executor are in flight at once, the block's scratch is reused, and
// memory stays O(block) rather than O(n_in).
//
// DEFA_TILED_THREADS (testing knob) caps the executor count per call:
// unset or <= 0 means all of the pool, 1 means the calling thread alone.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "kernels/backend.h"
#include "kernels/plan.h"
#include "nn/bilinear.h"
#include "nn/linear.h"
#include "nn/softmax.h"
#include "quant/fixed_point.h"
#include "quant/qmsgs.h"

namespace defa::kernels {

namespace {

/// Queries per tile.  Small enough that a (tile x level) item is a useful
/// scheduling quantum, large enough to amortize the countdown atomics.
constexpr std::int64_t kTileQueries = 16;

int tiled_max_concurrency() {
  if (const char* env = std::getenv("DEFA_TILED_THREADS");
      env != nullptr && *env != '\0') {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  return 0;  // run_indexed: pool size + caller
}

/// Tiles per super-block: enough in-flight work to keep every executor
/// busy while the scratch footprint stays a small multiple of one tile.
std::int64_t superblock_tiles() {
  const std::int64_t executors = ThreadPool::global().size() + 1;
  return std::max<std::int64_t>(4, executors * 2);
}

// ----------------------------------------------------------------- fp32

void run_fp32_tiled(const ModelConfig& m, const Tensor& values, const Tensor& probs,
                    const SamplingPlan& plan, const prune::PointMask* pmask,
                    Tensor& out) {
  const int dh = m.d_head();
  const int lp = m.points_per_head();
  const int H = m.n_heads;
  const int L = m.n_levels;
  const int P = m.n_points;
  const std::int32_t* offs = plan.offsets().data();
  const float* t0s = plan.t0().data();
  const float* t1s = plan.t1().data();
  const float* vdata = values.data().data();
  const float* pdata = probs.data().data();
  float* odata = out.data().data();
  const std::vector<float> zero_row(static_cast<std::size_t>(dh), 0.0f);
  const float* zero = zero_row.data();

  const std::int64_t sb_tiles = superblock_tiles();
  const std::int64_t sb_q = sb_tiles * kTileQueries;
  // Per-point terms of one super-block, indexed
  // (((q_local*H + h)*L + l)*P + p)*dh + c.
  std::vector<float> terms(static_cast<std::size_t>(sb_q) * H * L * P * dh);
  std::vector<std::atomic<int>> pending(static_cast<std::size_t>(sb_tiles));
  const int max_conc = tiled_max_concurrency();
  const std::int64_t point_stride = static_cast<std::int64_t>(P) * dh;
  const std::int64_t level_stride = static_cast<std::int64_t>(L) * point_stride;

  for (std::int64_t q0 = 0; q0 < m.n_in(); q0 += sb_q) {
    const std::int64_t q1 = std::min<std::int64_t>(q0 + sb_q, m.n_in());
    const std::int64_t n_tiles = (q1 - q0 + kTileQueries - 1) / kTileQueries;
    for (std::int64_t t = 0; t < n_tiles; ++t) {
      pending[static_cast<std::size_t>(t)].store(L, std::memory_order_relaxed);
    }

    // Level-major item order: all tiles of level 0, then level 1, ... so
    // concurrent items cluster on one level's contiguous token range.
    ThreadPool::global().run_indexed(L * n_tiles, max_conc, [&](std::int64_t i) {
      const int l = static_cast<int>(i / n_tiles);
      const std::int64_t t = i % n_tiles;
      const std::int64_t tq0 = q0 + t * kTileQueries;
      const std::int64_t tq1 = std::min<std::int64_t>(tq0 + kTileQueries, q1);

      for (std::int64_t q = tq0; q < tq1; ++q) {
        const std::int64_t ql = q - q0;
        for (int h = 0; h < H; ++h) {
          const float* prow = pdata + static_cast<std::size_t>((q * H + h) * lp);
          const std::int64_t base = plan.slot(l, q, h, 0);
          float* tbase =
              terms.data() + (ql * H + h) * level_stride + l * point_stride;
          for (int p = 0; p < P; ++p) {
            if (pmask != nullptr && !pmask->keep(q, h, l, p)) continue;
            const std::int64_t s = (base + p) * 4;
            const float* r0 = offs[s + 0] >= 0 ? vdata + offs[s + 0] : zero;
            const float* r1 = offs[s + 1] >= 0 ? vdata + offs[s + 1] : zero;
            const float* r2 = offs[s + 2] >= 0 ? vdata + offs[s + 2] : zero;
            const float* r3 = offs[s + 3] >= 0 ? vdata + offs[s + 3] : zero;
            const float t0 = t0s[base + p];
            const float t1 = t1s[base + p];
            const float w = prow[l * P + p];
            float* term = tbase + static_cast<std::int64_t>(p) * dh;
            for (int c = 0; c < dh; ++c) {
              term[c] = w * nn::bi_horner(r0[c], r1[c], r2[c], r3[c], t0, t1);
            }
          }
        }
      }

      // Last level to finish this tile reduces it, inside the same
      // run_indexed call — the barrier-free "fine-grained event" of the
      // multi-core tiling scheme.  acq pairs with the other items' rel so
      // their term writes are visible.
      if (pending[static_cast<std::size_t>(t)].fetch_sub(
              1, std::memory_order_acq_rel) != 1) {
        return;
      }
      std::vector<float> acc(static_cast<std::size_t>(dh));
      for (std::int64_t q = tq0; q < tq1; ++q) {
        const std::int64_t ql = q - q0;
        for (int h = 0; h < H; ++h) {
          std::fill(acc.begin(), acc.end(), 0.0f);
          const float* tbase = terms.data() + (ql * H + h) * level_stride;
          for (int rl = 0; rl < L; ++rl) {
            for (int p = 0; p < P; ++p) {
              if (pmask != nullptr && !pmask->keep(q, h, rl, p)) continue;
              const float* term = tbase + rl * point_stride +
                                  static_cast<std::int64_t>(p) * dh;
              for (int c = 0; c < dh; ++c) acc[static_cast<std::size_t>(c)] += term[c];
            }
          }
          float* head_out = odata + static_cast<std::size_t>(q * m.d_model + h * dh);
          for (int c = 0; c < dh; ++c) head_out[c] = acc[static_cast<std::size_t>(c)];
        }
      }
    });
  }
}

// ----------------------------------------------------------------- INTn

void run_quant_tiled(const ModelConfig& m, const Tensor& values, const Tensor& probs,
                     const SamplingPlan& plan, const MsgsSpec& spec, Tensor& out) {
  const int dh = m.d_head();
  const int lp = m.points_per_head();
  const int H = m.n_heads;
  const int L = m.n_levels;
  const int P = m.n_points;
  const std::int32_t* offs = plan.offsets().data();
  const float* t0s = plan.t0().data();
  const float* t1s = plan.t1().data();
  const quant::QTensor qvalues(values, spec.act_bits);
  const float out_scale = qvalues.spec().scale;
  const std::int16_t* codes = qvalues.codes().data();
  const float* pdata = probs.data().data();
  float* odata = out.data().data();
  const std::vector<std::int16_t> zero_row(static_cast<std::size_t>(dh), 0);
  const std::int16_t* zero = zero_row.data();

  const std::int64_t sb_tiles = superblock_tiles();
  const std::int64_t sb_q = sb_tiles * kTileQueries;
  // Integer accumulation is associative, so phase A stores per-*level*
  // partial sums, indexed ((q_local*H + h)*L + l)*dh + c.
  std::vector<std::int32_t> partials(static_cast<std::size_t>(sb_q) * H * L * dh);
  std::vector<std::atomic<int>> pending(static_cast<std::size_t>(sb_tiles));
  const int max_conc = tiled_max_concurrency();
  const std::int64_t level_stride = static_cast<std::int64_t>(L) * dh;

  for (std::int64_t q0 = 0; q0 < m.n_in(); q0 += sb_q) {
    const std::int64_t q1 = std::min<std::int64_t>(q0 + sb_q, m.n_in());
    const std::int64_t n_tiles = (q1 - q0 + kTileQueries - 1) / kTileQueries;
    for (std::int64_t t = 0; t < n_tiles; ++t) {
      pending[static_cast<std::size_t>(t)].store(L, std::memory_order_relaxed);
    }

    ThreadPool::global().run_indexed(L * n_tiles, max_conc, [&](std::int64_t i) {
      const int l = static_cast<int>(i / n_tiles);
      const std::int64_t t = i % n_tiles;
      const std::int64_t tq0 = q0 + t * kTileQueries;
      const std::int64_t tq1 = std::min<std::int64_t>(tq0 + kTileQueries, q1);

      for (std::int64_t q = tq0; q < tq1; ++q) {
        const std::int64_t ql = q - q0;
        for (int h = 0; h < H; ++h) {
          const float* prow = pdata + static_cast<std::size_t>((q * H + h) * lp);
          const std::int64_t base = plan.slot(l, q, h, 0);
          std::int32_t* part =
              partials.data() + (ql * H + h) * level_stride + static_cast<std::int64_t>(l) * dh;
          std::fill(part, part + dh, 0);
          for (int p = 0; p < P; ++p) {
            if (spec.point_mask != nullptr && !spec.point_mask->keep(q, h, l, p)) continue;
            const std::int32_t prob_q =
                quant::to_fraction_code(prow[l * P + p], spec.frac_bits);
            if (prob_q == 0) continue;
            const std::int64_t s = (base + p) * 4;
            const std::int16_t* r0 = offs[s + 0] >= 0 ? codes + offs[s + 0] : zero;
            const std::int16_t* r1 = offs[s + 1] >= 0 ? codes + offs[s + 1] : zero;
            const std::int16_t* r2 = offs[s + 2] >= 0 ? codes + offs[s + 2] : zero;
            const std::int16_t* r3 = offs[s + 3] >= 0 ? codes + offs[s + 3] : zero;
            const std::int32_t t0_q = quant::to_fraction_code(t0s[base + p], spec.frac_bits);
            const std::int32_t t1_q = quant::to_fraction_code(t1s[base + p], spec.frac_bits);
            for (int c = 0; c < dh; ++c) {
              const std::int32_t bi = quant::bi_horner_int(r0[c], r1[c], r2[c], r3[c],
                                                           t0_q, t1_q, spec.frac_bits);
              part[c] += quant::ag_weight_int(bi, prob_q, spec.frac_bits);
            }
          }
        }
      }

      if (pending[static_cast<std::size_t>(t)].fetch_sub(
              1, std::memory_order_acq_rel) != 1) {
        return;
      }
      for (std::int64_t q = tq0; q < tq1; ++q) {
        const std::int64_t ql = q - q0;
        for (int h = 0; h < H; ++h) {
          const std::int32_t* pbase = partials.data() + (ql * H + h) * level_stride;
          float* head_out = odata + static_cast<std::size_t>(q * m.d_model + h * dh);
          for (int c = 0; c < dh; ++c) {
            std::int32_t acc = 0;
            for (int rl = 0; rl < L; ++rl) {
              acc += pbase[static_cast<std::int64_t>(rl) * dh + c];
            }
            head_out[c] = static_cast<float>(acc) * out_scale;
          }
        }
      }
    });
  }
}

class TiledBackend final : public Backend {
 public:
  [[nodiscard]] const std::string& name() const noexcept override {
    static const std::string kName = "tiled";
    return kName;
  }

  [[nodiscard]] bool wants_plan() const noexcept override { return true; }

  [[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b) const override {
    return nn::matmul(a, b);
  }

  [[nodiscard]] Tensor linear(const Tensor& x, const Tensor& w,
                              const Tensor* bias) const override {
    return nn::linear(x, w, bias);
  }

  [[nodiscard]] Tensor softmax_lastdim(const Tensor& t) const override {
    return nn::softmax_lastdim(t);
  }

  [[nodiscard]] Tensor run_msgs(const ModelConfig& m, const Tensor& values,
                                const Tensor& probs, const Tensor& locs,
                                const MsgsSpec& spec) const override {
    SamplingPlan local;
    const SamplingPlan* plan = spec.plan;
    if (plan == nullptr) {
      local = SamplingPlan::build(m, locs);
      plan = &local;
    }
    DEFA_CHECK(plan->matches(m), "tiled backend: sampling plan does not match the model");
    Tensor out({m.n_in(), m.d_model});
    if (spec.quantized) {
      run_quant_tiled(m, values, probs, *plan, spec, out);
    } else {
      run_fp32_tiled(m, values, probs, *plan, spec.point_mask, out);
    }
    return out;
  }
};

}  // namespace

namespace detail {
std::unique_ptr<Backend> make_tiled_backend() { return std::make_unique<TiledBackend>(); }
}  // namespace detail

}  // namespace defa::kernels
