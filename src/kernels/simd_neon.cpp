// NEON tier of the `simd` backend.
//
// Compiled to real kernels only when the build targets ARM with the
// DEFA_KERNELS_SIMD knob on (Advanced SIMD is baseline on AArch64, so no
// per-file -m flag is needed — the guard is the knob plus the
// architecture); elsewhere this file is stubs and `neon_compiled()` is
// false.
//
// Bit-exactness follows the same rule as the AVX2 tier: 4-float lanes run
// the exact scalar chain of nn::bi_horner as discrete vmul/vadd/vsub —
// vfma is never used (and the build sets -ffp-contract=off so the
// compiler cannot introduce it behind these intrinsics' backs) — and the
// INTn chain mirrors quant::bi_horner_int / ag_weight_int with int32
// frac_muls, valid under the dispatcher's
// act_bits + frac_bits <= kMaxVectorQuantBits precondition.  The
// arithmetic right shift is vshlq_s32 by a negative count, which
// truncates like the scalar `>>`, not the rounding vrshlq form.

#include "kernels/simd_kernels.h"

#include "common/check.h"

#if defined(DEFA_SIMD_NEON) && (defined(__aarch64__) || defined(__ARM_NEON))
#define DEFA_NEON_REAL 1
#include <arm_neon.h>

#include <algorithm>
#include <vector>

#include "common/parallel.h"
#include "kernels/plan.h"
#include "nn/bilinear.h"
#include "quant/qmsgs.h"
#else
#define DEFA_NEON_REAL 0
#endif

namespace defa::kernels::simd_detail {

bool neon_compiled() noexcept { return DEFA_NEON_REAL != 0; }

#if DEFA_NEON_REAL

namespace {

/// frac_mul in int32 lanes: (code * frac + half) >> frac_bits, arithmetic
/// shift.  Valid only under the kMaxVectorQuantBits precondition.
inline int32x4_t frac_mul_v(int32x4_t code, int32x4_t frac, int32x4_t half,
                            int32x4_t neg_shift) noexcept {
  const int32x4_t prod = vmulq_s32(code, frac);
  return vshlq_s32(vaddq_s32(prod, half), neg_shift);
}

/// Load 4 int16 codes and widen to int32 lanes.
inline int32x4_t load_codes4(const std::int16_t* p) noexcept {
  return vmovl_s16(vld1_s16(p));
}

}  // namespace

void run_fp32_neon(const Fp32Args& a) {
  const ModelConfig& m = *a.m;
  const int dh = m.d_head();
  const int dh4 = dh & ~3;
  const int lp = m.points_per_head();
  const std::int32_t* offs = a.plan->offsets().data();
  const float* t0s = a.plan->t0().data();
  const float* t1s = a.plan->t1().data();
  const std::vector<float> zero_row(static_cast<std::size_t>(dh), 0.0f);
  const float* zero = zero_row.data();

  parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
    std::vector<float> acc(static_cast<std::size_t>(dh));
    for (std::int64_t q = begin; q < end; ++q) {
      for (int h = 0; h < m.n_heads; ++h) {
        const float* prow = a.probs + static_cast<std::size_t>((q * m.n_heads + h) * lp);
        std::fill(acc.begin(), acc.end(), 0.0f);
        for (int l = 0; l < m.n_levels; ++l) {
          const std::int64_t base = a.plan->slot(l, q, h, 0);
          for (int p = 0; p < m.n_points; ++p) {
            if (a.mask != nullptr && !a.mask->keep(q, h, l, p)) continue;
            const std::int64_t s = (base + p) * 4;
            const float* r0 = offs[s + 0] >= 0 ? a.values + offs[s + 0] : zero;
            const float* r1 = offs[s + 1] >= 0 ? a.values + offs[s + 1] : zero;
            const float* r2 = offs[s + 2] >= 0 ? a.values + offs[s + 2] : zero;
            const float* r3 = offs[s + 3] >= 0 ? a.values + offs[s + 3] : zero;
            const float t0 = t0s[base + p];
            const float t1 = t1s[base + p];
            const float w = prow[l * m.n_points + p];
            const float32x4_t t0v = vdupq_n_f32(t0);
            const float32x4_t t1v = vdupq_n_f32(t1);
            const float32x4_t wv = vdupq_n_f32(w);
            for (int c = 0; c < dh4; c += 4) {
              const float32x4_t n0 = vld1q_f32(r0 + c);
              const float32x4_t n1 = vld1q_f32(r1 + c);
              const float32x4_t n2 = vld1q_f32(r2 + c);
              const float32x4_t n3 = vld1q_f32(r3 + c);
              const float32x4_t vert = vmulq_f32(vsubq_f32(n2, n0), t0v);
              const float32x4_t cross = vmulq_f32(
                  vaddq_f32(vsubq_f32(vsubq_f32(n3, n2), n1), n0), t0v);
              const float32x4_t horiz =
                  vmulq_f32(vaddq_f32(vsubq_f32(n1, n0), cross), t1v);
              const float32x4_t bi = vaddq_f32(vaddq_f32(n0, vert), horiz);
              const float32x4_t av = vld1q_f32(acc.data() + c);
              vst1q_f32(acc.data() + c, vaddq_f32(av, vmulq_f32(wv, bi)));
            }
            for (int c = dh4; c < dh; ++c) {
              acc[static_cast<std::size_t>(c)] +=
                  w * nn::bi_horner(r0[c], r1[c], r2[c], r3[c], t0, t1);
            }
          }
        }
        float* head_out = a.out + static_cast<std::size_t>(q * m.d_model + h * dh);
        for (int c = 0; c < dh; ++c) head_out[c] = acc[static_cast<std::size_t>(c)];
      }
    }
  });
}

void run_quant_neon(const QuantArgs& a) {
  const ModelConfig& m = *a.m;
  const int dh = m.d_head();
  const int dh4 = dh & ~3;
  const int lp = m.points_per_head();
  const std::int32_t* offs = a.plan->offsets().data();
  const float* t0s = a.plan->t0().data();
  const float* t1s = a.plan->t1().data();
  const std::vector<std::int16_t> zero_row(static_cast<std::size_t>(dh), 0);
  const std::int16_t* zero = zero_row.data();
  const int32x4_t half = vdupq_n_s32(1 << (a.frac_bits - 1));
  const int32x4_t neg_shift = vdupq_n_s32(-a.frac_bits);

  parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
    std::vector<std::int32_t> acc(static_cast<std::size_t>(dh));
    for (std::int64_t q = begin; q < end; ++q) {
      for (int h = 0; h < m.n_heads; ++h) {
        const float* prow = a.probs + static_cast<std::size_t>((q * m.n_heads + h) * lp);
        std::fill(acc.begin(), acc.end(), 0);
        for (int l = 0; l < m.n_levels; ++l) {
          const std::int64_t base = a.plan->slot(l, q, h, 0);
          for (int p = 0; p < m.n_points; ++p) {
            if (a.mask != nullptr && !a.mask->keep(q, h, l, p)) continue;
            const std::int32_t prob_q =
                quant::to_fraction_code(prow[l * m.n_points + p], a.frac_bits);
            if (prob_q == 0) continue;
            const std::int64_t s = (base + p) * 4;
            const std::int16_t* r0 = offs[s + 0] >= 0 ? a.codes + offs[s + 0] : zero;
            const std::int16_t* r1 = offs[s + 1] >= 0 ? a.codes + offs[s + 1] : zero;
            const std::int16_t* r2 = offs[s + 2] >= 0 ? a.codes + offs[s + 2] : zero;
            const std::int16_t* r3 = offs[s + 3] >= 0 ? a.codes + offs[s + 3] : zero;
            const std::int32_t t0_q = quant::to_fraction_code(t0s[base + p], a.frac_bits);
            const std::int32_t t1_q = quant::to_fraction_code(t1s[base + p], a.frac_bits);
            const int32x4_t t0v = vdupq_n_s32(t0_q);
            const int32x4_t t1v = vdupq_n_s32(t1_q);
            const int32x4_t pv = vdupq_n_s32(prob_q);
            for (int c = 0; c < dh4; c += 4) {
              const int32x4_t n0 = load_codes4(r0 + c);
              const int32x4_t n1 = load_codes4(r1 + c);
              const int32x4_t n2 = load_codes4(r2 + c);
              const int32x4_t n3 = load_codes4(r3 + c);
              const int32x4_t vert = frac_mul_v(vsubq_s32(n2, n0), t0v, half, neg_shift);
              const int32x4_t cross = frac_mul_v(
                  vaddq_s32(vsubq_s32(vsubq_s32(n3, n2), n1), n0), t0v, half, neg_shift);
              const int32x4_t horiz = frac_mul_v(
                  vaddq_s32(vsubq_s32(n1, n0), cross), t1v, half, neg_shift);
              const int32x4_t bi = vaddq_s32(vaddq_s32(n0, vert), horiz);
              const int32x4_t ag = frac_mul_v(bi, pv, half, neg_shift);
              vst1q_s32(acc.data() + c, vaddq_s32(vld1q_s32(acc.data() + c), ag));
            }
            for (int c = dh4; c < dh; ++c) {
              const std::int32_t bi = quant::bi_horner_int(r0[c], r1[c], r2[c], r3[c],
                                                           t0_q, t1_q, a.frac_bits);
              acc[static_cast<std::size_t>(c)] +=
                  quant::ag_weight_int(bi, prob_q, a.frac_bits);
            }
          }
        }
        float* head_out = a.out + static_cast<std::size_t>(q * m.d_model + h * dh);
        for (int c = 0; c < dh; ++c) {
          head_out[c] = static_cast<float>(acc[static_cast<std::size_t>(c)]) * a.out_scale;
        }
      }
    }
  });
}

// Level-scoped forms for the quill backend: one level's points, queries
// visited in `order`.  Same lane chains as above; fp32 resumes the
// accumulator through the output row (fp32 memory round-trips bits), INTn
// accumulates into the caller's int32 scratch.

void run_fp32_level_neon(const Fp32Args& a, int level, const std::int32_t* order) {
  const ModelConfig& m = *a.m;
  const int dh = m.d_head();
  const int dh4 = dh & ~3;
  const int lp = m.points_per_head();
  const std::int32_t* offs = a.plan->offsets().data();
  const float* t0s = a.plan->t0().data();
  const float* t1s = a.plan->t1().data();
  const std::vector<float> zero_row(static_cast<std::size_t>(dh), 0.0f);
  const float* zero = zero_row.data();

  parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      const std::int64_t q = order[i];
      for (int h = 0; h < m.n_heads; ++h) {
        const float* prow = a.probs + static_cast<std::size_t>((q * m.n_heads + h) * lp);
        float* head_out = a.out + static_cast<std::size_t>(q * m.d_model + h * dh);
        const std::int64_t base = a.plan->slot(level, q, h, 0);
        for (int p = 0; p < m.n_points; ++p) {
          if (a.mask != nullptr && !a.mask->keep(q, h, level, p)) continue;
          const std::int64_t s = (base + p) * 4;
          const float* r0 = offs[s + 0] >= 0 ? a.values + offs[s + 0] : zero;
          const float* r1 = offs[s + 1] >= 0 ? a.values + offs[s + 1] : zero;
          const float* r2 = offs[s + 2] >= 0 ? a.values + offs[s + 2] : zero;
          const float* r3 = offs[s + 3] >= 0 ? a.values + offs[s + 3] : zero;
          const float t0 = t0s[base + p];
          const float t1 = t1s[base + p];
          const float w = prow[level * m.n_points + p];
          const float32x4_t t0v = vdupq_n_f32(t0);
          const float32x4_t t1v = vdupq_n_f32(t1);
          const float32x4_t wv = vdupq_n_f32(w);
          for (int c = 0; c < dh4; c += 4) {
            const float32x4_t n0 = vld1q_f32(r0 + c);
            const float32x4_t n1 = vld1q_f32(r1 + c);
            const float32x4_t n2 = vld1q_f32(r2 + c);
            const float32x4_t n3 = vld1q_f32(r3 + c);
            const float32x4_t vert = vmulq_f32(vsubq_f32(n2, n0), t0v);
            const float32x4_t cross = vmulq_f32(
                vaddq_f32(vsubq_f32(vsubq_f32(n3, n2), n1), n0), t0v);
            const float32x4_t horiz =
                vmulq_f32(vaddq_f32(vsubq_f32(n1, n0), cross), t1v);
            const float32x4_t bi = vaddq_f32(vaddq_f32(n0, vert), horiz);
            const float32x4_t av = vld1q_f32(head_out + c);
            vst1q_f32(head_out + c, vaddq_f32(av, vmulq_f32(wv, bi)));
          }
          for (int c = dh4; c < dh; ++c) {
            head_out[c] += w * nn::bi_horner(r0[c], r1[c], r2[c], r3[c], t0, t1);
          }
        }
      }
    }
  });
}

void run_quant_level_neon(const QuantArgs& a, int level, const std::int32_t* order,
                          std::int32_t* acc) {
  const ModelConfig& m = *a.m;
  const int dh = m.d_head();
  const int dh4 = dh & ~3;
  const int lp = m.points_per_head();
  const std::int32_t* offs = a.plan->offsets().data();
  const float* t0s = a.plan->t0().data();
  const float* t1s = a.plan->t1().data();
  const std::vector<std::int16_t> zero_row(static_cast<std::size_t>(dh), 0);
  const std::int16_t* zero = zero_row.data();
  const int32x4_t half = vdupq_n_s32(1 << (a.frac_bits - 1));
  const int32x4_t neg_shift = vdupq_n_s32(-a.frac_bits);

  parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      const std::int64_t q = order[i];
      for (int h = 0; h < m.n_heads; ++h) {
        const float* prow = a.probs + static_cast<std::size_t>((q * m.n_heads + h) * lp);
        std::int32_t* arow = acc + static_cast<std::size_t>(q * m.d_model + h * dh);
        const std::int64_t base = a.plan->slot(level, q, h, 0);
        for (int p = 0; p < m.n_points; ++p) {
          if (a.mask != nullptr && !a.mask->keep(q, h, level, p)) continue;
          const std::int32_t prob_q =
              quant::to_fraction_code(prow[level * m.n_points + p], a.frac_bits);
          if (prob_q == 0) continue;
          const std::int64_t s = (base + p) * 4;
          const std::int16_t* r0 = offs[s + 0] >= 0 ? a.codes + offs[s + 0] : zero;
          const std::int16_t* r1 = offs[s + 1] >= 0 ? a.codes + offs[s + 1] : zero;
          const std::int16_t* r2 = offs[s + 2] >= 0 ? a.codes + offs[s + 2] : zero;
          const std::int16_t* r3 = offs[s + 3] >= 0 ? a.codes + offs[s + 3] : zero;
          const std::int32_t t0_q = quant::to_fraction_code(t0s[base + p], a.frac_bits);
          const std::int32_t t1_q = quant::to_fraction_code(t1s[base + p], a.frac_bits);
          const int32x4_t t0v = vdupq_n_s32(t0_q);
          const int32x4_t t1v = vdupq_n_s32(t1_q);
          const int32x4_t pv = vdupq_n_s32(prob_q);
          for (int c = 0; c < dh4; c += 4) {
            const int32x4_t n0 = load_codes4(r0 + c);
            const int32x4_t n1 = load_codes4(r1 + c);
            const int32x4_t n2 = load_codes4(r2 + c);
            const int32x4_t n3 = load_codes4(r3 + c);
            const int32x4_t vert = frac_mul_v(vsubq_s32(n2, n0), t0v, half, neg_shift);
            const int32x4_t cross = frac_mul_v(
                vaddq_s32(vsubq_s32(vsubq_s32(n3, n2), n1), n0), t0v, half, neg_shift);
            const int32x4_t horiz = frac_mul_v(
                vaddq_s32(vsubq_s32(n1, n0), cross), t1v, half, neg_shift);
            const int32x4_t bi = vaddq_s32(vaddq_s32(n0, vert), horiz);
            const int32x4_t ag = frac_mul_v(bi, pv, half, neg_shift);
            vst1q_s32(arow + c, vaddq_s32(vld1q_s32(arow + c), ag));
          }
          for (int c = dh4; c < dh; ++c) {
            const std::int32_t bi = quant::bi_horner_int(r0[c], r1[c], r2[c], r3[c],
                                                         t0_q, t1_q, a.frac_bits);
            arow[c] += quant::ag_weight_int(bi, prob_q, a.frac_bits);
          }
        }
      }
    }
  });
}

#else  // !DEFA_NEON_REAL

void run_fp32_neon(const Fp32Args&) {
  DEFA_CHECK(false, "simd backend: NEON kernels are not compiled into this binary");
}

void run_quant_neon(const QuantArgs&) {
  DEFA_CHECK(false, "simd backend: NEON kernels are not compiled into this binary");
}

void run_fp32_level_neon(const Fp32Args&, int, const std::int32_t*) {
  DEFA_CHECK(false, "quill backend: NEON kernels are not compiled into this binary");
}

void run_quant_level_neon(const QuantArgs&, int, const std::int32_t*, std::int32_t*) {
  DEFA_CHECK(false, "quill backend: NEON kernels are not compiled into this binary");
}

#endif  // DEFA_NEON_REAL

}  // namespace defa::kernels::simd_detail
