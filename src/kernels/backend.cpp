#include "kernels/backend.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace defa::kernels {

namespace {

struct RegistryState {
  std::mutex mu;
  std::vector<std::unique_ptr<Backend>> backends;  // guarded by mu
};

RegistryState& state() {
  static RegistryState* s = [] {
    auto* st = new RegistryState;
    st->backends.push_back(detail::make_reference_backend());
    st->backends.push_back(detail::make_fused_backend());
    st->backends.push_back(detail::make_simd_backend());
    st->backends.push_back(detail::make_tiled_backend());
    st->backends.push_back(detail::make_quill_backend());
    return st;
  }();
  return *s;
}

const Backend* find_locked(const RegistryState& s, const std::string& name) {
  for (const auto& b : s.backends) {
    if (b->name() == name) return b.get();
  }
  return nullptr;
}

std::string known_names_locked(const RegistryState& s) {
  std::string names;
  for (const auto& b : s.backends) {
    if (!names.empty()) names += ", ";
    names += b->name();
  }
  return names;
}

}  // namespace

void register_backend(std::unique_ptr<Backend> backend) {
  DEFA_CHECK(backend != nullptr, "register_backend: null backend");
  RegistryState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  DEFA_CHECK(find_locked(s, backend->name()) == nullptr,
             "register_backend: duplicate backend name '" + backend->name() + "'");
  s.backends.push_back(std::move(backend));
}

const Backend* find_backend(const std::string& name) noexcept {
  RegistryState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  return find_locked(s, name);
}

const Backend& backend(const std::string& name) {
  RegistryState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  const Backend* b = find_locked(s, name);
  DEFA_CHECK(b != nullptr, "kernels: unknown backend '" + name + "' (known: " +
                               known_names_locked(s) + ")");
  return *b;
}

std::vector<std::string> backend_names() {
  RegistryState& s = state();
  std::vector<std::string> names;
  {
    const std::lock_guard<std::mutex> lock(s.mu);
    names.reserve(s.backends.size());
    for (const auto& b : s.backends) names.push_back(b->name());
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string known_backends() {
  std::string names;
  for (const std::string& n : backend_names()) {
    if (!names.empty()) names += ", ";
    names += n;
  }
  return names;
}

std::string default_backend_name() {
  // Re-read the environment on every call so tests can flip DEFA_BACKEND;
  // production callers resolve once per request anyway.
  if (const char* env = std::getenv("DEFA_BACKEND");
      env != nullptr && *env != '\0' && find_backend(env) != nullptr) {
    return env;
  }
  return "reference";
}

const Backend& default_backend() { return backend(default_backend_name()); }

const Backend& backend_or_default(const Backend* b) {
  return b != nullptr ? *b : default_backend();
}

}  // namespace defa::kernels
