// The `reference` backend: the historical scalar code paths, verbatim.
//
// linear/GEMM and softmax delegate to the nn/ kernels; the fused MSGS +
// aggregation kernel is the query-at-a-time loop that used to live in
// core/msgs.cpp (fp32 path identical to nn::msgs_aggregate_ref plus point
// masking; INTn path per Sec. 4.3).  This backend is the bit-exactness
// anchor every optimized backend is tested against — keep it boring.

#include <array>
#include <vector>

#include "common/parallel.h"
#include "kernels/backend.h"
#include "nn/bilinear.h"
#include "nn/linear.h"
#include "nn/softmax.h"
#include "quant/fixed_point.h"
#include "quant/qmsgs.h"

namespace defa::kernels {

namespace {

/// fp32 path: identical math to nn::msgs_aggregate_ref, plus point masking.
void run_fp32(const ModelConfig& m, const Tensor& values, const Tensor& probs,
              const Tensor& locs, const prune::PointMask* pmask, Tensor& out) {
  const int dh = m.d_head();
  parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t q = begin; q < end; ++q) {
      std::span<float> orow = out.row(q);
      for (int h = 0; h < m.n_heads; ++h) {
        std::span<float> head_out = orow.subspan(static_cast<std::size_t>(h * dh),
                                                 static_cast<std::size_t>(dh));
        for (int l = 0; l < m.n_levels; ++l) {
          for (int p = 0; p < m.n_points; ++p) {
            if (pmask != nullptr && !pmask->keep(q, h, l, p)) continue;
            const float weight = probs(q, h, static_cast<std::int64_t>(l) * m.n_points + p);
            nn::bi_sample_accumulate(m, values, l, locs(q, h, l, p, 0),
                                     locs(q, h, l, p, 1), h * dh, dh, weight, head_out);
          }
        }
      }
    }
  });
}

/// Integer datapath: INTn value codes, Q0.frac fractions, Horner BI,
/// fixed-point aggregation with int32 accumulation at the value scale.
void run_quantized(const ModelConfig& m, const Tensor& values, const Tensor& probs,
                   const Tensor& locs, const MsgsSpec& opt, Tensor& out) {
  const int dh = m.d_head();
  const quant::QTensor qvalues(values, opt.act_bits);
  const float out_scale = qvalues.spec().scale;
  const std::int64_t d = m.d_model;

  parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
    std::vector<std::int32_t> acc(static_cast<std::size_t>(dh));
    for (std::int64_t q = begin; q < end; ++q) {
      std::span<float> orow = out.row(q);
      for (int h = 0; h < m.n_heads; ++h) {
        std::fill(acc.begin(), acc.end(), 0);
        for (int l = 0; l < m.n_levels; ++l) {
          for (int p = 0; p < m.n_points; ++p) {
            if (opt.point_mask != nullptr && !opt.point_mask->keep(q, h, l, p)) continue;
            const float prob = probs(q, h, static_cast<std::int64_t>(l) * m.n_points + p);
            const std::int32_t prob_q = quant::to_fraction_code(prob, opt.frac_bits);
            if (prob_q == 0) continue;

            const nn::BiPoint bp =
                nn::bi_locate(locs(q, h, l, p, 0), locs(q, h, l, p, 1));
            const std::int32_t t0_q = quant::to_fraction_code(bp.t0, opt.frac_bits);
            const std::int32_t t1_q = quant::to_fraction_code(bp.t1, opt.frac_bits);

            // Gather neighbor code rows (nullptr => zero padding).
            std::array<const std::int16_t*, 4> nb{nullptr, nullptr, nullptr, nullptr};
            nn::for_each_neighbor(m, l, bp, [&](int which, std::int64_t token) {
              nb[static_cast<std::size_t>(which)] =
                  &qvalues.codes()[static_cast<std::size_t>(token * d + h * dh)];
            });

            for (int c = 0; c < dh; ++c) {
              const std::int32_t n0 = nb[0] != nullptr ? nb[0][c] : 0;
              const std::int32_t n1 = nb[1] != nullptr ? nb[1][c] : 0;
              const std::int32_t n2 = nb[2] != nullptr ? nb[2][c] : 0;
              const std::int32_t n3 = nb[3] != nullptr ? nb[3][c] : 0;
              const std::int32_t s =
                  quant::bi_horner_int(n0, n1, n2, n3, t0_q, t1_q, opt.frac_bits);
              acc[static_cast<std::size_t>(c)] +=
                  quant::ag_weight_int(s, prob_q, opt.frac_bits);
            }
          }
        }
        for (int c = 0; c < dh; ++c) {
          orow[static_cast<std::size_t>(h * dh + c)] =
              static_cast<float>(acc[static_cast<std::size_t>(c)]) * out_scale;
        }
      }
    }
  });
}

class ReferenceBackend final : public Backend {
 public:
  [[nodiscard]] const std::string& name() const noexcept override {
    static const std::string kName = "reference";
    return kName;
  }

  [[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b) const override {
    return nn::matmul(a, b);
  }

  [[nodiscard]] Tensor linear(const Tensor& x, const Tensor& w,
                              const Tensor* bias) const override {
    return nn::linear(x, w, bias);
  }

  [[nodiscard]] Tensor softmax_lastdim(const Tensor& t) const override {
    return nn::softmax_lastdim(t);
  }

  [[nodiscard]] Tensor run_msgs(const ModelConfig& m, const Tensor& values,
                                const Tensor& probs, const Tensor& locs,
                                const MsgsSpec& spec) const override {
    Tensor out({m.n_in(), m.d_model});
    if (spec.quantized) {
      run_quantized(m, values, probs, locs, spec, out);
    } else {
      run_fp32(m, values, probs, locs, spec.point_mask, out);
    }
    return out;
  }
};

}  // namespace

namespace detail {
std::unique_ptr<Backend> make_reference_backend() {
  return std::make_unique<ReferenceBackend>();
}
}  // namespace detail

}  // namespace defa::kernels
