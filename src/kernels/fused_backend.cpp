// The `fused` backend: the optimized CPU implementation of the fused
// MSGS + aggregation kernel.
//
// Three ideas, in execution order:
//  1. **Sampling plan (SoA).**  Bilinear corner discovery — floor, 2x2
//     neighborhood, per-neighbor bounds checks, token flattening — is
//     hoisted out of the hot loop into a `SamplingPlan` (level-major SoA
//     of value-row indices + fractions).  Callers that run one geometry
//     many times (the EncoderPipeline's dense per-layer fields, the
//     microbench) pass a cached plan; otherwise one is built on the spot.
//  2. **Skip-don't-gather PAP handling, branchless channels.**  A masked
//     point costs one predictable branch and zero arithmetic (pruning
//     removes iterations), and out-of-bounds corners resolve to a shared
//     zero row, so the per-channel loop carries no padding branches at
//     all — unlike the reference path, whose four nullptr selects sit
//     inside the gather.  (Compacting survivors into dense per-query
//     point lists first was tried and measured *slower* — the list
//     build/indirection cost more than the branch it removed.)
//  3. **d_head-contiguous vector loop.**  Per point the aggregation is one
//     straight-line loop over the head's contiguous channel slice with all
//     row pointers and scalars hoisted; the compiler vectorizes it at the
//     target ISA width (add -march=native via the DEFA_KERNELS_NATIVE
//     cmake knob to widen it).
//
// Bit-exactness: per output channel the accumulation chain visits the
// same surviving points in the same (l, p) order and performs the same
// Horner-form operations on the same operands as the reference backend,
// so fp32 results are bit-identical and INTn results are exactly equal.
// tests/test_kernels.cpp enforces both.  matmul/linear/softmax delegate
// to the nn/ kernels — MSGS is the operator the paper shows dominates,
// and the one this backend rewrites.

#include <vector>

#include "common/parallel.h"
#include "kernels/backend.h"
#include "kernels/plan.h"
#include "nn/bilinear.h"
#include "nn/linear.h"
#include "nn/softmax.h"
#include "quant/fixed_point.h"
#include "quant/qmsgs.h"

namespace defa::kernels {

namespace {

/// fp32 aggregation loop body.  DH > 0 is a compile-time head width (the
/// common 8/16/32/64 cases): the channel loops fully unroll with no
/// prologue, and the per-(query, head) accumulator tile lives in
/// registers across the whole point loop, so a point costs four gathers
/// and arithmetic — no output load/store per point.  DH == 0 handles any
/// runtime width by accumulating straight into the (zero-initialized)
/// output row — same per-channel operation chain, one load/store more
/// per point.
template <int DH>
void run_fp32_impl(const ModelConfig& m, const Tensor& values, const Tensor& probs,
                   const SamplingPlan& plan, const prune::PointMask* pmask,
                   Tensor& out) {
  const int dh = DH > 0 ? DH : m.d_head();
  const int lp = m.points_per_head();
  const std::int32_t* offs = plan.offsets().data();
  const float* t0s = plan.t0().data();
  const float* t1s = plan.t1().data();
  const std::vector<float> zero_row(static_cast<std::size_t>(dh), 0.0f);
  const float* zero = zero_row.data();

  parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
    const float* vdata = values.data().data();
    const float* pdata = probs.data().data();
    for (std::int64_t q = begin; q < end; ++q) {
      std::span<float> orow = out.row(q);
      for (int h = 0; h < m.n_heads; ++h) {
        const float* prow = &pdata[static_cast<std::size_t>((q * m.n_heads + h) * lp)];
        float* head_out = &orow[static_cast<std::size_t>(h * dh)];
        float acc[DH > 0 ? DH : 1] = {};
        for (int l = 0; l < m.n_levels; ++l) {
          const std::int64_t base = plan.slot(l, q, h, 0);
          for (int p = 0; p < m.n_points; ++p) {
            if (pmask != nullptr && !pmask->keep(q, h, l, p)) continue;
            const std::int64_t s = (base + p) * 4;
            const float* r0 = offs[s + 0] >= 0 ? vdata + offs[s + 0] : zero;
            const float* r1 = offs[s + 1] >= 0 ? vdata + offs[s + 1] : zero;
            const float* r2 = offs[s + 2] >= 0 ? vdata + offs[s + 2] : zero;
            const float* r3 = offs[s + 3] >= 0 ? vdata + offs[s + 3] : zero;
            const float t0 = t0s[base + p];
            const float t1 = t1s[base + p];
            const float w = prow[l * m.n_points + p];
            if constexpr (DH > 0) {
              for (int c = 0; c < DH; ++c) {
                acc[c] += w * nn::bi_horner(r0[c], r1[c], r2[c], r3[c], t0, t1);
              }
            } else {
              for (int c = 0; c < dh; ++c) {
                head_out[c] += w * nn::bi_horner(r0[c], r1[c], r2[c], r3[c], t0, t1);
              }
            }
          }
        }
        if constexpr (DH > 0) {
          for (int c = 0; c < DH; ++c) head_out[c] = acc[c];
        }
      }
    }
  });
}

void run_fp32_planned(const ModelConfig& m, const Tensor& values, const Tensor& probs,
                      const SamplingPlan& plan, const prune::PointMask* pmask,
                      Tensor& out) {
  switch (m.d_head()) {
    case 8:  run_fp32_impl<8>(m, values, probs, plan, pmask, out); break;
    case 16: run_fp32_impl<16>(m, values, probs, plan, pmask, out); break;
    case 32: run_fp32_impl<32>(m, values, probs, plan, pmask, out); break;
    case 64: run_fp32_impl<64>(m, values, probs, plan, pmask, out); break;
    default: run_fp32_impl<0>(m, values, probs, plan, pmask, out); break;
  }
}

void run_quantized_planned(const ModelConfig& m, const Tensor& values,
                           const Tensor& probs, const SamplingPlan& plan,
                           const MsgsSpec& spec, Tensor& out) {
  const int dh = m.d_head();
  const int lp = m.points_per_head();
  const std::int32_t* offs = plan.offsets().data();
  const float* t0s = plan.t0().data();
  const float* t1s = plan.t1().data();
  const quant::QTensor qvalues(values, spec.act_bits);
  const float out_scale = qvalues.spec().scale;
  const std::vector<std::int16_t> zero_row(static_cast<std::size_t>(dh), 0);
  const std::int16_t* zero = zero_row.data();

  parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
    std::vector<std::int32_t> acc(static_cast<std::size_t>(dh));
    const std::int16_t* codes = qvalues.codes().data();
    const float* pdata = probs.data().data();
    for (std::int64_t q = begin; q < end; ++q) {
      std::span<float> orow = out.row(q);
      for (int h = 0; h < m.n_heads; ++h) {
        const float* prow = &pdata[static_cast<std::size_t>((q * m.n_heads + h) * lp)];
        std::fill(acc.begin(), acc.end(), 0);
        for (int l = 0; l < m.n_levels; ++l) {
          const std::int64_t base = plan.slot(l, q, h, 0);
          for (int p = 0; p < m.n_points; ++p) {
            if (spec.point_mask != nullptr && !spec.point_mask->keep(q, h, l, p)) continue;
            const std::int32_t prob_q =
                quant::to_fraction_code(prow[l * m.n_points + p], spec.frac_bits);
            if (prob_q == 0) continue;
            const std::int64_t s = (base + p) * 4;
            const std::int16_t* r0 = offs[s + 0] >= 0 ? codes + offs[s + 0] : zero;
            const std::int16_t* r1 = offs[s + 1] >= 0 ? codes + offs[s + 1] : zero;
            const std::int16_t* r2 = offs[s + 2] >= 0 ? codes + offs[s + 2] : zero;
            const std::int16_t* r3 = offs[s + 3] >= 0 ? codes + offs[s + 3] : zero;
            const std::int32_t t0_q = quant::to_fraction_code(t0s[base + p], spec.frac_bits);
            const std::int32_t t1_q = quant::to_fraction_code(t1s[base + p], spec.frac_bits);
            for (int c = 0; c < dh; ++c) {
              const std::int32_t bi =
                  quant::bi_horner_int(r0[c], r1[c], r2[c], r3[c], t0_q, t1_q,
                                       spec.frac_bits);
              acc[static_cast<std::size_t>(c)] +=
                  quant::ag_weight_int(bi, prob_q, spec.frac_bits);
            }
          }
        }
        float* head_out = &orow[static_cast<std::size_t>(h) * dh];
        for (int c = 0; c < dh; ++c) {
          head_out[c] = static_cast<float>(acc[static_cast<std::size_t>(c)]) * out_scale;
        }
      }
    }
  });
}

class FusedBackend final : public Backend {
 public:
  [[nodiscard]] const std::string& name() const noexcept override {
    static const std::string kName = "fused";
    return kName;
  }

  [[nodiscard]] bool wants_plan() const noexcept override { return true; }

  [[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b) const override {
    return nn::matmul(a, b);
  }

  [[nodiscard]] Tensor linear(const Tensor& x, const Tensor& w,
                              const Tensor* bias) const override {
    return nn::linear(x, w, bias);
  }

  [[nodiscard]] Tensor softmax_lastdim(const Tensor& t) const override {
    return nn::softmax_lastdim(t);
  }

  [[nodiscard]] Tensor run_msgs(const ModelConfig& m, const Tensor& values,
                                const Tensor& probs, const Tensor& locs,
                                const MsgsSpec& spec) const override {
    SamplingPlan local;
    const SamplingPlan* plan = spec.plan;
    if (plan == nullptr) {
      local = SamplingPlan::build(m, locs);
      plan = &local;
    }
    DEFA_CHECK(plan->matches(m), "fused backend: sampling plan does not match the model");
    Tensor out({m.n_in(), m.d_model});
    if (spec.quantized) {
      run_quantized_planned(m, values, probs, *plan, spec, out);
    } else {
      run_fp32_planned(m, values, probs, *plan, spec.point_mask, out);
    }
    return out;
  }
};

}  // namespace

namespace detail {
std::unique_ptr<Backend> make_fused_backend() { return std::make_unique<FusedBackend>(); }
}  // namespace detail

}  // namespace defa::kernels
