// The `quill` backend: cache-local MSGS execution for large scenes.
//
// On DETR-class spatial shapes the value memory of one layer far exceeds
// L2, and the plan-driven gather of `fused`/`simd` becomes a random-access
// miss storm — the measured speedup collapses from ~3.2x (tiny scenes) to
// ~1.9x.  QUILL's observation (PAPERS.md) is that the fix is algorithmic:
// queries whose sampling footprints land in the same region of value
// memory should be executed together, so the region is pulled through the
// cache once instead of once per query.
//
// This backend realizes that in software:
//  * A `LocalityPlan` (kernels/plan.h) buckets each level's queries by the
//    value-memory tile their resolved footprint first touches — tile size
//    from the DEFA_L2_KB knob — and caches the resulting per-level visit
//    permutation in the `PlanCache` next to the `SamplingPlan`, so the
//    reorder is planned once per layer.
//  * Execution walks levels sequentially (the plan's level-major SoA
//    layout already keeps each level's gathers in one token range) and
//    visits queries in locality order inside each level, using the level
//    -scoped simd-tier kernels (simd_kernels.h) so fp32 and INTn stay
//    vectorized with the same runtime AVX2/NEON/scalar dispatch as `simd`.
//
// Bit-exactness (the differential harness enforces it): only the order
// *queries* are visited changes; every query's own accumulation chain —
// levels ascending, points ascending, per-channel — is exactly the
// reference chain.  fp32 partials live in the zero-initialized output row
// between levels, which is exact because fp32 load/store round-trips bit
// patterns.  INTn partials do NOT round-trip through float, so they
// accumulate in a per-call (N x D) int32 scratch and convert to float in
// one fixed-order pass after the last level — the "permute-then-scatter"
// scheme, with int32 adds that are exact regardless of order anyway.
//
// DEFA_QUILL_REORDER=off keeps the level-sequential walk but visits
// queries in identity order — the control the microbench locality section
// uses to isolate the reorder win from the level restructuring.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "kernels/backend.h"
#include "kernels/plan.h"
#include "kernels/simd_kernels.h"
#include "nn/linear.h"
#include "nn/softmax.h"
#include "quant/fixed_point.h"
#include "quant/qmsgs.h"

namespace defa::kernels {
namespace {

using simd::Isa;
using simd_detail::TierResolution;

/// DEFA_QUILL_REORDER: unset/"on"/"1" => locality order (the point of the
/// backend); "off"/"0" => identity order.  Re-read per call, like
/// DEFA_BACKEND, so benchmarks can flip it without rebuilding state.
bool reorder_enabled() {
  const char* env = std::getenv("DEFA_QUILL_REORDER");
  if (env == nullptr || *env == '\0') return true;
  const std::string v(env);
  return !(v == "off" || v == "0");
}

class QuillBackend final : public Backend {
 public:
  [[nodiscard]] const std::string& name() const noexcept override {
    static const std::string kName = "quill";
    return kName;
  }

  [[nodiscard]] bool wants_plan() const noexcept override { return true; }
  [[nodiscard]] bool wants_locality() const noexcept override { return true; }

  [[nodiscard]] std::string unavailable_reason() const override {
    return simd_detail::resolve_tier().reason;
  }

  [[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b) const override {
    return nn::matmul(a, b);
  }

  [[nodiscard]] Tensor linear(const Tensor& x, const Tensor& w,
                              const Tensor* bias) const override {
    return nn::linear(x, w, bias);
  }

  [[nodiscard]] Tensor softmax_lastdim(const Tensor& t) const override {
    return nn::softmax_lastdim(t);
  }

  [[nodiscard]] Tensor run_msgs(const ModelConfig& m, const Tensor& values,
                                const Tensor& probs, const Tensor& locs,
                                const MsgsSpec& spec) const override {
    const TierResolution res = simd_detail::resolve_tier();
    DEFA_CHECK(res.reason.empty(), "quill backend unavailable: " + res.reason);

    SamplingPlan local_plan;
    const SamplingPlan* plan = spec.plan;
    if (plan == nullptr) {
      local_plan = SamplingPlan::build(m, locs);
      plan = &local_plan;
    }
    DEFA_CHECK(plan->matches(m), "quill backend: sampling plan does not match the model");

    LocalityPlan local_loc;
    const LocalityPlan* loc = spec.locality;
    if (loc == nullptr) {
      local_loc = LocalityPlan::build(m, *plan, locality_tile_elems());
      loc = &local_loc;
    }
    DEFA_CHECK(loc->matches(m), "quill backend: locality plan does not match the model");

    // Identity order under DEFA_QUILL_REORDER=off (the bench control).
    std::vector<std::int32_t> identity;
    const bool reorder = reorder_enabled();
    if (!reorder) {
      identity.resize(static_cast<std::size_t>(m.n_in()));
      std::iota(identity.begin(), identity.end(), 0);
    }
    const auto level_order = [&](int l) {
      return reorder ? loc->order(l) : identity.data();
    };

    Tensor out({m.n_in(), m.d_model});
    if (spec.quantized) {
      const quant::QTensor qvalues(values, spec.act_bits);
      simd_detail::QuantArgs qa;
      qa.m = &m;
      qa.codes = qvalues.codes().data();
      qa.probs = probs.data().data();
      qa.plan = plan;
      qa.mask = spec.point_mask;
      qa.out = out.data().data();
      qa.out_scale = qvalues.spec().scale;
      qa.frac_bits = spec.frac_bits;
      // int32 partials between levels: float rows cannot hold them.
      std::vector<std::int32_t> acc(
          static_cast<std::size_t>(m.n_in()) * static_cast<std::size_t>(m.d_model), 0);
      const bool vector_safe =
          spec.act_bits + spec.frac_bits <= simd_detail::kMaxVectorQuantBits;
      const Isa isa = vector_safe ? res.isa : Isa::kScalar;
      for (int l = 0; l < m.n_levels; ++l) {
        switch (isa) {
          case Isa::kAvx2:
            simd_detail::run_quant_level_avx2(qa, l, level_order(l), acc.data());
            break;
          case Isa::kNeon:
            simd_detail::run_quant_level_neon(qa, l, level_order(l), acc.data());
            break;
          case Isa::kScalar:
            simd_detail::run_quant_level_scalar(qa, l, level_order(l), acc.data());
            break;
        }
      }
      // Fixed-order scatter: the same final conversion every other INTn
      // backend performs, in plain query order.
      float* o = out.data().data();
      const float scale = qa.out_scale;
      parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t q = begin; q < end; ++q) {
          const std::size_t row = static_cast<std::size_t>(q * m.d_model);
          for (int c = 0; c < m.d_model; ++c) {
            o[row + c] = static_cast<float>(acc[row + c]) * scale;
          }
        }
      });
    } else {
      simd_detail::Fp32Args fa;
      fa.m = &m;
      fa.values = values.data().data();
      fa.probs = probs.data().data();
      fa.plan = plan;
      fa.mask = spec.point_mask;
      fa.out = out.data().data();
      for (int l = 0; l < m.n_levels; ++l) {
        switch (res.isa) {
          case Isa::kAvx2:
            simd_detail::run_fp32_level_avx2(fa, l, level_order(l));
            break;
          case Isa::kNeon:
            simd_detail::run_fp32_level_neon(fa, l, level_order(l));
            break;
          case Isa::kScalar:
            simd_detail::run_fp32_level_scalar(fa, l, level_order(l));
            break;
        }
      }
    }
    return out;
  }
};

}  // namespace

namespace detail {
std::unique_ptr<Backend> make_quill_backend() { return std::make_unique<QuillBackend>(); }
}  // namespace detail

}  // namespace defa::kernels
