#pragma once

/// \file backend.h
/// `defa::kernels::Backend` — the pluggable compute-backend seam of the
/// functional model.
///
/// A backend implements the numeric hot path: dense linear/GEMM, softmax,
/// and the fused mask-aware MSGS + aggregation kernel.  Every layer above
/// (nn::msdeform_forward_ref, core::run_msgs, core::EncoderPipeline,
/// api::Engine and the serve/tools surfaces on top) selects a backend *by
/// name* through the runtime registry below, so swapping implementations —
/// or adding new ones (threaded-tile, INTn fast paths, GPU offload) —
/// never touches the callers.
///
/// Five backends ship built in:
///  * `reference` — bit-identical to the historical scalar code paths
///    (nn::matmul/linear/softmax_lastdim and the pre-refactor core/msgs
///    loops).  The correctness anchor.
///  * `fused` — the optimized CPU path: consumes a precomputed
///    `SamplingPlan` (level-major SoA bilinear corners + resolved
///    value-buffer offsets), skips PAP-pruned points with one predictable
///    branch and zero arithmetic, and keeps a compile-time-`d_head`
///    register accumulator tile so the per-point channel loop is a
///    branchless, vectorizable gather.
///  * `simd` — explicit vectorization of the fused hot loop: AVX2 / NEON
///    intrinsics selected by runtime ISA dispatch (src/common/simd.h) with
///    a portable scalar fallback, including a vector INTn quantized path.
///  * `tiled` — intra-request parallelism: per-level work lists executed
///    on the shared `defa::ThreadPool` inside one run_msgs call, with a
///    deterministic per-query reduction so one large request saturates
///    the machine without changing a single output bit.
///  * `quill` — cache-local execution for large scenes: queries reordered
///    by the value-memory tile their sampling footprint first touches
///    (a cached `LocalityPlan`), levels walked sequentially so each
///    query's accumulation chain is untouched, inner gathers on the simd
///    tiers.  The QUILL co-design (PAPERS.md) in software.
/// All are bit-identical to `reference` in fp32 and exactly equal on the
/// INTn datapath (enforced by tests/test_kernels.cpp and the differential
/// harness in tests/test_backend_differential.cpp).
///
/// The contract every backend must honor (docs/KERNELS.md):
///  * deterministic — results are a pure function of the inputs;
///  * thread-compatible — `const` methods may run concurrently;
///  * masking semantics — a PAP-masked point contributes nothing (no BI,
///    no aggregation), exactly like the reference `continue`.

#include <memory>
#include <string>
#include <vector>

#include "config/model_config.h"
#include "prune/masks.h"
#include "tensor/tensor.h"

namespace defa::kernels {

class SamplingPlan;
class LocalityPlan;

/// Per-call configuration of the fused MSGS + aggregation kernel.
struct MsgsSpec {
  /// Points pruned by PAP are skipped entirely (no BI, no aggregation).
  const prune::PointMask* point_mask = nullptr;
  /// Run the integer datapath: values/probs/fractions quantized to the
  /// given widths, BI in Horner form on codes, aggregation in fixed point.
  bool quantized = false;
  int act_bits = 12;   ///< value-code width
  int frac_bits = 12;  ///< t0/t1 and probability fraction width
  /// Optional precomputed sampling geometry for `locs`.  Backends that
  /// consume plans (fused) use it instead of re-deriving the bilinear
  /// corners; backends that don't (reference) ignore it.  Must have been
  /// built from exactly the `locs` tensor passed alongside.
  const SamplingPlan* plan = nullptr;
  /// Optional gather-locality schedule for `plan` (the quill backend's
  /// query-visit permutation).  Must have been derived from exactly the
  /// sampling plan above; backends that don't reorder ignore it.
  const LocalityPlan* locality = nullptr;
};

/// One compute-backend implementation of the numeric hot path.
class Backend {
 public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  /// Does run_msgs consume `MsgsSpec::plan`?  Callers that cache plans
  /// (EncoderPipeline) skip building them for backends that don't.
  [[nodiscard]] virtual bool wants_plan() const noexcept { return false; }

  /// Does run_msgs consume `MsgsSpec::locality`?  Only meaningful when
  /// wants_plan() is also true; callers derive and cache the locality
  /// schedule alongside the sampling plan for such backends (quill).
  [[nodiscard]] virtual bool wants_locality() const noexcept { return false; }

  /// Empty when the backend can run on this host right now; otherwise a
  /// human-readable reason it cannot (e.g. "DEFA_SIMD=avx2 but the CPU
  /// lacks AVX2").  Registration is unconditional — the registry describes
  /// what the binary *contains* — so measurement tools (the microbench
  /// backend matrix) skip unavailable backends with the reason instead of
  /// erroring, and `run_msgs` rejects them with the same message.
  [[nodiscard]] virtual std::string unavailable_reason() const { return {}; }

  /// C = A (MxK) * B (KxN).
  [[nodiscard]] virtual Tensor matmul(const Tensor& a, const Tensor& b) const = 0;
  /// Y = X * W (+ bias broadcast over rows).
  [[nodiscard]] virtual Tensor linear(const Tensor& x, const Tensor& w,
                                      const Tensor* bias) const = 0;
  /// Softmax over the last dimension.
  [[nodiscard]] virtual Tensor softmax_lastdim(const Tensor& t) const = 0;
  /// Fused mask-aware MSGS + aggregation: grid-sample `values` (N_in x D)
  /// at `locs` (N, H, L, P, 2), weight by `probs` (N, H, L*P), return the
  /// (N, D) head-concatenated output.  Shapes are validated by the caller
  /// (core::run_msgs).
  [[nodiscard]] virtual Tensor run_msgs(const ModelConfig& m, const Tensor& values,
                                        const Tensor& probs, const Tensor& locs,
                                        const MsgsSpec& spec) const = 0;
};

// ------------------------------------------------------------------ registry

/// Register a backend under its `name()`.  Throws defa::CheckError on a
/// duplicate name.  The built-in backends are registered automatically.
void register_backend(std::unique_ptr<Backend> backend);

/// Look up a backend; nullptr on an unknown name.
[[nodiscard]] const Backend* find_backend(const std::string& name) noexcept;

/// Look up a backend; throws defa::CheckError listing the known names on
/// an unknown one.
[[nodiscard]] const Backend& backend(const std::string& name);

/// All registered backend names, sorted.
[[nodiscard]] std::vector<std::string> backend_names();

/// The registered names as one comma-joined string, for error messages
/// ("fused, reference").
[[nodiscard]] std::string known_backends();

/// Name of the process-wide default backend: the `DEFA_BACKEND`
/// environment variable when set (and known), else "reference".
[[nodiscard]] std::string default_backend_name();

/// The process-wide default backend (see default_backend_name()).
[[nodiscard]] const Backend& default_backend();

/// `*backend` when non-null, else the process default — the one place
/// the "null means default" resolution idiom lives.
[[nodiscard]] const Backend& backend_or_default(const Backend* backend);

namespace detail {
/// Factories implemented by the built-in backend translation units.
[[nodiscard]] std::unique_ptr<Backend> make_reference_backend();
[[nodiscard]] std::unique_ptr<Backend> make_fused_backend();
[[nodiscard]] std::unique_ptr<Backend> make_simd_backend();
[[nodiscard]] std::unique_ptr<Backend> make_tiled_backend();
[[nodiscard]] std::unique_ptr<Backend> make_quill_backend();
}  // namespace detail

}  // namespace defa::kernels
