// AVX2 tier of the `simd` backend.
//
// This translation unit is the only one compiled with -mavx2 (see the
// DEFA_KERNELS_SIMD handling in CMakeLists.txt), so the rest of the binary
// keeps its portable ISA floor and the backend can probe the CPU at
// runtime before jumping here.  When the knob is off — or the target is
// not x86 — the file compiles to stubs and `avx2_compiled()` reports
// false, which the dispatcher and the microbench skip logic consume.
//
// Bit-exactness (the contract tests/test_backend_differential.cpp
// enforces): each 8-float lane executes exactly the scalar chain of
// nn::bi_horner —
//   (n0 + (n2-n0)*t0) + (((n1-n0) + (((n3-n2)-n1)+n0)*t0) * t1)
// — as individual vmulps/vaddps/vsubps (never FMA: the build sets
// -ffp-contract=off and this file uses explicit non-fused intrinsics), so
// per-lane results are IEEE-identical to the scalar tier.  The INTn chain
// mirrors quant::bi_horner_int / ag_weight_int with frac_mul done in
// int32: the dispatcher only routes configurations here when
// act_bits + frac_bits <= kMaxVectorQuantBits, under which every
// intermediate provably fits (|bi| <= 9*2^(act_bits-1), times a Q0.frac
// code plus the rounding half stays under 2^31), making the int32
// vpmulld + arithmetic-shift sequence exactly equal to the scalar tier's
// int64 math.  Channels not covered by a full 8-lane block run the scalar
// chain directly.

#include "kernels/simd_kernels.h"

#include "common/check.h"

#if defined(DEFA_SIMD_AVX2) && defined(__AVX2__)
#define DEFA_AVX2_REAL 1
#include <immintrin.h>

#include <algorithm>
#include <vector>

#include "common/parallel.h"
#include "kernels/plan.h"
#include "nn/bilinear.h"
#include "quant/qmsgs.h"
#else
#define DEFA_AVX2_REAL 0
#endif

namespace defa::kernels::simd_detail {

bool avx2_compiled() noexcept { return DEFA_AVX2_REAL != 0; }

#if DEFA_AVX2_REAL

namespace {

/// frac_mul in int32 lanes: (code * frac + half) >> frac_bits, arithmetic
/// shift.  Valid only under the kMaxVectorQuantBits precondition.
inline __m256i frac_mul_v(__m256i code, __m256i frac, __m256i half,
                          __m128i shift) noexcept {
  const __m256i prod = _mm256_mullo_epi32(code, frac);
  return _mm256_sra_epi32(_mm256_add_epi32(prod, half), shift);
}

/// Load 8 int16 codes and widen to int32 lanes.
inline __m256i load_codes8(const std::int16_t* p) noexcept {
  return _mm256_cvtepi16_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

}  // namespace

void run_fp32_avx2(const Fp32Args& a) {
  const ModelConfig& m = *a.m;
  const int dh = m.d_head();
  const int dh8 = dh & ~7;
  const int lp = m.points_per_head();
  const std::int32_t* offs = a.plan->offsets().data();
  const float* t0s = a.plan->t0().data();
  const float* t1s = a.plan->t1().data();
  const std::vector<float> zero_row(static_cast<std::size_t>(dh), 0.0f);
  const float* zero = zero_row.data();

  parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
    std::vector<float> acc(static_cast<std::size_t>(dh));
    for (std::int64_t q = begin; q < end; ++q) {
      for (int h = 0; h < m.n_heads; ++h) {
        const float* prow = a.probs + static_cast<std::size_t>((q * m.n_heads + h) * lp);
        std::fill(acc.begin(), acc.end(), 0.0f);
        for (int l = 0; l < m.n_levels; ++l) {
          const std::int64_t base = a.plan->slot(l, q, h, 0);
          for (int p = 0; p < m.n_points; ++p) {
            if (a.mask != nullptr && !a.mask->keep(q, h, l, p)) continue;
            const std::int64_t s = (base + p) * 4;
            const float* r0 = offs[s + 0] >= 0 ? a.values + offs[s + 0] : zero;
            const float* r1 = offs[s + 1] >= 0 ? a.values + offs[s + 1] : zero;
            const float* r2 = offs[s + 2] >= 0 ? a.values + offs[s + 2] : zero;
            const float* r3 = offs[s + 3] >= 0 ? a.values + offs[s + 3] : zero;
            const float t0 = t0s[base + p];
            const float t1 = t1s[base + p];
            const float w = prow[l * m.n_points + p];
            const __m256 t0v = _mm256_set1_ps(t0);
            const __m256 t1v = _mm256_set1_ps(t1);
            const __m256 wv = _mm256_set1_ps(w);
            for (int c = 0; c < dh8; c += 8) {
              const __m256 n0 = _mm256_loadu_ps(r0 + c);
              const __m256 n1 = _mm256_loadu_ps(r1 + c);
              const __m256 n2 = _mm256_loadu_ps(r2 + c);
              const __m256 n3 = _mm256_loadu_ps(r3 + c);
              // (n2 - n0) * t0
              const __m256 vert = _mm256_mul_ps(_mm256_sub_ps(n2, n0), t0v);
              // (((n3 - n2) - n1) + n0) * t0
              const __m256 cross = _mm256_mul_ps(
                  _mm256_add_ps(_mm256_sub_ps(_mm256_sub_ps(n3, n2), n1), n0), t0v);
              // ((n1 - n0) + cross) * t1
              const __m256 horiz =
                  _mm256_mul_ps(_mm256_add_ps(_mm256_sub_ps(n1, n0), cross), t1v);
              // (n0 + vert) + horiz, then weight and accumulate
              const __m256 bi = _mm256_add_ps(_mm256_add_ps(n0, vert), horiz);
              const __m256 av = _mm256_loadu_ps(acc.data() + c);
              _mm256_storeu_ps(acc.data() + c,
                               _mm256_add_ps(av, _mm256_mul_ps(wv, bi)));
            }
            for (int c = dh8; c < dh; ++c) {
              acc[static_cast<std::size_t>(c)] +=
                  w * nn::bi_horner(r0[c], r1[c], r2[c], r3[c], t0, t1);
            }
          }
        }
        float* head_out = a.out + static_cast<std::size_t>(q * m.d_model + h * dh);
        for (int c = 0; c < dh; ++c) head_out[c] = acc[static_cast<std::size_t>(c)];
      }
    }
  });
}

void run_quant_avx2(const QuantArgs& a) {
  const ModelConfig& m = *a.m;
  const int dh = m.d_head();
  const int dh8 = dh & ~7;
  const int lp = m.points_per_head();
  const std::int32_t* offs = a.plan->offsets().data();
  const float* t0s = a.plan->t0().data();
  const float* t1s = a.plan->t1().data();
  const std::vector<std::int16_t> zero_row(static_cast<std::size_t>(dh), 0);
  const std::int16_t* zero = zero_row.data();
  const __m256i half = _mm256_set1_epi32(1 << (a.frac_bits - 1));
  const __m128i shift = _mm_cvtsi32_si128(a.frac_bits);

  parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
    std::vector<std::int32_t> acc(static_cast<std::size_t>(dh));
    for (std::int64_t q = begin; q < end; ++q) {
      for (int h = 0; h < m.n_heads; ++h) {
        const float* prow = a.probs + static_cast<std::size_t>((q * m.n_heads + h) * lp);
        std::fill(acc.begin(), acc.end(), 0);
        for (int l = 0; l < m.n_levels; ++l) {
          const std::int64_t base = a.plan->slot(l, q, h, 0);
          for (int p = 0; p < m.n_points; ++p) {
            if (a.mask != nullptr && !a.mask->keep(q, h, l, p)) continue;
            const std::int32_t prob_q =
                quant::to_fraction_code(prow[l * m.n_points + p], a.frac_bits);
            if (prob_q == 0) continue;
            const std::int64_t s = (base + p) * 4;
            const std::int16_t* r0 = offs[s + 0] >= 0 ? a.codes + offs[s + 0] : zero;
            const std::int16_t* r1 = offs[s + 1] >= 0 ? a.codes + offs[s + 1] : zero;
            const std::int16_t* r2 = offs[s + 2] >= 0 ? a.codes + offs[s + 2] : zero;
            const std::int16_t* r3 = offs[s + 3] >= 0 ? a.codes + offs[s + 3] : zero;
            const std::int32_t t0_q = quant::to_fraction_code(t0s[base + p], a.frac_bits);
            const std::int32_t t1_q = quant::to_fraction_code(t1s[base + p], a.frac_bits);
            const __m256i t0v = _mm256_set1_epi32(t0_q);
            const __m256i t1v = _mm256_set1_epi32(t1_q);
            const __m256i pv = _mm256_set1_epi32(prob_q);
            for (int c = 0; c < dh8; c += 8) {
              const __m256i n0 = load_codes8(r0 + c);
              const __m256i n1 = load_codes8(r1 + c);
              const __m256i n2 = load_codes8(r2 + c);
              const __m256i n3 = load_codes8(r3 + c);
              const __m256i vert = frac_mul_v(_mm256_sub_epi32(n2, n0), t0v, half, shift);
              const __m256i cross = frac_mul_v(
                  _mm256_add_epi32(_mm256_sub_epi32(_mm256_sub_epi32(n3, n2), n1), n0),
                  t0v, half, shift);
              const __m256i horiz = frac_mul_v(
                  _mm256_add_epi32(_mm256_sub_epi32(n1, n0), cross), t1v, half, shift);
              const __m256i bi = _mm256_add_epi32(_mm256_add_epi32(n0, vert), horiz);
              const __m256i ag = frac_mul_v(bi, pv, half, shift);
              __m256i* accv = reinterpret_cast<__m256i*>(acc.data() + c);
              _mm256_storeu_si256(accv,
                                  _mm256_add_epi32(_mm256_loadu_si256(accv), ag));
            }
            for (int c = dh8; c < dh; ++c) {
              const std::int32_t bi = quant::bi_horner_int(r0[c], r1[c], r2[c], r3[c],
                                                           t0_q, t1_q, a.frac_bits);
              acc[static_cast<std::size_t>(c)] +=
                  quant::ag_weight_int(bi, prob_q, a.frac_bits);
            }
          }
        }
        float* head_out = a.out + static_cast<std::size_t>(q * m.d_model + h * dh);
        for (int c = 0; c < dh; ++c) {
          head_out[c] = static_cast<float>(acc[static_cast<std::size_t>(c)]) * a.out_scale;
        }
      }
    }
  });
}

// Level-scoped forms for the quill backend: one level's points, queries
// visited in `order`.  Same lane chains as above; fp32 resumes the
// accumulator through the output row (fp32 memory round-trips bits), INTn
// accumulates into the caller's int32 scratch.

void run_fp32_level_avx2(const Fp32Args& a, int level, const std::int32_t* order) {
  const ModelConfig& m = *a.m;
  const int dh = m.d_head();
  const int dh8 = dh & ~7;
  const int lp = m.points_per_head();
  const std::int32_t* offs = a.plan->offsets().data();
  const float* t0s = a.plan->t0().data();
  const float* t1s = a.plan->t1().data();
  const std::vector<float> zero_row(static_cast<std::size_t>(dh), 0.0f);
  const float* zero = zero_row.data();

  parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      const std::int64_t q = order[i];
      for (int h = 0; h < m.n_heads; ++h) {
        const float* prow = a.probs + static_cast<std::size_t>((q * m.n_heads + h) * lp);
        float* head_out = a.out + static_cast<std::size_t>(q * m.d_model + h * dh);
        const std::int64_t base = a.plan->slot(level, q, h, 0);
        for (int p = 0; p < m.n_points; ++p) {
          if (a.mask != nullptr && !a.mask->keep(q, h, level, p)) continue;
          const std::int64_t s = (base + p) * 4;
          const float* r0 = offs[s + 0] >= 0 ? a.values + offs[s + 0] : zero;
          const float* r1 = offs[s + 1] >= 0 ? a.values + offs[s + 1] : zero;
          const float* r2 = offs[s + 2] >= 0 ? a.values + offs[s + 2] : zero;
          const float* r3 = offs[s + 3] >= 0 ? a.values + offs[s + 3] : zero;
          const float t0 = t0s[base + p];
          const float t1 = t1s[base + p];
          const float w = prow[level * m.n_points + p];
          const __m256 t0v = _mm256_set1_ps(t0);
          const __m256 t1v = _mm256_set1_ps(t1);
          const __m256 wv = _mm256_set1_ps(w);
          for (int c = 0; c < dh8; c += 8) {
            const __m256 n0 = _mm256_loadu_ps(r0 + c);
            const __m256 n1 = _mm256_loadu_ps(r1 + c);
            const __m256 n2 = _mm256_loadu_ps(r2 + c);
            const __m256 n3 = _mm256_loadu_ps(r3 + c);
            const __m256 vert = _mm256_mul_ps(_mm256_sub_ps(n2, n0), t0v);
            const __m256 cross = _mm256_mul_ps(
                _mm256_add_ps(_mm256_sub_ps(_mm256_sub_ps(n3, n2), n1), n0), t0v);
            const __m256 horiz =
                _mm256_mul_ps(_mm256_add_ps(_mm256_sub_ps(n1, n0), cross), t1v);
            const __m256 bi = _mm256_add_ps(_mm256_add_ps(n0, vert), horiz);
            const __m256 av = _mm256_loadu_ps(head_out + c);
            _mm256_storeu_ps(head_out + c,
                             _mm256_add_ps(av, _mm256_mul_ps(wv, bi)));
          }
          for (int c = dh8; c < dh; ++c) {
            head_out[c] += w * nn::bi_horner(r0[c], r1[c], r2[c], r3[c], t0, t1);
          }
        }
      }
    }
  });
}

void run_quant_level_avx2(const QuantArgs& a, int level, const std::int32_t* order,
                          std::int32_t* acc) {
  const ModelConfig& m = *a.m;
  const int dh = m.d_head();
  const int dh8 = dh & ~7;
  const int lp = m.points_per_head();
  const std::int32_t* offs = a.plan->offsets().data();
  const float* t0s = a.plan->t0().data();
  const float* t1s = a.plan->t1().data();
  const std::vector<std::int16_t> zero_row(static_cast<std::size_t>(dh), 0);
  const std::int16_t* zero = zero_row.data();
  const __m256i half = _mm256_set1_epi32(1 << (a.frac_bits - 1));
  const __m128i shift = _mm_cvtsi32_si128(a.frac_bits);

  parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      const std::int64_t q = order[i];
      for (int h = 0; h < m.n_heads; ++h) {
        const float* prow = a.probs + static_cast<std::size_t>((q * m.n_heads + h) * lp);
        std::int32_t* arow = acc + static_cast<std::size_t>(q * m.d_model + h * dh);
        const std::int64_t base = a.plan->slot(level, q, h, 0);
        for (int p = 0; p < m.n_points; ++p) {
          if (a.mask != nullptr && !a.mask->keep(q, h, level, p)) continue;
          const std::int32_t prob_q =
              quant::to_fraction_code(prow[level * m.n_points + p], a.frac_bits);
          if (prob_q == 0) continue;
          const std::int64_t s = (base + p) * 4;
          const std::int16_t* r0 = offs[s + 0] >= 0 ? a.codes + offs[s + 0] : zero;
          const std::int16_t* r1 = offs[s + 1] >= 0 ? a.codes + offs[s + 1] : zero;
          const std::int16_t* r2 = offs[s + 2] >= 0 ? a.codes + offs[s + 2] : zero;
          const std::int16_t* r3 = offs[s + 3] >= 0 ? a.codes + offs[s + 3] : zero;
          const std::int32_t t0_q = quant::to_fraction_code(t0s[base + p], a.frac_bits);
          const std::int32_t t1_q = quant::to_fraction_code(t1s[base + p], a.frac_bits);
          const __m256i t0v = _mm256_set1_epi32(t0_q);
          const __m256i t1v = _mm256_set1_epi32(t1_q);
          const __m256i pv = _mm256_set1_epi32(prob_q);
          for (int c = 0; c < dh8; c += 8) {
            const __m256i n0 = load_codes8(r0 + c);
            const __m256i n1 = load_codes8(r1 + c);
            const __m256i n2 = load_codes8(r2 + c);
            const __m256i n3 = load_codes8(r3 + c);
            const __m256i vert = frac_mul_v(_mm256_sub_epi32(n2, n0), t0v, half, shift);
            const __m256i cross = frac_mul_v(
                _mm256_add_epi32(_mm256_sub_epi32(_mm256_sub_epi32(n3, n2), n1), n0),
                t0v, half, shift);
            const __m256i horiz = frac_mul_v(
                _mm256_add_epi32(_mm256_sub_epi32(n1, n0), cross), t1v, half, shift);
            const __m256i bi = _mm256_add_epi32(_mm256_add_epi32(n0, vert), horiz);
            const __m256i ag = frac_mul_v(bi, pv, half, shift);
            __m256i* accv = reinterpret_cast<__m256i*>(arow + c);
            _mm256_storeu_si256(accv,
                                _mm256_add_epi32(_mm256_loadu_si256(accv), ag));
          }
          for (int c = dh8; c < dh; ++c) {
            const std::int32_t bi = quant::bi_horner_int(r0[c], r1[c], r2[c], r3[c],
                                                         t0_q, t1_q, a.frac_bits);
            arow[c] += quant::ag_weight_int(bi, prob_q, a.frac_bits);
          }
        }
      }
    }
  });
}

#else  // !DEFA_AVX2_REAL

void run_fp32_avx2(const Fp32Args&) {
  DEFA_CHECK(false, "simd backend: AVX2 kernels are not compiled into this binary");
}

void run_quant_avx2(const QuantArgs&) {
  DEFA_CHECK(false, "simd backend: AVX2 kernels are not compiled into this binary");
}

void run_fp32_level_avx2(const Fp32Args&, int, const std::int32_t*) {
  DEFA_CHECK(false, "quill backend: AVX2 kernels are not compiled into this binary");
}

void run_quant_level_avx2(const QuantArgs&, int, const std::int32_t*, std::int32_t*) {
  DEFA_CHECK(false, "quill backend: AVX2 kernels are not compiled into this binary");
}

#endif  // DEFA_AVX2_REAL

}  // namespace defa::kernels::simd_detail
