// The `simd` backend: explicitly vectorized MSGS + aggregation.
//
// Where `fused` leaves vectorization to the compiler, this backend commits
// to it: the per-point channel loop runs as AVX2 (x86-64) or NEON
// (aarch64) intrinsics chosen by *runtime* dispatch — one portable binary,
// CPUID-probed at the call site (src/common/simd.h) — with this file's
// scalar tier as the always-available fallback and semantic model.  The
// INTn quantized path is vectorized too, replacing the scalar Horner
// round-trip that kept `fused` at ~1.2x on quantized configs.
//
// Dispatch policy (see docs/KERNELS.md):
//  * DEFA_SIMD unset/"auto": best tier that is both compiled into the
//    binary (DEFA_KERNELS_SIMD cmake knob) and supported by this CPU.
//  * DEFA_SIMD=scalar: force the portable fallback (how CI proves the
//    shim bit-identical without special hardware).
//  * DEFA_SIMD=avx2|neon: *require* the tier.  If the build or the CPU
//    cannot honor it the backend reports itself unavailable — loudly —
//    instead of silently degrading and skewing a measurement.
//
// Bit-exactness: vector lanes execute exactly the scalar operation chain
// (nn::bi_horner / quant::bi_horner_int) on the same operands in the same
// order; vectorization runs across *channels*, whose accumulator chains
// are independent, never across points.  The INTn vector tiers keep their
// fraction multiplies in int32 only where the intermediates provably fit
// (act_bits + frac_bits <= kMaxVectorQuantBits); wider configs take the
// scalar tier's int64 path, still exactly equal to reference.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "kernels/backend.h"
#include "kernels/plan.h"
#include "kernels/simd_kernels.h"
#include "nn/bilinear.h"
#include "nn/linear.h"
#include "nn/softmax.h"
#include "quant/fixed_point.h"
#include "quant/qmsgs.h"

namespace defa::kernels {
namespace simd_detail {

// ------------------------------------------------------------- scalar tier
//
// The portable fallback: same structure as the vector tiers (plan-driven
// gather, zero-row padding, per-(query, head) accumulator) with the
// channel loop in scalar form.  This is the code the AVX2/NEON tiers must
// reproduce lane-for-lane.

void run_fp32_scalar(const Fp32Args& a) {
  const ModelConfig& m = *a.m;
  const int dh = m.d_head();
  const int lp = m.points_per_head();
  const std::int32_t* offs = a.plan->offsets().data();
  const float* t0s = a.plan->t0().data();
  const float* t1s = a.plan->t1().data();
  const std::vector<float> zero_row(static_cast<std::size_t>(dh), 0.0f);
  const float* zero = zero_row.data();

  parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
    std::vector<float> acc(static_cast<std::size_t>(dh));
    for (std::int64_t q = begin; q < end; ++q) {
      for (int h = 0; h < m.n_heads; ++h) {
        const float* prow = a.probs + static_cast<std::size_t>((q * m.n_heads + h) * lp);
        std::fill(acc.begin(), acc.end(), 0.0f);
        for (int l = 0; l < m.n_levels; ++l) {
          const std::int64_t base = a.plan->slot(l, q, h, 0);
          for (int p = 0; p < m.n_points; ++p) {
            if (a.mask != nullptr && !a.mask->keep(q, h, l, p)) continue;
            const std::int64_t s = (base + p) * 4;
            const float* r0 = offs[s + 0] >= 0 ? a.values + offs[s + 0] : zero;
            const float* r1 = offs[s + 1] >= 0 ? a.values + offs[s + 1] : zero;
            const float* r2 = offs[s + 2] >= 0 ? a.values + offs[s + 2] : zero;
            const float* r3 = offs[s + 3] >= 0 ? a.values + offs[s + 3] : zero;
            const float t0 = t0s[base + p];
            const float t1 = t1s[base + p];
            const float w = prow[l * m.n_points + p];
            for (int c = 0; c < dh; ++c) {
              acc[static_cast<std::size_t>(c)] +=
                  w * nn::bi_horner(r0[c], r1[c], r2[c], r3[c], t0, t1);
            }
          }
        }
        float* head_out = a.out + static_cast<std::size_t>(q * m.d_model + h * dh);
        for (int c = 0; c < dh; ++c) head_out[c] = acc[static_cast<std::size_t>(c)];
      }
    }
  });
}

void run_quant_scalar(const QuantArgs& a) {
  const ModelConfig& m = *a.m;
  const int dh = m.d_head();
  const int lp = m.points_per_head();
  const std::int32_t* offs = a.plan->offsets().data();
  const float* t0s = a.plan->t0().data();
  const float* t1s = a.plan->t1().data();
  const std::vector<std::int16_t> zero_row(static_cast<std::size_t>(dh), 0);
  const std::int16_t* zero = zero_row.data();

  parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
    std::vector<std::int32_t> acc(static_cast<std::size_t>(dh));
    for (std::int64_t q = begin; q < end; ++q) {
      for (int h = 0; h < m.n_heads; ++h) {
        const float* prow = a.probs + static_cast<std::size_t>((q * m.n_heads + h) * lp);
        std::fill(acc.begin(), acc.end(), 0);
        for (int l = 0; l < m.n_levels; ++l) {
          const std::int64_t base = a.plan->slot(l, q, h, 0);
          for (int p = 0; p < m.n_points; ++p) {
            if (a.mask != nullptr && !a.mask->keep(q, h, l, p)) continue;
            const std::int32_t prob_q =
                quant::to_fraction_code(prow[l * m.n_points + p], a.frac_bits);
            if (prob_q == 0) continue;
            const std::int64_t s = (base + p) * 4;
            const std::int16_t* r0 = offs[s + 0] >= 0 ? a.codes + offs[s + 0] : zero;
            const std::int16_t* r1 = offs[s + 1] >= 0 ? a.codes + offs[s + 1] : zero;
            const std::int16_t* r2 = offs[s + 2] >= 0 ? a.codes + offs[s + 2] : zero;
            const std::int16_t* r3 = offs[s + 3] >= 0 ? a.codes + offs[s + 3] : zero;
            const std::int32_t t0_q = quant::to_fraction_code(t0s[base + p], a.frac_bits);
            const std::int32_t t1_q = quant::to_fraction_code(t1s[base + p], a.frac_bits);
            for (int c = 0; c < dh; ++c) {
              const std::int32_t bi = quant::bi_horner_int(r0[c], r1[c], r2[c], r3[c],
                                                           t0_q, t1_q, a.frac_bits);
              acc[static_cast<std::size_t>(c)] +=
                  quant::ag_weight_int(bi, prob_q, a.frac_bits);
            }
          }
        }
        float* head_out = a.out + static_cast<std::size_t>(q * m.d_model + h * dh);
        for (int c = 0; c < dh; ++c) {
          head_out[c] = static_cast<float>(acc[static_cast<std::size_t>(c)]) * a.out_scale;
        }
      }
    }
  });
}

// --------------------------------------------------- level-scoped scalar tier
//
// The quill backend's inner loops (see simd_kernels.h): one level's points
// for every query, visited in `order`.  fp32 resumes the accumulator chain
// through the output row (load, add the level's points, implicit store per
// add) — bit-identical to the one-pass chain because fp32 memory
// round-trips bits; INTn accumulates into the caller's int32 scratch.

void run_fp32_level_scalar(const Fp32Args& a, int level, const std::int32_t* order) {
  const ModelConfig& m = *a.m;
  const int dh = m.d_head();
  const int lp = m.points_per_head();
  const std::int32_t* offs = a.plan->offsets().data();
  const float* t0s = a.plan->t0().data();
  const float* t1s = a.plan->t1().data();
  const std::vector<float> zero_row(static_cast<std::size_t>(dh), 0.0f);
  const float* zero = zero_row.data();

  parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      const std::int64_t q = order[i];
      for (int h = 0; h < m.n_heads; ++h) {
        const float* prow = a.probs + static_cast<std::size_t>((q * m.n_heads + h) * lp);
        float* head_out = a.out + static_cast<std::size_t>(q * m.d_model + h * dh);
        const std::int64_t base = a.plan->slot(level, q, h, 0);
        for (int p = 0; p < m.n_points; ++p) {
          if (a.mask != nullptr && !a.mask->keep(q, h, level, p)) continue;
          const std::int64_t s = (base + p) * 4;
          const float* r0 = offs[s + 0] >= 0 ? a.values + offs[s + 0] : zero;
          const float* r1 = offs[s + 1] >= 0 ? a.values + offs[s + 1] : zero;
          const float* r2 = offs[s + 2] >= 0 ? a.values + offs[s + 2] : zero;
          const float* r3 = offs[s + 3] >= 0 ? a.values + offs[s + 3] : zero;
          const float t0 = t0s[base + p];
          const float t1 = t1s[base + p];
          const float w = prow[level * m.n_points + p];
          for (int c = 0; c < dh; ++c) {
            head_out[c] += w * nn::bi_horner(r0[c], r1[c], r2[c], r3[c], t0, t1);
          }
        }
      }
    }
  });
}

void run_quant_level_scalar(const QuantArgs& a, int level, const std::int32_t* order,
                            std::int32_t* acc) {
  const ModelConfig& m = *a.m;
  const int dh = m.d_head();
  const int lp = m.points_per_head();
  const std::int32_t* offs = a.plan->offsets().data();
  const float* t0s = a.plan->t0().data();
  const float* t1s = a.plan->t1().data();
  const std::vector<std::int16_t> zero_row(static_cast<std::size_t>(dh), 0);
  const std::int16_t* zero = zero_row.data();

  parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      const std::int64_t q = order[i];
      for (int h = 0; h < m.n_heads; ++h) {
        const float* prow = a.probs + static_cast<std::size_t>((q * m.n_heads + h) * lp);
        std::int32_t* arow = acc + static_cast<std::size_t>(q * m.d_model + h * dh);
        const std::int64_t base = a.plan->slot(level, q, h, 0);
        for (int p = 0; p < m.n_points; ++p) {
          if (a.mask != nullptr && !a.mask->keep(q, h, level, p)) continue;
          const std::int32_t prob_q =
              quant::to_fraction_code(prow[level * m.n_points + p], a.frac_bits);
          if (prob_q == 0) continue;
          const std::int64_t s = (base + p) * 4;
          const std::int16_t* r0 = offs[s + 0] >= 0 ? a.codes + offs[s + 0] : zero;
          const std::int16_t* r1 = offs[s + 1] >= 0 ? a.codes + offs[s + 1] : zero;
          const std::int16_t* r2 = offs[s + 2] >= 0 ? a.codes + offs[s + 2] : zero;
          const std::int16_t* r3 = offs[s + 3] >= 0 ? a.codes + offs[s + 3] : zero;
          const std::int32_t t0_q = quant::to_fraction_code(t0s[base + p], a.frac_bits);
          const std::int32_t t1_q = quant::to_fraction_code(t1s[base + p], a.frac_bits);
          for (int c = 0; c < dh; ++c) {
            const std::int32_t bi = quant::bi_horner_int(r0[c], r1[c], r2[c], r3[c],
                                                         t0_q, t1_q, a.frac_bits);
            arow[c] += quant::ag_weight_int(bi, prob_q, a.frac_bits);
          }
        }
      }
    }
  });
}

namespace {

using simd::Isa;

bool tier_compiled(Isa isa) noexcept {
  switch (isa) {
    case Isa::kAvx2: return avx2_compiled();
    case Isa::kNeon: return neon_compiled();
    case Isa::kScalar: break;
  }
  return true;
}

}  // namespace

TierResolution resolve_tier() {
  const simd::IsaRequest req = simd::requested_isa();
  TierResolution r;
  if (!req.valid) {
    r.reason = "unknown DEFA_SIMD value '" + req.raw +
               "' (known: auto, scalar, avx2, neon)";
    return r;
  }
  if (req.forced) {
    if (!tier_compiled(req.isa)) {
      r.reason = std::string("DEFA_SIMD=") + simd::isa_name(req.isa) + " but the " +
                 simd::isa_name(req.isa) +
                 " kernels are not compiled into this binary (DEFA_KERNELS_SIMD "
                 "cmake knob off, or wrong target architecture)";
    } else if (!simd::cpu_supports(req.isa)) {
      r.reason = std::string("DEFA_SIMD=") + simd::isa_name(req.isa) +
                 " but this CPU does not support " + simd::isa_name(req.isa);
    } else {
      r.isa = req.isa;
    }
    return r;
  }
  for (const Isa candidate : {Isa::kAvx2, Isa::kNeon}) {
    if (tier_compiled(candidate) && simd::cpu_supports(candidate)) {
      r.isa = candidate;
      return r;
    }
  }
  r.isa = Isa::kScalar;
  return r;
}

}  // namespace simd_detail

namespace {

using simd::Isa;
using simd_detail::TierResolution;

class SimdBackend final : public Backend {
 public:
  [[nodiscard]] const std::string& name() const noexcept override {
    static const std::string kName = "simd";
    return kName;
  }

  [[nodiscard]] bool wants_plan() const noexcept override { return true; }

  [[nodiscard]] std::string unavailable_reason() const override {
    return simd_detail::resolve_tier().reason;
  }

  [[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b) const override {
    return nn::matmul(a, b);
  }

  [[nodiscard]] Tensor linear(const Tensor& x, const Tensor& w,
                              const Tensor* bias) const override {
    return nn::linear(x, w, bias);
  }

  [[nodiscard]] Tensor softmax_lastdim(const Tensor& t) const override {
    return nn::softmax_lastdim(t);
  }

  [[nodiscard]] Tensor run_msgs(const ModelConfig& m, const Tensor& values,
                                const Tensor& probs, const Tensor& locs,
                                const MsgsSpec& spec) const override {
    // Resolved per call, like kernels::default_backend_name re-reads
    // DEFA_BACKEND: getenv cost is noise next to the kernel, and tests can
    // flip tiers without rebuilding process state.
    const TierResolution res = simd_detail::resolve_tier();
    DEFA_CHECK(res.reason.empty(), "simd backend unavailable: " + res.reason);

    SamplingPlan local;
    const SamplingPlan* plan = spec.plan;
    if (plan == nullptr) {
      local = SamplingPlan::build(m, locs);
      plan = &local;
    }
    DEFA_CHECK(plan->matches(m), "simd backend: sampling plan does not match the model");

    Tensor out({m.n_in(), m.d_model});
    if (spec.quantized) {
      const quant::QTensor qvalues(values, spec.act_bits);
      simd_detail::QuantArgs qa;
      qa.m = &m;
      qa.codes = qvalues.codes().data();
      qa.probs = probs.data().data();
      qa.plan = plan;
      qa.mask = spec.point_mask;
      qa.out = out.data().data();
      qa.out_scale = qvalues.spec().scale;
      qa.frac_bits = spec.frac_bits;
      // Wide configs would overflow the vector tiers' int32 intermediates;
      // the scalar tier multiplies in int64 like the reference backend.
      const bool vector_safe =
          spec.act_bits + spec.frac_bits <= simd_detail::kMaxVectorQuantBits;
      switch (vector_safe ? res.isa : Isa::kScalar) {
        case Isa::kAvx2: simd_detail::run_quant_avx2(qa); break;
        case Isa::kNeon: simd_detail::run_quant_neon(qa); break;
        case Isa::kScalar: simd_detail::run_quant_scalar(qa); break;
      }
    } else {
      simd_detail::Fp32Args fa;
      fa.m = &m;
      fa.values = values.data().data();
      fa.probs = probs.data().data();
      fa.plan = plan;
      fa.mask = spec.point_mask;
      fa.out = out.data().data();
      switch (res.isa) {
        case Isa::kAvx2: simd_detail::run_fp32_avx2(fa); break;
        case Isa::kNeon: simd_detail::run_fp32_neon(fa); break;
        case Isa::kScalar: simd_detail::run_fp32_scalar(fa); break;
      }
    }
    return out;
  }
};

}  // namespace

namespace detail {
std::unique_ptr<Backend> make_simd_backend() { return std::make_unique<SimdBackend>(); }
}  // namespace detail

}  // namespace defa::kernels
