#include "kernels/plan.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "common/parallel.h"
#include "nn/bilinear.h"

namespace defa::kernels {

namespace {

// Process-wide totals (see PlanCache::GlobalStats): plan caches live
// per-pipeline inside pooled contexts, so the engine's monotonic metrics
// aggregate here instead of walking instances.
std::atomic<std::uint64_t> g_plan_hits{0};
std::atomic<std::uint64_t> g_plan_misses{0};
std::atomic<std::int64_t> g_plan_entries{0};

}  // namespace

SamplingPlan SamplingPlan::build(const ModelConfig& m, const Tensor& locs) {
  DEFA_CHECK(locs.rank() == 5 && locs.dim(0) == m.n_in() && locs.dim(1) == m.n_heads &&
                 locs.dim(2) == m.n_levels && locs.dim(3) == m.n_points &&
                 locs.dim(4) == 2,
             "SamplingPlan: locs must be (N, H, L, P, 2)");
  // Resolved offsets are int32: token * d_model + head * d_head < N_in * D.
  DEFA_CHECK(m.n_in() * m.d_model <= std::numeric_limits<std::int32_t>::max(),
             "SamplingPlan: value buffer too large for int32 offsets");

  SamplingPlan plan;
  plan.n_in_ = m.n_in();
  plan.n_heads_ = m.n_heads;
  plan.n_levels_ = m.n_levels;
  plan.n_points_ = m.n_points;
  plan.d_model_ = m.d_model;
  const std::int64_t slots =
      plan.n_in_ * m.n_heads * m.n_levels * m.n_points;
  plan.offsets_.assign(static_cast<std::size_t>(slots) * 4, kOutOfBounds);
  plan.t0_.resize(static_cast<std::size_t>(slots));
  plan.t1_.resize(static_cast<std::size_t>(slots));

  const int dh = m.d_head();
  parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t q = begin; q < end; ++q) {
      for (int h = 0; h < m.n_heads; ++h) {
        const std::int64_t col = static_cast<std::int64_t>(h) * dh;
        for (int l = 0; l < m.n_levels; ++l) {
          for (int p = 0; p < m.n_points; ++p) {
            const nn::BiPoint bp =
                nn::bi_locate(locs(q, h, l, p, 0), locs(q, h, l, p, 1));
            const std::int64_t s = plan.slot(l, q, h, p);
            plan.t0_[static_cast<std::size_t>(s)] = bp.t0;
            plan.t1_[static_cast<std::size_t>(s)] = bp.t1;
            nn::for_each_neighbor(m, l, bp, [&](int which, std::int64_t token) {
              plan.offsets_[static_cast<std::size_t>(s * 4 + which)] =
                  static_cast<std::int32_t>(token * m.d_model + col);
            });
          }
        }
      }
    }
  });
  return plan;
}

LocalityPlan LocalityPlan::build(const ModelConfig& m, const SamplingPlan& plan,
                                 std::int64_t tile_elems) {
  DEFA_CHECK(plan.matches(m), "LocalityPlan: sampling plan does not match the model");
  DEFA_CHECK(tile_elems >= 1, "LocalityPlan: tile_elems must be positive");

  LocalityPlan lp;
  lp.n_in_ = m.n_in();
  lp.n_levels_ = m.n_levels;
  lp.tile_elems_ = tile_elems;
  lp.order_.resize(static_cast<std::size_t>(m.n_levels) *
                   static_cast<std::size_t>(lp.n_in_));
  lp.tiles_.resize(static_cast<std::size_t>(m.n_levels));

  const std::int32_t* offs = plan.offsets().data();
  std::vector<std::int32_t> keys(static_cast<std::size_t>(lp.n_in_));
  for (int l = 0; l < m.n_levels; ++l) {
    // First-touch tile key: the first in-bounds resolved offset in
    // slot-scan order (h asc, p asc, corner asc), divided by tile_elems.
    // Offsets fit int32 (SamplingPlan::build checks), so keys do too.
    parallel_for(0, lp.n_in_, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t q = begin; q < end; ++q) {
        std::int32_t key = kNoTile;
        for (int h = 0; h < m.n_heads && key == kNoTile; ++h) {
          for (int p = 0; p < m.n_points && key == kNoTile; ++p) {
            const std::int64_t s = plan.slot(l, q, h, p) * 4;
            for (int k = 0; k < 4; ++k) {
              if (offs[s + k] >= 0) {
                key = static_cast<std::int32_t>(offs[s + k] / tile_elems);
                break;
              }
            }
          }
        }
        keys[static_cast<std::size_t>(q)] = key;
      }
    });

    // Stable sort by key keeps ties in ascending query order, so the
    // permutation is a pure function of (plan, tile_elems).
    std::int32_t* order =
        lp.order_.data() + static_cast<std::size_t>(l) * static_cast<std::size_t>(lp.n_in_);
    std::iota(order, order + lp.n_in_, 0);
    std::stable_sort(order, order + lp.n_in_, [&](std::int32_t a, std::int32_t b) {
      return keys[static_cast<std::size_t>(a)] < keys[static_cast<std::size_t>(b)];
    });

    std::vector<TileRange>& tiles = lp.tiles_[static_cast<std::size_t>(l)];
    for (std::int64_t i = 0; i < lp.n_in_;) {
      const std::int32_t key = keys[static_cast<std::size_t>(order[i])];
      std::int64_t j = i + 1;
      while (j < lp.n_in_ && keys[static_cast<std::size_t>(order[j])] == key) ++j;
      tiles.push_back(TileRange{key, i, j});
      i = j;
    }
  }
  return lp;
}

std::int64_t locality_tile_elems() {
  std::int64_t kb = 256;
  if (const char* env = std::getenv("DEFA_L2_KB"); env != nullptr && *env != '\0') {
    const long v = std::atol(env);
    if (v >= 1) kb = v;
  }
  return kb * 1024 / static_cast<std::int64_t>(sizeof(float));
}

PlanCache::~PlanCache() {
  const std::lock_guard<std::mutex> lock(mu_);
  g_plan_entries.fetch_sub(
      static_cast<std::int64_t>(plans_.size() + locality_.size()),
      std::memory_order_relaxed);
}

std::shared_ptr<const SamplingPlan> PlanCache::get(const std::string& key,
                                                   const ModelConfig& m,
                                                   const Tensor& locs) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = plans_.find(key);
  if (it != plans_.end()) {
    ++stats_.hits;
    g_plan_hits.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  ++stats_.misses;
  g_plan_misses.fetch_add(1, std::memory_order_relaxed);
  auto plan = std::make_shared<SamplingPlan>(SamplingPlan::build(m, locs));
  plans_.emplace(key, plan);
  g_plan_entries.fetch_add(1, std::memory_order_relaxed);
  return plan;
}

std::shared_ptr<const LocalityPlan> PlanCache::get_locality(const std::string& key,
                                                            const ModelConfig& m,
                                                            const SamplingPlan& plan,
                                                            std::int64_t tile_elems) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = locality_.find(key);
  if (it != locality_.end()) {
    ++stats_.hits;
    g_plan_hits.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  ++stats_.misses;
  g_plan_misses.fetch_add(1, std::memory_order_relaxed);
  auto lp = std::make_shared<LocalityPlan>(LocalityPlan::build(m, plan, tile_elems));
  locality_.emplace(key, lp);
  g_plan_entries.fetch_add(1, std::memory_order_relaxed);
  return lp;
}

std::size_t PlanCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return plans_.size() + locality_.size();
}

PlanCache::Stats PlanCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PlanCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  g_plan_entries.fetch_sub(
      static_cast<std::int64_t>(plans_.size() + locality_.size()),
      std::memory_order_relaxed);
  plans_.clear();
  locality_.clear();
}

PlanCache::GlobalStats PlanCache::global_stats() noexcept {
  GlobalStats g;
  g.hits = g_plan_hits.load(std::memory_order_relaxed);
  g.misses = g_plan_misses.load(std::memory_order_relaxed);
  const std::int64_t entries = g_plan_entries.load(std::memory_order_relaxed);
  g.entries = entries > 0 ? static_cast<std::uint64_t>(entries) : 0;
  return g;
}

void PlanCache::reset_global_counters() noexcept {
  g_plan_hits.store(0, std::memory_order_relaxed);
  g_plan_misses.store(0, std::memory_order_relaxed);
}

}  // namespace defa::kernels
