#include "kernels/plan.h"

#include <limits>

#include "common/parallel.h"
#include "nn/bilinear.h"

namespace defa::kernels {

SamplingPlan SamplingPlan::build(const ModelConfig& m, const Tensor& locs) {
  DEFA_CHECK(locs.rank() == 5 && locs.dim(0) == m.n_in() && locs.dim(1) == m.n_heads &&
                 locs.dim(2) == m.n_levels && locs.dim(3) == m.n_points &&
                 locs.dim(4) == 2,
             "SamplingPlan: locs must be (N, H, L, P, 2)");
  // Resolved offsets are int32: token * d_model + head * d_head < N_in * D.
  DEFA_CHECK(m.n_in() * m.d_model <= std::numeric_limits<std::int32_t>::max(),
             "SamplingPlan: value buffer too large for int32 offsets");

  SamplingPlan plan;
  plan.n_in_ = m.n_in();
  plan.n_heads_ = m.n_heads;
  plan.n_levels_ = m.n_levels;
  plan.n_points_ = m.n_points;
  plan.d_model_ = m.d_model;
  const std::int64_t slots =
      plan.n_in_ * m.n_heads * m.n_levels * m.n_points;
  plan.offsets_.assign(static_cast<std::size_t>(slots) * 4, kOutOfBounds);
  plan.t0_.resize(static_cast<std::size_t>(slots));
  plan.t1_.resize(static_cast<std::size_t>(slots));

  const int dh = m.d_head();
  parallel_for(0, m.n_in(), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t q = begin; q < end; ++q) {
      for (int h = 0; h < m.n_heads; ++h) {
        const std::int64_t col = static_cast<std::int64_t>(h) * dh;
        for (int l = 0; l < m.n_levels; ++l) {
          for (int p = 0; p < m.n_points; ++p) {
            const nn::BiPoint bp =
                nn::bi_locate(locs(q, h, l, p, 0), locs(q, h, l, p, 1));
            const std::int64_t s = plan.slot(l, q, h, p);
            plan.t0_[static_cast<std::size_t>(s)] = bp.t0;
            plan.t1_[static_cast<std::size_t>(s)] = bp.t1;
            nn::for_each_neighbor(m, l, bp, [&](int which, std::int64_t token) {
              plan.offsets_[static_cast<std::size_t>(s * 4 + which)] =
                  static_cast<std::int32_t>(token * m.d_model + col);
            });
          }
        }
      }
    }
  });
  return plan;
}

std::shared_ptr<const SamplingPlan> PlanCache::get(const std::string& key,
                                                   const ModelConfig& m,
                                                   const Tensor& locs) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = plans_.find(key);
  if (it != plans_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  auto plan = std::make_shared<SamplingPlan>(SamplingPlan::build(m, locs));
  plans_.emplace(key, plan);
  return plan;
}

std::size_t PlanCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

PlanCache::Stats PlanCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PlanCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
}

}  // namespace defa::kernels
