#include "quant/fixed_point.h"

#include <algorithm>
#include <cmath>

namespace defa::quant {

QuantSpec QuantSpec::fit(std::span<const float> data, int bits) {
  DEFA_CHECK(bits >= 2 && bits <= 16, "supported widths are 2..16 bits");
  float max_abs = 0.0f;
  for (float v : data) max_abs = std::max(max_abs, std::abs(v));
  QuantSpec spec;
  spec.bits = bits;
  spec.scale = max_abs > 0.0f ? max_abs / static_cast<float>(spec.qmax()) : 1.0f;
  return spec;
}

std::int32_t quantize_value(float v, const QuantSpec& spec) noexcept {
  const float scaled = v / spec.scale;
  const std::int32_t code = static_cast<std::int32_t>(std::lround(scaled));
  return std::clamp(code, spec.qmin(), spec.qmax());
}

QTensor::QTensor(const Tensor& t, int bits) : QTensor(t, QuantSpec::fit(t.data(), bits)) {}

QTensor::QTensor(const Tensor& t, const QuantSpec& spec) : shape_(t.shape()), spec_(spec) {
  codes_.resize(static_cast<std::size_t>(t.numel()));
  std::span<const float> src = t.data();
  for (std::size_t i = 0; i < codes_.size(); ++i) {
    codes_[i] = static_cast<std::int16_t>(quantize_value(src[i], spec_));
  }
}

Tensor QTensor::dequantize() const {
  Tensor t(shape_);
  std::span<float> dst = t.data();
  for (std::size_t i = 0; i < codes_.size(); ++i) {
    dst[i] = dequantize_value(codes_[i], spec_);
  }
  return t;
}

Tensor fake_quantize(const Tensor& t, int bits) {
  return QTensor(t, bits).dequantize();
}

}  // namespace defa::quant
