#pragma once

/// \file qmsgs.h
/// Integer-domain MSGS datapath kernels — the bit-level golden model of the
/// reconfigurable PE array's BA mode (Sec. 4.3): Horner-form bilinear
/// interpolation on INTn value codes with fixed-point fractions, followed by
/// the aggregation multiply with a fixed-point attention probability.
///
/// The cycle-accurate simulator counts cycles for this exact computation;
/// the functional pipeline uses it to measure quantization error.

#include <cstdint>

namespace defa::quant {

/// Horner-form BI (Eq. 4) on integer codes.  `t0_q`/`t1_q` are fractions in
/// Q0.`frac_bits` fixed point (0 <= t < 1).  The result stays at the value
/// scale.  Matches a datapath with 3 multipliers and 7 adders: products are
/// truncated back to the value scale after each fraction multiply
/// (round-to-nearest, as a hardware rounder would).
[[nodiscard]] std::int32_t bi_horner_int(std::int32_t n0, std::int32_t n1,
                                         std::int32_t n2, std::int32_t n3,
                                         std::int32_t t0_q, std::int32_t t1_q,
                                         int frac_bits) noexcept;

/// Aggregation step: value code times Q0.`frac_bits` probability, rounded
/// back to the value scale.  Accumulation happens in int32 outside.
[[nodiscard]] std::int32_t ag_weight_int(std::int32_t value_code, std::int32_t prob_q,
                                         int frac_bits) noexcept;

/// Quantize a probability/fraction in [0,1] to Q0.`frac_bits` fixed point.
[[nodiscard]] std::int32_t to_fraction_code(float f, int frac_bits) noexcept;

}  // namespace defa::quant
