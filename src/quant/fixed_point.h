#pragma once

/// \file fixed_point.h
/// Symmetric per-tensor fixed-point quantization.  The paper quantizes the
/// MSDeformAttn modules to INT12 (Sec. 5.1.1) and reports that INT8 loses
/// 9.7 AP on average; both widths are supported so the ablation can be
/// reproduced.

#include <cstdint>
#include <span>

#include "tensor/tensor.h"

namespace defa::quant {

/// Quantization parameters: value = code * scale, codes in
/// [-(2^(bits-1)-1), 2^(bits-1)-1] (symmetric, no negative-extreme code).
struct QuantSpec {
  int bits = 12;
  float scale = 1.0f;

  [[nodiscard]] std::int32_t qmax() const noexcept { return (1 << (bits - 1)) - 1; }
  [[nodiscard]] std::int32_t qmin() const noexcept { return -qmax(); }

  /// Spec covering the absolute maximum of `data` with the given width.
  [[nodiscard]] static QuantSpec fit(std::span<const float> data, int bits);
};

/// Quantize a single value (round-to-nearest, saturating).
[[nodiscard]] std::int32_t quantize_value(float v, const QuantSpec& spec) noexcept;
[[nodiscard]] inline float dequantize_value(std::int32_t code, const QuantSpec& spec) noexcept {
  return static_cast<float>(code) * spec.scale;
}

/// Quantized tensor: int16 codes (INT12/INT8 both fit) + the shared spec.
class QTensor {
 public:
  QTensor() = default;
  /// Quantize `t` with a freshly-fitted per-tensor spec.
  QTensor(const Tensor& t, int bits);
  /// Quantize `t` with an externally-chosen spec (e.g. shared across layers).
  QTensor(const Tensor& t, const QuantSpec& spec);

  [[nodiscard]] const QuantSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::vector<std::int64_t>& shape() const noexcept { return shape_; }
  [[nodiscard]] std::int64_t numel() const noexcept {
    return static_cast<std::int64_t>(codes_.size());
  }
  [[nodiscard]] std::int16_t code(std::int64_t i) const {
    DEFA_DCHECK(i >= 0 && i < numel(), "code index");
    return codes_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] float value(std::int64_t i) const {
    return dequantize_value(code(i), spec_);
  }
  [[nodiscard]] std::span<const std::int16_t> codes() const noexcept { return codes_; }

  /// Dequantize the whole tensor back to fp32 (round-trip helper).
  [[nodiscard]] Tensor dequantize() const;

 private:
  std::vector<std::int16_t> codes_;
  std::vector<std::int64_t> shape_;
  QuantSpec spec_;
};

/// Round-trip quantization error helper: dequant(quant(t)).
[[nodiscard]] Tensor fake_quantize(const Tensor& t, int bits);

/// Quantize a fraction in [0, 1) to `bits`-bit fixed point (used for the
/// BI fractions t0/t1 in the hardware datapath).
[[nodiscard]] inline float quantize_fraction(float f, int bits) noexcept {
  const float steps = static_cast<float>(1 << bits);
  float q = static_cast<float>(static_cast<std::int64_t>(f * steps + 0.5f)) / steps;
  return q > 1.0f ? 1.0f : q;
}

}  // namespace defa::quant
