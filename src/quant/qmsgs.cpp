#include "quant/qmsgs.h"

#include <algorithm>
#include <cmath>

namespace defa::quant {

namespace {

/// Multiply an integer code by a Q0.fb fraction and round to nearest.
std::int32_t frac_mul(std::int64_t code, std::int64_t frac_q, int frac_bits) noexcept {
  const std::int64_t prod = code * frac_q;
  const std::int64_t half = std::int64_t{1} << (frac_bits - 1);
  return static_cast<std::int32_t>((prod + half) >> frac_bits);
}

}  // namespace

std::int32_t bi_horner_int(std::int32_t n0, std::int32_t n1, std::int32_t n2,
                           std::int32_t n3, std::int32_t t0_q, std::int32_t t1_q,
                           int frac_bits) noexcept {
  // S = N0 + (N2-N0)*t0 + [(N1-N0) + (N3-N2-N1+N0)*t0] * t1     (Eq. 4)
  const std::int32_t vertical = frac_mul(n2 - n0, t0_q, frac_bits);
  const std::int32_t cross = frac_mul(n3 - n2 - n1 + n0, t0_q, frac_bits);
  const std::int32_t horizontal = frac_mul((n1 - n0) + cross, t1_q, frac_bits);
  return n0 + vertical + horizontal;
}

std::int32_t ag_weight_int(std::int32_t value_code, std::int32_t prob_q,
                           int frac_bits) noexcept {
  return frac_mul(value_code, prob_q, frac_bits);
}

std::int32_t to_fraction_code(float f, int frac_bits) noexcept {
  const float clamped = std::clamp(f, 0.0f, 1.0f);
  const std::int64_t steps = std::int64_t{1} << frac_bits;
  const std::int64_t code = std::llround(static_cast<double>(clamped) * steps);
  return static_cast<std::int32_t>(std::min<std::int64_t>(code, steps - 1));
}

}  // namespace defa::quant
