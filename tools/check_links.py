#!/usr/bin/env python3
"""Fail on dead relative links in Markdown files.

    python3 tools/check_links.py README.md docs/*.md

Checks every inline Markdown link `[text](target)`:
  * external schemes (http/https/mailto) are skipped;
  * `#fragment`-only targets must match a heading in the same file;
  * relative targets must exist on disk (resolved against the file's
    directory), and a `path#fragment` target must match a heading in the
    linked Markdown file.

Exits nonzero listing every dead link. Stdlib only.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def heading_anchor(heading: str) -> str:
    """GitHub-style anchor: lowercase, drop punctuation, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return re.sub(r"[ ]", "-", text)


def anchors_of(path: Path) -> set:
    # Strip code fences first: a column-0 '# comment' in a shell block is
    # not a heading.
    text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return {heading_anchor(h) for h in HEADING_RE.findall(text)}


def check_file(path: Path) -> list:
    text = path.read_text(encoding="utf-8")
    text = CODE_FENCE_RE.sub("", text)  # links inside code blocks aren't links
    errors = []
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:
            continue
        if target.startswith("#"):
            if heading_anchor(target[1:]) not in anchors_of(path):
                errors.append(f"{path}: dead anchor '{target}'")
            continue
        rel, _, fragment = target.partition("#")
        dest = (path.parent / rel).resolve()
        if not dest.exists():
            errors.append(f"{path}: dead link '{target}' -> {dest}")
            continue
        if fragment and dest.suffix == ".md":
            if heading_anchor(fragment) not in anchors_of(dest):
                errors.append(f"{path}: dead anchor '{target}'")
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        errors.extend(check_file(path))
    for e in errors:
        print(e, file=sys.stderr)
    if not errors:
        print(f"ok: {len(argv) - 1} file(s), no dead relative links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
