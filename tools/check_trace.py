#!/usr/bin/env python3
"""Validate a DEFA trace dump (Chrome trace-event JSON).

    python3 tools/check_trace.py trace.json [--attribution 0.95]

Checks, in order (docs/OBSERVABILITY.md):
  * document shape: the object form with a `traceEvents` array; every
    event carries `name`/`ph`/`pid`/`tid` (+ `ts`, and `dur` for "X");
    every `args.trace_id` is 16 lowercase hex digits;
  * span sanity: non-negative durations, and every traced server-side
    span contained in its request's `request` span (same pid + trace_id,
    small tolerance for microsecond rounding);
  * correlation: when a client lane is present (any `rpc` span), every
    trace_id seen on a server-side span also appears on a client `rpc`
    span — the ids really joined across the wire;
  * attribution (with --attribution F): for every traced `request` span,
    the union of its named child spans covers at least fraction F of its
    duration — the taxonomy accounts for where server time goes.
    Requests shorter than --min-request-us (default 200) are skipped:
    the fixed few-microsecond dispatch handoff between the `queue` and
    `run` spans dominates a memo-hit request's total, and measuring it
    as "unattributed" would say nothing about the taxonomy.

Exits nonzero listing every violation. Stdlib only.
"""

import argparse
import json
import re
import sys

TRACE_ID_RE = re.compile(r"^[0-9a-f]{16}$")
SERVER_CATS = {"serve", "engine", "kernel"}
# Microsecond-rounding slack for containment checks.
SLACK_US = 10


def fail(errors, message):
    errors.append(message)


def load_events(path, errors):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(errors, f"{path}: unreadable or not JSON: {e}")
        return []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(errors, f"{path}: not the object form with a traceEvents array")
        return []
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(errors, f"{path}: traceEvents is not an array")
        return []
    return events


def check_schema(events, errors):
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            fail(errors, f"{where}: not an object")
            continue
        for key, types in (("name", str), ("ph", str), ("pid", (int, float)),
                           ("tid", (int, float))):
            if not isinstance(e.get(key), types):
                fail(errors, f"{where}: missing or mistyped '{key}'")
        ph = e.get("ph")
        if ph not in ("M", "X", "i"):
            fail(errors, f"{where}: unexpected ph {ph!r}")
            continue
        if ph != "M":
            if not isinstance(e.get("ts"), (int, float)):
                fail(errors, f"{where}: missing or mistyped 'ts'")
            if ph == "X":
                dur = e.get("dur")
                if not isinstance(dur, (int, float)):
                    fail(errors, f"{where}: X event without numeric 'dur'")
                elif dur < 0:
                    fail(errors, f"{where}: negative duration {dur}")
        args = e.get("args", {})
        if not isinstance(args, dict):
            fail(errors, f"{where}: 'args' is not an object")
            continue
        tid = args.get("trace_id")
        if tid is not None and not (isinstance(tid, str) and TRACE_ID_RE.match(tid)):
            fail(errors, f"{where}: malformed trace_id {tid!r}")


def spans_of(events):
    """Well-formed X events (schema violations are reported separately)."""
    out = []
    for e in events:
        if not isinstance(e, dict) or e.get("ph") != "X":
            continue
        if not isinstance(e.get("ts"), (int, float)):
            continue
        if not isinstance(e.get("dur"), (int, float)) or e["dur"] < 0:
            continue
        out.append(e)
    return out


def trace_id_of(e):
    args = e.get("args")
    tid = args.get("trace_id") if isinstance(args, dict) else None
    return tid if isinstance(tid, str) and TRACE_ID_RE.match(tid) else None


def check_containment(spans, errors):
    """Every traced server-side span sits inside its request span."""
    requests = {}  # (pid, trace_id) -> list of request spans
    for e in spans:
        tid = trace_id_of(e)
        if tid and e["name"] == "request":
            requests.setdefault((e["pid"], tid), []).append(e)
    for e in spans:
        tid = trace_id_of(e)
        if tid is None or e["name"] == "request":
            continue
        if e.get("cat") not in SERVER_CATS:
            continue  # client rpc spans legitimately start before admission
        key = (e["pid"], tid)
        if key not in requests:
            continue  # partial dump (e.g. request span lost to ring overflow)
        contained = any(
            e["ts"] >= r["ts"] - SLACK_US
            and e["ts"] + e["dur"] <= r["ts"] + r["dur"] + SLACK_US
            for r in requests[key])
        if not contained:
            fail(errors,
                 f"span '{e['name']}' (trace_id {tid}, pid {e['pid']}) "
                 f"[{e['ts']}, {e['ts'] + e['dur']}] escapes its request span")
    return requests


def check_correlation(spans, errors):
    client_ids = {trace_id_of(e) for e in spans
                  if e.get("cat") == "client"} - {None}
    if not client_ids:
        return  # single-process dump: nothing to correlate
    server_ids = {trace_id_of(e) for e in spans
                  if e.get("cat") in SERVER_CATS} - {None}
    for tid in sorted(server_ids - client_ids):
        fail(errors, f"server span trace_id {tid} unknown to any client rpc span")


def union_us(intervals):
    total = 0
    last_end = None
    for start, end in sorted(intervals):
        if last_end is None or start > last_end:
            total += end - start
            last_end = end
        elif end > last_end:
            total += end - last_end
            last_end = end
    return total


def check_attribution(spans, requests, threshold, min_request_us, errors):
    checked = 0
    worst = 1.0
    for (pid, tid), reqs in requests.items():
        children = [
            e for e in spans
            if trace_id_of(e) == tid and e["pid"] == pid
            and e["name"] != "request" and e.get("cat") in SERVER_CATS
        ]
        for r in reqs:
            if r["dur"] < min_request_us:
                continue
            lo, hi = r["ts"], r["ts"] + r["dur"]
            covered = union_us(
                (max(lo, e["ts"]), min(hi, e["ts"] + e["dur"]))
                for e in children
                if e["ts"] + e["dur"] > lo and e["ts"] < hi)
            frac = covered / r["dur"]
            checked += 1
            worst = min(worst, frac)
            if frac < threshold:
                fail(errors,
                     f"request {tid} (pid {pid}): named child spans cover "
                     f"{100 * frac:.1f}% of {r['dur']}us < "
                     f"{100 * threshold:.0f}%")
    return checked, worst


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace JSON file")
    parser.add_argument("--attribution", type=float, default=None,
                        metavar="FRACTION",
                        help="require named child spans to cover this "
                             "fraction of every traced request span")
    parser.add_argument("--min-request-us", type=int, default=200,
                        help="skip attribution for request spans shorter "
                             "than this (fixed dispatch-handoff overhead "
                             "dominates micro requests)")
    opts = parser.parse_args()

    errors = []
    events = load_events(opts.trace, errors)
    check_schema(events, errors)
    spans = spans_of(events)
    requests = check_containment(spans, errors)
    check_correlation(spans, errors)

    summary = (f"{opts.trace}: {len(events)} events, {len(spans)} spans, "
               f"{len(requests)} traced requests")
    if opts.attribution is not None:
        if not requests:
            fail(errors, f"{opts.trace}: --attribution given but no traced "
                         "request spans found")
        checked, worst = check_attribution(spans, requests, opts.attribution,
                                           opts.min_request_us, errors)
        summary += f", attribution worst-case {100 * worst:.1f}% ({checked} checked)"

    if errors:
        for e in errors:
            print(f"FAIL {e}", file=sys.stderr)
        print(f"{len(errors)} violation(s) in {opts.trace}", file=sys.stderr)
        return 1
    print(f"ok: {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
