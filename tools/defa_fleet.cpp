// defa_fleet — sharded-fleet orchestrator and benchmark driver.
//
//   defa_fleet --config FILE [--serve-bin PATH] [--out FILE] [--shards N]
//              [--no-chaos] [--no-verify] [--quiet]
//              [--trace-sample N] [--trace-out FILE]
//              [--wire auto|v1|v2] [--pipeline N]
//
// --wire picks the protocol flavor every pool->shard connection speaks
// (auto negotiates binary v2 with transparent v1 fallback, docs/
// PROTOCOL.md); --pipeline N caps each shard connection's in-flight
// requests.  Both apply uniformly across the fleet, reconnects included.
//
// --trace-out runs the main-run shards with tracing on and merges their
// span dumps plus this process's client-side spans into one Chrome
// trace-event file — every shard a lane on a single timeline, spans
// joined across processes by trace_id (docs/OBSERVABILITY.md).
// --trace-sample N sets the client-side sampling stride (default 1 with
// --trace-out).
//
// Reads a declarative fleet config (docs/FLEET.md), spawns N defa_serve
// shard processes on ephemeral ports, routes the configured load mix
// through defa::client::Pool (consistent-hash routing by workload key,
// failover on shard death), and writes the merged fleet report to
// BENCH_fleet.json plus a plot-ready CSV sidecar.  When the config asks
// for chaos the orchestrator kills or drains one shard mid-load and the
// run only passes if every request still got exactly one response; when
// it asks for verify, fleet results are spot-checked bit-identical
// against a local in-process Engine.
//
// Exit status is 0 only when every run completed requests, chaos lost
// nothing, and verification found no mismatches — so CI can gate on it.
//
// Example:
//   defa_fleet --config scenarios/fleet_smoke.json --out BENCH_fleet.json

#include <fstream>
#include <iostream>
#include <string>

#include "fleet/orchestrator.h"
#include "obs/trace.h"

namespace {

int usage() {
  std::cerr << "usage: defa_fleet --config FILE [--serve-bin PATH] [--out FILE]\n"
            << "                  [--shards N] [--no-chaos] [--no-verify]\n"
            << "                  [--quiet] [--trace-sample N] [--trace-out FILE]\n"
            << "                  [--wire auto|v1|v2] [--pipeline N]\n";
  return 2;
}

/// "BENCH_fleet.json" -> "BENCH_fleet.csv" (no extension: append ".csv").
std::string csv_path_for(const std::string& json_path) {
  const std::size_t dot = json_path.find_last_of("./");
  if (dot != std::string::npos && json_path[dot] == '.') {
    return json_path.substr(0, dot) + ".csv";
  }
  return json_path + ".csv";
}

}  // namespace

int main(int argc, char** argv) try {
  std::string config_path;
  std::string out_path = "BENCH_fleet.json";
  defa::fleet::OrchestratorOptions options;
  int shards_override = 0;
  int trace_sample = 0;
  // Default the shard binary to defa_serve next to this binary, so
  // "./build/defa_fleet ..." works from any cwd.
  {
    const std::string self = argv[0];
    const std::size_t slash = self.find_last_of('/');
    options.serve_bin = slash == std::string::npos
                            ? "./defa_serve"
                            : self.substr(0, slash + 1) + "defa_serve";
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--config") {
      const char* v = value();
      if (v == nullptr) return usage();
      config_path = v;
    } else if (arg == "--serve-bin") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.serve_bin = v;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return usage();
      out_path = v;
    } else if (arg == "--shards") {
      const char* v = value();
      if (v == nullptr) return usage();
      shards_override = std::stoi(v);
      if (shards_override < 1) {
        std::cerr << "--shards must be >= 1\n";
        return 2;
      }
    } else if (arg == "--trace-sample") {
      const char* v = value();
      if (v == nullptr) return usage();
      trace_sample = std::stoi(v);
      if (trace_sample <= 0) {
        std::cerr << "--trace-sample N must be > 0\n";
        return 2;
      }
    } else if (arg == "--trace-out") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.trace_out = v;
    } else if (arg == "--wire") {
      const char* v = value();
      if (v == nullptr) return usage();
      const std::string wire = v;
      if (wire == "auto") {
        options.client.wire = defa::client::ClientOptions::Wire::kAuto;
      } else if (wire == "v1") {
        options.client.wire = defa::client::ClientOptions::Wire::kV1;
      } else if (wire == "v2") {
        options.client.wire = defa::client::ClientOptions::Wire::kV2;
      } else {
        std::cerr << "unknown wire mode '" << wire << "' (auto|v1|v2)\n";
        return 2;
      }
    } else if (arg == "--pipeline") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.client.max_inflight = std::stoi(v);
      if (options.client.max_inflight < 0) {
        std::cerr << "--pipeline N must be >= 0 (0 = unlimited)\n";
        return 2;
      }
    } else if (arg == "--no-chaos") {
      options.chaos = false;
    } else if (arg == "--no-verify") {
      options.verify = false;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return 2;
    }
  }
  if (config_path.empty()) return usage();

  defa::fleet::FleetConfig config = defa::fleet::load_fleet_config(config_path);
  if (shards_override > 0) config.shards = shards_override;
  if (!options.trace_out.empty()) {
    // Client-side sampling drives the cross-process correlation: sampled
    // requests carry their id over the wire and the traced shards record
    // under it.
    config.load.trace_sample_every = trace_sample > 0 ? trace_sample : 1;
    defa::obs::Tracer::instance().set_enabled(true);
  }

  const defa::fleet::FleetReport report =
      defa::fleet::run_fleet(config, options);

  defa::api::write_json_file(out_path, report.to_json());
  const std::string csv_path = csv_path_for(out_path);
  {
    std::ofstream csv(csv_path);
    if (!csv.good()) {
      std::cerr << "error: cannot write '" << csv_path << "'\n";
      return 1;
    }
    csv << report.to_csv();
  }

  bool ok = true;
  for (const defa::fleet::FleetRunReport& run : report.runs) {
    if (run.load.completed_ok == 0) ok = false;
    if (run.chaos.enabled && run.chaos.lost != 0) ok = false;
    if (run.verify.enabled && run.verify.mismatches != 0) ok = false;
  }
  std::cerr << "defa_fleet: " << report.runs.size() << " run(s) -> " << out_path
            << " and " << csv_path << (ok ? "" : " (FAILED)") << "\n";
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
