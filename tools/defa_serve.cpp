// defa_serve — JSON-lines request/response server over defa::serve.
//
//   defa_serve [--in FILE] [--out FILE] [--workers N]
//              [--queue-capacity N] [--policy fifo|locality]
//              [--locality-window N] [--max-contexts N] [--max-memo N]
//              [--no-memo] [--backend NAME] [--metrics]
//
// Reads one request per line (a bare EvalRequest object, or an envelope
// {"id", "priority", "timeout_ms", "request"}) from stdin or --in, serves
// them concurrently through the shared thread pool, and writes one JSON
// response per line in arrival order to stdout or --out.  --metrics
// appends a final {"metrics": ...} line (QPS, p50/p95/p99 latency,
// per-benchmark counters).
//
// Example:
//   printf '%s\n' '{"preset":"tiny","outputs":["functional"]}' | defa_serve

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "kernels/backend.h"
#include "serve/server_loop.h"

namespace {

int usage() {
  std::cerr << "usage: defa_serve [--in FILE] [--out FILE] [--workers N]\n"
            << "                  [--queue-capacity N] [--policy fifo|locality]\n"
            << "                  [--locality-window N] [--max-contexts N]\n"
            << "                  [--max-memo N] [--no-memo] [--backend NAME]\n"
            << "                  [--metrics]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) try {
  std::string in_path, out_path;
  defa::serve::ServeLoopOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--in") {
      const char* v = value();
      if (v == nullptr) return usage();
      in_path = v;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return usage();
      out_path = v;
    } else if (arg == "--workers") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.server.max_concurrency = std::stoi(v);
    } else if (arg == "--queue-capacity") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.server.queue_capacity = static_cast<std::size_t>(std::stoul(v));
    } else if (arg == "--policy") {
      const char* v = value();
      if (v == nullptr) return usage();
      const auto policy = defa::serve::policy_from_name(v);
      if (!policy.has_value()) {
        std::cerr << "unknown policy '" << v << "' (fifo|locality)\n";
        return 2;
      }
      options.server.policy = *policy;
    } else if (arg == "--locality-window") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.server.locality_window = std::stoi(v);
    } else if (arg == "--max-contexts") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.server.engine.max_contexts = static_cast<std::size_t>(std::stoul(v));
    } else if (arg == "--max-memo") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.server.engine.max_memo = static_cast<std::size_t>(std::stoul(v));
    } else if (arg == "--no-memo") {
      options.server.engine.memoize_results = false;
    } else if (arg == "--backend") {
      const char* v = value();
      if (v == nullptr) return usage();
      if (defa::kernels::find_backend(v) == nullptr) {
        std::cerr << "unknown backend '" << v
                  << "' (known: " << defa::kernels::known_backends() << ")\n";
        return 2;
      }
      options.server.engine.backend = v;
    } else if (arg == "--metrics") {
      options.emit_metrics = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return 2;
    }
  }

  std::ifstream in_file;
  if (!in_path.empty()) {
    in_file.open(in_path);
    if (!in_file.good()) {
      std::cerr << "error: cannot open '" << in_path << "'\n";
      return 1;
    }
  }
  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path);
    if (!out_file.good()) {
      std::cerr << "error: cannot open '" << out_path << "' for writing\n";
      return 1;
    }
  }
  const int bad = defa::serve::run_serve_loop(
      in_path.empty() ? std::cin : in_file, out_path.empty() ? std::cout : out_file,
      options);
  if (bad > 0) std::cerr << bad << " malformed request line(s)\n";
  return 0;
} catch (const std::exception& e) {
  // Also covers std::stoi/stoul on malformed flag values.
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
