// defa_serve — request/response server over defa::serve.
//
//   defa_serve [--in FILE] [--out FILE] [--listen PORT] [--port-file FILE]
//              [--workers N] [--queue-capacity N] [--policy fifo|locality]
//              [--locality-window N] [--max-contexts N] [--max-memo N]
//              [--no-memo] [--backend NAME] [--metrics]
//              [--metrics-interval SEC] [--metrics-out FILE]
//              [--trace] [--trace-sample N] [--trace-out FILE]
//              [--shard-id N] [--shard-count N] [--shard-name NAME]
//              [--virtual-nodes N] [--max-wire N]
//
// Observability (docs/OBSERVABILITY.md): --metrics-interval emits one
// MetricsSnapshot JSON line per interval to stderr (or --metrics-out
// FILE), with a final line flushed on drain.  --trace enables the span
// recorder (client-sampled requests are honored); --trace-sample N
// additionally self-samples every Nth untraced admission; --trace-out
// FILE dumps the recorded spans as Chrome trace-event JSON at exit
// (implies --trace).  Clients can also pull spans live via the protocol
// `trace` method.
//
// The --shard-* flags stamp a fleet identity (docs/FLEET.md) onto the
// server, reported by the protocol `shard_info` method; scheduling itself
// is shard-agnostic (routing lives in defa::client::Pool).
//
// Speaks three wire modes, auto-detected per session from the first frame
// (docs/PROTOCOL.md):
//   * Protocol v1 — {"v":1,"id":...,"method":...,"params":...} envelopes,
//     completion-order responses, typed error codes, and the
//     eval/eval_batch/metrics/backends/experiments/experiment/ping/drain
//     methods.  defa::client::Client speaks this.
//   * Protocol v2 — negotiated per session via the v1 `hello` method:
//     length-prefixed binary frames with streamed eval_batch chunks.
//     --max-wire 1 refuses the upgrade, pinning every session to v1.
//   * legacy JSON-lines — bare EvalRequest or {"id","priority",
//     "timeout_ms","request"} lines answered in arrival order.
//
// Without --listen it serves stdin→stdout (or --in/--out file pipes) and
// exits at EOF.  With --listen PORT it accepts any number of concurrent
// TCP clients on 127.0.0.1:PORT (PORT 0 picks an ephemeral port, printed
// to stderr and written to --port-file) over one shared scheduler, until
// SIGTERM/SIGINT or a protocol `drain` stops it gracefully: admission
// stops, in-flight requests finish, metrics flush, clients close.
//
// Example:
//   printf '%s\n' '{"preset":"tiny","outputs":["functional"]}' | defa_serve
//   defa_serve --listen 0 --port-file port.txt &

#include <atomic>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "kernels/backend.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "serve/server_loop.h"
#include "serve/transport.h"
#include "serve/wire/format.h"

#include <unistd.h>

namespace {

int usage() {
  std::cerr << "usage: defa_serve [--in FILE] [--out FILE] [--listen PORT]\n"
            << "                  [--port-file FILE] [--workers N]\n"
            << "                  [--queue-capacity N] [--policy fifo|locality]\n"
            << "                  [--locality-window N] [--max-contexts N]\n"
            << "                  [--max-memo N] [--no-memo] [--backend NAME]\n"
            << "                  [--metrics] [--metrics-interval SEC]\n"
            << "                  [--metrics-out FILE] [--trace]\n"
            << "                  [--trace-sample N] [--trace-out FILE]\n"
            << "                  [--shard-id N] [--shard-count N]\n"
            << "                  [--shard-name NAME] [--virtual-nodes N]\n"
            << "                  [--max-wire N]\n";
  return 2;
}

std::atomic<defa::serve::TcpListener*> g_listener{nullptr};

extern "C" void handle_term_signal(int) {
  // Async-signal-safe: one write to the listener's self-pipe.  The accept
  // loop returns, and main() drains gracefully.
  defa::serve::TcpListener* l = g_listener.load(std::memory_order_acquire);
  if (l != nullptr) l->close();
}

int run_listen(int port, const std::string& port_file,
               const defa::serve::ServeLoopOptions& options) {
  defa::serve::Server server(options.server);
  std::unique_ptr<defa::serve::MetricsEmitter> emitter;
  if (options.metrics_interval_sec > 0) {
    emitter = std::make_unique<defa::serve::MetricsEmitter>(
        server,
        options.metrics_stream != nullptr ? *options.metrics_stream : std::cerr,
        options.metrics_interval_sec);
  }
  defa::serve::TcpListener listener(port);
  g_listener.store(&listener, std::memory_order_release);
  std::signal(SIGTERM, handle_term_signal);
  std::signal(SIGINT, handle_term_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::cerr << "defa_serve: listening on 127.0.0.1:" << listener.port() << "\n";
  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    if (!pf.good()) {
      std::cerr << "error: cannot write '" << port_file << "'\n";
      return 1;
    }
    pf << listener.port() << "\n";
  }

  defa::serve::ProtocolOptions protocol;
  protocol.max_wire_version = options.max_wire_version;
  // A client-issued `drain` stops the whole process, not just its session.
  protocol.on_drain = [&listener] { listener.close(); };

  // Each client gets a dedicated reader thread; evaluation itself runs on
  // the shared ThreadPool via the Server, so connection readers blocking
  // on I/O never occupy compute slots.  Finished sessions move themselves
  // from `live` to `finished`, and the accept loop reaps them — a
  // long-running server does not accumulate one fd + thread handle per
  // disconnected client until accept() hits EMFILE.
  struct Session {
    std::thread thread;
    std::shared_ptr<defa::serve::Connection> conn;
  };
  std::mutex mu;
  std::map<std::uint64_t, Session> live;  // guarded by mu
  std::vector<std::thread> finished;      // guarded by mu
  std::uint64_t next_session = 0;

  const auto reap = [&] {
    std::vector<std::thread> done;
    {
      const std::lock_guard<std::mutex> lock(mu);
      done.swap(finished);
    }
    for (std::thread& t : done) t.join();
  };

  while (auto accepted = listener.accept()) {
    reap();
    std::shared_ptr<defa::serve::Connection> conn = std::move(accepted);
    const std::lock_guard<std::mutex> lock(mu);
    const std::uint64_t id = next_session++;
    Session& session = live[id];
    session.conn = conn;
    // The session thread cannot reach its cleanup until this lock is
    // released, so `session.thread` is always set before it is moved.
    session.thread = std::thread([conn, id, &server, &protocol, &mu, &live,
                                  &finished] {
      defa::serve::run_serve_connection(*conn, server, protocol);
      const std::lock_guard<std::mutex> lock(mu);
      const auto it = live.find(id);
      if (it != live.end()) {  // absent when shutdown already collected it
        finished.push_back(std::move(it->second.thread));
        live.erase(it);
      }
    });
  }

  // Shutdown (signal or drain): stop admitting and finish in-flight work,
  // then unblock every connection reader and join the sessions.
  server.drain();
  std::vector<std::thread> to_join;
  {
    const std::lock_guard<std::mutex> lock(mu);
    for (auto& [id, session] : live) {
      session.conn->shutdown();
      to_join.push_back(std::move(session.thread));
    }
    live.clear();
  }
  for (std::thread& t : to_join) t.join();
  reap();  // sessions that self-retired between collection and join
  g_listener.store(nullptr, std::memory_order_release);
  emitter.reset();  // final metrics line reflects the drained server

  if (options.emit_metrics) {
    defa::api::Json m = defa::api::Json::object();
    m["metrics"] = server.metrics().to_json();
    std::cout << m.dump() << "\n" << std::flush;
  }
  std::cerr << "defa_serve: drained, " << server.metrics().completed_ok
            << " requests served\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  std::string in_path, out_path, port_file;
  std::string metrics_out_path, trace_out_path;
  bool trace = false;
  int listen_port = -1;  // -1 = stdio mode
  defa::serve::ServeLoopOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--in") {
      const char* v = value();
      if (v == nullptr) return usage();
      in_path = v;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return usage();
      out_path = v;
    } else if (arg == "--listen") {
      const char* v = value();
      if (v == nullptr) return usage();
      listen_port = std::stoi(v);
      if (listen_port < 0 || listen_port > 65535) {
        std::cerr << "--listen PORT must be in [0, 65535]\n";
        return 2;
      }
    } else if (arg == "--port-file") {
      const char* v = value();
      if (v == nullptr) return usage();
      port_file = v;
    } else if (arg == "--workers") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.server.max_concurrency = std::stoi(v);
    } else if (arg == "--queue-capacity") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.server.queue_capacity = static_cast<std::size_t>(std::stoul(v));
    } else if (arg == "--policy") {
      const char* v = value();
      if (v == nullptr) return usage();
      const auto policy = defa::serve::policy_from_name(v);
      if (!policy.has_value()) {
        std::cerr << "unknown policy '" << v << "' (fifo|locality)\n";
        return 2;
      }
      options.server.policy = *policy;
    } else if (arg == "--locality-window") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.server.locality_window = std::stoi(v);
    } else if (arg == "--max-contexts") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.server.engine.max_contexts = static_cast<std::size_t>(std::stoul(v));
    } else if (arg == "--max-memo") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.server.engine.max_memo = static_cast<std::size_t>(std::stoul(v));
    } else if (arg == "--no-memo") {
      options.server.engine.memoize_results = false;
    } else if (arg == "--backend") {
      const char* v = value();
      if (v == nullptr) return usage();
      if (defa::kernels::find_backend(v) == nullptr) {
        std::cerr << "unknown backend '" << v
                  << "' (known: " << defa::kernels::known_backends() << ")\n";
        return 2;
      }
      options.server.engine.backend = v;
    } else if (arg == "--shard-id") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.server.shard_id = std::stoi(v);
    } else if (arg == "--shard-count") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.server.shard_count = std::stoi(v);
    } else if (arg == "--shard-name") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.server.shard_name = v;
    } else if (arg == "--virtual-nodes") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.server.ring_virtual_nodes = std::stoi(v);
    } else if (arg == "--max-wire") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.max_wire_version = std::stoi(v);
      if (options.max_wire_version < 1 ||
          options.max_wire_version > defa::serve::wire::kWireVersion) {
        std::cerr << "--max-wire N must be in [1, "
                  << defa::serve::wire::kWireVersion << "]\n";
        return 2;
      }
    } else if (arg == "--metrics") {
      options.emit_metrics = true;
    } else if (arg == "--metrics-interval") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.metrics_interval_sec = std::stod(v);
      if (options.metrics_interval_sec <= 0) {
        std::cerr << "--metrics-interval SEC must be > 0\n";
        return 2;
      }
    } else if (arg == "--metrics-out") {
      const char* v = value();
      if (v == nullptr) return usage();
      metrics_out_path = v;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--trace-sample") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.server.trace_sample_every = std::stoi(v);
      if (options.server.trace_sample_every <= 0) {
        std::cerr << "--trace-sample N must be > 0\n";
        return 2;
      }
      trace = true;
    } else if (arg == "--trace-out") {
      const char* v = value();
      if (v == nullptr) return usage();
      trace_out_path = v;
      trace = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return 2;
    }
  }

  if (trace) defa::obs::Tracer::instance().set_enabled(true);

  std::ofstream metrics_file;
  if (!metrics_out_path.empty()) {
    if (options.metrics_interval_sec <= 0) {
      std::cerr << "--metrics-out requires --metrics-interval SEC\n";
      return 2;
    }
    metrics_file.open(metrics_out_path);
    if (!metrics_file.good()) {
      std::cerr << "error: cannot open '" << metrics_out_path << "' for writing\n";
      return 1;
    }
    options.metrics_stream = &metrics_file;
  }

  // The tracer is process-global, so the dump works the same for both
  // wire modes; spans recorded by any session land in one file.
  const auto dump_trace = [&] {
    if (trace_out_path.empty()) return;
    const std::vector<defa::obs::Span> spans =
        defa::obs::Tracer::instance().collect();
    std::string process = "defa_serve";
    if (!options.server.shard_name.empty()) {
      process += " " + options.server.shard_name;
    }
    defa::obs::write_trace_file(
        trace_out_path,
        defa::obs::trace_document(defa::obs::trace_events_json(
            spans, static_cast<int>(::getpid()), process)));
    std::cerr << "defa_serve: wrote " << spans.size() << " trace event(s) to "
              << trace_out_path << "\n";
  };

  if (listen_port >= 0) {
    if (!in_path.empty() || !out_path.empty()) {
      std::cerr << "--listen serves TCP clients; --in/--out apply to stdio mode\n";
      return 2;
    }
    const int rc = run_listen(listen_port, port_file, options);
    dump_trace();
    return rc;
  }

  std::ifstream in_file;
  if (!in_path.empty()) {
    in_file.open(in_path);
    if (!in_file.good()) {
      std::cerr << "error: cannot open '" << in_path << "'\n";
      return 1;
    }
  }
  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path);
    if (!out_file.good()) {
      std::cerr << "error: cannot open '" << out_path << "' for writing\n";
      return 1;
    }
  }
  std::signal(SIGPIPE, SIG_IGN);
  const int bad = defa::serve::run_serve_loop(
      in_path.empty() ? std::cin : in_file, out_path.empty() ? std::cout : out_file,
      options);
  if (bad > 0) std::cerr << bad << " malformed request line(s)\n";
  dump_trace();
  return 0;
} catch (const std::exception& e) {
  // Also covers std::stoi/stoul on malformed flag values.
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
