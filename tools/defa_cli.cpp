// defa_cli — one driver for every registered experiment.
//
//   defa_cli list                         enumerate experiments
//   defa_cli run <name>... [--json FILE]  run experiments (tables to stdout,
//                                         combined JSON optionally to FILE)
//   defa_cli run --all [--json FILE]      run everything
//   defa_cli run ... --jobs N             fan experiments over the shared
//                                         thread pool, N at a time
//   defa_cli run ... --backend NAME       evaluate on a kernels backend
//                                         (reference|fused|...; also the
//                                         DEFA_BACKEND env var)
//   defa_cli run ... --connect HOST:PORT  run the experiments in a remote
//                                         defa_serve --listen process over
//                                         Protocol v1 (tables stream back;
//                                         --json works unchanged)
//   defa_cli validate FILE                parse a JSON file emitted by run
//
// All experiments share one Engine, so e.g. `defa_cli run fig6b fig9 table1`
// builds each benchmark workload exactly once (remote runs share the server
// process's Engine the same way).  Failures don't abort the remaining
// experiments; the exit code is nonzero when any failed.

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/registry.h"
#include "api/result_io.h"
#include "client/client.h"
#include "common/thread_pool.h"
#include "kernels/backend.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " list\n"
            << "       " << argv0
            << " run <name>... [--jobs N] [--backend NAME] [--json FILE]\n"
            << "       " << argv0
            << " run --all [--jobs N] [--backend NAME] [--json FILE]\n"
            << "       " << argv0 << " run <name>... --connect HOST:PORT [--json FILE]\n"
            << "       " << argv0 << " validate FILE\n";
  return 2;
}

/// `run --connect`: every experiment executes inside the remote defa_serve
/// process (its Engine, its backend); tables and JSON come back over the
/// wire and are presented exactly like a local run.
int cmd_run_remote(const std::string& endpoint, std::vector<std::string> names,
                   bool all, const std::string& json_path) {
  defa::client::Client client = defa::client::Client::connect(endpoint);
  if (all) {
    names.clear();
    for (const defa::api::Json& e :
         client.experiments().at("experiments").items()) {
      names.push_back(e.at("name").as_string());
    }
  }
  if (names.empty()) {
    std::cerr << "run: no experiment names given (try 'defa_cli list')\n";
    return 2;
  }
  defa::api::Json combined = defa::api::Json::object();
  int failures = 0;
  for (const std::string& name : names) {
    try {
      defa::api::Json reply = client.run_experiment(name);
      std::cout << reply.at("tables").as_string() << "\n";
      combined[name] = reply.at("json");
    } catch (const defa::client::RpcError& e) {
      ++failures;
      std::cerr << name << " failed: " << e.what() << "\n";
    }
  }
  if (!json_path.empty()) {
    defa::api::write_json_file(json_path, names.size() == 1 && combined.size() == 1
                                              ? combined.at(names[0])
                                              : combined);
    std::cout << "wrote " << json_path << "\n";
  }
  if (failures > 0) {
    std::cerr << failures << " of " << names.size() << " experiments failed\n";
    return 1;
  }
  return 0;
}

int cmd_list() {
  defa::api::register_builtin_experiments();
  const defa::api::Registry& registry = defa::api::Registry::instance();
  for (const std::string& name : registry.names()) {
    const defa::api::Experiment* e = registry.find(name);
    std::cout << name << "\n    " << e->title << "\n    " << e->description << "\n";
  }
  std::cout << registry.size() << " experiments\n";
  return 0;
}

int cmd_run(const std::vector<std::string>& args) {
  std::vector<std::string> names;
  std::string json_path;
  std::string connect_endpoint;
  defa::api::Engine::Options engine_options;
  bool all = false;
  bool backend_flag_given = false;
  int jobs = 1;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json") {
      if (i + 1 >= args.size()) return usage("defa_cli");
      json_path = args[++i];
    } else if (args[i] == "--connect") {
      if (i + 1 >= args.size()) return usage("defa_cli");
      connect_endpoint = args[++i];
    } else if (args[i] == "--backend") {
      backend_flag_given = true;
      if (i + 1 >= args.size()) return usage("defa_cli");
      engine_options.backend = args[++i];
      if (defa::kernels::find_backend(engine_options.backend) == nullptr) {
        std::cerr << "unknown backend '" << engine_options.backend
                  << "' (known: " << defa::kernels::known_backends() << ")\n";
        return 2;
      }
    } else if (args[i] == "--jobs") {
      if (i + 1 >= args.size()) return usage("defa_cli");
      jobs = std::stoi(args[++i]);
      if (jobs < 1) return usage("defa_cli");
    } else if (args[i] == "--all") {
      all = true;
    } else if (!args[i].empty() && args[i][0] == '-') {
      std::cerr << "unknown option '" << args[i] << "'\n";
      return 2;
    } else {
      names.push_back(args[i]);
    }
  }
  if (!connect_endpoint.empty()) {
    if (backend_flag_given || jobs > 1) {
      // The server process owns its backend and its concurrency; silently
      // ignoring these flags would run something the user didn't ask for.
      std::cerr << "--connect runs experiments in the remote defa_serve "
                   "process: --backend/--jobs configure the local run and "
                   "cannot be combined with it\n";
      return 2;
    }
    return cmd_run_remote(connect_endpoint, names, all, json_path);
  }
  defa::api::register_builtin_experiments();
  if (all) names = defa::api::Registry::instance().names();
  if (names.empty()) {
    std::cerr << "run: no experiment names given (try 'defa_cli list')\n";
    return 2;
  }

  // Every experiment runs (failures don't abort the rest); with --jobs > 1
  // they fan out over the shared defa::ThreadPool, buffering tables so
  // output still appears in name order.  The Engine is shared either way,
  // so experiments touching the same benchmark reuse one context.
  defa::api::Engine engine(engine_options);
  defa::api::Json combined = defa::api::Json::object();
  int failures = 0;
  if (jobs > 1) {
    struct Outcome {
      std::string output;
      defa::api::Json json;
      bool ok = false;
      std::string error;
    };
    std::vector<Outcome> outcomes(names.size());
    defa::ThreadPool::global().run_indexed(
        static_cast<std::int64_t>(names.size()), jobs, [&](std::int64_t i) {
          const auto idx = static_cast<std::size_t>(i);
          std::ostringstream tables;
          Outcome& out = outcomes[idx];
          try {
            out.json = defa::api::run_experiment(engine, names[idx], tables);
            out.ok = true;
          } catch (const std::exception& e) {
            out.error = e.what();
          }
          out.output = tables.str();
        });
    for (std::size_t i = 0; i < names.size(); ++i) {
      std::cout << outcomes[i].output;
      if (outcomes[i].ok) {
        combined[names[i]] = outcomes[i].json;
        std::cout << "\n";
      } else {
        ++failures;
        std::cerr << names[i] << " failed: " << outcomes[i].error << "\n";
      }
    }
  } else {
    // Serial path streams each experiment's tables as it runs.
    for (const std::string& name : names) {
      try {
        combined[name] = defa::api::run_experiment(engine, name, std::cout);
        std::cout << "\n";
      } catch (const std::exception& e) {
        ++failures;
        std::cerr << name << " failed: " << e.what() << "\n";
      }
    }
  }
  if (!json_path.empty()) {
    // A single experiment writes its object directly; several write a map.
    defa::api::write_json_file(json_path, names.size() == 1 && combined.size() == 1
                                              ? combined.at(names[0])
                                              : combined);
    std::cout << "wrote " << json_path << "\n";
  }
  if (failures > 0) {
    std::cerr << failures << " of " << names.size() << " experiments failed\n";
    return 1;
  }
  return 0;
}

int cmd_validate(const std::string& path) {
  const defa::api::Json j = defa::api::read_json_file(path);
  std::cout << path << ": valid JSON ("
            << (j.is_object() ? std::to_string(j.size()) + " top-level keys"
                              : std::string("non-object root"))
            << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);

  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "run") return cmd_run(args);
    if (cmd == "validate") {
      if (args.size() != 1) return usage(argv[0]);
      return cmd_validate(args[0]);
    }
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
      usage(argv[0]);
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage(argv[0]);
}
