// defa_loadgen — open/closed-loop traffic generator for the serve stack.
//
//   defa_loadgen [--mode closed|open] [--requests N] [--concurrency N]
//                [--rate QPS] [--fixed-gap] [--timeout-ms MS] [--seed S]
//                [--mix smoke|default] [--workers N] [--queue-capacity N]
//                [--out FILE] [--smoke] [--quiet]
//
// Drives a fresh serve::Server with a weighted scenario mix (model presets
// x scenes x prune configs), then prints a latency/throughput summary and
// optionally writes the full report (p50/p95/p99 latency, achieved QPS,
// per-scenario breakdown, server metrics) as JSON — the repo's
// BENCH_serve.json artifact.
//
//   --smoke   shorthand for the CI configuration: closed loop, 64 requests,
//             concurrency 4, smoke mix, --out BENCH_serve.json.

#include <iostream>
#include <string>

#include "api/result_io.h"
#include "serve/loadgen.h"

namespace {

int usage() {
  std::cerr
      << "usage: defa_loadgen [--mode closed|open] [--requests N] [--concurrency N]\n"
      << "                    [--rate QPS] [--fixed-gap] [--timeout-ms MS] [--seed S]\n"
      << "                    [--mix smoke|default] [--workers N] [--queue-capacity N]\n"
      << "                    [--out FILE] [--smoke] [--quiet]\n";
  return 2;
}

void print_summary(const defa::serve::LoadReport& r, std::ostream& out) {
  out << "mode            " << r.mode;
  if (r.mode == "closed") {
    out << " (concurrency " << r.concurrency << ")\n";
  } else {
    out << " (offered " << r.offered_qps << " qps)\n";
  }
  out << "requests        " << r.requests << "  (ok " << r.completed_ok
      << ", overload " << r.rejected_overload << ", deadline " << r.rejected_deadline
      << ", error " << r.errors << ")\n"
      << "elapsed         " << r.elapsed_ms << " ms\n"
      << "achieved        " << r.achieved_qps << " qps\n"
      << "latency (ms)    p50 " << r.latency_ms.percentile(50) << "   p95 "
      << r.latency_ms.percentile(95) << "   p99 " << r.latency_ms.percentile(99)
      << "   max " << r.latency_ms.max() << "\n"
      << "queue wait (ms) p50 " << r.queue_ms.percentile(50) << "   p99 "
      << r.queue_ms.percentile(99) << "\n";
  for (const auto& s : r.per_scenario) {
    out << "  " << s.name << ": " << s.completed_ok << " ok, p50 "
        << s.latency_ms.percentile(50) << " ms\n";
  }
}

}  // namespace

int main(int argc, char** argv) try {
  defa::serve::LoadGenOptions options;
  std::string out_path;
  std::string mix = "smoke";
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--mode") {
      if ((v = value()) == nullptr) return usage();
      const std::string mode = v;
      if (mode == "closed") {
        options.mode = defa::serve::LoadGenOptions::Mode::kClosed;
      } else if (mode == "open") {
        options.mode = defa::serve::LoadGenOptions::Mode::kOpen;
      } else {
        return usage();
      }
    } else if (arg == "--requests") {
      if ((v = value()) == nullptr) return usage();
      options.requests = std::stoi(v);
    } else if (arg == "--concurrency") {
      if ((v = value()) == nullptr) return usage();
      options.concurrency = std::stoi(v);
    } else if (arg == "--rate") {
      if ((v = value()) == nullptr) return usage();
      options.rate_qps = std::stod(v);
    } else if (arg == "--fixed-gap") {
      options.poisson = false;
    } else if (arg == "--timeout-ms") {
      if ((v = value()) == nullptr) return usage();
      options.timeout_ms = std::stod(v);
    } else if (arg == "--seed") {
      if ((v = value()) == nullptr) return usage();
      options.seed = std::stoull(v);
    } else if (arg == "--mix") {
      if ((v = value()) == nullptr) return usage();
      mix = v;
    } else if (arg == "--workers") {
      if ((v = value()) == nullptr) return usage();
      options.server.max_concurrency = std::stoi(v);
    } else if (arg == "--queue-capacity") {
      if ((v = value()) == nullptr) return usage();
      options.server.queue_capacity = static_cast<std::size_t>(std::stoul(v));
    } else if (arg == "--out") {
      if ((v = value()) == nullptr) return usage();
      out_path = v;
    } else if (arg == "--smoke") {
      options.mode = defa::serve::LoadGenOptions::Mode::kClosed;
      options.requests = 64;
      options.concurrency = 4;
      mix = "smoke";
      if (out_path.empty()) out_path = "BENCH_serve.json";
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return 2;
    }
  }
  if (mix == "smoke") {
    options.scenarios = defa::serve::smoke_mix();
  } else if (mix == "default") {
    options.scenarios = defa::serve::default_mix();
  } else {
    std::cerr << "unknown mix '" << mix << "' (smoke|default)\n";
    return 2;
  }

  const defa::serve::LoadReport report = defa::serve::run_loadgen(options);
  if (!quiet) print_summary(report, std::cout);
  if (!out_path.empty()) {
    defa::api::write_json_file(out_path, report.to_json());
    if (!quiet) std::cout << "wrote " << out_path << "\n";
  }
  // Traffic that never completed anything signals a broken setup to CI.
  return report.completed_ok > 0 ? 0 : 1;
} catch (const std::exception& e) {
  // Also covers std::stoi/stod/stoull on malformed flag values.
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
