// defa_loadgen — open/closed-loop traffic generator for the serve stack.
//
//   defa_loadgen [--scenario FILE] [--sweep] [--connect HOST:PORT]
//                [--mode closed|open] [--requests N] [--concurrency N]
//                [--rate QPS] [--fixed-gap] [--timeout-ms MS] [--seed S]
//                [--mix smoke|default] [--workers N] [--queue-capacity N]
//                [--policy fifo|locality] [--locality-window N]
//                [--max-contexts N] [--max-memo N] [--no-memo]
//                [--backend NAME] [--out FILE] [--smoke] [--quiet]
//                [--trace-sample N] [--trace-out FILE]
//                [--wire auto|v1|v2] [--pipeline N]
//
// Wire control (--connect only, docs/PROTOCOL.md): --wire picks the
// protocol flavor — auto (default) negotiates v2 with a transparent v1
// fallback, v1 never sends the hello, v2 fails fast when the server
// refuses the upgrade.  --pipeline N caps the requests in flight on the
// connection (0 = unlimited); the report's "serialization" block records
// the encode/decode cost of whichever version was negotiated.
//
// Tracing (docs/OBSERVABILITY.md): --trace-sample N stamps every Nth
// generated request with a trace id; --trace-out FILE writes the recorded
// spans as Chrome trace-event JSON after the run (defaults the sample
// rate to 1 when not given).  In-process runs produce one process lane;
// --connect runs additionally pull the server's spans over the protocol
// `trace` method (the server must run with --trace) and merge both lanes
// into a single timeline, client and server spans joined by trace_id.
//
// Drives a serve::Server with a weighted scenario mix and prints a
// latency/throughput summary; --out writes the full report (raw latency
// histograms, achieved QPS, per-scenario breakdown, server metrics with
// context-cache hit rates) as JSON — the repo's BENCH_serve.json artifact.
//
// By default the server is in-process (`"transport": "inproc"` in the
// report).  --connect HOST:PORT drives a *separate* `defa_serve --listen`
// process over TCP through defa::client::Client instead: same schedules,
// same report schema, bit-identical results, latencies now including the
// wire — the in-process vs cross-process comparison in one tool.  The
// server flags (--workers, --policy, ..., --backend) configure the
// in-process server and are rejected with --connect (the remote process
// owns its configuration); a scenario file's "server" block is ignored
// with --connect for the same reason.
//
// The mix comes from a JSON scenario file (--scenario; format in
// docs/SERVING.md) or one of the two built-in mixes (--mix).  Flags given
// after --scenario override the file's settings.
//
//   --sweep   requires a scenario file with a "sweep" block: drives every
//             configured open-loop arrival rate and/or closed-loop
//             concurrency under every configured policy (FIFO vs locality
//             by default) and emits one latency-vs-load curve per policy,
//             with context-cache hit rate per point (docs/BENCH_SCHEMA.md
//             describes the output).  With --out it also writes a
//             plot-ready CSV sidecar (one row per point) next to the JSON
//             report.  Combined with --connect the sweep drives the remote
//             defa_serve instead, switching policy and resetting stats per
//             point through the protocol `reconfigure` method — same grid,
//             same cold-cache-per-point semantics, latencies including the
//             wire.
//   --smoke   shorthand for the CI configuration: closed loop, 64 requests,
//             concurrency 4, smoke mix, --out BENCH_serve.json.

#include <fstream>
#include <iostream>
#include <string>

#include "api/result_io.h"
#include "client/client.h"
#include "client/remote_loadgen.h"
#include "kernels/backend.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "serve/scenario.h"

#include <unistd.h>

namespace {

int usage() {
  std::cerr
      << "usage: defa_loadgen [--scenario FILE] [--sweep] [--connect HOST:PORT]\n"
      << "                    [--mode closed|open] [--requests N] [--concurrency N]\n"
      << "                    [--rate QPS] [--fixed-gap] [--timeout-ms MS] [--seed S]\n"
      << "                    [--mix smoke|default] [--workers N] [--queue-capacity N]\n"
      << "                    [--policy fifo|locality] [--locality-window N]\n"
      << "                    [--max-contexts N] [--max-memo N] [--no-memo]\n"
      << "                    [--backend NAME] [--out FILE] [--smoke] [--quiet]\n"
      << "                    [--trace-sample N] [--trace-out FILE]\n"
      << "                    [--wire auto|v1|v2] [--pipeline N]\n";
  return 2;
}

void print_summary(const defa::serve::LoadReport& r, std::ostream& out) {
  out << "mode            " << r.mode;
  if (r.mode == "closed") {
    out << " (concurrency " << r.concurrency << ")";
  } else {
    out << " (offered " << r.offered_qps << " qps)";
  }
  out << ", policy " << r.policy << ", transport " << r.transport;
  if (r.wire_version > 0) out << " (wire v" << r.wire_version << ")";
  out << "\n"
      << "requests        " << r.requests << "  (ok " << r.completed_ok
      << ", overload " << r.rejected_overload << ", deadline " << r.rejected_deadline
      << ", shutdown " << r.rejected_shutdown << ", error " << r.errors << ")\n"
      << "elapsed         " << r.elapsed_ms << " ms\n"
      << "achieved        " << r.achieved_qps << " qps\n"
      << "latency (ms)    p50 " << r.latency_ms.percentile(50) << "   p95 "
      << r.latency_ms.percentile(95) << "   p99 " << r.latency_ms.percentile(99)
      << "   p99.9 " << r.latency_ms.percentile(99.9) << "   max "
      << r.latency_ms.max() << "\n"
      << "queue wait (ms) p50 " << r.queue_ms.percentile(50) << "   p99 "
      << r.queue_ms.percentile(99) << "\n"
      << "context cache   hit rate " << r.server_metrics.context_hit_rate()
      << "  (hits " << r.server_metrics.context_hits << ", misses "
      << r.server_metrics.context_misses << ", evictions "
      << r.server_metrics.context_evictions << ")\n";
  if (r.wire_version > 0 && r.completed_ok > 0) {
    const double per_req = (r.ser_client.total_ms() + r.ser_server.total_ms()) /
                           static_cast<double>(r.completed_ok);
    const double p50 = r.latency_ms.percentile(50);
    out << "serialization   " << per_req << " ms/req  (share of p50 "
        << (p50 > 0 ? per_req / p50 : 0.0) << ")\n";
  }
  for (const auto& s : r.per_scenario) {
    out << "  " << s.name << ": " << s.completed_ok << " ok, p50 "
        << s.latency_ms.percentile(50) << " ms\n";
  }
}

void print_sweep_summary(const defa::serve::SweepReport& r, std::ostream& out) {
  out << "sweep           " << (r.name.empty() ? "(unnamed)" : r.name) << ", "
      << r.requests << " requests per point\n"
      << "point         policy    achieved  p50_ms    p99_ms    hit_rate\n";
  for (const auto& pt : r.points) {
    const defa::serve::MetricsSnapshot& m = pt.report.server_metrics;
    if (pt.mode == "closed") {
      out << "conc " << pt.concurrency;
    } else {
      out << pt.rate_qps << " qps";
    }
    out << "  " << defa::serve::policy_name(pt.policy) << "  "
        << pt.report.achieved_qps << "  " << pt.report.latency_ms.percentile(50)
        << "  " << pt.report.latency_ms.percentile(99) << "  "
        << m.context_hit_rate() << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) try {
  defa::serve::ScenarioFile scenario;  // .base drives single runs
  std::string out_path;
  std::string trace_out_path;
  std::string connect_endpoint;  // --connect: drive a remote defa_serve
  std::string mix = "smoke";
  defa::client::ClientOptions client_options;  // --wire / --pipeline
  bool have_scenario_file = false;
  bool mix_flag_given = false;     // --mix/--smoke conflict with --scenario
  bool server_flag_given = false;  // server-config flags conflict with --connect
  bool wire_flag_given = false;    // --wire/--pipeline require --connect
  bool sweep = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    defa::serve::LoadGenOptions& options = scenario.base;
    if (arg == "--scenario") {
      if ((v = value()) == nullptr) return usage();
      scenario = defa::serve::load_scenario_file(v);
      have_scenario_file = true;
    } else if (arg == "--sweep") {
      sweep = true;
    } else if (arg == "--connect") {
      if ((v = value()) == nullptr) return usage();
      connect_endpoint = v;
    } else if (arg == "--mode") {
      if ((v = value()) == nullptr) return usage();
      const std::string mode = v;
      if (mode == "closed") {
        options.mode = defa::serve::LoadGenOptions::Mode::kClosed;
      } else if (mode == "open") {
        options.mode = defa::serve::LoadGenOptions::Mode::kOpen;
      } else {
        return usage();
      }
    } else if (arg == "--requests") {
      if ((v = value()) == nullptr) return usage();
      options.requests = std::stoi(v);
    } else if (arg == "--concurrency") {
      if ((v = value()) == nullptr) return usage();
      options.concurrency = std::stoi(v);
    } else if (arg == "--rate") {
      if ((v = value()) == nullptr) return usage();
      options.rate_qps = std::stod(v);
    } else if (arg == "--fixed-gap") {
      options.poisson = false;
    } else if (arg == "--timeout-ms") {
      if ((v = value()) == nullptr) return usage();
      options.timeout_ms = std::stod(v);
    } else if (arg == "--seed") {
      if ((v = value()) == nullptr) return usage();
      options.seed = std::stoull(v);
    } else if (arg == "--mix") {
      if ((v = value()) == nullptr) return usage();
      mix = v;
      mix_flag_given = true;
    } else if (arg == "--workers") {
      server_flag_given = true;
      if ((v = value()) == nullptr) return usage();
      options.server.max_concurrency = std::stoi(v);
    } else if (arg == "--queue-capacity") {
      server_flag_given = true;
      if ((v = value()) == nullptr) return usage();
      options.server.queue_capacity = static_cast<std::size_t>(std::stoul(v));
    } else if (arg == "--policy") {
      server_flag_given = true;
      if ((v = value()) == nullptr) return usage();
      const auto policy = defa::serve::policy_from_name(v);
      if (!policy.has_value()) {
        std::cerr << "unknown policy '" << v << "' (fifo|locality)\n";
        return 2;
      }
      options.server.policy = *policy;
    } else if (arg == "--locality-window") {
      server_flag_given = true;
      if ((v = value()) == nullptr) return usage();
      options.server.locality_window = std::stoi(v);
    } else if (arg == "--max-contexts") {
      server_flag_given = true;
      if ((v = value()) == nullptr) return usage();
      options.server.engine.max_contexts = static_cast<std::size_t>(std::stoul(v));
    } else if (arg == "--max-memo") {
      server_flag_given = true;
      if ((v = value()) == nullptr) return usage();
      options.server.engine.max_memo = static_cast<std::size_t>(std::stoul(v));
    } else if (arg == "--no-memo") {
      server_flag_given = true;
      options.server.engine.memoize_results = false;
    } else if (arg == "--backend") {
      server_flag_given = true;
      if ((v = value()) == nullptr) return usage();
      if (defa::kernels::find_backend(v) == nullptr) {
        std::cerr << "unknown backend '" << v
                  << "' (known: " << defa::kernels::known_backends() << ")\n";
        return 2;
      }
      options.server.engine.backend = v;
    } else if (arg == "--wire") {
      wire_flag_given = true;
      if ((v = value()) == nullptr) return usage();
      const std::string wire = v;
      if (wire == "auto") {
        client_options.wire = defa::client::ClientOptions::Wire::kAuto;
      } else if (wire == "v1") {
        client_options.wire = defa::client::ClientOptions::Wire::kV1;
      } else if (wire == "v2") {
        client_options.wire = defa::client::ClientOptions::Wire::kV2;
      } else {
        std::cerr << "unknown wire mode '" << wire << "' (auto|v1|v2)\n";
        return 2;
      }
    } else if (arg == "--pipeline") {
      wire_flag_given = true;
      if ((v = value()) == nullptr) return usage();
      client_options.max_inflight = std::stoi(v);
      if (client_options.max_inflight < 0) {
        std::cerr << "--pipeline N must be >= 0 (0 = unlimited)\n";
        return 2;
      }
    } else if (arg == "--out") {
      if ((v = value()) == nullptr) return usage();
      out_path = v;
    } else if (arg == "--trace-sample") {
      if ((v = value()) == nullptr) return usage();
      options.trace_sample_every = std::stoi(v);
      if (options.trace_sample_every <= 0) {
        std::cerr << "--trace-sample N must be > 0\n";
        return 2;
      }
    } else if (arg == "--trace-out") {
      if ((v = value()) == nullptr) return usage();
      trace_out_path = v;
    } else if (arg == "--smoke") {
      options.mode = defa::serve::LoadGenOptions::Mode::kClosed;
      options.requests = 64;
      options.concurrency = 4;
      mix = "smoke";
      mix_flag_given = true;
      if (out_path.empty()) out_path = "BENCH_serve.json";
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return 2;
    }
  }
  if (have_scenario_file && mix_flag_given) {
    // The mix comes from exactly one place; silently ignoring one of the
    // two would benchmark something the user didn't ask for.
    std::cerr << "--mix/--smoke cannot be combined with --scenario "
                 "(the scenario file defines the mix)\n";
    return 2;
  }
  if (connect_endpoint.empty() && wire_flag_given) {
    // The wire flags shape the client connection; there is none in-process.
    std::cerr << "--wire/--pipeline configure the --connect client "
                 "connection and need --connect HOST:PORT\n";
    return 2;
  }
  if (!connect_endpoint.empty() && server_flag_given) {
    // Server flags configure the in-process server; silently ignoring
    // them would benchmark a configuration the user didn't ask for.
    std::cerr << "--connect drives a remote defa_serve: server flags "
                 "(--workers/--queue-capacity/--policy/--locality-window/"
                 "--max-contexts/--max-memo/--no-memo/--backend) configure "
                 "the in-process server and cannot be combined with it\n";
    return 2;
  }
  if (!have_scenario_file) {
    if (mix == "smoke") {
      scenario.base.scenarios = defa::serve::smoke_mix();
    } else if (mix == "default") {
      scenario.base.scenarios = defa::serve::default_mix();
    } else {
      std::cerr << "unknown mix '" << mix << "' (smoke|default)\n";
      return 2;
    }
  }

  if (!trace_out_path.empty() && scenario.base.trace_sample_every <= 0) {
    scenario.base.trace_sample_every = 1;  // a trace dump implies sampling
  }
  if (scenario.base.trace_sample_every > 0) {
    defa::obs::Tracer::instance().set_enabled(true);
  }

  if (sweep) {
    if (!trace_out_path.empty()) {
      std::cerr << "--trace-out applies to single runs, not --sweep\n";
      return 2;
    }
    if (!scenario.has_sweep) {
      std::cerr << "--sweep needs a --scenario file with a \"sweep\" block\n";
      return 2;
    }
    defa::serve::SweepReport report;
    if (!connect_endpoint.empty()) {
      // Remote sweep: each point reconfigures the connected server (policy
      // switch + stats/cache reset) through the protocol instead of
      // constructing a fresh in-process Server.
      defa::client::Client client =
          defa::client::Client::connect(connect_endpoint, client_options);
      report = defa::client::run_remote_sweep(scenario, client);
    } else {
      report = defa::serve::run_sweep(scenario);
    }
    if (!quiet) print_sweep_summary(report, std::cout);
    if (!out_path.empty()) {
      defa::api::write_json_file(out_path, report.to_json());
      if (!quiet) std::cout << "wrote " << out_path << "\n";
      // Plot-ready sidecar: the curve rows as CSV next to the JSON report.
      const std::size_t dot = out_path.find_last_of("./");
      const std::string csv_path =
          (dot != std::string::npos && out_path[dot] == '.'
               ? out_path.substr(0, dot)
               : out_path) +
          ".csv";
      std::ofstream csv(csv_path);
      if (!csv.good()) {
        std::cerr << "error: cannot open '" << csv_path << "' for writing\n";
        return 1;
      }
      csv << report.to_csv();
      if (!quiet) std::cout << "wrote " << csv_path << "\n";
    }
    std::uint64_t ok = 0;
    for (const auto& pt : report.points) ok += pt.report.completed_ok;
    return ok > 0 ? 0 : 1;
  }

  defa::serve::LoadReport report;
  defa::api::Json server_trace;  // null unless fetched over the wire
  if (!connect_endpoint.empty()) {
    if (have_scenario_file && !quiet) {
      std::cerr << "note: --connect ignores the scenario file's \"server\" "
                   "block (the remote process owns its configuration)\n";
    }
    defa::client::Client client =
        defa::client::Client::connect(connect_endpoint, client_options);
    report = defa::client::run_remote_loadgen(scenario.base, client);
    if (!trace_out_path.empty()) server_trace = client.trace();
  } else {
    report = defa::serve::run_loadgen(scenario.base);
  }
  if (!quiet) print_summary(report, std::cout);
  if (!out_path.empty()) {
    defa::api::write_json_file(out_path, report.to_json());
    if (!quiet) std::cout << "wrote " << out_path << "\n";
  }
  if (!trace_out_path.empty()) {
    // One lane for this process; --connect adds the server's lane, spans
    // joined by trace_id on the shared monotonic timeline.
    std::vector<defa::obs::TraceProcess> lanes;
    defa::obs::TraceProcess own;
    own.pid = static_cast<int>(::getpid());
    own.name = connect_endpoint.empty() ? "defa_loadgen (inproc server)"
                                        : "defa_loadgen";
    own.events = defa::obs::trace_events_json(
        defa::obs::Tracer::instance().collect(), own.pid, own.name);
    lanes.push_back(std::move(own));
    if (!server_trace.is_null()) {
      defa::obs::TraceProcess srv;
      srv.pid = static_cast<int>(server_trace.at("pid").as_int());
      srv.name = server_trace.at("process").as_string();
      srv.events = server_trace.at("traceEvents");
      lanes.push_back(std::move(srv));
    }
    defa::obs::write_trace_file(trace_out_path,
                                defa::obs::merge_trace_processes(lanes));
    if (!quiet) std::cout << "wrote " << trace_out_path << "\n";
  }
  // Traffic that never completed anything signals a broken setup to CI.
  return report.completed_ok > 0 ? 0 : 1;
} catch (const std::exception& e) {
  // Also covers std::stoi/stod/stoull on malformed flag values.
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
