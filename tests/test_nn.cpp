// Tests for linear algebra, softmax, bilinear interpolation (the Eq.3/Eq.4
// equivalence property central to the BA-mode datapath) and the reference
// MSDeformAttn.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "nn/bilinear.h"
#include "nn/linear.h"
#include "nn/msdeform.h"
#include "nn/norm.h"
#include "nn/softmax.h"

namespace defa {
namespace {

// --------------------------------------------------------------------- linear
TEST(Linear, MatmulKnownValues) {
  Tensor a({2, 3});
  Tensor b({3, 2});
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  float av[] = {1, 2, 3, 4, 5, 6}, bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data().begin());
  std::copy(bv, bv + 6, b.data().begin());
  const Tensor c = nn::matmul(a, b);
  EXPECT_EQ(c(0, 0), 58.0f);
  EXPECT_EQ(c(0, 1), 64.0f);
  EXPECT_EQ(c(1, 0), 139.0f);
  EXPECT_EQ(c(1, 1), 154.0f);
}

TEST(Linear, MatmulIdentity) {
  Rng rng(1);
  const Tensor a = Tensor::randn({5, 5}, rng);
  Tensor eye({5, 5});
  for (int i = 0; i < 5; ++i) eye(i, i) = 1.0f;
  const Tensor c = nn::matmul(a, eye);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(c.at_flat(i), a.at_flat(i));
}

TEST(Linear, MatmulShapeMismatchThrows) {
  Tensor a({2, 3}), b({2, 3});
  EXPECT_THROW((void)nn::matmul(a, b), CheckError);
}

TEST(Linear, BiasBroadcast) {
  Tensor x = Tensor::full({2, 2}, 1.0f);
  Tensor w = Tensor::full({2, 2}, 1.0f);
  Tensor bias({2});
  bias(0) = 10.0f;
  bias(1) = 20.0f;
  const Tensor y = nn::linear(x, w, &bias);
  EXPECT_EQ(y(0, 0), 12.0f);
  EXPECT_EQ(y(1, 1), 22.0f);
}

TEST(Linear, LargeMatmulMatchesSerialReference) {
  // Parallel path must agree with a simple serial triple loop.
  Rng rng(2);
  const Tensor a = Tensor::randn({64, 32}, rng);
  const Tensor b = Tensor::randn({32, 48}, rng);
  const Tensor c = nn::matmul(a, b);
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t i = rng.randint(0, 63);
    const std::int64_t j = rng.randint(0, 47);
    double acc = 0;
    for (std::int64_t k = 0; k < 32; ++k) {
      acc += static_cast<double>(a(i, k)) * b(k, j);
    }
    EXPECT_NEAR(c(i, j), acc, 1e-3);
  }
}

// -------------------------------------------------------------------- softmax
TEST(Softmax, SumsToOne) {
  Rng rng(3);
  Tensor t = Tensor::randn({10, 7}, rng, 0.0f, 4.0f);
  const Tensor p = nn::softmax_lastdim(t);
  for (std::int64_t i = 0; i < 10; ++i) {
    double sum = 0;
    for (std::int64_t j = 0; j < 7; ++j) {
      EXPECT_GE(p(i, j), 0.0f);
      sum += p(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, StableUnderLargeLogits) {
  Tensor t({1, 3});
  t(0, 0) = 10000.0f;
  t(0, 1) = 9999.0f;
  t(0, 2) = -10000.0f;
  const Tensor p = nn::softmax_lastdim(t);
  EXPECT_TRUE(std::isfinite(p(0, 0)));
  EXPECT_GT(p(0, 0), p(0, 1));
  EXPECT_NEAR(p(0, 2), 0.0f, 1e-6);
}

TEST(Softmax, ShiftInvariance) {
  Tensor a({1, 4}), b({1, 4});
  for (int j = 0; j < 4; ++j) {
    a(0, j) = static_cast<float>(j);
    b(0, j) = static_cast<float>(j) + 100.0f;
  }
  const Tensor pa = nn::softmax_lastdim(a);
  const Tensor pb = nn::softmax_lastdim(b);
  for (int j = 0; j < 4; ++j) EXPECT_NEAR(pa(0, j), pb(0, j), 1e-6);
}

TEST(Softmax, MonotoneInLogit) {
  Tensor t({1, 3});
  t(0, 0) = 1.0f;
  t(0, 1) = 2.0f;
  t(0, 2) = 3.0f;
  const Tensor p = nn::softmax_lastdim(t);
  EXPECT_LT(p(0, 0), p(0, 1));
  EXPECT_LT(p(0, 1), p(0, 2));
}

TEST(Softmax, UniformLogitsUniformProbs) {
  Tensor t = Tensor::full({1, 16}, 2.5f);
  const Tensor p = nn::softmax_lastdim(t);
  for (int j = 0; j < 16; ++j) EXPECT_NEAR(p(0, j), 1.0f / 16.0f, 1e-6);
}

TEST(Softmax, Rank3LastDim) {
  Rng rng(4);
  Tensor t = Tensor::randn({3, 2, 5}, rng);
  const Tensor p = nn::softmax_lastdim(t);
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 2; ++j) {
      double sum = 0;
      for (std::int64_t k = 0; k < 5; ++k) sum += p(i, j, k);
      EXPECT_NEAR(sum, 1.0, 1e-5);
    }
  }
}

// ------------------------------------------------------------------- bilinear
TEST(Bilinear, LocateFractions) {
  const nn::BiPoint p = nn::bi_locate(2.25f, 3.75f);
  EXPECT_EQ(p.x0, 2);
  EXPECT_EQ(p.y0, 3);
  EXPECT_NEAR(p.t1, 0.25f, 1e-6);
  EXPECT_NEAR(p.t0, 0.75f, 1e-6);
}

TEST(Bilinear, LocateNegativeCoordinates) {
  const nn::BiPoint p = nn::bi_locate(-0.5f, -1.25f);
  EXPECT_EQ(p.x0, -1);
  EXPECT_EQ(p.y0, -2);
  EXPECT_NEAR(p.t1, 0.5f, 1e-6);
  EXPECT_NEAR(p.t0, 0.75f, 1e-6);
}

TEST(Bilinear, CornersReturnExactNeighbors) {
  // t0 = t1 = 0 -> S = N0 in both forms.
  EXPECT_FLOAT_EQ(nn::bi_direct(5, 6, 7, 8, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(nn::bi_horner(5, 6, 7, 8, 0, 0), 5.0f);
}

TEST(Bilinear, CenterIsAverage) {
  EXPECT_FLOAT_EQ(nn::bi_direct(1, 2, 3, 4, 0.5f, 0.5f), 2.5f);
  EXPECT_FLOAT_EQ(nn::bi_horner(1, 2, 3, 4, 0.5f, 0.5f), 2.5f);
}

/// Property: the Horner form (Eq. 4, 3 mul / 7 add) equals the direct form
/// (Eq. 3) for random neighbors and fractions — the key identity behind the
/// BI operator in the reconfigurable PE array.
class HornerEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(HornerEquivalence, MatchesDirectForm) {
  SmallRng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    const float n0 = static_cast<float>(rng.normal(0, 10));
    const float n1 = static_cast<float>(rng.normal(0, 10));
    const float n2 = static_cast<float>(rng.normal(0, 10));
    const float n3 = static_cast<float>(rng.normal(0, 10));
    const float t0 = static_cast<float>(rng.uniform01());
    const float t1 = static_cast<float>(rng.uniform01());
    EXPECT_NEAR(nn::bi_horner(n0, n1, n2, n3, t0, t1),
                nn::bi_direct(n0, n1, n2, n3, t0, t1), 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HornerEquivalence, ::testing::Range(1, 9));

TEST(Bilinear, SampleAccumulateInterpolatesChannels) {
  const ModelConfig m = ModelConfig::tiny();
  Tensor values({m.n_in(), m.d_model});
  // Give level 0 a gradient along x in channel 0: value = x.
  const LevelShape& lv = m.levels[0];
  for (int y = 0; y < lv.h; ++y) {
    for (int x = 0; x < lv.w; ++x) {
      values(m.flat_index(0, y, x), 0) = static_cast<float>(x);
    }
  }
  std::vector<float> out(static_cast<std::size_t>(m.d_head()), 0.0f);
  nn::bi_sample_accumulate(m, values, 0, 2.5f, 1.0f, 0, m.d_head(), 1.0f, out);
  EXPECT_NEAR(out[0], 2.5f, 1e-5);
}

TEST(Bilinear, OutOfBoundsIsZeroPadded) {
  const ModelConfig m = ModelConfig::tiny();
  Tensor values = Tensor::full({m.n_in(), m.d_model}, 1.0f);
  std::vector<float> out(static_cast<std::size_t>(m.d_head()), 0.0f);
  // Far outside the 8x10 level-0 grid: all four neighbors out of bounds.
  nn::bi_sample_accumulate(m, values, 0, -10.0f, -10.0f, 0, m.d_head(), 1.0f, out);
  for (float v : out) EXPECT_EQ(v, 0.0f);
}

TEST(Bilinear, BorderPartialContribution) {
  const ModelConfig m = ModelConfig::tiny();
  Tensor values = Tensor::full({m.n_in(), m.d_model}, 2.0f);
  std::vector<float> out(static_cast<std::size_t>(m.d_head()), 0.0f);
  // x = -0.5: left neighbors out of bounds -> half the weight survives.
  nn::bi_sample_accumulate(m, values, 0, -0.5f, 1.0f, 0, m.d_head(), 1.0f, out);
  EXPECT_NEAR(out[0], 1.0f, 1e-5);
}

TEST(Bilinear, ForEachNeighborSkipsOutOfBounds) {
  const ModelConfig m = ModelConfig::tiny();
  int count = 0;
  nn::for_each_neighbor(m, 0, nn::bi_locate(0.5f, 0.5f),
                        [&](int, std::int64_t) { ++count; });
  EXPECT_EQ(count, 4);
  count = 0;
  nn::for_each_neighbor(m, 0, nn::bi_locate(-0.5f, -0.5f),
                        [&](int, std::int64_t) { ++count; });
  EXPECT_EQ(count, 1);  // only the bottom-right neighbor is inside
}

// ----------------------------------------------------------------- msdeform
TEST(Msdeform, ReferencePointsAreCellCenters) {
  const ModelConfig m = ModelConfig::tiny();
  const Tensor ref = nn::reference_points(m);
  EXPECT_EQ(ref.dim(0), m.n_in());
  // First token of level 0 is pixel (0,0) of an 8x10 grid.
  EXPECT_NEAR(ref(0, 0), 0.5f / 10.0f, 1e-6);
  EXPECT_NEAR(ref(0, 1), 0.5f / 8.0f, 1e-6);
  for (std::int64_t q = 0; q < m.n_in(); ++q) {
    EXPECT_GT(ref(q, 0), 0.0f);
    EXPECT_LT(ref(q, 0), 1.0f);
    EXPECT_GT(ref(q, 1), 0.0f);
    EXPECT_LT(ref(q, 1), 1.0f);
  }
}

TEST(Msdeform, LocsFromZeroOffsetsLandOnReference) {
  const ModelConfig m = ModelConfig::tiny();
  const Tensor ref = nn::reference_points(m);
  const Tensor offsets({m.n_in(), m.n_heads, m.n_levels, m.n_points, 2});
  const Tensor locs = nn::locs_from_offsets(m, ref, offsets);
  // Query 0 (pixel (0,0) of level 0): its level-0 location must be (0, 0).
  EXPECT_NEAR(locs(0, 0, 0, 0, 0), 0.0f, 1e-5);
  EXPECT_NEAR(locs(0, 0, 0, 0, 1), 0.0f, 1e-5);
}

TEST(Msdeform, ForwardShapesAndFiniteness) {
  const ModelConfig m = ModelConfig::tiny();
  Rng rng(11);
  const Tensor x = Tensor::randn({m.n_in(), m.d_model}, rng);
  const Tensor ref = nn::reference_points(m);
  const nn::MsdaWeights w = nn::MsdaWeights::random(m, rng);
  const Tensor out = nn::msdeform_forward_ref(m, x, ref, w);
  EXPECT_EQ(out.dim(0), m.n_in());
  EXPECT_EQ(out.dim(1), m.d_model);
  for (float v : out.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Msdeform, UniformProbsAverageConstantValues) {
  // With constant values and weights summing to 1, output equals the value.
  const ModelConfig m = ModelConfig::tiny();
  const Tensor values = Tensor::full({m.n_in(), m.d_model}, 3.0f);
  Tensor probs = Tensor::full({m.n_in(), m.n_heads, m.points_per_head()},
                              1.0f / static_cast<float>(m.points_per_head()));
  // Put all sampling points well inside the grid.
  Tensor locs({m.n_in(), m.n_heads, m.n_levels, m.n_points, 2});
  for (std::int64_t q = 0; q < m.n_in(); ++q) {
    for (int h = 0; h < m.n_heads; ++h) {
      for (int l = 0; l < m.n_levels; ++l) {
        for (int p = 0; p < m.n_points; ++p) {
          locs(q, h, l, p, 0) = 1.5f;
          locs(q, h, l, p, 1) = 1.5f;
        }
      }
    }
  }
  const Tensor out = nn::msgs_aggregate_ref(m, values, probs, locs);
  for (float v : out.data()) EXPECT_NEAR(v, 3.0f, 1e-4);
}

TEST(Msdeform, ZeroProbabilityPointContributesNothing) {
  const ModelConfig m = ModelConfig::tiny();
  Rng rng(5);
  const Tensor values = Tensor::randn({m.n_in(), m.d_model}, rng);
  Tensor probs({m.n_in(), m.n_heads, m.points_per_head()});
  Tensor locs = Tensor::full({m.n_in(), m.n_heads, m.n_levels, m.n_points, 2}, 1.0f);
  const Tensor out = nn::msgs_aggregate_ref(m, values, probs, locs);
  for (float v : out.data()) EXPECT_EQ(v, 0.0f);
}

// ----------------------------------------------------------------------- norm
TEST(Norm, RowsHaveUnitRms) {
  Rng rng(6);
  Tensor x = Tensor::randn({20, 16}, rng, 1.0f, 5.0f);
  nn::rms_norm_rows(x);
  for (std::int64_t i = 0; i < 20; ++i) {
    double ss = 0;
    for (float v : x.row(i)) ss += static_cast<double>(v) * v;
    EXPECT_NEAR(std::sqrt(ss / 16.0), 1.0, 1e-3);
  }
}

TEST(Norm, ZeroRowStaysFinite) {
  Tensor x({2, 4});
  nn::rms_norm_rows(x);
  for (float v : x.data()) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace defa
