// Tests for the sliding bounded-range window streamer (fmap reuse, Fig. 4).

#include <gtest/gtest.h>

#include "arch/window.h"
#include "nn/msdeform.h"

namespace defa::arch {
namespace {

struct WindowFixture {
  ModelConfig m = ModelConfig::tiny();
  Tensor ref = nn::reference_points(m);
  HwConfig hw = HwConfig::make_default(m);
  prune::FmapMask all_keep{m};
};

TEST(Window, ReuseNeverFetchesMoreThanNoReuse) {
  WindowFixture fx;
  const WindowStreamer streamer(fx.m, fx.hw);
  const WindowTraffic with = streamer.run(fx.ref, fx.all_keep, /*reuse=*/true);
  const WindowTraffic without = streamer.run(fx.ref, fx.all_keep, /*reuse=*/false);
  EXPECT_LT(with.dram_read_bytes, without.dram_read_bytes);
  EXPECT_LT(with.sram_write_bytes, without.sram_write_bytes);
  EXPECT_GT(with.dram_read_bytes, 0u);
}

TEST(Window, ReuseSavingsAreSubstantial) {
  // The paper attributes 88.2% of MSGS memory energy saving to reuse; at
  // the traffic level the no-reuse stream refetches the whole window per
  // slide, so the ratio is roughly the window side length.  Measured on
  // the `small` grid where windows actually slide (on `tiny` a window can
  // cover the whole level and the ratio degenerates).
  ModelConfig m = ModelConfig::small();
  const Tensor ref = nn::reference_points(m);
  const HwConfig hw = HwConfig::make_default(m);
  const prune::FmapMask all_keep(m);
  const WindowStreamer streamer(m, hw);
  const auto with = streamer.run(ref, all_keep, true).dram_read_bytes;
  const auto without = streamer.run(ref, all_keep, false).dram_read_bytes;
  const double ratio = static_cast<double>(without) / static_cast<double>(with);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 40.0);
}

TEST(Window, MaskedPixelsAreNotFetched) {
  ModelConfig m = ModelConfig::small();
  const Tensor ref = nn::reference_points(m);
  const HwConfig hw = HwConfig::make_default(m);
  const prune::FmapMask all_keep(m);
  const WindowStreamer streamer(m, hw);
  prune::FmapMask half(m);
  for (std::int64_t t = 0; t < m.n_in(); t += 2) half.set_keep(t, false);
  const auto full = streamer.run(ref, all_keep, true);
  const auto masked = streamer.run(ref, half, true);
  EXPECT_LT(masked.pixels_fetched, full.pixels_fetched);
  // Roughly half the pixels remain (checkerboard over every window).
  EXPECT_NEAR(static_cast<double>(masked.pixels_fetched) /
                  static_cast<double>(full.pixels_fetched),
              0.5, 0.2);
}

TEST(Window, AllMaskedMeansNoTraffic) {
  WindowFixture fx;
  const WindowStreamer streamer(fx.m, fx.hw);
  prune::FmapMask none(fx.m);
  for (std::int64_t t = 0; t < fx.m.n_in(); ++t) none.set_keep(t, false);
  const auto traffic = streamer.run(fx.ref, none, true);
  EXPECT_EQ(traffic.pixels_fetched, 0u);
  EXPECT_EQ(traffic.dram_read_bytes, 0u);
}

TEST(Window, BytesArePixelTimesFullHiddenDim) {
  WindowFixture fx;
  const WindowStreamer streamer(fx.m, fx.hw);
  const auto traffic = streamer.run(fx.ref, fx.all_keep, true);
  const std::int64_t pixel_bytes = fx.m.d_model * fx.hw.act_bits / 8;
  EXPECT_EQ(traffic.dram_read_bytes,
            traffic.pixels_fetched * static_cast<std::uint64_t>(pixel_bytes));
  EXPECT_EQ(traffic.sram_write_bytes, traffic.dram_read_bytes);
}

TEST(Window, SmallerRadiusFetchesLess) {
  // Holds when windows are small relative to the level grid (sliding
  // traffic scales with window side); on a grid the window fully covers,
  // a bigger window can paradoxically fetch less because it never moves.
  ModelConfig m = ModelConfig::small();
  const Tensor ref = nn::reference_points(m);
  const prune::FmapMask all_keep(m);
  HwConfig narrow = HwConfig::make_default(m);
  narrow.ranges = RangeSpec::unified(m.n_levels, 2);
  HwConfig wide = HwConfig::make_default(m);
  wide.ranges = RangeSpec::unified(m.n_levels, 6);
  const WindowStreamer sn(m, narrow);
  const WindowStreamer sw(m, wide);
  EXPECT_LT(sn.run(ref, all_keep, true).dram_read_bytes,
            sw.run(ref, all_keep, true).dram_read_bytes);
}

TEST(Window, EveryPixelFetchedAtLeastOnceWithReuse) {
  // The union of all windows covers the whole (tiny) grid, so reuse traffic
  // must fetch at least every kept pixel once.
  WindowFixture fx;
  const WindowStreamer streamer(fx.m, fx.hw);
  const auto traffic = streamer.run(fx.ref, fx.all_keep, true);
  EXPECT_GE(traffic.pixels_fetched, static_cast<std::uint64_t>(fx.m.n_in()));
}

TEST(Window, DeterministicAcrossRuns) {
  WindowFixture fx;
  const WindowStreamer streamer(fx.m, fx.hw);
  const auto a = streamer.run(fx.ref, fx.all_keep, true);
  const auto b = streamer.run(fx.ref, fx.all_keep, true);
  EXPECT_EQ(a.dram_read_bytes, b.dram_read_bytes);
  EXPECT_EQ(a.pixels_fetched, b.pixels_fetched);
}

}  // namespace
}  // namespace defa::arch
