// Tests for model/hardware configurations and the bounded-range spec.

#include <gtest/gtest.h>

#include "common/check.h"
#include "config/hw_config.h"
#include "config/model_config.h"

namespace defa {
namespace {

// ----------------------------------------------------------------- ModelConfig
class PaperBenchmarks : public ::testing::TestWithParam<ModelConfig> {};

TEST_P(PaperBenchmarks, ValidatesAndHasPaperShape) {
  const ModelConfig m = GetParam();
  EXPECT_NO_THROW(m.validate());
  EXPECT_EQ(m.d_model, 256);
  EXPECT_EQ(m.n_heads, 8);
  EXPECT_EQ(m.n_levels, 4);
  EXPECT_EQ(m.n_points, 4);
  EXPECT_EQ(m.n_layers, 6);
  EXPECT_EQ(m.d_head(), 32);
  EXPECT_EQ(m.points_per_head(), 16);
  EXPECT_GT(m.baseline_ap, 40.0);
  // COCO-scale token counts (shortest side 800).
  EXPECT_GT(m.n_in(), 15000);
  EXPECT_LT(m.n_in(), 25000);
}

TEST_P(PaperBenchmarks, PyramidHalves) {
  const ModelConfig m = GetParam();
  for (int l = 1; l < m.n_levels; ++l) {
    EXPECT_EQ(m.levels[static_cast<std::size_t>(l)].h,
              (m.levels[static_cast<std::size_t>(l - 1)].h + 1) / 2);
    EXPECT_EQ(m.levels[static_cast<std::size_t>(l)].w,
              (m.levels[static_cast<std::size_t>(l - 1)].w + 1) / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(All, PaperBenchmarks,
                         ::testing::ValuesIn(ModelConfig::paper_benchmarks()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return n;
                         });

TEST(ModelConfig, LevelOffsetsPartitionTokens) {
  const ModelConfig m = ModelConfig::deformable_detr();
  std::int64_t expected = 0;
  for (int l = 0; l < m.n_levels; ++l) {
    EXPECT_EQ(m.level_offset(l), expected);
    expected += m.levels[static_cast<std::size_t>(l)].numel();
  }
  EXPECT_EQ(m.n_in(), expected);
}

TEST(ModelConfig, FlatIndexPixelOfRoundTrip) {
  const ModelConfig m = ModelConfig::tiny();
  for (int l = 0; l < m.n_levels; ++l) {
    const LevelShape& lv = m.levels[static_cast<std::size_t>(l)];
    for (int y = 0; y < lv.h; ++y) {
      for (int x = 0; x < lv.w; ++x) {
        const std::int64_t idx = m.flat_index(l, y, x);
        const auto pc = m.pixel_of(idx);
        EXPECT_EQ(pc.level, l);
        EXPECT_EQ(pc.y, y);
        EXPECT_EQ(pc.x, x);
      }
    }
  }
}

TEST(ModelConfig, PixelOfOutOfRangeThrows) {
  const ModelConfig m = ModelConfig::tiny();
  EXPECT_THROW((void)m.pixel_of(m.n_in()), CheckError);
  EXPECT_THROW((void)m.pixel_of(-1), CheckError);
}

TEST(ModelConfig, ValidateRejectsBadHeads) {
  ModelConfig m = ModelConfig::tiny();
  m.n_heads = 3;  // does not divide d_model=16
  EXPECT_THROW(m.validate(), CheckError);
}

TEST(ModelConfig, ValidateRejectsWrongLevelCount) {
  ModelConfig m = ModelConfig::tiny();
  m.levels.pop_back();
  EXPECT_THROW(m.validate(), CheckError);
}

TEST(ModelConfig, ValidateRejectsCoarseToFine) {
  ModelConfig m = ModelConfig::tiny();
  std::swap(m.levels[0], m.levels[1]);
  EXPECT_THROW(m.validate(), CheckError);
}

TEST(ModelConfig, BenchmarkSeedsDistinct) {
  const auto b = ModelConfig::paper_benchmarks();
  EXPECT_NE(b[0].seed, b[1].seed);
  EXPECT_NE(b[1].seed, b[2].seed);
}

// ------------------------------------------------------------------- RangeSpec
TEST(RangeSpec, WindowSide) {
  EXPECT_EQ(RangeSpec::window_side(8), 18);
  EXPECT_EQ(RangeSpec::window_side(6), 14);
  EXPECT_EQ(RangeSpec::window_side(1), 4);
}

TEST(RangeSpec, LevelWiseDefaultNarrowsCoarseLevels) {
  const RangeSpec spec = RangeSpec::level_wise_default(4);
  EXPECT_EQ(spec.used_levels, 4);
  EXPECT_GE(spec.radius(0), spec.radius(3));
}

TEST(RangeSpec, UnifiedCostsAbout25PercentMoreStorage) {
  // The paper: a unified restriction costs ~25% extra storage (Sec. 4.1).
  const RangeSpec level_wise = RangeSpec::level_wise_default(4);
  const RangeSpec unified = RangeSpec::unified_from(level_wise);
  const double extra = static_cast<double>(unified.window_pixels()) /
                           static_cast<double>(level_wise.window_pixels()) -
                       1.0;
  EXPECT_GT(extra, 0.15);
  EXPECT_LT(extra, 0.35);
}

TEST(RangeSpec, UnifiedUsesMaxRadius) {
  RangeSpec spec = RangeSpec::level_wise_default(4);
  const RangeSpec unified = RangeSpec::unified_from(spec);
  for (int l = 0; l < 4; ++l) EXPECT_EQ(unified.radius(l), spec.radius(0));
}

TEST(RangeSpec, RadiusOutOfRangeThrows) {
  const RangeSpec spec = RangeSpec::level_wise_default(2);
  EXPECT_THROW((void)spec.radius(2), CheckError);
  EXPECT_THROW((void)spec.radius(-1), CheckError);
}

TEST(RangeSpec, BadLevelCountThrows) {
  EXPECT_THROW((void)RangeSpec::level_wise_default(0), CheckError);
  EXPECT_THROW((void)RangeSpec::level_wise_default(kMaxLevels + 1), CheckError);
  EXPECT_THROW((void)RangeSpec::unified(4, 0), CheckError);
}

// -------------------------------------------------------------------- HwConfig
TEST(HwConfig, DefaultMatchesPaperDatapath) {
  const ModelConfig m = ModelConfig::deformable_detr();
  const HwConfig hw = HwConfig::make_default(m);
  EXPECT_EQ(hw.total_macs(), 256);
  EXPECT_DOUBLE_EQ(hw.freq_mhz, 400.0);
  EXPECT_EQ(hw.act_bits, 12);
  // 256 MACs * 2 ops * 400 MHz = 204.8 GOPS dense peak.
  EXPECT_NEAR(hw.peak_gops(), 204.8, 1e-9);
  EXPECT_EQ(hw.sram_word_bytes(m), 48);  // 32 channels x 12b
  EXPECT_DOUBLE_EQ(hw.dram_gbps, 256.0);
  EXPECT_DOUBLE_EQ(hw.dram_pj_per_bit, 1.2);
}

TEST(HwConfig, PeakScalesWithTiles) {
  const ModelConfig m = ModelConfig::tiny();
  HwConfig hw = HwConfig::make_default(m);
  const double base = hw.peak_gops();
  hw.tiles = 10;
  EXPECT_NEAR(hw.peak_gops(), base * 10, 1e-9);
}

TEST(HwConfig, ValidateRejectsRangeMismatch) {
  const ModelConfig m = ModelConfig::deformable_detr();
  HwConfig hw = HwConfig::make_default(m);
  hw.ranges = RangeSpec::level_wise_default(2);
  EXPECT_THROW(hw.validate(m), CheckError);
}

TEST(HwConfig, ValidateRejectsTooFewBanksForInterLevel) {
  const ModelConfig m = ModelConfig::deformable_detr();
  HwConfig hw = HwConfig::make_default(m);
  hw.sram_banks = 8;  // < 4 banks per level with 4 levels
  EXPECT_THROW(hw.validate(m), CheckError);
  hw.parallelism = MsgsParallelism::kIntraLevel;
  EXPECT_NO_THROW(hw.validate(m));
}

TEST(HwConfig, ValidateRejectsZeroTiles) {
  const ModelConfig m = ModelConfig::tiny();
  HwConfig hw = HwConfig::make_default(m);
  hw.tiles = 0;
  EXPECT_THROW(hw.validate(m), CheckError);
}

TEST(HwConfig, BandwidthZeroMeansUnconstrainedAndValidates) {
  const ModelConfig m = ModelConfig::tiny();
  HwConfig hw = HwConfig::make_default(m);
  hw.dram_gbps = 0.0;
  EXPECT_NO_THROW(hw.validate(m));
}

}  // namespace
}  // namespace defa
