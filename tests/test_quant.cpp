// Tests for fixed-point quantization and the integer MSGS datapath kernels.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "nn/bilinear.h"
#include "quant/fixed_point.h"
#include "quant/qmsgs.h"

namespace defa::quant {
namespace {

TEST(QuantSpec, FitCoversMaxAbs) {
  const std::vector<float> data{-3.0f, 1.0f, 2.5f};
  const QuantSpec spec = QuantSpec::fit(data, 12);
  EXPECT_EQ(spec.bits, 12);
  EXPECT_EQ(spec.qmax(), 2047);
  EXPECT_EQ(spec.qmin(), -2047);
  EXPECT_NEAR(spec.scale, 3.0f / 2047.0f, 1e-9);
}

TEST(QuantSpec, AllZeroDataGetsUnitScale) {
  const std::vector<float> data{0.0f, 0.0f};
  const QuantSpec spec = QuantSpec::fit(data, 12);
  EXPECT_EQ(spec.scale, 1.0f);
}

TEST(QuantSpec, RejectsBadWidths) {
  const std::vector<float> data{1.0f};
  EXPECT_THROW((void)QuantSpec::fit(data, 1), CheckError);
  EXPECT_THROW((void)QuantSpec::fit(data, 17), CheckError);
}

TEST(Quantize, RoundTripErrorBoundedByHalfScale) {
  Rng rng(1);
  Tensor t = Tensor::randn({1000}, rng, 0.0f, 2.0f);
  const QTensor q(t, 12);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::abs(q.value(i) - t.at_flat(i)), q.spec().scale * 0.5f + 1e-7f);
  }
}

TEST(Quantize, SaturatesAtRangeEnds) {
  QuantSpec spec;
  spec.bits = 8;
  spec.scale = 1.0f;
  EXPECT_EQ(quantize_value(1e9f, spec), spec.qmax());
  EXPECT_EQ(quantize_value(-1e9f, spec), spec.qmin());
}

TEST(Quantize, SymmetricAroundZero) {
  QuantSpec spec;
  spec.bits = 12;
  spec.scale = 0.01f;
  EXPECT_EQ(quantize_value(0.123f, spec), -quantize_value(-0.123f, spec));
  EXPECT_EQ(quantize_value(0.0f, spec), 0);
}

class QuantWidthError : public ::testing::TestWithParam<int> {};

TEST_P(QuantWidthError, NrmseShrinksWithWidth) {
  const int bits = GetParam();
  Rng rng(2);
  Tensor t = Tensor::randn({4096}, rng);
  const Tensor rt = fake_quantize(t, bits);
  const double err = nrmse(t.data(), rt.data());
  // Error roughly halves per extra bit; check monotone bands.
  const double expected = 1.0 / static_cast<double>(1 << bits);
  EXPECT_LT(err, expected * 8.0);
  EXPECT_GT(err, expected / 8.0);
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantWidthError, ::testing::Values(6, 8, 10, 12, 14));

TEST(Quantize, Int8ErrorExceedsInt12Error) {
  Rng rng(3);
  Tensor t = Tensor::randn({4096}, rng);
  const double e8 = nrmse(t.data(), fake_quantize(t, 8).data());
  const double e12 = nrmse(t.data(), fake_quantize(t, 12).data());
  EXPECT_GT(e8, e12 * 8.0);  // ~16x in theory
}

TEST(QTensor, PreservesShapeAndSpec) {
  Rng rng(4);
  Tensor t = Tensor::randn({3, 5}, rng);
  const QTensor q(t, 10);
  EXPECT_EQ(q.shape(), t.shape());
  EXPECT_EQ(q.numel(), t.numel());
  EXPECT_EQ(q.spec().bits, 10);
  const Tensor d = q.dequantize();
  EXPECT_EQ(d.shape(), t.shape());
}

TEST(QuantizeFraction, GridBehaviour) {
  EXPECT_EQ(quantize_fraction(0.0f, 12), 0.0f);
  EXPECT_NEAR(quantize_fraction(0.5f, 12), 0.5f, 1e-3);
  EXPECT_LE(quantize_fraction(0.999999f, 12), 1.0f);
}

// --------------------------------------------------------- integer datapath
TEST(QMsgs, FractionCodeRange) {
  EXPECT_EQ(to_fraction_code(0.0f, 12), 0);
  EXPECT_EQ(to_fraction_code(1.0f, 12), (1 << 12) - 1);  // saturates below 1.0
  EXPECT_EQ(to_fraction_code(-0.5f, 12), 0);
  EXPECT_EQ(to_fraction_code(2.0f, 12), (1 << 12) - 1);
  EXPECT_NEAR(to_fraction_code(0.5f, 12), 1 << 11, 1);
}

TEST(QMsgs, HornerIntCorners) {
  // t0 = t1 = 0 -> N0 exactly.
  EXPECT_EQ(bi_horner_int(100, 200, 300, 400, 0, 0, 12), 100);
}

TEST(QMsgs, HornerIntCenter) {
  const std::int32_t half = 1 << 11;
  const std::int32_t s = bi_horner_int(100, 200, 300, 400, half, half, 12);
  EXPECT_NEAR(s, 250, 2);
}

/// Property: the integer Horner BI tracks the float Horner BI within a few
/// LSBs for random codes and fractions.
class IntHornerAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(IntHornerAccuracy, TracksFloatWithinLsb) {
  SmallRng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int i = 0; i < 300; ++i) {
    const auto n0 = static_cast<std::int32_t>(rng.below(4095)) - 2047;
    const auto n1 = static_cast<std::int32_t>(rng.below(4095)) - 2047;
    const auto n2 = static_cast<std::int32_t>(rng.below(4095)) - 2047;
    const auto n3 = static_cast<std::int32_t>(rng.below(4095)) - 2047;
    const float t0 = static_cast<float>(rng.uniform01());
    const float t1 = static_cast<float>(rng.uniform01());
    const std::int32_t t0q = to_fraction_code(t0, 12);
    const std::int32_t t1q = to_fraction_code(t1, 12);
    const std::int32_t si = bi_horner_int(n0, n1, n2, n3, t0q, t1q, 12);
    const float sf = nn::bi_horner(static_cast<float>(n0), static_cast<float>(n1),
                                   static_cast<float>(n2), static_cast<float>(n3),
                                   t0, t1);
    // Two fraction multiplies with rounding plus fraction-code error:
    // stay within a few code steps of the float result.
    EXPECT_NEAR(static_cast<float>(si), sf, 6.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntHornerAccuracy, ::testing::Range(1, 7));

TEST(QMsgs, AgWeightHalvesAtHalfProbability) {
  const std::int32_t half = 1 << 11;
  EXPECT_NEAR(ag_weight_int(1000, half, 12), 500, 1);
  EXPECT_EQ(ag_weight_int(1000, 0, 12), 0);
}

TEST(QMsgs, AgWeightNegativeValues) {
  const std::int32_t half = 1 << 11;
  EXPECT_NEAR(ag_weight_int(-1000, half, 12), -500, 1);
}

TEST(QMsgs, HornerIntBoundedByNeighborRange) {
  // Interpolation never exceeds [min, max] of the neighbors (within
  // rounding), for random in-range fractions.
  SmallRng rng(42);
  for (int i = 0; i < 200; ++i) {
    const std::int32_t n0 = static_cast<std::int32_t>(rng.below(2000));
    const std::int32_t n1 = static_cast<std::int32_t>(rng.below(2000));
    const std::int32_t n2 = static_cast<std::int32_t>(rng.below(2000));
    const std::int32_t n3 = static_cast<std::int32_t>(rng.below(2000));
    const std::int32_t t0q = to_fraction_code(static_cast<float>(rng.uniform01()), 12);
    const std::int32_t t1q = to_fraction_code(static_cast<float>(rng.uniform01()), 12);
    const std::int32_t s = bi_horner_int(n0, n1, n2, n3, t0q, t1q, 12);
    const std::int32_t lo = std::min({n0, n1, n2, n3});
    const std::int32_t hi = std::max({n0, n1, n2, n3});
    EXPECT_GE(s, lo - 2);
    EXPECT_LE(s, hi + 2);
  }
}

}  // namespace
}  // namespace defa::quant
