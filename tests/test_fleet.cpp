// Tests for the fleet layer: the consistent-hash ring (determinism,
// ~1/N key movement on membership change, uniformity), fleet metrics
// merging, fleet-config parsing, live Engine/Server reconfiguration, and
// client::Pool routing — same-key affinity, bit-identity vs in-process
// Engine::run regardless of which shard answers, and failover when a
// shard dies mid-traffic.

#include <gtest/gtest.h>

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "client/pool.h"
#include "common/check.h"
#include "fleet/hash_ring.h"
#include "fleet/orchestrator.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/transport.h"

namespace defa::fleet {
namespace {

using api::Json;

// ------------------------------------------------------------------ hash ring

TEST(Fnv1a64, MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(HashRing, DeterministicAcrossInstances) {
  const std::vector<std::string> nodes = {"shard0", "shard1", "shard2"};
  HashRing a(nodes), b(nodes);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "workload#" + std::to_string(i);
    EXPECT_EQ(a.node_index_for(key), b.node_index_for(key));
    EXPECT_EQ(a.preference_order(key), b.preference_order(key));
  }
  // Node order in the membership list does not change ownership (points
  // hash names, not indices).
  HashRing shuffled({"shard2", "shard0", "shard1"});
  for (int i = 0; i < 200; ++i) {
    const std::string key = "workload#" + std::to_string(i);
    EXPECT_EQ(shuffled.node_for(key), a.node_for(key));
  }
}

TEST(HashRing, AddNodeMovesAboutOneOverNKeysOnlyToTheNewNode) {
  HashRing ring({"shard0", "shard1", "shard2"});
  const int keys = 10000;
  std::vector<std::string> before(keys);
  for (int i = 0; i < keys; ++i) {
    before[static_cast<std::size_t>(i)] =
        ring.node_for("key#" + std::to_string(i));
  }
  ring.add_node("shard3");
  int moved = 0;
  for (int i = 0; i < keys; ++i) {
    const std::string& now = ring.node_for("key#" + std::to_string(i));
    if (now != before[static_cast<std::size_t>(i)]) {
      ++moved;
      // Consistent hashing: a membership add only moves keys *to* the new
      // node, never between old nodes.
      EXPECT_EQ(now, "shard3");
    }
  }
  // Ideal movement is 1/4 of the keys; allow generous virtual-node noise.
  EXPECT_GT(moved, keys / 10);
  EXPECT_LT(moved, keys * 45 / 100);
}

TEST(HashRing, RemoveNodeOnlyReassignsItsOwnKeys) {
  HashRing ring({"shard0", "shard1", "shard2"});
  const int keys = 10000;
  std::vector<std::string> before(keys);
  for (int i = 0; i < keys; ++i) {
    before[static_cast<std::size_t>(i)] =
        ring.node_for("key#" + std::to_string(i));
  }
  ring.remove_node("shard1");
  for (int i = 0; i < keys; ++i) {
    const std::string& now = ring.node_for("key#" + std::to_string(i));
    if (before[static_cast<std::size_t>(i)] != "shard1") {
      EXPECT_EQ(now, before[static_cast<std::size_t>(i)]);
    } else {
      EXPECT_NE(now, "shard1");
    }
  }
}

TEST(HashRing, SpreadsKeysReasonablyUniformly) {
  HashRing ring({"shard0", "shard1", "shard2"});
  std::map<std::string, int> counts;
  const int keys = 10000;
  for (int i = 0; i < keys; ++i) {
    ++counts[ring.node_for("key#" + std::to_string(i))];
  }
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& [node, count] : counts) {
    const double share = static_cast<double>(count) / keys;
    EXPECT_GT(share, 0.15) << node;
    EXPECT_LT(share, 0.55) << node;
  }
}

TEST(HashRing, PreferenceOrderStartsAtOwnerAndCoversAllNodes) {
  HashRing ring({"shard0", "shard1", "shard2", "shard3"});
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key#" + std::to_string(i);
    const std::vector<std::size_t> order = ring.preference_order(key);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], ring.node_index_for(key));
    const std::set<std::size_t> distinct(order.begin(), order.end());
    EXPECT_EQ(distinct.size(), 4u);
  }
}

TEST(HashRing, ValidatesInput) {
  // An empty ring is a legal value (membership can drain); lookups on it
  // are not.
  HashRing empty_ring{std::vector<std::string>{}};
  EXPECT_TRUE(empty_ring.empty());
  EXPECT_THROW(empty_ring.node_index_for("k"), CheckError);
  EXPECT_THROW(HashRing({"a", "a"}), CheckError);
  EXPECT_THROW(HashRing({""}), CheckError);
  EXPECT_THROW(HashRing({"a"}, 0), CheckError);
  HashRing ring({"a", "b"});
  EXPECT_THROW(ring.add_node("a"), CheckError);
  EXPECT_THROW(ring.remove_node("zzz"), CheckError);
}

// -------------------------------------------------------------- merged metrics

TEST(MergeSnapshots, SumsCountersAndMergesRawBuckets) {
  serve::MetricsSnapshot a;
  a.submitted = 10;
  a.completed_ok = 8;
  a.errors = 2;
  a.uptime_ms = 1000;
  a.context_hits = 5;
  a.memo_misses = 3;
  a.plan_hits = 7;
  a.plan_misses = 2;
  a.plan_entries = 4;
  a.total_ms.record(1.0);
  a.total_ms.record(2.0);
  a.per_benchmark.emplace_back("tiny", 8);

  serve::MetricsSnapshot b;
  b.submitted = 4;
  b.completed_ok = 4;
  b.uptime_ms = 2000;
  b.context_hits = 1;
  b.plan_hits = 1;
  b.plan_entries = 2;
  b.total_ms.record(100.0);
  b.per_benchmark.emplace_back("tiny", 3);
  b.per_benchmark.emplace_back("small", 1);

  const serve::MetricsSnapshot m = serve::merge_snapshots({a, b});
  EXPECT_EQ(m.submitted, 14u);
  EXPECT_EQ(m.completed_ok, 12u);
  EXPECT_EQ(m.errors, 2u);
  EXPECT_EQ(m.context_hits, 6u);
  EXPECT_EQ(m.memo_misses, 3u);
  EXPECT_EQ(m.plan_hits, 8u);
  EXPECT_EQ(m.plan_misses, 2u);
  EXPECT_EQ(m.plan_entries, 6u);

  // The plan counters survive the wire format (and stay optional for old
  // exports: from_json defaults them to zero when the keys are absent).
  const serve::MetricsSnapshot wired = serve::MetricsSnapshot::from_json(a.to_json());
  EXPECT_EQ(wired.plan_hits, 7u);
  EXPECT_EQ(wired.plan_misses, 2u);
  EXPECT_EQ(wired.plan_entries, 4u);
  EXPECT_EQ(m.total_ms.count(), 3u);
  EXPECT_DOUBLE_EQ(m.total_ms.max(), 100.0);
  // Shards run in parallel: fleet uptime is the max, and qps is the
  // merged completion count over that shared wall clock.
  EXPECT_DOUBLE_EQ(m.uptime_ms, 2000.0);
  EXPECT_DOUBLE_EQ(m.qps, 12.0 / 2.0);
  ASSERT_EQ(m.per_benchmark.size(), 2u);
  EXPECT_EQ(m.per_benchmark[0].first, "tiny");
  EXPECT_EQ(m.per_benchmark[0].second, 11u);
  EXPECT_EQ(m.per_benchmark[1].first, "small");
  EXPECT_EQ(m.per_benchmark[1].second, 1u);

  EXPECT_EQ(serve::merge_snapshots({}).submitted, 0u);
}

// ----------------------------------------------------------------- config file

Json smoke_config_json() {
  return Json::parse(R"({
    "name": "t",
    "shards": 3,
    "virtual_nodes": 16,
    "server": {"policy": "locality", "max_contexts": 1, "memoize_results": false},
    "load": {
      "requests": 12, "seed": 3,
      "arrival": {"process": "closed", "concurrency": 2},
      "scenarios": [
        {"name": "a", "request": {"preset": "tiny", "outputs": ["functional"]}}
      ]
    },
    "shard_sweep": [1],
    "chaos": {"mode": "drain", "shard": -1, "after_fraction": 0.25},
    "verify": true
  })");
}

TEST(FleetConfig, ParsesTheFullShape) {
  const FleetConfig config = fleet_config_from_json(smoke_config_json());
  EXPECT_EQ(config.name, "t");
  EXPECT_EQ(config.shards, 3);
  EXPECT_EQ(config.virtual_nodes, 16);
  EXPECT_EQ(config.load.requests, 12);
  EXPECT_EQ(config.load.seed, 3u);
  EXPECT_EQ(config.load.concurrency, 2);
  EXPECT_EQ(config.load.server.policy, serve::SchedulePolicy::kLocality);
  EXPECT_EQ(config.load.server.engine.max_contexts, 1u);
  EXPECT_FALSE(config.load.server.engine.memoize_results);
  ASSERT_EQ(config.load.scenarios.size(), 1u);
  ASSERT_EQ(config.shard_sweep.size(), 1u);
  EXPECT_EQ(config.shard_sweep[0], 1);
  EXPECT_TRUE(config.chaos.enabled);
  EXPECT_EQ(config.chaos.mode, "drain");
  EXPECT_EQ(config.chaos.shard, -1);
  EXPECT_DOUBLE_EQ(config.chaos.after_fraction, 0.25);
  EXPECT_TRUE(config.verify);
}

TEST(FleetConfig, RejectsUnknownAndInvalidKeys) {
  Json unknown = smoke_config_json();
  unknown["replicas"] = 2;
  EXPECT_THROW((void)fleet_config_from_json(unknown), CheckError);

  Json bad_chaos = smoke_config_json();
  bad_chaos["chaos"] = Json::object();
  bad_chaos["chaos"]["mode"] = "reboot";
  EXPECT_THROW((void)fleet_config_from_json(bad_chaos), CheckError);

  Json bad_fraction = smoke_config_json();
  bad_fraction["chaos"] = Json::object();
  bad_fraction["chaos"]["after_fraction"] = 1.5;
  EXPECT_THROW((void)fleet_config_from_json(bad_fraction), CheckError);

  // The load block is scenario-file validated (e.g. server keys belong at
  // the fleet root, not inside load).
  Json server_in_load = smoke_config_json();
  server_in_load["load"]["server"] = Json::object();
  EXPECT_THROW((void)fleet_config_from_json(server_in_load), CheckError);

  Json no_load = Json::object();
  no_load["shards"] = 2;
  EXPECT_THROW((void)fleet_config_from_json(no_load), CheckError);
}

// --------------------------------------------------------- live reconfiguration

TEST(EngineReconfigure, ShrinkingCacheBoundsEvictsAndResetStatsZeroes) {
  api::Engine engine;
  api::EvalRequest req;
  req.preset = "tiny";
  for (const int seed : {0, 101, 202}) {
    api::EvalRequest r = req;
    if (seed != 0) {
      workload::SceneParams scene;
      scene.seed = static_cast<unsigned>(seed);
      r.scene = scene;
    }
    (void)engine.run(r);
  }
  EXPECT_EQ(engine.cached_contexts(), 3u);

  api::Engine::Reconfig rc;
  rc.max_contexts = 1;
  engine.reconfigure(rc);
  EXPECT_EQ(engine.cached_contexts(), 1u);
  EXPECT_GE(engine.cache_stats().context.evictions, 2u);

  engine.reset_stats();
  EXPECT_EQ(engine.cache_stats().context.hits, 0u);
  EXPECT_EQ(engine.cache_stats().context.evictions, 0u);
  EXPECT_EQ(engine.cache_stats().memo_misses, 0u);

  // An unknown backend is refused before anything is applied.
  api::Engine::Reconfig bad;
  bad.backend = "no_such_backend";
  bad.max_contexts = 99;
  EXPECT_THROW(engine.reconfigure(bad), CheckError);
  EXPECT_EQ(engine.cached_contexts(), 1u);  // untouched
  (void)engine.run(req);                    // still serves
}

TEST(ServerReconfigure, SwitchesPolicyAndResetsMetricsBetweenDispatches) {
  serve::Server server{serve::ServerOptions{}};
  serve::ServeRequest r;
  r.request.preset = "tiny";
  (void)server.submit(r).get();
  EXPECT_GT(server.metrics().submitted, 0u);

  serve::ServerReconfig rc;
  rc.policy = serve::SchedulePolicy::kLocality;
  rc.locality_window = 2;
  rc.reset_stats = true;
  server.reconfigure(rc);
  const serve::ServerOptions after = server.options_snapshot();
  EXPECT_EQ(after.policy, serve::SchedulePolicy::kLocality);
  EXPECT_EQ(after.locality_window, 2);
  EXPECT_EQ(server.metrics().submitted, 0u);

  serve::ServerReconfig bad;
  bad.locality_window = 0;
  EXPECT_THROW(server.reconfigure(bad), CheckError);

  const auto resp = server.submit(r).get();
  EXPECT_EQ(resp.status, serve::ResponseStatus::kOk);
}

// ------------------------------------------------------------------- the pool

/// A live `defa_serve --listen`-shaped server on an ephemeral loopback
/// port (same fixture as test_protocol.cpp).
class LoopbackServer {
 public:
  /// `port` 0 picks an ephemeral port; a concrete port lets restart tests
  /// bring a replacement up on the address a pool already routes to.
  explicit LoopbackServer(serve::ServerOptions options = {}, int port = 0)
      : server_(options), listener_(port) {
    accept_thread_ = std::thread([this] {
      while (auto conn = listener_.accept()) {
        std::shared_ptr<serve::Connection> shared = std::move(conn);
        const std::lock_guard<std::mutex> lock(mu_);
        conns_.push_back(shared);
        sessions_.emplace_back([this, shared] {
          serve::ProtocolOptions options;
          options.on_drain = [this] { listener_.close(); };
          serve::run_serve_connection(*shared, server_, options);
        });
      }
    });
  }

  ~LoopbackServer() {
    listener_.close();
    accept_thread_.join();
    server_.drain();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      for (auto& c : conns_) c->shutdown();
    }
    for (std::thread& t : sessions_) t.join();
  }

  [[nodiscard]] int port() const { return listener_.port(); }
  [[nodiscard]] std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(listener_.port());
  }
  [[nodiscard]] serve::Server& server() { return server_; }

 private:
  serve::Server server_;
  serve::TcpListener listener_;
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<std::shared_ptr<serve::Connection>> conns_;
  std::vector<std::thread> sessions_;
};

std::vector<api::EvalRequest> three_key_requests() {
  std::vector<api::EvalRequest> requests;
  for (const int seed : {0, 101, 202}) {
    api::EvalRequest r;
    r.preset = "tiny";
    if (seed != 0) {
      workload::SceneParams scene;
      scene.seed = static_cast<unsigned>(seed);
      r.scene = scene;
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

TEST(Pool, RoutesByWorkloadKeyBitIdenticallyToInProcessEngine) {
  LoopbackServer s0, s1, s2;
  client::Pool pool({s0.endpoint(), s1.endpoint(), s2.endpoint()});
  ASSERT_TRUE(pool.wait_connected(10000));
  EXPECT_EQ(pool.shard_count(), 3u);

  api::Engine reference;
  const std::vector<api::EvalRequest> requests = three_key_requests();
  // Every request twice: bit-identity and stable routing.
  std::map<std::string, std::size_t> routed_to;
  for (int round = 0; round < 2; ++round) {
    for (const api::EvalRequest& req : requests) {
      const api::EvalResult expected = reference.run(req);
      const api::EvalResult got = pool.eval(req);
      EXPECT_EQ(got, expected);
      const std::string key = req.workload_key();
      const std::size_t shard = pool.shard_for(key);
      const auto [it, inserted] = routed_to.emplace(key, shard);
      EXPECT_EQ(it->second, shard) << "routing changed for " << key;
    }
  }
  EXPECT_EQ(pool.failovers(), 0u);
  // The routed counters account for every request (6 evals).
  std::uint64_t total_routed = 0;
  for (const client::PoolShardStats& s : pool.stats()) total_routed += s.routed;
  EXPECT_EQ(total_routed, 6u);
}

TEST(Pool, FailsOverInFlightRequestsWhenAShardDies) {
  std::vector<std::unique_ptr<LoopbackServer>> servers;
  std::vector<std::string> endpoints;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(std::make_unique<LoopbackServer>());
    endpoints.push_back(servers.back()->endpoint());
  }
  client::PoolOptions options;
  options.reconnect = false;  // keep the dead shard dead (no race)
  client::Pool pool(endpoints, options);
  ASSERT_TRUE(pool.wait_connected(10000));

  const std::vector<api::EvalRequest> requests = three_key_requests();
  api::Engine reference;
  std::vector<api::EvalResult> expected;
  expected.reserve(requests.size());
  for (const api::EvalRequest& r : requests) expected.push_back(reference.run(r));

  // Kill the shard owning the first request's key, so at least that key's
  // traffic deterministically hits the dead connection and must re-route.
  const std::size_t victim = pool.shard_for(requests[0].workload_key());
  servers[victim].reset();

  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const api::EvalResult got = pool.eval(requests[i]);  // never throws here
      EXPECT_EQ(got, expected[i]);
    }
  }
  EXPECT_GT(pool.failovers(), 0u);
  const std::vector<client::PoolShardStats> stats = pool.stats();
  for (std::size_t i = 0; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].connected, i != victim) << "shard " << i;
  }

  // All shards down: a typed transport error, not a hang.
  for (auto& server : servers) server.reset();
  try {
    (void)pool.eval(requests[0]);
    FAIL() << "expected RpcError";
  } catch (const client::RpcError& e) {
    EXPECT_EQ(e.code(), serve::ErrorCode::kTransport);
  }
}

TEST(Pool, ReconnectsAfterShardRestart) {
  // One shard, killed and replaced on the *same* port: the pool's backoff
  // loop must find the replacement without outside help.
  auto server = std::make_unique<LoopbackServer>();
  const int port = server->port();
  const std::string endpoint = server->endpoint();
  client::PoolOptions options;
  options.backoff_initial_ms = 5;
  client::Pool pool({endpoint}, options);
  ASSERT_TRUE(pool.wait_connected(10000));

  api::EvalRequest req;
  req.preset = "tiny";
  api::Engine reference;
  EXPECT_EQ(pool.eval(req), reference.run(req));

  server.reset();
  // Force the pool to notice the loss (the next dispatch hits the dead
  // connection, has nowhere to fail over, reports transport, marks the
  // shard down — which wakes the reconnector).
  try {
    (void)pool.eval(req);
    FAIL() << "expected RpcError while the shard is down";
  } catch (const client::RpcError& e) {
    EXPECT_EQ(e.code(), serve::ErrorCode::kTransport);
  }

  // Replacement on the same port (free since the old listener closed).
  LoopbackServer replacement(serve::ServerOptions{}, port);
  ASSERT_TRUE(pool.wait_connected(10000));
  EXPECT_EQ(pool.eval(req), reference.run(req));
  EXPECT_EQ(pool.stats()[0].reconnects, 1u);
}

}  // namespace
}  // namespace defa::fleet
