// Tests for the cycle-accurate MSGS engine: grouping policies, conflict
// behaviour, pruning interaction and throughput bounds.

#include <gtest/gtest.h>

#include "arch/msgs_engine.h"
#include "nn/softmax.h"
#include "prune/pap.h"
#include "workload/scene.h"

namespace defa::arch {
namespace {

struct EngineFixture {
  ModelConfig m = ModelConfig::small();
  workload::SceneWorkload wl;
  Tensor locs;

  EngineFixture() : wl(make_wl()) { locs = wl.layer_fields(0).locs; }

  workload::SceneWorkload make_wl() {
    workload::SceneParams p;
    p.seed = m.seed;
    return workload::SceneWorkload(m, p);
  }

  HwConfig hw(MsgsParallelism par) const {
    HwConfig h = HwConfig::make_default(m);
    h.parallelism = par;
    return h;
  }
};

TEST(MsgsEngine, DenseGroupCountsMatchStructure) {
  EngineFixture fx;
  const prune::PointMask dense(fx.m);
  const HwConfig inter = fx.hw(MsgsParallelism::kInterLevel);
  const MsgsEngine engine(fx.m, inter);
  const MsgsPerf perf = engine.run(fx.locs, dense);
  // Dense inter-level: n_points groups per (q, h) (group g = g-th point of
  // each level).
  EXPECT_EQ(perf.groups,
            static_cast<std::uint64_t>(fx.m.n_in()) * fx.m.n_heads * fx.m.n_points);
  EXPECT_EQ(perf.points, static_cast<std::uint64_t>(fx.m.n_in()) * fx.m.n_heads *
                             fx.m.n_levels * fx.m.n_points);
}

TEST(MsgsEngine, DenseSameDegreeOfParallelism) {
  // Intra- and inter-level issue the same number of groups when dense
  // (paper: "under the same degree of parallelism").
  EngineFixture fx;
  const prune::PointMask dense(fx.m);
  const MsgsEngine inter(fx.m, fx.hw(MsgsParallelism::kInterLevel));
  const MsgsEngine intra(fx.m, fx.hw(MsgsParallelism::kIntraLevel));
  EXPECT_EQ(inter.run(fx.locs, dense).groups, intra.run(fx.locs, dense).groups);
}

TEST(MsgsEngine, InterLevelIsConflictFree) {
  EngineFixture fx;
  const prune::PointMask dense(fx.m);
  const MsgsEngine engine(fx.m, fx.hw(MsgsParallelism::kInterLevel));
  const MsgsPerf perf = engine.run(fx.locs, dense);
  EXPECT_EQ(perf.conflict_groups, 0u);
  // Conflict-free fetches hide entirely behind the 2-cycle compute.
  EXPECT_EQ(perf.total_cycles, perf.compute_cycles + 2);  // +fill/drain
}

TEST(MsgsEngine, IntraLevelConflictsAreCommon) {
  EngineFixture fx;
  const prune::PointMask dense(fx.m);
  const MsgsEngine engine(fx.m, fx.hw(MsgsParallelism::kIntraLevel));
  const MsgsPerf perf = engine.run(fx.locs, dense);
  EXPECT_GT(perf.conflict_groups, perf.groups / 2);
  EXPECT_GT(perf.total_cycles, perf.compute_cycles);
}

TEST(MsgsEngine, InterLevelThroughputBoostInPaperBand) {
  EngineFixture fx;
  const prune::PointMask dense(fx.m);
  const MsgsEngine inter(fx.m, fx.hw(MsgsParallelism::kInterLevel));
  const MsgsEngine intra(fx.m, fx.hw(MsgsParallelism::kIntraLevel));
  const double boost = inter.run(fx.locs, dense).points_per_cycle() /
                       intra.run(fx.locs, dense).points_per_cycle();
  // Paper reports 3.02 - 3.09x; accept a generous modeling band.
  EXPECT_GT(boost, 2.2);
  EXPECT_LT(boost, 4.0);
}

TEST(MsgsEngine, PrunedStreamsCostLess) {
  EngineFixture fx;
  const Tensor probs = nn::softmax_lastdim(fx.wl.layer_fields(0).logits);
  const prune::PointMask pruned = prune::pap_prune(fx.m, probs, 0.03, nullptr);
  const prune::PointMask dense(fx.m);
  const MsgsEngine engine(fx.m, fx.hw(MsgsParallelism::kInterLevel));
  const MsgsPerf p_pruned = engine.run(fx.locs, pruned);
  const MsgsPerf p_dense = engine.run(fx.locs, dense);
  EXPECT_LT(p_pruned.total_cycles, p_dense.total_cycles);
  EXPECT_LT(p_pruned.points, p_dense.points);
  EXPECT_LT(p_pruned.sram_word_reads, p_dense.sram_word_reads);
}

TEST(MsgsEngine, PrunedGroupCountIsMaxSurvivorsPerLevel) {
  // Hand-built mask: level 0 keeps 3 points, level 1 keeps 1, levels 2-3
  // keep 0 (for every (q, h)) -> inter-level groups per (q, h) = 3.
  ModelConfig m = ModelConfig::tiny();
  workload::SceneParams sp;
  sp.seed = m.seed;
  const workload::SceneWorkload wl(m, sp);
  const Tensor locs = wl.layer_fields(0).locs;
  prune::PointMask mask(m);
  for (std::int64_t q = 0; q < m.n_in(); ++q) {
    for (int h = 0; h < m.n_heads; ++h) {
      // tiny has 2 levels x 2 points: keep both of level 0, none of level 1.
      mask.set_keep(q, h, 1, 0, false);
      mask.set_keep(q, h, 1, 1, false);
    }
  }
  HwConfig hw = HwConfig::make_default(m);
  const MsgsEngine engine(m, hw);
  const MsgsPerf perf = engine.run(locs, mask);
  EXPECT_EQ(perf.groups, static_cast<std::uint64_t>(m.n_in()) * m.n_heads * 2);
  EXPECT_EQ(perf.points, static_cast<std::uint64_t>(m.n_in()) * m.n_heads * 2);
}

TEST(MsgsEngine, SramReadsBoundedByFourPerPoint) {
  EngineFixture fx;
  const prune::PointMask dense(fx.m);
  const MsgsEngine engine(fx.m, fx.hw(MsgsParallelism::kInterLevel));
  const MsgsPerf perf = engine.run(fx.locs, dense);
  EXPECT_LE(perf.sram_word_reads, perf.points * 4);
  EXPECT_GT(perf.sram_word_reads, perf.points * 2);  // most points interior
}

TEST(MsgsEngine, ThroughputNeverExceedsStructuralPeak) {
  EngineFixture fx;
  const prune::PointMask dense(fx.m);
  const MsgsEngine engine(fx.m, fx.hw(MsgsParallelism::kInterLevel));
  const MsgsPerf perf = engine.run(fx.locs, dense);
  // 4 points per group, 2 cycles per group -> peak 2 points/cycle.
  EXPECT_LE(perf.points_per_cycle(), 2.0 + 1e-9);
}

TEST(MsgsEngine, DeterministicAcrossRuns) {
  EngineFixture fx;
  const prune::PointMask dense(fx.m);
  const MsgsEngine engine(fx.m, fx.hw(MsgsParallelism::kIntraLevel));
  const MsgsPerf a = engine.run(fx.locs, dense);
  const MsgsPerf b = engine.run(fx.locs, dense);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.conflict_groups, b.conflict_groups);
}

TEST(MsgsEngine, HigherConflictPenaltyNeverFaster) {
  EngineFixture fx;
  const prune::PointMask dense(fx.m);
  HwConfig lo = fx.hw(MsgsParallelism::kIntraLevel);
  HwConfig hi = lo;
  lo.conflict_penalty_cycles = 1;
  hi.conflict_penalty_cycles = 6;
  const MsgsEngine elo(fx.m, lo);
  const MsgsEngine ehi(fx.m, hi);
  EXPECT_LT(elo.run(fx.locs, dense).total_cycles, ehi.run(fx.locs, dense).total_cycles);
}

}  // namespace
}  // namespace defa::arch
