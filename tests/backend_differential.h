#pragma once

/// \file backend_differential.h
/// Reusable cross-backend differential harness.
///
/// The repo's correctness contract is that every registered
/// `kernels::Backend` is *bit-identical* to `reference` in fp32 and
/// *exactly equal* on the INTn datapath — not "close", identical.  This
/// header is the machinery that proves it, shared by
/// tests/test_backend_differential.cpp and available to any future
/// backend's own test file:
///
///  * `differential_models()` — a model matrix spanning the dimensions a
///    backend can get wrong: every power-of-two d_head a register tile
///    might specialize on plus awkward widths (1, 3, 24), level counts
///    1..4, degenerate shapes (single-pixel level, one head, one point),
///    and the >=512-channel heads that exceed any register-tile
///    specialization.
///  * `make_inputs()` — seeded adversarial inputs: sampling locations
///    sweep in-bounds, out-of-bounds and *exact-integer* coordinates
///    (t = 0 edge cases), probabilities are a real softmax.
///  * `spec_variants()` — the MsgsSpec axis: dense fp32, PAP-masked,
///    INT12/INT8 quantized, masked+quantized, and a wide INTn config that
///    exercises vector-tier overflow fallbacks.
///  * `expect_bits_equal()` — comparison at the *bit-pattern* level
///    (float == would pass -0.0 vs +0.0 and miss NaN payloads), printing
///    the failing index and a reproducer line.
///  * `run_kernel_differential()` — the full kernel-level sweep of one
///    backend against reference: every model x input seed x spec variant,
///    each with and without a prebuilt SamplingPlan.
///
/// A new backend earns its registry slot by passing
///   run_kernel_differential(<name>)
/// plus the pipeline/engine-level matrix in the test file — see
/// docs/KERNELS.md ("Adding a backend").

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "config/model_config.h"
#include "kernels/backend.h"
#include "kernels/plan.h"
#include "nn/softmax.h"
#include "prune/pap.h"
#include "tensor/tensor.h"

namespace defa::difftest {

// ------------------------------------------------------------------ env RAII

/// Scoped environment-variable override (save on construction, restore on
/// destruction) for the DEFA_SIMD / DEFA_TILED_THREADS / DEFA_BACKEND
/// knobs the differential tests flip.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string saved_;
  bool had_ = false;
};

// ------------------------------------------------------------- model matrix

/// One model under differential test.
struct DiffModel {
  std::string label;  ///< stable id, printed in reproducer lines
  ModelConfig m;
};

/// Build a custom validated config.  Levels are fine -> coarse.
inline ModelConfig make_model(std::string name, int d_model, int n_heads,
                              int n_points, std::vector<LevelShape> levels) {
  ModelConfig m;
  m.name = std::move(name);
  m.d_model = d_model;
  m.n_heads = n_heads;
  m.n_levels = static_cast<int>(levels.size());
  m.n_points = n_points;
  m.n_layers = 1;
  m.levels = std::move(levels);
  m.seed = 1;
  m.validate();
  return m;
}

/// The kernel-level model matrix (see file comment for the axes).
inline std::vector<DiffModel> differential_models() {
  std::vector<DiffModel> out;
  out.push_back({"tiny", ModelConfig::tiny()});
  // d_head sweep: vector widths below/at/above one AVX2 lane group, odd
  // widths that force scalar tails, and the register-tile sizes the fused
  // backend specializes (8/16/32/64).
  for (const int dh : {1, 3, 8, 16, 24, 32, 64}) {
    out.push_back({"dhead" + std::to_string(dh),
                   make_model("dhead" + std::to_string(dh), 2 * dh, 2, 3,
                              {{6, 7}, {3, 4}})});
  }
  // Level-count sweep 1..4 (level-major plan layout, per-level work lists).
  out.push_back({"levels1", make_model("levels1", 32, 2, 2, {{7, 6}})});
  out.push_back({"levels3", make_model("levels3", 32, 2, 2, {{7, 6}, {4, 3}, {2, 2}})});
  out.push_back(
      {"levels4", make_model("levels4", 32, 2, 2, {{7, 6}, {4, 3}, {2, 2}, {1, 2}})});
  // Degenerate shapes: a single-pixel coarse level (every sample clamps or
  // pads), one head, one point per level.
  out.push_back({"pixel_level", make_model("pixel_level", 16, 2, 2, {{5, 5}, {1, 1}})});
  out.push_back({"one_head", make_model("one_head", 24, 1, 2, {{5, 4}, {2, 3}})});
  out.push_back({"one_point", make_model("one_point", 16, 4, 1, {{6, 5}, {3, 3}})});
  return out;
}

/// Wide-head models for the register-tile cap regression: d_head at the
/// 512-channel specialization ceiling and just above it.  Kept out of
/// differential_models() because their value matrices are big; the cap
/// test runs them explicitly.
inline std::vector<DiffModel> wide_head_models() {
  return {
      {"dhead512", make_model("dhead512", 512, 1, 2, {{4, 4}, {2, 2}})},
      {"dhead544", make_model("dhead544", 544, 1, 2, {{4, 4}, {2, 2}})},
  };
}

// ------------------------------------------------------------------- inputs

struct DiffInputs {
  Tensor values;  ///< (N_in, D)
  Tensor probs;   ///< (N, H, L*P) — a real softmax
  Tensor locs;    ///< (N, H, L, P, 2) — adversarial coordinates
};

/// Seeded adversarial inputs for one model.  Locations are uniform in
/// [-2, extent+2) per level — in-bounds, partially and fully out-of-bounds
/// — and one in four is snapped to an exact integer coordinate so the
/// t0/t1 = 0 paths (and the floor() boundary) are always exercised.
inline DiffInputs make_inputs(const ModelConfig& m, std::uint64_t seed) {
  Rng rng(seed);
  DiffInputs in;
  in.values = Tensor::randn({m.n_in(), m.d_model}, rng);
  const Tensor logits =
      Tensor::randn({m.n_in(), m.n_heads, m.points_per_head()}, rng);
  in.probs = nn::softmax_lastdim(logits);
  in.locs = Tensor({m.n_in(), m.n_heads, m.n_levels, m.n_points, 2});
  for (std::int64_t q = 0; q < m.n_in(); ++q) {
    for (int h = 0; h < m.n_heads; ++h) {
      for (int l = 0; l < m.n_levels; ++l) {
        const LevelShape& lv = m.levels[static_cast<std::size_t>(l)];
        for (int p = 0; p < m.n_points; ++p) {
          float x = static_cast<float>(rng.uniform(-2.0, lv.w + 2.0));
          float y = static_cast<float>(rng.uniform(-2.0, lv.h + 2.0));
          if (rng.bernoulli(0.25)) x = std::floor(x);
          if (rng.bernoulli(0.25)) y = std::floor(y);
          in.locs(q, h, l, p, 0) = x;
          in.locs(q, h, l, p, 1) = y;
        }
      }
    }
  }
  return in;
}

// ------------------------------------------------------------ spec variants

/// One MsgsSpec configuration of the differential sweep.
struct SpecVariant {
  std::string label;
  bool pap = false;
  double pap_tau = 0.05;
  bool quantized = false;
  int act_bits = 12;
  int frac_bits = 12;
};

/// The MsgsSpec axis.  "int16x16" is act+frac = 32 > kMaxVectorQuantBits,
/// forcing vectorized backends onto their wide (int64) fallback path.
inline std::vector<SpecVariant> spec_variants() {
  return {
      {"fp32"},
      {"fp32+pap", /*pap=*/true},
      {"int12", false, 0.05, /*quantized=*/true, 12, 12},
      {"int8", false, 0.05, true, 8, 8},
      {"int12+pap", true, 0.05, true, 12, 12},
      {"int16x16", false, 0.05, true, 16, 16},
  };
}

// --------------------------------------------------------------- comparison

/// Bit-pattern equality of two fp32 tensors.  Returns true when identical;
/// otherwise reports the first divergence (index, both values, both bit
/// patterns) plus `context` — which should contain a reproducer line —
/// through ADD_FAILURE and returns false.
inline bool expect_bits_equal(const Tensor& ref, const Tensor& got,
                              const std::string& context) {
  if (ref.numel() != got.numel()) {
    ADD_FAILURE() << context << ": numel " << got.numel() << " != reference "
                  << ref.numel();
    return false;
  }
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    const std::uint32_t rb = std::bit_cast<std::uint32_t>(ref.at_flat(i));
    const std::uint32_t gb = std::bit_cast<std::uint32_t>(got.at_flat(i));
    if (rb != gb) {
      ADD_FAILURE() << context << ": first divergence at flat index " << i
                    << ": reference " << ref.at_flat(i) << " (bits 0x" << std::hex
                    << rb << "), got " << got.at_flat(i) << " (bits 0x" << gb
                    << std::dec << ")";
      return false;
    }
  }
  return true;
}

// ------------------------------------------------------------ kernel sweep

/// Reproducer line for one kernel-level combination: enough to rerun the
/// exact failing case by hand.
inline std::string kernel_reproducer(const std::string& backend,
                                     const std::string& model_label,
                                     std::uint64_t seed, const SpecVariant& v,
                                     bool with_plan) {
  return "[difftest backend=" + backend + " model=" + model_label +
         " seed=" + std::to_string(seed) + " spec=" + v.label +
         (with_plan ? " plan=prebuilt" : " plan=none") + "]";
}

/// Run the full kernel-level differential sweep of `backend_name` against
/// the reference backend: differential_models() x `seeds` x
/// spec_variants(), each combination with and without a prebuilt
/// SamplingPlan.  Every output must match reference bit for bit.
inline void run_kernel_differential(const std::string& backend_name,
                                    const std::vector<std::uint64_t>& seeds = {7, 1234}) {
  const kernels::Backend& ref = kernels::backend("reference");
  const kernels::Backend& bk = kernels::backend(backend_name);
  ASSERT_TRUE(bk.unavailable_reason().empty())
      << "backend '" << backend_name
      << "' unavailable on this host: " << bk.unavailable_reason();

  for (const DiffModel& dm : differential_models()) {
    for (const std::uint64_t seed : seeds) {
      const DiffInputs in = make_inputs(dm.m, seed);
      const kernels::SamplingPlan plan = kernels::SamplingPlan::build(dm.m, in.locs);
      for (const SpecVariant& v : spec_variants()) {
        std::optional<prune::PointMask> mask;
        kernels::MsgsSpec spec;
        spec.quantized = v.quantized;
        spec.act_bits = v.act_bits;
        spec.frac_bits = v.frac_bits;
        if (v.pap) {
          mask.emplace(prune::pap_prune(dm.m, in.probs, v.pap_tau, nullptr));
          spec.point_mask = &*mask;
        }
        const Tensor expect = ref.run_msgs(dm.m, in.values, in.probs, in.locs, spec);
        for (const bool with_plan : {false, true}) {
          spec.plan = with_plan ? &plan : nullptr;
          const Tensor got = bk.run_msgs(dm.m, in.values, in.probs, in.locs, spec);
          if (!expect_bits_equal(
                  expect, got,
                  kernel_reproducer(backend_name, dm.label, seed, v, with_plan))) {
            return;  // one reproducer per run is enough to debug
          }
        }
      }
    }
  }
}

}  // namespace defa::difftest
